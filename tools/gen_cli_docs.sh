#!/usr/bin/env bash
# Regenerates docs/cli.md from the live --help output of the four CLI
# tools, so the reference page can never drift from the binaries: CI runs
# this script against a fresh build and fails on `git diff docs/cli.md`.
#
# Usage: tools/gen_cli_docs.sh [build-dir]     (default: <repo>/build)
# The build dir must already contain reconcile_cli, reconcile_serve,
# graphgen_cli and graphstats_cli (cmake --build <dir> --target ...).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

for tool in reconcile_cli reconcile_serve graphgen_cli graphstats_cli; do
  if [[ ! -x "$BUILD/$tool" ]]; then
    echo "error: $BUILD/$tool not found — build the tools first" >&2
    echo "  cmake -B $BUILD -S $ROOT && cmake --build $BUILD -j" >&2
    exit 1
  fi
done

OUT="$ROOT/docs/cli.md"
mkdir -p "$ROOT/docs"

{
cat <<'EOF'
# CLI reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: tools/gen_cli_docs.sh [build-dir]
     The `--help` blocks below are captured verbatim from the binaries;
     CI re-runs the generator and diffs this file, so a flag added to a
     tool without regenerating the doc fails the build. -->

Four thin front-ends over the library (see [README.md](../README.md) for
the build and [DESIGN.md](../DESIGN.md) for the architecture they sit on):

- [`reconcile_cli`](#reconcile_cli) — run any registered reconciliation
  algorithm on any model × process × seeding scenario.
- [`reconcile_serve`](#reconcile_serve) — long-lived continuous
  reconciliation over a stream of edge deltas (DESIGN.md §2.6).
- [`graphgen_cli`](#graphgen_cli) — generate any supported graph model as
  a text/binary edge list.
- [`graphstats_cli`](#graphstats_cli) — structural statistics of a stored
  edge list.

All tools speak `--flag=value` (or `--flag value`; bare `--flag` means
true) and warn about unused flags, so typos are loud.

## reconcile_cli

One experiment end to end: build a hidden network, sample two partial
copies, draw seeds, run an algorithm, score against ground truth.

```text
EOF
"$BUILD/reconcile_cli" --help
cat <<'EOF'
```

### Runnable examples

One per knob family — each line works as written from the repo root after
a build (prefix `./build/`).

```sh
# Paper-style defaults: preferential attachment, independent sampling.
reconcile_cli

# --model / --process: RMAT pair with asymmetric edge survival.
reconcile_cli --model=rmat --rmat-scale=13 --s1=0.7 --s2=0.6

# --algorithm: registry key with inline params (same as --param spelling).
reconcile_cli --algorithm=percolation:threshold=3 --model=er --nodes=5000

# --param: merged into the algorithm spec (equivalent to shorthands).
reconcile_cli --param backend=hash,scheduler=static --threads=4

# --threshold / --iterations: the paper's T and k knobs.
reconcile_cli --threshold=3 --iterations=1

# --scoring-backend: radix (default) vs hash witness aggregation.
reconcile_cli --scoring-backend=hash

# --scheduler: work-stealing (default) vs static hot-path loops.
reconcile_cli --scheduler=static

# --placement: NUMA homing of the score shards; force 2 synthetic domains
# so the locality counters are meaningful on any host.
reconcile_cli --placement=domain --placement-domains=2 --phase-table

# --seed-bias / --attack: top-degree seeds under a sybil attack.
reconcile_cli --seed-bias=top --top-count=200 --attack=0.01

# --phase-table / --degree-table: per-round and per-degree telemetry.
reconcile_cli --phase-table --degree-table
```

## reconcile_serve

Continuous reconciliation as a service: hold a live matching over two
evolving graphs, repair it per delta batch, stay bit-identical to a
from-scratch batch run at every step.

```text
EOF
"$BUILD/reconcile_serve" --help
cat <<'EOF'
```

### Runnable examples

```sh
# Inputs for a serve session: a graph pair and a delta stream.
graphgen_cli --model=chunglu --nodes=2000 --exponent=2.3 --out=g.txt
printf 'add 1 7 9\ndel 2 3 4\ncommit\nadd 2 11 12\n' > deltas.log

# Serve with identity seeds, checkpointing every batch, keep the newest 3.
reconcile_serve --g1=g.txt --g2=g.txt --identity-seeds=200 \
    --deltas=deltas.log --checkpoint-dir=ckpt --checkpoint-keep=3 \
    --save-matching=served.txt

# Resume a killed session: restores the newest snapshot, fast-forwards the
# stream past the consumed records, continues bit-identically.
reconcile_serve --g1=g.txt --g2=g.txt --identity-seeds=200 \
    --deltas=deltas.log --checkpoint-dir=ckpt --resume

# Streaming from stdin with per-batch phase tables.
graph_mutator | reconcile_serve --g1=g.txt --g2=g.txt \
    --identity-seeds=200 --deltas=- --batch-deltas=128 --phase-table
```

## graphgen_cli

```text
EOF
"$BUILD/graphgen_cli" --help
cat <<'EOF'
```

### Runnable examples

```sh
# Chung-Lu power law with summary statistics.
graphgen_cli --model=chunglu --nodes=20000 --exponent=2.3 --out=cl.txt --stats

# RMAT in the compact binary format.
graphgen_cli --model=rmat --rmat-scale=14 --out=rmat14.bin --binary

# Three-block SBM.
graphgen_cli --model=sbm --blocks=1000,1000,500 --p-in=0.02 --p-out=0.0005 --out=sbm.txt
```

## graphstats_cli

```text
EOF
"$BUILD/graphstats_cli" --help
cat <<'EOF'
```

### Runnable examples

```sh
# Generate, then inspect (file argument comes first).
graphgen_cli --model=pa --nodes=10000 --m=10 --out=pa.txt
graphstats_cli pa.txt
graphstats_cli pa.txt --ccdf --cores
```
EOF
} > "$OUT"

echo "wrote $OUT"
