// graphgen_cli — generate any graph model supported by the library and
// write it to disk as a text or binary edge list.
//
// Examples:
//   graphgen_cli --model=pa --nodes=100000 --m=20 --out=pa.txt
//   graphgen_cli --model=er --nodes=5000 --er-p=0.004 --out=er.bin --binary
//   graphgen_cli --model=rmat --rmat-scale=18 --out=rmat18.txt
//   graphgen_cli --model=sbm --blocks=1000,1000,500 --p-in=0.02
//                --p-out=0.0005 --out=sbm.txt
//   graphgen_cli --model=facebook --scale=0.5 --out=fb.txt
//
// Flags (defaults in brackets):
//   --model       er | pa | rmat | chunglu | ws | sbm | config |
//                 facebook | enron | dblp | gowalla | affiliation  [pa]
//   --nodes       node count where applicable                      [10000]
//   --m           PA edges per node                                [10]
//   --er-p        ER edge probability                              [0.001]
//   --rmat-scale  RMAT scale                                       [16]
//   --rmat-edge-factor                                             [8]
//   --exponent    Chung-Lu / config power-law exponent             [2.5]
//   --avg-degree  Chung-Lu average degree                          [20]
//   --ws-k --ws-beta   Watts-Strogatz ring degree / rewire prob    [10 0.1]
//   --blocks      SBM comma-separated block sizes            [1000,1000]
//   --p-in --p-out    SBM densities                          [0.01 0.001]
//   --scale       dataset stand-in scale                           [0.25]
//   --out         output path (required)
//   --binary      write the compact binary format                  [false]
//   --stats       print a statistics summary after generating      [false]
//   --rng-seed    RNG seed                                         [42]

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "reconcile/eval/datasets.h"
#include "reconcile/gen/affiliation.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/gen/configuration.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/gen/rmat.h"
#include "reconcile/gen/sbm.h"
#include "reconcile/gen/watts_strogatz.h"
#include "reconcile/graph/io.h"
#include "reconcile/graph/statistics.h"
#include "reconcile/util/flags.h"
#include "reconcile/util/rng.h"

namespace reconcile {
namespace {

std::vector<NodeId> ParseBlockSizes(const std::string& spec) {
  std::vector<NodeId> sizes;
  std::string current;
  for (char c : spec + ",") {
    if (c == ',') {
      if (!current.empty()) {
        sizes.push_back(static_cast<NodeId>(std::stoul(current)));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  return sizes;
}

int Run(int argc, const char* const argv[]) {
  Flags flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::cerr << "flag error: " << error << "\n";
    return 2;
  }

  const std::string model = flags.GetString("model", "pa");
  const NodeId nodes = static_cast<NodeId>(flags.GetInt("nodes", 10000));
  const uint64_t rng_seed = static_cast<uint64_t>(flags.GetInt("rng-seed", 42));
  const std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::cerr << "--out is required\n";
    return 2;
  }

  Graph g;
  if (model == "er") {
    g = GenerateErdosRenyi(nodes, flags.GetDouble("er-p", 0.001), rng_seed);
  } else if (model == "pa") {
    g = GeneratePreferentialAttachment(
        nodes, static_cast<int>(flags.GetInt("m", 10)), rng_seed);
  } else if (model == "rmat") {
    RmatParams params;
    params.scale = static_cast<int>(flags.GetInt("rmat-scale", 16));
    params.edge_factor = flags.GetDouble("rmat-edge-factor", 8.0);
    g = GenerateRmat(params, rng_seed);
  } else if (model == "chunglu") {
    g = GenerateChungLu(PowerLawWeights(nodes,
                                        flags.GetDouble("exponent", 2.5),
                                        flags.GetDouble("avg-degree", 20.0)),
                        rng_seed);
  } else if (model == "ws") {
    g = GenerateWattsStrogatz(nodes, static_cast<int>(flags.GetInt("ws-k", 10)),
                              flags.GetDouble("ws-beta", 0.1), rng_seed);
  } else if (model == "sbm") {
    SbmParams params;
    params.block_sizes =
        ParseBlockSizes(flags.GetString("blocks", "1000,1000"));
    params.p_in = flags.GetDouble("p-in", 0.01);
    params.p_out = flags.GetDouble("p-out", 0.001);
    g = GenerateSbm(params, rng_seed);
  } else if (model == "config") {
    // Power-law degree sequence realized exactly via the erased
    // configuration model.
    std::vector<double> weights = PowerLawWeights(
        nodes, flags.GetDouble("exponent", 2.5),
        flags.GetDouble("avg-degree", 20.0));
    std::vector<NodeId> degrees(weights.size());
    size_t sum = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      degrees[i] = static_cast<NodeId>(weights[i] + 0.5);
      sum += degrees[i];
    }
    if (sum % 2 == 1) ++degrees[0];
    g = GenerateConfigurationModel(degrees, rng_seed);
  } else if (model == "facebook") {
    g = MakeFacebookStandin(flags.GetDouble("scale", 0.25), rng_seed);
  } else if (model == "enron") {
    g = MakeEnronStandin(flags.GetDouble("scale", 0.25), rng_seed);
  } else if (model == "dblp") {
    g = MakeDblpStandin(flags.GetDouble("scale", 0.25), rng_seed);
  } else if (model == "gowalla") {
    g = MakeGowallaStandin(flags.GetDouble("scale", 0.25), rng_seed);
  } else if (model == "affiliation") {
    g = MakeAffiliationStandin(flags.GetDouble("scale", 0.25), rng_seed)
            .Fold();
  } else {
    std::cerr << "unknown --model=" << model << "\n";
    return 2;
  }

  const bool binary = flags.GetBool("binary", false);
  const bool print_stats = flags.GetBool("stats", false);
  for (const std::string& key : flags.UnusedKeys()) {
    std::cerr << "warning: unused flag --" << key << "\n";
  }

  const bool ok = binary ? WriteEdgeListBinary(g, out_path)
                         : WriteEdgeListText(g, out_path);
  if (!ok) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges to " << out_path << (binary ? " (binary)" : " (text)")
            << "\n";
  if (print_stats) {
    std::cout << SummarizeStatistics(ComputeStatistics(g)) << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace reconcile

int main(int argc, char** argv) { return reconcile::Run(argc, argv); }
