#!/usr/bin/env bash
# Builds and runs the perf-trajectory benchmarks, writing JSON baselines to
# the repo root:
#   BENCH_micro.json    — substrate hot paths + end-to-end matching
#                         (serial- vs parallel-selection, 1/2/4 threads)
#   BENCH_scaling.json  — Table-2 RMAT scaling shape
#
# Usage: tools/run_bench.sh [extra google-benchmark flags...]
# The build directory defaults to <repo>/build-bench; override with
# BUILD_DIR=... Compare JSONs across PRs to track the perf trajectory.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-bench}"

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DRECONCILE_BUILD_BENCHMARKS=ON \
  -DRECONCILE_BUILD_TESTS=OFF \
  -DRECONCILE_BUILD_TOOLS=OFF
cmake --build "$BUILD" -j "$(nproc)" --target bench_micro bench_table2_scaling

"$BUILD/bench_micro" --benchmark_format=json "$@" > "$ROOT/BENCH_micro.json"
"$BUILD/bench_table2_scaling" --benchmark_format=json "$@" \
  > "$ROOT/BENCH_scaling.json"

echo "wrote $ROOT/BENCH_micro.json and $ROOT/BENCH_scaling.json"
