#!/usr/bin/env bash
# Builds and runs the perf-trajectory benchmarks, writing JSON baselines to
# the repo root:
#   BENCH_micro.json    — substrate hot paths + end-to-end matching
#                         (radix vs hash scoring backends, serial vs
#                         parallel selection, 1/2/4 threads)
#   BENCH_scaling.json  — Table-2 RMAT scaling shape (both backends)
#   BENCH_skew.json     — hub-heavy Chung-Lu matching, scheduler x backend
#                         (static vs work-stealing emission, LSM tier store
#                         on/off; emit_s / merge_s counters carry the
#                         per-phase split)
#   BENCH_outofcore.json — memory-budgeted matching under 4x and 16x score
#                         state pressure vs the unbudgeted baseline; the 4x
#                         series must stay under 2x the baseline real_time
#                         (tiers_spilled / spilled_mb confirm the spill
#                         path ran)
#   BENCH_streaming.json — incremental serve-mode match repair per delta
#                         batch (16/64/256/1024 deltas) vs a from-scratch
#                         batch re-run; the speedup is BM_BatchRerun over
#                         BM_StreamingRepair/<batch> real_time, and the
#                         dirty_links / rescored_units / replayed_rounds
#                         counters show how the repair scope grows
#   BENCH_dist.json     — multi-process matching at 1/2/4 workers plus a
#                         2-worker series under an injected kill storm;
#                         BM_DistWorkers/1 is the in-process baseline, so
#                         the other series over it read as coordination
#                         overhead / failure-repair cost (msgs / wire_mb /
#                         retries / reassigned counters confirm what ran)
#
# Usage: tools/run_bench.sh [extra google-benchmark flags...]
# The build directory defaults to <repo>/build-bench; override with
# BUILD_DIR=... Compare JSONs across PRs to track the perf trajectory.
#
# Baselines are only written from Release builds: the script fails if an
# emitted context block reports a debug build. Each JSON also embeds the
# git SHA it was produced from (context key `reconcile_git_sha`; the
# configure step runs fresh here, so the SHA matches HEAD).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-bench}"

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DRECONCILE_BUILD_BENCHMARKS=ON \
  -DRECONCILE_BUILD_TESTS=OFF \
  -DRECONCILE_BUILD_TOOLS=OFF
cmake --build "$BUILD" -j "$(nproc)" --target bench_micro bench_table2_scaling bench_skew bench_outofcore bench_streaming bench_dist

# Refuse to bless a baseline whose context says the measured code was not a
# Release build. Output goes to a temp file first so a failed check never
# clobbers the previous blessed baseline.
check_release() {
  local json="$1"
  if ! grep -q '"library_build_type": "release"' "$json"; then
    echo "error: $json does not report \"library_build_type\": \"release\"" >&2
    exit 1
  fi
  if grep -q '"library_build_type": "debug"' "$json" ||
     grep -q '"reconcile_build_type": "debug"' "$json"; then
    echo "error: $json reports a debug build; baselines must be Release" >&2
    exit 1
  fi
}

TMP_MICRO="$(mktemp)"
TMP_SCALING="$(mktemp)"
TMP_SKEW="$(mktemp)"
TMP_OUTOFCORE="$(mktemp)"
TMP_STREAMING="$(mktemp)"
TMP_DIST="$(mktemp)"
trap 'rm -f "$TMP_MICRO" "$TMP_SCALING" "$TMP_SKEW" "$TMP_OUTOFCORE" "$TMP_STREAMING" "$TMP_DIST"' EXIT

"$BUILD/bench_micro" --benchmark_format=json "$@" > "$TMP_MICRO"
check_release "$TMP_MICRO"
"$BUILD/bench_table2_scaling" --benchmark_format=json "$@" > "$TMP_SCALING"
check_release "$TMP_SCALING"
"$BUILD/bench_skew" --benchmark_format=json "$@" > "$TMP_SKEW"
check_release "$TMP_SKEW"
"$BUILD/bench_outofcore" --benchmark_format=json "$@" > "$TMP_OUTOFCORE"
check_release "$TMP_OUTOFCORE"
"$BUILD/bench_streaming" --benchmark_format=json "$@" > "$TMP_STREAMING"
check_release "$TMP_STREAMING"
"$BUILD/bench_dist" --benchmark_format=json "$@" > "$TMP_DIST"
check_release "$TMP_DIST"

mv "$TMP_MICRO" "$ROOT/BENCH_micro.json"
mv "$TMP_SCALING" "$ROOT/BENCH_scaling.json"
mv "$TMP_SKEW" "$ROOT/BENCH_skew.json"
mv "$TMP_OUTOFCORE" "$ROOT/BENCH_outofcore.json"
mv "$TMP_STREAMING" "$ROOT/BENCH_streaming.json"
mv "$TMP_DIST" "$ROOT/BENCH_dist.json"

echo "wrote $ROOT/BENCH_micro.json, $ROOT/BENCH_scaling.json," \
     "$ROOT/BENCH_skew.json, $ROOT/BENCH_outofcore.json," \
     "$ROOT/BENCH_streaming.json and $ROOT/BENCH_dist.json"
