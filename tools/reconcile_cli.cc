// reconcile_cli — run any reconciliation experiment from the command line.
//
// The pipeline mirrors the library (and the paper): pick an underlying
// network model, a two-copy realization process, a seeding strategy and an
// *algorithm* — any key registered in `Registry::Global()` (the core
// User-Matching matcher or any baseline), configured uniformly through
// `key=value` parameters. The tool reports good/bad link counts, precision
// and recall against the hidden ground truth, optionally stratified by
// degree, and can persist the generated copies.
//
// Examples:
//   reconcile_cli --model=pa --nodes=50000 --m=20 --process=independent
//                 --s1=0.5 --s2=0.5 --seed-fraction=0.1 --threshold=2
//   reconcile_cli --model=facebook --scale=0.25 --process=cascade --p=0.05
//   reconcile_cli --algorithm=percolation --param threshold=3
//   reconcile_cli --algorithm=ns09:theta=1,max-sweeps=3 --model=er
//   reconcile_cli --list-algorithms
//
// Flags (defaults in brackets):
//   --model         er | pa | rmat | chunglu | ws | facebook | enron |
//                   dblp | gowalla | wikipedia | affiliation   [pa]
//   --nodes         node count for er/pa/chunglu/ws             [20000]
//   --m             PA edges per node                           [20]
//   --er-p          ER edge probability                         [0.001]
//   --rmat-scale    RMAT scale (2^scale nodes)                  [16]
//   --exponent      Chung-Lu power-law exponent                 [2.5]
//   --avg-degree    Chung-Lu average degree                     [20]
//   --scale         dataset stand-in scale in (0,1]             [0.25]
//   --process       independent | cascade | timeslice | community [independent]
//   --s1 --s2       edge survival probabilities                 [0.5 0.5]
//   --node-keep1/2  node survival probabilities                 [1 1]
//   --noise1/2      noise-edge fraction                         [0 0]
//   --p             cascade probability                         [0.05]
//   --delete-prob   community (interest) deletion probability   [0.25]
//   --periods --repeat-lambda --participation   timeslice knobs [12 1.0 1.0]
//   --attack        sybil attach probability (0 = no attack)    [0]
//   --seed-fraction seed link probability l                     [0.1]
//   --seed-bias     uniform | degree | top                      [uniform]
//   --top-count     #seeds for --seed-bias=top                  [100]
//   --wrong-seeds   fraction of corrupted seeds                 [0]
//   --algorithm     registry key, optionally with inline params
//                   ("core", "percolation:threshold=3")         [core]
//   --param         k=v[,k=v...] merged into the algorithm spec
//   --list-algorithms / --help   print the registered algorithms
//   --threshold     shorthand for --param threshold=...         [2]
//   --iterations    shorthand for --param iterations=...        [2]
//   --no-bucketing  shorthand for --param bucketing=false       [false]
//   --serial-selection  shorthand for --param parallel-selection=false
//   --scoring-backend   shorthand for --param backend=hash|radix
//   --scheduler     shorthand for --param scheduler=auto|static|stealing
//                   (hot-path loop scheduling; stealing is the default)
//   --grain         shorthand for --param grain=... (work-stealing chunk
//                   size, 0 = auto)
//   --threads       shorthand for --param threads=...           [0]
//   --phase-table   print the per-round emit/scan/select split  [false]
//   --baseline      DEPRECATED alias: also run this algorithm
//                   after the main one (use --algorithm)        [none]
//   --degree-table  print per-degree-band precision/recall      [false]
//   --rng-seed      master RNG seed                             [42]
//   --save-g1/--save-g2   write copies as text edge lists

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "reconcile/api/registry.h"
#include "reconcile/api/spec.h"
#include "reconcile/eval/datasets.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/eval/table.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/gen/rmat.h"
#include "reconcile/gen/watts_strogatz.h"
#include "reconcile/graph/io.h"
#include "reconcile/sampling/attack.h"
#include "reconcile/sampling/cascade.h"
#include "reconcile/sampling/community.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/sampling/timeslice.h"
#include "reconcile/seed/seeding.h"
#include "reconcile/util/flags.h"
#include "reconcile/util/logging.h"
#include "reconcile/util/timer.h"

namespace reconcile {
namespace {

void PrintAlgorithms() {
  // Everything here comes from the registry, so extension algorithms and
  // new parameters show up without touching the CLI.
  std::printf("registered algorithms (--algorithm=<key>[:k=v,...], extra "
              "--param k=v[,k=v...]):\n%s",
              Registry::Global().DescribeAll().c_str());
}

// Builds the main algorithm spec: --algorithm (key plus optional inline
// params), --param lists, then the legacy shorthand flags — only when
// explicitly passed, so non-core algorithms aren't polluted with matcher
// defaults they would reject.
bool BuildSpec(const Flags& flags, ReconcilerSpec* spec, std::string* error) {
  if (!ReconcilerSpec::Parse(flags.GetString("algorithm", "core"), spec,
                             error)) {
    return false;
  }
  if (flags.Has("param") &&
      !spec->MergeParams(flags.GetString("param", ""), error)) {
    return false;
  }
  if (flags.Has("threshold")) {
    spec->Set("threshold", std::to_string(flags.GetInt("threshold", 2)));
  }
  if (flags.Has("iterations")) {
    spec->Set("iterations", std::to_string(flags.GetInt("iterations", 2)));
  }
  if (flags.Has("threads")) {
    spec->Set("threads", std::to_string(flags.GetInt("threads", 0)));
  }
  if (flags.GetBool("no-bucketing", false)) {
    spec->Set("bucketing", "false");
  }
  if (flags.GetBool("serial-selection", false)) {
    spec->Set("parallel-selection", "false");
  }
  if (flags.Has("scoring-backend")) {
    spec->Set("backend", flags.GetString("scoring-backend", "radix"));
  }
  if (flags.Has("scheduler")) {
    spec->Set("scheduler", flags.GetString("scheduler", "auto"));
  }
  if (flags.Has("grain")) {
    spec->Set("grain", std::to_string(flags.GetInt("grain", 0)));
  }
  return true;
}

// The deprecated --baseline=<key> comparison: map the old hand-tuned
// configurations onto registry specs.
ReconcilerSpec BaselineAliasSpec(const std::string& baseline) {
  ReconcilerSpec spec(baseline);
  if (baseline == "simple") spec.Set("threshold", "1");
  if (baseline == "ns09") spec.Set("theta", "1");
  return spec;
}

void PrintQuality(const MatchQuality& quality) {
  std::printf("  good %zu | bad %zu | precision %.2f%% | recall(all) %.2f%% | "
              "recall(new) %.2f%%\n",
              quality.new_good, quality.new_bad, 100.0 * quality.precision,
              100.0 * quality.recall_all, 100.0 * quality.recall_new);
}

int RunCli(const Flags& flags) {
  if (flags.GetBool("help", false) || flags.GetBool("list-algorithms", false)) {
    PrintAlgorithms();
    return 0;
  }

  const uint64_t rng_seed = static_cast<uint64_t>(flags.GetInt("rng-seed", 42));
  const std::string model = flags.GetString("model", "pa");
  const std::string process = flags.GetString("process", "independent");
  const double scale = flags.GetDouble("scale", 0.25);

  // --- Algorithm resolution (fail before the expensive pair build). ------
  ReconcilerSpec spec;
  std::string error;
  if (!BuildSpec(flags, &spec, &error)) {
    std::fprintf(stderr, "bad --algorithm/--param: %s\n", error.c_str());
    return 2;
  }
  std::unique_ptr<Reconciler> reconciler =
      Registry::Global().Create(spec, &error);
  if (reconciler == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    PrintAlgorithms();
    return 2;
  }

  // --- Underlying network / pair construction. ---------------------------
  Timer build_timer;
  RealizationPair pair;
  bool pair_ready = false;
  Graph underlying;
  if (model == "er") {
    underlying = GenerateErdosRenyi(
        static_cast<NodeId>(flags.GetInt("nodes", 20000)),
        flags.GetDouble("er-p", 0.001), rng_seed);
  } else if (model == "pa") {
    underlying = GeneratePreferentialAttachment(
        static_cast<NodeId>(flags.GetInt("nodes", 20000)),
        static_cast<int>(flags.GetInt("m", 20)), rng_seed);
  } else if (model == "rmat") {
    RmatParams params;
    params.scale = static_cast<int>(flags.GetInt("rmat-scale", 16));
    underlying = GenerateRmat(params, rng_seed);
  } else if (model == "chunglu") {
    std::vector<double> weights = PowerLawWeights(
        static_cast<NodeId>(flags.GetInt("nodes", 20000)),
        flags.GetDouble("exponent", 2.5), flags.GetDouble("avg-degree", 20.0));
    underlying = GenerateChungLu(weights, rng_seed);
  } else if (model == "ws") {
    underlying = GenerateWattsStrogatz(
        static_cast<NodeId>(flags.GetInt("nodes", 20000)), 10, 0.1, rng_seed);
  } else if (model == "facebook") {
    underlying = MakeFacebookStandin(scale, rng_seed);
  } else if (model == "enron") {
    underlying = MakeEnronStandin(scale, rng_seed);
  } else if (model == "dblp") {
    underlying = MakeDblpStandin(scale, rng_seed);
  } else if (model == "gowalla") {
    underlying = MakeGowallaStandin(scale, rng_seed);
  } else if (model == "wikipedia") {
    pair = MakeWikipediaPair(scale, rng_seed);
    pair_ready = true;
  } else if (model == "affiliation") {
    AffiliationNetwork net = MakeAffiliationStandin(scale, rng_seed);
    RECONCILE_CHECK(process == "community")
        << "--model=affiliation requires --process=community";
    pair = SampleCommunity(net, flags.GetDouble("delete-prob", 0.25),
                           rng_seed + 1);
    pair_ready = true;
  } else {
    std::fprintf(stderr, "unknown --model=%s\n", model.c_str());
    return 2;
  }

  if (!pair_ready) {
    if (process == "independent") {
      IndependentSampleOptions options;
      options.s1 = flags.GetDouble("s1", 0.5);
      options.s2 = flags.GetDouble("s2", 0.5);
      options.node_keep1 = flags.GetDouble("node-keep1", 1.0);
      options.node_keep2 = flags.GetDouble("node-keep2", 1.0);
      options.noise1 = flags.GetDouble("noise1", 0.0);
      options.noise2 = flags.GetDouble("noise2", 0.0);
      pair = SampleIndependent(underlying, options, rng_seed + 1);
    } else if (process == "cascade") {
      CascadeSampleOptions options;
      options.p = flags.GetDouble("p", 0.05);
      pair = SampleCascade(underlying, options, rng_seed + 1);
    } else if (process == "timeslice") {
      TimesliceOptions options;
      options.num_periods = static_cast<int>(flags.GetInt("periods", 12));
      options.repeat_lambda = flags.GetDouble("repeat-lambda", 1.0);
      options.participation = flags.GetDouble("participation", 1.0);
      pair = SampleTimeslice(underlying, options, rng_seed + 1);
    } else {
      std::fprintf(stderr, "unknown --process=%s for model %s\n",
                   process.c_str(), model.c_str());
      return 2;
    }
  }

  double attack = flags.GetDouble("attack", 0.0);
  if (attack > 0.0) {
    AttackOptions options;
    options.attach_prob = attack;
    pair = ApplyAttack(pair, options, rng_seed + 2);
  }
  std::printf("pair built in %.2fs: g1 %u nodes / %zu edges, g2 %u nodes / "
              "%zu edges, identifiable %zu\n",
              build_timer.Seconds(), pair.g1.num_nodes(), pair.g1.num_edges(),
              pair.g2.num_nodes(), pair.g2.num_edges(),
              pair.NumIdentifiable());

  if (flags.Has("save-g1")) {
    RECONCILE_CHECK(WriteEdgeListText(pair.g1, flags.GetString("save-g1", "")));
  }
  if (flags.Has("save-g2")) {
    RECONCILE_CHECK(WriteEdgeListText(pair.g2, flags.GetString("save-g2", "")));
  }

  // --- Seeds. -------------------------------------------------------------
  SeedOptions seeding;
  seeding.fraction = flags.GetDouble("seed-fraction", 0.1);
  seeding.wrong_fraction = flags.GetDouble("wrong-seeds", 0.0);
  std::string bias = flags.GetString("seed-bias", "uniform");
  if (bias == "degree") {
    seeding.bias = SeedBias::kDegreeProportional;
  } else if (bias == "top") {
    seeding.bias = SeedBias::kTopDegree;
    seeding.fixed_count = static_cast<size_t>(flags.GetInt("top-count", 100));
  } else {
    RECONCILE_CHECK(bias == "uniform") << "unknown --seed-bias=" << bias;
  }
  auto seeds = GenerateSeeds(pair, seeding, rng_seed + 3);
  std::printf("seeds: %zu (bias=%s)\n", seeds.size(), bias.c_str());

  // --- Match. --------------------------------------------------------------
  MatchResult result = reconciler->Run(pair.g1, pair.g2, seeds);
  MatchQuality quality = Evaluate(pair, result);
  std::printf("\n%s: %.2fs, %zu rounds\n", reconciler->Describe().c_str(),
              result.total_seconds, result.phases.size());
  if (reconciler->ExposesPhaseStats() && !result.phases.empty()) {
    const MatchResult::PhaseTimeTotals split = result.SumPhaseSeconds();
    std::printf("  phase split: emit %.2fs | merge %.2fs | scan %.2fs | "
                "select %.2fs (%d threads)\n",
                split.emit_seconds, split.merge_seconds, split.scan_seconds,
                split.select_seconds, result.phases.front().num_threads);
  }
  PrintQuality(quality);

  if (flags.GetBool("phase-table", false)) {
    Table table({"iter", "bucket", "links in", "emissions", "pairs", "new",
                 "emit s", "merge s", "scan s", "select s"});
    for (const PhaseStats& phase : result.phases) {
      table.AddRow({std::to_string(phase.iteration),
                    std::to_string(phase.bucket_exponent),
                    std::to_string(phase.links_in),
                    std::to_string(phase.emissions),
                    std::to_string(phase.candidate_pairs),
                    std::to_string(phase.new_links),
                    FormatDouble(phase.emit_seconds, 3),
                    FormatDouble(phase.merge_seconds, 3),
                    FormatDouble(phase.scan_seconds, 3),
                    FormatDouble(phase.select_seconds, 3)});
    }
    table.Print(std::cout);
  }

  if (flags.GetBool("degree-table", false)) {
    Table table({"degree band", "identifiable", "good", "bad", "precision",
                 "recall"});
    for (const DegreeBandQuality& band : EvaluateByDegree(pair, result)) {
      std::string label =
          band.max_degree == kInvalidNode
              ? std::to_string(band.min_degree) + "+"
              : std::to_string(band.min_degree) + "-" +
                    std::to_string(band.max_degree);
      table.AddRow({label, std::to_string(band.identifiable),
                    std::to_string(band.new_good),
                    std::to_string(band.new_bad),
                    FormatPercent(band.precision),
                    FormatPercent(band.recall)});
    }
    table.Print(std::cout);
  }

  // --- Deprecated --baseline alias: run a second algorithm for comparison.
  std::string baseline = flags.GetString("baseline", "none");
  if (baseline != "none") {
    ReconcilerSpec alias = BaselineAliasSpec(baseline);
    std::fprintf(stderr,
                 "warning: --baseline is deprecated; use "
                 "--algorithm=%s (running it additionally for comparison)\n",
                 alias.ToString().c_str());
    std::unique_ptr<Reconciler> comparison =
        Registry::Global().Create(alias, &error);
    if (comparison == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    MatchResult b = comparison->Run(pair.g1, pair.g2, seeds);
    std::printf("\n%s: %.2fs\n", comparison->Describe().c_str(),
                b.total_seconds);
    PrintQuality(Evaluate(pair, b));
  }

  for (const std::string& key : flags.UnusedKeys()) {
    std::fprintf(stderr, "warning: unused flag --%s\n", key.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace reconcile

int main(int argc, char** argv) {
  reconcile::Flags flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  return reconcile::RunCli(flags);
}
