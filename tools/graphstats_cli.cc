// graphstats_cli — print structural statistics of a graph stored as a text
// or binary edge list (as written by graphgen_cli / WriteEdgeListText).
//
// Examples (put the file first: a bare `--flag path` would swallow the
// path as the flag's value):
//   graphstats_cli pa.txt
//   graphstats_cli rmat18.bin --binary
//   graphstats_cli pa.txt --ccdf          # also dump the degree CCDF
//   graphstats_cli pa.txt --cores         # also dump the k-core profile
//
// Flags:
//   --binary     input is the compact binary format      [false]
//   --ccdf       print degree CCDF at decade points      [false]
//   --cores      print k-core occupancy                  [false]
//   --power-law-dmin   d_min for the alpha MLE           [5]

#include <cstdio>
#include <iostream>
#include <string>

#include "reconcile/eval/table.h"
#include "reconcile/graph/io.h"
#include "reconcile/graph/statistics.h"
#include "reconcile/util/flags.h"

namespace reconcile {
namespace {

int Run(int argc, const char* const argv[]) {
  Flags flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::cerr << "flag error: " << error << "\n";
    return 2;
  }
  if (flags.positional().size() != 1) {
    std::cerr << "usage: graphstats_cli <edge-list-file> [--binary] [--ccdf] "
                 "[--cores]\n";
    return 2;
  }
  const std::string path = flags.positional()[0];
  EdgeList edges;
  const bool ok = flags.GetBool("binary", false)
                      ? ReadEdgeListBinary(path, &edges)
                      : ReadEdgeListText(path, &edges);
  if (!ok) {
    std::cerr << "failed to read " << path << "\n";
    return 1;
  }
  Graph g = Graph::FromEdgeList(std::move(edges));

  StatisticsOptions options;
  options.power_law_dmin =
      static_cast<NodeId>(flags.GetInt("power-law-dmin", 5));
  const GraphStatistics s = ComputeStatistics(g, options);

  Table table({"statistic", "value"});
  table.AddRow({"nodes", std::to_string(s.num_nodes)});
  table.AddRow({"edges", std::to_string(s.num_edges)});
  table.AddRow({"avg degree", FormatDouble(s.avg_degree, 2)});
  table.AddRow({"median degree", std::to_string(s.median_degree)});
  table.AddRow({"max degree", std::to_string(s.max_degree)});
  table.AddRow({"frac degree <= 5", FormatPercent(s.frac_degree_le5, 1)});
  table.AddRow({"components", std::to_string(s.num_components)});
  table.AddRow({"largest component",
                FormatPercent(s.largest_component_frac, 1)});
  table.AddRow({"triangles", std::to_string(s.num_triangles)});
  table.AddRow({"global clustering", FormatDouble(s.global_clustering, 4)});
  table.AddRow({"degree assortativity",
                FormatDouble(s.degree_assortativity, 4)});
  table.AddRow({"diameter (lower bound)",
                std::to_string(s.diameter_lower_bound)});
  table.AddRow({"degeneracy", std::to_string(s.degeneracy)});
  table.AddRow({"power-law alpha (MLE)",
                s.power_law_alpha > 0 ? FormatDouble(s.power_law_alpha, 3)
                                      : "undefined"});
  table.Print(std::cout);

  if (flags.GetBool("ccdf", false)) {
    std::cout << "\ndegree CCDF (fraction of nodes with degree >= d):\n";
    const std::vector<double> ccdf = DegreeCcdf(g);
    for (size_t d = 1; d < ccdf.size(); d = d < 10 ? d + 1 : d * 2) {
      std::printf("  d >= %-8zu %.6f\n", d, ccdf[d]);
    }
  }

  if (flags.GetBool("cores", false)) {
    std::cout << "\nk-core occupancy (nodes with core number >= k):\n";
    const std::vector<NodeId> core = CoreNumbers(g);
    for (NodeId k = 1; k <= s.degeneracy; k = k < 10 ? k + 1 : k * 2) {
      size_t count = 0;
      for (NodeId c : core)
        if (c >= k) ++count;
      std::printf("  k = %-8u %zu\n", k, count);
    }
  }
  return 0;
}

}  // namespace
}  // namespace reconcile

int main(int argc, char** argv) { return reconcile::Run(argc, argv); }
