// SortCountByKey must produce exactly the aggregate CountByKey produces —
// every emitted key with its multiplicity — independent of map/reduce shard
// counts and thread counts, with each shard's run sorted and routed by the
// caller's shard function.
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/mr/mapreduce.h"
#include "reconcile/util/rng.h"

namespace reconcile {
namespace {

// Deterministic emission pattern with heavy duplication across items.
void EmitPattern(size_t item, const std::function<void(uint64_t)>& emit) {
  emit(HashMix64(item) % 4096);
  emit(HashMix64(item * 31) % 4096);
  if (item % 3 == 0) emit(HashMix64(item) % 4096);  // repeat within one item
}

std::map<uint64_t, uint64_t> ReferenceCounts(size_t num_items) {
  std::map<uint64_t, uint64_t> expected;
  for (size_t item = 0; item < num_items; ++item) {
    EmitPattern(item, [&expected](uint64_t key) { ++expected[key]; });
  }
  return expected;
}

// Range partition over the 4096-value key domain used by EmitPattern.
int RangeShard(uint64_t key, int num_shards) {
  return static_cast<int>(key * static_cast<uint64_t>(num_shards) / 4096);
}

TEST(SortCountByKeyTest, MatchesSequentialCounts) {
  constexpr size_t kItems = 20000;
  const std::map<uint64_t, uint64_t> expected = ReferenceCounts(kItems);

  ThreadPool pool(4);
  const int num_reduce_shards = 8;
  std::vector<SortedCountRun> runs = mr::SortCountByKey(
      &pool, kItems, 16, num_reduce_shards,
      [](size_t item, auto emit) { EmitPattern(item, emit); },
      [num_reduce_shards](uint64_t key) {
        return RangeShard(key, num_reduce_shards);
      });

  std::map<uint64_t, uint64_t> actual;
  for (int r = 0; r < num_reduce_shards; ++r) {
    uint64_t last = 0;
    bool first = true;
    runs[static_cast<size_t>(r)].ForEach([&](uint64_t key, uint32_t count) {
      // Routed to the right shard, sorted strictly within it.
      EXPECT_EQ(RangeShard(key, num_reduce_shards), r);
      if (!first) {
        EXPECT_GT(key, last);
      }
      last = key;
      first = false;
      actual[key] += count;
    });
  }
  EXPECT_EQ(actual, expected);
}

TEST(SortCountByKeyTest, AggregateMatchesCountByKey) {
  constexpr size_t kItems = 10000;
  ThreadPool pool(3);
  auto map_fn = [](size_t item, auto emit) { EmitPattern(item, emit); };

  std::vector<FlatCountMap> hash_shards =
      mr::CountByKey(&pool, kItems, 8, 5, map_fn);
  std::vector<SortedCountRun> runs = mr::SortCountByKey(
      &pool, kItems, 8, 5, map_fn,
      [](uint64_t key) { return RangeShard(key, 5); });

  std::map<uint64_t, uint64_t> from_hash;
  for (const FlatCountMap& shard : hash_shards) {
    shard.ForEach(
        [&from_hash](uint64_t key, uint32_t count) { from_hash[key] += count; });
  }
  std::map<uint64_t, uint64_t> from_runs;
  for (const SortedCountRun& run : runs) {
    run.ForEach(
        [&from_runs](uint64_t key, uint32_t count) { from_runs[key] += count; });
  }
  EXPECT_EQ(from_hash, from_runs);
}

TEST(SortCountByKeyTest, ShardAndThreadCountInvariance) {
  constexpr size_t kItems = 5000;
  const std::map<uint64_t, uint64_t> expected = ReferenceCounts(kItems);
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    for (int map_shards : {1, 7}) {
      for (int reduce_shards : {1, 3, 13}) {
        std::vector<SortedCountRun> runs = mr::SortCountByKey(
            &pool, kItems, map_shards, reduce_shards,
            [](size_t item, auto emit) { EmitPattern(item, emit); },
            [reduce_shards](uint64_t key) {
              return RangeShard(key, reduce_shards);
            });
        std::map<uint64_t, uint64_t> actual;
        for (const SortedCountRun& run : runs) {
          run.ForEach(
              [&actual](uint64_t key, uint32_t count) { actual[key] += count; });
        }
        EXPECT_EQ(actual, expected)
            << "threads=" << threads << " map=" << map_shards
            << " reduce=" << reduce_shards;
      }
    }
  }
}

TEST(SortCountByKeyTest, NoItemsYieldsEmptyRuns) {
  ThreadPool pool(2);
  std::vector<SortedCountRun> runs = mr::SortCountByKey(
      &pool, 0, 4, 4, [](size_t, auto) {}, [](uint64_t) { return 0; });
  ASSERT_EQ(runs.size(), 4u);
  for (const SortedCountRun& run : runs) EXPECT_TRUE(run.empty());
}

}  // namespace
}  // namespace reconcile
