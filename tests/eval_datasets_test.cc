#include "reconcile/eval/datasets.h"

#include <gtest/gtest.h>

namespace reconcile {
namespace {

constexpr double kTestScale = 0.1;  // keep generation fast in tests

TEST(DatasetsTest, FacebookStandinShape) {
  Graph g = MakeFacebookStandin(kTestScale, 3);
  EXPECT_NEAR(g.num_nodes(), 6373, 10);
  double avg = static_cast<double>(g.degree_sum()) / g.num_nodes();
  EXPECT_NEAR(avg, 48.5, 15.0);
  EXPECT_GT(g.max_degree(), 4 * avg);  // heavy tail
}

TEST(DatasetsTest, EnronStandinIsSparser) {
  Graph facebook = MakeFacebookStandin(kTestScale, 5);
  Graph enron = MakeEnronStandin(kTestScale, 5);
  double fb_avg =
      static_cast<double>(facebook.degree_sum()) / facebook.num_nodes();
  double enron_avg =
      static_cast<double>(enron.degree_sum()) / enron.num_nodes();
  EXPECT_LT(enron_avg, fb_avg / 1.8);
}

TEST(DatasetsTest, DblpStandinHasManyLowDegreeNodes) {
  Graph g = MakeDblpStandin(kTestScale, 7);
  size_t low_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) <= 5) ++low_degree;
  }
  EXPECT_GT(low_degree, g.num_nodes() / 2);
}

TEST(DatasetsTest, GowallaStandinShape) {
  Graph g = MakeGowallaStandin(kTestScale, 9);
  double avg = static_cast<double>(g.degree_sum()) / g.num_nodes();
  EXPECT_NEAR(avg, 9.7, 4.0);
}

TEST(DatasetsTest, AffiliationStandinFoldsDense) {
  AffiliationNetwork net = MakeAffiliationStandin(0.05, 11);
  Graph g = net.Fold();
  double avg = static_cast<double>(g.degree_sum()) / g.num_nodes();
  EXPECT_GT(avg, 5.0);  // folded graphs are much denser than the bipartite one
}

TEST(DatasetsTest, WikipediaPairIsAsymmetric) {
  RealizationPair pair = MakeWikipediaPair(kTestScale, 13);
  size_t active1 = 0, active2 = 0;
  for (NodeId v = 0; v < pair.g1.num_nodes(); ++v) {
    if (pair.g1.degree(v) > 0) ++active1;
  }
  for (NodeId v = 0; v < pair.g2.num_nodes(); ++v) {
    if (pair.g2.degree(v) > 0) ++active2;
  }
  // "French" copy keeps ~80% of nodes, "German" ~55%.
  EXPECT_GT(active1, active2);
  EXPECT_LT(static_cast<double>(active2) / active1, 0.85);
}

TEST(DatasetsTest, WikipediaPairHasPartialOverlapOnly) {
  RealizationPair pair = MakeWikipediaPair(kTestScale, 15);
  size_t mapped = 0;
  for (NodeId v : pair.map_1to2) {
    if (v != kInvalidNode) ++mapped;
  }
  EXPECT_LT(mapped, pair.g1.num_nodes());  // node deletion unmaps some
  EXPECT_GT(mapped, pair.g1.num_nodes() / 4);
}

TEST(DatasetsTest, ScaleControlsSize) {
  Graph small = MakeFacebookStandin(0.05, 17);
  Graph large = MakeFacebookStandin(0.2, 17);
  EXPECT_GT(large.num_nodes(), 3 * small.num_nodes());
}

TEST(DatasetsTest, Deterministic) {
  Graph a = MakeDblpStandin(kTestScale, 19);
  Graph b = MakeDblpStandin(kTestScale, 19);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(DatasetsDeathTest, RejectsNonPositiveScale) {
  EXPECT_DEATH(MakeFacebookStandin(0.0, 1), "Check failed");
  EXPECT_DEATH(MakeFacebookStandin(-1.0, 1), "Check failed");
}

}  // namespace
}  // namespace reconcile
