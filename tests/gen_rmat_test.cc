#include "reconcile/gen/rmat.h"

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(RmatTest, NodeCountIsPowerOfTwo) {
  RmatParams params;
  params.scale = 10;
  Graph g = GenerateRmat(params, 1);
  EXPECT_EQ(g.num_nodes(), 1024u);
}

TEST(RmatTest, Deterministic) {
  RmatParams params;
  params.scale = 12;
  Graph a = GenerateRmat(params, 5);
  Graph b = GenerateRmat(params, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) ASSERT_EQ(a.degree(v), b.degree(v));
}

TEST(RmatTest, EdgeCountNearTarget) {
  RmatParams params;
  params.scale = 13;
  params.edge_factor = 8.0;
  Graph g = GenerateRmat(params, 9);
  size_t target = static_cast<size_t>(params.edge_factor * (1u << params.scale));
  // Duplicates collapse, so we land below target but not catastrophically.
  EXPECT_LE(g.num_edges(), target);
  EXPECT_GT(g.num_edges(), target / 2);
}

TEST(RmatTest, SkewedDegrees) {
  RmatParams params;
  params.scale = 14;
  params.edge_factor = 8.0;
  Graph g = GenerateRmat(params, 11);
  double avg = static_cast<double>(g.degree_sum()) / g.num_nodes();
  EXPECT_GT(g.max_degree(), 10 * avg);
}

TEST(RmatTest, UniformParamsGiveUnskewedGraph) {
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 8.0;
  params.a = params.b = params.c = params.d = 0.25;
  params.noise = false;
  Graph g = GenerateRmat(params, 13);
  // With uniform quadrants this is ER-like: max degree stays near the mean.
  double avg = static_cast<double>(g.degree_sum()) / g.num_nodes();
  EXPECT_LT(g.max_degree(), 5 * avg);
}

TEST(RmatTest, GrowsAcrossScales) {
  RmatParams small, big;
  small.scale = 10;
  big.scale = 12;
  Graph gs = GenerateRmat(small, 17);
  Graph gb = GenerateRmat(big, 17);
  EXPECT_GT(gb.num_edges(), 3 * gs.num_edges());
}

TEST(RmatDeathTest, RejectsBadProbabilities) {
  RmatParams params;
  params.a = 0.9;  // sums to 1.33
  EXPECT_DEATH(GenerateRmat(params, 1), "Check failed");
}

}  // namespace
}  // namespace reconcile
