// SpillStore / spilled tiers: moving a tier to disk must be unobservable —
// same aggregate bytes through every read path — and every spill failure
// (torn write, ENOSPC, failed mmap, injected at every spill boundary) must
// leave the tier resident with the aggregate intact and no file behind.
#include "reconcile/util/spill_store.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/util/fault.h"
#include "reconcile/util/radix_sort.h"
#include "reconcile/util/rng.h"
#include "reconcile/util/tiered_store.h"

namespace reconcile {
namespace {

SortedCountRun MakeRun(std::vector<uint64_t> raw) {
  std::vector<uint64_t> scratch;
  return SortAndCount(std::move(raw), scratch);
}

std::vector<std::vector<uint64_t>> MakeDeltaStream(uint64_t seed,
                                                   size_t num_deltas,
                                                   size_t delta_size,
                                                   uint64_t key_space) {
  Rng rng(seed);
  std::vector<std::vector<uint64_t>> deltas(num_deltas);
  for (auto& delta : deltas) {
    for (size_t i = 0; i < delta_size; ++i) {
      delta.push_back(rng.UniformInt(key_space));
    }
  }
  return deltas;
}

// Byte-exact aggregate through the fold: the (key, count) sequence ForEach
// produces, in order.
std::vector<std::pair<uint64_t, uint32_t>> Fold(const TieredCountRuns& s) {
  std::vector<std::pair<uint64_t, uint32_t>> out;
  s.ForEach([&out](uint64_t key, uint32_t count) { out.emplace_back(key, count); });
  return out;
}

size_t CountDirEntries(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return 0;
  size_t n = 0;
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") ++n;
  }
  ::closedir(handle);
  return n;
}

class SpillStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DisarmFaults();
    char tmpl[] = "/tmp/spill_store_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    DisarmFaults();
    // The suite asserts emptiness where it matters; sweep defensively so a
    // failed expectation doesn't leak files.
    DIR* handle = ::opendir(dir_.c_str());
    if (handle != nullptr) {
      while (dirent* entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") ::unlink((dir_ + "/" + name).c_str());
      }
      ::closedir(handle);
    }
    ::rmdir(dir_.c_str());
  }
  std::string dir_;
};

TEST_F(SpillStoreTest, SpilledRunRoundTripsExactBytes) {
  SortedCountRun run = MakeRun(MakeDeltaStream(1, 1, 5000, 1200)[0]);
  SpillStore store(dir_);
  std::string error;
  std::unique_ptr<SpilledRun> spilled = store.Spill(run, &error);
  ASSERT_NE(spilled, nullptr) << error;
  ASSERT_EQ(spilled->size(), run.size());
  for (size_t i = 0; i < run.size(); ++i) {
    ASSERT_EQ(spilled->keys()[i], run.keys[i]);
    ASSERT_EQ(spilled->counts()[i], run.counts[i]);
  }
  EXPECT_EQ(store.stats().tiers_spilled, 1u);
  EXPECT_EQ(store.stats().spill_failures, 0u);
  EXPECT_EQ(CountDirEntries(dir_), 1u);
  spilled.reset();  // dropping the run unlinks its file
  EXPECT_EQ(CountDirEntries(dir_), 0u);
}

TEST_F(SpillStoreTest, SpillingTiersIsUnobservableInTheFold) {
  const auto deltas = MakeDeltaStream(7, 6, 800, 500);
  TierPolicy policy{8, 0.0};  // keep tiers separate
  TieredCountRuns resident;
  for (const auto& delta : deltas) resident.Append(MakeRun(delta), policy);
  const auto reference = Fold(resident);
  ASSERT_GT(resident.num_tiers(), 2u);

  // Spill every subset of tiers (bitmask) and byte-compare the fold.
  SpillStore store(dir_);
  const size_t tiers = resident.num_tiers();
  for (uint32_t mask = 1; mask < (1u << tiers); ++mask) {
    TieredCountRuns mixed;
    for (const auto& delta : deltas) mixed.Append(MakeRun(delta), policy);
    std::string error;
    for (size_t t = 0; t < tiers; ++t) {
      if (mask & (1u << t)) {
        ASSERT_TRUE(mixed.SpillTier(t, store, &error)) << error;
        ASSERT_TRUE(mixed.tier_spilled(t));
      }
    }
    ASSERT_EQ(Fold(mixed), reference) << "mask=" << mask;
    // Count() reads through the same views.
    ASSERT_EQ(mixed.Count(reference.front().first),
              reference.front().second);
  }
  EXPECT_EQ(CountDirEntries(dir_), 0u) << "dropped stores must unlink";
}

TEST_F(SpillStoreTest, ResidentBytesMoveToSpilledOnSpill) {
  TierPolicy policy{8, 0.0};
  TieredCountRuns store;
  store.Append(MakeRun(MakeDeltaStream(3, 1, 2000, 100000)[0]), policy);
  store.Append(MakeRun(MakeDeltaStream(4, 1, 50, 100000)[0]), policy);
  const size_t before = store.resident_bytes();
  ASSERT_EQ(before, TieredCountRuns::BytesForEntries(store.total_entries()));
  SpillStore spill(dir_);
  std::string error;
  ASSERT_TRUE(store.SpillTier(0, spill, &error)) << error;
  EXPECT_EQ(store.resident_bytes(),
            TieredCountRuns::BytesForEntries(store.tier_size(1)));
  EXPECT_EQ(store.num_spilled_tiers(), 1u);
  // Spilling an already-spilled tier is a successful no-op.
  ASSERT_TRUE(store.SpillTier(0, spill, &error));
  EXPECT_EQ(spill.stats().tiers_spilled, 1u);
}

TEST_F(SpillStoreTest, FilterMaterializesSpilledTiers) {
  TierPolicy policy{8, 0.0};
  TieredCountRuns store;
  store.Append(MakeRun({10, 11, 12, 12}), policy);
  store.Append(MakeRun({11, 13}), policy);
  SpillStore spill(dir_);
  std::string error;
  ASSERT_TRUE(store.SpillTier(0, spill, &error)) << error;
  ASSERT_TRUE(store.SpillTier(1, spill, &error)) << error;
  store.Filter([](uint64_t key, uint32_t) { return key % 2 == 0; });
  EXPECT_EQ(store.num_spilled_tiers(), 0u);
  EXPECT_EQ(CountDirEntries(dir_), 0u) << "materialize must drop the files";
  EXPECT_EQ(store.Count(10), 1u);
  EXPECT_EQ(store.Count(11), 0u);
  EXPECT_EQ(store.Count(12), 2u);
  EXPECT_EQ(store.Count(13), 0u);
}

TEST_F(SpillStoreTest, AppendCascadeMaterializesSpilledTarget) {
  TierPolicy cascade{1, 4.0};  // every append folds into the single run
  TierPolicy keep{8, 0.0};
  TieredCountRuns store;
  store.Append(MakeRun({1, 2, 3}), keep);
  SpillStore spill(dir_);
  std::string error;
  ASSERT_TRUE(store.SpillTier(0, spill, &error)) << error;
  store.Append(MakeRun({2, 4}), cascade);
  EXPECT_EQ(store.num_tiers(), 1u);
  EXPECT_EQ(store.num_spilled_tiers(), 0u);
  EXPECT_EQ(store.Count(2), 2u);
  EXPECT_EQ(store.Count(4), 1u);
}

// The fault sweep: each injected failure mode, fired at every spill
// boundary of a multi-tier store, must (a) fail that one spill, (b) keep
// the tier resident, (c) leave no file behind for the failed spill, and
// (d) keep the fold byte-identical to the all-resident store.
TEST_F(SpillStoreTest, InjectedFaultsAtEveryBoundaryDegradeGracefully) {
  const auto deltas = MakeDeltaStream(11, 5, 600, 400);
  TierPolicy policy{8, 0.0};
  TieredCountRuns reference_store;
  for (const auto& delta : deltas) {
    reference_store.Append(MakeRun(delta), policy);
  }
  const auto reference = Fold(reference_store);
  const size_t tiers = reference_store.num_tiers();
  ASSERT_GE(tiers, 3u);

  for (const char* fault : {"io:spill_write_fail", "io:spill_truncate",
                            "io:mmap_fail", "io:enospc_after=0"}) {
    for (size_t boundary = 1; boundary <= tiers; ++boundary) {
      SCOPED_TRACE(std::string(fault) + " at spill #" +
                   std::to_string(boundary));
      TieredCountRuns store;
      for (const auto& delta : deltas) store.Append(MakeRun(delta), policy);
      SpillStore spill(dir_);
      std::string arm_error;
      // enospc_after is a threshold point (fails every hit past N); the
      // others are hit-index points (fail exactly hit N).
      const std::string spec =
          std::string(fault) == "io:enospc_after=0"
              ? "io:enospc_after=" + std::to_string(boundary - 1)
              : std::string(fault) + "=" + std::to_string(boundary);
      ASSERT_TRUE(ArmFaults(spec, &arm_error)) << arm_error;

      size_t failures = 0;
      for (size_t t = 0; t < tiers; ++t) {
        std::string error;
        if (!store.SpillTier(t, spill, &error)) {
          ++failures;
          EXPECT_FALSE(store.tier_spilled(t)) << error;
          EXPECT_FALSE(error.empty());
        }
      }
      DisarmFaults();
      EXPECT_GE(failures, 1u);
      EXPECT_EQ(spill.stats().spill_failures, failures);
      // Exactly one file per successful spill; no torn/failed leftovers.
      EXPECT_EQ(CountDirEntries(dir_), spill.stats().tiers_spilled);
      EXPECT_EQ(Fold(store), reference);
    }
  }
}

TEST_F(SpillStoreTest, EnospcThresholdFailsEverySpillPastTheCliff) {
  std::string error;
  ASSERT_TRUE(ArmFaults("io:enospc_after=2", &error)) << error;
  SpillStore store(dir_);
  SortedCountRun run = MakeRun({1, 2, 3});
  EXPECT_NE(store.Spill(run, &error), nullptr);
  EXPECT_NE(store.Spill(run, &error), nullptr);
  // The disk is now "full": every later spill fails, not just one.
  EXPECT_EQ(store.Spill(run, &error), nullptr);
  EXPECT_EQ(store.Spill(run, &error), nullptr);
  EXPECT_EQ(store.stats().tiers_spilled, 2u);
  EXPECT_EQ(store.stats().spill_failures, 2u);
}

TEST_F(SpillStoreTest, DisableStopsSpillingWithoutTouchingDisk) {
  SpillStore store(dir_);
  store.Disable();
  SortedCountRun run = MakeRun({5, 6});
  std::string error;
  EXPECT_EQ(store.Spill(run, &error), nullptr);
  EXPECT_EQ(CountDirEntries(dir_), 0u);
}

TEST_F(SpillStoreTest, UnwritableDirectoryIsACleanFailure) {
  SpillStore store("/proc/definitely-not-writable/spill");
  SortedCountRun run = MakeRun({1});
  std::string error;
  EXPECT_EQ(store.Spill(run, &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(store.stats().spill_failures, 1u);
}

}  // namespace
}  // namespace reconcile
