#include "reconcile/graph/io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "reconcile/gen/erdos_renyi.h"

namespace reconcile {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

bool SameGraph(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    std::span<const NodeId> na = a.Neighbors(u);
    std::span<const NodeId> nb = b.Neighbors(u);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

TEST(GraphIoTest, TextRoundTrip) {
  Graph g = GenerateErdosRenyi(200, 0.05, 3);
  std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteEdgeListText(g, path));
  EdgeList edges;
  ASSERT_TRUE(ReadEdgeListText(path, &edges));
  // Node count from text lacks isolated trailing nodes; compare edges only.
  Graph back = Graph::FromEdgeList(std::move(edges));
  EXPECT_EQ(back.num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(GraphIoTest, BinaryRoundTripExact) {
  Graph g = GenerateErdosRenyi(300, 0.03, 5);
  std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteEdgeListBinary(g, path));
  EdgeList edges;
  ASSERT_TRUE(ReadEdgeListBinary(path, &edges));
  Graph back = Graph::FromEdgeList(std::move(edges));
  EXPECT_TRUE(SameGraph(g, back));
  std::remove(path.c_str());
}

TEST(GraphIoTest, TextCommentsAndBlankLinesIgnored) {
  std::string path = TempPath("comments.txt");
  {
    std::ofstream out(path);
    out << "# a comment\n\n0 1\n# another\n1 2\n";
  }
  EdgeList edges;
  ASSERT_TRUE(ReadEdgeListText(path, &edges));
  EXPECT_EQ(edges.size(), 2u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileFailsGracefully) {
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListText("/nonexistent/dir/file.txt", &edges));
  EXPECT_FALSE(ReadEdgeListBinary("/nonexistent/dir/file.bin", &edges));
}

TEST(GraphIoTest, MalformedTextFails) {
  std::string path = TempPath("malformed.txt");
  {
    std::ofstream out(path);
    out << "0 notanumber\n";
  }
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListText(path, &edges));
  std::remove(path.c_str());
}

TEST(GraphIoTest, TruncatedBinaryFails) {
  Graph g = GenerateErdosRenyi(100, 0.05, 9);
  std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(WriteEdgeListBinary(g, path));
  // Truncate the file to half.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size() / 2));
  }
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListBinary(path, &edges));
  std::remove(path.c_str());
}

TEST(GraphIoTest, BadMagicFails) {
  std::string path = TempPath("badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    uint64_t junk[3] = {0xdeadbeef, 10, 1};
    out.write(reinterpret_cast<const char*>(junk), sizeof(junk));
    uint32_t pair[2] = {0, 1};
    out.write(reinterpret_cast<const char*>(pair), sizeof(pair));
  }
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListBinary(path, &edges));
  std::remove(path.c_str());
}

// --- Malformed-input sweep: every rejection is a clean `false` (with a
// stderr diagnostic), never a crash, and leaves `*out` untouched. ---

TEST(GraphIoTest, TextHeaderEdgeCountMismatchFails) {
  std::string path = TempPath("hdr_edges.txt");
  {
    std::ofstream out(path);
    out << "# nodes=3 edges=3\n0 1\n1 2\n";  // body holds only 2
  }
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListText(path, &edges));
  std::remove(path.c_str());
}

TEST(GraphIoTest, TextHeaderNodeCountMismatchFails) {
  std::string path = TempPath("hdr_nodes.txt");
  {
    std::ofstream out(path);
    out << "# nodes=2 edges=1\n0 5\n";  // node 5 beyond the declared 2
  }
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListText(path, &edges));
  std::remove(path.c_str());
}

TEST(GraphIoTest, TextNodeIdOverflowFails) {
  std::string path = TempPath("overflow.txt");
  {
    std::ofstream out(path);
    // kInvalidNode itself and a value far past 32 bits.
    out << "0 4294967295\n";
  }
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListText(path, &edges));
  {
    std::ofstream out(path, std::ios::trunc);
    out << "0 99999999999999\n";
  }
  EXPECT_FALSE(ReadEdgeListText(path, &edges));
  std::remove(path.c_str());
}

TEST(GraphIoTest, FailedLoadLeavesOutputUntouched) {
  std::string good = TempPath("good.txt");
  {
    std::ofstream out(good);
    out << "0 1\n1 2\n2 3\n";
  }
  EdgeList edges;
  ASSERT_TRUE(ReadEdgeListText(good, &edges));
  ASSERT_EQ(edges.size(), 3u);
  std::string bad = TempPath("bad.txt");
  {
    std::ofstream out(bad);
    out << "0 x\n";
  }
  EXPECT_FALSE(ReadEdgeListText(bad, &edges));
  EXPECT_EQ(edges.size(), 3u) << "a failed load must not clobber *out";
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST(GraphIoTest, BinaryHugeDeclaredEdgeCountFailsWithoutAllocating) {
  // Header claims 2^40 edges over an 8-byte payload: the size cross-check
  // must reject this before any reservation happens (an absurd Reserve
  // would OOM long before the read loop noticed the truncation).
  std::string path = TempPath("huge.bin");
  {
    std::ofstream out(path, std::ios::binary);
    uint64_t header[3] = {0x5245434f4e474601ULL, 10, 1ULL << 40};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    uint32_t pair[2] = {0, 1};
    out.write(reinterpret_cast<const char*>(pair), sizeof(pair));
  }
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListBinary(path, &edges));
  std::remove(path.c_str());
}

TEST(GraphIoTest, BinaryNodeCountOverflowFails) {
  std::string path = TempPath("hugenodes.bin");
  {
    std::ofstream out(path, std::ios::binary);
    uint64_t header[3] = {0x5245434f4e474601ULL, 1ULL << 40, 0};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
  }
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListBinary(path, &edges));
  std::remove(path.c_str());
}

TEST(GraphIoTest, BinaryOutOfRangeEndpointFails) {
  std::string path = TempPath("range.bin");
  {
    std::ofstream out(path, std::ios::binary);
    uint64_t header[3] = {0x5245434f4e474601ULL, 2, 1};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    uint32_t pair[2] = {0, 5};  // node 5 beyond the declared 2
    out.write(reinterpret_cast<const char*>(pair), sizeof(pair));
  }
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListBinary(path, &edges));
  std::remove(path.c_str());
}

TEST(GraphIoTest, BinaryTrailingBytesFail) {
  Graph g = GenerateErdosRenyi(50, 0.1, 11);
  std::string path = TempPath("trailing.bin");
  ASSERT_TRUE(WriteEdgeListBinary(g, path));
  // A partial record (4 bytes) and a whole extra record both get caught:
  // the first by the whole-records check, the second by the count check.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    uint32_t half = 7;
    out.write(reinterpret_cast<const char*>(&half), sizeof(half));
  }
  EdgeList edges;
  EXPECT_FALSE(ReadEdgeListBinary(path, &edges));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    uint32_t half = 9;
    out.write(reinterpret_cast<const char*>(&half), sizeof(half));
  }
  EXPECT_FALSE(ReadEdgeListBinary(path, &edges));
  std::remove(path.c_str());
}

TEST(GraphIoTest, EmptyGraphRoundTrips) {
  Graph g;
  std::string path = TempPath("empty.bin");
  ASSERT_TRUE(WriteEdgeListBinary(g, path));
  EdgeList edges;
  ASSERT_TRUE(ReadEdgeListBinary(path, &edges));
  EXPECT_EQ(edges.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace reconcile
