#include "reconcile/graph/permutation.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "reconcile/graph/graph.h"

namespace reconcile {
namespace {

TEST(PermutationTest, IsAPermutation) {
  Rng rng(5);
  std::vector<NodeId> perm = RandomPermutation(100, &rng);
  std::vector<NodeId> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(PermutationTest, DeterministicGivenRngState) {
  Rng a(9), b(9);
  EXPECT_EQ(RandomPermutation(50, &a), RandomPermutation(50, &b));
}

TEST(PermutationTest, ActuallyShuffles) {
  Rng rng(1);
  std::vector<NodeId> perm = RandomPermutation(1000, &rng);
  size_t fixed_points = 0;
  for (NodeId i = 0; i < 1000; ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  // Expected number of fixed points of a uniform permutation is 1.
  EXPECT_LT(fixed_points, 10u);
}

TEST(PermutationTest, InverseComposesToIdentity) {
  Rng rng(2);
  std::vector<NodeId> perm = RandomPermutation(200, &rng);
  std::vector<NodeId> inv = InvertPermutation(perm);
  for (NodeId i = 0; i < 200; ++i) {
    EXPECT_EQ(inv[perm[i]], i);
    EXPECT_EQ(perm[inv[i]], i);
  }
}

TEST(PermutationTest, EmptyPermutation) {
  Rng rng(3);
  EXPECT_TRUE(RandomPermutation(0, &rng).empty());
  EXPECT_TRUE(InvertPermutation({}).empty());
}

TEST(RelabelTest, PreservesStructure) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(0, 2);
  edges.Add(2, 3);
  Rng rng(7);
  std::vector<NodeId> perm = RandomPermutation(4, &rng);
  EdgeList relabeled = RelabelEdges(edges, perm);

  Graph original = Graph::FromEdgeList(edges);
  Graph mapped = Graph::FromEdgeList(relabeled);
  EXPECT_EQ(mapped.num_edges(), original.num_edges());
  // Edge (u,v) in original iff (perm[u], perm[v]) in relabeled.
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      EXPECT_EQ(original.HasEdge(u, v), mapped.HasEdge(perm[u], perm[v]));
    }
  }
  // Degrees transported through the permutation.
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(original.degree(u), mapped.degree(perm[u]));
  }
}

TEST(RelabelTest, IdentityPermutationIsNoOp) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(2, 3);
  std::vector<NodeId> identity(4);
  std::iota(identity.begin(), identity.end(), 0);
  EdgeList relabeled = RelabelEdges(edges, identity);
  EXPECT_EQ(relabeled.edges(), edges.edges());
}

}  // namespace
}  // namespace reconcile
