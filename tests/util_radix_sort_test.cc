#include "reconcile/util/radix_sort.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/util/rng.h"

namespace reconcile {
namespace {

std::vector<uint64_t> RandomKeys(size_t n, uint64_t seed, uint64_t mask) {
  Rng rng(seed);
  std::vector<uint64_t> keys(n);
  for (uint64_t& key : keys) key = rng.Next() & mask;
  return keys;
}

void ExpectSortsLike(std::vector<uint64_t> keys) {
  std::vector<uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  std::vector<uint64_t> scratch;
  RadixSortU64(keys, scratch);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSortTest, EmptyAndSingleton) {
  ExpectSortsLike({});
  ExpectSortsLike({42});
}

TEST(RadixSortTest, SmallArraysUseCutoffPath) {
  ExpectSortsLike({5, 3, 9, 1, 1, 0, 7});
  ExpectSortsLike(RandomKeys(kRadixSortCutoff - 1, 11, ~0ULL));
}

TEST(RadixSortTest, FullWidthRandomKeys) {
  ExpectSortsLike(RandomKeys(50000, 1, ~0ULL));
}

TEST(RadixSortTest, NarrowKeysSkipTrivialPasses) {
  // All high bytes zero: only the low passes should run, result still sorted.
  ExpectSortsLike(RandomKeys(20000, 2, 0xffffULL));
  ExpectSortsLike(RandomKeys(20000, 3, 0xffULL));
}

TEST(RadixSortTest, HighBitsOnly) {
  ExpectSortsLike(RandomKeys(20000, 4, 0xffff000000000000ULL));
}

TEST(RadixSortTest, DuplicateHeavyInput) {
  ExpectSortsLike(RandomKeys(30000, 5, 0x1fULL));  // 32 distinct values
}

TEST(RadixSortTest, AlreadySortedAndReversed) {
  std::vector<uint64_t> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i * 3;
  ExpectSortsLike(keys);
  std::reverse(keys.begin(), keys.end());
  ExpectSortsLike(keys);
}

TEST(RadixSortTest, ScratchReuseAcrossCalls) {
  std::vector<uint64_t> scratch;
  for (uint64_t round = 0; round < 4; ++round) {
    std::vector<uint64_t> keys = RandomKeys(5000 + 1000 * round, round, ~0ULL);
    std::vector<uint64_t> expected = keys;
    std::sort(expected.begin(), expected.end());
    RadixSortU64(keys, scratch);
    EXPECT_EQ(keys, expected);
  }
}

TEST(SortedCountRunTest, SortAndCountAggregatesLikeAMap) {
  std::vector<uint64_t> raw = RandomKeys(40000, 6, 0x3ffULL);
  std::map<uint64_t, uint32_t> expected;
  for (uint64_t key : raw) ++expected[key];

  std::vector<uint64_t> scratch;
  SortedCountRun run = SortAndCount(std::move(raw), scratch);
  ASSERT_EQ(run.size(), expected.size());
  size_t i = 0;
  for (const auto& [key, count] : expected) {
    EXPECT_EQ(run.keys[i], key);
    EXPECT_EQ(run.counts[i], count);
    ++i;
  }
  // Keys strictly increasing.
  for (size_t k = 1; k < run.size(); ++k) {
    EXPECT_LT(run.keys[k - 1], run.keys[k]);
  }
}

TEST(SortedCountRunTest, SortAndCountEmpty) {
  std::vector<uint64_t> scratch;
  SortedCountRun run = SortAndCount({}, scratch);
  EXPECT_TRUE(run.empty());
  EXPECT_EQ(run.size(), 0u);
}

TEST(SortedCountRunTest, CountLookup) {
  std::vector<uint64_t> scratch;
  SortedCountRun run = SortAndCount({5, 5, 9, 2, 5}, scratch);
  EXPECT_EQ(run.Count(5), 3u);
  EXPECT_EQ(run.Count(2), 1u);
  EXPECT_EQ(run.Count(9), 1u);
  EXPECT_EQ(run.Count(7), 0u);
  EXPECT_EQ(run.Count(0), 0u);
  EXPECT_EQ(run.Count(100), 0u);
}

TEST(SortedCountRunTest, ForEachVisitsInAscendingOrder) {
  std::vector<uint64_t> scratch;
  SortedCountRun run = SortAndCount(RandomKeys(1000, 7, 0xffULL), scratch);
  uint64_t last = 0;
  bool first = true;
  size_t visited = 0;
  run.ForEach([&](uint64_t key, uint32_t count) {
    if (!first) {
      EXPECT_GT(key, last);
    }
    EXPECT_GT(count, 0u);
    last = key;
    first = false;
    ++visited;
  });
  EXPECT_EQ(visited, run.size());
}

TEST(SortedCountRunTest, FilterKeepsOrderAndDropsEntries) {
  std::vector<uint64_t> scratch;
  SortedCountRun run = SortAndCount(RandomKeys(5000, 8, 0x1ffULL), scratch);
  const size_t before = run.size();
  run.Filter([](uint64_t key, uint32_t) { return key % 2 == 0; });
  EXPECT_LT(run.size(), before);
  for (size_t i = 0; i < run.size(); ++i) {
    EXPECT_EQ(run.keys[i] % 2, 0u);
    if (i > 0) {
      EXPECT_LT(run.keys[i - 1], run.keys[i]);
    }
  }
  EXPECT_EQ(run.keys.size(), run.counts.size());
}

TEST(MergeCountRunsTest, MatchesMapReference) {
  std::vector<uint64_t> scratch;
  std::vector<uint64_t> a_raw = RandomKeys(10000, 9, 0xfffULL);
  std::vector<uint64_t> b_raw = RandomKeys(3000, 10, 0xfffULL);
  std::map<uint64_t, uint32_t> expected;
  for (uint64_t key : a_raw) ++expected[key];
  for (uint64_t key : b_raw) ++expected[key];

  SortedCountRun a = SortAndCount(std::move(a_raw), scratch);
  SortedCountRun b = SortAndCount(std::move(b_raw), scratch);
  MergeCountRuns(a, b);
  ASSERT_EQ(a.size(), expected.size());
  size_t i = 0;
  for (const auto& [key, count] : expected) {
    EXPECT_EQ(a.keys[i], key);
    EXPECT_EQ(a.counts[i], count);
    ++i;
  }
}

TEST(MergeCountRunsTest, EmptyCases) {
  std::vector<uint64_t> scratch;
  SortedCountRun empty;
  SortedCountRun run = SortAndCount({1, 2, 2}, scratch);

  SortedCountRun target = run;
  MergeCountRuns(target, empty);  // no-op
  EXPECT_EQ(target.keys, run.keys);
  EXPECT_EQ(target.counts, run.counts);

  SortedCountRun fresh;
  MergeCountRuns(fresh, run);  // copy-through
  EXPECT_EQ(fresh.keys, run.keys);
  EXPECT_EQ(fresh.counts, run.counts);
}

TEST(MergeCountRunsTest, DisjointAndOverlappingTails) {
  std::vector<uint64_t> scratch;
  SortedCountRun low = SortAndCount({1, 2, 3}, scratch);
  SortedCountRun high = SortAndCount({10, 11}, scratch);
  MergeCountRuns(low, high);
  EXPECT_EQ(low.keys, (std::vector<uint64_t>{1, 2, 3, 10, 11}));

  SortedCountRun a = SortAndCount({1, 5, 9}, scratch);
  SortedCountRun b = SortAndCount({5, 9, 12}, scratch);
  MergeCountRuns(a, b);
  EXPECT_EQ(a.keys, (std::vector<uint64_t>{1, 5, 9, 12}));
  EXPECT_EQ(a.counts, (std::vector<uint32_t>{1, 2, 2, 1}));
}

}  // namespace
}  // namespace reconcile
