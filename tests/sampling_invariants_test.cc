// Cross-process invariants: every two-copy realization process must produce
// a structurally consistent RealizationPair, regardless of its model. These
// are the contracts the matcher and the evaluation harness rely on.
#include <string>

#include <gtest/gtest.h>

#include "reconcile/eval/datasets.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/attack.h"
#include "reconcile/sampling/cascade.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/sampling/tie_strength.h"
#include "reconcile/sampling/timeslice.h"

namespace reconcile {
namespace {

enum class Process {
  kIndependent,
  kIndependentWithNoise,
  kIndependentNodeDeletion,
  kCascade,
  kTimeslice,
  kTieStrength,
  kAttacked,
  kWikipedia,
};

std::string ProcessName(const testing::TestParamInfo<Process>& info) {
  switch (info.param) {
    case Process::kIndependent:
      return "Independent";
    case Process::kIndependentWithNoise:
      return "IndependentNoise";
    case Process::kIndependentNodeDeletion:
      return "IndependentNodeDeletion";
    case Process::kCascade:
      return "Cascade";
    case Process::kTimeslice:
      return "Timeslice";
    case Process::kTieStrength:
      return "TieStrength";
    case Process::kAttacked:
      return "Attacked";
    case Process::kWikipedia:
      return "Wikipedia";
  }
  return "Unknown";
}

RealizationPair MakePair(Process process, uint64_t seed) {
  Graph g = GeneratePreferentialAttachment(1500, 6, seed);
  switch (process) {
    case Process::kIndependent: {
      IndependentSampleOptions options;
      return SampleIndependent(g, options, seed + 1);
    }
    case Process::kIndependentWithNoise: {
      IndependentSampleOptions options;
      options.noise1 = 0.1;
      options.noise2 = 0.05;
      return SampleIndependent(g, options, seed + 1);
    }
    case Process::kIndependentNodeDeletion: {
      IndependentSampleOptions options;
      options.node_keep1 = 0.8;
      options.node_keep2 = 0.7;
      return SampleIndependent(g, options, seed + 1);
    }
    case Process::kCascade: {
      CascadeSampleOptions options;
      return SampleCascade(g, options, seed + 1);
    }
    case Process::kTimeslice: {
      TimesliceOptions options;
      return SampleTimeslice(g, options, seed + 1);
    }
    case Process::kTieStrength: {
      TieStrengthOptions options;
      return SampleTieStrength(g, options, seed + 1);
    }
    case Process::kAttacked: {
      IndependentSampleOptions options;
      RealizationPair pair = SampleIndependent(g, options, seed + 1);
      return ApplyAttack(pair, AttackOptions{}, seed + 2);
    }
    case Process::kWikipedia:
      return MakeWikipediaPair(0.05, seed + 1);
  }
  return {};
}

class SamplingInvariantsTest : public testing::TestWithParam<Process> {};

TEST_P(SamplingInvariantsTest, GroundTruthMapsAreMutuallyConsistent) {
  RealizationPair pair = MakePair(GetParam(), 5001);
  ASSERT_EQ(pair.map_1to2.size(), pair.g1.num_nodes());
  ASSERT_EQ(pair.map_2to1.size(), pair.g2.num_nodes());
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    const NodeId v = pair.map_1to2[u];
    if (v == kInvalidNode) continue;
    ASSERT_LT(v, pair.g2.num_nodes());
    EXPECT_EQ(pair.map_2to1[v], u) << ProcessName({GetParam(), 0});
  }
  for (NodeId v = 0; v < pair.g2.num_nodes(); ++v) {
    const NodeId u = pair.map_2to1[v];
    if (u == kInvalidNode) continue;
    ASSERT_LT(u, pair.g1.num_nodes());
    EXPECT_EQ(pair.map_1to2[u], v);
  }
}

TEST_P(SamplingInvariantsTest, MappingIsInjective) {
  RealizationPair pair = MakePair(GetParam(), 5003);
  std::vector<int> used(pair.g2.num_nodes(), 0);
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    const NodeId v = pair.map_1to2[u];
    if (v == kInvalidNode) continue;
    EXPECT_EQ(++used[v], 1) << "g2 node " << v << " mapped twice";
  }
}

TEST_P(SamplingInvariantsTest, DeterministicForSeed) {
  RealizationPair a = MakePair(GetParam(), 5005);
  RealizationPair b = MakePair(GetParam(), 5005);
  EXPECT_EQ(a.g1.num_edges(), b.g1.num_edges());
  EXPECT_EQ(a.g2.num_edges(), b.g2.num_edges());
  EXPECT_EQ(a.map_1to2, b.map_1to2);
}

TEST_P(SamplingInvariantsTest, DifferentSeedsDiffer) {
  RealizationPair a = MakePair(GetParam(), 5007);
  RealizationPair b = MakePair(GetParam(), 6007);
  // Either the edge sets or the hidden permutation must differ; compare
  // a cheap fingerprint of both.
  const bool same_shape = a.g1.num_edges() == b.g1.num_edges() &&
                          a.map_1to2 == b.map_1to2;
  EXPECT_FALSE(same_shape);
}

TEST_P(SamplingInvariantsTest, IdentifiableCountMatchesDefinition) {
  RealizationPair pair = MakePair(GetParam(), 5009);
  size_t expected = 0;
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    const NodeId v = pair.map_1to2[u];
    if (v == kInvalidNode) continue;
    if (pair.g1.degree(u) >= 1 && pair.g2.degree(v) >= 1) ++expected;
  }
  EXPECT_EQ(pair.NumIdentifiable(), expected);
  EXPECT_EQ(pair.NumIdentifiableWithDegreeAbove(0), expected);
  EXPECT_LE(pair.NumIdentifiableWithDegreeAbove(5), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllProcesses, SamplingInvariantsTest,
    testing::Values(Process::kIndependent, Process::kIndependentWithNoise,
                    Process::kIndependentNodeDeletion, Process::kCascade,
                    Process::kTimeslice, Process::kTieStrength,
                    Process::kAttacked, Process::kWikipedia),
    ProcessName);

}  // namespace
}  // namespace reconcile
