// THE serve correctness contract: after ANY sequence of delta batches the
// incremental matcher's maps are bit-identical to a from-scratch batch run
// (`UserMatching`) on the final graphs — across scheduler × scoring-backend
// (for the reference run; serve's stamped store has no backend choice) ×
// placement × thread-count, through deletes, re-inserted edges, node
// growth, empty batches, and a snapshot round-trip mid-stream. Every grid
// cell re-verifies after EVERY batch, so a divergence pins the batch that
// introduced it.
#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/graph/edge_list.h"
#include "reconcile/graph/graph.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"
#include "reconcile/serve/delta_log.h"
#include "reconcile/serve/incremental_matcher.h"

namespace reconcile {
namespace {

using EdgeSet = std::set<std::pair<NodeId, NodeId>>;

std::pair<NodeId, NodeId> Canon(NodeId u, NodeId v) {
  return {std::min(u, v), std::max(u, v)};
}

EdgeSet ToEdgeSet(const Graph& g) {
  EdgeSet out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) out.insert({u, v});
    }
  }
  return out;
}

Graph FromEdgeSet(const EdgeSet& edges, NodeId num_nodes) {
  EdgeList list(num_nodes);
  for (const auto& [u, v] : edges) list.Add(u, v);
  return Graph::FromEdgeList(std::move(list));
}

// Mirror of the side the matcher mutates, used to build the reference
// graphs for the from-scratch run.
struct SideModel {
  EdgeSet edges;
  NodeId num_nodes = 0;

  // Sequential application with the overlay's growth rule: only an
  // *effective* insert can extend the node range.
  void Apply(const EdgeDelta& d) {
    if (d.u == d.v) return;
    const auto key = Canon(d.u, d.v);
    if (d.insert) {
      if (edges.insert(key).second) {
        num_nodes = std::max({num_nodes, d.u + 1, d.v + 1});
      }
    } else {
      edges.erase(key);
    }
  }
};

struct GridCase {
  const char* name;
  Scheduler scheduler;
  ScoringBackend reference_backend;  // serve ignores it; the batch run uses it
  int placement_domains;
  int threads;
};

std::string CaseName(const testing::TestParamInfo<GridCase>& info) {
  return info.param.name;
}

// Deterministic delta script: several batches of deletes of present edges
// (graph 1 and 2), fresh inserts, re-inserts of previously deleted edges,
// node growth past the initial range, and one empty batch. Derived from the
// current models so deletes always hit real edges.
std::vector<std::vector<EdgeDelta>> MakeDeltaScript(SideModel model1,
                                                    SideModel model2,
                                                    uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::vector<EdgeDelta>> script;
  std::vector<std::pair<NodeId, NodeId>> deleted1, deleted2;
  for (int b = 0; b < 6; ++b) {
    std::vector<EdgeDelta> batch;
    auto push = [&](int graph, bool insert, NodeId u, NodeId v) {
      EdgeDelta d;
      d.graph = graph;
      d.insert = insert;
      d.u = u;
      d.v = v;
      batch.push_back(d);
      (graph == 1 ? model1 : model2).Apply(d);
    };
    if (b == 3) {
      script.push_back(batch);  // empty batch: must be a strict no-op
      continue;
    }
    for (int g = 1; g <= 2; ++g) {
      SideModel& model = g == 1 ? model1 : model2;
      auto& deleted = g == 1 ? deleted1 : deleted2;
      // Delete ~8 present edges.
      std::vector<std::pair<NodeId, NodeId>> present(model.edges.begin(),
                                                     model.edges.end());
      for (int i = 0; i < 8 && !present.empty(); ++i) {
        const auto edge = present[rng() % present.size()];
        if (model.edges.count(edge) == 0) continue;
        deleted.push_back(edge);
        push(g, false, edge.first, edge.second);
      }
      // Insert ~6 fresh edges inside the current range.
      for (int i = 0; i < 6; ++i) {
        const NodeId u = rng() % model.num_nodes;
        const NodeId v = rng() % model.num_nodes;
        if (u == v) continue;
        push(g, true, u, v);
      }
      // Re-insert a couple of edges deleted in *earlier* batches.
      for (int i = 0; i < 2 && !deleted.empty(); ++i) {
        const auto edge = deleted[rng() % deleted.size()];
        push(g, true, edge.first, edge.second);
      }
    }
    if (b == 4) {
      // Grow both graphs: attach brand-new nodes to existing ones.
      push(1, true, model1.num_nodes + 2, rng() % model1.num_nodes);
      push(2, true, model2.num_nodes + 1, rng() % model2.num_nodes);
    }
    script.push_back(std::move(batch));
  }
  return script;
}

class ServeDifferentialTest : public testing::TestWithParam<GridCase> {};

TEST_P(ServeDifferentialTest, MatchesBatchRunAfterEveryBatch) {
  const GridCase param = GetParam();
  RealizationPair pair =
      SampleIndependent(GenerateChungLu(PowerLawWeights(700, 2.4, 12.0), 881),
                        {.s1 = 0.62, .s2 = 0.62}, 883);
  SeedOptions seed_options;
  seed_options.fraction = 0.09;
  const auto seeds = GenerateSeeds(pair, seed_options, 887);
  ASSERT_FALSE(seeds.empty());

  ServeConfig config;
  config.matcher.min_score = 2;
  config.matcher.num_iterations = 2;
  config.matcher.num_threads = param.threads;
  config.matcher.scheduler = param.scheduler;
  config.matcher.placement_domains = param.placement_domains;
  config.matcher.placement = param.placement_domains > 0
                                 ? PlacementPolicy::kDomain
                                 : PlacementPolicy::kAuto;
  config.compact_overlay_every = 2;  // exercise mid-stream compaction

  MatcherConfig reference = config.matcher;
  reference.scoring_backend = param.reference_backend;

  SideModel model1{ToEdgeSet(pair.g1), pair.g1.num_nodes()};
  SideModel model2{ToEdgeSet(pair.g2), pair.g2.num_nodes()};
  const auto script = MakeDeltaScript(model1, model2, 100 + param.threads);

  IncrementalMatcher matcher(pair.g1, pair.g2, seeds, config);
  const ServeBatchStats initial = matcher.ApplyBatch({});
  EXPECT_EQ(initial.batch, 1);
  EXPECT_EQ(initial.skipped_rounds, 0);

  {
    // Initial serve match == plain batch run on the initial graphs.
    const MatchResult batch = UserMatching(pair.g1, pair.g2, seeds, reference);
    ASSERT_EQ(matcher.map_1to2(), batch.map_1to2);
    ASSERT_EQ(matcher.map_2to1(), batch.map_2to1);
  }

  for (size_t b = 0; b < script.size(); ++b) {
    for (const EdgeDelta& d : script[b]) {
      (d.graph == 1 ? model1 : model2).Apply(d);
    }
    const ServeBatchStats stats = matcher.ApplyBatch(script[b]);
    EXPECT_EQ(stats.replayed_rounds + stats.skipped_rounds,
              stats.total_rounds);
    if (script[b].empty()) {
      EXPECT_EQ(stats.deltas_applied, 0u);
      EXPECT_EQ(stats.dirty_nodes, 0u);
      EXPECT_EQ(stats.diverged_at, -1);
      EXPECT_EQ(stats.links_added, 0u);
      EXPECT_EQ(stats.links_removed, 0u);
      EXPECT_EQ(stats.replayed_rounds, 0);
    }

    const Graph g1_now = FromEdgeSet(model1.edges, model1.num_nodes);
    const Graph g2_now = FromEdgeSet(model2.edges, model2.num_nodes);
    ASSERT_EQ(matcher.g1().num_nodes(), g1_now.num_nodes()) << "batch " << b;
    ASSERT_EQ(matcher.g2().num_nodes(), g2_now.num_nodes()) << "batch " << b;
    ASSERT_EQ(matcher.g1().num_edges(), g1_now.num_edges()) << "batch " << b;
    ASSERT_EQ(matcher.g2().num_edges(), g2_now.num_edges()) << "batch " << b;

    const MatchResult batch = UserMatching(g1_now, g2_now, seeds, reference);
    ASSERT_EQ(matcher.map_1to2(), batch.map_1to2) << "batch " << b;
    ASSERT_EQ(matcher.map_2to1(), batch.map_2to1) << "batch " << b;
    EXPECT_EQ(matcher.num_links(),
              static_cast<size_t>(std::count_if(
                  batch.map_1to2.begin(), batch.map_1to2.end(),
                  [](NodeId v) { return v != kInvalidNode; })))
        << "batch " << b;
  }
}

TEST_P(ServeDifferentialTest, SnapshotRoundTripContinuesIdentically) {
  const GridCase param = GetParam();
  RealizationPair pair =
      SampleIndependent(GenerateChungLu(PowerLawWeights(500, 2.3, 10.0), 991),
                        {.s1 = 0.6, .s2 = 0.6}, 993);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  const auto seeds = GenerateSeeds(pair, seed_options, 997);

  ServeConfig config;
  config.matcher.num_threads = param.threads;
  config.matcher.scheduler = param.scheduler;
  config.matcher.placement_domains = param.placement_domains;

  SideModel model1{ToEdgeSet(pair.g1), pair.g1.num_nodes()};
  SideModel model2{ToEdgeSet(pair.g2), pair.g2.num_nodes()};
  const auto script = MakeDeltaScript(model1, model2, 17);

  IncrementalMatcher live(pair.g1, pair.g2, seeds, config);
  live.ApplyBatch({});
  live.ApplyBatch(script[0]);
  live.ApplyBatch(script[1]);

  const std::string path = testing::TempDir() + "/serve_roundtrip_" +
                           std::string(param.name) + ".ckpt";
  std::string error;
  ASSERT_TRUE(live.SaveSnapshot(path, &error)) << error;

  // A fresh process: constructed from the ORIGINAL inputs, then restored.
  IncrementalMatcher restored(pair.g1, pair.g2, seeds, config);
  ASSERT_TRUE(restored.LoadSnapshot(path, &error)) << error;
  EXPECT_EQ(restored.batches_applied(), live.batches_applied());
  EXPECT_EQ(restored.map_1to2(), live.map_1to2());
  EXPECT_EQ(restored.num_links(), live.num_links());

  // ApplyBatch({}) on a restored session is a pure no-op.
  const ServeBatchStats noop = restored.ApplyBatch({});
  EXPECT_EQ(noop.replayed_rounds, 0);
  EXPECT_EQ(noop.diverged_at, -1);
  EXPECT_EQ(restored.map_1to2(), live.map_1to2());

  // Both sessions continue through the rest of the script in lockstep.
  for (size_t b = 2; b < script.size(); ++b) {
    live.ApplyBatch(script[b]);
    restored.ApplyBatch(script[b]);
    ASSERT_EQ(restored.map_1to2(), live.map_1to2()) << "batch " << b;
    ASSERT_EQ(restored.map_2to1(), live.map_2to1()) << "batch " << b;
  }

  // Config-mismatch snapshots are rejected with a diagnostic.
  ServeConfig other = config;
  other.matcher.min_score = config.matcher.min_score + 3;
  IncrementalMatcher wrong(pair.g1, pair.g2, seeds, other);
  EXPECT_FALSE(wrong.LoadSnapshot(path, &error));
  EXPECT_NE(error.find("semantics"), std::string::npos) << error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ServeDifferentialTest,
    testing::Values(
        GridCase{"StealRadixFlatT4", Scheduler::kWorkStealing,
                 ScoringBackend::kRadixSort, 0, 4},
        GridCase{"StaticHashDomT4", Scheduler::kStatic,
                 ScoringBackend::kHashMap, 2, 4},
        GridCase{"StealHashFlatT1", Scheduler::kWorkStealing,
                 ScoringBackend::kHashMap, 0, 1},
        GridCase{"StaticRadixDomT1", Scheduler::kStatic,
                 ScoringBackend::kRadixSort, 2, 1}),
    CaseName);

}  // namespace
}  // namespace reconcile
