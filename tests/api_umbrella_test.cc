// Smoke test for the umbrella header: a downstream user includes one
// header and drives the whole pipeline through the public API.
#include "reconcile/reconcile.h"

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(ApiUmbrellaTest, EndToEndPipelineThroughOneInclude) {
  Graph truth = GeneratePreferentialAttachment(600, 6, 11);
  IndependentSampleOptions sampling;
  sampling.s1 = 0.7;
  sampling.s2 = 0.7;
  RealizationPair pair = SampleIndependent(truth, sampling, 12);

  SeedOptions seeding;
  seeding.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seeding, 13);

  MatcherConfig config;
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  MatchQuality quality = Evaluate(pair, result);
  EXPECT_GE(quality.precision, 0.95);

  auto supports = ComputeLinkSupport(pair.g1, pair.g2, result);
  EXPECT_EQ(supports.size(), result.NumLinks());

  GraphStatistics stats = ComputeStatistics(truth);
  EXPECT_EQ(stats.num_nodes, truth.num_nodes());
}

TEST(ApiUmbrellaTest, TheoryAndBaselineSymbolsVisible) {
  EXPECT_GT(ErTruePairWitnessMean(1000, 0.01, 0.5, 0.1), 0.0);
  EXPECT_EQ(kPaTheoryThreshold, 9u);
  Graph g = GenerateErdosRenyi(100, 0.1, 17);
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 0}};
  MatchResult result = PercolationMatch(g, g, seeds, PercolationConfig{});
  EXPECT_GE(result.NumLinks(), 1u);
}

}  // namespace
}  // namespace reconcile
