#include "reconcile/sampling/timeslice.h"

#include <gtest/gtest.h>

#include "reconcile/gen/erdos_renyi.h"

namespace reconcile {
namespace {

Graph TestGraph() { return GenerateErdosRenyi(1500, 0.01, 55); }

TEST(TimesliceTest, CopiesAreSubgraphs) {
  Graph g = TestGraph();
  RealizationPair pair = SampleTimeslice(g, {}, 3);
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    for (NodeId v : pair.g1.Neighbors(u)) {
      if (v > u) {
        ASSERT_TRUE(g.HasEdge(u, v));
      }
    }
  }
}

TEST(TimesliceTest, EveryParticipatingEdgeLandsSomewhere) {
  Graph g = TestGraph();
  TimesliceOptions options;
  options.participation = 1.0;
  RealizationPair pair = SampleTimeslice(g, options, 5);
  // Union of the two copies (pulled to underlying labels) == all edges.
  size_t in_either = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v <= u) continue;
      bool in1 = pair.g1.HasEdge(u, v);
      bool in2 = pair.g2.HasEdge(pair.map_1to2[u], pair.map_1to2[v]);
      if (in1 || in2) ++in_either;
    }
  }
  EXPECT_EQ(in_either, g.num_edges());
}

TEST(TimesliceTest, OverlapGrowsWithRepeatLambda) {
  Graph g = TestGraph();
  TimesliceOptions sparse, busy;
  sparse.repeat_lambda = 0.0;  // exactly one occasion per edge
  busy.repeat_lambda = 4.0;
  RealizationPair a = SampleTimeslice(g, sparse, 7);
  RealizationPair b = SampleTimeslice(g, busy, 7);
  auto overlap = [](const RealizationPair& pair, const Graph& g) {
    size_t both = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v : g.Neighbors(u)) {
        if (v <= u) continue;
        if (pair.g1.HasEdge(u, v) &&
            pair.g2.HasEdge(pair.map_1to2[u], pair.map_1to2[v])) {
          ++both;
        }
      }
    }
    return both;
  };
  EXPECT_EQ(overlap(a, g), 0u);  // single occasion -> disjoint slices
  EXPECT_GT(overlap(b, g), g.num_edges() / 4);
}

TEST(TimesliceTest, ParticipationThinsBothCopies) {
  Graph g = TestGraph();
  TimesliceOptions all, half;
  half.participation = 0.5;
  RealizationPair dense = SampleTimeslice(g, all, 9);
  RealizationPair thin = SampleTimeslice(g, half, 9);
  EXPECT_LT(thin.g1.num_edges() + thin.g2.num_edges(),
            dense.g1.num_edges() + dense.g2.num_edges());
}

TEST(TimesliceTest, SlicesBalanceRoughly) {
  Graph g = TestGraph();
  RealizationPair pair = SampleTimeslice(g, {}, 11);
  double ratio = static_cast<double>(pair.g1.num_edges()) /
                 static_cast<double>(pair.g2.num_edges());
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(TimesliceTest, Deterministic) {
  Graph g = TestGraph();
  RealizationPair a = SampleTimeslice(g, {}, 13);
  RealizationPair b = SampleTimeslice(g, {}, 13);
  EXPECT_EQ(a.g1.num_edges(), b.g1.num_edges());
  EXPECT_EQ(a.map_1to2, b.map_1to2);
}

}  // namespace
}  // namespace reconcile
