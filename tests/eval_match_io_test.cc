#include "reconcile/eval/match_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

MatchResult MakeResult() {
  MatchResult result;
  result.map_1to2.assign(6, kInvalidNode);
  result.map_2to1.assign(6, kInvalidNode);
  result.seeds = {{0, 3}, {2, 5}};
  result.map_1to2[0] = 3;
  result.map_2to1[3] = 0;
  result.map_1to2[2] = 5;
  result.map_2to1[5] = 2;
  result.map_1to2[4] = 1;  // discovered link
  result.map_2to1[1] = 4;
  return result;
}

TEST(MatchIoTest, RoundTripPreservesLinksAndSeedMarks) {
  const std::string path = TempPath("match_roundtrip.txt");
  MatchResult result = MakeResult();
  ASSERT_TRUE(WriteMatchingText(result, path));

  std::vector<std::pair<NodeId, NodeId>> links, seeds;
  ASSERT_TRUE(ReadMatchingText(path, &links, &seeds));
  EXPECT_EQ(links.size(), 3u);
  EXPECT_EQ(seeds.size(), 2u);
  // Links are sorted by g1 node.
  EXPECT_EQ(links[0], (std::pair<NodeId, NodeId>{0, 3}));
  EXPECT_EQ(links[1], (std::pair<NodeId, NodeId>{2, 5}));
  EXPECT_EQ(links[2], (std::pair<NodeId, NodeId>{4, 1}));
  EXPECT_EQ(seeds[0], (std::pair<NodeId, NodeId>{0, 3}));
  std::remove(path.c_str());
}

TEST(MatchIoTest, SeedsFileRoundTrip) {
  const std::string path = TempPath("seeds.txt");
  std::vector<std::pair<NodeId, NodeId>> seeds = {{7, 9}, {1, 2}};
  ASSERT_TRUE(WriteSeedsText(seeds, path));
  std::vector<std::pair<NodeId, NodeId>> links, read_seeds;
  ASSERT_TRUE(ReadMatchingText(path, &links, &read_seeds));
  EXPECT_EQ(links, seeds);
  EXPECT_EQ(read_seeds, seeds);
  std::remove(path.c_str());
}

TEST(MatchIoTest, MissingFileFails) {
  std::vector<std::pair<NodeId, NodeId>> links, seeds;
  EXPECT_FALSE(ReadMatchingText("/nonexistent/match.txt", &links, &seeds));
}

TEST(MatchIoTest, MalformedLineFailsWithoutTouchingOutputs) {
  const std::string path = TempPath("match_bad.txt");
  {
    std::ofstream out(path);
    out << "1 2\nbogus line\n";
  }
  std::vector<std::pair<NodeId, NodeId>> links = {{9, 9}};
  std::vector<std::pair<NodeId, NodeId>> seeds = {{8, 8}};
  EXPECT_FALSE(ReadMatchingText(path, &links, &seeds));
  EXPECT_EQ(links.size(), 1u);  // untouched on failure
  EXPECT_EQ(seeds.size(), 1u);
  std::remove(path.c_str());
}

TEST(MatchIoTest, OutOfRangeNodeIdFails) {
  const std::string path = TempPath("match_range.txt");
  {
    std::ofstream out(path);
    out << "4294967295 0\n";  // kInvalidNode as an endpoint
  }
  std::vector<std::pair<NodeId, NodeId>> links, seeds;
  EXPECT_FALSE(ReadMatchingText(path, &links, &seeds));
  std::remove(path.c_str());
}

TEST(MatchIoTest, CommentsIgnoredAndNullOutputsAllowed) {
  const std::string path = TempPath("match_comments.txt");
  {
    std::ofstream out(path);
    out << "# header\n1 2 seed\n# trailing\n3 4\n";
  }
  ASSERT_TRUE(ReadMatchingText(path, nullptr, nullptr));
  std::vector<std::pair<NodeId, NodeId>> seeds;
  ASSERT_TRUE(ReadMatchingText(path, nullptr, &seeds));
  EXPECT_EQ(seeds.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace reconcile
