// Differential tests: the two scoring engines (incremental vs recompute)
// and every parallelism setting must produce bit-identical matchings, and
// every run must satisfy the structural invariants of a partial matching.
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

enum class Model { kErdosRenyi, kPreferentialAttachment, kChungLu };

struct DiffCase {
  Model model;
  bool bucketing;
  uint32_t threshold;
  int iterations;
};

std::string CaseName(const testing::TestParamInfo<DiffCase>& info) {
  std::string name;
  switch (info.param.model) {
    case Model::kErdosRenyi:
      name = "Er";
      break;
    case Model::kPreferentialAttachment:
      name = "Pa";
      break;
    case Model::kChungLu:
      name = "Cl";
      break;
  }
  name += info.param.bucketing ? "Bucketed" : "Flat";
  name += "T" + std::to_string(info.param.threshold);
  name += "K" + std::to_string(info.param.iterations);
  return name;
}

RealizationPair MakePairFor(Model model) {
  Graph g;
  switch (model) {
    case Model::kErdosRenyi:
      g = GenerateErdosRenyi(1200, 0.03, 4001);
      break;
    case Model::kPreferentialAttachment:
      g = GeneratePreferentialAttachment(1500, 8, 4003);
      break;
    case Model::kChungLu:
      g = GenerateChungLu(PowerLawWeights(1500, 2.5, 16.0), 4005);
      break;
  }
  IndependentSampleOptions options;
  options.s1 = 0.6;
  options.s2 = 0.6;
  return SampleIndependent(g, options, 4007);
}

class EngineDifferentialTest : public testing::TestWithParam<DiffCase> {};

TEST_P(EngineDifferentialTest, IncrementalEqualsRecompute) {
  const DiffCase param = GetParam();
  RealizationPair pair = MakePairFor(param.model);
  SeedOptions seed_options;
  seed_options.fraction = 0.08;
  auto seeds = GenerateSeeds(pair, seed_options, 4009);

  MatcherConfig incremental;
  incremental.use_degree_bucketing = param.bucketing;
  incremental.min_score = param.threshold;
  incremental.num_iterations = param.iterations;
  incremental.use_incremental_scoring = true;
  MatcherConfig recompute = incremental;
  recompute.use_incremental_scoring = false;

  MatchResult a = UserMatching(pair.g1, pair.g2, seeds, incremental);
  MatchResult b = UserMatching(pair.g1, pair.g2, seeds, recompute);
  EXPECT_EQ(a.map_1to2, b.map_1to2);
  EXPECT_EQ(a.map_2to1, b.map_2to1);
}

TEST_P(EngineDifferentialTest, ThreadAndShardCountInvariance) {
  const DiffCase param = GetParam();
  RealizationPair pair = MakePairFor(param.model);
  SeedOptions seed_options;
  seed_options.fraction = 0.08;
  auto seeds = GenerateSeeds(pair, seed_options, 4011);

  MatcherConfig base;
  base.use_degree_bucketing = param.bucketing;
  base.min_score = param.threshold;
  base.num_iterations = param.iterations;

  MatcherConfig serial = base;
  serial.num_threads = 1;
  serial.num_shards = 1;
  MatcherConfig wide = base;
  wide.num_threads = 4;
  wide.num_shards = 13;  // deliberately odd shard count

  MatchResult a = UserMatching(pair.g1, pair.g2, seeds, serial);
  MatchResult b = UserMatching(pair.g1, pair.g2, seeds, wide);
  EXPECT_EQ(a.map_1to2, b.map_1to2);
}

TEST_P(EngineDifferentialTest, OutputIsAValidPartialMatching) {
  const DiffCase param = GetParam();
  RealizationPair pair = MakePairFor(param.model);
  SeedOptions seed_options;
  seed_options.fraction = 0.08;
  auto seeds = GenerateSeeds(pair, seed_options, 4013);

  MatcherConfig config;
  config.use_degree_bucketing = param.bucketing;
  config.min_score = param.threshold;
  config.num_iterations = param.iterations;
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);

  // One-to-one, mutually consistent maps.
  std::vector<int> used(pair.g2.num_nodes(), 0);
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    const NodeId v = result.map_1to2[u];
    if (v == kInvalidNode) continue;
    ASSERT_LT(v, pair.g2.num_nodes());
    EXPECT_EQ(result.map_2to1[v], u);
    EXPECT_EQ(++used[v], 1);
  }
  // Every seed is present verbatim.
  for (const auto& [u, v] : seeds) {
    EXPECT_EQ(result.map_1to2[u], v);
    EXPECT_EQ(result.map_2to1[v], u);
  }
  // Phase telemetry is consistent with the link count.
  size_t accepted = 0;
  for (const PhaseStats& phase : result.phases) accepted += phase.new_links;
  EXPECT_EQ(accepted, result.NumNewLinks());
}

INSTANTIATE_TEST_SUITE_P(
    ModelEngineGrid, EngineDifferentialTest,
    testing::Values(
        DiffCase{Model::kErdosRenyi, true, 2, 1},
        DiffCase{Model::kErdosRenyi, true, 3, 2},
        DiffCase{Model::kErdosRenyi, false, 2, 2},
        DiffCase{Model::kPreferentialAttachment, true, 2, 2},
        DiffCase{Model::kPreferentialAttachment, true, 4, 1},
        DiffCase{Model::kPreferentialAttachment, false, 3, 2},
        DiffCase{Model::kChungLu, true, 2, 2},
        DiffCase{Model::kChungLu, false, 2, 1}),
    CaseName);

// The degree floor must hold: with min_bucket_exponent = e, no non-seed
// link may involve a node of degree below 2^e.
TEST(MatcherDegreeFloorTest, MinBucketExponentExcludesLowDegrees) {
  RealizationPair pair = MakePairFor(Model::kPreferentialAttachment);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 4017);
  MatcherConfig config;
  config.min_bucket_exponent = 3;  // degree >= 8
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    const NodeId v = result.map_1to2[u];
    if (v == kInvalidNode || result.IsSeed1(u)) continue;
    EXPECT_GE(pair.g1.degree(u), 8u) << "node " << u;
    EXPECT_GE(pair.g2.degree(v), 8u) << "node " << v;
  }
}

// stop_when_stable must not change the result, only possibly the number of
// recorded phases.
TEST(MatcherStableStopTest, EarlyStopPreservesOutput) {
  RealizationPair pair = MakePairFor(Model::kErdosRenyi);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 4019);
  MatcherConfig eager;
  eager.num_iterations = 4;
  eager.stop_when_stable = true;
  MatcherConfig full;
  full.num_iterations = 4;
  full.stop_when_stable = false;
  MatchResult a = UserMatching(pair.g1, pair.g2, seeds, eager);
  MatchResult b = UserMatching(pair.g1, pair.g2, seeds, full);
  EXPECT_EQ(a.map_1to2, b.map_1to2);
  EXPECT_LE(a.phases.size(), b.phases.size());
}

// Degenerate inputs.
TEST(MatcherEdgeCaseTest, EmptyGraphsAndNoSeeds) {
  Graph empty;
  MatchResult result = UserMatching(empty, empty, {}, MatcherConfig{});
  EXPECT_EQ(result.NumLinks(), 0u);
  EXPECT_TRUE(result.map_1to2.empty());
}

TEST(MatcherEdgeCaseTest, SeedsOnlyGraphWithNoEdges) {
  EdgeList e1(4), e2(4);
  Graph g1 = Graph::FromEdgeList(std::move(e1));
  Graph g2 = Graph::FromEdgeList(std::move(e2));
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 1}, {2, 3}};
  MatchResult result = UserMatching(g1, g2, seeds, MatcherConfig{});
  EXPECT_EQ(result.NumLinks(), 2u);
  EXPECT_EQ(result.NumNewLinks(), 0u);
}

TEST(MatcherEdgeCaseTest, DuplicateSeedDies) {
  Graph g = GenerateErdosRenyi(10, 0.5, 1);
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 1}, {0, 2}};
  EXPECT_DEATH(UserMatching(g, g, seeds, MatcherConfig{}), "duplicate seed");
}

TEST(MatcherEdgeCaseTest, OutOfRangeSeedDies) {
  Graph g = GenerateErdosRenyi(10, 0.5, 1);
  std::vector<std::pair<NodeId, NodeId>> seeds = {{42, 1}};
  EXPECT_DEATH(UserMatching(g, g, seeds, MatcherConfig{}), "");
}

}  // namespace
}  // namespace reconcile
