// Parameterized property sweeps for User-Matching: across models, edge
// survival probabilities, seed fractions and thresholds, the matcher must
// (a) keep near-perfect precision at T >= 2 and (b) recover a substantial
// fraction of identifiable nodes.
#include <tuple>

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

struct SweepCase {
  double s;           // edge survival probability (both copies)
  double l;           // seed fraction
  uint32_t threshold; // T
};

class ErSweepTest : public testing::TestWithParam<SweepCase> {};

TEST_P(ErSweepTest, PrecisionStaysHighOnErdosRenyi) {
  const SweepCase param = GetParam();
  // n*p*s^2 must stay comfortably above log n for identifiability.
  Graph g = GenerateErdosRenyi(1500, 0.04, 777);
  IndependentSampleOptions sample;
  sample.s1 = sample.s2 = param.s;
  RealizationPair pair = SampleIndependent(g, sample, 778);
  SeedOptions seed_options;
  seed_options.fraction = param.l;
  auto seeds = GenerateSeeds(pair, seed_options, 779);
  MatcherConfig config;
  config.min_score = param.threshold;
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  MatchQuality q = Evaluate(pair, result);

  EXPECT_GE(q.precision, 0.99) << "s=" << param.s << " l=" << param.l
                               << " T=" << param.threshold;
  EXPECT_GT(q.recall_all, 0.80);
}

INSTANTIATE_TEST_SUITE_P(
    SurvivalSeedThresholdGrid, ErSweepTest,
    testing::Values(SweepCase{0.5, 0.10, 3}, SweepCase{0.5, 0.20, 3},
                    SweepCase{0.5, 0.20, 4}, SweepCase{0.75, 0.05, 3},
                    SweepCase{0.75, 0.10, 3}, SweepCase{0.75, 0.20, 4},
                    SweepCase{0.9, 0.05, 3}, SweepCase{0.9, 0.10, 4}),
    [](const testing::TestParamInfo<SweepCase>& info) {
      std::string name = "s";
      name += std::to_string(static_cast<int>(info.param.s * 100));
      name += "_l";
      name += std::to_string(static_cast<int>(info.param.l * 100));
      name += "_T";
      name += std::to_string(info.param.threshold);
      return name;
    });

class PaSweepTest : public testing::TestWithParam<SweepCase> {};

TEST_P(PaSweepTest, PrecisionStaysHighOnPreferentialAttachment) {
  const SweepCase param = GetParam();
  Graph g = GeneratePreferentialAttachment(4000, 20, 881);
  IndependentSampleOptions sample;
  sample.s1 = sample.s2 = param.s;
  RealizationPair pair = SampleIndependent(g, sample, 882);
  SeedOptions seed_options;
  seed_options.fraction = param.l;
  auto seeds = GenerateSeeds(pair, seed_options, 883);
  MatcherConfig config;
  config.min_score = param.threshold;
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  MatchQuality q = Evaluate(pair, result);

  EXPECT_GE(q.precision, 0.97) << "s=" << param.s << " l=" << param.l
                               << " T=" << param.threshold;
  EXPECT_GT(q.recall_all, 0.4);
}

INSTANTIATE_TEST_SUITE_P(
    SurvivalSeedThresholdGrid, PaSweepTest,
    testing::Values(SweepCase{0.5, 0.05, 2}, SweepCase{0.5, 0.10, 2},
                    SweepCase{0.5, 0.10, 3}, SweepCase{0.5, 0.20, 2},
                    SweepCase{0.75, 0.05, 2}, SweepCase{0.75, 0.10, 3}),
    [](const testing::TestParamInfo<SweepCase>& info) {
      std::string name = "s";
      name += std::to_string(static_cast<int>(info.param.s * 100));
      name += "_l";
      name += std::to_string(static_cast<int>(info.param.l * 100));
      name += "_T";
      name += std::to_string(info.param.threshold);
      return name;
    });

// Monotonicity property: raising the threshold can only reduce the number of
// (correct or incorrect) new links in the first round of a single-bucket
// matcher — and across full runs, higher T should not produce more errors.
TEST(MatcherPropertyTest, HigherThresholdNeverMoreErrors) {
  Graph g = GeneratePreferentialAttachment(3000, 10, 991);
  RealizationPair pair = SampleIndependent(g, {}, 992);
  SeedOptions seed_options;
  seed_options.fraction = 0.08;
  auto seeds = GenerateSeeds(pair, seed_options, 993);

  size_t previous_bad = SIZE_MAX;
  for (uint32_t threshold : {2u, 3u, 4u, 5u}) {
    MatcherConfig config;
    config.min_score = threshold;
    MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
    MatchQuality q = Evaluate(pair, result);
    EXPECT_LE(q.new_bad, previous_bad) << "T=" << threshold;
    previous_bad = q.new_bad;
  }
}

// More seeds must not hurt recall (same everything else).
TEST(MatcherPropertyTest, RecallGrowsWithSeeds) {
  Graph g = GeneratePreferentialAttachment(3000, 10, 995);
  RealizationPair pair = SampleIndependent(g, {}, 996);
  double previous_recall = -1.0;
  for (double l : {0.02, 0.05, 0.10, 0.20}) {
    SeedOptions seed_options;
    seed_options.fraction = l;
    auto seeds = GenerateSeeds(pair, seed_options, 997);
    MatcherConfig config;
    MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
    MatchQuality q = Evaluate(pair, result);
    EXPECT_GE(q.recall_all, previous_recall - 0.02) << "l=" << l;
    previous_recall = q.recall_all;
  }
}

// A second outer iteration can only add links, never remove or change them.
TEST(MatcherPropertyTest, IterationsAreMonotone) {
  Graph g = GeneratePreferentialAttachment(2000, 8, 998);
  RealizationPair pair = SampleIndependent(g, {}, 999);
  SeedOptions seed_options;
  seed_options.fraction = 0.05;
  auto seeds = GenerateSeeds(pair, seed_options, 1000);

  MatcherConfig one_iter;
  one_iter.num_iterations = 1;
  MatcherConfig two_iter;
  two_iter.num_iterations = 2;
  MatchResult r1 = UserMatching(pair.g1, pair.g2, seeds, one_iter);
  MatchResult r2 = UserMatching(pair.g1, pair.g2, seeds, two_iter);
  EXPECT_GE(r2.NumLinks(), r1.NumLinks());
  for (NodeId u = 0; u < r1.map_1to2.size(); ++u) {
    if (r1.map_1to2[u] != kInvalidNode) {
      EXPECT_EQ(r2.map_1to2[u], r1.map_1to2[u]) << "node " << u;
    }
  }
}

}  // namespace
}  // namespace reconcile
