#include "reconcile/theory/empirics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"
#include "reconcile/theory/predictions.h"

namespace reconcile {
namespace {

RealizationPair ErPair(NodeId n, double p, double s, uint64_t seed) {
  Graph g = GenerateErdosRenyi(n, p, seed);
  IndependentSampleOptions options;
  options.s1 = s;
  options.s2 = s;
  return SampleIndependent(g, options, seed + 1);
}

TEST(WitnessGapEmpiricsTest, MatchesErPredictions) {
  const NodeId n = 3000;
  const double p = 0.05, s = 0.5, l = 0.2;
  RealizationPair pair = ErPair(n, p, s, 301);
  SeedOptions seed_options;
  seed_options.fraction = l;
  auto seeds = GenerateSeeds(pair, seed_options, 303);

  Rng rng(305);
  WitnessGapSample sample = MeasureWitnessGap(pair, seeds, 3000, &rng);
  ASSERT_GT(sample.true_samples, 500u);
  ASSERT_GT(sample.false_samples, 500u);

  const double pred_true = ErTruePairWitnessMean(n, p, s, l);
  const double pred_false = ErFalsePairWitnessMean(n, p, s, l);
  EXPECT_NEAR(sample.true_mean, pred_true, 0.15 * pred_true);
  EXPECT_LT(sample.false_mean, 3.0 * pred_false + 0.1);
  EXPECT_GT(sample.true_mean, 5.0 * sample.false_mean);
}

TEST(WitnessGapEmpiricsTest, EmptySeedsGiveZeroWitnesses) {
  RealizationPair pair = ErPair(500, 0.05, 0.5, 307);
  Rng rng(309);
  WitnessGapSample sample = MeasureWitnessGap(pair, {}, 500, &rng);
  EXPECT_DOUBLE_EQ(sample.true_mean, 0.0);
  EXPECT_EQ(sample.false_max, 0u);
}

TEST(ArrivalDegreeEmpiricsTest, EarlyBirdsBeatLateArrivals) {
  const NodeId n = 20000;
  Graph g = GeneratePreferentialAttachment(n, 8, 311);
  const NodeId early = static_cast<NodeId>(PaEarlyBirdCutoff(n));
  ArrivalDegreeStats stats =
      MeasureArrivalDegrees(g, early, static_cast<NodeId>(0.5 * n));
  // Lemma 7 flavour: every early arrival far outgrows the typical late one.
  EXPECT_GT(stats.early_min_degree, stats.late_mean_degree);
  EXPECT_GT(stats.early_mean_degree, 4 * stats.late_mean_degree);
  // Lemma 5 flavour: late arrivals stay well below the early minimum.
  EXPECT_LT(stats.late_mean_degree, 3.0 * 8);
}

TEST(ArrivalDegreeEmpiricsTest, EmptyRangesAreSafe) {
  Graph g = GeneratePreferentialAttachment(100, 3, 313);
  ArrivalDegreeStats stats = MeasureArrivalDegrees(g, 0, g.num_nodes());
  EXPECT_EQ(stats.early_min_degree, 0u);
  EXPECT_EQ(stats.late_max_degree, 0u);
}

TEST(CommonNeighborEmpiricsTest, LowDegreePairsRespectLemma10Cap) {
  Graph g = GeneratePreferentialAttachment(20000, 10, 317);
  Rng rng(319);
  CommonNeighborSample sample = MeasureLowDegreeCommonNeighbors(
      g, PaLowDegreeBound(g.num_nodes()), 3000, &rng);
  ASSERT_GT(sample.samples, 1000u);
  EXPECT_EQ(sample.above_cap, 0u);
  EXPECT_LE(sample.max_common, kPaLemma10CommonNeighborCap);
  EXPECT_LT(sample.mean_common, 1.0);
}

TEST(LateNeighborEmpiricsTest, RichGetRicher) {
  const NodeId n = 20000;
  Graph g = GeneratePreferentialAttachment(n, 8, 323);
  NodeId hub = 0;
  for (NodeId v = 0; v < n; ++v)
    if (g.degree(v) > g.degree(hub)) hub = v;
  // Lemma 6: at least 1/3 of a high-degree node's neighbours arrive after
  // eps·n for small eps.
  const double frac = MeasureLateNeighborFraction(g, hub, n / 10);
  EXPECT_GT(frac, 1.0 / 3.0);
}

TEST(IdentifiedFractionEmpiricsTest, FullMatcherOnEasyInstance) {
  RealizationPair pair = ErPair(2000, 0.05, 0.7, 329);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 331);
  MatcherConfig config;
  config.min_score = 3;
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  const double identified =
      MeasureIdentifiedFraction(pair, result.map_1to2, 1);
  EXPECT_GT(identified, 0.9);
  // Restricting to higher degrees can only help.
  EXPECT_GE(MeasureIdentifiedFraction(pair, result.map_1to2, 10),
            identified - 0.05);
}

TEST(NoSharedNeighborEmpiricsTest, MatchesClosedForm) {
  // Regular-ish ER graph: measured isolated fraction approximates
  // E[(1-s²)^deg] over the realized degree distribution.
  const NodeId n = 4000;
  const double p = 8.0 / n, s = 0.5;
  Graph g = GenerateErdosRenyi(n, p, 337);
  IndependentSampleOptions options;
  options.s1 = s;
  options.s2 = s;
  RealizationPair pair = SampleIndependent(g, options, 339);

  double predicted = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    predicted += ProbNoSharedNeighbor(g.degree(v), s);
  predicted /= g.num_nodes();

  const double measured = MeasureNoSharedNeighborFraction(pair);
  EXPECT_NEAR(measured, predicted, 0.05);
}

}  // namespace
}  // namespace reconcile
