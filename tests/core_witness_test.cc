#include "reconcile/core/witness.h"

#include <gtest/gtest.h>

namespace reconcile {
namespace {

// Two copies of the same 5-node graph with identity labels for clarity:
// edges 0-1, 1-2, 2-3, 3-4, 0-2.
Graph MakeG() {
  EdgeList edges(5);
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 3);
  edges.Add(3, 4);
  edges.Add(0, 2);
  return Graph::FromEdgeList(std::move(edges));
}

TEST(WitnessTest, NoLinksMeansNoWitnesses) {
  Graph g1 = MakeG(), g2 = MakeG();
  std::vector<NodeId> links(5, kInvalidNode);
  EXPECT_EQ(CountSimilarityWitnesses(g1, g2, links, 0, 0), 0u);
}

TEST(WitnessTest, LinkedCommonNeighborCounts) {
  Graph g1 = MakeG(), g2 = MakeG();
  std::vector<NodeId> links(5, kInvalidNode);
  links[1] = 1;  // node 1 linked to itself across copies
  // Pair (0,0): N1(0)={1,2}, link(1)=1 ∈ N2(0)={1,2} -> 1 witness.
  EXPECT_EQ(CountSimilarityWitnesses(g1, g2, links, 0, 0), 1u);
  // Pair (2,2): N1(2)={0,1,3}; link(1)=1 ∈ N2(2)={0,1,3} -> 1 witness.
  EXPECT_EQ(CountSimilarityWitnesses(g1, g2, links, 2, 2), 1u);
  // Pair (0,3): link(1)=1; N2(3)={2,4}; 1 ∉ -> 0.
  EXPECT_EQ(CountSimilarityWitnesses(g1, g2, links, 0, 3), 0u);
}

TEST(WitnessTest, MultipleWitnessesAccumulate) {
  Graph g1 = MakeG(), g2 = MakeG();
  std::vector<NodeId> links(5, kInvalidNode);
  links[1] = 1;
  links[2] = 2;
  // Pair (0,0): neighbours {1,2}, both linked to themselves, both in N2(0).
  EXPECT_EQ(CountSimilarityWitnesses(g1, g2, links, 0, 0), 2u);
}

TEST(WitnessTest, CrossLabelsRespectLinkMap) {
  // g2 is g1 with labels swapped by the link map, not identity.
  Graph g1 = MakeG(), g2 = MakeG();
  std::vector<NodeId> links(5, kInvalidNode);
  links[1] = 3;  // claim: g1's node 1 corresponds to g2's node 3
  // Pair (0,4): N1(0)={1,2}; link(1)=3; N2(4)={3} -> witness.
  EXPECT_EQ(CountSimilarityWitnesses(g1, g2, links, 0, 4), 1u);
  // Pair (0,0): link(1)=3 ∉ N2(0)={1,2} -> 0.
  EXPECT_EQ(CountSimilarityWitnesses(g1, g2, links, 0, 0), 0u);
}

TEST(WitnessTest, UnlinkedNeighborsIgnored) {
  Graph g1 = MakeG(), g2 = MakeG();
  std::vector<NodeId> links(5, kInvalidNode);
  links[4] = 4;  // node 4 not adjacent to 0
  EXPECT_EQ(CountSimilarityWitnesses(g1, g2, links, 0, 0), 0u);
}

TEST(WitnessDeathTest, OutOfRangeNodesRejected) {
  Graph g1 = MakeG(), g2 = MakeG();
  std::vector<NodeId> links(5, kInvalidNode);
  EXPECT_DEATH(CountSimilarityWitnesses(g1, g2, links, 99, 0), "Check failed");
}

}  // namespace
}  // namespace reconcile
