// The stamped signed-run store is what makes incremental serve repair
// *exact*: folds must cut precisely at a stamp, retraction must cancel to
// nothing for every fold that could ever have seen the original emission,
// truncation must drop whole stamps, and CompactStamps must never change
// what any fold observes. These tests pin those contracts directly (the
// end-to-end guarantee rides on them in serve_incremental_differential_test).
#include "reconcile/util/stamped_runs.h"

#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

SortedCountRun MakeRun(std::vector<uint64_t> keys,
                       std::vector<uint32_t> counts) {
  SortedCountRun run;
  run.keys = std::move(keys);
  run.counts = std::move(counts);
  return run;
}

std::map<uint64_t, uint32_t> Fold(const StampedRuns& runs,
                                  uint32_t max_stamp) {
  std::map<uint64_t, uint32_t> out;
  runs.ForEachUpTo(max_stamp, [&](uint64_t key, uint32_t count) {
    // Strictly increasing key order, each key at most once.
    if (!out.empty()) {
      EXPECT_GT(key, out.rbegin()->first);
    }
    out[key] = count;
  });
  return out;
}

TEST(StampedRunsTest, FoldCutsAtStamp) {
  StampedRuns runs;
  runs.Append(0, MakeRun({10, 20}, {1, 2}), +1);
  runs.Append(1, MakeRun({20, 30}, {3, 4}), +1);
  runs.Append(2, MakeRun({10, 30}, {5, 6}), +1);

  EXPECT_EQ(Fold(runs, 0),
            (std::map<uint64_t, uint32_t>{{10, 1}, {20, 2}}));
  EXPECT_EQ(Fold(runs, 1),
            (std::map<uint64_t, uint32_t>{{10, 1}, {20, 5}, {30, 4}}));
  EXPECT_EQ(Fold(runs, 2),
            (std::map<uint64_t, uint32_t>{{10, 6}, {20, 5}, {30, 10}}));
  // Folding far past the max stamp sees everything.
  EXPECT_EQ(Fold(runs, 1000), Fold(runs, 2));
}

TEST(StampedRunsTest, RetractionCancelsAtEveryFold) {
  StampedRuns runs;
  runs.Append(1, MakeRun({10, 20, 30}, {2, 3, 4}), +1);
  runs.Append(2, MakeRun({20}, {7}), +1);
  // Retract the stamp-1 contribution of keys 10 and 30 at the same stamp.
  runs.Append(1, MakeRun({10, 30}, {2, 4}), -1);

  // Key 10 and 30 vanish from every fold that includes stamp 1; key 20 is
  // untouched.
  EXPECT_EQ(Fold(runs, 1), (std::map<uint64_t, uint32_t>{{20, 3}}));
  EXPECT_EQ(Fold(runs, 2), (std::map<uint64_t, uint32_t>{{20, 10}}));
  EXPECT_TRUE(Fold(runs, 0).empty());
}

TEST(StampedRunsTest, PartialRetractionLeavesRemainder) {
  StampedRuns runs;
  runs.Append(3, MakeRun({42}, {5}), +1);
  runs.Append(3, MakeRun({42}, {2}), -1);
  EXPECT_EQ(Fold(runs, 3), (std::map<uint64_t, uint32_t>{{42, 3}}));
}

TEST(StampedRunsTest, NetZeroAndNegativeKeysAreSkipped) {
  StampedRuns runs;
  runs.Append(0, MakeRun({7, 8}, {1, 2}), +1);
  runs.Append(0, MakeRun({7}, {1}), -1);   // net 0
  runs.Append(0, MakeRun({9}, {3}), -1);   // net -3 (transiently, before the
  runs.Append(1, MakeRun({9}, {3}), +1);   // re-emission lands at stamp 1)
  EXPECT_EQ(Fold(runs, 0), (std::map<uint64_t, uint32_t>{{8, 2}}));
  EXPECT_EQ(Fold(runs, 1), (std::map<uint64_t, uint32_t>{{8, 2}}));
}

TEST(StampedRunsTest, TruncateFromDropsWholeStamps) {
  StampedRuns runs;
  runs.Append(0, MakeRun({1}, {1}), +1);
  runs.Append(1, MakeRun({2}, {1}), +1);
  runs.Append(2, MakeRun({3}, {1}), +1);
  runs.Append(1, MakeRun({4}, {1}), +1);
  runs.TruncateFrom(2);
  EXPECT_EQ(runs.num_runs(), 3u);
  EXPECT_EQ(Fold(runs, 10),
            (std::map<uint64_t, uint32_t>{{1, 1}, {2, 1}, {4, 1}}));
  runs.TruncateFrom(0);
  EXPECT_TRUE(runs.empty());
}

TEST(StampedRunsTest, CompactStampsPreservesEveryFold) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    StampedRuns runs;
    StampedRuns reference;
    const int num_appends = 1 + static_cast<int>(rng() % 12);
    for (int a = 0; a < num_appends; ++a) {
      const uint32_t stamp = rng() % 4;
      const int32_t sign = (rng() % 3 == 0) ? -1 : +1;
      std::vector<uint64_t> keys;
      std::vector<uint32_t> counts;
      uint64_t key = rng() % 5;
      while (keys.size() < 1 + rng() % 6) {
        keys.push_back(key);
        counts.push_back(1 + rng() % 3);
        key += 1 + rng() % 4;
      }
      // Retraction in the real system never exceeds the prior emission;
      // model that by pairing every negative append with a matching
      // positive one first.
      if (sign < 0) {
        runs.Append(stamp, MakeRun(keys, counts), +1);
        reference.Append(stamp, MakeRun(keys, counts), +1);
      }
      runs.Append(stamp, MakeRun(keys, counts), sign);
      reference.Append(stamp, MakeRun(keys, counts), sign);
    }
    runs.CompactStamps();
    // Compaction leaves at most one run per distinct stamp.
    std::map<uint32_t, int> per_stamp;
    for (const StampedRun& run : runs.runs()) ++per_stamp[run.stamp];
    for (const auto& [stamp, count] : per_stamp) EXPECT_EQ(count, 1);
    for (uint32_t max_stamp = 0; max_stamp < 5; ++max_stamp) {
      EXPECT_EQ(Fold(runs, max_stamp), Fold(reference, max_stamp))
          << "trial " << trial << " max_stamp " << max_stamp;
    }
  }
}

// The accumulated fold replay runs on: advancing a FoldedRun stamp window
// by stamp window must land on exactly the ForEachUpTo fold at every
// watermark, whatever the window split (one-at-a-time, batched, or with
// gaps covered by a later catch-up window).
TEST(StampedRunsTest, AccumulateIntoMatchesFoldAtEveryWatermark) {
  std::mt19937 rng(4321);
  for (int trial = 0; trial < 20; ++trial) {
    StampedRuns runs;
    const int num_appends = 1 + static_cast<int>(rng() % 12);
    for (int a = 0; a < num_appends; ++a) {
      const uint32_t stamp = rng() % 4;
      const int32_t sign = (rng() % 3 == 0) ? -1 : +1;
      std::vector<uint64_t> keys;
      std::vector<uint32_t> counts;
      uint64_t key = rng() % 5;
      while (keys.size() < 1 + rng() % 6) {
        keys.push_back(key);
        counts.push_back(1 + rng() % 3);
        key += 1 + rng() % 4;
      }
      if (sign < 0) runs.Append(stamp, MakeRun(keys, counts), +1);
      runs.Append(stamp, MakeRun(keys, counts), sign);
    }

    // One stamp per window.
    FoldedRun acc;
    for (uint32_t stamp = 0; stamp < 5; ++stamp) {
      runs.AccumulateInto(stamp, stamp, &acc);
      std::map<uint64_t, uint32_t> got;
      acc.ForEach([&](uint64_t key, uint32_t count) { got[key] = count; });
      EXPECT_EQ(got, Fold(runs, stamp))
          << "trial " << trial << " watermark " << stamp;
      // Nets stored in the accumulator are strictly positive (whole-stamp
      // prefixes cannot go negative, and zeros are dropped).
      for (int64_t count : acc.counts) EXPECT_GT(count, 0);
    }

    // One catch-up window covering everything at once agrees.
    FoldedRun all;
    runs.AccumulateInto(0, 4, &all);
    EXPECT_EQ(all.keys, acc.keys);
    EXPECT_EQ(all.counts, acc.counts);

    // A window with no matching stamps leaves the accumulator untouched.
    FoldedRun before = acc;
    runs.AccumulateInto(100, 200, &acc);
    EXPECT_EQ(acc.keys, before.keys);
    EXPECT_EQ(acc.counts, before.counts);
  }
}

// Replay's two-level fold: a cold fold over a stamp prefix plus a hot fold
// over the remaining window, merged (at promotion via MergeFrom, or at scan
// time by summing shared keys) must equal the flat fold — for every split
// point. Stamp-local retraction makes per-window nets >= 0, which is what
// licenses folding a non-prefix window on its own.
TEST(StampedRunsTest, ColdHotSplitMatchesFlatFoldAtEverySplit) {
  std::mt19937 rng(9876);
  for (int trial = 0; trial < 20; ++trial) {
    StampedRuns runs;
    const int num_appends = 1 + static_cast<int>(rng() % 12);
    for (int a = 0; a < num_appends; ++a) {
      const uint32_t stamp = rng() % 4;
      const int32_t sign = (rng() % 3 == 0) ? -1 : +1;
      std::vector<uint64_t> keys;
      std::vector<uint32_t> counts;
      uint64_t key = rng() % 5;
      while (keys.size() < 1 + rng() % 6) {
        keys.push_back(key);
        counts.push_back(1 + rng() % 3);
        key += 1 + rng() % 4;
      }
      if (sign < 0) runs.Append(stamp, MakeRun(keys, counts), +1);
      runs.Append(stamp, MakeRun(keys, counts), sign);
    }

    for (uint32_t split = 0; split < 4; ++split) {
      FoldedRun cold, hot;
      runs.AccumulateInto(0, split, &cold);
      for (uint32_t stamp = split + 1; stamp < 5; ++stamp) {
        runs.AccumulateInto(stamp, stamp, &hot);  // hot: non-prefix window
        // Per-window nets stay strictly positive on both levels.
        for (int64_t count : cold.counts) EXPECT_GT(count, 0);
        for (int64_t count : hot.counts) EXPECT_GT(count, 0);
        // Scan-time view: 2-way merge summing shared keys.
        std::map<uint64_t, int64_t> merged;
        cold.ForEach([&](uint64_t key, uint32_t c) { merged[key] += c; });
        hot.ForEach([&](uint64_t key, uint32_t c) { merged[key] += c; });
        std::map<uint64_t, uint32_t> got;
        for (const auto& [key, count] : merged) {
          if (count > 0) got[key] = static_cast<uint32_t>(count);
        }
        EXPECT_EQ(got, Fold(runs, stamp))
            << "trial " << trial << " split " << split << " stamp " << stamp;
      }
      // Promotion: folding hot into cold equals the flat fold over all.
      cold.MergeFrom(std::move(hot));
      EXPECT_TRUE(hot.empty());
      std::map<uint64_t, uint32_t> promoted;
      cold.ForEach([&](uint64_t key, uint32_t c) { promoted[key] = c; });
      EXPECT_EQ(promoted, Fold(runs, 4))
          << "trial " << trial << " split " << split;
    }
  }
}

TEST(StampedRunsTest, EmptyUpToAndAppendRaw) {
  StampedRuns runs;
  EXPECT_TRUE(runs.EmptyUpTo(100));
  runs.Append(3, MakeRun({1}, {1}), +1);
  EXPECT_TRUE(runs.EmptyUpTo(2));
  EXPECT_FALSE(runs.EmptyUpTo(3));
  // Empty appends are dropped entirely.
  runs.Append(0, MakeRun({}, {}), +1);
  EXPECT_TRUE(runs.EmptyUpTo(2));

  StampedRun raw;
  raw.stamp = 1;
  raw.keys = {5, 6};
  raw.counts = {2, -2};
  runs.AppendRaw(std::move(raw));
  EXPECT_EQ(Fold(runs, 1), (std::map<uint64_t, uint32_t>{{5, 2}}));
  EXPECT_EQ(runs.total_entries(), 3u);
}

}  // namespace
}  // namespace reconcile
