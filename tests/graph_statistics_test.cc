#include "reconcile/graph/statistics.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "reconcile/gen/chung_lu.h"
#include "reconcile/graph/algorithms.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"

namespace reconcile {
namespace {

Graph PathGraph(NodeId n) {
  EdgeList edges(n);
  for (NodeId v = 0; v + 1 < n; ++v) edges.Add(v, v + 1);
  return Graph::FromEdgeList(std::move(edges));
}

Graph CycleGraph(NodeId n) {
  EdgeList edges(n);
  for (NodeId v = 0; v < n; ++v) edges.Add(v, (v + 1) % n);
  return Graph::FromEdgeList(std::move(edges));
}

Graph CompleteGraph(NodeId n) {
  EdgeList edges(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) edges.Add(u, v);
  return Graph::FromEdgeList(std::move(edges));
}

Graph StarGraph(NodeId leaves) {
  EdgeList edges(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) edges.Add(0, v);
  return Graph::FromEdgeList(std::move(edges));
}

// ----------------------------------------------------------------- k-cores

TEST(CoreNumbersTest, PathIsOneCore) {
  std::vector<NodeId> core = CoreNumbers(PathGraph(6));
  for (NodeId c : core) EXPECT_EQ(c, 1u);
}

TEST(CoreNumbersTest, CompleteGraphCore) {
  std::vector<NodeId> core = CoreNumbers(CompleteGraph(5));
  for (NodeId c : core) EXPECT_EQ(c, 4u);
  EXPECT_EQ(Degeneracy(CompleteGraph(5)), 4u);
}

TEST(CoreNumbersTest, StarLeavesAreOneCore) {
  std::vector<NodeId> core = CoreNumbers(StarGraph(7));
  EXPECT_EQ(core[0], 1u);  // hub peels with the leaves
  for (NodeId v = 1; v <= 7; ++v) EXPECT_EQ(core[v], 1u);
}

TEST(CoreNumbersTest, TriangleWithTailMixedCores) {
  // Triangle 0-1-2 plus a pendant path 2-3-4.
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(0, 2);
  edges.Add(2, 3);
  edges.Add(3, 4);
  std::vector<NodeId> core = CoreNumbers(Graph::FromEdgeList(std::move(edges)));
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
  EXPECT_EQ(core[4], 1u);
}

TEST(CoreNumbersTest, EmptyAndEdgelessGraphs) {
  EXPECT_TRUE(CoreNumbers(Graph()).empty());
  EdgeList edges(4);  // 4 isolated nodes
  std::vector<NodeId> core = CoreNumbers(Graph::FromEdgeList(std::move(edges)));
  for (NodeId c : core) EXPECT_EQ(c, 0u);
  EXPECT_EQ(Degeneracy(Graph()), 0u);
}

TEST(CoreNumbersTest, CoreIsAtMostDegree) {
  Graph g = GenerateErdosRenyi(400, 0.03, 11);
  std::vector<NodeId> core = CoreNumbers(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_LE(core[v], g.degree(v));
}

TEST(CoreNumbersTest, KCoreSubgraphHasMinDegreeK) {
  // Every node with core number >= k must have >= k neighbours whose core
  // number is also >= k — the defining property of the k-core.
  Graph g = GenerateErdosRenyi(300, 0.05, 5);
  std::vector<NodeId> core = CoreNumbers(g);
  const NodeId k = Degeneracy(g);
  ASSERT_GE(k, 1u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (core[v] < k) continue;
    NodeId in_core = 0;
    for (NodeId u : g.Neighbors(v))
      if (core[u] >= k) ++in_core;
    EXPECT_GE(in_core, k) << "node " << v;
  }
}

// ------------------------------------------------------------- clustering

TEST(ClusteringStatsTest, LocalClusteringOfCompleteGraph) {
  Graph g = CompleteGraph(6);
  for (NodeId v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(LocalClustering(g, v), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClustering(g), 1.0);
}

TEST(ClusteringStatsTest, PathHasZeroClustering) {
  Graph g = PathGraph(8);
  EXPECT_DOUBLE_EQ(GlobalClustering(g), 0.0);
  EXPECT_DOUBLE_EQ(LocalClustering(g, 1), 0.0);
}

TEST(ClusteringStatsTest, DegreeOneNodeIsZero) {
  Graph g = StarGraph(3);
  EXPECT_DOUBLE_EQ(LocalClustering(g, 1), 0.0);
}

TEST(ClusteringStatsTest, WedgeCounts) {
  EXPECT_EQ(CountWedges(PathGraph(4)), 2u);      // two interior nodes
  EXPECT_EQ(CountWedges(StarGraph(4)), 6u);      // C(4,2) at the hub
  EXPECT_EQ(CountWedges(CompleteGraph(4)), 12u); // 4 * C(3,2)
}

TEST(ClusteringStatsTest, GlobalMatchesTriangleWedgeRatio) {
  Graph g = GenerateErdosRenyi(200, 0.08, 3);
  const size_t wedges = CountWedges(g);
  ASSERT_GT(wedges, 0u);
  EXPECT_NEAR(GlobalClustering(g),
              3.0 * static_cast<double>(CountTriangles(g)) / wedges, 1e-12);
}

// ---------------------------------------------------------- assortativity

TEST(AssortativityTest, RegularGraphUndefinedIsZero) {
  // Every node of a cycle has degree 2: zero variance => defined as 0.
  EXPECT_DOUBLE_EQ(DegreeAssortativity(CycleGraph(10)), 0.0);
}

TEST(AssortativityTest, StarIsPerfectlyDisassortative) {
  EXPECT_NEAR(DegreeAssortativity(StarGraph(8)), -1.0, 1e-9);
}

TEST(AssortativityTest, WithinBounds) {
  Graph g = GeneratePreferentialAttachment(2000, 3, 17);
  const double r = DegreeAssortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
  // PA graphs are known to be non-assortative-to-disassortative.
  EXPECT_LT(r, 0.2);
}

// -------------------------------------------------------------- diameter

TEST(DiameterTest, PathDiameterExact) {
  // Double sweep is exact on trees.
  EXPECT_EQ(DiameterDoubleSweep(PathGraph(10), 4), 9u);
}

TEST(DiameterTest, CompleteGraphDiameterOne) {
  EXPECT_EQ(DiameterDoubleSweep(CompleteGraph(5), 0), 1u);
}

TEST(DiameterTest, CycleLowerBound) {
  const uint32_t d = DiameterDoubleSweep(CycleGraph(12), 0);
  EXPECT_GE(d, 5u);  // true diameter 6; sweep gives >= radius
  EXPECT_LE(d, 6u);
}

// -------------------------------------------------------------- power law

TEST(PowerLawTest, TooSmallTailUndefined) {
  PowerLawFit fit = FitPowerLaw(PathGraph(5), 1);
  EXPECT_EQ(fit.alpha, 0.0);
}

TEST(PowerLawTest, RecoverySyntheticExponent) {
  // Chung–Lu with exponent 2.5 should fit alpha in a sane band around 2.5.
  Graph g = GenerateChungLu(PowerLawWeights(30000, 2.5, 12.0), 29);
  PowerLawFit fit = FitPowerLaw(g, 10);
  ASSERT_GT(fit.tail_size, 100u);
  EXPECT_GT(fit.alpha, 2.0);
  EXPECT_LT(fit.alpha, 3.2);
}

TEST(PowerLawTest, ErdosRenyiFitsSteepTail) {
  // ER degree tails decay faster than any power law; the MLE returns a
  // large alpha rather than a scale-free-looking 2-3.
  Graph g = GenerateErdosRenyi(20000, 8.0 / 20000, 31);
  PowerLawFit fit = FitPowerLaw(g, 8);
  if (fit.alpha > 0.0) {
    EXPECT_GT(fit.alpha, 3.0);
  }
}

// -------------------------------------------------------------- ccdf etc.

TEST(CcdfTest, MonotoneAndNormalized) {
  Graph g = GenerateErdosRenyi(500, 0.02, 23);
  std::vector<double> ccdf = DegreeCcdf(g);
  ASSERT_FALSE(ccdf.empty());
  EXPECT_DOUBLE_EQ(ccdf[0], 1.0);
  for (size_t d = 1; d < ccdf.size(); ++d) EXPECT_LE(ccdf[d], ccdf[d - 1]);
  EXPECT_DOUBLE_EQ(ccdf.back(), 0.0);
}

TEST(CcdfTest, StarCcdf) {
  std::vector<double> ccdf = DegreeCcdf(StarGraph(4));  // degrees 4,1,1,1,1
  ASSERT_EQ(ccdf.size(), 6u);
  EXPECT_DOUBLE_EQ(ccdf[1], 1.0);
  EXPECT_DOUBLE_EQ(ccdf[2], 0.2);
  EXPECT_DOUBLE_EQ(ccdf[4], 0.2);
  EXPECT_DOUBLE_EQ(ccdf[5], 0.0);
}

TEST(PercentileTest, MedianOfPath) {
  // Path(4) degrees sorted: 1,1,2,2.
  Graph g = PathGraph(4);
  EXPECT_EQ(DegreePercentile(g, 0.0), 1u);
  EXPECT_EQ(DegreePercentile(g, 50.0), 2u);
  EXPECT_EQ(DegreePercentile(g, 100.0), 2u);
}

TEST(PercentileTest, UniformDegreeGraph) {
  Graph g = CycleGraph(9);
  EXPECT_EQ(DegreePercentile(g, 10.0), 2u);
  EXPECT_EQ(DegreePercentile(g, 90.0), 2u);
}

// ------------------------------------------------------- full stats block

TEST(ComputeStatisticsTest, EmptyGraph) {
  GraphStatistics s = ComputeStatistics(Graph());
  EXPECT_EQ(s.num_nodes, 0u);
  EXPECT_EQ(s.num_edges, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
}

TEST(ComputeStatisticsTest, CompleteGraphBlock) {
  GraphStatistics s = ComputeStatistics(CompleteGraph(6));
  EXPECT_EQ(s.num_nodes, 6u);
  EXPECT_EQ(s.num_edges, 15u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 5.0);
  EXPECT_EQ(s.max_degree, 5u);
  EXPECT_EQ(s.median_degree, 5u);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_DOUBLE_EQ(s.largest_component_frac, 1.0);
  EXPECT_DOUBLE_EQ(s.global_clustering, 1.0);
  EXPECT_EQ(s.num_triangles, 20u);
  EXPECT_EQ(s.degeneracy, 5u);
  EXPECT_EQ(s.diameter_lower_bound, 1u);
  EXPECT_DOUBLE_EQ(s.frac_degree_le5, 1.0);
}

TEST(ComputeStatisticsTest, SampledClusteringCloseToExact) {
  Graph g = GenerateErdosRenyi(400, 0.05, 41);
  StatisticsOptions exact;
  StatisticsOptions sampled;
  sampled.max_exact_wedges = 1;  // force sampling
  sampled.clustering_samples = 100000;
  const double cc_exact = ComputeStatistics(g, exact).global_clustering;
  const double cc_sampled = ComputeStatistics(g, sampled).global_clustering;
  EXPECT_NEAR(cc_exact, cc_sampled, 0.02);
}

TEST(ComputeStatisticsTest, DeterministicForFixedSeed) {
  Graph g = GeneratePreferentialAttachment(1000, 4, 5);
  GraphStatistics a = ComputeStatistics(g);
  GraphStatistics b = ComputeStatistics(g);
  EXPECT_EQ(a.diameter_lower_bound, b.diameter_lower_bound);
  EXPECT_DOUBLE_EQ(a.global_clustering, b.global_clustering);
  EXPECT_DOUBLE_EQ(a.degree_assortativity, b.degree_assortativity);
}

TEST(ComputeStatisticsTest, SummaryMentionsCounts) {
  GraphStatistics s = ComputeStatistics(CompleteGraph(4));
  const std::string line = SummarizeStatistics(s);
  EXPECT_NE(line.find("n=4"), std::string::npos);
  EXPECT_NE(line.find("m=6"), std::string::npos);
}

}  // namespace
}  // namespace reconcile
