#include "reconcile/graph/edge_list.h"

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(EdgeListTest, StartsEmpty) {
  EdgeList edges;
  EXPECT_TRUE(edges.empty());
  EXPECT_EQ(edges.size(), 0u);
  EXPECT_EQ(edges.num_nodes(), 0u);
}

TEST(EdgeListTest, AddGrowsNodeRange) {
  EdgeList edges;
  edges.Add(3, 7);
  EXPECT_EQ(edges.num_nodes(), 8u);
  edges.Add(10, 2);
  EXPECT_EQ(edges.num_nodes(), 11u);
  EXPECT_EQ(edges.size(), 2u);
}

TEST(EdgeListTest, ExplicitNodeCountPreserved) {
  EdgeList edges(100);
  edges.Add(1, 2);
  EXPECT_EQ(edges.num_nodes(), 100u);
}

TEST(EdgeListTest, EnsureNumNodesNeverShrinks) {
  EdgeList edges(50);
  edges.EnsureNumNodes(10);
  EXPECT_EQ(edges.num_nodes(), 50u);
  edges.EnsureNumNodes(60);
  EXPECT_EQ(edges.num_nodes(), 60u);
}

TEST(EdgeListTest, NormalizeCanonicalizesEndpoints) {
  EdgeList edges;
  edges.Add(5, 2);
  edges.Normalize();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges.edges()[0], Edge(2, 5));
}

TEST(EdgeListTest, NormalizeRemovesDuplicates) {
  EdgeList edges;
  edges.Add(1, 2);
  edges.Add(2, 1);  // same undirected edge
  edges.Add(1, 2);
  edges.Normalize();
  EXPECT_EQ(edges.size(), 1u);
}

TEST(EdgeListTest, NormalizeRemovesSelfLoops) {
  EdgeList edges;
  edges.Add(4, 4);
  edges.Add(1, 2);
  edges.Add(9, 9);
  edges.Normalize();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges.edges()[0], Edge(1, 2));
}

TEST(EdgeListTest, NormalizeSortsEdges) {
  EdgeList edges;
  edges.Add(9, 3);
  edges.Add(0, 1);
  edges.Add(5, 2);
  edges.Normalize();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges.edges()[0], Edge(0, 1));
  EXPECT_EQ(edges.edges()[1], Edge(2, 5));
  EXPECT_EQ(edges.edges()[2], Edge(3, 9));
}

TEST(EdgeListTest, NormalizeIsIdempotent) {
  EdgeList edges;
  edges.Add(3, 1);
  edges.Add(1, 3);
  edges.Add(2, 2);
  edges.Normalize();
  std::vector<Edge> once = edges.edges();
  edges.Normalize();
  EXPECT_EQ(edges.edges(), once);
}

TEST(EdgeListTest, NormalizeOnEmptyListIsNoOp) {
  EdgeList edges;
  edges.Normalize();
  EXPECT_TRUE(edges.empty());
}

}  // namespace
}  // namespace reconcile
