#include "reconcile/graph/edge_list.h"

#include <gtest/gtest.h>

#include "reconcile/util/rng.h"
#include "reconcile/util/thread_pool.h"

namespace reconcile {
namespace {

TEST(EdgeListTest, StartsEmpty) {
  EdgeList edges;
  EXPECT_TRUE(edges.empty());
  EXPECT_EQ(edges.size(), 0u);
  EXPECT_EQ(edges.num_nodes(), 0u);
}

TEST(EdgeListTest, AddGrowsNodeRange) {
  EdgeList edges;
  edges.Add(3, 7);
  EXPECT_EQ(edges.num_nodes(), 8u);
  edges.Add(10, 2);
  EXPECT_EQ(edges.num_nodes(), 11u);
  EXPECT_EQ(edges.size(), 2u);
}

TEST(EdgeListTest, ExplicitNodeCountPreserved) {
  EdgeList edges(100);
  edges.Add(1, 2);
  EXPECT_EQ(edges.num_nodes(), 100u);
}

TEST(EdgeListTest, EnsureNumNodesNeverShrinks) {
  EdgeList edges(50);
  edges.EnsureNumNodes(10);
  EXPECT_EQ(edges.num_nodes(), 50u);
  edges.EnsureNumNodes(60);
  EXPECT_EQ(edges.num_nodes(), 60u);
}

TEST(EdgeListTest, NormalizeCanonicalizesEndpoints) {
  EdgeList edges;
  edges.Add(5, 2);
  edges.Normalize();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges.edges()[0], Edge(2, 5));
}

TEST(EdgeListTest, NormalizeRemovesDuplicates) {
  EdgeList edges;
  edges.Add(1, 2);
  edges.Add(2, 1);  // same undirected edge
  edges.Add(1, 2);
  edges.Normalize();
  EXPECT_EQ(edges.size(), 1u);
}

TEST(EdgeListTest, NormalizeRemovesSelfLoops) {
  EdgeList edges;
  edges.Add(4, 4);
  edges.Add(1, 2);
  edges.Add(9, 9);
  edges.Normalize();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges.edges()[0], Edge(1, 2));
}

TEST(EdgeListTest, NormalizeSortsEdges) {
  EdgeList edges;
  edges.Add(9, 3);
  edges.Add(0, 1);
  edges.Add(5, 2);
  edges.Normalize();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges.edges()[0], Edge(0, 1));
  EXPECT_EQ(edges.edges()[1], Edge(2, 5));
  EXPECT_EQ(edges.edges()[2], Edge(3, 9));
}

TEST(EdgeListTest, NormalizeIsIdempotent) {
  EdgeList edges;
  edges.Add(3, 1);
  edges.Add(1, 3);
  edges.Add(2, 2);
  edges.Normalize();
  std::vector<Edge> once = edges.edges();
  edges.Normalize();
  EXPECT_EQ(edges.edges(), once);
}

TEST(EdgeListTest, NormalizeOnEmptyListIsNoOp) {
  EdgeList edges;
  edges.Normalize();
  EXPECT_TRUE(edges.empty());
}

// Messy random multigraph: duplicates (both orientations), self-loops,
// skewed endpoints. Used to compare the serial and parallel normalize paths.
EdgeList MakeMessyEdges(size_t n, uint64_t seed) {
  Rng rng(seed);
  EdgeList edges(2000);
  edges.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(2000));
    NodeId v = rng.Bernoulli(0.05) ? u  // self-loop
                                   : static_cast<NodeId>(rng.UniformInt(2000));
    if (rng.Bernoulli(0.5)) std::swap(u, v);
    edges.Add(u, v);
  }
  return edges;
}

TEST(EdgeListParallelNormalizeTest, MatchesSerialResult) {
  for (size_t n : {10u, 1000u, 100000u}) {
    EdgeList serial = MakeMessyEdges(n, 31 + n);
    EdgeList parallel = serial;
    serial.Normalize(nullptr);
    ThreadPool pool(4);
    parallel.Normalize(&pool);
    EXPECT_EQ(parallel.edges(), serial.edges()) << "n=" << n;
    EXPECT_EQ(parallel.num_nodes(), serial.num_nodes());
  }
}

TEST(EdgeListParallelNormalizeTest, ThreadCountInvariance) {
  EdgeList reference = MakeMessyEdges(60000, 77);
  reference.Normalize(nullptr);
  for (int threads : {2, 3, 8}) {
    EdgeList edges = MakeMessyEdges(60000, 77);
    ThreadPool pool(threads);
    edges.Normalize(&pool);
    EXPECT_EQ(edges.edges(), reference.edges()) << "threads=" << threads;
  }
}

TEST(EdgeListParallelNormalizeTest, IdempotentOnPool) {
  EdgeList edges = MakeMessyEdges(50000, 99);
  ThreadPool pool(4);
  edges.Normalize(&pool);
  std::vector<Edge> once = edges.edges();
  edges.Normalize(&pool);
  EXPECT_EQ(edges.edges(), once);
}

// Adversarial input for the blocked dedup sweep: a handful of distinct
// edges each repeated thousands of times, plus self-loop runs — after the
// sort, equal runs span many dedup blocks, so keep-decisions at block
// boundaries (compare against the predecessor in the *previous* block) and
// the prefix-sum offsets are all exercised. Any boundary bug duplicates or
// drops an edge relative to the serial sweep.
TEST(EdgeListParallelNormalizeTest, DedupRunsSpanningBlocksMatchSerial) {
  Rng rng(4242);
  EdgeList reference(64);
  reference.Reserve(120000);
  for (size_t i = 0; i < 120000; ++i) {
    // ~20 distinct undirected edges + ~4 distinct self-loops, heavily
    // repeated in random order and random orientation.
    if (rng.Bernoulli(0.1)) {
      NodeId u = static_cast<NodeId>(rng.UniformInt(4));
      reference.Add(u, u);
    } else {
      NodeId u = static_cast<NodeId>(rng.UniformInt(5));
      NodeId v = static_cast<NodeId>(5 + rng.UniformInt(4));
      if (rng.Bernoulli(0.5)) std::swap(u, v);
      reference.Add(u, v);
    }
  }
  EdgeList serial = reference;
  serial.Normalize(nullptr);
  ASSERT_LE(serial.size(), 20u);  // dedup actually collapsed the runs
  for (int threads : {2, 3, 5, 8}) {
    EdgeList parallel = reference;
    ThreadPool pool(threads);
    parallel.Normalize(&pool);
    EXPECT_EQ(parallel.edges(), serial.edges()) << "threads=" << threads;
  }
}

TEST(EdgeListParallelNormalizeTest, AutoPathCrossesThreshold) {
  // Above the internal threshold Normalize() may use the shared pool; the
  // result must be identical to the explicitly serial path either way.
  EdgeList auto_edges = MakeMessyEdges(80000, 123);
  EdgeList serial_edges = auto_edges;
  auto_edges.Normalize();
  serial_edges.Normalize(nullptr);
  EXPECT_EQ(auto_edges.edges(), serial_edges.edges());
}

}  // namespace
}  // namespace reconcile
