#include "reconcile/gen/erdos_renyi.h"

#include <cmath>

#include <gtest/gtest.h>

#include "reconcile/graph/algorithms.h"

namespace reconcile {
namespace {

TEST(ErdosRenyiTest, DeterministicForSeed) {
  Graph a = GenerateErdosRenyi(500, 0.02, 42);
  Graph b = GenerateErdosRenyi(500, 0.02, 42);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v));
  }
}

TEST(ErdosRenyiTest, DifferentSeedsDiffer) {
  Graph a = GenerateErdosRenyi(500, 0.02, 1);
  Graph b = GenerateErdosRenyi(500, 0.02, 2);
  // Astronomically unlikely to coincide.
  bool identical = a.num_edges() == b.num_edges();
  if (identical) {
    for (NodeId v = 0; v < a.num_nodes() && identical; ++v) {
      identical = a.degree(v) == b.degree(v);
    }
  }
  EXPECT_FALSE(identical);
}

TEST(ErdosRenyiTest, EdgeCountConcentrates) {
  const NodeId n = 2000;
  const double p = 0.01;
  Graph g = GenerateErdosRenyi(n, p, 7);
  double expected = ErdosRenyiExpectedEdges(n, p);
  double stddev = std::sqrt(expected * (1 - p));
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 6 * stddev);
}

TEST(ErdosRenyiTest, ZeroProbabilityEmpty) {
  Graph g = GenerateErdosRenyi(100, 0.0, 3);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_nodes(), 100u);
}

TEST(ErdosRenyiTest, ProbabilityOneIsComplete) {
  const NodeId n = 50;
  Graph g = GenerateErdosRenyi(n, 1.0, 3);
  EXPECT_EQ(g.num_edges(), static_cast<size_t>(n) * (n - 1) / 2);
}

TEST(ErdosRenyiTest, TinyGraphs) {
  EXPECT_EQ(GenerateErdosRenyi(0, 0.5, 1).num_nodes(), 0u);
  EXPECT_EQ(GenerateErdosRenyi(1, 0.5, 1).num_edges(), 0u);
  Graph two = GenerateErdosRenyi(2, 1.0, 1);
  EXPECT_EQ(two.num_edges(), 1u);
}

TEST(ErdosRenyiTest, DegreesAreRoughlyBinomial) {
  const NodeId n = 3000;
  const double p = 0.01;
  Graph g = GenerateErdosRenyi(n, p, 11);
  double mean_degree = static_cast<double>(g.degree_sum()) / n;
  EXPECT_NEAR(mean_degree, (n - 1) * p, 1.5);
  // Max degree of a binomial(n, 0.01) stays near the mean, unlike power laws.
  EXPECT_LT(g.max_degree(), 4 * (n - 1) * p);
}

TEST(ErdosRenyiTest, ConnectedAboveThreshold) {
  // n*p = 4 log n: safely above the log n / n connectivity threshold.
  const NodeId n = 500;
  double p = 4.0 * std::log(n) / n;
  Graph g = GenerateErdosRenyi(n, p, 13);
  EXPECT_EQ(CountComponents(g), 1u);
}

TEST(ErdosRenyiTest, NoSelfLoopsNoDuplicates) {
  Graph g = GenerateErdosRenyi(300, 0.05, 17);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::span<const NodeId> nbrs = g.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i], v);
      if (i > 0) {
        EXPECT_LT(nbrs[i - 1], nbrs[i]);
      }
    }
  }
}

}  // namespace
}  // namespace reconcile
