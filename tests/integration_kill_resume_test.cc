// End-to-end crash safety: a matcher process killed mid-run by an injected
// crash fault must, when restarted with --resume semantics, finish with a
// matching byte-identical to an uninterrupted run — across scoring backend,
// scheduler and placement. Corrupt checkpoints must fall back to older ones
// (to a fresh start when none survives), an injected checkpoint-write
// failure must only cost a recovery point, and a graceful stop must exit
// cleanly with a resumable partial state.
//
// Process discipline: the parent NEVER builds a workload or runs the
// matcher (both spawn the shared thread pool, and forking a threaded
// process is undefined behaviour waiting to happen). Every matcher run —
// crashing, resuming or clean — happens in a forked child that regenerates
// its inputs deterministically and writes its matching to a file; the
// parent only forks, waits and compares bytes.
#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/eval/match_io.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"
#include "reconcile/util/checkpoint.h"
#include "reconcile/util/fault.h"

namespace reconcile {
namespace {

constexpr uint64_t kWorkloadSeed = 4242;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void RemoveTree(const std::string& dir) {
  for (const CheckpointFile& file : ListCheckpoints(dir)) {
    std::remove(file.path.c_str());
  }
  ::rmdir(dir.c_str());
}

// Removes every regular file in `dir` then the directory itself; returns
// how many files were swept (used to observe stale spill scratch a crash
// left behind).
size_t SweepDir(const std::string& dir) {
  size_t swept = 0;
  if (DIR* handle = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
      ++swept;
    }
    ::closedir(handle);
  }
  ::rmdir(dir.c_str());
  return swept;
}

size_t CountDirEntries(const std::string& dir) {
  size_t n = 0;
  if (DIR* handle = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") ++n;
    }
    ::closedir(handle);
  }
  return n;
}

struct ChildSpec {
  MatcherConfig config;
  std::string matching_out;  // empty: the child writes no matching
};

// CHILD-ONLY code path: regenerates the workload and runs the matcher.
void ChildMain(const ChildSpec& spec) {
  Graph g = GenerateChungLu(PowerLawWeights(1000, 2.2, 12.0), kWorkloadSeed);
  IndependentSampleOptions options;
  options.s1 = 0.6;
  options.s2 = 0.6;
  RealizationPair pair = SampleIndependent(g, options, kWorkloadSeed + 1);
  SeedOptions seeding;
  seeding.fraction = 0.08;
  auto seeds = GenerateSeeds(pair, seeding, kWorkloadSeed + 2);

  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, spec.config);
  if (!spec.matching_out.empty() &&
      !WriteMatchingText(result, spec.matching_out)) {
    _exit(3);
  }
  _exit(0);
}

// Forks, runs `spec` in the child, returns the child's exit code (or -1 if
// it died on a signal).
int RunChild(const ChildSpec& spec) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ChildMain(spec);  // never returns
  }
  if (pid < 0) return -1;
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFSIGNALED(status)) return -1;
  return WEXITSTATUS(status);
}

MatcherConfig GridConfig(ScoringBackend backend, Scheduler scheduler,
                         int placement_domains) {
  MatcherConfig config;
  config.scoring_backend = backend;
  config.scheduler = scheduler;
  config.num_shards = 4;  // fixed: the snapshot fingerprints the resolved count
  config.num_threads = 4;
  if (placement_domains > 0) {
    config.placement = PlacementPolicy::kDomain;
    config.placement_domains = placement_domains;
  }
  return config;
}

// One crash/resume cycle: clean run -> file A; crash run (must die with the
// fault exit code, leaving checkpoints); resume run -> file B; A == B.
void CheckKillResume(const MatcherConfig& base, const std::string& tag) {
  const std::string dir = TempPath("kr_" + tag);
  const std::string clean_out = TempPath("kr_" + tag + "_clean.txt");
  const std::string resumed_out = TempPath("kr_" + tag + "_resumed.txt");

  ChildSpec clean;
  clean.config = base;
  clean.matching_out = clean_out;
  ASSERT_EQ(RunChild(clean), 0) << tag;

  ChildSpec crash;
  crash.config = base;
  crash.config.checkpoint_dir = dir;
  crash.config.fault_spec = "crash:after_round=5";
  ASSERT_EQ(RunChild(crash), kFaultCrashExitCode) << tag;
  ASSERT_FALSE(ListCheckpoints(dir).empty()) << tag;

  ChildSpec resume;
  resume.config = base;
  resume.config.checkpoint_dir = dir;
  resume.config.resume = true;
  resume.matching_out = resumed_out;
  ASSERT_EQ(RunChild(resume), 0) << tag;

  const std::vector<char> clean_bytes = Slurp(clean_out);
  ASSERT_FALSE(clean_bytes.empty()) << tag;
  EXPECT_EQ(Slurp(resumed_out), clean_bytes)
      << tag << ": resumed matching differs from the uninterrupted run";

  RemoveTree(dir);
  std::remove(clean_out.c_str());
  std::remove(resumed_out.c_str());
}

// Four corners covering each axis in both settings: backend (radix/hash),
// scheduler (stealing/static), placement (off / 3 synthetic domains).
// Split per backend so CI can run the harness once per scoring engine
// (`--gtest_filter=KillResumeTest.Radix*` / `.Hash*`).
TEST(KillResumeTest, RadixResumeBitIdentical) {
  CheckKillResume(
      GridConfig(ScoringBackend::kRadixSort, Scheduler::kWorkStealing, 0),
      "radix_steal_flat");
  CheckKillResume(
      GridConfig(ScoringBackend::kRadixSort, Scheduler::kStatic, 3),
      "radix_static_placed");
}

TEST(KillResumeTest, HashResumeBitIdentical) {
  CheckKillResume(
      GridConfig(ScoringBackend::kHashMap, Scheduler::kWorkStealing, 3),
      "hash_steal_placed");
  CheckKillResume(
      GridConfig(ScoringBackend::kHashMap, Scheduler::kStatic, 0),
      "hash_static_flat");
}

TEST(KillResumeTest, CheckpointWriteFailureOnlyCostsARecoveryPoint) {
  // The 3rd checkpoint write fails (injected); the run then crashes after
  // round 5. Recovery resumes from the newest surviving snapshot and
  // replays the lost rounds — the final matching is still identical.
  MatcherConfig base =
      GridConfig(ScoringBackend::kRadixSort, Scheduler::kWorkStealing, 0);
  const std::string dir = TempPath("kr_writefail");
  const std::string clean_out = TempPath("kr_writefail_clean.txt");
  const std::string resumed_out = TempPath("kr_writefail_resumed.txt");

  ChildSpec clean;
  clean.config = base;
  clean.matching_out = clean_out;
  ASSERT_EQ(RunChild(clean), 0);

  ChildSpec crash;
  crash.config = base;
  crash.config.checkpoint_dir = dir;
  crash.config.fault_spec =
      "io:checkpoint_write_fail=3;crash:after_round=5";
  ASSERT_EQ(RunChild(crash), kFaultCrashExitCode);
  const std::vector<CheckpointFile> left = ListCheckpoints(dir);
  ASSERT_FALSE(left.empty());
  EXPECT_LT(left.back().round, 5) << "round 3's write was injected to fail";

  ChildSpec resume;
  resume.config = base;
  resume.config.checkpoint_dir = dir;
  resume.config.resume = true;
  resume.matching_out = resumed_out;
  ASSERT_EQ(RunChild(resume), 0);
  EXPECT_EQ(Slurp(resumed_out), Slurp(clean_out));

  RemoveTree(dir);
  std::remove(clean_out.c_str());
  std::remove(resumed_out.c_str());
}

TEST(KillResumeTest, CorruptNewestCheckpointFallsBackToOlder) {
  MatcherConfig base =
      GridConfig(ScoringBackend::kRadixSort, Scheduler::kWorkStealing, 0);
  const std::string dir = TempPath("kr_corrupt");
  const std::string clean_out = TempPath("kr_corrupt_clean.txt");
  const std::string resumed_out = TempPath("kr_corrupt_resumed.txt");

  ChildSpec clean;
  clean.config = base;
  clean.matching_out = clean_out;
  ASSERT_EQ(RunChild(clean), 0);

  ChildSpec crash;
  crash.config = base;
  crash.config.checkpoint_dir = dir;
  crash.config.fault_spec = "crash:after_round=5";
  ASSERT_EQ(RunChild(crash), kFaultCrashExitCode);
  std::vector<CheckpointFile> files = ListCheckpoints(dir);
  ASSERT_GE(files.size(), 2u);

  // Truncate the newest snapshot to half — a torn write survived a crash.
  {
    const std::string& victim = files.back().path;
    std::vector<char> bytes = Slurp(victim);
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  ChildSpec resume;
  resume.config = base;
  resume.config.checkpoint_dir = dir;
  resume.config.resume = true;
  resume.matching_out = resumed_out;
  ASSERT_EQ(RunChild(resume), 0)
      << "a corrupt checkpoint must be skipped, not fatal";
  EXPECT_EQ(Slurp(resumed_out), Slurp(clean_out));

  RemoveTree(dir);
  std::remove(clean_out.c_str());
  std::remove(resumed_out.c_str());
}

TEST(KillResumeTest, AllCheckpointsCorruptFallsBackToFreshStart) {
  MatcherConfig base =
      GridConfig(ScoringBackend::kHashMap, Scheduler::kStatic, 0);
  const std::string dir = TempPath("kr_allcorrupt");
  const std::string clean_out = TempPath("kr_allcorrupt_clean.txt");
  const std::string resumed_out = TempPath("kr_allcorrupt_resumed.txt");

  ChildSpec clean;
  clean.config = base;
  clean.matching_out = clean_out;
  ASSERT_EQ(RunChild(clean), 0);

  ChildSpec crash;
  crash.config = base;
  crash.config.checkpoint_dir = dir;
  crash.config.fault_spec = "crash:after_round=4";
  ASSERT_EQ(RunChild(crash), kFaultCrashExitCode);

  // Garbage in every snapshot: resume must warn, fall back to the seeds,
  // and still finish — determinism makes even the fresh start identical.
  for (const CheckpointFile& file : ListCheckpoints(dir)) {
    std::ofstream(file.path, std::ios::binary | std::ios::trunc)
        << "not a snapshot";
  }

  ChildSpec resume;
  resume.config = base;
  resume.config.checkpoint_dir = dir;
  resume.config.resume = true;
  resume.matching_out = resumed_out;
  ASSERT_EQ(RunChild(resume), 0);
  EXPECT_EQ(Slurp(resumed_out), Slurp(clean_out));

  RemoveTree(dir);
  std::remove(clean_out.c_str());
  std::remove(resumed_out.c_str());
}

TEST(KillResumeTest, GracefulStopCheckpointsAndResumes) {
  // `stop:` is the deterministic stand-in for SIGTERM: the run finishes its
  // round, writes a final checkpoint, exits 0 with a partial matching; a
  // resume run completes it identically to a never-stopped run.
  MatcherConfig base =
      GridConfig(ScoringBackend::kRadixSort, Scheduler::kWorkStealing, 0);
  const std::string dir = TempPath("kr_stop");
  const std::string clean_out = TempPath("kr_stop_clean.txt");
  const std::string partial_out = TempPath("kr_stop_partial.txt");
  const std::string resumed_out = TempPath("kr_stop_resumed.txt");

  ChildSpec clean;
  clean.config = base;
  clean.matching_out = clean_out;
  ASSERT_EQ(RunChild(clean), 0);

  ChildSpec stop;
  stop.config = base;
  stop.config.checkpoint_dir = dir;
  stop.config.checkpoint_every_rounds = 100;  // only the stop writes one
  stop.config.fault_spec = "stop:after_round=2";
  stop.matching_out = partial_out;
  ASSERT_EQ(RunChild(stop), 0) << "graceful stop must exit cleanly";
  const std::vector<CheckpointFile> files = ListCheckpoints(dir);
  ASSERT_EQ(files.size(), 1u) << "the stop must flush a final checkpoint";
  EXPECT_EQ(files[0].round, 2);
  // The partial matching exists but is shorter than the full one.
  ASSERT_FALSE(Slurp(partial_out).empty());
  EXPECT_LT(Slurp(partial_out).size(), Slurp(clean_out).size());

  ChildSpec resume;
  resume.config = base;
  resume.config.checkpoint_dir = dir;
  resume.config.checkpoint_every_rounds = 100;
  resume.config.resume = true;
  resume.matching_out = resumed_out;
  ASSERT_EQ(RunChild(resume), 0);
  EXPECT_EQ(Slurp(resumed_out), Slurp(clean_out));

  RemoveTree(dir);
  std::remove(clean_out.c_str());
  std::remove(partial_out.c_str());
  std::remove(resumed_out.c_str());
}

TEST(KillResumeTest, CrashMidSpillResumesFromSpilledCheckpoint) {
  // A 1-byte budget makes every round spill its whole score state, and the
  // `crash:spill_commit=N` value point kills the process immediately after
  // the N-th successful spill — mid-way through a budget-enforcement pass,
  // with earlier rounds already checkpointed while their stores were
  // spilled. The resume (also budgeted) must reload the newest surviving
  // snapshot, re-spill on its next round, and finish byte-identical to an
  // UNBUDGETED clean run — proving both crash recovery and that the
  // checkpoint format is representation-independent.
  MatcherConfig base =
      GridConfig(ScoringBackend::kRadixSort, Scheduler::kWorkStealing, 0);
  const std::string dir = TempPath("kr_spill");
  const std::string scratch = TempPath("kr_spill_scratch");
  const std::string clean_out = TempPath("kr_spill_clean.txt");
  const std::string resumed_out = TempPath("kr_spill_resumed.txt");
  std::string error;
  ASSERT_TRUE(EnsureDir(scratch, &error)) << error;

  ChildSpec clean;
  clean.config = base;  // unbudgeted reference
  clean.matching_out = clean_out;
  ASSERT_EQ(RunChild(clean), 0);

  MatcherConfig budgeted = base;
  budgeted.memory_budget_bytes = 1;
  budgeted.score_dir = scratch;
  budgeted.checkpoint_dir = dir;

  ChildSpec crash;
  crash.config = budgeted;
  crash.config.fault_spec = "crash:spill_commit=40";
  ASSERT_EQ(RunChild(crash), kFaultCrashExitCode);
  ASSERT_FALSE(ListCheckpoints(dir).empty())
      << "the crash must land after at least one checkpoint";
  // A hard crash is the one case that leaves spill scratch behind (the
  // mapped runs were alive when the process died).
  EXPECT_GT(CountDirEntries(scratch), 0u);

  ChildSpec resume;
  resume.config = budgeted;
  resume.config.resume = true;
  resume.matching_out = resumed_out;
  ASSERT_EQ(RunChild(resume), 0);
  EXPECT_EQ(Slurp(resumed_out), Slurp(clean_out))
      << "budgeted resume diverged from the unbudgeted clean run";

  RemoveTree(dir);
  SweepDir(scratch);
  std::remove(clean_out.c_str());
  std::remove(resumed_out.c_str());
}

TEST(KillResumeTest, CheckpointRetentionKeepsNewestAndStillResumes) {
  // checkpoint_keep=2 prunes after every successful write; a finished run
  // leaves exactly the two newest snapshots, and a crash/resume cycle under
  // the same retention still recovers (the newest surviving snapshot is by
  // construction inside the retained window).
  MatcherConfig base =
      GridConfig(ScoringBackend::kRadixSort, Scheduler::kStatic, 0);
  base.checkpoint_keep = 2;
  const std::string dir = TempPath("kr_keep");
  const std::string clean_out = TempPath("kr_keep_clean.txt");
  const std::string resumed_out = TempPath("kr_keep_resumed.txt");

  ChildSpec clean;
  clean.config = base;
  clean.config.checkpoint_dir = dir;
  clean.matching_out = clean_out;
  ASSERT_EQ(RunChild(clean), 0);
  std::vector<CheckpointFile> files = ListCheckpoints(dir);
  ASSERT_EQ(files.size(), 2u) << "retention must prune to the newest 2";
  EXPECT_EQ(files[1].round, files[0].round + 1)
      << "the survivors must be the newest consecutive snapshots";

  ChildSpec resume;
  resume.config = base;
  resume.config.checkpoint_dir = dir;
  resume.config.resume = true;
  resume.matching_out = resumed_out;
  ASSERT_EQ(RunChild(resume), 0);
  EXPECT_EQ(Slurp(resumed_out), Slurp(clean_out));

  RemoveTree(dir);
  std::remove(clean_out.c_str());
  std::remove(resumed_out.c_str());
}

}  // namespace
}  // namespace reconcile
