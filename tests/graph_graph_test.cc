#include "reconcile/graph/graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "reconcile/util/rng.h"
#include "reconcile/util/thread_pool.h"

namespace reconcile {
namespace {

Graph TriangleWithTail() {
  // 0-1, 1-2, 0-2 triangle; 2-3 tail.
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(0, 2);
  edges.Add(2, 3);
  return Graph::FromEdgeList(std::move(edges));
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(GraphTest, BasicCounts) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree_sum(), 8u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(GraphTest, NeighborsSortedAscending) {
  Graph g = TriangleWithTail();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::span<const NodeId> nbrs = g.Neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
  std::span<const NodeId> n2 = g.Neighbors(2);
  ASSERT_EQ(n2.size(), 3u);
  EXPECT_EQ(n2[0], 0u);
  EXPECT_EQ(n2[1], 1u);
  EXPECT_EQ(n2[2], 3u);
}

TEST(GraphTest, NeighborsByDegreeDescending) {
  Graph g = TriangleWithTail();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::span<const NodeId> nbrs = g.NeighborsByDegree(v);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_GE(g.degree(nbrs[i - 1]), g.degree(nbrs[i]));
    }
  }
  // Node 0's neighbours: 2 (deg 3) before 1 (deg 2).
  std::span<const NodeId> n0 = g.NeighborsByDegree(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 2u);
  EXPECT_EQ(n0[1], 1u);
}

TEST(GraphTest, ByDegreeViewIsPermutationOfNeighbors) {
  Graph g = TriangleWithTail();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::vector<NodeId> a(g.Neighbors(v).begin(), g.Neighbors(v).end());
    std::vector<NodeId> b(g.NeighborsByDegree(v).begin(),
                          g.NeighborsByDegree(v).end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(GraphTest, HasEdge) {
  Graph g = TriangleWithTail();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(3, 3));
  EXPECT_FALSE(g.HasEdge(0, 99));  // out of range is just "no edge"
}

TEST(GraphTest, DuplicateAndLoopEdgesCollapse) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 0);
  edges.Add(0, 1);
  edges.Add(1, 1);
  Graph g = Graph::FromEdgeList(std::move(edges));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphTest, IsolatedNodesSupported) {
  EdgeList edges(10);
  edges.Add(0, 1);
  Graph g = Graph::FromEdgeList(std::move(edges));
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.degree(5), 0u);
  EXPECT_TRUE(g.Neighbors(5).empty());
}

TEST(GraphTest, CommonNeighborCount) {
  // 0 and 1 share neighbours {2}; 0 and 3 share {2}.
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.CommonNeighborCount(0, 1), 1u);  // both adjacent to 2
  EXPECT_EQ(g.CommonNeighborCount(0, 3), 1u);  // 2
  EXPECT_EQ(g.CommonNeighborCount(1, 3), 1u);  // 2
  EXPECT_EQ(g.CommonNeighborCount(2, 3), 0u);
}

TEST(GraphTest, CommonNeighborCountLargerCase) {
  // Star centre 0 with leaves 1..5; extra edge 1-2.
  EdgeList edges;
  for (NodeId leaf = 1; leaf <= 5; ++leaf) edges.Add(0, leaf);
  edges.Add(1, 2);
  Graph g = Graph::FromEdgeList(std::move(edges));
  EXPECT_EQ(g.CommonNeighborCount(1, 2), 1u);  // just 0
  EXPECT_EQ(g.CommonNeighborCount(3, 4), 1u);  // 0
  EXPECT_EQ(g.CommonNeighborCount(0, 1), 1u);  // 2
}

TEST(GraphTest, CopyAndMoveSemantics) {
  Graph g = TriangleWithTail();
  Graph copy = g;
  EXPECT_EQ(copy.num_edges(), g.num_edges());
  Graph moved = std::move(copy);
  EXPECT_EQ(moved.num_edges(), g.num_edges());
  EXPECT_TRUE(moved.HasEdge(0, 1));
}

// The pool-parallel CSR build (atomic degree count, parallel scatter,
// per-node sorts) must be bit-identical to the serial build, for any pool
// size — including messy inputs with duplicates, self-loops and skew.
TEST(GraphTest, ParallelBuildMatchesSerial) {
  Rng rng(321);
  EdgeList edges(2000);
  for (int i = 0; i < 30000; ++i) {
    // Skewed endpoints so a few nodes get large, sort-heavy neighbourhoods.
    NodeId u = static_cast<NodeId>(rng.UniformInt(2000));
    NodeId v = static_cast<NodeId>(rng.UniformInt(u % 50 == 0 ? 2000 : 100));
    edges.Add(u, v);  // self-loops and duplicates included on purpose
  }

  EdgeList serial_copy = edges;
  Graph serial = Graph::FromEdgeList(std::move(serial_copy), nullptr);

  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    EdgeList copy = edges;
    Graph parallel = Graph::FromEdgeList(std::move(copy), &pool);
    ASSERT_EQ(parallel.num_nodes(), serial.num_nodes());
    ASSERT_EQ(parallel.num_edges(), serial.num_edges());
    EXPECT_EQ(parallel.max_degree(), serial.max_degree());
    for (NodeId v = 0; v < serial.num_nodes(); ++v) {
      ASSERT_EQ(parallel.degree(v), serial.degree(v)) << "node " << v;
      const auto a = serial.Neighbors(v);
      const auto b = parallel.Neighbors(v);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "Neighbors mismatch at node " << v << ", threads " << threads;
      const auto c = serial.NeighborsByDegree(v);
      const auto d = parallel.NeighborsByDegree(v);
      ASSERT_TRUE(std::equal(c.begin(), c.end(), d.begin(), d.end()))
          << "NeighborsByDegree mismatch at node " << v << ", threads "
          << threads;
    }
  }
}

}  // namespace
}  // namespace reconcile
