#include "reconcile/graph/algorithms.h"

#include <gtest/gtest.h>

#include "reconcile/gen/erdos_renyi.h"

namespace reconcile {
namespace {

Graph PathGraph(NodeId n) {
  EdgeList edges(n);
  for (NodeId v = 0; v + 1 < n; ++v) edges.Add(v, v + 1);
  return Graph::FromEdgeList(std::move(edges));
}

Graph TwoTriangles() {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(0, 2);
  edges.Add(3, 4);
  edges.Add(4, 5);
  edges.Add(3, 5);
  return Graph::FromEdgeList(std::move(edges));
}

TEST(BfsTest, DistancesOnPath) {
  Graph g = PathGraph(5);
  std::vector<uint32_t> dist = BfsDistances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsTest, UnreachableMarked) {
  Graph g = TwoTriangles();
  std::vector<uint32_t> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], kUnreachable);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(BfsTest, SourceDistanceZero) {
  Graph g = PathGraph(3);
  EXPECT_EQ(BfsDistances(g, 1)[1], 0u);
}

TEST(ComponentsTest, SingleComponentPath) {
  Graph g = PathGraph(6);
  EXPECT_EQ(CountComponents(g), 1u);
  EXPECT_EQ(LargestComponentSize(g), 6u);
}

TEST(ComponentsTest, TwoComponents) {
  Graph g = TwoTriangles();
  EXPECT_EQ(CountComponents(g), 2u);
  EXPECT_EQ(LargestComponentSize(g), 3u);
  std::vector<NodeId> label = ConnectedComponents(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[0], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
}

TEST(ComponentsTest, IsolatedNodesAreOwnComponents) {
  EdgeList edges(5);
  edges.Add(0, 1);
  Graph g = Graph::FromEdgeList(std::move(edges));
  EXPECT_EQ(CountComponents(g), 4u);  // {0,1}, {2}, {3}, {4}
}

TEST(DegreeHistogramTest, CountsPerDegree) {
  Graph g = PathGraph(4);  // degrees: 1,2,2,1
  std::vector<size_t> hist = DegreeHistogram(g);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 2u);
}

TEST(DegreeHistogramTest, SumsToNodeCount) {
  Graph g = GenerateErdosRenyi(500, 0.02, 7);
  std::vector<size_t> hist = DegreeHistogram(g);
  size_t total = 0;
  for (size_t c : hist) total += c;
  EXPECT_EQ(total, g.num_nodes());
}

TEST(DegreeCountTest, AtLeastThreshold) {
  Graph g = PathGraph(4);  // degrees: 1,2,2,1
  EXPECT_EQ(CountNodesWithDegreeAtLeast(g, 0), 4u);
  EXPECT_EQ(CountNodesWithDegreeAtLeast(g, 1), 4u);
  EXPECT_EQ(CountNodesWithDegreeAtLeast(g, 2), 2u);
  EXPECT_EQ(CountNodesWithDegreeAtLeast(g, 3), 0u);
}

TEST(TriangleTest, CountsExactly) {
  EXPECT_EQ(CountTriangles(TwoTriangles()), 2u);
  EXPECT_EQ(CountTriangles(PathGraph(10)), 0u);
}

TEST(TriangleTest, K4HasFourTriangles) {
  EdgeList edges;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) edges.Add(u, v);
  }
  EXPECT_EQ(CountTriangles(Graph::FromEdgeList(std::move(edges))), 4u);
}

TEST(ClusteringTest, TriangleIsFullyClustered) {
  Graph g = TwoTriangles();
  Rng rng(1);
  EXPECT_DOUBLE_EQ(EstimateClusteringCoefficient(g, 100, &rng), 1.0);
}

TEST(ClusteringTest, PathHasZeroClustering) {
  Graph g = PathGraph(10);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(EstimateClusteringCoefficient(g, 100, &rng), 0.0);
}

TEST(ClusteringTest, SamplingStaysInRange) {
  Graph g = GenerateErdosRenyi(300, 0.05, 13);
  Rng rng(2);
  double cc = EstimateClusteringCoefficient(g, 50, &rng);
  EXPECT_GE(cc, 0.0);
  EXPECT_LE(cc, 1.0);
}

}  // namespace
}  // namespace reconcile
