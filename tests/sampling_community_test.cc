#include "reconcile/sampling/community.h"

#include <gtest/gtest.h>

namespace reconcile {
namespace {

AffiliationNetwork SmallNet(uint64_t seed) {
  AffiliationParams params;
  params.num_users = 800;
  return AffiliationNetwork::Generate(params, seed);
}

TEST(CommunitySamplingTest, ZeroDeletionKeepsFullFold) {
  AffiliationNetwork net = SmallNet(3);
  RealizationPair pair = SampleCommunity(net, 0.0, 5);
  Graph full = net.Fold();
  EXPECT_EQ(pair.g1.num_edges(), full.num_edges());
  EXPECT_EQ(pair.g2.num_edges(), full.num_edges());
}

TEST(CommunitySamplingTest, FullDeletionRemovesEverything) {
  AffiliationNetwork net = SmallNet(7);
  RealizationPair pair = SampleCommunity(net, 1.0, 9);
  EXPECT_EQ(pair.g1.num_edges(), 0u);
  EXPECT_EQ(pair.g2.num_edges(), 0u);
}

TEST(CommunitySamplingTest, CopiesAreSubgraphsOfFold) {
  AffiliationNetwork net = SmallNet(11);
  RealizationPair pair = SampleCommunity(net, 0.25, 13);
  Graph full = net.Fold();
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    for (NodeId v : pair.g1.Neighbors(u)) {
      if (v > u) {
        ASSERT_TRUE(full.HasEdge(u, v));
      }
    }
  }
  EXPECT_LT(pair.g1.num_edges(), full.num_edges());
  EXPECT_GT(pair.g1.num_edges(), 0u);
}

TEST(CommunitySamplingTest, CopiesDifferFromEachOther) {
  AffiliationNetwork net = SmallNet(17);
  RealizationPair pair = SampleCommunity(net, 0.25, 19);
  // Independent interest deletion: pull g2 edges back through the ground
  // truth and compare with g1 — they should not coincide.
  size_t only2 = 0;
  for (NodeId u2 = 0; u2 < pair.g2.num_nodes(); ++u2) {
    NodeId u = pair.map_2to1[u2];
    for (NodeId v2 : pair.g2.Neighbors(u2)) {
      if (v2 <= u2) continue;
      NodeId v = pair.map_2to1[v2];
      if (!pair.g1.HasEdge(u, v)) ++only2;
    }
  }
  EXPECT_GT(only2, 0u);
}

TEST(CommunitySamplingTest, AllUsersMapped) {
  AffiliationNetwork net = SmallNet(21);
  RealizationPair pair = SampleCommunity(net, 0.25, 23);
  for (NodeId u = 0; u < net.num_users(); ++u) {
    EXPECT_NE(pair.map_1to2[u], kInvalidNode);
  }
}

TEST(CommunitySamplingTest, Deterministic) {
  AffiliationNetwork net = SmallNet(31);
  RealizationPair a = SampleCommunity(net, 0.25, 33);
  RealizationPair b = SampleCommunity(net, 0.25, 33);
  EXPECT_EQ(a.g1.num_edges(), b.g1.num_edges());
  EXPECT_EQ(a.map_1to2, b.map_1to2);
}

}  // namespace
}  // namespace reconcile
