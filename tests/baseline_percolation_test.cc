#include "reconcile/baseline/percolation.h"

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/attack.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

RealizationPair MakePair(NodeId n, int m, double s, uint64_t seed) {
  Graph g = GeneratePreferentialAttachment(n, m, seed);
  IndependentSampleOptions options;
  options.s1 = s;
  options.s2 = s;
  return SampleIndependent(g, options, seed + 1);
}

TEST(PercolationTest, NoSeedsNoMatches) {
  RealizationPair pair = MakePair(500, 5, 0.8, 3);
  MatchResult result = PercolationMatch(pair.g1, pair.g2, {},
                                        PercolationConfig{});
  EXPECT_EQ(result.NumNewLinks(), 0u);
}

TEST(PercolationTest, ThresholdBelowTwoDies) {
  RealizationPair pair = MakePair(50, 3, 1.0, 5);
  PercolationConfig config;
  config.threshold = 1;
  EXPECT_DEATH(PercolationMatch(pair.g1, pair.g2, {}, config),
               "at least 2");
}

TEST(PercolationTest, SeedCountPhaseTransition) {
  // Yartseva & Grossglauser prove a sharp threshold in the number of seeds:
  // below it percolation dies out, above it most of the graph is matched.
  // Sweep the seed fraction across a decade and require a large jump.
  RealizationPair pair = MakePair(2000, 10, 0.9, 7);
  double lo_recall = 0.0, hi_recall = 0.0;
  {
    SeedOptions seed_options;
    seed_options.fraction = 0.005;
    auto seeds = GenerateSeeds(pair, seed_options, 9);
    MatchResult result = PercolationMatch(pair.g1, pair.g2, seeds,
                                          PercolationConfig{});
    lo_recall = Evaluate(pair, result).recall_all;
  }
  {
    SeedOptions seed_options;
    seed_options.fraction = 0.25;
    auto seeds = GenerateSeeds(pair, seed_options, 9);
    MatchResult result = PercolationMatch(pair.g1, pair.g2, seeds,
                                          PercolationConfig{});
    hi_recall = Evaluate(pair, result).recall_all;
  }
  EXPECT_GT(hi_recall, 0.5);
  EXPECT_GT(hi_recall, lo_recall + 0.25);
}

TEST(PercolationTest, HigherThresholdIsMoreConservative) {
  RealizationPair pair = MakePair(2000, 8, 0.7, 11);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 13);

  PercolationConfig r2;
  PercolationConfig r4;
  r4.threshold = 4;
  MatchResult loose = PercolationMatch(pair.g1, pair.g2, seeds, r2);
  MatchResult strict = PercolationMatch(pair.g1, pair.g2, seeds, r4);
  EXPECT_GE(loose.NumNewLinks(), strict.NumNewLinks());
}

TEST(PercolationTest, OutputIsOneToOne) {
  RealizationPair pair = MakePair(1000, 6, 0.6, 17);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 19);
  MatchResult result = PercolationMatch(pair.g1, pair.g2, seeds,
                                        PercolationConfig{});
  std::vector<int> used(pair.g2.num_nodes(), 0);
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    const NodeId v = result.map_1to2[u];
    if (v == kInvalidNode) continue;
    EXPECT_EQ(result.map_2to1[v], u);
    EXPECT_EQ(++used[v], 1);
  }
}

TEST(PercolationTest, MinDegreeFloorFiltersLowDegreeNodes) {
  RealizationPair pair = MakePair(1000, 4, 0.8, 23);
  SeedOptions seed_options;
  seed_options.fraction = 0.15;
  auto seeds = GenerateSeeds(pair, seed_options, 29);
  PercolationConfig config;
  config.min_degree = 5;
  MatchResult result = PercolationMatch(pair.g1, pair.g2, seeds, config);
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    if (result.map_1to2[u] == kInvalidNode || result.IsSeed1(u)) continue;
    EXPECT_GE(pair.g1.degree(u), 5u);
  }
}

TEST(PercolationTest, LessPreciseThanUserMatchingUnderAttack) {
  // Greedy first-past-the-post percolation has no blocker semantics: sybil
  // pairs that hit r marks before the genuine pair are accepted. Compare
  // error counts under the paper's attack model.
  Graph g = GeneratePreferentialAttachment(3000, 8, 31);
  IndependentSampleOptions copy_options;
  copy_options.s1 = 0.75;
  copy_options.s2 = 0.75;
  RealizationPair pair = SampleIndependent(g, copy_options, 33);
  pair = ApplyAttack(pair, AttackOptions{}, 35);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 37);

  MatchResult percolation = PercolationMatch(pair.g1, pair.g2, seeds,
                                             PercolationConfig{});
  MatcherConfig user_config;
  user_config.min_score = 2;
  MatchResult user = UserMatching(pair.g1, pair.g2, seeds, user_config);

  MatchQuality pq = Evaluate(pair, percolation);
  MatchQuality uq = Evaluate(pair, user);
  EXPECT_GT(uq.precision, pq.precision - 0.02);
  // User-Matching keeps near-perfect precision here; percolation visibly
  // degrades.
  EXPECT_GT(uq.precision, 0.98);
}

TEST(PercolationTest, DeterministicAcrossRuns) {
  RealizationPair pair = MakePair(800, 5, 0.7, 41);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 43);
  MatchResult a = PercolationMatch(pair.g1, pair.g2, seeds,
                                   PercolationConfig{});
  MatchResult b = PercolationMatch(pair.g1, pair.g2, seeds,
                                   PercolationConfig{});
  EXPECT_EQ(a.map_1to2, b.map_1to2);
}

}  // namespace
}  // namespace reconcile
