// The delta overlay must be indistinguishable from a CSR rebuilt from
// scratch on the final edge set — neighbors (sorted), degrees, edge counts,
// max degree — after ANY interleaving of inserts and deletes, including
// deleting base edges, re-inserting deleted edges (the diff must cancel,
// not double), deleting just-inserted edges, node growth past the base
// range, and compaction at every boundary. The incremental matcher scores
// through this structure, so any divergence here breaks the bit-identity
// contract upstream.
#include "reconcile/serve/overlay_graph.h"

#include <algorithm>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/graph/edge_list.h"
#include "reconcile/graph/graph.h"
#include "reconcile/util/thread_pool.h"

namespace reconcile {
namespace {

Graph MakeBase(const std::vector<std::pair<NodeId, NodeId>>& edges,
               NodeId num_nodes) {
  EdgeList list(num_nodes);
  for (const auto& [u, v] : edges) list.Add(u, v);
  return Graph::FromEdgeList(std::move(list));
}

// Reference model: a canonical (min, max) edge set.
using EdgeSet = std::set<std::pair<NodeId, NodeId>>;

std::pair<NodeId, NodeId> Canon(NodeId u, NodeId v) {
  return {std::min(u, v), std::max(u, v)};
}

// Full structural equivalence check: overlay vs a CSR rebuilt from the
// reference set.
void ExpectEquivalent(const OverlayGraph& overlay, const EdgeSet& reference,
                      NodeId min_nodes) {
  EdgeList list(std::max(min_nodes, overlay.num_nodes()));
  for (const auto& [u, v] : reference) list.Add(u, v);
  const Graph rebuilt = Graph::FromEdgeList(std::move(list));

  ASSERT_EQ(overlay.num_nodes(), rebuilt.num_nodes());
  ASSERT_EQ(overlay.num_edges(), rebuilt.num_edges());
  EXPECT_EQ(overlay.MaxDegree(), rebuilt.max_degree());
  for (NodeId u = 0; u < rebuilt.num_nodes(); ++u) {
    ASSERT_EQ(overlay.degree(u), rebuilt.degree(u)) << "node " << u;
    std::vector<NodeId> got;
    overlay.ForEachNeighbor(u, [&](NodeId v) { got.push_back(v); });
    const auto want = rebuilt.Neighbors(u);
    ASSERT_EQ(got.size(), want.size()) << "node " << u;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "node " << u;
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end())) << "node " << u;
    EXPECT_EQ(overlay.Neighbors(u), got);
  }
  // Materialize() must produce the canonical sorted edge list.
  const EdgeList materialized = overlay.Materialize();
  EXPECT_EQ(materialized.edges().size(), reference.size());
  EdgeSet from_overlay;
  for (const auto& [u, v] : materialized.edges()) {
    from_overlay.insert(Canon(u, v));
  }
  EXPECT_EQ(from_overlay, reference);
}

TEST(OverlayGraphTest, BasicInsertDeleteAndHasEdge) {
  OverlayGraph overlay(MakeBase({{0, 1}, {1, 2}}, 4));
  EXPECT_TRUE(overlay.HasEdge(0, 1));
  EXPECT_TRUE(overlay.HasEdge(1, 0));
  EXPECT_FALSE(overlay.HasEdge(0, 2));
  EXPECT_FALSE(overlay.HasEdge(0, 0));

  // Duplicate insert and absent delete are no-ops.
  EXPECT_FALSE(overlay.InsertEdge(0, 1));
  EXPECT_FALSE(overlay.DeleteEdge(0, 3));
  // Self loops are rejected.
  EXPECT_FALSE(overlay.InsertEdge(2, 2));

  EXPECT_TRUE(overlay.InsertEdge(0, 2));
  EXPECT_TRUE(overlay.HasEdge(2, 0));
  EXPECT_TRUE(overlay.DeleteEdge(1, 2));
  EXPECT_FALSE(overlay.HasEdge(1, 2));
  EXPECT_EQ(overlay.num_edges(), 2u);
  EXPECT_EQ(overlay.degree(1), 1u);
  EXPECT_EQ(overlay.degree(2), 1u);
}

TEST(OverlayGraphTest, ReinsertingDeletedBaseEdgeCancelsTheDiff) {
  OverlayGraph overlay(MakeBase({{0, 1}, {1, 2}, {2, 3}}, 4));
  EXPECT_TRUE(overlay.DeleteEdge(1, 2));
  EXPECT_GT(overlay.num_uncompacted(), 0u);
  // Re-inserting a base edge must cancel the removal diff, not create an
  // added-side duplicate of a base-side edge.
  EXPECT_TRUE(overlay.InsertEdge(2, 1));
  EXPECT_EQ(overlay.num_uncompacted(), 0u);
  EXPECT_TRUE(overlay.HasEdge(1, 2));
  EXPECT_EQ(overlay.num_edges(), 3u);
  std::vector<NodeId> got;
  overlay.ForEachNeighbor(1, [&](NodeId v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<NodeId>{0, 2}));

  // Deleting a just-inserted (non-base) edge likewise cancels.
  EXPECT_TRUE(overlay.InsertEdge(0, 3));
  EXPECT_TRUE(overlay.DeleteEdge(0, 3));
  EXPECT_EQ(overlay.num_uncompacted(), 0u);
  EXPECT_FALSE(overlay.HasEdge(0, 3));
}

TEST(OverlayGraphTest, NodeGrowthBeyondBaseRange) {
  OverlayGraph overlay(MakeBase({{0, 1}}, 2));
  EXPECT_FALSE(overlay.HasEdge(0, 7));  // out of range, not a crash
  EXPECT_TRUE(overlay.InsertEdge(1, 7));
  EXPECT_EQ(overlay.num_nodes(), 8u);
  EXPECT_EQ(overlay.degree(7), 1u);
  EXPECT_EQ(overlay.degree(5), 0u);
  EXPECT_TRUE(overlay.HasEdge(7, 1));
  EXPECT_EQ(overlay.MaxDegree(), 2u);  // node 1: {0, 7}

  EdgeSet reference{{0, 1}, {1, 7}};
  ExpectEquivalent(overlay, reference, 8);
}

TEST(OverlayGraphTest, RandomOpsMatchRebuiltCsrWithCompactionEverywhere) {
  std::mt19937 rng(98765);
  // compact_period == 0: never compact mid-run; otherwise compact every
  // N ops — together the boundaries cover "all diffs", "no diffs", and
  // every mixed state.
  for (const int compact_period : {0, 1, 3, 7}) {
    const NodeId base_nodes = 24;
    std::vector<std::pair<NodeId, NodeId>> base_edges;
    EdgeSet reference;
    for (int i = 0; i < 60; ++i) {
      const NodeId u = rng() % base_nodes;
      const NodeId v = rng() % base_nodes;
      if (u == v) continue;
      if (reference.insert(Canon(u, v)).second) {
        base_edges.push_back(Canon(u, v));
      }
    }
    OverlayGraph overlay(MakeBase(base_edges, base_nodes));
    ThreadPool pool(2);

    NodeId max_node = base_nodes;
    for (int op = 0; op < 400; ++op) {
      // Bias node choice so deletes often hit existing edges and inserts
      // often re-create recently deleted ones; occasionally grow the range.
      const NodeId span = (rng() % 16 == 0) ? max_node + 4 : max_node;
      const NodeId u = rng() % span;
      const NodeId v = rng() % span;
      if (rng() % 2 == 0) {
        const bool changed = overlay.InsertEdge(u, v);
        const bool expect_changed =
            u != v && reference.insert(Canon(u, v)).second;
        ASSERT_EQ(changed, expect_changed) << "insert " << u << "," << v;
      } else {
        const bool changed = overlay.DeleteEdge(u, v);
        const bool expect_changed =
            u != v && reference.erase(Canon(u, v)) > 0;
        ASSERT_EQ(changed, expect_changed) << "delete " << u << "," << v;
      }
      max_node = std::max(max_node, overlay.num_nodes());
      if (compact_period > 0 && op % compact_period == 0) {
        overlay.Compact(op % 2 == 0 ? &pool : nullptr);
        ASSERT_EQ(overlay.num_uncompacted(), 0u);
      }
      if (op % 25 == 0) {
        ExpectEquivalent(overlay, reference, max_node);
      }
    }
    ExpectEquivalent(overlay, reference, max_node);
    overlay.Compact(&pool);
    ExpectEquivalent(overlay, reference, max_node);
  }
}

TEST(OverlayGraphTest, CompactOnCleanOverlayIsANoOp) {
  OverlayGraph overlay(MakeBase({{0, 1}, {1, 2}}, 3));
  const size_t edges_before = overlay.num_edges();
  overlay.Compact(nullptr);
  EXPECT_EQ(overlay.num_edges(), edges_before);
  EXPECT_EQ(overlay.num_uncompacted(), 0u);
  EXPECT_TRUE(overlay.HasEdge(0, 1));
}

}  // namespace
}  // namespace reconcile
