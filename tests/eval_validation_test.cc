#include "reconcile/eval/validation.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "reconcile/eval/metrics.h"
#include "reconcile/graph/edge_list.h"

namespace reconcile {
namespace {

// Ring pair with identity ground truth: every node has degree 2 in both
// copies, so all n nodes are identifiable and the true precision/recall of
// a constructed matching are known exactly.
RealizationPair RingPair(NodeId n) {
  EdgeList edges(n);
  for (NodeId i = 0; i < n; ++i) edges.Add(i, (i + 1) % n);
  RealizationPair pair;
  pair.g1 = Graph::FromEdgeList(edges);
  pair.g2 = Graph::FromEdgeList(edges);
  pair.map_1to2.resize(n);
  pair.map_2to1.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    pair.map_1to2[i] = i;
    pair.map_2to1[i] = i;
  }
  return pair;
}

// A seedless matching over `matched` g1 nodes, the first `good` of them
// correct (u -> u) and the rest wrong (u -> u+1, valid but not the truth).
MatchResult MatchingWith(const RealizationPair& pair, size_t matched,
                         size_t good) {
  MatchResult result;
  const NodeId n = pair.g1.num_nodes();
  result.map_1to2.assign(n, kInvalidNode);
  result.map_2to1.assign(n, kInvalidNode);
  for (size_t u = 0; u < matched; ++u) {
    result.map_1to2[u] =
        u < good ? static_cast<NodeId>(u) : static_cast<NodeId>((u + 1) % n);
  }
  return result;
}

TEST(ValidationTest, CensusMatchesEvaluateExactly) {
  RealizationPair pair = RingPair(200);
  MatchResult result = MatchingWith(pair, 150, 120);
  ValidationReport report = ValidateMatching(pair, result, {});
  EXPECT_TRUE(report.exhaustive);
  EXPECT_EQ(report.num_matches, 150u);
  EXPECT_EQ(report.verified, 150u);
  EXPECT_EQ(report.verified_good, 120u);

  MatchQuality quality = Evaluate(pair, result);
  EXPECT_DOUBLE_EQ(report.precision.point, quality.precision);
  EXPECT_DOUBLE_EQ(report.precision.lo, quality.precision);
  EXPECT_DOUBLE_EQ(report.precision.hi, quality.precision);
  EXPECT_DOUBLE_EQ(report.recall.point, quality.recall_new);
  EXPECT_DOUBLE_EQ(report.recall.lo, quality.recall_new);
  EXPECT_DOUBLE_EQ(report.recall.hi, quality.recall_new);
}

TEST(ValidationTest, EmptyMatchingIsVacuous) {
  RealizationPair pair = RingPair(50);
  MatchResult result = MatchingWith(pair, 0, 0);
  ValidationReport report = ValidateMatching(pair, result, {});
  EXPECT_TRUE(report.exhaustive);
  EXPECT_EQ(report.num_matches, 0u);
  EXPECT_DOUBLE_EQ(report.precision.lo, 1.0);
  EXPECT_DOUBLE_EQ(report.precision.hi, 1.0);
  // Targets remain, so recall is genuinely zero, not vacuous.
  EXPECT_DOUBLE_EQ(report.recall.lo, 0.0);
  EXPECT_DOUBLE_EQ(report.recall.hi, 0.0);
}

TEST(ValidationTest, ZeroBudgetGivesVacuousInterval) {
  RealizationPair pair = RingPair(50);
  MatchResult result = MatchingWith(pair, 40, 30);
  ValidationConfig config;
  config.budget = 0;
  ValidationReport report = ValidateMatching(pair, result, config);
  EXPECT_FALSE(report.exhaustive);
  EXPECT_EQ(report.verified, 0u);
  EXPECT_DOUBLE_EQ(report.precision.lo, 0.0);
  EXPECT_DOUBLE_EQ(report.precision.hi, 1.0);
  EXPECT_LE(report.precision.lo, report.precision.point);
  EXPECT_GE(report.precision.hi, report.precision.point);
}

TEST(ValidationTest, BudgetBeyondMatchesIsACensus) {
  RealizationPair pair = RingPair(50);
  MatchResult result = MatchingWith(pair, 40, 40);  // perfect matching
  ValidationConfig config;
  config.budget = 1000;
  ValidationReport report = ValidateMatching(pair, result, config);
  EXPECT_TRUE(report.exhaustive);
  EXPECT_EQ(report.verified, 40u);
  EXPECT_DOUBLE_EQ(report.precision.lo, 1.0);
  EXPECT_DOUBLE_EQ(report.precision.hi, 1.0);
  EXPECT_DOUBLE_EQ(report.recall.point, 0.8);  // 40 of 50 targets
}

TEST(ValidationTest, SeedsAreExcludedFromThePopulation) {
  RealizationPair pair = RingPair(50);
  MatchResult result = MatchingWith(pair, 40, 40);
  result.seeds = {{0, 0}, {1, 1}};
  ValidationReport report = ValidateMatching(pair, result, {});
  EXPECT_EQ(report.num_matches, 38u);  // the two seeds don't count
  EXPECT_EQ(report.num_targets, 48u);
}

TEST(ValidationTest, SampledReportIsDeterministic) {
  RealizationPair pair = RingPair(300);
  MatchResult result = MatchingWith(pair, 250, 200);
  ValidationConfig config;
  config.budget = 40;
  config.rng_seed = 7;
  ValidationReport a = ValidateMatching(pair, result, config);
  ValidationReport b = ValidateMatching(pair, result, config);
  EXPECT_EQ(a.verified_good, b.verified_good);
  EXPECT_DOUBLE_EQ(a.precision.lo, b.precision.lo);
  EXPECT_DOUBLE_EQ(a.precision.hi, b.precision.hi);
  EXPECT_FALSE(a.exhaustive);
  EXPECT_LE(a.precision.lo, a.precision.point);
  EXPECT_GE(a.precision.hi, a.precision.point);
}

TEST(ValidationTest, ClopperPearsonEdgeCases) {
  EXPECT_DOUBLE_EQ(BinomialLowerBound(0, 60, 0.025), 0.0);
  EXPECT_DOUBLE_EQ(BinomialUpperBound(60, 60, 0.025), 1.0);
  // A balanced sample must bracket 0.5, asymmetric tails must not.
  const double lo = BinomialLowerBound(30, 60, 0.025);
  const double hi = BinomialUpperBound(30, 60, 0.025);
  EXPECT_LT(lo, 0.5);
  EXPECT_GT(hi, 0.5);
  EXPECT_GT(lo, 0.3);  // the interval is not vacuous
  EXPECT_LT(hi, 0.7);
  // More data tightens the interval.
  EXPECT_GT(BinomialLowerBound(300, 600, 0.025), lo);
  EXPECT_LT(BinomialUpperBound(300, 600, 0.025), hi);
}

TEST(ValidationTest, FormatMentionsTheBudget) {
  RealizationPair pair = RingPair(50);
  MatchResult result = MatchingWith(pair, 40, 30);
  ValidationConfig config;
  config.budget = 10;
  std::string text =
      FormatValidationReport(ValidateMatching(pair, result, config));
  EXPECT_NE(text.find("verified 10/40"), std::string::npos);
  EXPECT_NE(text.find("precision"), std::string::npos);
  EXPECT_NE(text.find("recall"), std::string::npos);
}

// The PAC contract itself (ISSUE satellite): over many independently
// seeded verification draws against a fixed matching with known true
// precision/recall, the reported intervals must cover the truth in at
// least a 1-delta fraction of trials. Clopper-Pearson is conservative
// (and without-replacement sampling more concentrated than binomial), so
// empirical coverage sits comfortably above the bound; the assertion is
// exactly the guaranteed 1-delta. Deterministic seeds make this
// reproducible, not flaky.
TEST(ValidationCoverageTest, IntervalsCoverTruthAtDelta05) {
  const NodeId n = 500;
  const size_t matched = 400;
  const size_t good = 300;
  RealizationPair pair = RingPair(n);
  MatchResult result = MatchingWith(pair, matched, good);

  const double true_precision =
      static_cast<double>(good) / static_cast<double>(matched);
  const double true_recall =
      static_cast<double>(good) / static_cast<double>(n);

  ValidationConfig config;
  config.budget = 60;
  config.delta = 0.05;

  const int kTrials = 250;
  int covered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    config.rng_seed = static_cast<uint64_t>(trial) + 1;
    ValidationReport report = ValidateMatching(pair, result, config);
    ASSERT_LE(report.precision.lo, report.precision.point);
    ASSERT_GE(report.precision.hi, report.precision.point);
    ASSERT_LE(report.recall.lo, report.recall.point);
    ASSERT_GE(report.recall.hi, report.recall.point);
    const bool precision_in = report.precision.lo <= true_precision &&
                              true_precision <= report.precision.hi;
    const bool recall_in = report.recall.lo <= true_recall &&
                           true_recall <= report.recall.hi;
    // Both intervals derive from the same sample, so they must hold
    // simultaneously with probability >= 1-delta.
    if (precision_in && recall_in) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(0.95 * kTrials))
      << "coverage " << covered << "/" << kTrials;
}

}  // namespace
}  // namespace reconcile
