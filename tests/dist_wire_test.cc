// The dist wire layer is the trust boundary between the coordinator and
// its workers: every byte that crosses a socketpair is length-prefixed and
// CRC32-framed, and the receiver must classify any damage — flipped
// payload bytes, bad magic, oversized lengths, a peer that closes
// mid-frame, a peer that never writes — as a *status*, never a crash or a
// silent wrong message. The ROUND/RESULT codecs must round-trip exactly
// and reject every truncation, because a CRC-colliding payload is the one
// corruption the frame check cannot catch.
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/dist/wire.h"
#include "reconcile/dist/worker.h"

namespace reconcile::dist {
namespace {

// A connected socketpair whose fds close on scope exit.
struct Pair {
  int a = -1;
  int b = -1;
  Pair() {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    a = sv[0];
    b = sv[1];
  }
  ~Pair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void CloseA() {
    ::close(a);
    a = -1;
  }
};

std::vector<uint8_t> Bytes(std::initializer_list<int> values) {
  std::vector<uint8_t> out;
  for (int v : values) out.push_back(static_cast<uint8_t>(v));
  return out;
}

TEST(DistWireTest, FrameRoundTripsAllTypes) {
  Pair p;
  std::string error;
  const std::vector<uint8_t> payload = Bytes({1, 2, 3, 0xFF, 0});
  for (MsgType type : {MsgType::kRound, MsgType::kResult, MsgType::kHeartbeat,
                       MsgType::kShutdown}) {
    ASSERT_TRUE(SendFrame(p.a, type, payload, &error)) << error;
    Frame frame;
    ASSERT_EQ(RecvFrame(p.b, 1000, &frame, &error), RecvStatus::kOk) << error;
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
  // Empty payloads (heartbeats) round-trip too.
  ASSERT_TRUE(SendFrame(p.a, MsgType::kHeartbeat, {}, &error)) << error;
  Frame frame;
  ASSERT_EQ(RecvFrame(p.b, 1000, &frame, &error), RecvStatus::kOk);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(DistWireTest, CorruptPayloadByteIsDetected) {
  // The io:msg_corrupt fault shape: one payload byte flipped after the
  // CRC was computed. The receiver must report kCorrupt, not a frame.
  Pair p;
  std::string error;
  ASSERT_TRUE(SendFrame(p.a, MsgType::kResult, Bytes({10, 20, 30}), &error,
                        /*corrupt_payload_byte=*/true));
  Frame frame;
  EXPECT_EQ(RecvFrame(p.b, 1000, &frame, &error), RecvStatus::kCorrupt);
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(DistWireTest, BadMagicIsCorrupt) {
  Pair p;
  // 16 garbage header bytes: wrong magic, then nothing sensible.
  const std::vector<uint8_t> junk(16, 0xAB);
  ASSERT_EQ(::write(p.a, junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));
  Frame frame;
  std::string error;
  EXPECT_EQ(RecvFrame(p.b, 1000, &frame, &error), RecvStatus::kCorrupt);
}

TEST(DistWireTest, OversizedLengthIsCorruptNotAnAllocation) {
  Pair p;
  // Valid magic and type, then a 3 GiB length: must be rejected before
  // any allocation attempt.
  std::vector<uint8_t> header;
  PayloadWriter w;
  w.U32(kWireMagic);
  w.U32(static_cast<uint32_t>(MsgType::kRound));
  w.U32(0xC0000000u);  // 3 GiB
  w.U32(0);
  header = w.Take();
  ASSERT_EQ(::write(p.a, header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  Frame frame;
  std::string error;
  EXPECT_EQ(RecvFrame(p.b, 1000, &frame, &error), RecvStatus::kCorrupt);
}

TEST(DistWireTest, SilentPeerTimesOut) {
  Pair p;
  Frame frame;
  std::string error;
  EXPECT_EQ(RecvFrame(p.b, 50, &frame, &error), RecvStatus::kTimeout);
}

TEST(DistWireTest, PartialFrameThenSilenceTimesOut) {
  // The io:msg_stall shape: a peer that starts a frame and stops. The
  // deadline must fire even though bytes arrived.
  Pair p;
  PayloadWriter w;
  w.U32(kWireMagic);
  w.U32(static_cast<uint32_t>(MsgType::kResult));
  const std::vector<uint8_t> partial = w.Take();
  ASSERT_EQ(::write(p.a, partial.data(), partial.size()),
            static_cast<ssize_t>(partial.size()));
  Frame frame;
  std::string error;
  EXPECT_EQ(RecvFrame(p.b, 50, &frame, &error), RecvStatus::kTimeout);
}

TEST(DistWireTest, PeerCloseIsEof) {
  Pair p;
  p.CloseA();
  Frame frame;
  std::string error;
  EXPECT_EQ(RecvFrame(p.b, 1000, &frame, &error), RecvStatus::kEof);
}

TEST(DistWireTest, CloseMidFrameIsEof) {
  Pair p;
  PayloadWriter w;
  w.U32(kWireMagic);
  w.U32(static_cast<uint32_t>(MsgType::kRound));
  w.U32(100);  // promises 100 payload bytes, delivers none
  w.U32(0);
  const std::vector<uint8_t> header = w.Take();
  ASSERT_EQ(::write(p.a, header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  p.CloseA();
  Frame frame;
  std::string error;
  EXPECT_EQ(RecvFrame(p.b, 1000, &frame, &error), RecvStatus::kEof);
}

RoundOrder SampleOrder() {
  RoundOrder order;
  order.round = 7;
  order.bucket_exponent = 3;
  order.meta.compact_first = true;
  order.meta.emit_begin = 11;
  order.meta.emit_end = 42;
  order.delta_start = 11;
  order.delta = {{1, 2}, {30, 40}, {500, 600}};
  order.shards = {0, 2, 5};
  return order;
}

RoundResult SampleResult() {
  RoundResult result;
  result.round = 7;
  result.worker_slot = 1;
  result.emissions = 1234;
  result.scanned_pairs = 99;
  result.shards = {0, 2, 5};
  result.best2 = {{4, 10, 1}, {9, 3, 3}};
  UnitBlock block;
  block.level = 2;
  block.shard = 5;
  block.entries = {{1, 4, 10}, {2, 9, 3}};
  result.units = {block};
  return result;
}

TEST(DistWireTest, RoundCodecRoundTrips) {
  const RoundOrder order = SampleOrder();
  const std::vector<uint8_t> payload = EncodeRound(order);
  RoundOrder decoded;
  std::string error;
  ASSERT_TRUE(DecodeRound(payload, &decoded, &error)) << error;
  EXPECT_EQ(decoded.round, order.round);
  EXPECT_EQ(decoded.bucket_exponent, order.bucket_exponent);
  EXPECT_EQ(decoded.meta.compact_first, order.meta.compact_first);
  EXPECT_EQ(decoded.meta.emit_begin, order.meta.emit_begin);
  EXPECT_EQ(decoded.meta.emit_end, order.meta.emit_end);
  EXPECT_EQ(decoded.delta_start, order.delta_start);
  EXPECT_EQ(decoded.delta, order.delta);
  EXPECT_EQ(decoded.shards, order.shards);
}

TEST(DistWireTest, ResultCodecRoundTrips) {
  const RoundResult result = SampleResult();
  const std::vector<uint8_t> payload = EncodeResult(result);
  RoundResult decoded;
  std::string error;
  ASSERT_TRUE(DecodeResult(payload, &decoded, &error)) << error;
  EXPECT_EQ(decoded.round, result.round);
  EXPECT_EQ(decoded.worker_slot, result.worker_slot);
  EXPECT_EQ(decoded.emissions, result.emissions);
  EXPECT_EQ(decoded.scanned_pairs, result.scanned_pairs);
  EXPECT_EQ(decoded.shards, result.shards);
  ASSERT_EQ(decoded.best2.size(), result.best2.size());
  for (size_t i = 0; i < result.best2.size(); ++i) {
    EXPECT_EQ(decoded.best2[i].v, result.best2[i].v);
    EXPECT_EQ(decoded.best2[i].score, result.best2[i].score);
    EXPECT_EQ(decoded.best2[i].ties, result.best2[i].ties);
  }
  ASSERT_EQ(decoded.units.size(), 1u);
  EXPECT_EQ(decoded.units[0].level, 2u);
  EXPECT_EQ(decoded.units[0].shard, 5u);
  ASSERT_EQ(decoded.units[0].entries.size(), 2u);
  EXPECT_EQ(decoded.units[0].entries[1].u, 2u);
  EXPECT_EQ(decoded.units[0].entries[1].v, 9u);
  EXPECT_EQ(decoded.units[0].entries[1].score, 3u);
}

TEST(DistWireTest, CodecsRejectEveryTruncation) {
  // A CRC collision could hand the decoder any prefix of a valid payload;
  // every one must fail cleanly, never read out of bounds (ASan-checked).
  const std::vector<uint8_t> round_payload = EncodeRound(SampleOrder());
  for (size_t len = 0; len < round_payload.size(); ++len) {
    RoundOrder decoded;
    std::string error;
    EXPECT_FALSE(DecodeRound({round_payload.data(), len}, &decoded, &error))
        << "prefix length " << len;
  }
  const std::vector<uint8_t> result_payload = EncodeResult(SampleResult());
  for (size_t len = 0; len < result_payload.size(); ++len) {
    RoundResult decoded;
    std::string error;
    EXPECT_FALSE(DecodeResult({result_payload.data(), len}, &decoded, &error))
        << "prefix length " << len;
  }
  // Trailing garbage is rejected too, not silently ignored.
  std::vector<uint8_t> padded = round_payload;
  padded.push_back(0);
  RoundOrder decoded;
  std::string error;
  EXPECT_FALSE(DecodeRound(padded, &decoded, &error));
}

}  // namespace
}  // namespace reconcile::dist
