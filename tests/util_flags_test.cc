#include "reconcile/util/flags.h"

#include <gtest/gtest.h>

namespace reconcile {
namespace {

Flags ParseOk(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  Flags flags;
  std::string error;
  EXPECT_TRUE(flags.Parse(static_cast<int>(args.size()), args.data(), &error))
      << error;
  return flags;
}

TEST(FlagsTest, KeyEqualsValue) {
  Flags flags = ParseOk({"--model=pa", "--nodes=100"});
  EXPECT_EQ(flags.GetString("model", ""), "pa");
  EXPECT_EQ(flags.GetInt("nodes", 0), 100);
}

TEST(FlagsTest, KeySpaceValue) {
  Flags flags = ParseOk({"--model", "er", "--p", "0.5"});
  EXPECT_EQ(flags.GetString("model", ""), "er");
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0.0), 0.5);
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags flags = ParseOk({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags flags = ParseOk({});
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("missing", -7), -7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  Flags flags = ParseOk({"input.txt", "--k=2", "output.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagsTest, BoolSpellings) {
  Flags flags = ParseOk({"--a=true", "--b=1", "--c=yes", "--d=false",
                         "--e=0", "--f=no"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
  EXPECT_FALSE(flags.GetBool("f", true));
}

TEST(FlagsTest, NegativeNumbers) {
  Flags flags = ParseOk({"--x=-5", "--y=-0.25"});
  EXPECT_EQ(flags.GetInt("x", 0), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("y", 0.0), -0.25);
}

TEST(FlagsTest, UnusedKeysReported) {
  Flags flags = ParseOk({"--used=1", "--typo=2"});
  EXPECT_EQ(flags.GetInt("used", 0), 1);
  std::vector<std::string> unused = flags.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, EmptyFlagNameRejected) {
  const char* args[] = {"prog", "--=3"};
  Flags flags;
  std::string error;
  EXPECT_FALSE(flags.Parse(2, args, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FlagsTest, LastValueWins) {
  Flags flags = ParseOk({"--k=1", "--k=2"});
  EXPECT_EQ(flags.GetInt("k", 0), 2);
}

TEST(FlagsDeathTest, BadIntegerAborts) {
  Flags flags = ParseOk({"--n=abc"});
  EXPECT_DEATH(flags.GetInt("n", 0), "not an integer");
}

TEST(FlagsDeathTest, BadBoolAborts) {
  Flags flags = ParseOk({"--b=maybe"});
  EXPECT_DEATH(flags.GetBool("b", false), "not a boolean");
}

}  // namespace
}  // namespace reconcile
