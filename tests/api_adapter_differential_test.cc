// Proves the registry adapters are pure pass-throughs: for every algorithm,
// the `Reconciler` built from a `ReconcilerSpec` produces a matching
// bit-identical to calling the underlying free function with the same
// configuration — so retargeting the harnesses onto the API changed no
// result anywhere.

#include <gtest/gtest.h>

#include "reconcile/api/registry.h"
#include "reconcile/api/spec.h"
#include "reconcile/baseline/bp_matcher.h"
#include "reconcile/baseline/common_neighbors.h"
#include "reconcile/baseline/feature_matching.h"
#include "reconcile/baseline/percolation.h"
#include "reconcile/baseline/propagation.h"
#include "reconcile/core/matcher.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

struct Fixture {
  RealizationPair pair;
  std::vector<std::pair<NodeId, NodeId>> seeds;
};

Fixture MakeFixture() {
  Graph g = GenerateErdosRenyi(800, 0.03, 4201);
  IndependentSampleOptions options;
  options.s1 = 0.7;
  options.s2 = 0.7;
  Fixture f;
  f.pair = SampleIndependent(g, options, 4203);
  SeedOptions seeding;
  seeding.fraction = 0.1;
  f.seeds = GenerateSeeds(f.pair, seeding, 4205);
  return f;
}

void ExpectIdentical(const MatchResult& direct, const MatchResult& adapted) {
  EXPECT_EQ(direct.map_1to2, adapted.map_1to2);
  EXPECT_EQ(direct.map_2to1, adapted.map_2to1);
  EXPECT_EQ(direct.seeds, adapted.seeds);
}

TEST(AdapterDifferentialTest, Core) {
  Fixture f = MakeFixture();
  MatcherConfig config;
  config.min_score = 3;
  config.num_iterations = 1;
  MatchResult direct = UserMatching(f.pair.g1, f.pair.g2, f.seeds, config);
  auto reconciler = Registry::Global().CreateOrDie(
      ReconcilerSpec("core").Set("threshold", "3").Set("iterations", "1"));
  ExpectIdentical(direct, reconciler->Run(f.pair.g1, f.pair.g2, f.seeds));
  EXPECT_TRUE(reconciler->ExposesPhaseStats());
}

TEST(AdapterDifferentialTest, Simple) {
  Fixture f = MakeFixture();
  SimpleMatcherConfig config;
  config.min_score = 2;
  MatchResult direct =
      SimpleCommonNeighborsMatch(f.pair.g1, f.pair.g2, f.seeds, config);
  auto reconciler = Registry::Global().CreateOrDie(
      ReconcilerSpec("simple").Set("threshold", "2"));
  ExpectIdentical(direct, reconciler->Run(f.pair.g1, f.pair.g2, f.seeds));
}

TEST(AdapterDifferentialTest, Propagation) {
  Fixture f = MakeFixture();
  PropagationConfig config;
  config.theta = 1.0;
  config.max_sweeps = 3;
  MatchResult direct =
      PropagationMatch(f.pair.g1, f.pair.g2, f.seeds, config);
  auto reconciler = Registry::Global().CreateOrDie(
      ReconcilerSpec("ns09").Set("theta", "1").Set("max-sweeps", "3"));
  ExpectIdentical(direct, reconciler->Run(f.pair.g1, f.pair.g2, f.seeds));
}

TEST(AdapterDifferentialTest, Features) {
  Fixture f = MakeFixture();
  FeatureMatcherConfig config;
  config.recursion_depth = 1;
  config.min_similarity = 0.95;
  MatchResult direct =
      StructuralFeatureMatch(f.pair.g1, f.pair.g2, f.seeds, config);
  auto reconciler = Registry::Global().CreateOrDie(
      ReconcilerSpec("features").Set("depth", "1").Set("min-similarity",
                                                       "0.95"));
  ExpectIdentical(direct, reconciler->Run(f.pair.g1, f.pair.g2, f.seeds));
}

TEST(AdapterDifferentialTest, Bp) {
  Fixture f = MakeFixture();
  BpConfig config;
  config.iterations = 6;
  config.damping = 0.3;
  config.max_sweeps = 3;
  MatchResult direct = BpMatch(f.pair.g1, f.pair.g2, f.seeds, config);
  auto reconciler = Registry::Global().CreateOrDie(
      ReconcilerSpec("bp").Set("iterations", "6").Set("damping", "0.3").Set(
          "max-sweeps", "3"));
  ExpectIdentical(direct, reconciler->Run(f.pair.g1, f.pair.g2, f.seeds));
}

TEST(AdapterDifferentialTest, Percolation) {
  Fixture f = MakeFixture();
  PercolationConfig config;
  config.threshold = 3;
  MatchResult direct =
      PercolationMatch(f.pair.g1, f.pair.g2, f.seeds, config);
  auto reconciler = Registry::Global().CreateOrDie(
      ReconcilerSpec("percolation").Set("threshold", "3"));
  ExpectIdentical(direct, reconciler->Run(f.pair.g1, f.pair.g2, f.seeds));
}

}  // namespace
}  // namespace reconcile
