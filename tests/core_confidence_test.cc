#include "reconcile/core/confidence.h"

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

RealizationPair MakePair(uint64_t seed) {
  Graph g = GenerateErdosRenyi(1500, 0.03, seed);
  IndependentSampleOptions options;
  options.s1 = 0.7;
  options.s2 = 0.7;
  return SampleIndependent(g, options, seed + 1);
}

MatchResult RunMatcher(const RealizationPair& pair,
                       std::vector<std::pair<NodeId, NodeId>>* seeds_out) {
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 6011);
  if (seeds_out != nullptr) *seeds_out = seeds;
  MatcherConfig config;
  config.min_score = 3;
  return UserMatching(pair.g1, pair.g2, seeds, config);
}

TEST(ConfidenceTest, CoversEveryLinkExactlyOnce) {
  RealizationPair pair = MakePair(6001);
  MatchResult result = RunMatcher(pair, nullptr);
  auto supports = ComputeLinkSupport(pair.g1, pair.g2, result);
  EXPECT_EQ(supports.size(), result.NumLinks());
  // Ordered by u, no duplicates.
  for (size_t i = 1; i < supports.size(); ++i) {
    EXPECT_LT(supports[i - 1].u, supports[i].u);
  }
}

TEST(ConfidenceTest, SeedFlagMatchesResult) {
  RealizationPair pair = MakePair(6003);
  std::vector<std::pair<NodeId, NodeId>> seeds;
  MatchResult result = RunMatcher(pair, &seeds);
  auto supports = ComputeLinkSupport(pair.g1, pair.g2, result);
  size_t seed_count = 0;
  for (const LinkSupport& link : supports) {
    if (link.is_seed) ++seed_count;
  }
  EXPECT_EQ(seed_count, seeds.size());
}

TEST(ConfidenceTest, DiscoveredLinksMeetAcceptanceFloorAtConvergence) {
  // A link accepted at score T has at least T witnesses under the final
  // mapping: support only grows as more neighbours get matched.
  RealizationPair pair = MakePair(6005);
  MatchResult result = RunMatcher(pair, nullptr);
  auto supports = ComputeLinkSupport(pair.g1, pair.g2, result);
  for (const LinkSupport& link : supports) {
    if (link.is_seed) continue;
    EXPECT_GE(link.support, 3u) << "link " << link.u << "->" << link.v;
  }
}

TEST(ConfidenceTest, CorrectLinksOutSupportWrongOnes) {
  // Support is the usable confidence signal: on an easy instance the mean
  // support of correct links far exceeds the acceptance threshold.
  RealizationPair pair = MakePair(6007);
  MatchResult result = RunMatcher(pair, nullptr);
  auto supports = ComputeLinkSupport(pair.g1, pair.g2, result);
  double sum = 0.0;
  size_t n = 0;
  for (const LinkSupport& link : supports) {
    if (link.is_seed) continue;
    sum += link.support;
    ++n;
  }
  ASSERT_GT(n, 100u);
  EXPECT_GT(sum / static_cast<double>(n), 6.0);
}

TEST(ConfidenceTest, HistogramBucketsAndSaturation) {
  std::vector<LinkSupport> links = {
      {0, 0, 2, false}, {1, 1, 2, false}, {2, 2, 9, false},
      {3, 3, 100, false}, {4, 4, 50, true},  // seed excluded
  };
  auto histogram = SupportHistogram(links, 10);
  ASSERT_EQ(histogram.size(), 11u);
  EXPECT_EQ(histogram[2], 2u);
  EXPECT_EQ(histogram[9], 1u);
  EXPECT_EQ(histogram[10], 1u);  // saturated bucket
  size_t total = 0;
  for (size_t c : histogram) total += c;
  EXPECT_EQ(total, 4u);
}

TEST(ConfidenceTest, FractionWithSupport) {
  std::vector<LinkSupport> links = {
      {0, 0, 1, false}, {1, 1, 5, false}, {2, 2, 9, false},
      {3, 3, 2, true},  // seed excluded
  };
  EXPECT_DOUBLE_EQ(FractionWithSupportAtLeast(links, 5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(FractionWithSupportAtLeast(links, 100), 0.0);
  EXPECT_DOUBLE_EQ(FractionWithSupportAtLeast({}, 1), 0.0);
}

TEST(ConfidenceTest, EmptyMatchingYieldsEmptySupports) {
  Graph g = GenerateErdosRenyi(50, 0.1, 6009);
  MatchResult result = UserMatching(g, g, {}, MatcherConfig{});
  auto supports = ComputeLinkSupport(g, g, result);
  EXPECT_TRUE(supports.empty());
}

}  // namespace
}  // namespace reconcile
