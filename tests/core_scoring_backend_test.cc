// Scoring-backend equivalence: the radix (sort-based) backend must produce
// bit-identical matchings to the hash backend across the full engine grid —
// incremental vs recompute scoring, serial vs parallel selection, thread and
// shard counts, bucketing on and off. The selection fold is representation-
// agnostic and both backends aggregate the same witness multiset, so any
// divergence is a bug in the sort/merge path.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

struct Workload {
  RealizationPair pair;
  std::vector<std::pair<NodeId, NodeId>> seeds;
};

Workload MakeWorkload(uint64_t rng_seed) {
  Graph g;
  switch (rng_seed % 3) {
    case 0:
      g = GeneratePreferentialAttachment(1400, 8, rng_seed);
      break;
    case 1:
      g = GenerateChungLu(PowerLawWeights(1400, 2.5, 14.0), rng_seed);
      break;
    default:
      g = GenerateErdosRenyi(1200, 0.03, rng_seed);
      break;
  }
  IndependentSampleOptions options;
  options.s1 = 0.6;
  options.s2 = 0.6;
  Workload w;
  w.pair = SampleIndependent(g, options, rng_seed + 1);
  SeedOptions seeding;
  seeding.fraction = 0.08;
  w.seeds = GenerateSeeds(w.pair, seeding, rng_seed + 2);
  return w;
}

// The full differential grid: hash vs radix × incremental vs recompute ×
// serial vs parallel selection × threads × shards × bucketing. The hash /
// incremental / parallel run is the reference for each workload.
TEST(ScoringBackendDifferentialTest, RadixMatchesHashAcrossEngineGrid) {
  for (uint64_t rng_seed : {9001u, 9002u, 9003u}) {
    SCOPED_TRACE("rng_seed=" + std::to_string(rng_seed));
    Workload w = MakeWorkload(rng_seed);

    MatchResult reference;
    bool have_reference = false;
    for (bool bucketing : {true, false}) {
      for (ScoringBackend backend :
           {ScoringBackend::kHashMap, ScoringBackend::kRadixSort}) {
        for (bool incremental : {true, false}) {
          for (bool parallel_selection : {true, false}) {
            for (auto [threads, shards] :
                 {std::pair<int, int>{1, 1}, std::pair<int, int>{4, 13}}) {
              MatcherConfig config;
              config.use_degree_bucketing = bucketing;
              config.scoring_backend = backend;
              config.use_incremental_scoring = incremental;
              config.use_parallel_selection = parallel_selection;
              config.num_threads = threads;
              config.num_shards = shards;
              MatchResult result =
                  UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
              if (!have_reference) {
                reference = std::move(result);
                have_reference = true;
                EXPECT_GT(reference.NumNewLinks(), 0u)
                    << "workload too easy to detect divergence";
                continue;
              }
              SCOPED_TRACE(
                  std::string("bucketing=") + std::to_string(bucketing) +
                  " backend=" +
                  (backend == ScoringBackend::kRadixSort ? "radix" : "hash") +
                  " incremental=" + std::to_string(incremental) +
                  " parallel_selection=" + std::to_string(parallel_selection) +
                  " threads=" + std::to_string(threads) +
                  " shards=" + std::to_string(shards));
              ASSERT_EQ(result.map_1to2, reference.map_1to2);
              ASSERT_EQ(result.map_2to1, reference.map_2to1);
            }
          }
        }
      }
      // Bucketing changes which links are found; re-anchor the reference
      // for the non-bucketed half of the grid.
      have_reference = false;
    }
  }
}

// Per-round telemetry must agree between backends: the emitted witness
// multiset and the distinct candidate-pair count are representation-
// independent quantities.
TEST(ScoringBackendDifferentialTest, PhaseCountersMatchBetweenBackends) {
  Workload w = MakeWorkload(9004);
  MatcherConfig hash_config;
  hash_config.scoring_backend = ScoringBackend::kHashMap;
  MatcherConfig radix_config;
  radix_config.scoring_backend = ScoringBackend::kRadixSort;
  MatchResult hash_result =
      UserMatching(w.pair.g1, w.pair.g2, w.seeds, hash_config);
  MatchResult radix_result =
      UserMatching(w.pair.g1, w.pair.g2, w.seeds, radix_config);
  ASSERT_EQ(hash_result.phases.size(), radix_result.phases.size());
  for (size_t i = 0; i < hash_result.phases.size(); ++i) {
    const PhaseStats& h = hash_result.phases[i];
    const PhaseStats& r = radix_result.phases[i];
    EXPECT_EQ(h.iteration, r.iteration);
    EXPECT_EQ(h.bucket_exponent, r.bucket_exponent);
    EXPECT_EQ(h.links_in, r.links_in);
    EXPECT_EQ(h.emissions, r.emissions);
    EXPECT_EQ(h.candidate_pairs, r.candidate_pairs);
    EXPECT_EQ(h.new_links, r.new_links);
  }
}

// min_bucket_exponent prunes emissions at the source; both backends must
// apply the same degree floor.
TEST(ScoringBackendDifferentialTest, DegreeFloorMatches) {
  Workload w = MakeWorkload(9005);
  for (ScoringBackend backend :
       {ScoringBackend::kHashMap, ScoringBackend::kRadixSort}) {
    MatcherConfig config;
    config.scoring_backend = backend;
    config.min_bucket_exponent = 3;  // degree >= 8
    MatchResult result = UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
    for (NodeId u = 0; u < w.pair.g1.num_nodes(); ++u) {
      const NodeId v = result.map_1to2[u];
      if (v == kInvalidNode || result.IsSeed1(u)) continue;
      EXPECT_GE(w.pair.g1.degree(u), 8u);
      EXPECT_GE(w.pair.g2.degree(v), 8u);
    }
  }
}

// Degenerate inputs must not trip the radix paths.
TEST(ScoringBackendEdgeCaseTest, EmptyGraphsAndSeedOnlyGraphs) {
  MatcherConfig config;
  config.scoring_backend = ScoringBackend::kRadixSort;

  Graph empty;
  MatchResult result = UserMatching(empty, empty, {}, config);
  EXPECT_EQ(result.NumLinks(), 0u);

  EdgeList e1(4), e2(4);
  Graph g1 = Graph::FromEdgeList(std::move(e1));
  Graph g2 = Graph::FromEdgeList(std::move(e2));
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 1}, {2, 3}};
  MatchResult seeded = UserMatching(g1, g2, seeds, config);
  EXPECT_EQ(seeded.NumLinks(), 2u);
  EXPECT_EQ(seeded.NumNewLinks(), 0u);
}

}  // namespace
}  // namespace reconcile
