// TieredCountRuns: the LSM tier stack must present exactly the aggregate of
// the fully merged run — same keys, same totals, ascending order — for
// every append/compaction policy, and the size-ratio policy must bound the
// resident tier count.
#include "reconcile/util/tiered_store.h"

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/util/rng.h"

namespace reconcile {
namespace {

SortedCountRun MakeRun(std::vector<uint64_t> raw) {
  std::vector<uint64_t> scratch;
  return SortAndCount(std::move(raw), scratch);
}

// Random delta stream with overlapping keys across deltas.
std::vector<std::vector<uint64_t>> MakeDeltaStream(uint64_t seed,
                                                   size_t num_deltas,
                                                   size_t delta_size,
                                                   uint64_t key_space) {
  Rng rng(seed);
  std::vector<std::vector<uint64_t>> deltas(num_deltas);
  for (auto& delta : deltas) {
    for (size_t i = 0; i < delta_size; ++i) {
      delta.push_back(rng.UniformInt(key_space));
    }
  }
  return deltas;
}

std::map<uint64_t, uint32_t> Materialize(const TieredCountRuns& store) {
  std::map<uint64_t, uint32_t> out;
  uint64_t last_key = 0;
  bool first = true;
  store.ForEach([&out, &last_key, &first](uint64_t key, uint32_t count) {
    if (!first) {
      EXPECT_GT(key, last_key) << "ForEach must ascend";
    }
    first = false;
    last_key = key;
    EXPECT_TRUE(out.emplace(key, count).second) << "duplicate key surfaced";
  });
  return out;
}

TEST(TieredStoreTest, AggregateMatchesReferenceForAllPolicies) {
  const auto deltas = MakeDeltaStream(77, 9, 500, 300);
  std::map<uint64_t, uint32_t> reference;
  for (const auto& delta : deltas) {
    for (uint64_t key : delta) ++reference[key];
  }
  for (int max_tiers : {1, 2, 4, 16}) {
    for (double ratio : {0.0, 1.0, 2.0, 4.0, 1e9}) {
      TierPolicy policy{max_tiers, ratio};
      TieredCountRuns store;
      for (const auto& delta : deltas) {
        store.Append(MakeRun(delta), policy);
        EXPECT_LE(store.num_tiers(), static_cast<size_t>(max_tiers))
            << "max_tiers=" << max_tiers << " ratio=" << ratio;
      }
      EXPECT_EQ(Materialize(store), reference)
          << "max_tiers=" << max_tiers << " ratio=" << ratio;
    }
  }
}

TEST(TieredStoreTest, SingleTierPolicyKeepsOneRun) {
  TierPolicy policy{1, 4.0};
  TieredCountRuns store;
  for (const auto& delta : MakeDeltaStream(3, 6, 100, 64)) {
    store.Append(MakeRun(delta), policy);
    EXPECT_EQ(store.num_tiers(), 1u);
  }
}

TEST(TieredStoreTest, GeometricDeltasStayInSeparateTiers) {
  // With ratio 2, each delta 4x smaller than its predecessor must not
  // trigger a cascade: 4000 is > 2 * 1000, etc.
  TierPolicy policy{8, 2.0};
  TieredCountRuns store;
  size_t size = 4000;
  for (int i = 0; i < 4; ++i, size /= 4) {
    std::vector<uint64_t> raw;
    // Distinct key ranges per delta keep run sizes equal to raw sizes.
    for (size_t j = 0; j < size; ++j) {
      raw.push_back(static_cast<uint64_t>(i) * 1000000 + j);
    }
    store.Append(MakeRun(raw), policy);
  }
  EXPECT_EQ(store.num_tiers(), 4u);
}

TEST(TieredStoreTest, EqualSizedDeltasCascade) {
  // With ratio 4, appending equal-sized deltas merges every time: the new
  // tier is always within 4x of its predecessor.
  TierPolicy policy{8, 4.0};
  TieredCountRuns store;
  for (int i = 0; i < 6; ++i) {
    std::vector<uint64_t> raw;
    for (uint64_t j = 0; j < 64; ++j) raw.push_back(j);
    store.Append(MakeRun(raw), policy);
    EXPECT_EQ(store.num_tiers(), 1u);
  }
  EXPECT_EQ(store.Count(0), 6u);
}

TEST(TieredStoreTest, CountSumsAcrossTiers) {
  TierPolicy policy{8, 0.0};  // ratio trigger off: never cascade below the cap
  TieredCountRuns store;
  store.Append(MakeRun({1, 2, 2, 3}), policy);
  store.Append(MakeRun({2, 3, 4}), policy);
  store.Append(MakeRun({3}), policy);
  EXPECT_EQ(store.Count(1), 1u);
  EXPECT_EQ(store.Count(2), 3u);
  EXPECT_EQ(store.Count(3), 3u);
  EXPECT_EQ(store.Count(4), 1u);
  EXPECT_EQ(store.Count(99), 0u);
}

TEST(TieredStoreTest, FilterAppliesAcrossTiersAndDropsEmpties) {
  TierPolicy policy{8, 0.0};
  TieredCountRuns store;
  store.Append(MakeRun({10, 11, 12}), policy);
  store.Append(MakeRun({10, 13}), policy);
  store.Append(MakeRun({11}), policy);
  ASSERT_EQ(store.num_tiers(), 3u);
  store.Filter([](uint64_t key, uint32_t) { return key % 2 == 0; });
  EXPECT_EQ(store.Count(10), 2u);
  EXPECT_EQ(store.Count(11), 0u);
  EXPECT_EQ(store.Count(12), 1u);
  EXPECT_EQ(store.Count(13), 0u);
  // The third tier held only key 11 and must be gone.
  EXPECT_EQ(store.num_tiers(), 2u);
  store.Filter([](uint64_t, uint32_t) { return false; });
  EXPECT_TRUE(store.empty());
}

TEST(TieredStoreTest, CompactFoldsToOneTierWithSameAggregate) {
  TierPolicy policy{8, 0.0};
  TieredCountRuns store;
  const auto deltas = MakeDeltaStream(5, 5, 200, 100);
  for (const auto& delta : deltas) store.Append(MakeRun(delta), policy);
  const std::map<uint64_t, uint32_t> before = Materialize(store);
  ASSERT_GT(store.num_tiers(), 1u);
  store.Compact();
  EXPECT_EQ(store.num_tiers(), 1u);
  EXPECT_EQ(Materialize(store), before);
}

TEST(TieredStoreTest, EmptyDeltasAreDropped) {
  TierPolicy policy{4, 4.0};
  TieredCountRuns store;
  store.Append(SortedCountRun{}, policy);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.num_tiers(), 0u);
  store.Append(MakeRun({7}), policy);
  store.Append(SortedCountRun{}, policy);
  EXPECT_EQ(store.num_tiers(), 1u);
  EXPECT_EQ(store.total_entries(), 1u);
}

}  // namespace
}  // namespace reconcile
