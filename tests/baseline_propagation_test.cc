#include "reconcile/baseline/propagation.h"

#include <gtest/gtest.h>

#include "reconcile/eval/metrics.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

TEST(PropagationTest, RecoversIdentityOnIdenticalGraphs) {
  EdgeList edges(7);
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 2);
  edges.Add(2, 3);
  edges.Add(3, 4);
  edges.Add(3, 5);
  edges.Add(4, 5);
  edges.Add(5, 6);
  Graph g = Graph::FromEdgeList(std::move(edges));
  PropagationConfig config;
  config.theta = 0.1;
  std::vector<std::pair<NodeId, NodeId>> seeds = {{2, 2}, {3, 3}};
  MatchResult result = PropagationMatch(g, g, seeds, config);
  for (NodeId u = 0; u < result.map_1to2.size(); ++u) {
    if (result.map_1to2[u] != kInvalidNode) {
      EXPECT_EQ(result.map_1to2[u], u) << "node " << u;
    }
  }
  EXPECT_GT(result.NumNewLinks(), 0u);
}

TEST(PropagationTest, OneToOneInvariant) {
  Graph g = GenerateErdosRenyi(800, 0.02, 3);
  RealizationPair pair = SampleIndependent(g, {}, 5);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 7);
  MatchResult result = PropagationMatch(pair.g1, pair.g2, seeds, {});
  std::vector<char> used(pair.g2.num_nodes(), 0);
  for (NodeId u = 0; u < result.map_1to2.size(); ++u) {
    NodeId v = result.map_1to2[u];
    if (v == kInvalidNode) continue;
    EXPECT_FALSE(used[v]);
    used[v] = 1;
    EXPECT_EQ(result.map_2to1[v], u);
  }
}

TEST(PropagationTest, FindsMostOfAnErdosRenyiGraph) {
  Graph g = GenerateErdosRenyi(1000, 0.03, 9);
  RealizationPair pair = SampleIndependent(g, {}, 11);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 13);
  PropagationConfig config;
  config.theta = 1.0;  // tighter eccentricity requirement than the default
  MatchResult result = PropagationMatch(pair.g1, pair.g2, seeds, config);
  MatchQuality q = Evaluate(pair, result);
  EXPECT_GT(q.recall_all, 0.4);
  EXPECT_GT(q.precision, 0.85);
}

TEST(PropagationTest, HigherThetaIsMoreConservative) {
  Graph g = GenerateErdosRenyi(800, 0.03, 15);
  RealizationPair pair = SampleIndependent(g, {}, 17);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 19);
  PropagationConfig loose, strict;
  loose.theta = 0.1;
  strict.theta = 3.0;
  MatchResult loose_result = PropagationMatch(pair.g1, pair.g2, seeds, loose);
  MatchResult strict_result = PropagationMatch(pair.g1, pair.g2, seeds, strict);
  EXPECT_LE(strict_result.NumNewLinks(), loose_result.NumNewLinks());
}

TEST(PropagationTest, ReverseCheckImprovesOrKeepsPrecision) {
  Graph g = GenerateErdosRenyi(800, 0.03, 21);
  RealizationPair pair = SampleIndependent(g, {}, 23);
  SeedOptions seed_options;
  seed_options.fraction = 0.08;
  auto seeds = GenerateSeeds(pair, seed_options, 25);
  PropagationConfig with, without;
  with.reverse_check = true;
  without.reverse_check = false;
  MatchQuality q_with =
      Evaluate(pair, PropagationMatch(pair.g1, pair.g2, seeds, with));
  MatchQuality q_without =
      Evaluate(pair, PropagationMatch(pair.g1, pair.g2, seeds, without));
  EXPECT_GE(q_with.precision + 0.02, q_without.precision);
}

TEST(PropagationTest, NoSeedsNoMatches) {
  Graph g = GenerateErdosRenyi(200, 0.05, 27);
  std::vector<std::pair<NodeId, NodeId>> seeds;
  MatchResult result = PropagationMatch(g, g, seeds, {});
  EXPECT_EQ(result.NumLinks(), 0u);
}

}  // namespace
}  // namespace reconcile
