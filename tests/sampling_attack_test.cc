#include "reconcile/sampling/attack.h"

#include <gtest/gtest.h>

#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/sampling/independent.h"

namespace reconcile {
namespace {

RealizationPair BasePair(uint64_t seed) {
  Graph g = GenerateErdosRenyi(1000, 0.02, seed);
  IndependentSampleOptions options;
  options.s1 = options.s2 = 0.75;
  return SampleIndependent(g, options, seed + 1);
}

TEST(AttackTest, DoublesNodeCount) {
  RealizationPair base = BasePair(3);
  RealizationPair attacked = ApplyAttack(base, {}, 5);
  EXPECT_EQ(attacked.g1.num_nodes(), 2 * base.g1.num_nodes());
  EXPECT_EQ(attacked.g2.num_nodes(), 2 * base.g2.num_nodes());
}

TEST(AttackTest, OriginalEdgesPreserved) {
  RealizationPair base = BasePair(7);
  RealizationPair attacked = ApplyAttack(base, {}, 9);
  for (NodeId u = 0; u < base.g1.num_nodes(); ++u) {
    for (NodeId v : base.g1.Neighbors(u)) {
      if (v > u) {
        ASSERT_TRUE(attacked.g1.HasEdge(u, v));
      }
    }
  }
}

TEST(AttackTest, SybilDegreeTracksAttachProbability) {
  RealizationPair base = BasePair(11);
  AttackOptions options;
  options.attach_prob = 0.5;
  RealizationPair attacked = ApplyAttack(base, options, 13);
  const NodeId n = base.g1.num_nodes();
  size_t sybil_degree_sum = 0, original_degree_sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    sybil_degree_sum += attacked.g1.degree(n + v);
    original_degree_sum += base.g1.degree(v);
  }
  // Each clone copies each neighbour edge w.p. 0.5.
  EXPECT_NEAR(static_cast<double>(sybil_degree_sum),
              0.5 * static_cast<double>(original_degree_sum),
              0.05 * static_cast<double>(original_degree_sum) + 10);
}

TEST(AttackTest, SybilsOnlyConnectToVictimsNeighbors) {
  RealizationPair base = BasePair(17);
  RealizationPair attacked = ApplyAttack(base, {}, 19);
  const NodeId n = base.g1.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : attacked.g1.Neighbors(n + v)) {
      ASSERT_LT(u, n);  // sybils never befriend sybils in this model
      ASSERT_TRUE(base.g1.HasEdge(u, v))
          << "clone of " << v << " linked to non-neighbour " << u;
    }
  }
}

TEST(AttackTest, SybilsHaveNoGroundTruth) {
  RealizationPair base = BasePair(23);
  RealizationPair attacked = ApplyAttack(base, {}, 29);
  const NodeId n1 = base.g1.num_nodes();
  for (NodeId v = n1; v < attacked.g1.num_nodes(); ++v) {
    EXPECT_EQ(attacked.map_1to2[v], kInvalidNode);
  }
  // Originals keep theirs.
  for (NodeId v = 0; v < n1; ++v) {
    EXPECT_EQ(attacked.map_1to2[v], base.map_1to2[v]);
  }
}

TEST(AttackTest, OneSidedAttackLeavesG2Untouched) {
  RealizationPair base = BasePair(31);
  AttackOptions options;
  options.attack_both_copies = false;
  RealizationPair attacked = ApplyAttack(base, options, 33);
  EXPECT_EQ(attacked.g2.num_nodes(), base.g2.num_nodes());
  EXPECT_EQ(attacked.g2.num_edges(), base.g2.num_edges());
  EXPECT_EQ(attacked.g1.num_nodes(), 2 * base.g1.num_nodes());
}

TEST(AttackTest, ZeroAttachProbMakesIsolatedSybils) {
  RealizationPair base = BasePair(37);
  AttackOptions options;
  options.attach_prob = 0.0;
  RealizationPair attacked = ApplyAttack(base, options, 39);
  const NodeId n = base.g1.num_nodes();
  for (NodeId v = n; v < attacked.g1.num_nodes(); ++v) {
    EXPECT_EQ(attacked.g1.degree(v), 0u);
  }
  EXPECT_EQ(attacked.g1.num_edges(), base.g1.num_edges());
}

}  // namespace
}  // namespace reconcile
