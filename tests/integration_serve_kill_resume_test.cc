// End-to-end crash safety for the serve subsystem: a serve session killed
// mid-batch (the `serve_apply` value point fires after the overlays
// absorbed the deltas but BEFORE the dirty links were re-emitted — the
// worst instant, with retraction visible and repair pending) must, when
// resumed from its newest checkpoint, fast-forward the delta stream past
// the records the snapshot already consumed, re-apply the lost batch and
// finish with a matching byte-identical to a never-killed session. Same
// fork discipline as integration_kill_resume_test: the parent never builds
// a workload or spawns the thread pool; children regenerate everything
// deterministically.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/eval/match_io.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"
#include "reconcile/serve/delta_log.h"
#include "reconcile/serve/incremental_matcher.h"
#include "reconcile/util/checkpoint.h"
#include "reconcile/util/fault.h"

namespace reconcile {
namespace {

constexpr uint64_t kWorkloadSeed = 4242;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void RemoveServeTree(const std::string& dir) {
  for (const CheckpointFile& file :
       ListCheckpointsWithPrefix(dir, kServeCheckpointPrefix)) {
    std::remove(file.path.c_str());
  }
  ::rmdir(dir.c_str());
}

// Deterministic delta script over the deterministic workload: deletes of
// present edges, fresh inserts, re-inserts, and node growth, 5 batches.
std::vector<std::vector<EdgeDelta>> MakeScript(const RealizationPair& pair) {
  std::mt19937 rng(kWorkloadSeed + 7);
  std::set<std::pair<NodeId, NodeId>> edges1, edges2;
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    for (NodeId v : pair.g1.Neighbors(u)) {
      if (u < v) edges1.insert({u, v});
    }
  }
  for (NodeId u = 0; u < pair.g2.num_nodes(); ++u) {
    for (NodeId v : pair.g2.Neighbors(u)) {
      if (u < v) edges2.insert({u, v});
    }
  }
  std::vector<std::vector<EdgeDelta>> script;
  std::vector<std::pair<NodeId, NodeId>> deleted;
  for (int b = 0; b < 5; ++b) {
    std::vector<EdgeDelta> batch;
    auto push = [&](int graph, bool insert, NodeId u, NodeId v) {
      batch.push_back(EdgeDelta{graph, insert, u, v});
    };
    for (int g = 1; g <= 2; ++g) {
      auto& edges = g == 1 ? edges1 : edges2;
      const NodeId n =
          g == 1 ? pair.g1.num_nodes() : pair.g2.num_nodes();
      std::vector<std::pair<NodeId, NodeId>> present(edges.begin(),
                                                     edges.end());
      for (int i = 0; i < 10 && !present.empty(); ++i) {
        const auto edge = present[rng() % present.size()];
        if (edges.erase(edge) == 0) continue;
        deleted.push_back(edge);
        push(g, false, edge.first, edge.second);
      }
      for (int i = 0; i < 8; ++i) {
        const NodeId u = rng() % n;
        const NodeId v = rng() % n;
        if (u != v) push(g, true, u, v);
      }
      if (b >= 2 && !deleted.empty()) {
        const auto edge = deleted[rng() % deleted.size()];
        push(g, true, edge.first, edge.second);
      }
    }
    if (b == 3) push(1, true, pair.g1.num_nodes() + 3, 0);
    script.push_back(std::move(batch));
  }
  return script;
}

void WriteDeltaLog(const std::string& path,
                   const std::vector<std::vector<EdgeDelta>>& script) {
  std::ofstream out(path, std::ios::trunc);
  for (const auto& batch : script) {
    for (const EdgeDelta& d : batch) {
      out << (d.insert ? "add " : "del ") << d.graph << " " << d.u << " "
          << d.v << "\n";
    }
    out << "commit\n";
  }
}

struct ChildSpec {
  std::string checkpoint_dir;  // empty: no checkpointing
  bool resume = false;
  std::string fault_spec;
  std::string matching_out;
  std::string delta_log;
};

// CHILD-ONLY: regenerates the workload and delta log, runs a serve session
// end to end with per-batch checkpoints (driver logic, in-process).
void ChildMain(const ChildSpec& spec) {
  if (!spec.fault_spec.empty()) {
    std::string error;
    if (!ArmFaults(spec.fault_spec, &error)) _exit(9);
  }
  Graph g = GenerateChungLu(PowerLawWeights(1000, 2.2, 12.0), kWorkloadSeed);
  IndependentSampleOptions options;
  options.s1 = 0.6;
  options.s2 = 0.6;
  RealizationPair pair = SampleIndependent(g, options, kWorkloadSeed + 1);
  SeedOptions seeding;
  seeding.fraction = 0.08;
  auto seeds = GenerateSeeds(pair, seeding, kWorkloadSeed + 2);
  const auto script = MakeScript(pair);
  WriteDeltaLog(spec.delta_log, script);

  ServeConfig config;
  config.matcher.num_threads = 4;
  config.matcher.num_shards = 4;
  config.compact_overlay_every = 2;
  IncrementalMatcher matcher(pair.g1, pair.g2, seeds, config);

  bool resumed = false;
  if (spec.resume) {
    const auto checkpoints =
        ListCheckpointsWithPrefix(spec.checkpoint_dir, kServeCheckpointPrefix);
    for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
      std::string error;
      if (matcher.LoadSnapshot(it->path, &error)) {
        resumed = true;
        break;
      }
    }
    if (!resumed) _exit(8);
  }

  DeltaReader reader;
  std::string error;
  if (!reader.Open(spec.delta_log, &error)) _exit(4);
  if (matcher.deltas_consumed() > 0 &&
      !reader.SkipRecords(matcher.deltas_consumed(), &error)) {
    _exit(5);
  }
  auto checkpoint = [&] {
    if (spec.checkpoint_dir.empty()) return;
    matcher.set_deltas_consumed(reader.records_consumed());
    const std::string path = CheckpointPathWithPrefix(
        spec.checkpoint_dir, kServeCheckpointPrefix,
        matcher.batches_applied());
    std::string save_error;
    if (!matcher.SaveSnapshot(path, &save_error)) _exit(7);
  };

  if (!resumed) {
    matcher.ApplyBatch({});
    checkpoint();
  }
  while (true) {
    std::vector<EdgeDelta> batch;
    bool end_of_stream = false;
    if (!reader.NextBatch(0, &batch, &end_of_stream, &error)) _exit(6);
    if (!batch.empty()) {
      matcher.ApplyBatch(batch);
      checkpoint();
    }
    if (end_of_stream) break;
  }
  if (!spec.matching_out.empty() &&
      !WriteMatchingText(matcher.Result(), spec.matching_out)) {
    _exit(3);
  }
  _exit(0);
}

int RunChild(const ChildSpec& spec) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ChildMain(spec);  // never returns
  }
  if (pid < 0) return -1;
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFSIGNALED(status)) return -1;
  return WEXITSTATUS(status);
}

// One cycle per crash point. serve_apply=N fires inside the (N-1)-th delta
// batch (the initial match is batch 1), between overlay absorption and
// re-emission.
void CheckServeKillResume(const std::string& crash_spec,
                          const std::string& tag) {
  const std::string dir = TempPath("skr_" + tag);
  const std::string log = TempPath("skr_" + tag + ".log");
  const std::string clean_out = TempPath("skr_" + tag + "_clean.txt");
  const std::string resumed_out = TempPath("skr_" + tag + "_resumed.txt");
  std::string error;
  ASSERT_TRUE(EnsureDir(dir, &error)) << error;

  ChildSpec clean;
  clean.delta_log = log;
  clean.matching_out = clean_out;
  ASSERT_EQ(RunChild(clean), 0) << tag;

  ChildSpec crash;
  crash.delta_log = log;
  crash.checkpoint_dir = dir;
  crash.fault_spec = crash_spec;
  ASSERT_EQ(RunChild(crash), kFaultCrashExitCode) << tag;
  ASSERT_FALSE(ListCheckpointsWithPrefix(dir, kServeCheckpointPrefix).empty())
      << tag << ": the crash must land after at least one checkpoint";

  ChildSpec resume;
  resume.delta_log = log;
  resume.checkpoint_dir = dir;
  resume.resume = true;
  resume.matching_out = resumed_out;
  ASSERT_EQ(RunChild(resume), 0) << tag;

  const std::vector<char> clean_bytes = Slurp(clean_out);
  ASSERT_FALSE(clean_bytes.empty()) << tag;
  EXPECT_EQ(Slurp(resumed_out), clean_bytes)
      << tag << ": resumed serve matching differs from the unkilled session";

  RemoveServeTree(dir);
  std::remove(log.c_str());
  std::remove(clean_out.c_str());
  std::remove(resumed_out.c_str());
}

TEST(ServeKillResumeTest, CrashInFirstDeltaBatchResumesBitIdentical) {
  CheckServeKillResume("crash:serve_apply=2", "first_batch");
}

TEST(ServeKillResumeTest, CrashInLaterBatchResumesBitIdentical) {
  CheckServeKillResume("crash:serve_apply=4", "later_batch");
}

TEST(ServeKillResumeTest, CorruptNewestServeCheckpointFallsBackToOlder) {
  const std::string dir = TempPath("skr_corrupt");
  const std::string log = TempPath("skr_corrupt.log");
  const std::string clean_out = TempPath("skr_corrupt_clean.txt");
  const std::string resumed_out = TempPath("skr_corrupt_resumed.txt");
  std::string error;
  ASSERT_TRUE(EnsureDir(dir, &error)) << error;

  ChildSpec clean;
  clean.delta_log = log;
  clean.matching_out = clean_out;
  ASSERT_EQ(RunChild(clean), 0);

  ChildSpec crash;
  crash.delta_log = log;
  crash.checkpoint_dir = dir;
  crash.fault_spec = "crash:serve_apply=4";
  ASSERT_EQ(RunChild(crash), kFaultCrashExitCode);
  auto files = ListCheckpointsWithPrefix(dir, kServeCheckpointPrefix);
  ASSERT_GE(files.size(), 2u);
  {
    // Torn write: truncate the newest snapshot to half.
    const std::string& victim = files.back().path;
    std::vector<char> bytes = Slurp(victim);
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  ChildSpec resume;
  resume.delta_log = log;
  resume.checkpoint_dir = dir;
  resume.resume = true;
  resume.matching_out = resumed_out;
  ASSERT_EQ(RunChild(resume), 0)
      << "a corrupt serve checkpoint must be skipped, not fatal";
  EXPECT_EQ(Slurp(resumed_out), Slurp(clean_out));

  RemoveServeTree(dir);
  std::remove(log.c_str());
  std::remove(clean_out.c_str());
  std::remove(resumed_out.c_str());
}

}  // namespace
}  // namespace reconcile
