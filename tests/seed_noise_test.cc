// Failure injection: corrupted seed links. The paper assumes trusted seeds
// but notes they may come from heuristics; these tests document how the
// matcher behaves when a fraction of the "trusted" links are wrong.
#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

RealizationPair TestPair(uint64_t seed) {
  Graph g = GeneratePreferentialAttachment(3000, 15, seed);
  return SampleIndependent(g, {}, seed + 1);
}

TEST(SeedNoiseTest, WrongFractionProducesWrongSeeds) {
  RealizationPair pair = TestPair(81);
  SeedOptions options;
  options.fraction = 0.2;
  options.wrong_fraction = 0.3;
  auto seeds = GenerateSeeds(pair, options, 82);
  size_t wrong = 0;
  for (const auto& [u, v] : seeds) {
    if (pair.map_1to2[u] != v) ++wrong;
  }
  double rate = static_cast<double>(wrong) / static_cast<double>(seeds.size());
  EXPECT_NEAR(rate, 0.3, 0.06);
}

TEST(SeedNoiseTest, CorruptedSeedsRemainOneToOne) {
  RealizationPair pair = TestPair(83);
  SeedOptions options;
  options.fraction = 0.3;
  options.wrong_fraction = 0.5;
  auto seeds = GenerateSeeds(pair, options, 84);
  std::vector<char> left(pair.g1.num_nodes(), 0), right(pair.g2.num_nodes(), 0);
  for (const auto& [u, v] : seeds) {
    EXPECT_FALSE(left[u]);
    EXPECT_FALSE(right[v]);
    left[u] = 1;
    right[v] = 1;
  }
}

TEST(SeedNoiseTest, ZeroNoiseKeepsSeedsExact) {
  RealizationPair pair = TestPair(85);
  SeedOptions options;
  options.fraction = 0.2;
  auto seeds = GenerateSeeds(pair, options, 86);
  for (const auto& [u, v] : seeds) {
    EXPECT_EQ(pair.map_1to2[u], v);
  }
}

TEST(SeedNoiseTest, MatcherToleratesAFewWrongSeeds) {
  RealizationPair pair = TestPair(87);
  SeedOptions clean_options, noisy_options;
  clean_options.fraction = noisy_options.fraction = 0.1;
  noisy_options.wrong_fraction = 0.05;  // 5% of trusted links are wrong
  auto clean = GenerateSeeds(pair, clean_options, 88);
  auto noisy = GenerateSeeds(pair, noisy_options, 88);

  MatcherConfig config;
  config.min_score = 2;
  MatchQuality clean_q =
      Evaluate(pair, UserMatching(pair.g1, pair.g2, clean, config));
  MatchQuality noisy_q =
      Evaluate(pair, UserMatching(pair.g1, pair.g2, noisy, config));

  // Wrong seeds poison some witnesses but the threshold + mutual-best rule
  // contains the damage: precision of the *discovered* links stays high.
  EXPECT_GT(noisy_q.precision, 0.95);
  // And recall does not collapse relative to the clean run.
  EXPECT_GT(noisy_q.recall_all, clean_q.recall_all * 0.8);
}

TEST(SeedNoiseTest, HeavyNoiseDegradesGracefullyNotCatastrophically) {
  RealizationPair pair = TestPair(89);
  SeedOptions options;
  options.fraction = 0.1;
  options.wrong_fraction = 0.3;  // a third of the trust store is garbage
  auto seeds = GenerateSeeds(pair, options, 90);
  MatcherConfig config;
  config.min_score = 3;  // defensive threshold
  MatchQuality q = Evaluate(pair, UserMatching(pair.g1, pair.g2, seeds, config));
  EXPECT_GT(q.precision, 0.9);
}

}  // namespace
}  // namespace reconcile
