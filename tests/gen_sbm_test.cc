#include "reconcile/gen/sbm.h"

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(SbmTest, EmptyParamsEmptyGraph) {
  Graph g = GenerateSbm(SbmParams{}, 1);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(SbmTest, NodeCountIsSumOfBlocks) {
  SbmParams params;
  params.block_sizes = {10, 20, 30};
  Graph g = GenerateSbm(params, 3);
  EXPECT_EQ(g.num_nodes(), 60u);
}

TEST(SbmTest, PinOneMakesBlocksComplete) {
  SbmParams params;
  params.block_sizes = {5, 4};
  params.p_in = 1.0;
  params.p_out = 0.0;
  Graph g = GenerateSbm(params, 7);
  EXPECT_EQ(g.num_edges(), 5u * 4 / 2 + 4u * 3 / 2);
  for (NodeId u = 0; u < 5; ++u)
    for (NodeId v = u + 1; v < 5; ++v) EXPECT_TRUE(g.HasEdge(u, v));
  for (NodeId u = 5; u < 9; ++u)
    for (NodeId v = u + 1; v < 9; ++v) EXPECT_TRUE(g.HasEdge(u, v));
  for (NodeId u = 0; u < 5; ++u)
    for (NodeId v = 5; v < 9; ++v) EXPECT_FALSE(g.HasEdge(u, v));
}

TEST(SbmTest, PoutOneConnectsAllAcross) {
  SbmParams params;
  params.block_sizes = {3, 3};
  params.p_in = 0.0;
  params.p_out = 1.0;
  Graph g = GenerateSbm(params, 7);
  EXPECT_EQ(g.num_edges(), 9u);
  for (NodeId u = 0; u < 3; ++u)
    for (NodeId v = 3; v < 6; ++v) EXPECT_TRUE(g.HasEdge(u, v));
}

TEST(SbmTest, WithinDensityTracksPin) {
  SbmParams params;
  params.block_sizes = {400, 400};
  params.p_in = 0.05;
  params.p_out = 0.0;
  Graph g = GenerateSbm(params, 17);
  const double possible = 2 * (400.0 * 399 / 2);
  const double density = static_cast<double>(g.num_edges()) / possible;
  EXPECT_NEAR(density, 0.05, 0.01);
}

TEST(SbmTest, AcrossDensityTracksPout) {
  SbmParams params;
  params.block_sizes = {400, 400};
  params.p_in = 0.0;
  params.p_out = 0.02;
  Graph g = GenerateSbm(params, 17);
  const double density = static_cast<double>(g.num_edges()) / (400.0 * 400.0);
  EXPECT_NEAR(density, 0.02, 0.005);
}

TEST(SbmTest, CrossEdgesLandInDistinctBlocks) {
  SbmParams params;
  params.block_sizes = {50, 50, 50};
  params.p_in = 0.0;
  params.p_out = 0.1;
  Graph g = GenerateSbm(params, 23);
  std::vector<uint32_t> labels = SbmBlockLabels(params);
  for (NodeId u = 0; u < g.num_nodes(); ++u)
    for (NodeId v : g.Neighbors(u)) EXPECT_NE(labels[u], labels[v]);
}

TEST(SbmTest, BlockLabelsLayout) {
  SbmParams params;
  params.block_sizes = {2, 3};
  std::vector<uint32_t> labels = SbmBlockLabels(params);
  ASSERT_EQ(labels.size(), 5u);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 1u);
  EXPECT_EQ(labels[4], 1u);
}

TEST(SbmTest, DeterministicForSeed) {
  SbmParams params;
  params.block_sizes = {100, 100};
  params.p_in = 0.05;
  params.p_out = 0.01;
  Graph a = GenerateSbm(params, 5);
  Graph b = GenerateSbm(params, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(SbmTest, InvalidProbabilityDies) {
  SbmParams params;
  params.block_sizes = {10};
  params.p_in = 1.5;
  EXPECT_DEATH(GenerateSbm(params, 1), "");
}

}  // namespace
}  // namespace reconcile
