// Topology discovery: cpulist parsing, a faked sysfs node tree, and the
// single-domain fallback every non-Linux / single-socket host takes.
#include "reconcile/util/topology.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

namespace fs = std::filesystem;

TEST(CpuListTest, ParsesSinglesRangesAndMixes) {
  std::vector<int> cpus;
  ASSERT_TRUE(ParseCpuList("0", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0}));
  ASSERT_TRUE(ParseCpuList("0-3", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_TRUE(ParseCpuList("0-2,5,7-8", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 5, 7, 8}));
  ASSERT_TRUE(ParseCpuList(" 4-5 \n", &cpus));  // sysfs lines end in \n
  EXPECT_EQ(cpus, (std::vector<int>{4, 5}));
}

TEST(CpuListTest, EmptyIsMemoryOnlyNode) {
  std::vector<int> cpus{99};
  ASSERT_TRUE(ParseCpuList("", &cpus));
  EXPECT_TRUE(cpus.empty());
  ASSERT_TRUE(ParseCpuList("\n", &cpus));
  EXPECT_TRUE(cpus.empty());
}

TEST(CpuListTest, RejectsMalformedInput) {
  std::vector<int> cpus;
  EXPECT_FALSE(ParseCpuList("a", &cpus));
  EXPECT_FALSE(ParseCpuList("1-", &cpus));
  EXPECT_FALSE(ParseCpuList("-3", &cpus));
  EXPECT_FALSE(ParseCpuList("5-2", &cpus));  // inverted range
  EXPECT_FALSE(ParseCpuList("1,,2", &cpus));
  EXPECT_FALSE(ParseCpuList("1;2", &cpus));
  // Values that would overflow int are malformed, not UB.
  EXPECT_FALSE(ParseCpuList("99999999999", &cpus));
  EXPECT_FALSE(ParseCpuList("0-99999999999", &cpus));
}

// Writes a /sys/devices/system/node-shaped tree under a temp dir.
class FakeSysfsTree {
 public:
  explicit FakeSysfsTree(const std::string& name) {
    root_ = fs::path(testing::TempDir()) / name;
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~FakeSysfsTree() { fs::remove_all(root_); }

  void AddNode(int id, const std::string& cpulist) {
    const fs::path dir = root_ / ("node" + std::to_string(id));
    fs::create_directories(dir);
    std::ofstream file(dir / "cpulist");
    file << cpulist << "\n";
  }

  void AddNoise(const std::string& name) {
    fs::create_directories(root_ / name);
  }

  std::string path() const { return root_.string(); }

 private:
  fs::path root_;
};

TEST(SysfsTopologyTest, ParsesTwoSocketTree) {
  FakeSysfsTree tree("reconcile_topo_two_socket");
  tree.AddNode(0, "0-3");
  tree.AddNode(1, "4-7");
  // The real sysfs dir also holds non-node entries; they must be ignored.
  tree.AddNoise("power");
  tree.AddNoise("online");

  MachineTopology topo;
  ASSERT_TRUE(ParseSysfsNodeTree(tree.path(), &topo));
  ASSERT_EQ(topo.num_domains(), 2);
  EXPECT_TRUE(topo.multi_domain());
  EXPECT_FALSE(topo.synthetic);
  EXPECT_EQ(topo.domains[0].id, 0);
  EXPECT_EQ(topo.domains[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.domains[1].id, 1);
  EXPECT_EQ(topo.domains[1].cpus, (std::vector<int>{4, 5, 6, 7}));
}

TEST(SysfsTopologyTest, SparseNodeIdsSortById) {
  FakeSysfsTree tree("reconcile_topo_sparse");
  tree.AddNode(2, "8-11");
  tree.AddNode(0, "0-3");
  MachineTopology topo;
  ASSERT_TRUE(ParseSysfsNodeTree(tree.path(), &topo));
  ASSERT_EQ(topo.num_domains(), 2);
  EXPECT_EQ(topo.domains[0].id, 0);
  EXPECT_EQ(topo.domains[1].id, 2);
}

TEST(SysfsTopologyTest, MemoryOnlyNodeParsesWithNoCpus) {
  FakeSysfsTree tree("reconcile_topo_memonly");
  tree.AddNode(0, "0-7");
  tree.AddNode(1, "");  // CXL-style memory-only node
  MachineTopology topo;
  ASSERT_TRUE(ParseSysfsNodeTree(tree.path(), &topo));
  ASSERT_EQ(topo.num_domains(), 2);
  EXPECT_TRUE(topo.domains[1].cpus.empty());
}

TEST(SysfsTopologyTest, MissingTreeFailsToParse) {
  MachineTopology topo;
  EXPECT_FALSE(ParseSysfsNodeTree(
      (fs::path(testing::TempDir()) / "reconcile_no_such_dir").string(),
      &topo));
}

TEST(SysfsTopologyTest, TreeWithoutNodesFailsToParse) {
  FakeSysfsTree tree("reconcile_topo_empty");
  tree.AddNoise("power");
  MachineTopology topo;
  EXPECT_FALSE(ParseSysfsNodeTree(tree.path(), &topo));
}

TEST(SysfsTopologyTest, MalformedCpuListFailsToParse) {
  FakeSysfsTree tree("reconcile_topo_bad");
  tree.AddNode(0, "0-3");
  tree.AddNode(1, "not-a-list");
  MachineTopology topo;
  EXPECT_FALSE(ParseSysfsNodeTree(tree.path(), &topo));
}

TEST(FallbackTopologyTest, SingleDomainCoversAllCpus) {
  MachineTopology topo = SingleDomainTopology();
  ASSERT_EQ(topo.num_domains(), 1);
  EXPECT_FALSE(topo.multi_domain());
  EXPECT_FALSE(topo.synthetic);
  EXPECT_FALSE(topo.domains[0].cpus.empty());
  EXPECT_EQ(topo.domains[0].cpus.front(), 0);
}

TEST(FallbackTopologyTest, SyntheticDomainsHaveNoCpus) {
  MachineTopology topo = SyntheticTopology(3);
  ASSERT_EQ(topo.num_domains(), 3);
  EXPECT_TRUE(topo.synthetic);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(topo.domains[static_cast<size_t>(d)].id, d);
    EXPECT_TRUE(topo.domains[static_cast<size_t>(d)].cpus.empty());
  }
  EXPECT_EQ(SyntheticTopology(0).num_domains(), 1);  // clamped low
  // Clamped high: absurd domain counts cannot become a memory bomb.
  EXPECT_EQ(SyntheticTopology(2000000000).num_domains(),
            kMaxSyntheticDomains);
}

TEST(FallbackTopologyTest, DetectTopologyAlwaysYieldsAtLeastOneDomain) {
  // Whatever this host looks like (the CI container is single-core), the
  // cached detection must land on a usable topology.
  const MachineTopology& topo = DetectTopology();
  EXPECT_GE(topo.num_domains(), 1);
}

}  // namespace
}  // namespace reconcile
