#include "reconcile/baseline/bp_matcher.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "reconcile/api/registry.h"
#include "reconcile/api/spec.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

struct Fixture {
  RealizationPair pair;
  std::vector<std::pair<NodeId, NodeId>> seeds;
};

Fixture MakeFixture() {
  Graph g = GenerateErdosRenyi(1200, 0.02, 9301);
  IndependentSampleOptions options;
  options.s1 = 0.8;
  options.s2 = 0.8;
  Fixture f;
  f.pair = SampleIndependent(g, options, 9303);
  SeedOptions seeding;
  seeding.fraction = 0.1;
  f.seeds = GenerateSeeds(f.pair, seeding, 9305);
  return f;
}

TEST(BpMatcherTest, FindsNewLinksWithUsefulPrecision) {
  Fixture f = MakeFixture();
  MatchResult result = BpMatch(f.pair.g1, f.pair.g2, f.seeds, {});
  MatchQuality q = Evaluate(f.pair, result);
  EXPECT_GT(q.new_good, 50u);
  EXPECT_GT(q.precision, 0.8);
  EXPECT_FALSE(result.phases.empty());
  // Per-sweep telemetry: the candidate graph is reported per phase.
  EXPECT_GT(result.phases.front().candidate_pairs, 0u);
}

TEST(BpMatcherTest, MatchingIsConsistent) {
  Fixture f = MakeFixture();
  MatchResult result = BpMatch(f.pair.g1, f.pair.g2, f.seeds, {});
  // One-to-one: every forward link has the matching backward link.
  for (NodeId u = 0; u < f.pair.g1.num_nodes(); ++u) {
    const NodeId v = result.map_1to2[u];
    if (v != kInvalidNode) {
      EXPECT_EQ(result.map_2to1[v], u);
    }
  }
  for (NodeId v = 0; v < f.pair.g2.num_nodes(); ++v) {
    const NodeId u = result.map_2to1[v];
    if (u != kInvalidNode) {
      EXPECT_EQ(result.map_1to2[u], v);
    }
  }
}

TEST(BpMatcherTest, SeedsAreKeptVerbatim) {
  Fixture f = MakeFixture();
  MatchResult result = BpMatch(f.pair.g1, f.pair.g2, f.seeds, {});
  for (const auto& [u, v] : f.seeds) {
    EXPECT_EQ(result.map_1to2[u], v);
    EXPECT_EQ(result.map_2to1[v], u);
  }
}

// The determinism contract every execution dimension in this codebase
// signs: matchings bit-identical across scheduler x grain x threads. BP
// message updates read only the previous iteration's arrays, so the loop
// partition is unobservable.
TEST(BpMatcherTest, BitIdenticalAcrossSchedulerGrainThreadsGrid) {
  Fixture f = MakeFixture();
  BpConfig reference_config;
  reference_config.num_threads = 1;
  reference_config.scheduler = Scheduler::kStatic;
  const MatchResult reference =
      BpMatch(f.pair.g1, f.pair.g2, f.seeds, reference_config);
  EXPECT_GT(reference.NumNewLinks(), 0u);

  for (Scheduler scheduler :
       {Scheduler::kStatic, Scheduler::kWorkStealing, Scheduler::kAuto}) {
    for (size_t grain : {size_t{0}, size_t{1}, size_t{64}}) {
      for (int threads : {1, 2, 5}) {
        BpConfig config;
        config.scheduler = scheduler;
        config.scheduler_grain = grain;
        config.num_threads = threads;
        const MatchResult run =
            BpMatch(f.pair.g1, f.pair.g2, f.seeds, config);
        EXPECT_EQ(run.map_1to2, reference.map_1to2)
            << "scheduler=" << SchedulerName(scheduler) << " grain=" << grain
            << " threads=" << threads;
        EXPECT_EQ(run.map_2to1, reference.map_2to1);
      }
    }
  }
}

// Registry dispatch equals direct invocation for a non-default config
// (the api_adapter_differential_test idiom, applied to bp's own knobs).
TEST(BpMatcherTest, RegistryDispatchEqualsDirectInvocation) {
  Fixture f = MakeFixture();
  BpConfig config;
  config.iterations = 4;
  config.damping = 0.25;
  config.prior = 1.0;
  config.min_belief = 0.5;
  config.max_candidates = 4;
  const MatchResult direct = BpMatch(f.pair.g1, f.pair.g2, f.seeds, config);
  auto reconciler = Registry::Global().CreateOrDie(
      ReconcilerSpec("bp")
          .Set("iterations", "4")
          .Set("damping", "0.25")
          .Set("prior", "1")
          .Set("min-belief", "0.5")
          .Set("max-candidates", "4"));
  const MatchResult adapted = reconciler->Run(f.pair.g1, f.pair.g2, f.seeds);
  EXPECT_EQ(direct.map_1to2, adapted.map_1to2);
  EXPECT_EQ(direct.map_2to1, adapted.map_2to1);
  EXPECT_EQ(direct.seeds, adapted.seeds);
}

TEST(BpMatcherTest, BadSpecsAreReportableErrors) {
  std::string error;
  EXPECT_EQ(Registry::Global().Create(
                ReconcilerSpec("bp").Set("damping", "1.5"), &error),
            nullptr);
  EXPECT_NE(error.find("damping"), std::string::npos);
  error.clear();
  EXPECT_EQ(Registry::Global().Create(
                ReconcilerSpec("bp").Set("max-candidates", "0"), &error),
            nullptr);
  EXPECT_NE(error.find("max-candidates"), std::string::npos);
}

TEST(BpMatcherTest, HigherBeliefFloorAcceptsASubsetPerSweep) {
  // Within one sweep the candidate graph and messages are identical for
  // any floor, so a higher floor's accepted links are a strict subset of a
  // lower floor's. (Across sweeps this is not monotone: early rejections
  // reshape later frontiers.)
  Fixture f = MakeFixture();
  BpConfig permissive;
  permissive.min_belief = 0.0;
  permissive.max_sweeps = 1;
  BpConfig strict = permissive;
  strict.min_belief = 1.5;
  const MatchResult loose =
      BpMatch(f.pair.g1, f.pair.g2, f.seeds, permissive);
  const MatchResult tight = BpMatch(f.pair.g1, f.pair.g2, f.seeds, strict);
  EXPECT_LT(tight.NumNewLinks(), loose.NumNewLinks());
  for (NodeId u = 0; u < f.pair.g1.num_nodes(); ++u) {
    if (tight.map_1to2[u] != kInvalidNode) {
      EXPECT_EQ(tight.map_1to2[u], loose.map_1to2[u]);
    }
  }
  const MatchQuality loose_q = Evaluate(f.pair, loose);
  const MatchQuality tight_q = Evaluate(f.pair, tight);
  EXPECT_GE(tight_q.precision, loose_q.precision);
}

}  // namespace
}  // namespace reconcile
