// Tests for the matcher's *blocker* semantics: matched nodes remain in the
// scored candidate pool (per the paper's "the pair with highest score in
// which either u or v appear"), so an impostor can only be matched by
// outscoring the genuine, already-matched account. This is the property
// that defeats the sybil attack.
#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/sampling/attack.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

// Hand-built sybil scenario. Underlying graph: hub 0 with neighbours
// 1..6, plus chords making 1..6 mutually distinguishable. Identity copies.
// In each copy, node 7 is a clone of the hub 0 wired to a *subset* of its
// neighbours. The genuine pair (0,0) must win and the clone pair (7,7)
// must never be accepted even after (0,0) is matched.
TEST(BlockerTest, ClonePairLosesToGenuinePairForever) {
  EdgeList edges(8);
  for (NodeId leaf = 1; leaf <= 6; ++leaf) edges.Add(0, leaf);
  edges.Add(1, 2);
  edges.Add(3, 4);
  edges.Add(5, 6);
  edges.Add(2, 3);
  // Clone 7 of hub 0 in both copies: g1-side subset {1,2,3,4}; g2-side
  // subset {3,4,5,6} — overlapping but distinct, as independent sampling
  // would produce.
  EdgeList e1 = edges, e2 = edges;
  for (NodeId u : {1, 2, 3, 4}) e1.Add(u, 7);
  for (NodeId u : {3, 4, 5, 6}) e2.Add(u, 7);
  Graph g1 = Graph::FromEdgeList(std::move(e1));
  Graph g2 = Graph::FromEdgeList(std::move(e2));

  MatcherConfig config;
  config.min_score = 1;
  config.num_iterations = 4;
  std::vector<std::pair<NodeId, NodeId>> seeds = {{1, 1}, {4, 4}, {6, 6}};
  MatchResult result = UserMatching(g1, g2, seeds, config);

  // The genuine hub is matched to itself...
  EXPECT_EQ(result.map_1to2[0], 0u);
  // ...and the clone is never matched to anything: every candidate pair
  // containing it is outscored by a pair containing the genuine hub.
  EXPECT_EQ(result.map_1to2[7], kInvalidNode);
  EXPECT_EQ(result.map_2to1[7], kInvalidNode);
}

TEST(BlockerTest, SybilsStayUnmatchedAtScale) {
  Graph g = GenerateErdosRenyi(800, 0.03, 71);
  IndependentSampleOptions sample;
  sample.s1 = sample.s2 = 0.75;
  RealizationPair pair = SampleIndependent(g, sample, 72);
  RealizationPair attacked = ApplyAttack(pair, {}, 73);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(attacked, seed_options, 74);
  MatcherConfig config;
  config.min_score = 2;
  MatchResult result = UserMatching(attacked.g1, attacked.g2, seeds, config);

  const NodeId n = g.num_nodes();
  size_t sybil_matches = 0;
  for (NodeId v = n; v < attacked.g1.num_nodes(); ++v) {
    if (result.map_1to2[v] != kInvalidNode) ++sybil_matches;
  }
  // A few sybils may sneak in on sparse corners, but the overwhelming
  // majority must be blocked.
  EXPECT_LT(sybil_matches, static_cast<size_t>(n) / 50);

  MatchQuality q = Evaluate(attacked, result);
  EXPECT_GT(q.precision, 0.97);
}

TEST(BlockerTest, BlockedImpostorDoesNotStealLowDegreeNodes) {
  // Node x (degree 2) has true match x2. A structural near-twin y2 exists.
  // Once enough witnesses accumulate, (x, x2) must win; y2, already matched
  // to its own counterpart y, must block nothing incorrectly.
  EdgeList base(6);
  base.Add(0, 2);  // x = 2's neighbours: 0, 1
  base.Add(1, 2);
  base.Add(0, 3);  // y = 3's neighbours: 0, 1 (twin of 2!)
  base.Add(1, 3);
  base.Add(3, 4);  // ...but y also has 4, breaking the symmetry
  base.Add(4, 5);
  Graph g = Graph::FromEdgeList(std::move(base));
  MatcherConfig config;
  config.min_score = 1;
  config.num_iterations = 4;
  // Seed everything except the twins 2 and 3.
  std::vector<std::pair<NodeId, NodeId>> seeds = {
      {0, 0}, {1, 1}, {4, 4}, {5, 5}};
  MatchResult result = UserMatching(g, g, seeds, config);
  // y=3 is disambiguated by witness 4: score(3,3)=3 > score(3,2)=2, and for
  // x=2: score(2,2)=2 ties score(2,3)=2 while 3 is... (2,3) has witnesses
  // 0,1 only = 2; (2,2) = 2. The pair (3,3) wins for node 3; after it is
  // matched it keeps blocking (2,3), letting (2,2) be unique-best in a
  // later round only if strictly ahead — (2,3) stays scored at 2, tying
  // (2,2). Conservative behaviour: 2 stays unmatched. Verify exactly that.
  EXPECT_EQ(result.map_1to2[3], 3u);
  EXPECT_EQ(result.map_1to2[2], kInvalidNode);
}

TEST(BlockerTest, EnginesAgreeUnderAttack) {
  Graph g = GenerateErdosRenyi(400, 0.04, 75);
  RealizationPair pair = SampleIndependent(g, {}, 76);
  RealizationPair attacked = ApplyAttack(pair, {}, 77);
  SeedOptions seed_options;
  seed_options.fraction = 0.15;
  auto seeds = GenerateSeeds(attacked, seed_options, 78);
  MatcherConfig incremental;
  MatcherConfig reference;
  reference.use_incremental_scoring = false;
  MatchResult a = UserMatching(attacked.g1, attacked.g2, seeds, incremental);
  MatchResult b = UserMatching(attacked.g1, attacked.g2, seeds, reference);
  EXPECT_EQ(a.map_1to2, b.map_1to2);
}

}  // namespace
}  // namespace reconcile
