// MatcherState as a resumable object: a snapshot taken between rounds must
// restore into a state that finishes with a matching bit-identical to the
// uninterrupted run — across both scoring backends, multi-tier LSM stacks
// and a forced multi-domain synthetic placement — and every corruption or
// mismatch (truncation, bit flips, wrong graph, wrong config, wrong seeds)
// must be a clean LoadSnapshot failure that leaves the state untouched.
#include "reconcile/core/matcher_state.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"
#include "reconcile/util/checkpoint.h"

namespace reconcile {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

struct Workload {
  RealizationPair pair;
  std::vector<std::pair<NodeId, NodeId>> seeds;
};

// Chung-Lu with hubs: several rounds of real link discovery, so mid-run
// snapshots capture a non-trivial score state.
Workload MakeWorkload(uint64_t rng_seed) {
  Graph g = GenerateChungLu(PowerLawWeights(1200, 2.2, 12.0), rng_seed);
  IndependentSampleOptions options;
  options.s1 = 0.6;
  options.s2 = 0.6;
  Workload w;
  w.pair = SampleIndependent(g, options, rng_seed + 1);
  SeedOptions seeding;
  seeding.fraction = 0.08;
  w.seeds = GenerateSeeds(w.pair, seeding, rng_seed + 2);
  return w;
}

MatchResult RunToCompletion(const Workload& w, const MatcherConfig& config) {
  MatcherState state(w.pair.g1, w.pair.g2, config);
  state.SeedLinks(w.seeds);
  while (!state.Done()) state.RunRound();
  return state.TakeResult(0.0);
}

// The central invariant: snapshot after `pause_after` rounds, restore into
// a brand-new state, run both to completion — identical matchings.
void CheckResumeEquivalence(const Workload& w, const MatcherConfig& config,
                            int pause_after, const std::string& tag) {
  const std::string path = TempPath("resume_" + tag + ".ckpt");

  MatcherState original(w.pair.g1, w.pair.g2, config);
  original.SeedLinks(w.seeds);
  for (int i = 0; i < pause_after && !original.Done(); ++i) {
    original.RunRound();
  }
  std::string error;
  ASSERT_TRUE(original.SaveSnapshot(path, &error)) << error;
  while (!original.Done()) original.RunRound();
  MatchResult uninterrupted = original.TakeResult(0.0);

  MatcherState resumed(w.pair.g1, w.pair.g2, config);
  resumed.SeedLinks(w.seeds);
  ASSERT_TRUE(resumed.LoadSnapshot(path, &error)) << error;
  while (!resumed.Done()) resumed.RunRound();
  MatchResult continued = resumed.TakeResult(0.0);

  ASSERT_EQ(continued.map_1to2, uninterrupted.map_1to2) << tag;
  ASSERT_EQ(continued.map_2to1, uninterrupted.map_2to1) << tag;
  std::remove(path.c_str());
}

TEST(MatcherStateTest, RunRoundReplaysTheDriverScheduleExactly) {
  Workload w = MakeWorkload(9001);
  MatcherConfig config;
  config.num_shards = 4;
  MatchResult via_driver = UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
  MatchResult via_state = RunToCompletion(w, config);
  ASSERT_GT(via_driver.NumNewLinks(), 0u);
  EXPECT_EQ(via_state.map_1to2, via_driver.map_1to2);
  EXPECT_EQ(via_state.map_2to1, via_driver.map_2to1);
}

TEST(MatcherStateTest, ResumeEquivalenceAcrossBackendsAndPausePoints) {
  Workload w = MakeWorkload(9002);
  for (ScoringBackend backend :
       {ScoringBackend::kRadixSort, ScoringBackend::kHashMap}) {
    for (int pause_after : {1, 3, 7}) {
      MatcherConfig config;
      config.scoring_backend = backend;
      config.num_shards = 4;
      const std::string tag =
          std::string(backend == ScoringBackend::kRadixSort ? "radix"
                                                            : "hash") +
          "_p" + std::to_string(pause_after);
      SCOPED_TRACE(tag);
      CheckResumeEquivalence(w, config, pause_after, tag);
    }
  }
}

TEST(MatcherStateTest, ResumeEquivalenceWithMultiTierLsmStacks) {
  // High tier cap + disabled ratio trigger: snapshots capture stacks of
  // several unmerged tiers, and the restored stacks must replay the same
  // future compaction schedule.
  Workload w = MakeWorkload(9003);
  MatcherConfig config;
  config.scoring_backend = ScoringBackend::kRadixSort;
  config.num_shards = 4;
  config.lsm_max_tiers = 8;
  config.lsm_size_ratio = 0.0;
  CheckResumeEquivalence(w, config, 4, "lsm8");
}

TEST(MatcherStateTest, ResumeEquivalenceUnderSyntheticPlacement) {
  // Forced 3-domain synthetic topology: save/load must be placement-
  // agnostic, and the resumed run must stay bit-identical with domain
  // homing active.
  Workload w = MakeWorkload(9004);
  MatcherConfig config;
  config.num_shards = 6;
  config.placement = PlacementPolicy::kDomain;
  config.placement_domains = 3;
  CheckResumeEquivalence(w, config, 3, "placed3");
}

TEST(MatcherStateTest, SnapshotPortableAcrossExecutionKnobs) {
  // Execution knobs are not fingerprinted: a snapshot taken under one
  // scheduler/thread/placement combination must restore under another and
  // still produce the canonical matching (shard count held fixed — it
  // shapes the persisted score state).
  Workload w = MakeWorkload(9005);
  MatcherConfig writer_config;
  writer_config.num_shards = 4;
  writer_config.scheduler = Scheduler::kWorkStealing;

  const std::string path = TempPath("portable.ckpt");
  MatcherState original(w.pair.g1, w.pair.g2, writer_config);
  original.SeedLinks(w.seeds);
  original.RunRound();
  original.RunRound();
  std::string error;
  ASSERT_TRUE(original.SaveSnapshot(path, &error)) << error;
  while (!original.Done()) original.RunRound();
  MatchResult uninterrupted = original.TakeResult(0.0);

  MatcherConfig reader_config = writer_config;
  reader_config.scheduler = Scheduler::kStatic;
  reader_config.num_threads = 1;
  reader_config.placement = PlacementPolicy::kDomain;
  reader_config.placement_domains = 2;
  MatcherState resumed(w.pair.g1, w.pair.g2, reader_config);
  resumed.SeedLinks(w.seeds);
  ASSERT_TRUE(resumed.LoadSnapshot(path, &error)) << error;
  while (!resumed.Done()) resumed.RunRound();
  MatchResult continued = resumed.TakeResult(0.0);

  EXPECT_EQ(continued.map_1to2, uninterrupted.map_1to2);
  EXPECT_EQ(continued.map_2to1, uninterrupted.map_2to1);
  std::remove(path.c_str());
}

TEST(MatcherStateTest, RadixSnapshotRoundTripsByteIdentically) {
  // The radix score state serializes canonically (sorted runs, explicit
  // tier boundaries), so save -> load -> save is byte-identical. (The hash
  // backend's table layout may legitimately differ after reload; its
  // resume equivalence is covered above.)
  Workload w = MakeWorkload(9006);
  MatcherConfig config;
  config.scoring_backend = ScoringBackend::kRadixSort;
  config.num_shards = 4;
  config.lsm_max_tiers = 4;

  const std::string first = TempPath("golden_first.ckpt");
  const std::string second = TempPath("golden_second.ckpt");
  MatcherState original(w.pair.g1, w.pair.g2, config);
  original.SeedLinks(w.seeds);
  original.RunRound();
  original.RunRound();
  original.RunRound();
  std::string error;
  ASSERT_TRUE(original.SaveSnapshot(first, &error)) << error;

  MatcherState reloaded(w.pair.g1, w.pair.g2, config);
  reloaded.SeedLinks(w.seeds);
  ASSERT_TRUE(reloaded.LoadSnapshot(first, &error)) << error;
  ASSERT_TRUE(reloaded.SaveSnapshot(second, &error)) << error;

  EXPECT_EQ(Slurp(first), Slurp(second));
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(MatcherStateTest, CursorAccessorsSurviveTheRoundTrip) {
  Workload w = MakeWorkload(9007);
  MatcherConfig config;
  config.num_shards = 4;
  const std::string path = TempPath("cursor.ckpt");

  MatcherState original(w.pair.g1, w.pair.g2, config);
  original.SeedLinks(w.seeds);
  original.RunRound();
  original.RunRound();
  original.RunRound();
  std::string error;
  ASSERT_TRUE(original.SaveSnapshot(path, &error)) << error;

  MatcherState resumed(w.pair.g1, w.pair.g2, config);
  resumed.SeedLinks(w.seeds);
  ASSERT_TRUE(resumed.LoadSnapshot(path, &error)) << error;
  EXPECT_EQ(resumed.completed_rounds(), original.completed_rounds());
  EXPECT_EQ(resumed.iteration(), original.iteration());
  EXPECT_EQ(resumed.current_bucket(), original.current_bucket());
  EXPECT_EQ(resumed.num_links(), original.num_links());
  EXPECT_EQ(resumed.num_seeds(), original.num_seeds());
  std::remove(path.c_str());
}

// --- Rejection paths ------------------------------------------------------

class SnapshotRejectionTest : public testing::Test {
 protected:
  void SetUp() override {
    w_ = MakeWorkload(9008);
    config_.num_shards = 4;
    path_ = TempPath("reject.ckpt");
    MatcherState state(w_.pair.g1, w_.pair.g2, config_);
    state.SeedLinks(w_.seeds);
    state.RunRound();
    state.RunRound();
    std::string error;
    ASSERT_TRUE(state.SaveSnapshot(path_, &error)) << error;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // Loads `path` into a fresh state; on expected failure, verifies the
  // state is untouched by checking it still finishes like a never-loaded
  // run.
  void ExpectRejectedAndStateIntact(const std::string& path,
                                    const std::string& why_substring) {
    MatcherState state(w_.pair.g1, w_.pair.g2, config_);
    state.SeedLinks(w_.seeds);
    std::string error;
    ASSERT_FALSE(state.LoadSnapshot(path, &error));
    EXPECT_NE(error.find(why_substring), std::string::npos) << error;
    EXPECT_EQ(state.completed_rounds(), 0);
    EXPECT_EQ(state.num_links(), w_.seeds.size());
    while (!state.Done()) state.RunRound();
    MatchResult after_rejection = state.TakeResult(0.0);
    MatchResult reference = RunToCompletion(w_, config_);
    EXPECT_EQ(after_rejection.map_1to2, reference.map_1to2);
  }

  Workload w_;
  MatcherConfig config_;
  std::string path_;
};

TEST_F(SnapshotRejectionTest, TruncatedSnapshotRejected) {
  const std::vector<char> whole = Slurp(path_);
  const std::string cut = TempPath("reject_cut.ckpt");
  std::ofstream(cut, std::ios::binary)
      .write(whole.data(), static_cast<std::streamsize>(whole.size() / 2));
  ExpectRejectedAndStateIntact(cut, "");
  std::remove(cut.c_str());
}

TEST_F(SnapshotRejectionTest, BitFlippedSnapshotRejected) {
  std::vector<char> bytes = Slurp(path_);
  bytes[bytes.size() / 2] ^= 0x40;  // lands in a section payload
  const std::string flipped = TempPath("reject_flip.ckpt");
  std::ofstream(flipped, std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ExpectRejectedAndStateIntact(flipped, "");
  std::remove(flipped.c_str());
}

TEST_F(SnapshotRejectionTest, WrongGraphRejected) {
  Workload other = MakeWorkload(777);
  MatcherState state(other.pair.g1, other.pair.g2, config_);
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 0}};
  state.SeedLinks(seeds);
  std::string error;
  ASSERT_FALSE(state.LoadSnapshot(path_, &error));
  EXPECT_NE(error.find("different graph"), std::string::npos) << error;
}

TEST_F(SnapshotRejectionTest, WrongConfigRejected) {
  MatcherConfig other = config_;
  other.min_score = config_.min_score + 3;
  MatcherState state(w_.pair.g1, w_.pair.g2, other);
  state.SeedLinks(w_.seeds);
  std::string error;
  ASSERT_FALSE(state.LoadSnapshot(path_, &error));
  EXPECT_NE(error.find("config mismatch"), std::string::npos) << error;
}

TEST_F(SnapshotRejectionTest, WrongBackendRejected) {
  MatcherConfig other = config_;
  other.scoring_backend = config_.scoring_backend == ScoringBackend::kRadixSort
                              ? ScoringBackend::kHashMap
                              : ScoringBackend::kRadixSort;
  MatcherState state(w_.pair.g1, w_.pair.g2, other);
  state.SeedLinks(w_.seeds);
  std::string error;
  ASSERT_FALSE(state.LoadSnapshot(path_, &error));
  EXPECT_NE(error.find("config mismatch"), std::string::npos) << error;
}

TEST_F(SnapshotRejectionTest, WrongShardCountRejected) {
  MatcherConfig other = config_;
  other.num_shards = config_.num_shards + 1;
  MatcherState state(w_.pair.g1, w_.pair.g2, other);
  state.SeedLinks(w_.seeds);
  std::string error;
  ASSERT_FALSE(state.LoadSnapshot(path_, &error));
  EXPECT_NE(error.find("config mismatch"), std::string::npos) << error;
}

TEST_F(SnapshotRejectionTest, WrongSeedsRejected) {
  MatcherState state(w_.pair.g1, w_.pair.g2, config_);
  std::vector<std::pair<NodeId, NodeId>> seeds(w_.seeds.begin(),
                                               w_.seeds.end() - 1);
  state.SeedLinks(seeds);
  std::string error;
  ASSERT_FALSE(state.LoadSnapshot(path_, &error));
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
}

TEST_F(SnapshotRejectionTest, MissingFileRejected) {
  MatcherState state(w_.pair.g1, w_.pair.g2, config_);
  state.SeedLinks(w_.seeds);
  std::string error;
  ASSERT_FALSE(state.LoadSnapshot(TempPath("no_such.ckpt"), &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace reconcile
