// Shard placement: policy resolution/parsing, shard and worker homing, and
// the domain-biased placed parallel-for (coverage, counters, inactive
// delegation). Everything here runs on synthetic topologies so the
// multi-domain paths are exercised regardless of the host.
#include "reconcile/util/placement.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/util/thread_pool.h"
#include "reconcile/util/topology.h"

namespace reconcile {
namespace {

TEST(PlacementPolicyTest, ParseAndNameRoundTrip) {
  for (PlacementPolicy policy :
       {PlacementPolicy::kAuto, PlacementPolicy::kNone,
        PlacementPolicy::kInterleave, PlacementPolicy::kDomain}) {
    PlacementPolicy parsed;
    ASSERT_TRUE(ParsePlacement(PlacementName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  PlacementPolicy out;
  EXPECT_FALSE(ParsePlacement("numa", &out));
  EXPECT_FALSE(ParsePlacement("", &out));
}

TEST(PlacementPolicyTest, ExplicitPoliciesPassThroughResolve) {
  const MachineTopology multi = SyntheticTopology(2);
  EXPECT_EQ(ResolvePlacement(PlacementPolicy::kNone, multi),
            PlacementPolicy::kNone);
  EXPECT_EQ(ResolvePlacement(PlacementPolicy::kInterleave, multi),
            PlacementPolicy::kInterleave);
  EXPECT_EQ(ResolvePlacement(PlacementPolicy::kDomain, multi),
            PlacementPolicy::kDomain);
}

TEST(ShardPlacementTest, InactiveOnSingleDomainOrNonePolicy) {
  ShardPlacement single(SingleDomainTopology(), PlacementPolicy::kDomain, 8,
                        4);
  EXPECT_FALSE(single.active());
  EXPECT_EQ(single.HomeOfShard(5), 0);
  ShardPlacement none(SyntheticTopology(4), PlacementPolicy::kNone, 8, 4);
  EXPECT_FALSE(none.active());
  EXPECT_EQ(none.DomainOfWorker(3), 0);
}

TEST(ShardPlacementTest, InterleaveHomesRoundRobin) {
  ShardPlacement placement(SyntheticTopology(3), PlacementPolicy::kInterleave,
                           8, 6);
  ASSERT_TRUE(placement.active());
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(placement.HomeOfShard(s), s % 3) << "shard " << s;
  }
}

TEST(ShardPlacementTest, DomainHomesContiguousBlocks) {
  ShardPlacement placement(SyntheticTopology(2), PlacementPolicy::kDomain, 8,
                           4);
  ASSERT_TRUE(placement.active());
  for (int s = 0; s < 4; ++s) EXPECT_EQ(placement.HomeOfShard(s), 0);
  for (int s = 4; s < 8; ++s) EXPECT_EQ(placement.HomeOfShard(s), 1);
  // Homes never decrease along the shard axis (contiguous key ranges).
  ShardPlacement odd(SyntheticTopology(3), PlacementPolicy::kDomain, 7, 4);
  int prev = 0;
  for (int s = 0; s < 7; ++s) {
    EXPECT_GE(odd.HomeOfShard(s), prev);
    prev = odd.HomeOfShard(s);
  }
  EXPECT_EQ(odd.HomeOfShard(6), 2);  // every domain gets shards
}

TEST(ShardPlacementTest, WorkersSplitAcrossDomains) {
  ShardPlacement placement(SyntheticTopology(2), PlacementPolicy::kDomain, 8,
                           4);
  EXPECT_EQ(placement.DomainOfWorker(0), 0);
  EXPECT_EQ(placement.DomainOfWorker(1), 0);
  EXPECT_EQ(placement.DomainOfWorker(2), 1);
  EXPECT_EQ(placement.DomainOfWorker(3), 1);
  // Out-of-range workers (pool grew, fallback ids) clamp to domain 0.
  EXPECT_EQ(placement.DomainOfWorker(-1), 0);
  EXPECT_EQ(placement.DomainOfWorker(99), 0);
}

TEST(ShardPlacementTest, WorkerSplitFollowsCpuWeights) {
  // Real (non-synthetic) domains with lopsided CPU counts: 6 vs 2 CPUs
  // should put ~3/4 of the workers on domain 0.
  MachineTopology topo;
  topo.domains.resize(2);
  topo.domains[0].id = 0;
  topo.domains[0].cpus = {0, 1, 2, 3, 4, 5};
  topo.domains[1].id = 1;
  topo.domains[1].cpus = {6, 7};
  ShardPlacement placement(topo, PlacementPolicy::kDomain, 8, 8);
  int on_domain0 = 0;
  for (int w = 0; w < 8; ++w) {
    if (placement.DomainOfWorker(w) == 0) ++on_domain0;
  }
  EXPECT_EQ(on_domain0, 6);
}

// The placed loop must execute every index exactly once no matter how the
// claims interleave, and the counters must account for every task.
TEST(PlacedParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int domains : {2, 3, 5}) {
    ShardPlacement placement(SyntheticTopology(domains),
                             PlacementPolicy::kInterleave, 16,
                             pool.num_threads());
    ASSERT_TRUE(placement.active());
    const size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    PlacedLoopStats stats;
    placement.ParallelForPlaced(
        &pool, Scheduler::kAuto, n,
        [&placement](size_t i) {
          return placement.HomeOfShard(static_cast<int>(i % 16));
        },
        [&hits](size_t i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        &stats);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " domains " << domains;
    }
    EXPECT_EQ(stats.local_tasks + stats.remote_steals, n);
  }
}

TEST(PlacedParallelForTest, InactivePlacementDelegatesAndCountsLocal) {
  ThreadPool pool(4);
  ShardPlacement placement(SingleDomainTopology(), PlacementPolicy::kDomain,
                           8, pool.num_threads());
  ASSERT_FALSE(placement.active());
  const size_t n = 200;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  PlacedLoopStats stats;
  placement.ParallelForPlaced(
      &pool, Scheduler::kAuto, n, [](size_t) { return 0; },
      [&hits](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      &stats);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  EXPECT_EQ(stats.local_tasks, n);
  EXPECT_EQ(stats.remote_steals, 0u);
}

TEST(PlacedParallelForTest, SerialAndTinyInputsStillCover) {
  ShardPlacement placement(SyntheticTopology(2), PlacementPolicy::kDomain, 4,
                           1);
  // Null pool: the delegate path must run everything inline.
  int count = 0;
  placement.ParallelForPlaced(
      nullptr, Scheduler::kAuto, 5, [](size_t) { return 1; },
      [&count](size_t) { ++count; });
  EXPECT_EQ(count, 5);
  // n = 1 short-circuits below the placed machinery.
  ThreadPool pool(3);
  std::atomic<int> one{0};
  placement.ParallelForPlaced(
      &pool, Scheduler::kAuto, 1, [](size_t) { return 1; },
      [&one](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

// A domain with zero workers (more domains than pool threads): all of its
// items must still run, surfacing as remote steals.
TEST(PlacedParallelForTest, DomainsWithoutWorkersAreStolenDry) {
  ThreadPool pool(2);
  ShardPlacement placement(SyntheticTopology(4), PlacementPolicy::kInterleave,
                           4, pool.num_threads());
  ASSERT_TRUE(placement.active());
  const size_t n = 100;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  PlacedLoopStats stats;
  placement.ParallelForPlaced(
      &pool, Scheduler::kAuto, n,
      [&placement](size_t i) {
        return placement.HomeOfShard(static_cast<int>(i % 4));
      },
      [&hits](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      &stats);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  EXPECT_EQ(stats.local_tasks + stats.remote_steals, n);
  EXPECT_GT(stats.remote_steals, 0u);
}

}  // namespace
}  // namespace reconcile
