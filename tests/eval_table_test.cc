#include "reconcile/eval/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(TableTest, PrintsHeaderAndRows) {
  Table table({"Pr", "Good", "Bad"});
  table.AddRow({"10%", "42797", "58"});
  table.AddRow({"5%", "11091", "43"});
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("Pr"), std::string::npos);
  EXPECT_NE(text.find("42797"), std::string::npos);
  EXPECT_NE(text.find("11091"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableTest, ColumnsAligned) {
  Table table({"A", "B"});
  table.AddRow({"x", "longvalue"});
  table.AddRow({"longervalue", "y"});
  std::ostringstream out;
  table.Print(out);
  // Every line should have the same position for column B's start.
  std::istringstream lines(out.str());
  std::string header, underline, row1, row2;
  std::getline(lines, header);
  std::getline(lines, underline);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find("B"), row1.find("longvalue"));
  EXPECT_EQ(row1.find("longvalue"), row2.find("y"));
}

TEST(TableTest, EmptyTableJustHeader) {
  Table table({"Only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("Only"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableDeathTest, WrongArityRejected) {
  Table table({"A", "B"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "Check failed");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.5), "50.00%");
  EXPECT_EQ(FormatPercent(0.99371, 1), "99.4%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

}  // namespace
}  // namespace reconcile
