#include "reconcile/util/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(rng.Next());
  EXPECT_EQ(values.size(), 100u);  // no short cycles / stuck state
}

TEST(RngTest, ReseedRestoresStream) {
  Rng rng(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.Next());
  rng.Reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntBoundOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformInt(kBuckets)];
  }
  // Each bucket expects 10000; allow 5% deviation (≈16 sigma).
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets / 20);
  }
}

TEST(RngTest, UniformIntInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t x = rng.UniformIntInRange(3, 6);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 6u);
    saw_lo |= (x == 3);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double x = rng.UniformReal();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerateProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, GeometricMeanMatchesTheory) {
  Rng rng(19);
  constexpr double kP = 0.1;
  constexpr int kSamples = 100000;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(rng.Geometric(kP));
  // Mean of failures-before-success is (1-p)/p = 9.
  EXPECT_NEAR(sum / kSamples, (1 - kP) / kP, 0.2);
}

TEST(RngTest, GeometricWithPOneIsZero) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork(1);
  Rng child2 = parent.Fork(1);  // parent state advanced -> different child
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child.Next() == child2.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, HashMix64SpreadsBits) {
  // Sequential inputs should produce well-spread outputs.
  std::set<uint64_t> high_bytes;
  for (uint64_t i = 0; i < 256; ++i) {
    high_bytes.insert(HashMix64(i) >> 56);
  }
  EXPECT_GT(high_bytes.size(), 150u);
}

}  // namespace
}  // namespace reconcile
