#include "reconcile/sampling/independent.h"

#include <cmath>

#include <gtest/gtest.h>

#include "reconcile/gen/erdos_renyi.h"

namespace reconcile {
namespace {

Graph TestGraph() { return GenerateErdosRenyi(2000, 0.01, 42); }

TEST(IndependentSamplingTest, GroundTruthMapsAreConsistent) {
  Graph g = TestGraph();
  IndependentSampleOptions options;
  RealizationPair pair = SampleIndependent(g, options, 7);
  ASSERT_EQ(pair.map_1to2.size(), g.num_nodes());
  ASSERT_EQ(pair.map_2to1.size(), g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    NodeId v = pair.map_1to2[u];
    ASSERT_NE(v, kInvalidNode);
    ASSERT_EQ(pair.map_2to1[v], u);
  }
}

TEST(IndependentSamplingTest, EdgeSurvivalRateMatchesS) {
  Graph g = TestGraph();
  IndependentSampleOptions options;
  options.s1 = 0.7;
  options.s2 = 0.3;
  RealizationPair pair = SampleIndependent(g, options, 9);
  double rate1 = static_cast<double>(pair.g1.num_edges()) / g.num_edges();
  double rate2 = static_cast<double>(pair.g2.num_edges()) / g.num_edges();
  EXPECT_NEAR(rate1, 0.7, 0.05);
  EXPECT_NEAR(rate2, 0.3, 0.05);
}

TEST(IndependentSamplingTest, CopiesAreSubgraphsUnderTruth) {
  Graph g = TestGraph();
  IndependentSampleOptions options;
  RealizationPair pair = SampleIndependent(g, options, 11);
  // Every edge of g1 is an edge of g (same labels on side 1).
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    for (NodeId v : pair.g1.Neighbors(u)) {
      if (v > u) {
        EXPECT_TRUE(g.HasEdge(u, v));
      }
    }
  }
  // Every edge of g2, pulled back through the ground truth, is in g.
  for (NodeId u2 = 0; u2 < pair.g2.num_nodes(); ++u2) {
    NodeId u = pair.map_2to1[u2];
    for (NodeId v2 : pair.g2.Neighbors(u2)) {
      if (v2 < u2) continue;
      NodeId v = pair.map_2to1[v2];
      EXPECT_TRUE(g.HasEdge(u, v));
    }
  }
}

TEST(IndependentSamplingTest, G2LabelsArePermuted) {
  Graph g = TestGraph();
  RealizationPair pair = SampleIndependent(g, {}, 13);
  size_t fixed = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (pair.map_1to2[u] == u) ++fixed;
  }
  EXPECT_LT(fixed, 20u);  // a uniform permutation has ~1 fixed point
}

TEST(IndependentSamplingTest, SFullKeepsEverything) {
  Graph g = TestGraph();
  IndependentSampleOptions options;
  options.s1 = 1.0;
  options.s2 = 1.0;
  RealizationPair pair = SampleIndependent(g, options, 17);
  EXPECT_EQ(pair.g1.num_edges(), g.num_edges());
  EXPECT_EQ(pair.g2.num_edges(), g.num_edges());
}

TEST(IndependentSamplingTest, SZeroDropsEverything) {
  Graph g = TestGraph();
  IndependentSampleOptions options;
  options.s1 = 0.0;
  options.s2 = 0.5;
  RealizationPair pair = SampleIndependent(g, options, 19);
  EXPECT_EQ(pair.g1.num_edges(), 0u);
  EXPECT_GT(pair.g2.num_edges(), 0u);
}

TEST(IndependentSamplingTest, NodeDeletionIsolatesAndUnmaps) {
  Graph g = TestGraph();
  IndependentSampleOptions options;
  options.node_keep1 = 0.6;
  RealizationPair pair = SampleIndependent(g, options, 21);
  size_t unmapped = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (pair.map_1to2[u] == kInvalidNode) ++unmapped;
  }
  double frac = static_cast<double>(unmapped) / g.num_nodes();
  EXPECT_NEAR(frac, 0.4, 0.05);
}

TEST(IndependentSamplingTest, NoiseAddsEdges) {
  Graph g = TestGraph();
  IndependentSampleOptions base, noisy;
  noisy.noise1 = 0.2;
  RealizationPair clean = SampleIndependent(g, base, 23);
  RealizationPair dirty = SampleIndependent(g, noisy, 23);
  EXPECT_GT(dirty.g1.num_edges(), clean.g1.num_edges());
}

TEST(IndependentSamplingTest, IndependentCopiesDiffer) {
  Graph g = TestGraph();
  RealizationPair pair = SampleIndependent(g, {}, 25);
  // With s=0.5 the two copies share ~25% of underlying edges; they must not
  // be identical when pulled back to underlying labels.
  size_t shared = 0, only1 = 0;
  std::vector<NodeId> inv = pair.map_1to2;
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    for (NodeId v : pair.g1.Neighbors(u)) {
      if (v <= u) continue;
      if (pair.g2.HasEdge(inv[u], inv[v])) {
        ++shared;
      } else {
        ++only1;
      }
    }
  }
  EXPECT_GT(shared, 0u);
  EXPECT_GT(only1, 0u);
  double shared_rate = static_cast<double>(shared) / g.num_edges();
  EXPECT_NEAR(shared_rate, 0.25, 0.05);  // s1*s2 of underlying edges
}

TEST(IndependentSamplingTest, Deterministic) {
  Graph g = TestGraph();
  RealizationPair a = SampleIndependent(g, {}, 31);
  RealizationPair b = SampleIndependent(g, {}, 31);
  EXPECT_EQ(a.g1.num_edges(), b.g1.num_edges());
  EXPECT_EQ(a.g2.num_edges(), b.g2.num_edges());
  EXPECT_EQ(a.map_1to2, b.map_1to2);
}

TEST(IndependentSamplingTest, NumIdentifiableCountsDegreeOnePlus) {
  Graph g = TestGraph();
  IndependentSampleOptions options;
  options.s1 = 0.2;  // sparse: many isolated nodes in copies
  options.s2 = 0.2;
  RealizationPair pair = SampleIndependent(g, options, 33);
  size_t manual = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    NodeId v = pair.map_1to2[u];
    if (v != kInvalidNode && pair.g1.degree(u) >= 1 && pair.g2.degree(v) >= 1) {
      ++manual;
    }
  }
  EXPECT_EQ(pair.NumIdentifiable(), manual);
  EXPECT_LT(pair.NumIdentifiable(), static_cast<size_t>(g.num_nodes()));
}

}  // namespace
}  // namespace reconcile
