// Work-stealing scheduler primitive: every index of [0, n) must be executed
// exactly once on a disjoint chunk no larger than the grain, for any
// thread count, grain, and steal schedule — including adversarially skewed
// per-item work, which is the scheduler's reason to exist.
#include "reconcile/util/parallel_for.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(WorkStealingTest, CoversWholeRangeOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    for (size_t n : {size_t{1}, size_t{5}, size_t{1000}, size_t{4096}}) {
      for (size_t grain : {size_t{1}, size_t{37}, size_t{512}}) {
        std::vector<std::atomic<int>> touched(n);
        ParallelForWorkStealing(&pool, n, grain,
                                [&touched](size_t begin, size_t end) {
                                  for (size_t i = begin; i < end; ++i) {
                                    touched[i].fetch_add(1);
                                  }
                                });
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(touched[i].load(), 1)
              << "threads=" << threads << " n=" << n << " grain=" << grain
              << " i=" << i;
        }
      }
    }
  }
}

TEST(WorkStealingTest, EmptyRangeIsNoOp) {
  ThreadPool pool(3);
  bool called = false;
  ParallelForWorkStealing(&pool, 0, 8,
                          [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(WorkStealingTest, NullPoolRunsSerially) {
  std::atomic<size_t> total{0};
  ParallelForWorkStealing(nullptr, 100, 7,
                          [&total](size_t begin, size_t end) {
                            total.fetch_add(end - begin);
                          });
  EXPECT_EQ(total.load(), 100u);
}

TEST(WorkStealingTest, GrainLargerThanRangeRunsInOneCall) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::atomic<size_t> total{0};
  ParallelForWorkStealing(&pool, 5, 1000,
                          [&calls, &total](size_t begin, size_t end) {
                            calls.fetch_add(1);
                            total.fetch_add(end - begin);
                          });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(total.load(), 5u);
}

TEST(WorkStealingTest, ChunksRespectGrain) {
  ThreadPool pool(4);
  constexpr size_t kGrain = 16;
  std::atomic<int> oversized{0};
  ParallelForWorkStealing(&pool, 10000, kGrain,
                          [&oversized](size_t begin, size_t end) {
                            // Initial per-worker split and steals may hand
                            // out large *ranges*, but each fn call claims at
                            // most one grain.
                            if (end - begin > kGrain) oversized.fetch_add(1);
                          });
  EXPECT_EQ(oversized.load(), 0);
}

// Adversarial skew: item 0 costs ~10000x the others (a hub). The stealing
// schedule must still cover everything exactly once.
TEST(WorkStealingTest, SkewedItemCostStillCoversRange) {
  ThreadPool pool(4);
  constexpr size_t kN = 2000;
  std::vector<std::atomic<int>> touched(kN);
  std::atomic<uint64_t> sink{0};
  ParallelForWorkStealing(&pool, kN, 1,
                          [&touched, &sink](size_t begin, size_t end) {
                            for (size_t i = begin; i < end; ++i) {
                              uint64_t burn = i == 0 ? 10000000 : 1000;
                              uint64_t acc = 0;
                              for (uint64_t j = 0; j < burn; ++j) acc += j;
                              sink.fetch_add(acc, std::memory_order_relaxed);
                              touched[i].fetch_add(1);
                            }
                          });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(touched[i].load(), 1) << i;
}

TEST(WorkStealingSlotsTest, SlotsAreValidAndExclusive) {
  ThreadPool pool(4);
  const int slots = ParallelSlots(&pool);
  ASSERT_EQ(slots, 4);
  // Per-slot accumulation with no synchronization: correct iff a slot is
  // only ever touched by one thread at a time.
  std::vector<uint64_t> per_slot(static_cast<size_t>(slots), 0);
  constexpr size_t kN = 100000;
  ParallelForWorkStealingSlots(
      &pool, kN, 64, [&per_slot, slots](int slot, size_t begin, size_t end) {
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, slots);
        per_slot[static_cast<size_t>(slot)] += end - begin;
      });
  uint64_t total = 0;
  for (uint64_t c : per_slot) total += c;
  EXPECT_EQ(total, kN);
}

TEST(WorkStealingSlotsTest, SerialFallbackUsesSlotZero) {
  std::vector<int> seen_slots;
  ParallelForWorkStealingSlots(nullptr, 10, 3,
                               [&seen_slots](int slot, size_t, size_t) {
                                 seen_slots.push_back(slot);
                               });
  ASSERT_EQ(seen_slots.size(), 1u);
  EXPECT_EQ(seen_slots[0], 0);
}

TEST(ParallelForSchedTest, BothSchedulersCoverTheRange) {
  ThreadPool pool(3);
  for (Scheduler scheduler : {Scheduler::kStatic, Scheduler::kWorkStealing}) {
    std::vector<std::atomic<int>> touched(777);
    ParallelForSched(&pool, scheduler, 777, 10,
                     [&touched](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         touched[i].fetch_add(1);
                       }
                     });
    for (size_t i = 0; i < touched.size(); ++i) {
      ASSERT_EQ(touched[i].load(), 1)
          << SchedulerName(scheduler) << " i=" << i;
    }
  }
}

TEST(ParallelProduceTest, DeltasSumToRangeUnderBothSchedulers) {
  ThreadPool pool(4);
  for (Scheduler scheduler : {Scheduler::kStatic, Scheduler::kWorkStealing}) {
    constexpr size_t kN = 50000;
    std::vector<uint64_t> deltas = ParallelProduce<uint64_t>(
        &pool, scheduler, kN, /*num_static_producers=*/16,
        /*stealing_grain=*/64,
        [](uint64_t& delta, size_t begin, size_t end) {
          delta += end - begin;
        });
    const size_t expected_producers =
        scheduler == Scheduler::kWorkStealing ? 4u : 16u;
    EXPECT_EQ(deltas.size(), expected_producers) << SchedulerName(scheduler);
    uint64_t total = 0;
    for (uint64_t d : deltas) total += d;
    EXPECT_EQ(total, kN) << SchedulerName(scheduler);
  }
}

TEST(ParallelProduceTest, EmptyRangeLeavesDefaultDeltas) {
  ThreadPool pool(2);
  for (Scheduler scheduler : {Scheduler::kStatic, Scheduler::kWorkStealing}) {
    std::vector<int> deltas = ParallelProduce<int>(
        &pool, scheduler, 0, 8, 1,
        [](int& delta, size_t, size_t) { delta = -1; });
    for (int d : deltas) EXPECT_EQ(d, 0) << SchedulerName(scheduler);
  }
}

TEST(SchedulerNameTest, ParseRoundTrips) {
  for (Scheduler scheduler :
       {Scheduler::kAuto, Scheduler::kStatic, Scheduler::kWorkStealing}) {
    Scheduler parsed;
    ASSERT_TRUE(ParseScheduler(SchedulerName(scheduler), &parsed));
    EXPECT_EQ(parsed, scheduler);
  }
  Scheduler parsed;
  EXPECT_TRUE(ParseScheduler("work-stealing", &parsed));
  EXPECT_EQ(parsed, Scheduler::kWorkStealing);
  EXPECT_FALSE(ParseScheduler("fifo", &parsed));
  EXPECT_FALSE(ParseScheduler("", &parsed));
}

TEST(SchedulerResolveTest, ExplicitValuesPassThrough) {
  EXPECT_EQ(ResolveScheduler(Scheduler::kStatic), Scheduler::kStatic);
  EXPECT_EQ(ResolveScheduler(Scheduler::kWorkStealing),
            Scheduler::kWorkStealing);
  // kAuto resolves to a concrete engine (env-dependent which one).
  EXPECT_NE(ResolveScheduler(Scheduler::kAuto), Scheduler::kAuto);
}

}  // namespace
}  // namespace reconcile
