// Unit tests for the packed epoch-stamped best tables (serial and atomic):
// word packing, tie saturation, epoch staleness / reset, and equivalence of
// the concurrent CAS-max fold with the serial fold under real contention.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/core/best_table.h"
#include "reconcile/util/rng.h"

namespace reconcile {
namespace {

TEST(BestPackingTest, RoundTrips) {
  const uint64_t word = best_internal::Pack(12345, 0xDEADBEEF, 2);
  EXPECT_EQ(best_internal::EpochOf(word), 12345u);
  EXPECT_EQ(best_internal::ScoreOf(word), 0xDEADBEEFu);
  EXPECT_EQ(best_internal::TiesOf(word), 2u);
}

TEST(BestPackingTest, FoldIsMonotone) {
  // Every accepted fold strictly increases the packed word — the property
  // the lock-free CAS loop relies on for termination and determinism.
  uint64_t word = 0;
  const uint32_t scores[] = {3, 1, 3, 7, 7, 7, 7, 2};
  for (uint32_t score : scores) {
    const uint64_t next = best_internal::Fold(word, 1, score);
    EXPECT_GE(next, word);
    word = next;
  }
  EXPECT_EQ(best_internal::ScoreOf(word), 7u);
  // Four observations of 7, saturated at 3.
  EXPECT_EQ(best_internal::TiesOf(word), best_internal::kTieSaturation);
}

template <typename Table>
class BestTableTypedTest : public testing::Test {};

using TableTypes = testing::Types<BestTable, AtomicBestTable>;
TYPED_TEST_SUITE(BestTableTypedTest, TableTypes);

TYPED_TEST(BestTableTypedTest, TracksUniqueBest) {
  TypeParam table(4);
  table.NextEpoch();
  table.Observe(1, 5);
  table.Observe(1, 3);
  EXPECT_TRUE(table.IsUniqueBest(1, 5));
  EXPECT_FALSE(table.IsUniqueBest(1, 3));
  EXPECT_EQ(table.BestScore(1), 5u);
  // An untouched node has no best.
  EXPECT_EQ(table.BestScore(0), 0u);
  EXPECT_FALSE(table.IsUniqueBest(0, 0));
}

TYPED_TEST(BestTableTypedTest, TiesRejectUniqueness) {
  TypeParam table(2);
  table.NextEpoch();
  table.Observe(0, 4);
  table.Observe(0, 4);
  EXPECT_FALSE(table.IsUniqueBest(0, 4));
  // A strictly higher score restores uniqueness.
  table.Observe(0, 9);
  EXPECT_TRUE(table.IsUniqueBest(0, 9));
}

TYPED_TEST(BestTableTypedTest, TieCountSaturates) {
  TypeParam table(1);
  table.NextEpoch();
  for (int i = 0; i < 100; ++i) table.Observe(0, 6);
  EXPECT_FALSE(table.IsUniqueBest(0, 6));
  EXPECT_EQ(table.BestScore(0), 6u);
}

TYPED_TEST(BestTableTypedTest, EpochBumpInvalidatesWithoutClearing) {
  TypeParam table(3);
  table.NextEpoch();
  table.Observe(2, 8);
  ASSERT_TRUE(table.IsUniqueBest(2, 8));
  table.NextEpoch();
  // The stale entry must read as empty...
  EXPECT_FALSE(table.IsUniqueBest(2, 8));
  EXPECT_EQ(table.BestScore(2), 0u);
  // ...and a smaller new-round score must beat it.
  table.Observe(2, 1);
  EXPECT_TRUE(table.IsUniqueBest(2, 1));
  EXPECT_EQ(table.BestScore(2), 1u);
}

TYPED_TEST(BestTableTypedTest, ManyEpochsStayIsolated) {
  TypeParam table(1);
  for (uint32_t round = 1; round <= 200; ++round) {
    table.NextEpoch();
    table.Observe(0, round);
    EXPECT_TRUE(table.IsUniqueBest(0, round));
    if (round > 1) {
      EXPECT_FALSE(table.IsUniqueBest(0, round - 1));
    }
  }
}

TEST(AtomicBestTableTest, ConcurrentObserveMatchesSerialFold) {
  // Hammer one table from several threads with a fixed observation multiset;
  // the result must equal the serial fold of the same multiset.
  constexpr size_t kNodes = 64;
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 5000;

  // Deterministic observation schedule, partitioned across threads.
  std::vector<std::pair<NodeId, uint32_t>> schedule;
  Rng rng(99);
  for (int i = 0; i < kThreads * kObsPerThread; ++i) {
    schedule.emplace_back(static_cast<NodeId>(rng.Next() % kNodes),
                          static_cast<uint32_t>(rng.Next() % 16));
  }

  BestTable serial(kNodes);
  serial.NextEpoch();
  for (const auto& [node, score] : schedule) serial.Observe(node, score);

  AtomicBestTable atomic_table(kNodes);
  atomic_table.NextEpoch();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &schedule, &atomic_table] {
      for (int i = t; i < kThreads * kObsPerThread; i += kThreads) {
        atomic_table.Observe(schedule[static_cast<size_t>(i)].first,
                             schedule[static_cast<size_t>(i)].second);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (NodeId node = 0; node < kNodes; ++node) {
    EXPECT_EQ(atomic_table.BestScore(node), serial.BestScore(node))
        << "node " << node;
    const uint32_t best = serial.BestScore(node);
    EXPECT_EQ(atomic_table.IsUniqueBest(node, best),
              serial.IsUniqueBest(node, best))
        << "node " << node;
  }
}

}  // namespace
}  // namespace reconcile
