#include "reconcile/gen/affiliation.h"

#include <gtest/gtest.h>

namespace reconcile {
namespace {

AffiliationParams SmallParams() {
  AffiliationParams params;
  params.num_users = 500;
  params.copy_prob = 0.35;
  params.new_interest_prob = 0.3;
  params.preferential_joins = 1;
  return params;
}

TEST(AffiliationTest, EveryUserHasAnInterest) {
  AffiliationNetwork net = AffiliationNetwork::Generate(SmallParams(), 3);
  for (NodeId u = 0; u < net.num_users(); ++u) {
    EXPECT_GE(net.InterestsOf(u).size(), 1u) << "user " << u;
  }
}

TEST(AffiliationTest, MembershipIsConsistentBothWays) {
  AffiliationNetwork net = AffiliationNetwork::Generate(SmallParams(), 5);
  for (NodeId u = 0; u < net.num_users(); ++u) {
    for (uint32_t interest : net.InterestsOf(u)) {
      const std::vector<NodeId>& members = net.MembersOf(interest);
      EXPECT_NE(std::find(members.begin(), members.end(), u), members.end());
    }
  }
  for (uint32_t i = 0; i < net.num_interests(); ++i) {
    for (NodeId u : net.MembersOf(i)) {
      const std::vector<uint32_t>& interests = net.InterestsOf(u);
      EXPECT_NE(std::find(interests.begin(), interests.end(), i),
                interests.end());
    }
  }
}

TEST(AffiliationTest, NoDuplicateMemberships) {
  AffiliationNetwork net = AffiliationNetwork::Generate(SmallParams(), 7);
  for (NodeId u = 0; u < net.num_users(); ++u) {
    std::vector<uint32_t> interests = net.InterestsOf(u);
    std::sort(interests.begin(), interests.end());
    EXPECT_EQ(std::adjacent_find(interests.begin(), interests.end()),
              interests.end());
  }
}

TEST(AffiliationTest, FoldConnectsExactlyCoMembers) {
  AffiliationNetwork net = AffiliationNetwork::Generate(SmallParams(), 9);
  Graph g = net.Fold();
  ASSERT_EQ(g.num_nodes(), net.num_users());
  // Spot-check consistency: u~v iff they share an interest.
  for (NodeId u = 0; u < 50; ++u) {
    for (NodeId v = u + 1; v < 50; ++v) {
      bool share = false;
      for (uint32_t i : net.InterestsOf(u)) {
        const std::vector<NodeId>& members = net.MembersOf(i);
        if (std::find(members.begin(), members.end(), v) != members.end()) {
          share = true;
          break;
        }
      }
      EXPECT_EQ(g.HasEdge(u, v), share) << u << "," << v;
    }
  }
}

TEST(AffiliationTest, FoldSubsetDropsCommunitiesWholesale) {
  AffiliationNetwork net = AffiliationNetwork::Generate(SmallParams(), 11);
  // Keep nothing: empty graph.
  std::vector<bool> none(net.num_interests(), false);
  EXPECT_EQ(net.FoldSubset(none).num_edges(), 0u);
  // Keep everything == Fold().
  std::vector<bool> all(net.num_interests(), true);
  EXPECT_EQ(net.FoldSubset(all).num_edges(), net.Fold().num_edges());
  // Keeping a subset yields a subgraph.
  std::vector<bool> half(net.num_interests(), false);
  for (size_t i = 0; i < net.num_interests(); i += 2) half[i] = true;
  Graph sub = net.FoldSubset(half);
  Graph full = net.Fold();
  EXPECT_LE(sub.num_edges(), full.num_edges());
  for (NodeId u = 0; u < 50; ++u) {
    for (NodeId v : sub.Neighbors(u)) {
      EXPECT_TRUE(full.HasEdge(u, v));
    }
  }
}

TEST(AffiliationTest, PreferentialJoinsSkewCommunitySizes) {
  AffiliationParams params = SmallParams();
  params.num_users = 3000;
  AffiliationNetwork net = AffiliationNetwork::Generate(params, 13);
  size_t max_size = 0, total = 0;
  for (uint32_t i = 0; i < net.num_interests(); ++i) {
    max_size = std::max(max_size, net.MembersOf(i).size());
    total += net.MembersOf(i).size();
  }
  double avg = static_cast<double>(total) / net.num_interests();
  EXPECT_GT(static_cast<double>(max_size), 5 * avg);
}

TEST(AffiliationTest, Deterministic) {
  AffiliationNetwork a = AffiliationNetwork::Generate(SmallParams(), 21);
  AffiliationNetwork b = AffiliationNetwork::Generate(SmallParams(), 21);
  ASSERT_EQ(a.num_interests(), b.num_interests());
  for (NodeId u = 0; u < a.num_users(); ++u) {
    ASSERT_EQ(a.InterestsOf(u), b.InterestsOf(u));
  }
}

}  // namespace
}  // namespace reconcile
