#include "reconcile/util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

// Prevents the optimizer from discarding busy-work loops in tests.
std::atomic<long long> benchmark_sink{0};

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&done] {
      // Busy-ish work so Wait() has something to wait for.
      int sink = 0;
      for (int j = 0; j < 100000; ++j) sink += j;
      benchmark_sink.fetch_add(sink, std::memory_order_relaxed);
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool_negative(-3);
  EXPECT_EQ(pool_negative.num_threads(), 1);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, DefaultThreadsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, SharedPoolIsAProcessWideSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_threads(), ThreadPool::DefaultThreads());
}

TEST(ThreadPoolTest, SharedPoolRunsTasksAndIsReusable) {
  std::atomic<int> counter{0};
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 50; ++i) {
      ThreadPool::Shared().Submit([&counter] { counter.fetch_add(1); });
    }
    ThreadPool::Shared().Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace reconcile
