#include "reconcile/eval/metrics.h"

#include <gtest/gtest.h>

#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/sampling/independent.h"

namespace reconcile {
namespace {

// Builds a tiny controlled pair: 4-cycle, identity ground truth (the
// permutation is hidden by MakeRealizationPair, so construct it manually).
RealizationPair ManualPair() {
  EdgeList edges(4);
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 3);
  edges.Add(3, 0);
  RealizationPair pair;
  pair.g1 = Graph::FromEdgeList(edges);
  pair.g2 = Graph::FromEdgeList(edges);
  pair.map_1to2 = {0, 1, 2, 3};
  pair.map_2to1 = {0, 1, 2, 3};
  return pair;
}

MatchResult ResultWith(const RealizationPair& pair,
                       std::vector<std::pair<NodeId, NodeId>> seeds,
                       std::vector<std::pair<NodeId, NodeId>> found) {
  MatchResult result;
  result.map_1to2.assign(pair.g1.num_nodes(), kInvalidNode);
  result.map_2to1.assign(pair.g2.num_nodes(), kInvalidNode);
  result.seeds = seeds;
  for (const auto& [u, v] : seeds) {
    result.map_1to2[u] = v;
    result.map_2to1[v] = u;
  }
  for (const auto& [u, v] : found) {
    result.map_1to2[u] = v;
    result.map_2to1[v] = u;
  }
  return result;
}

TEST(MetricsTest, CountsGoodAndBadNewLinks) {
  RealizationPair pair = ManualPair();
  // Seed (0,0); found (1,1) correct, (2,3) wrong.
  MatchResult result = ResultWith(pair, {{0, 0}}, {{1, 1}, {2, 3}});
  MatchQuality q = Evaluate(pair, result);
  EXPECT_EQ(q.num_seeds, 1u);
  EXPECT_EQ(q.new_good, 1u);
  EXPECT_EQ(q.new_bad, 1u);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.error_rate, 0.5);
}

TEST(MetricsTest, SeedsExcludedFromNewCounts) {
  RealizationPair pair = ManualPair();
  MatchResult result = ResultWith(pair, {{0, 0}, {1, 1}}, {});
  MatchQuality q = Evaluate(pair, result);
  EXPECT_EQ(q.new_good, 0u);
  EXPECT_EQ(q.new_bad, 0u);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);  // vacuous
  // recall_all counts seeds as correct links.
  EXPECT_DOUBLE_EQ(q.recall_all, 0.5);
}

TEST(MetricsTest, IdentifiableCountsDegreeConstraint) {
  RealizationPair pair = ManualPair();
  MatchQuality q = Evaluate(pair, ResultWith(pair, {}, {}));
  EXPECT_EQ(q.identifiable, 4u);

  // Remove all edges from copy 2: nothing is identifiable.
  RealizationPair isolated = pair;
  isolated.g2 = Graph::FromEdgeList(EdgeList(4));
  q = Evaluate(isolated, ResultWith(isolated, {}, {}));
  EXPECT_EQ(q.identifiable, 0u);
}

TEST(MetricsTest, RecallNewExcludesSeededNodes) {
  RealizationPair pair = ManualPair();
  // 4 identifiable; 2 seeded; 1 new good of the remaining 2.
  MatchResult result = ResultWith(pair, {{0, 0}, {1, 1}}, {{2, 2}});
  MatchQuality q = Evaluate(pair, result);
  EXPECT_DOUBLE_EQ(q.recall_new, 0.5);
  EXPECT_DOUBLE_EQ(q.recall_all, 0.75);
}

TEST(MetricsTest, MatchOnUnmappableNodeIsBad) {
  RealizationPair pair = ManualPair();
  pair.map_1to2[3] = kInvalidNode;  // node 3 has no counterpart
  pair.map_2to1[3] = kInvalidNode;
  MatchResult result = ResultWith(pair, {}, {{3, 3}});
  MatchQuality q = Evaluate(pair, result);
  EXPECT_EQ(q.new_bad, 1u);
  EXPECT_EQ(q.new_good, 0u);
}

// The degenerate conventions promised by metrics.h: zero-denominator
// ratios are vacuously perfect, never silently zero, so "nothing to do"
// reads as success rather than total failure.
TEST(MetricsTest, EmptyMatchingIsVacuouslyPrecise) {
  RealizationPair pair = ManualPair();
  MatchQuality q = Evaluate(pair, ResultWith(pair, {}, {}));
  EXPECT_DOUBLE_EQ(q.precision, 1.0);  // no discoveries, no errors
  EXPECT_DOUBLE_EQ(q.error_rate, 0.0);
  // But recall against the 4 real targets is genuinely zero.
  EXPECT_DOUBLE_EQ(q.recall_all, 0.0);
  EXPECT_DOUBLE_EQ(q.recall_new, 0.0);
}

TEST(MetricsTest, NothingIdentifiableMakesRecallVacuous) {
  RealizationPair pair = ManualPair();
  pair.g2 = Graph::FromEdgeList(EdgeList(4));  // all g2 degrees 0
  MatchQuality q = Evaluate(pair, ResultWith(pair, {}, {}));
  EXPECT_EQ(q.identifiable, 0u);
  EXPECT_DOUBLE_EQ(q.recall_all, 1.0);
  EXPECT_DOUBLE_EQ(q.recall_new, 1.0);
}

TEST(MetricsTest, FullySeededPairHasVacuousNewRecall) {
  RealizationPair pair = ManualPair();
  // Every identifiable node is a seed: recall_new has no targets left.
  MatchResult result =
      ResultWith(pair, {{0, 0}, {1, 1}, {2, 2}, {3, 3}}, {});
  MatchQuality q = Evaluate(pair, result);
  EXPECT_DOUBLE_EQ(q.recall_new, 1.0);
  EXPECT_DOUBLE_EQ(q.recall_all, 1.0);  // seeds count as correct links
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
}

TEST(MetricsTest, PerfectMatchingScoresPerfectly) {
  RealizationPair pair = ManualPair();
  MatchResult result =
      ResultWith(pair, {{0, 0}}, {{1, 1}, {2, 2}, {3, 3}});
  MatchQuality q = Evaluate(pair, result);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall_all, 1.0);
  EXPECT_DOUBLE_EQ(q.recall_new, 1.0);
}

TEST(MetricsByDegreeTest, EmptyBandsAreVacuouslyPerfect) {
  RealizationPair pair = ManualPair();  // all degrees are 2
  std::vector<DegreeBandQuality> bands =
      EvaluateByDegree(pair, ResultWith(pair, {}, {}), {1, 3});
  // Bands [1,1] and [4,inf) hold no nodes at all: vacuous on both axes.
  EXPECT_DOUBLE_EQ(bands[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(bands[0].recall, 1.0);
  EXPECT_DOUBLE_EQ(bands[2].precision, 1.0);
  EXPECT_DOUBLE_EQ(bands[2].recall, 1.0);
  // Band [2,3] holds all 4 targets and found none: recall genuinely 0.
  EXPECT_DOUBLE_EQ(bands[1].precision, 1.0);
  EXPECT_DOUBLE_EQ(bands[1].recall, 0.0);
}

TEST(MetricsByDegreeTest, BandsPartitionNodes) {
  Graph g = GenerateErdosRenyi(2000, 0.01, 3);
  RealizationPair pair = SampleIndependent(g, {}, 5);
  MatchResult empty = ResultWith(pair, {}, {});
  std::vector<DegreeBandQuality> bands = EvaluateByDegree(pair, empty);
  size_t identifiable_total = 0;
  for (const DegreeBandQuality& band : bands) {
    identifiable_total += band.identifiable;
  }
  MatchQuality q = Evaluate(pair, empty);
  EXPECT_EQ(identifiable_total, q.identifiable);
}

TEST(MetricsByDegreeTest, PerBandCountsLandInRightBand) {
  RealizationPair pair = ManualPair();  // all degrees are 2
  MatchResult result = ResultWith(pair, {}, {{0, 0}, {1, 2}});
  std::vector<DegreeBandQuality> bands =
      EvaluateByDegree(pair, result, {1, 3});
  // Bands: [1,1], [2,3], [4,inf). Degree-2 nodes go to band 1.
  ASSERT_EQ(bands.size(), 3u);
  EXPECT_EQ(bands[0].new_good + bands[0].new_bad, 0u);
  EXPECT_EQ(bands[1].new_good, 1u);
  EXPECT_EQ(bands[1].new_bad, 1u);
  EXPECT_EQ(bands[2].new_good + bands[2].new_bad, 0u);
  EXPECT_DOUBLE_EQ(bands[1].precision, 0.5);
}

TEST(MetricsByDegreeTest, RecallPerBand) {
  RealizationPair pair = ManualPair();
  MatchResult result = ResultWith(pair, {{0, 0}}, {{1, 1}, {2, 2}});
  std::vector<DegreeBandQuality> bands =
      EvaluateByDegree(pair, result, {1, 3});
  // Band [2,3]: identifiable 4, one seeded -> 3 targets, 2 found.
  EXPECT_NEAR(bands[1].recall, 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace reconcile
