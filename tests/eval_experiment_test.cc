#include "reconcile/eval/experiment.h"

#include <gtest/gtest.h>

#include "reconcile/api/registry.h"
#include "reconcile/api/spec.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/sampling/independent.h"

namespace reconcile {
namespace {

RealizationPair MakePair(uint64_t seed) {
  Graph g = GenerateErdosRenyi(1000, 0.03, seed);
  IndependentSampleOptions options;
  options.s1 = 0.7;
  options.s2 = 0.7;
  return SampleIndependent(g, options, seed + 1);
}

TEST(ExperimentTest, RunsPipelineAndScores) {
  RealizationPair pair = MakePair(9001);
  SeedOptions seeding;
  seeding.fraction = 0.1;
  MatcherConfig config;
  config.min_score = 3;
  ExperimentResult result = RunExperiment(pair, seeding, config, 9003);
  EXPECT_GT(result.match.NumLinks(), result.match.seeds.size());
  EXPECT_GT(result.quality.new_good, 0u);
  EXPECT_GE(result.quality.precision, 0.95);
  EXPECT_GE(result.match_seconds, 0.0);
  EXPECT_GE(result.seed_seconds, 0.0);
}

TEST(ExperimentTest, DeterministicForSeed) {
  RealizationPair pair = MakePair(9005);
  SeedOptions seeding;
  seeding.fraction = 0.1;
  MatcherConfig config;
  ExperimentResult a = RunExperiment(pair, seeding, config, 9007);
  ExperimentResult b = RunExperiment(pair, seeding, config, 9007);
  EXPECT_EQ(a.quality.new_good, b.quality.new_good);
  EXPECT_EQ(a.quality.new_bad, b.quality.new_bad);
  EXPECT_EQ(a.match.map_1to2, b.match.map_1to2);
}

TEST(ExperimentTest, DifferentSeedDrawsDiffer) {
  RealizationPair pair = MakePair(9009);
  SeedOptions seeding;
  seeding.fraction = 0.1;
  MatcherConfig config;
  ExperimentResult a = RunExperiment(pair, seeding, config, 1);
  ExperimentResult b = RunExperiment(pair, seeding, config, 2);
  EXPECT_NE(a.match.seeds, b.match.seeds);
}

TEST(ExperimentTest, RunsAnyRegisteredAlgorithm) {
  RealizationPair pair = MakePair(9011);
  SeedOptions seeding;
  seeding.fraction = 0.1;
  for (const std::string& key : Registry::Global().Keys()) {
    auto reconciler = Registry::Global().CreateOrDie(ReconcilerSpec(key));
    ExperimentResult result = RunExperiment(pair, seeding, *reconciler, 9013);
    EXPECT_GE(result.match.NumLinks(), result.match.seeds.size()) << key;
    EXPECT_GE(result.match_seconds, 0.0) << key;
  }
}

TEST(ExperimentTest, ConfigOverloadMatchesCoreReconciler) {
  RealizationPair pair = MakePair(9015);
  SeedOptions seeding;
  seeding.fraction = 0.1;
  MatcherConfig config;
  config.min_score = 3;
  ExperimentResult direct = RunExperiment(pair, seeding, config, 9017);
  auto reconciler = Registry::Global().CreateOrDie(
      ReconcilerSpec("core").Set("threshold", "3"));
  ExperimentResult via_api = RunExperiment(pair, seeding, *reconciler, 9017);
  EXPECT_EQ(direct.match.map_1to2, via_api.match.map_1to2);
  EXPECT_EQ(direct.quality.new_good, via_api.quality.new_good);
}

TEST(ExperimentTest, FormatGoodBadMentionsCounts) {
  MatchQuality quality;
  quality.new_good = 123;
  quality.new_bad = 4;
  quality.precision = 123.0 / 127.0;
  const std::string text = FormatGoodBad(quality);
  EXPECT_NE(text.find("123"), std::string::npos);
  EXPECT_NE(text.find("4"), std::string::npos);
}

}  // namespace
}  // namespace reconcile
