#include "reconcile/baseline/feature_matching.h"

#include <gtest/gtest.h>

#include "reconcile/eval/metrics.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/attack.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

TEST(FeatureDimTest, GrowsGeometrically) {
  EXPECT_EQ(FeatureDim(0), 4u);
  EXPECT_EQ(FeatureDim(1), 12u);
  EXPECT_EQ(FeatureDim(2), 28u);
}

TEST(StructuralFeaturesTest, BaseFeaturesOfStar) {
  EdgeList edges;
  for (NodeId v = 1; v <= 4; ++v) edges.Add(0, v);
  Graph g = Graph::FromEdgeList(std::move(edges));
  auto f = ComputeStructuralFeatures(g, 0);
  ASSERT_EQ(f.size(), 5u);
  ASSERT_EQ(f[0].size(), 4u);
  EXPECT_DOUBLE_EQ(f[0][0], 4.0);  // hub degree
  EXPECT_DOUBLE_EQ(f[0][1], 0.0);  // no triangles
  EXPECT_DOUBLE_EQ(f[0][2], 1.0);  // mean neighbour degree
  EXPECT_DOUBLE_EQ(f[0][3], 1.0);  // max neighbour degree
  EXPECT_DOUBLE_EQ(f[1][0], 1.0);  // leaf degree
  EXPECT_DOUBLE_EQ(f[1][2], 4.0);  // leaf's only neighbour is the hub
}

TEST(StructuralFeaturesTest, RecursiveRoundAggregates) {
  // Path 0-1-2: depth-1 features of node 1 include mean/max over its
  // neighbours' base features.
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  Graph g = Graph::FromEdgeList(std::move(edges));
  auto f = ComputeStructuralFeatures(g, 1);
  ASSERT_EQ(f[1].size(), FeatureDim(1));
  // Columns 4..7 are neighbour means of base features; both neighbours of
  // node 1 have degree 1, so the mean-degree column is 1.
  EXPECT_DOUBLE_EQ(f[1][4], 1.0);
}

TEST(StructuralFeaturesTest, IsomorphicNodesGetIdenticalFeatures) {
  // Two disjoint copies of the same 5-cycle: node v and node v+5 play
  // identical structural roles at every depth.
  EdgeList edges;
  for (NodeId v = 0; v < 5; ++v) edges.Add(v, (v + 1) % 5);
  for (NodeId v = 0; v < 5; ++v) edges.Add(5 + v, 5 + (v + 1) % 5);
  Graph g = Graph::FromEdgeList(std::move(edges));
  auto f = ComputeStructuralFeatures(g, 2);
  for (NodeId v = 0; v < 5; ++v) {
    for (size_t k = 0; k < f[v].size(); ++k)
      EXPECT_DOUBLE_EQ(f[v][k], f[v + 5][k]) << "node " << v << " col " << k;
  }
}

TEST(FeatureMatchTest, IdenticalCopiesHighRecallOnHighDegree) {
  // With s = 1 the copies are isomorphic; feature matching should identify
  // most high-degree nodes without using any seeds.
  Graph g = GeneratePreferentialAttachment(2000, 6, 3);
  IndependentSampleOptions options;
  options.s1 = 1.0;
  options.s2 = 1.0;
  RealizationPair pair = SampleIndependent(g, options, 5);

  FeatureMatcherConfig config;
  config.min_similarity = 0.999;
  config.min_degree = 20;
  MatchResult result =
      StructuralFeatureMatch(pair.g1, pair.g2, {}, config);
  MatchQuality quality = Evaluate(pair, result);
  EXPECT_GT(quality.new_good, 50u);
  // Perfect copies: mismatches only between structurally twin nodes.
  EXPECT_GT(quality.precision, 0.9);
}

TEST(FeatureMatchTest, SeedsAreCopiedButNotRequired) {
  Graph g = GeneratePreferentialAttachment(500, 5, 7);
  IndependentSampleOptions options;
  options.s1 = 1.0;
  options.s2 = 1.0;
  RealizationPair pair = SampleIndependent(g, options, 9);
  SeedOptions seed_options;
  seed_options.fraction = 0.05;
  std::vector<std::pair<NodeId, NodeId>> seeds =
      GenerateSeeds(pair, seed_options, 11);
  MatchResult result = StructuralFeatureMatch(pair.g1, pair.g2, seeds,
                                              FeatureMatcherConfig{});
  EXPECT_EQ(result.seeds.size(), seeds.size());
  for (const auto& [u, v] : seeds) EXPECT_EQ(result.map_1to2[u], v);
}

TEST(FeatureMatchTest, NoiseDegradesFeatureMatching) {
  // The headline weakness: at s = 0.5 the feature vectors of the two copies
  // of the same node diverge, and feature-only matching loses most of its
  // recall — while witness-based matching thrives in this regime.
  Graph g = GeneratePreferentialAttachment(2000, 6, 13);
  IndependentSampleOptions noisy;
  noisy.s1 = 0.5;
  noisy.s2 = 0.5;
  RealizationPair pair = SampleIndependent(g, noisy, 15);

  FeatureMatcherConfig config;
  config.min_degree = 10;
  MatchResult result = StructuralFeatureMatch(pair.g1, pair.g2, {}, config);
  MatchQuality quality = Evaluate(pair, result);

  IndependentSampleOptions clean;
  clean.s1 = 1.0;
  clean.s2 = 1.0;
  RealizationPair clean_pair = SampleIndependent(g, clean, 15);
  MatchResult clean_result =
      StructuralFeatureMatch(clean_pair.g1, clean_pair.g2, {}, config);
  MatchQuality clean_quality = Evaluate(clean_pair, clean_result);

  EXPECT_LT(quality.new_good, clean_quality.new_good / 2 + 1);
}

TEST(FeatureMatchTest, MutualBestIsOneToOne) {
  Graph g = GeneratePreferentialAttachment(800, 4, 17);
  IndependentSampleOptions options;
  RealizationPair pair = SampleIndependent(g, options, 19);
  MatchResult result = StructuralFeatureMatch(pair.g1, pair.g2, {},
                                              FeatureMatcherConfig{});
  std::vector<int> hits2(pair.g2.num_nodes(), 0);
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    const NodeId v = result.map_1to2[u];
    if (v == kInvalidNode) continue;
    EXPECT_EQ(result.map_2to1[v], u);
    EXPECT_EQ(++hits2[v], 1);
  }
}

TEST(FeatureMatchTest, InvalidBandDies) {
  Graph g = GeneratePreferentialAttachment(50, 3, 1);
  FeatureMatcherConfig config;
  config.degree_band = 0.5;
  EXPECT_DEATH(StructuralFeatureMatch(g, g, {}, config), "");
}

}  // namespace
}  // namespace reconcile
