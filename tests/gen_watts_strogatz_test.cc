#include "reconcile/gen/watts_strogatz.h"

#include <gtest/gtest.h>

#include "reconcile/graph/algorithms.h"

namespace reconcile {
namespace {

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Graph g = GenerateWattsStrogatz(100, 3, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 300u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.degree(v), 6u);
  }
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(0, 4));
  EXPECT_TRUE(g.HasEdge(0, 97));  // wrap-around
}

TEST(WattsStrogatzTest, RewiringChangesEdges) {
  Graph lattice = GenerateWattsStrogatz(200, 3, 0.0, 5);
  Graph rewired = GenerateWattsStrogatz(200, 3, 0.5, 5);
  size_t differing = 0;
  for (NodeId v = 0; v < 200; ++v) {
    for (NodeId w : rewired.Neighbors(v)) {
      if (w > v && !lattice.HasEdge(v, w)) ++differing;
    }
  }
  EXPECT_GT(differing, 50u);
}

TEST(WattsStrogatzTest, FullRewiringKeepsEdgeBudget) {
  Graph g = GenerateWattsStrogatz(500, 2, 1.0, 7);
  // Duplicates may collapse; stay close to n*k.
  EXPECT_GT(g.num_edges(), 900u);
  EXPECT_LE(g.num_edges(), 1000u);
}

TEST(WattsStrogatzTest, SmallWorldShortensPaths) {
  Graph lattice = GenerateWattsStrogatz(1000, 2, 0.0, 9);
  Graph small_world = GenerateWattsStrogatz(1000, 2, 0.1, 9);
  auto avg_dist = [](const Graph& g) {
    std::vector<uint32_t> dist = BfsDistances(g, 0);
    double sum = 0;
    size_t reached = 0;
    for (uint32_t d : dist) {
      if (d != kUnreachable) {
        sum += d;
        ++reached;
      }
    }
    return sum / static_cast<double>(reached);
  };
  EXPECT_LT(avg_dist(small_world), avg_dist(lattice) / 2);
}

TEST(WattsStrogatzTest, Deterministic) {
  Graph a = GenerateWattsStrogatz(300, 3, 0.2, 11);
  Graph b = GenerateWattsStrogatz(300, 3, 0.2, 11);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) ASSERT_EQ(a.degree(v), b.degree(v));
}

TEST(WattsStrogatzDeathTest, RejectsDegenerateParams) {
  EXPECT_DEATH(GenerateWattsStrogatz(5, 3, 0.1, 1), "Check failed");
}

}  // namespace
}  // namespace reconcile
