// Selection-engine determinism: `UserMatching` output must be bit-identical
// across every combination of worker-thread count, reduce-shard count,
// scoring engine (incremental / recompute) and selection engine (parallel /
// serial). The parallel selection's atomic CAS-max fold is order-independent
// by construction; this randomized grid is the end-to-end safety net.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

struct Workload {
  RealizationPair pair;
  std::vector<std::pair<NodeId, NodeId>> seeds;
};

Workload MakeWorkload(uint64_t rng_seed) {
  Graph g = (rng_seed % 2 == 0)
                ? GeneratePreferentialAttachment(1400, 8, rng_seed)
                : GenerateChungLu(PowerLawWeights(1400, 2.5, 14.0),
                                  rng_seed);
  IndependentSampleOptions options;
  options.s1 = 0.6;
  options.s2 = 0.6;
  Workload w;
  w.pair = SampleIndependent(g, options, rng_seed + 1);
  SeedOptions seeding;
  seeding.fraction = 0.08;
  w.seeds = GenerateSeeds(w.pair, seeding, rng_seed + 2);
  return w;
}

TEST(SelectionDeterminismTest, IdenticalAcrossThreadsShardsAndEngines) {
  for (uint64_t rng_seed : {7001u, 7002u}) {
    SCOPED_TRACE("rng_seed=" + std::to_string(rng_seed));
    Workload w = MakeWorkload(rng_seed);

    MatchResult reference;
    bool have_reference = false;
    for (bool incremental : {true, false}) {
      for (bool parallel_selection : {true, false}) {
        for (int threads : {1, 2, 8}) {
          for (int shards : {1, 4, 16}) {
            MatcherConfig config;
            config.use_incremental_scoring = incremental;
            config.use_parallel_selection = parallel_selection;
            config.num_threads = threads;
            config.num_shards = shards;
            MatchResult result =
                UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
            if (!have_reference) {
              reference = std::move(result);
              have_reference = true;
              EXPECT_GT(reference.NumNewLinks(), 0u)
                  << "workload too easy to detect divergence";
              continue;
            }
            SCOPED_TRACE("incremental=" + std::to_string(incremental) +
                         " parallel_selection=" +
                         std::to_string(parallel_selection) +
                         " threads=" + std::to_string(threads) +
                         " shards=" + std::to_string(shards));
            ASSERT_EQ(result.map_1to2, reference.map_1to2);
            ASSERT_EQ(result.map_2to1, reference.map_2to1);
          }
        }
      }
    }
  }
}

// The per-round time split must be populated and consistent with the
// whole-round clock for both selection engines.
TEST(SelectionDeterminismTest, PhaseTimeSplitIsPopulated) {
  Workload w = MakeWorkload(7003);
  for (bool parallel_selection : {true, false}) {
    MatcherConfig config;
    config.use_parallel_selection = parallel_selection;
    config.num_threads = 2;
    MatchResult result = UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
    ASSERT_FALSE(result.phases.empty());
    for (const PhaseStats& phase : result.phases) {
      EXPECT_EQ(phase.num_threads, 2);
      EXPECT_GE(phase.emit_seconds, 0.0);
      EXPECT_GE(phase.merge_seconds, 0.0);
      EXPECT_GE(phase.scan_seconds, 0.0);
      EXPECT_GE(phase.select_seconds, 0.0);
      EXPECT_LE(phase.emit_seconds + phase.merge_seconds +
                    phase.scan_seconds + phase.select_seconds,
                phase.seconds + 1e-6);
    }
  }
}

}  // namespace
}  // namespace reconcile
