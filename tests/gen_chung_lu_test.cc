#include "reconcile/gen/chung_lu.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(PowerLawWeightsTest, MeanMatchesTarget) {
  std::vector<double> w = PowerLawWeights(10000, 2.5, 20.0);
  double mean = std::accumulate(w.begin(), w.end(), 0.0) / w.size();
  // The sqrt(W) cap can clip the head slightly.
  EXPECT_NEAR(mean, 20.0, 2.0);
}

TEST(PowerLawWeightsTest, MonotoneDecreasing) {
  std::vector<double> w = PowerLawWeights(1000, 2.5, 10.0);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i], w[i - 1]);
}

TEST(PowerLawWeightsTest, CapKeepsProbabilitiesValid) {
  std::vector<double> w = PowerLawWeights(5000, 2.1, 30.0);
  double total = std::accumulate(w.begin(), w.end(), 0.0);
  EXPECT_LE(w[0] * w[0] / total, 1.0 + 1e-9);
}

TEST(ChungLuTest, Deterministic) {
  std::vector<double> w = PowerLawWeights(2000, 2.5, 10.0);
  Graph a = GenerateChungLu(w, 3);
  Graph b = GenerateChungLu(w, 3);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) ASSERT_EQ(a.degree(v), b.degree(v));
}

TEST(ChungLuTest, AverageDegreeNearTarget) {
  const NodeId n = 20000;
  const double target = 15.0;
  std::vector<double> w = PowerLawWeights(n, 2.5, target);
  Graph g = GenerateChungLu(w, 7);
  double avg = static_cast<double>(g.degree_sum()) / n;
  // min(1, ...) clipping and the weight cap bias slightly downward.
  EXPECT_NEAR(avg, target, target * 0.2);
}

TEST(ChungLuTest, RealizedDegreesTrackWeights) {
  const NodeId n = 10000;
  std::vector<double> w = PowerLawWeights(n, 2.5, 20.0);
  Graph g = GenerateChungLu(w, 11);
  // Node 0 has the largest weight; its degree must be far above average.
  double avg = static_cast<double>(g.degree_sum()) / n;
  EXPECT_GT(g.degree(0), 5 * avg);
  // Aggregate check on a mid-range slice: realized ~ expected within 25%.
  double expected_slice = 0, realized_slice = 0;
  for (NodeId v = 100; v < 200; ++v) {
    expected_slice += w[v];
    realized_slice += g.degree(v);
  }
  EXPECT_NEAR(realized_slice, expected_slice, expected_slice * 0.25);
}

TEST(ChungLuTest, HeavyTailPresent) {
  const NodeId n = 30000;
  std::vector<double> w = PowerLawWeights(n, 2.3, 10.0);
  Graph g = GenerateChungLu(w, 13);
  double avg = static_cast<double>(g.degree_sum()) / n;
  EXPECT_GT(g.max_degree(), 20 * avg);
}

TEST(ChungLuTest, UniformWeightsBehaveLikeEr) {
  std::vector<double> w(5000, 8.0);
  Graph g = GenerateChungLu(w, 17);
  double avg = static_cast<double>(g.degree_sum()) / g.num_nodes();
  EXPECT_NEAR(avg, 8.0, 1.0);
  EXPECT_LT(g.max_degree(), 40u);
}

TEST(ChungLuTest, EmptyAndTinyInputs) {
  EXPECT_EQ(GenerateChungLu({}, 1).num_nodes(), 0u);
  EXPECT_EQ(GenerateChungLu({1.0}, 1).num_edges(), 0u);
  Graph pairg = GenerateChungLu({1.0, 1.0}, 1);
  EXPECT_LE(pairg.num_edges(), 1u);
}

TEST(ChungLuTest, ZeroWeightsProduceNoEdges) {
  std::vector<double> w(100, 0.0);
  EXPECT_EQ(GenerateChungLu(w, 5).num_edges(), 0u);
}

}  // namespace
}  // namespace reconcile
