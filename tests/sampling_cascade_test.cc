#include "reconcile/sampling/cascade.h"

#include <gtest/gtest.h>

#include "reconcile/gen/chung_lu.h"
#include "reconcile/graph/algorithms.h"

namespace reconcile {
namespace {

Graph DenseSocialGraph() {
  // Average degree ~40 so a p=0.05 cascade is supercritical.
  std::vector<double> w = PowerLawWeights(5000, 2.5, 40.0);
  return GenerateChungLu(w, 99);
}

TEST(CascadeSamplingTest, CopiesAreInducedSubgraphs) {
  Graph g = DenseSocialGraph();
  CascadeSampleOptions options;
  RealizationPair pair = SampleCascade(g, options, 3);
  // Edges of g1 are underlying edges (side 1 keeps underlying labels).
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    for (NodeId v : pair.g1.Neighbors(u)) {
      if (v > u) {
        ASSERT_TRUE(g.HasEdge(u, v));
      }
    }
  }
}

TEST(CascadeSamplingTest, InducednessHolds) {
  // A node with degree >= 1 in the copy was necessarily joined; thus any
  // underlying edge between two such nodes must be present in the copy
  // (the copy is the *induced* subgraph on the joined set).
  Graph g = DenseSocialGraph();
  RealizationPair pair = SampleCascade(g, {}, 5);
  ASSERT_GT(pair.g1.num_edges(), 0u);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (pair.g1.degree(u) == 0) continue;
    for (NodeId v : g.Neighbors(u)) {
      if (v <= u || pair.g1.degree(v) == 0) continue;
      ASSERT_TRUE(pair.g1.HasEdge(u, v)) << u << "," << v;
    }
  }
}

TEST(CascadeSamplingTest, SupercriticalCascadeCoversManyNodes) {
  Graph g = DenseSocialGraph();
  CascadeSampleOptions options;
  options.p = 0.05;
  RealizationPair pair = SampleCascade(g, options, 7);
  // Expected branching factor ~2 => giant cascades.
  size_t nonzero1 = 0;
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    if (pair.g1.degree(u) > 0) ++nonzero1;
  }
  EXPECT_GT(nonzero1, g.num_nodes() / 10);
  EXPECT_GT(pair.NumIdentifiable(), g.num_nodes() / 20);
}

TEST(CascadeSamplingTest, IntersectionMapsOnlySharedNodes) {
  Graph g = DenseSocialGraph();
  RealizationPair pair = SampleCascade(g, {}, 9);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    NodeId v = pair.map_1to2[u];
    if (v == kInvalidNode) continue;
    EXPECT_EQ(pair.map_2to1[v], u);
  }
}

TEST(CascadeSamplingTest, HigherPSpreadsFurther) {
  Graph g = DenseSocialGraph();
  CascadeSampleOptions low, high;
  low.p = 0.03;
  high.p = 0.30;
  RealizationPair small = SampleCascade(g, low, 11);
  RealizationPair big = SampleCascade(g, high, 11);
  EXPECT_GT(big.g1.num_edges(), small.g1.num_edges());
}

TEST(CascadeSamplingTest, Deterministic) {
  Graph g = DenseSocialGraph();
  RealizationPair a = SampleCascade(g, {}, 13);
  RealizationPair b = SampleCascade(g, {}, 13);
  EXPECT_EQ(a.g1.num_edges(), b.g1.num_edges());
  EXPECT_EQ(a.map_1to2, b.map_1to2);
}

}  // namespace
}  // namespace reconcile
