#include "reconcile/api/registry.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "reconcile/api/adapters.h"
#include "reconcile/api/spec.h"

namespace reconcile {
namespace {

TEST(RegistryTest, BuiltinAlgorithmsAreRegistered) {
  const std::vector<std::string> keys = Registry::Global().Keys();
  for (const char* expected :
       {"core", "simple", "ns09", "features", "percolation"}) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), expected), keys.end())
        << expected;
  }
}

TEST(RegistryTest, EveryRegisteredKeyConstructsFromDefaultSpec) {
  for (const std::string& key : Registry::Global().Keys()) {
    std::string error;
    auto reconciler = Registry::Global().Create(ReconcilerSpec(key), &error);
    ASSERT_NE(reconciler, nullptr) << key << ": " << error;
    EXPECT_EQ(reconciler->name(), key);
    EXPECT_FALSE(reconciler->Describe().empty()) << key;
  }
}

TEST(RegistryTest, UnknownKeyFailsWithListing) {
  std::string error;
  auto reconciler =
      Registry::Global().Create(ReconcilerSpec("not-an-algorithm"), &error);
  EXPECT_EQ(reconciler, nullptr);
  EXPECT_NE(error.find("not-an-algorithm"), std::string::npos);
  EXPECT_NE(error.find("core"), std::string::npos);  // lists what exists
}

TEST(RegistryTest, UnknownParameterFailsWithClearError) {
  std::string error;
  auto reconciler = Registry::Global().Create(
      ReconcilerSpec("core").Set("thresold", "3"), &error);
  EXPECT_EQ(reconciler, nullptr);
  EXPECT_NE(error.find("thresold"), std::string::npos);
  EXPECT_NE(error.find("core"), std::string::npos);
}

TEST(RegistryTest, MalformedValueFails) {
  std::string error;
  auto reconciler = Registry::Global().Create(
      ReconcilerSpec("core").Set("threshold", "lots"), &error);
  EXPECT_EQ(reconciler, nullptr);
  EXPECT_NE(error.find("threshold"), std::string::npos);
}

TEST(RegistryTest, OutOfRangeValuesAreSpecErrorsNotCrashes) {
  std::string error;
  EXPECT_EQ(Registry::Global().Create(
                ReconcilerSpec("percolation").Set("threshold", "1"), &error),
            nullptr);
  EXPECT_NE(error.find("threshold"), std::string::npos);
  EXPECT_EQ(Registry::Global().Create(
                ReconcilerSpec("features").Set("depth", "9"), &error),
            nullptr);
  EXPECT_NE(error.find("depth"), std::string::npos);
}

TEST(RegistryTest, IntNarrowingIsRangeChecked) {
  std::string error;
  // Would silently wrap to iterations=1 with a bare static_cast<int>.
  EXPECT_EQ(Registry::Global().Create(
                ReconcilerSpec("core").Set("iterations", "4294967297"),
                &error),
            nullptr);
  EXPECT_NE(error.find("iterations"), std::string::npos);
  // Overflows int64 parsing entirely (ERANGE).
  EXPECT_EQ(Registry::Global().Create(
                ReconcilerSpec("core").Set("threads", "99999999999999999999"),
                &error),
            nullptr);
  EXPECT_NE(error.find("threads"), std::string::npos);
}

TEST(RegistryTest, ParamsReachTheWrappedConfig) {
  auto reconciler = Registry::Global().CreateOrDie(
      ReconcilerSpec("core")
          .Set("threshold", "4")
          .Set("iterations", "1")
          .Set("backend", "hash")
          .Set("bucketing", "false"));
  const auto& core = dynamic_cast<const CoreReconciler&>(*reconciler);
  EXPECT_EQ(core.config().min_score, 4u);
  EXPECT_EQ(core.config().num_iterations, 1);
  EXPECT_EQ(core.config().scoring_backend, ScoringBackend::kHashMap);
  EXPECT_FALSE(core.config().use_degree_bucketing);
}

TEST(RegistryTest, DescribeAllMentionsEveryKey) {
  const std::string listing = Registry::Global().DescribeAll();
  for (const std::string& key : Registry::Global().Keys()) {
    EXPECT_NE(listing.find(key), std::string::npos) << key;
  }
}

TEST(RegistryTest, DuplicateRegistrationDies) {
  Registry registry;
  registry.Register({.key = "x",
                     .summary = "",
                     .threshold_param = "",
                     .factory = [](const ReconcilerSpec&, std::string*) {
                       return std::unique_ptr<Reconciler>();
                     }});
  EXPECT_DEATH(
      registry.Register({.key = "x",
                         .summary = "",
                         .threshold_param = "",
                         .factory = [](const ReconcilerSpec&, std::string*) {
                           return std::unique_ptr<Reconciler>();
                         }}),
      "duplicate");
}

TEST(SpecTest, ParsePrintRoundTrips) {
  for (const char* text :
       {"core", "core:threshold=3", "ns09:max-sweeps=3,theta=1.5",
        "features:degree-band=2.5,depth=1,min-similarity=0.9"}) {
    ReconcilerSpec spec;
    std::string error;
    ASSERT_TRUE(ReconcilerSpec::Parse(text, &spec, &error)) << error;
    EXPECT_EQ(spec.ToString(), text);
    ReconcilerSpec again;
    ASSERT_TRUE(ReconcilerSpec::Parse(spec.ToString(), &again, &error));
    EXPECT_EQ(spec, again);
  }
}

TEST(SpecTest, ToStringIsCanonicalOrder) {
  ReconcilerSpec spec;
  std::string error;
  ASSERT_TRUE(
      ReconcilerSpec::Parse("core:threshold=3,iterations=1", &spec, &error));
  // Parameters print sorted by key, whatever the input order.
  EXPECT_EQ(spec.ToString(), "core:iterations=1,threshold=3");
}

TEST(SpecTest, MalformedSpecsAreRejected) {
  ReconcilerSpec spec;
  std::string error;
  EXPECT_FALSE(ReconcilerSpec::Parse("", &spec, &error));
  EXPECT_FALSE(ReconcilerSpec::Parse(":threshold=3", &spec, &error));
  EXPECT_FALSE(ReconcilerSpec::Parse("core:threshold", &spec, &error));
  EXPECT_FALSE(ReconcilerSpec::Parse("core:=3", &spec, &error));
  EXPECT_FALSE(ReconcilerSpec::Parse("core:,", &spec, &error));
}

TEST(SpecTest, MergeParamsOverridesAndAppends) {
  ReconcilerSpec spec("core");
  spec.Set("threshold", "2");
  std::string error;
  ASSERT_TRUE(spec.MergeParams("threshold=5,iterations=1", &error)) << error;
  EXPECT_EQ(spec.params.at("threshold"), "5");
  EXPECT_EQ(spec.params.at("iterations"), "1");
  EXPECT_FALSE(spec.MergeParams("oops", &error));
}

}  // namespace
}  // namespace reconcile
