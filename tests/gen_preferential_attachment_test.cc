#include "reconcile/gen/preferential_attachment.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "reconcile/graph/algorithms.h"

namespace reconcile {
namespace {

TEST(PreferentialAttachmentTest, Deterministic) {
  Graph a = GeneratePreferentialAttachment(1000, 5, 42);
  Graph b = GeneratePreferentialAttachment(1000, 5, 42);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) ASSERT_EQ(a.degree(v), b.degree(v));
}

TEST(PreferentialAttachmentTest, EdgeCountNearNm) {
  // The multigraph has exactly n*m edges; loops and duplicates are removed,
  // but they are a small fraction for m << n.
  const NodeId n = 5000;
  const int m = 10;
  Graph g = GeneratePreferentialAttachment(n, m, 7);
  EXPECT_GT(g.num_edges(), static_cast<size_t>(n) * m * 9 / 10);
  EXPECT_LE(g.num_edges(), static_cast<size_t>(n) * m);
}

TEST(PreferentialAttachmentTest, SkewedDegreeDistribution) {
  Graph g = GeneratePreferentialAttachment(20000, 5, 3);
  // Power-law: the max degree dwarfs the average (≈ 2m = 10).
  double avg = static_cast<double>(g.degree_sum()) / g.num_nodes();
  EXPECT_GT(g.max_degree(), 10 * avg);
  // But most nodes sit near the minimum.
  size_t low = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) <= 2 * 5) ++low;
  }
  EXPECT_GT(low, g.num_nodes() / 2);
}

TEST(PreferentialAttachmentTest, EarlyBirdsHaveHighDegree) {
  // Lemma 5/7 regime: early nodes accumulate much higher degree than late
  // ones. Compare the average degree of the first 1% vs the last 50%.
  Graph g = GeneratePreferentialAttachment(20000, 5, 11);
  const NodeId n = g.num_nodes();
  double early = 0, late = 0;
  NodeId early_count = n / 100;
  for (NodeId v = 0; v < early_count; ++v) early += g.degree(v);
  early /= early_count;
  for (NodeId v = n / 2; v < n; ++v) late += g.degree(v);
  late /= (n - n / 2);
  EXPECT_GT(early, 5 * late);
}

TEST(PreferentialAttachmentTest, RichGetRicher) {
  // The maximum-degree node should be among the earliest arrivals.
  Graph g = GeneratePreferentialAttachment(10000, 5, 13);
  NodeId argmax = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) > g.degree(argmax)) argmax = v;
  }
  EXPECT_LT(argmax, g.num_nodes() / 10);
}

TEST(PreferentialAttachmentTest, ConnectedGraph) {
  // Attachment to existing mass keeps the simple graph connected w.h.p.
  Graph g = GeneratePreferentialAttachment(3000, 3, 17);
  EXPECT_EQ(CountComponents(g), 1u);
}

TEST(PreferentialAttachmentTest, MinDegreeNodesBounded) {
  // Every node issues m edges; after loop/duplicate removal its degree can
  // shrink but nodes beyond the first cannot be isolated.
  Graph g = GeneratePreferentialAttachment(2000, 4, 19);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.degree(v), 1u) << "node " << v;
  }
}

TEST(PreferentialAttachmentTest, MEqualsOneGivesTreeLike) {
  Graph g = GeneratePreferentialAttachment(1000, 1, 23);
  // Simple graph of a PA multigraph with m=1: at most n-1 edges (loops drop).
  EXPECT_LE(g.num_edges(), g.num_nodes() - 1);
  EXPECT_GT(g.num_edges(), g.num_nodes() / 2);
}

}  // namespace
}  // namespace reconcile
