// The multi-process contract (DESIGN.md §2.7): the matching is a pure
// function of the inputs — bit-identical for every worker count, thread
// count, scheduler and injected-failure schedule. These tests drive the
// real coordinator/worker processes end to end and byte-compare matchings
// against the in-process run.
//
// Process discipline (same as integration_kill_resume_test): the parent
// NEVER builds a workload or runs the matcher — the coordinator forks
// workers, and forking from a threaded parent is undefined behaviour.
// Every run happens in a forked child that regenerates its inputs
// deterministically and writes its matching to a file; the parent only
// forks, waits and compares bytes.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/eval/match_io.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

constexpr uint64_t kWorkloadSeed = 4242;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

struct ChildSpec {
  MatcherConfig config;
  std::string matching_out;
};

// CHILD-ONLY code path: regenerates the workload and runs the matcher
// (which forks the worker pool itself when config.workers > 1).
void ChildMain(const ChildSpec& spec) {
  Graph g = GenerateChungLu(PowerLawWeights(1000, 2.2, 12.0), kWorkloadSeed);
  IndependentSampleOptions options;
  options.s1 = 0.6;
  options.s2 = 0.6;
  RealizationPair pair = SampleIndependent(g, options, kWorkloadSeed + 1);
  SeedOptions seeding;
  seeding.fraction = 0.08;
  auto seeds = GenerateSeeds(pair, seeding, kWorkloadSeed + 2);

  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, spec.config);
  if (!spec.matching_out.empty() &&
      !WriteMatchingText(result, spec.matching_out)) {
    _exit(3);
  }
  _exit(0);
}

int RunChild(const ChildSpec& spec) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ChildMain(spec);  // never returns
  }
  if (pid < 0) return -1;
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFSIGNALED(status)) return -1;
  return WEXITSTATUS(status);
}

// Shards pinned to 8 so shard ids in fault specs are stable and every
// worker count in {1, 2, 4} divides the space evenly.
MatcherConfig BaseConfig() {
  MatcherConfig config;
  config.num_shards = 8;
  config.num_threads = 4;
  return config;
}

// Runs the in-process reference once per process and caches its bytes.
const std::vector<char>& ReferenceBytes() {
  static const std::vector<char>* bytes = [] {
    const std::string out = TempPath("dist_ref.txt");
    ChildSpec spec;
    spec.config = BaseConfig();
    spec.matching_out = out;
    EXPECT_EQ(RunChild(spec), 0);
    auto* b = new std::vector<char>(Slurp(out));
    EXPECT_FALSE(b->empty());
    std::remove(out.c_str());
    return b;
  }();
  return *bytes;
}

// One distributed run; its matching must equal the in-process reference.
void CheckIdentical(const MatcherConfig& config, const std::string& tag) {
  const std::string out = TempPath("dist_" + tag + ".txt");
  ChildSpec spec;
  spec.config = config;
  spec.matching_out = out;
  ASSERT_EQ(RunChild(spec), 0) << tag;
  EXPECT_EQ(Slurp(out), ReferenceBytes())
      << tag << ": distributed matching differs from the in-process run";
  std::remove(out.c_str());
}

TEST(DistDeterminismTest, WorkerCountAndSchedulerInvariance) {
  // {2, 4} workers x {stealing, static} scheduler x {1, 4} threads — every
  // cell must reproduce the single-process matching byte for byte. (The
  // scheduler/thread knobs only shape the coordinator-side shard resolve;
  // workers compute serially, so nothing else may depend on them.)
  for (int workers : {2, 4}) {
    for (Scheduler scheduler : {Scheduler::kWorkStealing, Scheduler::kStatic}) {
      for (int threads : {1, 4}) {
        MatcherConfig config = BaseConfig();
        config.workers = workers;
        config.scheduler = scheduler;
        config.num_threads = threads;
        CheckIdentical(config,
                       "w" + std::to_string(workers) + "_s" +
                           std::to_string(static_cast<int>(scheduler)) +
                           "_t" + std::to_string(threads));
      }
    }
  }
}

TEST(DistDeterminismTest, MoreWorkersThanShardsClampsAndMatches) {
  MatcherConfig config = BaseConfig();
  config.num_shards = 2;
  config.workers = 4;  // clamped to 2
  const std::string out = TempPath("dist_clamp.txt");
  const std::string ref = TempPath("dist_clamp_ref.txt");
  ChildSpec spec;
  spec.config = config;
  spec.matching_out = out;
  ASSERT_EQ(RunChild(spec), 0);
  spec.config.workers = 1;
  spec.matching_out = ref;
  ASSERT_EQ(RunChild(spec), 0);
  EXPECT_EQ(Slurp(out), Slurp(ref));
  std::remove(out.c_str());
  std::remove(ref.c_str());
}

TEST(DistDeterminismTest, PreHandshakeWorkerDeathIsRepaired) {
  // Slot 1 dies before its handshake heartbeat: the failure detector sees
  // the EOF, respawns it (the respawn strips the one-shot fault), and the
  // round proceeds — identical bytes.
  MatcherConfig config = BaseConfig();
  config.workers = 2;
  config.fault_spec = "worker_crash:worker_start=1";
  CheckIdentical(config, "prehandshake");
}

TEST(DistDeterminismTest, MidRoundWorkerDeathIsRepaired) {
  // Death after scanning a mid shard: the respawned worker rebuilds its
  // shard slice by replaying the round history, then recomputes the round.
  MatcherConfig config = BaseConfig();
  config.workers = 2;
  config.fault_spec = "worker_crash:after_shard=2";
  CheckIdentical(config, "after_shard_mid");
}

TEST(DistDeterminismTest, DeathAfterFinalShardIsRepaired) {
  // The nastiest window: the worker finished all its scan work and died
  // before (or while) sending its RESULT. The coordinator must not count
  // any partial result and must recompute the slice.
  MatcherConfig config = BaseConfig();
  config.workers = 2;
  config.fault_spec = "worker_crash:after_shard=7";  // last shard overall
  CheckIdentical(config, "after_shard_last");
}

TEST(DistDeterminismTest, CorruptResultFrameIsRepaired) {
  // io:msg_corrupt flips a payload byte after the CRC: the coordinator
  // must treat the worker as lost (a peer that writes bad bytes cannot be
  // trusted for the rest of the round) and repair.
  MatcherConfig config = BaseConfig();
  config.workers = 2;
  config.fault_spec = "io:msg_corrupt=1";
  CheckIdentical(config, "msg_corrupt");
}

TEST(DistDeterminismTest, StalledWorkerIsDetectedByDeadline) {
  // io:msg_stall withholds a RESULT and silences the heartbeat — the
  // hung-worker shape. Only the per-request deadline can catch it.
  MatcherConfig config = BaseConfig();
  config.workers = 2;
  config.worker_timeout_ms = 300;
  config.fault_spec = "io:msg_stall=1";
  CheckIdentical(config, "msg_stall");
}

TEST(DistDeterminismTest, FourWorkerKillStormIsRepaired) {
  // Three of four workers die across different rounds/shards; survivors
  // absorb the slices (respawns permitting) and the bytes still match.
  MatcherConfig config = BaseConfig();
  config.workers = 4;
  config.fault_spec =
      "worker_crash:worker_start=2;worker_crash:after_shard=1;"
      "worker_crash:after_shard=6";
  CheckIdentical(config, "kill_storm");
}

TEST(DistDeterminismTest, RetryExhaustionDegradesToInProcess) {
  // Zero retry budget and both workers dead: the distributed run must
  // give up gracefully and the in-process fallback must produce the
  // identical matching with exit 0 — never a crash, never a wrong result.
  MatcherConfig config = BaseConfig();
  config.workers = 2;
  config.worker_retry = 0;
  config.fault_spec = "worker_crash:worker_start=1;worker_crash:worker_start=2";
  CheckIdentical(config, "exhaustion");
}

TEST(DistDeterminismTest, UnsupportedConfigFallsBackInProcess) {
  // The hash backend cannot run distributed; the gate must warn and fall
  // back, still byte-identical to the same config without workers.
  MatcherConfig config = BaseConfig();
  config.workers = 2;
  config.scoring_backend = ScoringBackend::kHashMap;
  const std::string out = TempPath("dist_gate.txt");
  const std::string ref = TempPath("dist_gate_ref.txt");
  ChildSpec spec;
  spec.config = config;
  spec.matching_out = out;
  ASSERT_EQ(RunChild(spec), 0);
  spec.config.workers = 1;
  spec.matching_out = ref;
  ASSERT_EQ(RunChild(spec), 0);
  EXPECT_EQ(Slurp(out), Slurp(ref));
  std::remove(out.c_str());
  std::remove(ref.c_str());
}

}  // namespace
}  // namespace reconcile
