#include "reconcile/theory/predictions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(ErPredictionsTest, TrueFalseWitnessRatioIsP) {
  // §4.1: true/false expected witness counts differ by exactly the factor
  // p·(n-1)/(n-2).
  const NodeId n = 10000;
  const double p = 0.01, s = 0.5, l = 0.1;
  const double ratio = ErFalsePairWitnessMean(n, p, s, l) /
                       ErTruePairWitnessMean(n, p, s, l);
  EXPECT_NEAR(ratio, p * (n - 2.0) / (n - 1.0), 1e-12);
}

TEST(ErPredictionsTest, WitnessMeansScaleWithParameters) {
  EXPECT_DOUBLE_EQ(ErTruePairWitnessMean(1001, 0.1, 1.0, 1.0), 100.0);
  // Halving s quarters the mean (both copies must keep the edge).
  EXPECT_DOUBLE_EQ(ErTruePairWitnessMean(1001, 0.1, 0.5, 1.0), 25.0);
  // l scales linearly.
  EXPECT_DOUBLE_EQ(ErTruePairWitnessMean(1001, 0.1, 1.0, 0.2), 20.0);
}

TEST(ErPredictionsTest, Theorem1ThresholdMatchesFormula) {
  const NodeId n = 100000;
  const double s = 0.5, l = 0.1;
  const double expected = 24.0 * std::log(100000.0) / (0.25 * 0.1 * 99998.0);
  EXPECT_NEAR(ErTheorem1MinP(n, s, l), expected, 1e-15);
}

TEST(ErPredictionsTest, ConnectivityThresholdDecreasing) {
  EXPECT_GT(ErConnectivityThreshold(1000), ErConnectivityThreshold(100000));
}

TEST(ChernoffTest, BoundsDecayWithMean) {
  EXPECT_GT(ChernoffLowerTail(10, 0.5), ChernoffLowerTail(100, 0.5));
  EXPECT_GT(ChernoffUpperTail(10, 0.5), ChernoffUpperTail(100, 0.5));
  EXPECT_LE(ChernoffLowerTail(100, 0.5), 1.0);
  EXPECT_GE(ChernoffLowerTail(0.0, 0.5), 1.0);  // vacuous at mean 0
}

TEST(ChernoffTest, Theorem1NumbersAreSmall) {
  // At the Theorem 1 threshold, E[Y] = 24 log n => failure prob <= n^-3.
  const double n = 10000.0;
  const double mean = 24.0 * std::log(n);
  EXPECT_LE(ChernoffLowerTail(mean, 0.5), std::pow(n, -3.0) * 1.001);
}

TEST(Lemma2Test, BoundIsCubicInKx) {
  const double b1 = Lemma2ThreeWitnessBound(100, 1e-4);
  const double b2 = Lemma2ThreeWitnessBound(200, 1e-4);
  EXPECT_NEAR(b2 / b1, 8.0, 1e-9);  // doubling k multiplies by 2^3
  EXPECT_LT(b1, 1e-5);
}

TEST(PaPredictionsTest, HighDegreeThresholdShrinksWithSeeds) {
  const NodeId n = 1000000;
  EXPECT_GT(PaHighDegreeThreshold(n, 0.5, 0.05),
            PaHighDegreeThreshold(n, 0.5, 0.2));
  EXPECT_GT(PaHighDegreeThreshold(n, 0.25, 0.1),
            PaHighDegreeThreshold(n, 0.75, 0.1));
}

TEST(PaPredictionsTest, ThresholdConstantsMatchPaper) {
  EXPECT_EQ(kPaLemma10CommonNeighborCap, 8u);
  EXPECT_EQ(kPaTheoryThreshold, 9u);
}

TEST(PaPredictionsTest, LowDegreeBoundIsLogCubed) {
  const double log_n = std::log(1000000.0);
  EXPECT_NEAR(PaLowDegreeBound(1000000), log_n * log_n * log_n, 1e-9);
}

TEST(PaPredictionsTest, Lemma12Hypothesis) {
  EXPECT_TRUE(PaLemma12Applies(22, 1.0));
  EXPECT_TRUE(PaLemma12Applies(88, 0.5));  // 88 * 0.25 = 22
  EXPECT_FALSE(PaLemma12Applies(20, 1.0));
  EXPECT_FALSE(PaLemma12Applies(22, 0.9));
  EXPECT_DOUBLE_EQ(PaGuaranteedIdentifiedFraction(88, 0.5), 0.97);
  EXPECT_DOUBLE_EQ(PaGuaranteedIdentifiedFraction(4, 0.5), 0.0);
}

TEST(SharedNeighborTest, ObstructionMatchesPaperExample) {
  // §4.2: with m = 4 and s = 1/2, roughly 30% of degree-m nodes have no
  // neighbour surviving in both copies: (1 - 1/4)^4 ≈ 0.316.
  EXPECT_NEAR(ProbNoSharedNeighbor(4, 0.5), 0.3164, 1e-3);
  EXPECT_DOUBLE_EQ(ExpectedSharedNeighbors(4, 0.5), 1.0);
}

TEST(SharedNeighborTest, MonotoneInDegreeAndSurvival) {
  EXPECT_GT(ProbNoSharedNeighbor(4, 0.5), ProbNoSharedNeighbor(10, 0.5));
  EXPECT_GT(ProbNoSharedNeighbor(4, 0.3), ProbNoSharedNeighbor(4, 0.7));
}

TEST(PaPredictionsTest, EarlyBirdCutoffGrowsSublinearly) {
  EXPECT_NEAR(PaEarlyBirdCutoff(100000), std::pow(100000.0, 0.3), 1e-9);
  EXPECT_LT(PaEarlyBirdCutoff(1000000), 1000000 * 0.01);
}

}  // namespace
}  // namespace reconcile
