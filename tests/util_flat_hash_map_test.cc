#include "reconcile/util/flat_hash_map.h"

#include <map>

#include <gtest/gtest.h>

#include "reconcile/graph/types.h"
#include "reconcile/util/rng.h"

namespace reconcile {
namespace {

TEST(FlatCountMapTest, StartsEmpty) {
  FlatCountMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Count(123), 0u);
  EXPECT_FALSE(map.Contains(123));
}

TEST(FlatCountMapTest, AddCountInsertsAndIncrements) {
  FlatCountMap map;
  EXPECT_EQ(map.AddCount(7, 1), 1u);
  EXPECT_EQ(map.AddCount(7, 1), 2u);
  EXPECT_EQ(map.AddCount(7, 5), 7u);
  EXPECT_EQ(map.Count(7), 7u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatCountMapTest, ZeroKeyIsValid) {
  FlatCountMap map;
  map.AddCount(0, 3);
  EXPECT_EQ(map.Count(0), 3u);
  EXPECT_TRUE(map.Contains(0));
}

TEST(FlatCountMapTest, GrowsBeyondInitialCapacity) {
  FlatCountMap map;
  constexpr uint64_t kKeys = 10000;
  for (uint64_t k = 0; k < kKeys; ++k) map.AddCount(k, 1);
  EXPECT_EQ(map.size(), kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(map.Count(k), 1u) << "key " << k;
  }
  EXPECT_EQ(map.Count(kKeys + 1), 0u);
}

TEST(FlatCountMapTest, PreSizedConstructorAvoidsMisses) {
  FlatCountMap map(5000);
  for (uint64_t k = 0; k < 5000; ++k) map.AddCount(k * 13 + 1, 2);
  EXPECT_EQ(map.size(), 5000u);
  EXPECT_EQ(map.Count(1), 2u);
}

TEST(FlatCountMapTest, MatchesReferenceMapUnderRandomWorkload) {
  FlatCountMap map;
  std::map<uint64_t, uint32_t> reference;
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    uint64_t key = rng.UniformInt(2000);  // heavy collisions
    uint32_t delta = static_cast<uint32_t>(1 + rng.UniformInt(3));
    map.AddCount(key, delta);
    reference[key] += delta;
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, count] : reference) {
    ASSERT_EQ(map.Count(key), count) << "key " << key;
  }
}

TEST(FlatCountMapTest, ForEachVisitsEveryEntryOnce) {
  FlatCountMap map;
  for (uint64_t k = 1; k <= 100; ++k) map.AddCount(k, static_cast<uint32_t>(k));
  uint64_t key_sum = 0, value_sum = 0, visits = 0;
  map.ForEach([&](uint64_t key, uint32_t value) {
    key_sum += key;
    value_sum += value;
    ++visits;
  });
  EXPECT_EQ(visits, 100u);
  EXPECT_EQ(key_sum, 5050u);
  EXPECT_EQ(value_sum, 5050u);
}

TEST(FlatCountMapTest, ClearResets) {
  FlatCountMap map;
  for (uint64_t k = 0; k < 200; ++k) map.AddCount(k, 1);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Count(5), 0u);
  map.AddCount(5, 4);
  EXPECT_EQ(map.Count(5), 4u);
}

TEST(FlatCountMapTest, PackedPairKeysRoundTrip) {
  FlatCountMap map;
  // Keys built from node pairs, including extremes below the sentinel.
  map.AddCount(PackPair(0, 0), 1);
  map.AddCount(PackPair(0xFFFFFFFE, 0xFFFFFFFE), 2);
  EXPECT_EQ(map.Count(PackPair(0, 0)), 1u);
  EXPECT_EQ(map.Count(PackPair(0xFFFFFFFE, 0xFFFFFFFE)), 2u);
}

TEST(FlatCountMapDeathTest, SentinelKeyRejected) {
  FlatCountMap map;
  EXPECT_DEATH(map.AddCount(FlatCountMap::kEmptyKey, 1), "Check failed");
}

}  // namespace
}  // namespace reconcile
