// The delta-log reader is the serve subsystem's durability boundary: batch
// boundaries must be deterministic under resume (a re-opened stream skipped
// to the persisted cursor must re-batch the remaining records exactly), so
// leading commits are dropped, commits only close non-empty batches, and
// the cursor counts data records only. Malformed lines must fail with a
// line-numbered diagnostic, never silently skip.
#include "reconcile/serve/delta_log.h"

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

std::string WriteLog(const std::string& name, const std::string& text) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

TEST(DeltaLogTest, ParsesOpsCommentsAndCommits) {
  const std::string path = WriteLog("basic.log",
                                    "# header comment\n"
                                    "add 1 3 4\n"
                                    "del 2 5 6\n"
                                    "\n"
                                    "commit\n"
                                    "add 1 7 8\n");
  DeltaReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;

  std::vector<EdgeDelta> batch;
  bool eos = false;
  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error)) << error;
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FALSE(eos);
  EXPECT_EQ(batch[0].graph, 1);
  EXPECT_TRUE(batch[0].insert);
  EXPECT_EQ(batch[0].u, 3u);
  EXPECT_EQ(batch[0].v, 4u);
  EXPECT_EQ(batch[1].graph, 2);
  EXPECT_FALSE(batch[1].insert);
  EXPECT_EQ(reader.records_consumed(), 2u);

  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error)) << error;
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(eos);  // final batch and end of stream at once
  EXPECT_EQ(reader.records_consumed(), 3u);

  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error)) << error;
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(eos);
}

TEST(DeltaLogTest, MaxRecordsSplitsBatches) {
  const std::string path = WriteLog("split.log",
                                    "add 1 0 1\nadd 1 1 2\nadd 1 2 3\n"
                                    "add 1 3 4\nadd 1 4 5\n");
  DeltaReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  std::vector<EdgeDelta> batch;
  bool eos = false;
  ASSERT_TRUE(reader.NextBatch(2, &batch, &eos, &error));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(eos);
  ASSERT_TRUE(reader.NextBatch(2, &batch, &eos, &error));
  EXPECT_EQ(batch.size(), 2u);
  ASSERT_TRUE(reader.NextBatch(2, &batch, &eos, &error));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_TRUE(eos);
}

TEST(DeltaLogTest, LeadingAndDoubledCommitsAreSkipped) {
  // Leading commits (what a resumed reader sees after skipping past a
  // batch whose commit line follows the skipped records) and doubled
  // commits must not produce empty batches.
  const std::string path = WriteLog("commits.log",
                                    "commit\ncommit\n"
                                    "add 1 0 1\ncommit\ncommit\n"
                                    "add 1 1 2\ncommit\n");
  DeltaReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  std::vector<EdgeDelta> batch;
  bool eos = false;
  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_FALSE(eos);
  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error));
  EXPECT_EQ(batch.size(), 1u);
  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error));
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(eos);
}

TEST(DeltaLogTest, SkipRecordsMatchesResumeCursor) {
  const std::string text =
      "add 1 0 1\nadd 1 1 2\ncommit\n"
      "del 2 3 4\nadd 2 4 5\nadd 2 5 6\ncommit\n"
      "add 1 9 10\n";
  const std::string path = WriteLog("skip.log", text);

  // Reference: read everything in one go, remember where batch 1 ended.
  DeltaReader full;
  std::string error;
  ASSERT_TRUE(full.Open(path, &error));
  std::vector<EdgeDelta> batch;
  bool eos = false;
  ASSERT_TRUE(full.NextBatch(0, &batch, &eos, &error));
  const uint64_t cursor = full.records_consumed();
  ASSERT_EQ(cursor, 2u);
  std::vector<std::vector<EdgeDelta>> rest;
  while (true) {
    ASSERT_TRUE(full.NextBatch(0, &batch, &eos, &error));
    if (!batch.empty()) rest.push_back(batch);
    if (eos) break;
  }

  // Resume path: fresh reader, skip to the cursor, re-read the remainder.
  DeltaReader resumed;
  ASSERT_TRUE(resumed.Open(path, &error));
  ASSERT_TRUE(resumed.SkipRecords(cursor, &error)) << error;
  EXPECT_EQ(resumed.records_consumed(), cursor);
  std::vector<std::vector<EdgeDelta>> replayed;
  while (true) {
    ASSERT_TRUE(resumed.NextBatch(0, &batch, &eos, &error));
    if (!batch.empty()) replayed.push_back(batch);
    if (eos) break;
  }
  ASSERT_EQ(replayed.size(), rest.size());
  for (size_t b = 0; b < rest.size(); ++b) {
    ASSERT_EQ(replayed[b].size(), rest[b].size()) << "batch " << b;
    for (size_t i = 0; i < rest[b].size(); ++i) {
      EXPECT_EQ(replayed[b][i].graph, rest[b][i].graph);
      EXPECT_EQ(replayed[b][i].insert, rest[b][i].insert);
      EXPECT_EQ(replayed[b][i].u, rest[b][i].u);
      EXPECT_EQ(replayed[b][i].v, rest[b][i].v);
    }
  }
}

TEST(DeltaLogTest, SkipPastEndFails) {
  const std::string path = WriteLog("short.log", "add 1 0 1\ncommit\n");
  DeltaReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error));
  EXPECT_FALSE(reader.SkipRecords(5, &error));
  EXPECT_NE(error.find("fast-forwarding"), std::string::npos) << error;
}

TEST(DeltaLogTest, MalformedLinesFailWithLineNumbers) {
  const char* bad[] = {
      "frobnicate 1 2 3\n",     // unknown op
      "add 3 0 1\n",            // graph out of range
      "add 1 0\n",              // missing operand
      "add 1 0 1 extra\n",      // trailing tokens
      "del 1 -2 4\n",           // negative node
  };
  int idx = 0;
  for (const char* text : bad) {
    const std::string path =
        WriteLog("bad" + std::to_string(idx++) + ".log",
                 "add 1 0 1\n" + std::string(text));
    DeltaReader reader;
    std::string error;
    ASSERT_TRUE(reader.Open(path, &error));
    std::vector<EdgeDelta> batch;
    bool eos = false;
    EXPECT_FALSE(reader.NextBatch(0, &batch, &eos, &error)) << text;
    EXPECT_NE(error.find("line 2"), std::string::npos)
        << text << " -> " << error;
  }
}

TEST(DeltaLogTest, FormatDeltaRecordRoundTrips) {
  // The writer helper and the reader's verifier must agree on the
  // canonical text byte-for-byte, for both ops and both graphs.
  const EdgeDelta deltas[] = {{1, true, 3, 4},
                              {2, false, 0, 4294967294u},
                              {1, false, 123456, 7}};
  std::string text;
  for (const EdgeDelta& d : deltas) text += FormatDeltaRecord(d) + "\n";
  const std::string path = WriteLog("crc_roundtrip.log", text);
  DeltaReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error));
  std::vector<EdgeDelta> batch;
  bool eos = false;
  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error)) << error;
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batch[i].graph, deltas[i].graph);
    EXPECT_EQ(batch[i].insert, deltas[i].insert);
    EXPECT_EQ(batch[i].u, deltas[i].u);
    EXPECT_EQ(batch[i].v, deltas[i].v);
  }
}

TEST(DeltaLogTest, CorruptionSweepIsAlwaysDetected) {
  // Flip every field of a checksummed record, one at a time; each must be
  // a line-numbered checksum error in strict mode. This is what the naked
  // text format cannot do — a bit flip in a node id silently rewires an
  // edge.
  const std::string good = FormatDeltaRecord({1, true, 10, 20});
  const char* corrupted[] = {
      "del 1 10 20",  // op flipped
      "add 2 10 20",  // graph flipped
      "add 1 11 20",  // u flipped
      "add 1 10 21",  // v flipped
  };
  const std::string crc = good.substr(good.find(" crc="));
  int idx = 0;
  for (const char* fields : corrupted) {
    const std::string path =
        WriteLog("corrupt" + std::to_string(idx++) + ".log",
                 good + "\n" + fields + crc + "\n");
    DeltaReader reader;
    std::string error;
    ASSERT_TRUE(reader.Open(path, &error));
    std::vector<EdgeDelta> batch;
    bool eos = false;
    EXPECT_FALSE(reader.NextBatch(0, &batch, &eos, &error)) << fields;
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  }
}

TEST(DeltaLogTest, MalformedCrcTokenFails) {
  const char* bad[] = {
      "add 1 0 1 crc=12345\n",      // wrong length
      "add 1 0 1 crc=1234567g\n",   // non-hex digit
      "add 1 0 1 crc=\n",           // empty value
  };
  int idx = 0;
  for (const char* text : bad) {
    const std::string path =
        WriteLog("badcrc" + std::to_string(idx++) + ".log", text);
    DeltaReader reader;
    std::string error;
    ASSERT_TRUE(reader.Open(path, &error));
    std::vector<EdgeDelta> batch;
    bool eos = false;
    EXPECT_FALSE(reader.NextBatch(0, &batch, &eos, &error)) << text;
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  }
}

TEST(DeltaLogTest, TolerantModeRecoversTornTail) {
  // A log cut mid-write: two intact records, then a corrupt one. Tolerant
  // mode must return the intact prefix and report clean end of stream —
  // repeatedly, including on subsequent NextBatch calls.
  const std::string good = FormatDeltaRecord({1, true, 10, 20});
  const std::string torn =  // fields flipped under the intact checksum
      "add 1 10 21" + good.substr(good.find(" crc="));
  const std::string path = WriteLog(
      "torn.log", FormatDeltaRecord({1, true, 0, 1}) + "\n" +
                      FormatDeltaRecord({2, false, 2, 3}) + "\ncommit\n" +
                      torn + "\n" +
                      "add 1 99 99\n");  // intact but after the tear
  DeltaReader reader;
  reader.set_tolerant(true);
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error));
  std::vector<EdgeDelta> batch;
  bool eos = false;
  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error)) << error;
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(eos);  // the commit closed the batch before the tear
  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error)) << error;
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(eos);
  EXPECT_EQ(reader.records_consumed(), 2u);  // nothing after the tear counts
  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error));
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(eos);
}

TEST(DeltaLogTest, TolerantModeKeepsRecordsBeforeTearInSameBatch) {
  // No commit before the tear: the intact records of the torn batch are
  // still delivered, as the final batch.
  const std::string path = WriteLog(
      "torn_batch.log",
      FormatDeltaRecord({1, true, 0, 1}) + "\nadd 1 5 6 crc=00000000\n");
  DeltaReader reader;
  reader.set_tolerant(true);
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error));
  std::vector<EdgeDelta> batch;
  bool eos = false;
  ASSERT_TRUE(reader.NextBatch(0, &batch, &eos, &error)) << error;
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(eos);
  EXPECT_EQ(batch[0].u, 0u);
  EXPECT_EQ(batch[0].v, 1u);
}

TEST(DeltaLogTest, MissingFileFailsToOpen) {
  DeltaReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(testing::TempDir() + "/nope.log", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace reconcile
