// Deterministic fault injection: the spec parser must accept the documented
// grammar and reject malformed entries without arming anything, io points
// must fire on exactly their armed 1-based hit, stop points must request a
// graceful stop, and disarming must silence everything. (The crash kind is
// covered end to end by integration_kill_resume_test, which can afford to
// lose a process.)
#include "reconcile/util/fault.h"

#include <string>

#include <gtest/gtest.h>

#include "reconcile/util/shutdown.h"

namespace reconcile {
namespace {

class FaultTest : public testing::Test {
 protected:
  void SetUp() override {
    DisarmFaults();
    ClearGracefulStop();
  }
  void TearDown() override {
    DisarmFaults();
    ClearGracefulStop();
  }
};

TEST_F(FaultTest, EmptySpecArmsNothing) {
  std::string error;
  EXPECT_TRUE(ArmFaults("", &error));
  EXPECT_EQ(ArmedFaultSpec(), "");
  EXPECT_FALSE(FaultPointHit("checkpoint_write_fail"));
}

TEST_F(FaultTest, ValidSpecsParse) {
  std::string error;
  EXPECT_TRUE(ValidateFaultSpec("crash:after_round=3", &error));
  EXPECT_TRUE(ValidateFaultSpec("stop:after_round=2", &error));
  EXPECT_TRUE(ValidateFaultSpec("io:checkpoint_write_fail", &error));
  EXPECT_TRUE(ValidateFaultSpec("io:checkpoint_truncate=2", &error));
  EXPECT_TRUE(ValidateFaultSpec(
      "io:checkpoint_write_fail;stop:after_round=1,io:checkpoint_truncate=3",
      &error));
  // Threshold points (the `_after` suffix) accept 0: "fail every hit".
  EXPECT_TRUE(ValidateFaultSpec("io:enospc_after=0", &error));
  EXPECT_TRUE(ValidateFaultSpec("io:spill_write_fail=2", &error));
}

TEST_F(FaultTest, ThresholdPointFiresEveryHitPastTheValue) {
  std::string error;
  ASSERT_TRUE(ArmFaults("io:enospc_after=2", &error));
  EXPECT_FALSE(FaultPointExhausted("enospc_after"));  // hit 1
  EXPECT_FALSE(FaultPointExhausted("enospc_after"));  // hit 2
  EXPECT_TRUE(FaultPointExhausted("enospc_after"));   // hit 3: disk "full"
  EXPECT_TRUE(FaultPointExhausted("enospc_after"));   // stays full
}

TEST_F(FaultTest, ThresholdZeroFailsEveryHit) {
  std::string error;
  ASSERT_TRUE(ArmFaults("io:enospc_after=0", &error));
  EXPECT_TRUE(FaultPointExhausted("enospc_after"));
  EXPECT_TRUE(FaultPointExhausted("enospc_after"));
}

TEST_F(FaultTest, MalformedSpecsRejectedWithDiagnostic) {
  const char* bad[] = {
      "after_round=3",         // no kind
      "explode:after_round=1", // unknown kind
      "crash:",                // no point
      "crash:after_round=x",   // non-integer value
      "io:point=0",            // io hit index must be >= 1
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(ValidateFaultSpec(spec, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
    EXPECT_FALSE(ArmFaults(spec, &error)) << spec;
  }
  // Nothing was armed by the failed attempts.
  EXPECT_EQ(ArmedFaultSpec(), "");
}

TEST_F(FaultTest, MalformedArmLeavesPreviousSetIntact) {
  std::string error;
  ASSERT_TRUE(ArmFaults("io:checkpoint_write_fail", &error));
  EXPECT_FALSE(ArmFaults("garbage", &error));
  EXPECT_EQ(ArmedFaultSpec(), "io:checkpoint_write_fail=1");
}

TEST_F(FaultTest, IoPointFiresOnExactlyTheArmedHit) {
  std::string error;
  ASSERT_TRUE(ArmFaults("io:checkpoint_write_fail=3", &error));
  EXPECT_FALSE(FaultPointHit("checkpoint_write_fail"));  // hit 1
  EXPECT_FALSE(FaultPointHit("checkpoint_write_fail"));  // hit 2
  EXPECT_TRUE(FaultPointHit("checkpoint_write_fail"));   // hit 3 fires
  EXPECT_FALSE(FaultPointHit("checkpoint_write_fail"));  // hit 4
  // Other points are untouched by this entry.
  EXPECT_FALSE(FaultPointHit("checkpoint_truncate"));
}

TEST_F(FaultTest, StopPointRequestsGracefulStopAtItsValueOnly) {
  std::string error;
  ASSERT_TRUE(ArmFaults("stop:after_round=2", &error));
  FaultValuePoint("after_round", 1);
  EXPECT_FALSE(GracefulStopRequested());
  FaultValuePoint("after_round", 2);
  EXPECT_TRUE(GracefulStopRequested());
}

TEST_F(FaultTest, ValuePointIgnoresOtherPointNames) {
  std::string error;
  ASSERT_TRUE(ArmFaults("stop:after_round=1", &error));
  FaultValuePoint("some_other_point", 1);
  EXPECT_FALSE(GracefulStopRequested());
}

TEST_F(FaultTest, DisarmSilencesEverything) {
  std::string error;
  ASSERT_TRUE(ArmFaults("io:checkpoint_write_fail;stop:after_round=1",
                        &error));
  DisarmFaults();
  EXPECT_EQ(ArmedFaultSpec(), "");
  EXPECT_FALSE(FaultPointHit("checkpoint_write_fail"));
  FaultValuePoint("after_round", 1);
  EXPECT_FALSE(GracefulStopRequested());
}

TEST_F(FaultTest, RearmResetsHitCounters) {
  std::string error;
  ASSERT_TRUE(ArmFaults("io:checkpoint_write_fail=2", &error));
  EXPECT_FALSE(FaultPointHit("checkpoint_write_fail"));
  ASSERT_TRUE(ArmFaults("io:checkpoint_write_fail=2", &error));
  EXPECT_FALSE(FaultPointHit("checkpoint_write_fail"));  // counter restarted
  EXPECT_TRUE(FaultPointHit("checkpoint_write_fail"));
}

}  // namespace
}  // namespace reconcile
