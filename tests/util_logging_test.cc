#include "reconcile/util/logging.h"

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  RECONCILE_CHECK(1 + 1 == 2) << "never printed";
  RECONCILE_CHECK_EQ(4, 4);
  RECONCILE_CHECK_NE(4, 5);
  RECONCILE_CHECK_LT(1, 2);
  RECONCILE_CHECK_LE(2, 2);
  RECONCILE_CHECK_GT(3, 2);
  RECONCILE_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH(RECONCILE_CHECK(false) << "boom", "Check failed: false");
}

TEST(LoggingDeathTest, CheckEqPrintsValues) {
  int a = 3, b = 7;
  EXPECT_DEATH(RECONCILE_CHECK_EQ(a, b), "3 vs 7");
}

TEST(LoggingDeathTest, CheckLtAbortsOnEqual) {
  EXPECT_DEATH(RECONCILE_CHECK_LT(5, 5), "Check failed");
}

TEST(LoggingTest, SeverityFilterRoundTrips) {
  LogSeverity old_severity = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  // Messages below the filter are dropped silently (no crash / no output
  // assertions possible here, just exercise the path).
  RECONCILE_LOG(Info) << "filtered info";
  RECONCILE_LOG(Warning) << "filtered warning";
  SetMinLogSeverity(old_severity);
}

TEST(LoggingTest, StreamingVariousTypes) {
  // Exercise operator<< overloads; output goes to stderr.
  RECONCILE_LOG(Info) << "int=" << 42 << " double=" << 2.5 << " str="
                      << std::string("s") << " ptrdiff=" << ptrdiff_t{-1};
  SUCCEED();
}

}  // namespace
}  // namespace reconcile
