#include "reconcile/sampling/tie_strength.h"

#include <gtest/gtest.h>

#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"

namespace reconcile {
namespace {

Graph TriangleChain(NodeId triangles) {
  // Chain of triangles sharing no edges: high-embeddedness edges everywhere.
  EdgeList edges;
  for (NodeId t = 0; t < triangles; ++t) {
    const NodeId base = 3 * t;
    edges.Add(base, base + 1);
    edges.Add(base + 1, base + 2);
    edges.Add(base, base + 2);
  }
  return Graph::FromEdgeList(std::move(edges));
}

TEST(TieStrengthTest, DegenerateAllSurvive) {
  Graph g = GenerateErdosRenyi(200, 0.05, 1);
  TieStrengthOptions options;
  options.s_weak = 1.0;
  options.s_strong = 1.0;
  RealizationPair pair = SampleTieStrength(g, options, 7);
  EXPECT_EQ(pair.g1.num_edges(), g.num_edges());
  EXPECT_EQ(pair.g2.num_edges(), g.num_edges());
}

TEST(TieStrengthTest, DegenerateNoneSurvive) {
  Graph g = GenerateErdosRenyi(200, 0.05, 1);
  TieStrengthOptions options;
  options.s_weak = 0.0;
  options.s_strong = 0.0;
  RealizationPair pair = SampleTieStrength(g, options, 7);
  EXPECT_EQ(pair.g1.num_edges(), 0u);
  EXPECT_EQ(pair.g2.num_edges(), 0u);
}

TEST(TieStrengthTest, EmbeddedEdgesSurviveMoreOften) {
  // A sparse ER graph has near-zero embeddedness; a triangle chain has
  // embeddedness 1 on every edge. With a steep ramp the triangle edges
  // must survive at a visibly higher rate.
  TieStrengthOptions options;
  options.s_weak = 0.2;
  options.s_strong = 1.0;
  options.embed_cap = 1;

  Graph tri = TriangleChain(400);  // 1200 edges, all embeddedness 1
  RealizationPair p1 = SampleTieStrength(tri, options, 3);
  const double tri_rate =
      static_cast<double>(p1.g1.num_edges()) / tri.num_edges();
  EXPECT_GT(tri_rate, 0.95);

  Graph er = GenerateErdosRenyi(2000, 0.001, 5);  // ~2000 edges, ~0 embed
  ASSERT_GT(er.num_edges(), 500u);
  RealizationPair p2 = SampleTieStrength(er, options, 3);
  const double er_rate =
      static_cast<double>(p2.g1.num_edges()) / er.num_edges();
  EXPECT_LT(er_rate, 0.35);
}

TEST(TieStrengthTest, CopiesArePositivelyCorrelated) {
  // Mixed-embeddedness graph: edges present in g1 should be present in g2
  // more often than the marginal rate (both draws share the per-edge p).
  Graph g = GeneratePreferentialAttachment(3000, 5, 11);
  TieStrengthOptions options;
  options.s_weak = 0.1;
  options.s_strong = 0.9;
  RealizationPair pair = SampleTieStrength(g, options, 13);

  size_t in1 = 0, in_both = 0;
  size_t total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v <= u) continue;
      ++total;
      const NodeId u2 = pair.map_1to2[u];
      const NodeId v2 = pair.map_1to2[v];
      const bool e1 = pair.g1.HasEdge(u, v);
      const bool e2 = u2 != kInvalidNode && v2 != kInvalidNode &&
                      pair.g2.HasEdge(u2, v2);
      if (e1) ++in1;
      if (e1 && e2) ++in_both;
    }
  }
  ASSERT_GT(in1, 0u);
  const double marginal = static_cast<double>(in1) / total;
  const double conditional = static_cast<double>(in_both) / in1;
  EXPECT_GT(conditional, marginal + 0.05);
}

TEST(TieStrengthTest, GroundTruthMapsAreConsistent) {
  Graph g = GenerateErdosRenyi(300, 0.03, 17);
  RealizationPair pair = SampleTieStrength(g, TieStrengthOptions{}, 19);
  ASSERT_EQ(pair.map_1to2.size(), g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId v = pair.map_1to2[u];
    if (v != kInvalidNode) {
      EXPECT_EQ(pair.map_2to1[v], u);
    }
  }
}

TEST(TieStrengthTest, InvalidCapDies) {
  Graph g = GenerateErdosRenyi(10, 0.5, 1);
  TieStrengthOptions options;
  options.embed_cap = 0;
  EXPECT_DEATH(SampleTieStrength(g, options, 1), "");
}

TEST(TieStrengthTest, DeterministicForSeed) {
  Graph g = GenerateErdosRenyi(300, 0.03, 23);
  RealizationPair a = SampleTieStrength(g, TieStrengthOptions{}, 29);
  RealizationPair b = SampleTieStrength(g, TieStrengthOptions{}, 29);
  EXPECT_EQ(a.g1.num_edges(), b.g1.num_edges());
  EXPECT_EQ(a.g2.num_edges(), b.g2.num_edges());
}

}  // namespace
}  // namespace reconcile
