#include "reconcile/baseline/common_neighbors.h"

#include <gtest/gtest.h>

#include "reconcile/eval/datasets.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

TEST(SimpleMatcherTest, WorksOnIdenticalGraphs) {
  EdgeList edges(6);
  for (NodeId leaf = 1; leaf <= 4; ++leaf) edges.Add(0, leaf);
  edges.Add(1, 2);
  edges.Add(4, 5);
  Graph g = Graph::FromEdgeList(std::move(edges));
  SimpleMatcherConfig config;
  config.num_iterations = 4;
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 0}, {1, 1}};
  MatchResult result = SimpleCommonNeighborsMatch(g, g, seeds, config);
  EXPECT_GT(result.NumNewLinks(), 0u);
  for (NodeId u = 0; u < result.map_1to2.size(); ++u) {
    if (result.map_1to2[u] != kInvalidNode) {
      EXPECT_EQ(result.map_1to2[u], u);
    }
  }
}

TEST(SimpleMatcherTest, SingleRoundPerIteration) {
  Graph g = GeneratePreferentialAttachment(1000, 8, 3);
  RealizationPair pair = SampleIndependent(g, {}, 5);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 7);
  SimpleMatcherConfig config;
  config.num_iterations = 2;
  MatchResult result = SimpleCommonNeighborsMatch(pair.g1, pair.g2, seeds, config);
  // No bucketing: at most one phase per iteration.
  EXPECT_LE(result.phases.size(), 2u);
}

TEST(SimpleMatcherTest, MakesMoreErrorsThanBucketedMatcher) {
  // The paper's ablation (§5 Q8) on its Facebook setup: the full algorithm
  // (bucketing, T=2) vs the simple variant (no bucketing, T=1). The paper
  // reports ~50% more bad matches for the simple variant with no
  // significant change in good matches.
  Graph g = MakeFacebookStandin(0.05, 9);
  RealizationPair pair = SampleIndependent(g, {}, 11);
  SeedOptions seed_options;
  seed_options.fraction = 0.05;
  auto seeds = GenerateSeeds(pair, seed_options, 13);

  SimpleMatcherConfig simple;
  simple.min_score = 1;
  MatchResult simple_result =
      SimpleCommonNeighborsMatch(pair.g1, pair.g2, seeds, simple);

  MatcherConfig bucketed;
  bucketed.min_score = 2;
  MatchResult full_result = UserMatching(pair.g1, pair.g2, seeds, bucketed);

  MatchQuality simple_q = Evaluate(pair, simple_result);
  MatchQuality full_q = Evaluate(pair, full_result);
  EXPECT_GT(simple_q.new_bad, full_q.new_bad);
  EXPECT_LE(simple_q.precision, full_q.precision + 1e-12);
}

TEST(SimpleMatcherTest, RespectsThreshold) {
  Graph g = GeneratePreferentialAttachment(500, 6, 15);
  RealizationPair pair = SampleIndependent(g, {}, 17);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 19);
  SimpleMatcherConfig strict;
  strict.min_score = 100;  // unreachable
  MatchResult result = SimpleCommonNeighborsMatch(pair.g1, pair.g2, seeds, strict);
  EXPECT_EQ(result.NumNewLinks(), 0u);
}

}  // namespace
}  // namespace reconcile
