// Snapshot substrate: writes must round-trip bit for bit through the
// sectioned format, commits must be atomic (a failed or injected-fault
// commit leaves the previous file intact), and every class of corruption —
// truncation at any boundary, a bit flip anywhere, version skew, trailing
// garbage — must be a clean Open/read failure with a diagnostic, never a
// crash or an absurd allocation.
#include "reconcile/util/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/util/fault.h"

namespace reconcile {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A two-section snapshot with enough variety to exercise every Append/Read
// pair.
void WriteSample(const std::string& path) {
  SnapshotWriter writer;
  writer.BeginSection(1);
  writer.AppendU8(7);
  writer.AppendU32(0xdeadbeefu);
  writer.AppendU64(1ull << 40);
  writer.AppendI32(-12);
  writer.AppendI64(-(1ll << 35));
  writer.EndSection();
  writer.BeginSection(2);
  writer.AppendVector(std::vector<uint64_t>{1, 2, 3, 5, 8, 13});
  writer.AppendVector(std::vector<uint32_t>{});
  writer.EndSection();
  std::string error;
  ASSERT_TRUE(writer.Commit(path, &error)) << error;
}

TEST(Crc32Test, MatchesKnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  // Chaining two halves equals one shot.
  uint32_t chained = Crc32("1234", 4);
  chained = Crc32("56789", 5, chained);
  EXPECT_EQ(chained, 0xCBF43926u);
}

TEST(SnapshotTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.ckpt");
  WriteSample(path);

  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_EQ(reader.num_sections(), 2u);

  SnapshotReader::Section* meta = reader.Find(1);
  ASSERT_NE(meta, nullptr);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  EXPECT_TRUE(meta->ReadU8(&u8));
  EXPECT_TRUE(meta->ReadU32(&u32));
  EXPECT_TRUE(meta->ReadU64(&u64));
  EXPECT_TRUE(meta->ReadI32(&i32));
  EXPECT_TRUE(meta->ReadI64(&i64));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i32, -12);
  EXPECT_EQ(i64, -(1ll << 35));
  EXPECT_TRUE(meta->AtEnd());

  SnapshotReader::Section* data = reader.Find(2);
  ASSERT_NE(data, nullptr);
  std::vector<uint64_t> fib;
  std::vector<uint32_t> empty{99};
  EXPECT_TRUE(data->ReadVector(&fib));
  EXPECT_TRUE(data->ReadVector(&empty));
  EXPECT_EQ(fib, (std::vector<uint64_t>{1, 2, 3, 5, 8, 13}));
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(data->AtEnd());

  EXPECT_EQ(reader.Find(3), nullptr);
  std::remove(path.c_str());
}

TEST(SnapshotTest, ReadPastEndFailsCleanly) {
  const std::string path = TempPath("pastend.ckpt");
  WriteSample(path);
  SnapshotReader reader;
  std::string error;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  SnapshotReader::Section* meta = reader.Find(1);
  ASSERT_NE(meta, nullptr);
  // Drain it, then keep reading: every further read fails and poisons ok().
  uint64_t sink = 0;
  while (meta->ReadU8(reinterpret_cast<uint8_t*>(&sink))) {
  }
  EXPECT_FALSE(meta->ok());
  EXPECT_FALSE(meta->ReadU64(&sink));
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncationAtEveryBoundaryRejected) {
  const std::string path = TempPath("trunc.ckpt");
  WriteSample(path);
  const std::vector<char> whole = Slurp(path);
  const std::string cut = TempPath("trunc_cut.ckpt");
  // Every strictly shorter prefix must be rejected (empty file included).
  for (size_t keep : {size_t{0}, size_t{4}, size_t{8}, size_t{12},
                      size_t{16}, whole.size() / 2, whole.size() - 1}) {
    ASSERT_LT(keep, whole.size());
    Spit(cut, std::vector<char>(whole.begin(),
                                whole.begin() + static_cast<ptrdiff_t>(keep)));
    SnapshotReader reader;
    std::string error;
    EXPECT_FALSE(reader.Open(cut, &error)) << "kept " << keep << " bytes";
    EXPECT_FALSE(error.empty());
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(SnapshotTest, BitFlipAnywhereRejected) {
  const std::string path = TempPath("flip.ckpt");
  WriteSample(path);
  const std::vector<char> whole = Slurp(path);
  const std::string flipped = TempPath("flip_out.ckpt");
  // Flip one bit in every byte position in turn. The only field the format
  // deliberately leaves outside any checksum is the section *id* (a flipped
  // id yields a structurally valid file whose sections are simply not
  // found); every other position — magic, version, count, lengths, CRCs,
  // payload bytes — must make Open fail outright.
  for (size_t i = 0; i < whole.size(); ++i) {
    std::vector<char> copy = whole;
    copy[i] = static_cast<char>(copy[i] ^ 0x10);
    Spit(flipped, copy);
    SnapshotReader reader;
    std::string error;
    if (reader.Open(flipped, &error)) {
      const bool ids_intact =
          reader.Find(1) != nullptr && reader.Find(2) != nullptr;
      EXPECT_FALSE(ids_intact)
          << "flip at byte " << i
          << " was accepted without even renaming a section";
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
  std::remove(path.c_str());
  std::remove(flipped.c_str());
}

TEST(SnapshotTest, VersionSkewRejected) {
  const std::string path = TempPath("skew.ckpt");
  WriteSample(path);
  std::vector<char> bytes = Slurp(path);
  // The format version is the u32 after the u64 magic.
  bytes[8] = static_cast<char>(kSnapshotFormatVersion + 1);
  Spit(path, bytes);
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, TrailingGarbageRejected) {
  const std::string path = TempPath("trailing.ckpt");
  WriteSample(path);
  std::vector<char> bytes = Slurp(path);
  bytes.push_back('x');
  Spit(path, bytes);
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  std::remove(path.c_str());
}

TEST(SnapshotTest, HugeDeclaredVectorFailsWithoutAllocating) {
  // A section whose vector length field claims far more elements than the
  // payload holds: ReadVector must fail before resizing.
  SnapshotWriter writer;
  writer.BeginSection(1);
  writer.AppendU64(~0ull);  // absurd element count
  writer.AppendU64(123);    // 8 bytes of "payload"
  writer.EndSection();
  const std::string path = TempPath("huge.ckpt");
  std::string error;
  ASSERT_TRUE(writer.Commit(path, &error)) << error;
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  SnapshotReader::Section* section = reader.Find(1);
  ASSERT_NE(section, nullptr);
  std::vector<uint64_t> out;
  EXPECT_FALSE(section->ReadVector(&out));
  EXPECT_FALSE(section->ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, CommitReplacesAtomically) {
  const std::string path = TempPath("atomic.ckpt");
  WriteSample(path);
  const std::vector<char> first = Slurp(path);
  // Overwrite with different content; the old file is fully replaced.
  SnapshotWriter writer;
  writer.BeginSection(9);
  writer.AppendU64(42);
  writer.EndSection();
  std::string error;
  ASSERT_TRUE(writer.Commit(path, &error)) << error;
  const std::vector<char> second = Slurp(path);
  EXPECT_NE(first, second);
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_NE(reader.Find(9), nullptr);
  std::remove(path.c_str());
}

TEST(SnapshotTest, InjectedWriteFailureLeavesTargetIntact) {
  const std::string path = TempPath("writefail.ckpt");
  WriteSample(path);
  const std::vector<char> before = Slurp(path);

  std::string error;
  ASSERT_TRUE(ArmFaults("io:checkpoint_write_fail", &error));
  SnapshotWriter writer;
  writer.BeginSection(1);
  writer.AppendU64(999);
  writer.EndSection();
  EXPECT_FALSE(writer.Commit(path, &error));
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
  DisarmFaults();

  EXPECT_EQ(Slurp(path), before);  // the old snapshot survived
  std::remove(path.c_str());
}

TEST(SnapshotTest, InjectedTornWriteIsDetectedOnOpen) {
  // checkpoint_truncate writes half the blob under the final name and
  // reports success — the reader must catch it.
  const std::string path = TempPath("torn.ckpt");
  std::string error;
  ASSERT_TRUE(ArmFaults("io:checkpoint_truncate", &error));
  SnapshotWriter writer;
  writer.BeginSection(1);
  writer.AppendVector(std::vector<uint64_t>(64, 7));
  writer.EndSection();
  EXPECT_TRUE(writer.Commit(path, &error)) << error;
  DisarmFaults();

  SnapshotReader reader;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(CheckpointDirTest, PathsListAndOrder) {
  const std::string dir = TempPath("ckpt_dir");
  std::string error;
  ASSERT_TRUE(EnsureDir(dir, &error)) << error;
  ASSERT_TRUE(EnsureDir(dir, &error)) << "EnsureDir must be idempotent";

  EXPECT_TRUE(ListCheckpoints(dir).empty());
  EXPECT_TRUE(ListCheckpoints(dir + "/missing").empty());

  // Write rounds out of order plus decoys that must be skipped.
  for (int round : {12, 3, 7}) {
    SnapshotWriter writer;
    writer.BeginSection(1);
    writer.AppendU64(static_cast<uint64_t>(round));
    writer.EndSection();
    ASSERT_TRUE(writer.Commit(CheckpointPath(dir, round), &error)) << error;
  }
  { std::ofstream(dir + "/state-round-xyz.ckpt") << "decoy"; }
  { std::ofstream(dir + "/notes.txt") << "decoy"; }

  std::vector<CheckpointFile> found = ListCheckpoints(dir);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0].round, 3);
  EXPECT_EQ(found[1].round, 7);
  EXPECT_EQ(found[2].round, 12);
  EXPECT_EQ(found[2].path, CheckpointPath(dir, 12));

  for (const CheckpointFile& file : found) std::remove(file.path.c_str());
  std::remove((dir + "/state-round-xyz.ckpt").c_str());
  std::remove((dir + "/notes.txt").c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace reconcile
