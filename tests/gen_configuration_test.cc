#include "reconcile/gen/configuration.h"

#include <numeric>

#include <gtest/gtest.h>

#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/graph/statistics.h"

namespace reconcile {
namespace {

TEST(ConfigurationModelTest, EmptySequence) {
  Graph g = GenerateConfigurationModel({}, 1);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(ConfigurationModelTest, AllZeroDegrees) {
  Graph g = GenerateConfigurationModel({0, 0, 0}, 1);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(ConfigurationModelTest, SingleEdgePair) {
  // Two degree-1 nodes must be matched to each other.
  Graph g = GenerateConfigurationModel({1, 1}, 99);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(ConfigurationModelTest, RealizedDegreesNeverExceedRequested) {
  std::vector<NodeId> degrees = {5, 3, 3, 2, 2, 2, 1, 1, 1, 2};
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph g = GenerateConfigurationModel(degrees, seed);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_LE(g.degree(v), degrees[v]) << "seed " << seed << " node " << v;
  }
}

TEST(ConfigurationModelTest, SparseSequenceNearlyExact) {
  // In a sparse sequence the expected number of erased (loop/parallel)
  // pairings is O((avg_deg)^2), a vanishing fraction: realized edge count
  // must be very close to half the stub count.
  std::vector<NodeId> degrees(5000, 4);
  Graph g = GenerateConfigurationModel(degrees, 7);
  EXPECT_GT(g.num_edges(), static_cast<size_t>(0.99 * 5000 * 4 / 2));
}

TEST(ConfigurationModelTest, OddDegreeSumDies) {
  EXPECT_DEATH(GenerateConfigurationModel({1, 1, 1}, 1), "even degree sum");
}

TEST(ConfigurationModelTest, DeterministicForSeed) {
  std::vector<NodeId> degrees(200, 3);
  degrees.push_back(2);  // even sum: 602
  Graph a = GenerateConfigurationModel(degrees, 42);
  Graph b = GenerateConfigurationModel(degrees, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    auto na = a.Neighbors(v);
    auto nb = b.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(ConfigurationModelTest, DifferentSeedsDiffer) {
  std::vector<NodeId> degrees(500, 4);
  Graph a = GenerateConfigurationModel(degrees, 1);
  Graph b = GenerateConfigurationModel(degrees, 2);
  // Graphs on 500 nodes with 1000 edges virtually never coincide.
  bool differ = a.num_edges() != b.num_edges();
  if (!differ) {
    for (NodeId v = 0; v < a.num_nodes() && !differ; ++v) {
      auto na = a.Neighbors(v);
      auto nb = b.Neighbors(v);
      differ = na.size() != nb.size() ||
               !std::equal(na.begin(), na.end(), nb.begin());
    }
  }
  EXPECT_TRUE(differ);
}

TEST(ConfigurationModelTest, RewiringPreservesDegreeProfile) {
  // Rewiring a PA graph keeps the degree sequence (nearly) intact but
  // destroys clustering — the degree-only null model.
  Graph pa = GeneratePreferentialAttachment(3000, 4, 11);
  std::vector<NodeId> degrees = DegreeSequenceOf(pa);
  size_t sum = std::accumulate(degrees.begin(), degrees.end(), size_t{0});
  if (sum % 2 == 1) ++degrees[0];
  Graph rewired = GenerateConfigurationModel(degrees, 13);
  // Within 2% of the original edge count (erasures are rare).
  EXPECT_GT(rewired.num_edges(), static_cast<size_t>(0.98 * pa.num_edges()));
  EXPECT_LE(rewired.num_edges(), pa.num_edges() + 1);
  EXPECT_EQ(rewired.num_nodes(), pa.num_nodes());
}

TEST(DegreeSequenceTest, MatchesGraphDegrees) {
  Graph g = GeneratePreferentialAttachment(100, 3, 5);
  std::vector<NodeId> degrees = DegreeSequenceOf(g);
  ASSERT_EQ(degrees.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(degrees[v], g.degree(v));
}

}  // namespace
}  // namespace reconcile
