#include "reconcile/seed/seeding.h"

#include <set>

#include <gtest/gtest.h>

#include "reconcile/gen/chung_lu.h"
#include "reconcile/sampling/independent.h"

namespace reconcile {
namespace {

RealizationPair TestPair(uint64_t seed) {
  std::vector<double> w = PowerLawWeights(3000, 2.5, 20.0);
  Graph g = GenerateChungLu(w, seed);
  return SampleIndependent(g, {}, seed + 1);
}

TEST(SeedingTest, AllSeedsAreTruePairs) {
  RealizationPair pair = TestPair(3);
  SeedOptions options;
  options.fraction = 0.2;
  auto seeds = GenerateSeeds(pair, options, 5);
  ASSERT_FALSE(seeds.empty());
  for (const auto& [u, v] : seeds) {
    EXPECT_EQ(pair.map_1to2[u], v);
  }
}

TEST(SeedingTest, UniformFractionRespected) {
  RealizationPair pair = TestPair(7);
  SeedOptions options;
  options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, options, 9);
  double rate = static_cast<double>(seeds.size()) /
                static_cast<double>(pair.g1.num_nodes());
  EXPECT_NEAR(rate, 0.1, 0.02);
}

TEST(SeedingTest, NoDuplicateEndpoints) {
  RealizationPair pair = TestPair(11);
  SeedOptions options;
  options.fraction = 0.3;
  auto seeds = GenerateSeeds(pair, options, 13);
  std::set<NodeId> left, right;
  for (const auto& [u, v] : seeds) {
    EXPECT_TRUE(left.insert(u).second);
    EXPECT_TRUE(right.insert(v).second);
  }
}

TEST(SeedingTest, ZeroFractionYieldsNothing) {
  RealizationPair pair = TestPair(17);
  SeedOptions options;
  options.fraction = 0.0;
  EXPECT_TRUE(GenerateSeeds(pair, options, 19).empty());
}

TEST(SeedingTest, FullFractionSeedsEveryMappedNode) {
  RealizationPair pair = TestPair(21);
  SeedOptions options;
  options.fraction = 1.0;
  auto seeds = GenerateSeeds(pair, options, 23);
  size_t mapped = 0;
  for (NodeId v : pair.map_1to2) {
    if (v != kInvalidNode) ++mapped;
  }
  EXPECT_EQ(seeds.size(), mapped);
}

TEST(SeedingTest, DegreeBiasPrefersHighDegree) {
  RealizationPair pair = TestPair(25);
  SeedOptions uniform, biased;
  uniform.fraction = biased.fraction = 0.1;
  biased.bias = SeedBias::kDegreeProportional;
  auto u_seeds = GenerateSeeds(pair, uniform, 27);
  auto b_seeds = GenerateSeeds(pair, biased, 27);
  auto avg_degree = [&pair](const auto& seeds) {
    double sum = 0;
    for (const auto& [u, v] : seeds) {
      (void)v;
      sum += pair.g1.degree(u);
    }
    return sum / static_cast<double>(seeds.size());
  };
  EXPECT_GT(avg_degree(b_seeds), 1.5 * avg_degree(u_seeds));
}

TEST(SeedingTest, TopDegreeTakesExactCount) {
  RealizationPair pair = TestPair(29);
  SeedOptions options;
  options.bias = SeedBias::kTopDegree;
  options.fixed_count = 50;
  auto seeds = GenerateSeeds(pair, options, 31);
  ASSERT_EQ(seeds.size(), 50u);
  // The chosen seeds dominate in min-degree: every selected pair has
  // min-degree >= that of any unselected identifiable pair... spot-check by
  // comparing the minimum selected degree against the population median.
  NodeId min_selected = kInvalidNode;
  for (const auto& [u, v] : seeds) {
    min_selected =
        std::min(min_selected, std::min(pair.g1.degree(u), pair.g2.degree(v)));
  }
  size_t higher = 0;
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    if (pair.g1.degree(u) > min_selected) ++higher;
  }
  // At most ~seeds.size() nodes can strictly dominate the weakest seed.
  EXPECT_LE(higher, 3 * seeds.size());
}

TEST(SeedingTest, SeedsExcludeUnmappedNodes) {
  Graph g = GenerateChungLu(PowerLawWeights(2000, 2.5, 15.0), 33);
  IndependentSampleOptions sample;
  sample.node_keep1 = 0.5;  // many unmapped nodes
  RealizationPair pair = SampleIndependent(g, sample, 35);
  SeedOptions options;
  options.fraction = 1.0;
  auto seeds = GenerateSeeds(pair, options, 37);
  for (const auto& [u, v] : seeds) {
    EXPECT_NE(pair.map_1to2[u], kInvalidNode);
    EXPECT_EQ(pair.map_1to2[u], v);
  }
}

TEST(SeedingTest, Deterministic) {
  RealizationPair pair = TestPair(41);
  SeedOptions options;
  options.fraction = 0.15;
  EXPECT_EQ(GenerateSeeds(pair, options, 43), GenerateSeeds(pair, options, 43));
}

}  // namespace
}  // namespace reconcile
