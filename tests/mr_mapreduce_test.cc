#include "reconcile/mr/mapreduce.h"

#include <atomic>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace reconcile {
namespace {

TEST(ParallelForTest, CoversWholeRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  mr::ParallelFor(&pool, 1000, 37, [&touched](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (size_t i = 0; i < 1000; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  mr::ParallelFor(&pool, 0, 10, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, GrainLargerThanRange) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  mr::ParallelFor(&pool, 5, 1000, [&total](size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 5u);
}

TEST(ShardOfKeyTest, StableAndInRange) {
  for (uint64_t key = 0; key < 1000; ++key) {
    int shard = mr::ShardOfKey(key, 7);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 7);
    EXPECT_EQ(shard, mr::ShardOfKey(key, 7));
  }
}

TEST(ShardOfKeyTest, SpreadsKeys) {
  std::vector<int> counts(8, 0);
  for (uint64_t key = 0; key < 8000; ++key) ++counts[static_cast<size_t>(mr::ShardOfKey(key, 8))];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

// Word-count style golden test: each item i emits keys i%k for i in [0,n).
TEST(CountByKeyTest, CountsMatchSequentialReference) {
  ThreadPool pool(4);
  constexpr size_t kItems = 10000;
  constexpr uint64_t kDistinct = 23;
  std::vector<FlatCountMap> shards = mr::CountByKey(
      &pool, kItems, /*num_map_shards=*/13, /*num_reduce_shards=*/5,
      [](size_t item, auto emit) {
        emit(item % kDistinct);
        if (item % 2 == 0) emit(item % kDistinct);  // double-emit evens
      });

  std::map<uint64_t, uint32_t> combined;
  for (const FlatCountMap& shard : shards) {
    shard.ForEach([&combined](uint64_t key, uint32_t count) {
      EXPECT_EQ(combined.count(key), 0u) << "key in two shards";
      combined[key] = count;
    });
  }
  std::map<uint64_t, uint32_t> reference;
  for (size_t item = 0; item < kItems; ++item) {
    reference[item % kDistinct] += (item % 2 == 0) ? 2 : 1;
  }
  EXPECT_EQ(combined, reference);
}

TEST(CountByKeyTest, KeysLandInTheirShard) {
  ThreadPool pool(2);
  const int kReduceShards = 4;
  std::vector<FlatCountMap> shards = mr::CountByKey(
      &pool, 1000, 3, kReduceShards,
      [](size_t item, auto emit) { emit(static_cast<uint64_t>(item) * 7919); });
  for (int r = 0; r < kReduceShards; ++r) {
    shards[static_cast<size_t>(r)].ForEach([r](uint64_t key, uint32_t) {
      EXPECT_EQ(mr::ShardOfKey(key, kReduceShards), r);
    });
  }
}

TEST(CountByKeyTest, ResultsIndependentOfShardCounts) {
  auto run = [](int map_shards, int reduce_shards, int threads) {
    ThreadPool pool(threads);
    std::vector<FlatCountMap> shards = mr::CountByKey(
        &pool, 5000, map_shards, reduce_shards, [](size_t item, auto emit) {
          emit(HashMix64(item) % 97);
          emit(HashMix64(item * 31) % 13);
        });
    std::map<uint64_t, uint32_t> combined;
    for (const FlatCountMap& shard : shards) {
      shard.ForEach(
          [&combined](uint64_t key, uint32_t count) { combined[key] += count; });
    }
    return combined;
  };
  auto a = run(1, 1, 1);
  auto b = run(16, 7, 4);
  auto c = run(5, 3, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(CountByKeyTest, NoItemsYieldsEmptyShards) {
  ThreadPool pool(2);
  std::vector<FlatCountMap> shards =
      mr::CountByKey(&pool, 0, 4, 4, [](size_t, auto emit) { emit(1); });
  for (const FlatCountMap& shard : shards) EXPECT_TRUE(shard.empty());
}

TEST(CountByKeyTest, HeavyDuplicationAggregates) {
  ThreadPool pool(4);
  std::vector<FlatCountMap> shards = mr::CountByKey(
      &pool, 100000, 8, 3, [](size_t, auto emit) { emit(42); });
  uint64_t total = 0;
  for (const FlatCountMap& shard : shards) total += shard.Count(42);
  EXPECT_EQ(total, 100000u);
}

}  // namespace
}  // namespace reconcile
