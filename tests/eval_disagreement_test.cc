#include "reconcile/eval/disagreement.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "reconcile/api/registry.h"
#include "reconcile/api/spec.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/sbm.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

// SBM scenario with known (identity) ground truth: four planted
// communities, two partial copies, uniform seeds — the ISSUE's disagreement
// scenario.
struct Scenario {
  RealizationPair pair;
  std::vector<std::pair<NodeId, NodeId>> seeds;
};

Scenario MakeSbmScenario() {
  SbmParams params;
  params.block_sizes = {300, 300, 300, 300};
  params.p_in = 0.04;
  params.p_out = 0.002;
  Graph g = GenerateSbm(params, 7701);
  IndependentSampleOptions options;
  options.s1 = 0.8;
  options.s2 = 0.8;
  Scenario s;
  s.pair = SampleIndependent(g, options, 7703);
  SeedOptions seeding;
  seeding.fraction = 0.08;
  s.seeds = GenerateSeeds(s.pair, seeding, 7705);
  return s;
}

MatchResult RunAlgorithm(const Scenario& s, const std::string& spec_text) {
  ReconcilerSpec spec;
  std::string error;
  EXPECT_TRUE(ReconcilerSpec::Parse(spec_text, &spec, &error)) << error;
  return Registry::Global().CreateOrDie(spec)->Run(s.pair.g1, s.pair.g2,
                                                   s.seeds);
}

TEST(DisagreementTest, PartitionSumsToTargets) {
  Scenario s = MakeSbmScenario();
  MatchResult core = RunAlgorithm(s, "core:threshold=2");
  MatchResult bp = RunAlgorithm(s, "bp");
  DisagreementReport report = CompareMatchings(s.pair, core, bp);

  // The four cells partition the identifiable-not-seeded targets exactly.
  EXPECT_GT(report.num_targets, 0u);
  EXPECT_EQ(report.both_good + report.only_a_good + report.only_b_good +
                report.neither_good,
            report.num_targets);
  // Link-level tallies partition each side's discovered links too.
  EXPECT_EQ(report.agree_links + report.conflict_links + report.a_only_links,
            report.a_matched);
  EXPECT_EQ(report.agree_links + report.conflict_links + report.b_only_links,
            report.b_matched);
  // Both algorithms find something on this scenario, and each recovers
  // pairs the other misses — the reason the harness exists.
  EXPECT_GT(report.both_good, 0u);
}

TEST(DisagreementTest, AgreesWithPerAlgorithmMetrics) {
  Scenario s = MakeSbmScenario();
  MatchResult core = RunAlgorithm(s, "core:threshold=2");
  MatchResult bp = RunAlgorithm(s, "bp");
  DisagreementReport report = CompareMatchings(s.pair, core, bp);
  MatchQuality core_q = Evaluate(s.pair, core);
  MatchQuality bp_q = Evaluate(s.pair, bp);
  // Each side's correct-target total must equal its recall numerator.
  EXPECT_EQ(report.both_good + report.only_a_good, core_q.new_good);
  EXPECT_EQ(report.both_good + report.only_b_good, bp_q.new_good);
}

TEST(DisagreementTest, ReproducibleAcrossThreadCounts) {
  Scenario s = MakeSbmScenario();
  DisagreementReport reference;
  bool have_reference = false;
  for (int threads : {1, 3, 7}) {
    MatchResult core = RunAlgorithm(s, "core:threshold=2,threads=" +
                                           std::to_string(threads));
    MatchResult bp =
        RunAlgorithm(s, "bp:threads=" + std::to_string(threads));
    DisagreementReport report = CompareMatchings(s.pair, core, bp);
    if (!have_reference) {
      reference = report;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(report.num_targets, reference.num_targets);
    EXPECT_EQ(report.both_good, reference.both_good);
    EXPECT_EQ(report.only_a_good, reference.only_a_good);
    EXPECT_EQ(report.only_b_good, reference.only_b_good);
    EXPECT_EQ(report.neither_good, reference.neither_good);
    EXPECT_EQ(report.agree_links, reference.agree_links);
    EXPECT_EQ(report.conflict_links, reference.conflict_links);
    EXPECT_EQ(report.a_only_links, reference.a_only_links);
    EXPECT_EQ(report.b_only_links, reference.b_only_links);
  }
}

TEST(DisagreementTest, IdenticalInputsShowNoDisagreement) {
  Scenario s = MakeSbmScenario();
  MatchResult core = RunAlgorithm(s, "core:threshold=2");
  DisagreementReport report = CompareMatchings(s.pair, core, core);
  EXPECT_EQ(report.only_a_good, 0u);
  EXPECT_EQ(report.only_b_good, 0u);
  EXPECT_EQ(report.conflict_links, 0u);
  EXPECT_EQ(report.a_only_links, 0u);
  EXPECT_EQ(report.b_only_links, 0u);
  EXPECT_EQ(report.agree_links, report.a_matched);
}

TEST(DisagreementTest, FormatNamesBothSides) {
  Scenario s = MakeSbmScenario();
  MatchResult core = RunAlgorithm(s, "core:threshold=2");
  MatchResult bp = RunAlgorithm(s, "bp");
  const std::string text = FormatDisagreementReport(
      CompareMatchings(s.pair, core, bp), "core", "bp");
  EXPECT_NE(text.find("core-only"), std::string::npos);
  EXPECT_NE(text.find("bp-only"), std::string::npos);
  EXPECT_NE(text.find("targets"), std::string::npos);
}

}  // namespace
}  // namespace reconcile
