// End-to-end pipeline tests: model -> two copies -> seeds -> matcher ->
// metrics, across every sampling model at laptop-test scale. These mirror
// the paper's experimental setups qualitatively.
#include <gtest/gtest.h>

#include "reconcile/baseline/common_neighbors.h"
#include "reconcile/core/matcher.h"
#include "reconcile/eval/datasets.h"
#include "reconcile/eval/experiment.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/attack.h"
#include "reconcile/sampling/cascade.h"
#include "reconcile/sampling/community.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/sampling/timeslice.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

SeedOptions Fraction(double l) {
  SeedOptions options;
  options.fraction = l;
  return options;
}

TEST(EndToEndTest, ErdosRenyiIndependentDeletionPerfectPrecision) {
  // Theory regime (§4.1): nps well above log n, threshold 3.
  Graph g = GenerateErdosRenyi(2000, 0.02, 101);
  IndependentSampleOptions sample;
  sample.s1 = sample.s2 = 0.5;
  RealizationPair pair = SampleIndependent(g, sample, 102);
  MatcherConfig config;
  config.min_score = 3;
  ExperimentResult r = RunExperiment(pair, Fraction(0.1), config, 103);
  // The paper proves zero errors asymptotically; at n=2000 a handful of
  // coincidental 3-witness pairs can appear. Demand near-perfection.
  EXPECT_GE(r.quality.precision, 0.995);
  EXPECT_GT(r.quality.recall_all, 0.9);
}

TEST(EndToEndTest, PreferentialAttachmentIndependentDeletion) {
  // Fig. 2 regime scaled down: PA with m=20, s=0.5.
  Graph g = GeneratePreferentialAttachment(10000, 20, 104);
  RealizationPair pair = SampleIndependent(g, {}, 105);
  MatcherConfig config;
  config.min_score = 2;
  ExperimentResult r = RunExperiment(pair, Fraction(0.05), config, 106);
  EXPECT_GE(r.quality.precision, 0.995);
  EXPECT_GT(r.quality.recall_all, 0.8);
}

TEST(EndToEndTest, CascadeModelNearPerfect) {
  // Fig. 3 regime: cascade copies of a dense social graph.
  Graph g = MakeFacebookStandin(0.1, 107);
  CascadeSampleOptions cascade;
  cascade.p = 0.05;
  RealizationPair pair = SampleCascade(g, cascade, 108);
  MatcherConfig config;
  config.min_score = 2;
  ExperimentResult r = RunExperiment(pair, Fraction(0.1), config, 109);
  EXPECT_GE(r.quality.precision, 0.99);
  EXPECT_GT(r.quality.recall_all, 0.7);
}

TEST(EndToEndTest, CorrelatedCommunityDeletion) {
  // Table 4 regime: affiliation network, interests dropped wholesale.
  AffiliationNetwork net = MakeAffiliationStandin(0.05, 110);
  RealizationPair pair = SampleCommunity(net, 0.25, 111);
  MatcherConfig config;
  config.min_score = 3;
  ExperimentResult r = RunExperiment(pair, Fraction(0.1), config, 112);
  EXPECT_GE(r.quality.precision, 0.98);
  EXPECT_GT(r.quality.recall_all, 0.5);
}

TEST(EndToEndTest, TimesliceCopiesStillMatchable) {
  // Table 5 regime: even/odd slices share no sampling randomness.
  Graph g = MakeGowallaStandin(0.2, 113);
  TimesliceOptions slices;
  slices.repeat_lambda = 2.0;
  RealizationPair pair = SampleTimeslice(g, slices, 114);
  MatcherConfig config;
  config.min_score = 2;
  ExperimentResult r = RunExperiment(pair, Fraction(0.1), config, 115);
  EXPECT_GT(r.quality.precision, 0.9);
  EXPECT_GT(r.quality.new_good, 100u);
}

TEST(EndToEndTest, AttackDoesNotBreakPrecision) {
  // §5 attack regime: sybil clones attached with p=0.5.
  Graph g = MakeFacebookStandin(0.05, 116);
  IndependentSampleOptions sample;
  sample.s1 = sample.s2 = 0.75;
  RealizationPair pair = SampleIndependent(g, sample, 117);
  RealizationPair attacked = ApplyAttack(pair, {}, 118);
  MatcherConfig config;
  config.min_score = 2;
  ExperimentResult r =
      RunExperiment(attacked, Fraction(0.1), config, 119);
  EXPECT_GT(r.quality.precision, 0.97);
  EXPECT_GT(r.quality.recall_all, 0.6);
}

TEST(EndToEndTest, WikipediaStylePairDegradesGracefully) {
  // Hardest regime: asymmetric sizes + noise edges; error rate may be
  // nonzero (paper: 17.5%) but must stay far from random.
  RealizationPair pair = MakeWikipediaPair(0.1, 120);
  MatcherConfig config;
  config.min_score = 3;
  ExperimentResult r = RunExperiment(pair, Fraction(0.1), config, 121);
  EXPECT_GT(r.quality.precision, 0.7);
  EXPECT_GT(r.quality.new_good, 100u);
}

TEST(EndToEndTest, ExperimentDriverReportsTimings) {
  Graph g = GenerateErdosRenyi(500, 0.03, 122);
  RealizationPair pair = SampleIndependent(g, {}, 123);
  ExperimentResult r =
      RunExperiment(pair, Fraction(0.1), MatcherConfig{}, 124);
  EXPECT_GE(r.match_seconds, 0.0);
  EXPECT_GE(r.seed_seconds, 0.0);
  EXPECT_EQ(r.quality.num_seeds, r.match.seeds.size());
}

TEST(EndToEndTest, RepeatedRunsAreIdentical) {
  Graph g = GeneratePreferentialAttachment(2000, 10, 125);
  RealizationPair pair = SampleIndependent(g, {}, 126);
  ExperimentResult a =
      RunExperiment(pair, Fraction(0.1), MatcherConfig{}, 127);
  ExperimentResult b =
      RunExperiment(pair, Fraction(0.1), MatcherConfig{}, 127);
  EXPECT_EQ(a.match.map_1to2, b.match.map_1to2);
  EXPECT_EQ(a.quality.new_good, b.quality.new_good);
  EXPECT_EQ(a.quality.new_bad, b.quality.new_bad);
}

}  // namespace
}  // namespace reconcile
