// Scheduler and LSM-store equivalence: the work-stealing scheduler must
// produce bit-identical matchings to static chunking for every grain and
// steal schedule, and the tiered score store must be unobservable for every
// tier threshold — including policies that force compaction mid-run. Any
// divergence means a hot-path loop's aggregation stopped being
// partition-independent, or a tier fold lost/duplicated a count.
#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reconcile/core/matcher.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

struct Workload {
  RealizationPair pair;
  std::vector<std::pair<NodeId, NodeId>> seeds;
};

// Chung-Lu at exponent 2.2 gives real hubs, so the stealing schedule
// actually differs from the static one instead of degenerating to it.
Workload MakeWorkload(uint64_t rng_seed) {
  Graph g = rng_seed % 2 == 0
                ? GenerateChungLu(PowerLawWeights(1600, 2.2, 12.0), rng_seed)
                : GeneratePreferentialAttachment(1400, 8, rng_seed);
  IndependentSampleOptions options;
  options.s1 = 0.6;
  options.s2 = 0.6;
  Workload w;
  w.pair = SampleIndependent(g, options, rng_seed + 1);
  SeedOptions seeding;
  seeding.fraction = 0.08;
  w.seeds = GenerateSeeds(w.pair, seeding, rng_seed + 2);
  return w;
}

void ExpectSameMatching(const MatchResult& result, const MatchResult& reference) {
  ASSERT_EQ(result.map_1to2, reference.map_1to2);
  ASSERT_EQ(result.map_2to1, reference.map_2to1);
}

// Static vs work-stealing across grains, threads, and both scoring
// backends. The static / 1-thread run anchors each workload.
TEST(SchedulerDeterminismTest, StealingMatchesStaticAcrossGrid) {
  for (uint64_t rng_seed : {7101u, 7102u}) {
    SCOPED_TRACE("rng_seed=" + std::to_string(rng_seed));
    Workload w = MakeWorkload(rng_seed);

    MatcherConfig reference_config;
    reference_config.scheduler = Scheduler::kStatic;
    reference_config.num_threads = 1;
    MatchResult reference =
        UserMatching(w.pair.g1, w.pair.g2, w.seeds, reference_config);
    ASSERT_GT(reference.NumNewLinks(), 0u)
        << "workload too easy to detect divergence";

    for (ScoringBackend backend :
         {ScoringBackend::kRadixSort, ScoringBackend::kHashMap}) {
      for (Scheduler scheduler :
           {Scheduler::kStatic, Scheduler::kWorkStealing}) {
        for (size_t grain : {size_t{0}, size_t{1}, size_t{7}, size_t{4096}}) {
          for (int threads : {2, 5}) {
            SCOPED_TRACE(std::string("backend=") +
                         (backend == ScoringBackend::kRadixSort ? "radix"
                                                                : "hash") +
                         " scheduler=" + SchedulerName(scheduler) +
                         " grain=" + std::to_string(grain) +
                         " threads=" + std::to_string(threads));
            MatcherConfig config;
            config.scoring_backend = backend;
            config.scheduler = scheduler;
            config.scheduler_grain = grain;
            config.num_threads = threads;
            MatchResult result =
                UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
            ExpectSameMatching(result, reference);
          }
        }
      }
    }
  }
}

// Representation-independent per-round telemetry must agree between
// schedulers (wall-clock obviously differs).
TEST(SchedulerDeterminismTest, PhaseCountersMatchBetweenSchedulers) {
  Workload w = MakeWorkload(7103);
  MatcherConfig static_config;
  static_config.scheduler = Scheduler::kStatic;
  static_config.num_threads = 4;
  MatcherConfig stealing_config = static_config;
  stealing_config.scheduler = Scheduler::kWorkStealing;
  MatchResult a = UserMatching(w.pair.g1, w.pair.g2, w.seeds, static_config);
  MatchResult b = UserMatching(w.pair.g1, w.pair.g2, w.seeds, stealing_config);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].emissions, b.phases[i].emissions);
    EXPECT_EQ(a.phases[i].candidate_pairs, b.phases[i].candidate_pairs);
    EXPECT_EQ(a.phases[i].new_links, b.phases[i].new_links);
    EXPECT_EQ(a.phases[i].links_in, b.phases[i].links_in);
  }
}

// LSM tier thresholds: every (max_tiers, size_ratio) combination — from
// merge-every-round (max_tiers=1) through ratio=0 (tiers only fold when the
// cap forces a mid-round compaction cascade) — must yield the single-tier
// matching. Runs both schedulers so tier folds interleave with both
// schedules, and both selection engines over the multi-tier units.
TEST(LsmStoreDeterminismTest, TierThresholdsAreUnobservable) {
  for (uint64_t rng_seed : {7201u, 7202u}) {
    SCOPED_TRACE("rng_seed=" + std::to_string(rng_seed));
    Workload w = MakeWorkload(rng_seed);

    MatcherConfig reference_config;
    reference_config.lsm_max_tiers = 1;  // pre-LSM behavior
    reference_config.num_threads = 1;
    MatchResult reference =
        UserMatching(w.pair.g1, w.pair.g2, w.seeds, reference_config);
    ASSERT_GT(reference.NumNewLinks(), 0u);

    for (int max_tiers : {2, 3, 8}) {
      for (double ratio : {0.0, 1.0, 4.0, 1e9}) {
        for (Scheduler scheduler :
             {Scheduler::kStatic, Scheduler::kWorkStealing}) {
          for (bool parallel_selection : {true, false}) {
            SCOPED_TRACE("max_tiers=" + std::to_string(max_tiers) +
                         " ratio=" + std::to_string(ratio) + " scheduler=" +
                         SchedulerName(scheduler) + " parallel_selection=" +
                         std::to_string(parallel_selection));
            MatcherConfig config;
            config.lsm_max_tiers = max_tiers;
            config.lsm_size_ratio = ratio;
            config.scheduler = scheduler;
            config.use_parallel_selection = parallel_selection;
            config.num_threads = 4;
            MatchResult result =
                UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
            ExpectSameMatching(result, reference);
          }
        }
      }
    }
  }
}

// Shard placement must be unobservable in the matching: the grid runs
// placement x scoring backend x scheduler x threads over a forced 3-domain
// synthetic topology (so the domain-biased claiming, worker homing and
// first-touch paths are all live even on single-socket CI hosts) against
// the single-thread static/none reference. Any divergence means a placed
// loop dropped/duplicated a cell or a fold stopped being
// partition-independent.
TEST(PlacementDeterminismTest, PoliciesMatchReferenceAcrossGrid) {
  for (uint64_t rng_seed : {7301u, 7302u}) {
    SCOPED_TRACE("rng_seed=" + std::to_string(rng_seed));
    Workload w = MakeWorkload(rng_seed);

    MatcherConfig reference_config;
    reference_config.scheduler = Scheduler::kStatic;
    reference_config.placement = PlacementPolicy::kNone;
    reference_config.num_threads = 1;
    MatchResult reference =
        UserMatching(w.pair.g1, w.pair.g2, w.seeds, reference_config);
    ASSERT_GT(reference.NumNewLinks(), 0u)
        << "workload too easy to detect divergence";

    for (PlacementPolicy placement :
         {PlacementPolicy::kNone, PlacementPolicy::kInterleave,
          PlacementPolicy::kDomain}) {
      for (ScoringBackend backend :
           {ScoringBackend::kRadixSort, ScoringBackend::kHashMap}) {
        for (Scheduler scheduler :
             {Scheduler::kStatic, Scheduler::kWorkStealing}) {
          for (int threads : {2, 5}) {
            SCOPED_TRACE(std::string("placement=") + PlacementName(placement) +
                         " backend=" +
                         (backend == ScoringBackend::kRadixSort ? "radix"
                                                                : "hash") +
                         " scheduler=" + SchedulerName(scheduler) +
                         " threads=" + std::to_string(threads));
            MatcherConfig config;
            config.placement = placement;
            config.placement_domains = 3;
            config.scoring_backend = backend;
            config.scheduler = scheduler;
            config.num_threads = threads;
            MatchResult result =
                UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
            ExpectSameMatching(result, reference);
          }
        }
      }
    }
  }
}

// The locality counters must account for every score-unit task, and an
// active multi-domain placement must report its domain count while
// placement=none stays on the single-domain fallback telemetry.
TEST(PlacementDeterminismTest, LocalityCountersAccountForUnitTasks) {
  Workload w = MakeWorkload(7303);

  MatcherConfig placed_config;
  placed_config.placement = PlacementPolicy::kDomain;
  placed_config.placement_domains = 3;
  placed_config.num_threads = 4;
  MatchResult placed = UserMatching(w.pair.g1, w.pair.g2, w.seeds,
                                    placed_config);
  ASSERT_FALSE(placed.phases.empty());
  for (const PhaseStats& phase : placed.phases) {
    EXPECT_EQ(phase.placement_domains, 3);
  }
  const MatchResult::PlacementTotals totals = placed.SumPlacementCounters();
  EXPECT_GT(totals.local_unit_tasks + totals.remote_unit_steals, 0u);
  EXPECT_EQ(totals.domains, 3);

  MatcherConfig none_config = placed_config;
  none_config.placement = PlacementPolicy::kNone;
  MatchResult none = UserMatching(w.pair.g1, w.pair.g2, w.seeds, none_config);
  for (const PhaseStats& phase : none.phases) {
    EXPECT_EQ(phase.placement_domains, 1);
    EXPECT_EQ(phase.remote_unit_steals, 0u);
  }
  // Emissions and candidate pairs are schedule-independent, so the placed
  // and unplaced runs must agree on them round by round.
  ASSERT_EQ(placed.phases.size(), none.phases.size());
  for (size_t i = 0; i < placed.phases.size(); ++i) {
    EXPECT_EQ(placed.phases[i].emissions, none.phases[i].emissions);
    EXPECT_EQ(placed.phases[i].candidate_pairs,
              none.phases[i].candidate_pairs);
    EXPECT_EQ(placed.phases[i].new_links, none.phases[i].new_links);
  }
}

// The recompute engine routes its reduce through the placed loop too (one
// fresh state per round); placement and serial selection must both stay
// unobservable there.
TEST(PlacementDeterminismTest, RecomputeAndSerialSelectionUnaffected) {
  Workload w = MakeWorkload(7304);
  MatcherConfig reference_config;
  reference_config.placement = PlacementPolicy::kNone;
  reference_config.num_threads = 1;
  MatchResult reference =
      UserMatching(w.pair.g1, w.pair.g2, w.seeds, reference_config);
  for (bool incremental : {false, true}) {
    for (bool parallel_selection : {false, true}) {
      for (ScoringBackend backend :
           {ScoringBackend::kRadixSort, ScoringBackend::kHashMap}) {
        SCOPED_TRACE(std::string("incremental=") +
                     std::to_string(incremental) + " parallel_selection=" +
                     std::to_string(parallel_selection) + " backend=" +
                     (backend == ScoringBackend::kRadixSort ? "radix"
                                                            : "hash"));
        MatcherConfig config;
        config.use_incremental_scoring = incremental;
        config.use_parallel_selection = parallel_selection;
        config.scoring_backend = backend;
        config.placement = PlacementPolicy::kDomain;
        config.placement_domains = 2;
        config.num_threads = 4;
        MatchResult result =
            UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
        ExpectSameMatching(result, reference);
      }
    }
  }
}

// RAII scratch directory for budgeted runs; also lets the tests assert the
// score-dir hygiene contract (no spill files survive a clean run).
class ScratchDir {
 public:
  ScratchDir() {
    char tmpl[] = "/tmp/determinism_score_dir_XXXXXX";
    path_ = ::mkdtemp(tmpl) != nullptr ? tmpl : "";
  }
  ~ScratchDir() {
    if (path_.empty()) return;
    if (DIR* handle = ::opendir(path_.c_str())) {
      while (dirent* entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") ::unlink((path_ + "/" + name).c_str());
      }
      ::closedir(handle);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }
  size_t NumEntries() const {
    DIR* handle = ::opendir(path_.c_str());
    if (handle == nullptr) return 0;
    size_t n = 0;
    while (dirent* entry = ::readdir(handle)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") ++n;
    }
    ::closedir(handle);
    return n;
  }

 private:
  std::string path_;
};

// The memory budget must be unobservable in the matching: spilled tiers are
// the same bytes as resident ones, so any budget — from "everything spills"
// to "nothing spills" — crossed with scheduler x placement x threads must
// reproduce the unbudgeted single-thread reference bit for bit. The tight
// budget legs also assert that spilling actually happened (otherwise the
// grid silently degenerates to the resident path) and that a clean run
// leaves no scratch behind.
TEST(MemoryBudgetDeterminismTest, BudgetsAreUnobservableAcrossGrid) {
  for (uint64_t rng_seed : {7401u, 7402u}) {
    SCOPED_TRACE("rng_seed=" + std::to_string(rng_seed));
    Workload w = MakeWorkload(rng_seed);

    MatcherConfig reference_config;
    reference_config.scheduler = Scheduler::kStatic;
    reference_config.num_threads = 1;
    MatchResult reference =
        UserMatching(w.pair.g1, w.pair.g2, w.seeds, reference_config);
    ASSERT_GT(reference.NumNewLinks(), 0u)
        << "workload too easy to detect divergence";

    // 1 byte forces every tier out; 64 KiB spills the big tiers; 1 GiB
    // never spills (exercises the accounting pass with an empty schedule).
    for (uint64_t budget : {uint64_t{1}, uint64_t{64} << 10, uint64_t{1} << 30}) {
      for (Scheduler scheduler :
           {Scheduler::kStatic, Scheduler::kWorkStealing}) {
        for (PlacementPolicy placement :
             {PlacementPolicy::kNone, PlacementPolicy::kDomain}) {
          for (int threads : {2, 5}) {
            SCOPED_TRACE("budget=" + std::to_string(budget) + " scheduler=" +
                         SchedulerName(scheduler) + " placement=" +
                         PlacementName(placement) +
                         " threads=" + std::to_string(threads));
            ScratchDir scratch;
            ASSERT_FALSE(scratch.path().empty());
            MatcherConfig config;
            config.memory_budget_bytes = budget;
            config.score_dir = scratch.path();
            config.scheduler = scheduler;
            config.placement = placement;
            config.placement_domains = placement == PlacementPolicy::kDomain
                                           ? 3
                                           : 1;
            config.num_threads = threads;
            MatchResult result =
                UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
            ExpectSameMatching(result, reference);
            size_t spilled_rounds = 0;
            for (const PhaseStats& phase : result.phases) {
              spilled_rounds += phase.tiers_spilled > 0;
            }
            if (budget == 1) {
              EXPECT_GT(spilled_rounds, 0u)
                  << "tight budget never spilled; grid is not exercising "
                     "the out-of-core path";
            }
            EXPECT_EQ(scratch.NumEntries(), 0u)
                << "clean run must leave no spill scratch";
          }
        }
      }
    }
  }
}

// The hash backend has no tier store to spill; a budget there must warn and
// run unbudgeted, not crash or diverge.
TEST(MemoryBudgetDeterminismTest, HashBackendRunsUnbudgeted) {
  Workload w = MakeWorkload(7403);
  MatcherConfig reference_config;
  reference_config.scoring_backend = ScoringBackend::kHashMap;
  MatchResult reference =
      UserMatching(w.pair.g1, w.pair.g2, w.seeds, reference_config);
  ScratchDir scratch;
  MatcherConfig config = reference_config;
  config.memory_budget_bytes = 1;
  config.score_dir = scratch.path();
  MatchResult result = UserMatching(w.pair.g1, w.pair.g2, w.seeds, config);
  ExpectSameMatching(result, reference);
  for (const PhaseStats& phase : result.phases) {
    EXPECT_EQ(phase.tiers_spilled, 0u);
    EXPECT_EQ(phase.spilled_score_bytes, 0u);
  }
}

// The ordered seed-collect sweep runs on the shared pool once the workload
// crosses the parallel threshold, so its steal schedule differs run to run.
// The count / prefix-sum / fill shape must make that unobservable: repeated
// generation returns the identical seed list, in node-id order, each pair
// mapping through the ground truth. (Small workloads take the serial path,
// so this uses a graph comfortably above the 2^14-node threshold.)
TEST(SeedCollectDeterminismTest, ParallelCollectIsScheduleIndependent) {
  Graph g = GenerateChungLu(PowerLawWeights(40000, 2.2, 10.0), 7501);
  IndependentSampleOptions sampling;
  sampling.s1 = 0.6;
  sampling.s2 = 0.6;
  RealizationPair pair = SampleIndependent(g, sampling, 7502);

  for (SeedBias bias : {SeedBias::kUniform, SeedBias::kDegreeProportional,
                        SeedBias::kTopDegree}) {
    SCOPED_TRACE("bias=" + std::to_string(static_cast<int>(bias)));
    SeedOptions options;
    options.bias = bias;
    options.fraction = 0.05;
    options.fixed_count = 500;
    const auto reference = GenerateSeeds(pair, options, 7503);
    ASSERT_GT(reference.size(), 100u);
    if (bias != SeedBias::kTopDegree) {
      // Collected in node-id order, every pair straight off the ground truth.
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(reference[i].second, pair.map_1to2[reference[i].first]);
        if (i > 0) {
          ASSERT_LT(reference[i - 1].first, reference[i].first);
        }
      }
    }
    // Every rerun sees a different steal schedule on the shared pool; the
    // output must not.
    for (int run = 0; run < 4; ++run) {
      ASSERT_EQ(GenerateSeeds(pair, options, 7503), reference)
          << "run " << run;
    }
  }
}

// The tier store only exists in the incremental radix engine; the recompute
// engine must be unaffected by (and identical under) any tier policy.
TEST(LsmStoreDeterminismTest, RecomputeEngineIgnoresTierPolicy) {
  Workload w = MakeWorkload(7203);
  MatcherConfig incremental;
  MatchResult reference =
      UserMatching(w.pair.g1, w.pair.g2, w.seeds, incremental);
  MatcherConfig recompute;
  recompute.use_incremental_scoring = false;
  recompute.lsm_max_tiers = 7;
  recompute.lsm_size_ratio = 0.0;
  MatchResult result = UserMatching(w.pair.g1, w.pair.g2, w.seeds, recompute);
  ExpectSameMatching(result, reference);
}

}  // namespace
}  // namespace reconcile
