#include "reconcile/core/matcher.h"

#include <gtest/gtest.h>

#include "reconcile/eval/metrics.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {
namespace {

// Handcrafted scenario: two identical 6-node graphs, one seed, threshold 1.
// Star centre 0 with leaves 1..4 plus edge 1-2 (identity labels both sides).
Graph Star() {
  EdgeList edges(6);
  for (NodeId leaf = 1; leaf <= 4; ++leaf) edges.Add(0, leaf);
  edges.Add(1, 2);
  edges.Add(4, 5);
  return Graph::FromEdgeList(std::move(edges));
}

TEST(MatcherTest, EmptySeedsProduceNoLinks) {
  Graph g = Star();
  MatcherConfig config;
  std::vector<std::pair<NodeId, NodeId>> seeds;
  MatchResult result = UserMatching(g, g, seeds, config);
  EXPECT_EQ(result.NumLinks(), 0u);
  EXPECT_EQ(result.NumNewLinks(), 0u);
}

TEST(MatcherTest, SingleSeedAloneCannotBreakTies) {
  // With one seed, every candidate pair scores exactly 1 witness: the
  // mutual-best rule with tie rejection must refuse to guess.
  Graph g = Star();
  MatcherConfig config;
  config.min_score = 1;
  config.num_iterations = 3;
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 0}};
  MatchResult result = UserMatching(g, g, seeds, config);
  EXPECT_EQ(result.NumNewLinks(), 0u);
}

TEST(MatcherTest, TwoSeedsCreateScoreSeparation) {
  // Seeds (0,0) and (1,1): pair (2,2) collects 2 witnesses (both seeds are
  // its neighbours) while every competitor collects 1 — it must be accepted,
  // and everything it can't disambiguate must stay unmatched.
  Graph g = Star();
  MatcherConfig config;
  config.min_score = 1;
  config.num_iterations = 3;
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 0}, {1, 1}};
  MatchResult result = UserMatching(g, g, seeds, config);
  EXPECT_EQ(result.map_1to2[2], 2u);
  EXPECT_GE(result.NumNewLinks(), 1u);
  for (NodeId u = 0; u < result.map_1to2.size(); ++u) {
    NodeId v = result.map_1to2[u];
    if (v != kInvalidNode) {
      EXPECT_EQ(result.map_2to1[v], u);
      EXPECT_EQ(v, u) << "identity graphs must match identically";
    }
  }
}

TEST(MatcherTest, AmbiguousTwinsAreNeverMatched) {
  // Nodes 3 and 4 are perfect twins (both adjacent only to 0): matching
  // either would be a guess; the tie-rejection rule must leave them out.
  EdgeList edges(5);
  edges.Add(0, 1);
  edges.Add(0, 3);
  edges.Add(0, 4);
  edges.Add(1, 2);
  Graph g = Graph::FromEdgeList(std::move(edges));
  MatcherConfig config;
  config.min_score = 1;
  config.num_iterations = 5;
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 0}};
  MatchResult result = UserMatching(g, g, seeds, config);
  EXPECT_EQ(result.map_1to2[3], kInvalidNode);
  EXPECT_EQ(result.map_1to2[4], kInvalidNode);
  // Node 1 is unambiguous (degree 2) and should be found.
  EXPECT_EQ(result.map_1to2[1], 1u);
}

TEST(MatcherTest, ThresholdBlocksWeakEvidence) {
  Graph g = Star();
  MatcherConfig config;
  config.min_score = 3;  // no pair can accumulate 3 witnesses from 1 seed
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 0}};
  MatchResult result = UserMatching(g, g, seeds, config);
  EXPECT_EQ(result.NumNewLinks(), 0u);
}

TEST(MatcherTest, SeedsAreNeverOverwritten) {
  Graph g = Star();
  MatcherConfig config;
  config.min_score = 1;
  // Deliberately wrong seed: 1 <-> 3.
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 0}, {1, 3}};
  MatchResult result = UserMatching(g, g, seeds, config);
  EXPECT_EQ(result.map_1to2[1], 3u);
  EXPECT_EQ(result.map_2to1[3], 1u);
}

TEST(MatcherTest, ResultIsAlwaysOneToOne) {
  Graph g = GenerateErdosRenyi(800, 0.02, 3);
  RealizationPair pair = SampleIndependent(g, {}, 5);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 7);
  MatcherConfig config;
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  std::vector<char> used2(pair.g2.num_nodes(), 0);
  for (NodeId u = 0; u < result.map_1to2.size(); ++u) {
    NodeId v = result.map_1to2[u];
    if (v == kInvalidNode) continue;
    EXPECT_FALSE(used2[v]) << "g2 node " << v << " matched twice";
    used2[v] = 1;
    EXPECT_EQ(result.map_2to1[v], u);
  }
}

TEST(MatcherTest, PhaseStatsAreCoherent) {
  Graph g = GenerateErdosRenyi(500, 0.03, 9);
  RealizationPair pair = SampleIndependent(g, {}, 11);
  SeedOptions seed_options;
  seed_options.fraction = 0.15;
  auto seeds = GenerateSeeds(pair, seed_options, 13);
  MatcherConfig config;
  config.num_iterations = 2;
  config.use_incremental_scoring = false;  // reference-engine stat semantics
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  ASSERT_FALSE(result.phases.empty());
  size_t links = seeds.size();
  for (const PhaseStats& phase : result.phases) {
    EXPECT_EQ(phase.links_in, links);
    links += phase.new_links;
    EXPECT_GE(phase.emissions, phase.candidate_pairs);
  }
  EXPECT_EQ(links, result.NumLinks());
}

TEST(MatcherTest, IncrementalEngineMatchesReferenceEngine) {
  // The incremental scoring engine must reproduce the reference (paper-
  // literal recompute) engine exactly, link for link.
  for (uint64_t seed : {51u, 52u, 53u}) {
    Graph g = GenerateErdosRenyi(700, 0.03, seed);
    RealizationPair pair = SampleIndependent(g, {}, seed + 100);
    SeedOptions seed_options;
    seed_options.fraction = 0.1;
    auto seeds = GenerateSeeds(pair, seed_options, seed + 200);

    MatcherConfig incremental;
    incremental.use_incremental_scoring = true;
    MatcherConfig reference;
    reference.use_incremental_scoring = false;
    MatchResult a = UserMatching(pair.g1, pair.g2, seeds, incremental);
    MatchResult b = UserMatching(pair.g1, pair.g2, seeds, reference);
    EXPECT_EQ(a.map_1to2, b.map_1to2) << "seed " << seed;
    EXPECT_EQ(a.map_2to1, b.map_2to1) << "seed " << seed;
  }
}

TEST(MatcherTest, EnginesAgreeOnSkewedGraphsWithMultipleIterations) {
  Graph g = GeneratePreferentialAttachment(1500, 8, 61);
  RealizationPair pair = SampleIndependent(g, {}, 62);
  SeedOptions seed_options;
  seed_options.fraction = 0.08;
  auto seeds = GenerateSeeds(pair, seed_options, 63);
  MatcherConfig incremental;
  incremental.num_iterations = 3;
  MatcherConfig reference;
  reference.num_iterations = 3;
  reference.use_incremental_scoring = false;
  MatchResult a = UserMatching(pair.g1, pair.g2, seeds, incremental);
  MatchResult b = UserMatching(pair.g1, pair.g2, seeds, reference);
  EXPECT_EQ(a.map_1to2, b.map_1to2);
}

TEST(MatcherTest, DeterministicAcrossThreadAndShardCounts) {
  Graph g = GenerateErdosRenyi(600, 0.03, 15);
  RealizationPair pair = SampleIndependent(g, {}, 17);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 19);

  MatcherConfig one;
  one.num_threads = 1;
  one.num_shards = 1;
  MatcherConfig many;
  many.num_threads = 4;
  many.num_shards = 13;
  MatchResult a = UserMatching(pair.g1, pair.g2, seeds, one);
  MatchResult b = UserMatching(pair.g1, pair.g2, seeds, many);
  EXPECT_EQ(a.map_1to2, b.map_1to2);
  EXPECT_EQ(a.map_2to1, b.map_2to1);
}

TEST(MatcherTest, BucketingMatchesHighDegreeFirst) {
  Graph g = GenerateErdosRenyi(600, 0.05, 21);
  RealizationPair pair = SampleIndependent(g, {}, 23);
  SeedOptions seed_options;
  seed_options.fraction = 0.1;
  auto seeds = GenerateSeeds(pair, seed_options, 25);
  MatcherConfig config;
  config.num_iterations = 1;
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  // Bucket exponents must be non-increasing within the iteration.
  for (size_t i = 1; i < result.phases.size(); ++i) {
    if (result.phases[i].iteration == result.phases[i - 1].iteration) {
      EXPECT_LT(result.phases[i].bucket_exponent,
                result.phases[i - 1].bucket_exponent);
    }
  }
}

TEST(MatcherTest, StopWhenStableEndsEarly) {
  Graph g = Star();
  MatcherConfig config;
  config.min_score = 10;  // nothing will ever match
  config.num_iterations = 50;
  config.stop_when_stable = true;
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 0}};
  MatchResult result = UserMatching(g, g, seeds, config);
  // Only the first sweep runs.
  int max_iteration = 0;
  for (const PhaseStats& phase : result.phases) {
    max_iteration = std::max(max_iteration, phase.iteration);
  }
  EXPECT_EQ(max_iteration, 1);
}

TEST(MatcherDeathTest, DuplicateSeedRejected) {
  Graph g = Star();
  MatcherConfig config;
  std::vector<std::pair<NodeId, NodeId>> seeds = {{0, 0}, {0, 1}};
  EXPECT_DEATH(UserMatching(g, g, seeds, config), "duplicate seed");
}

TEST(MatcherDeathTest, OutOfRangeSeedRejected) {
  Graph g = Star();
  MatcherConfig config;
  std::vector<std::pair<NodeId, NodeId>> seeds = {{99, 0}};
  EXPECT_DEATH(UserMatching(g, g, seeds, config), "Check failed");
}

}  // namespace
}  // namespace reconcile
