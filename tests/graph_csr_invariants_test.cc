// CSR representation invariants, checked across every generator: sorted
// adjacency, consistency of the degree-descending view, symmetry of edges
// and common-neighbour counts. These are the structural contracts the
// matcher's bucket-prefix scans rely on (DESIGN.md §5).
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "reconcile/gen/affiliation.h"
#include "reconcile/gen/chung_lu.h"
#include "reconcile/gen/configuration.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/gen/rmat.h"
#include "reconcile/gen/sbm.h"
#include "reconcile/gen/watts_strogatz.h"
#include "reconcile/graph/graph.h"

namespace reconcile {
namespace {

enum class Generator {
  kErdosRenyi,
  kPreferentialAttachment,
  kChungLu,
  kRmat,
  kAffiliation,
  kWattsStrogatz,
  kConfiguration,
  kSbm,
};

std::string GeneratorName(const testing::TestParamInfo<Generator>& info) {
  switch (info.param) {
    case Generator::kErdosRenyi:
      return "ErdosRenyi";
    case Generator::kPreferentialAttachment:
      return "PreferentialAttachment";
    case Generator::kChungLu:
      return "ChungLu";
    case Generator::kRmat:
      return "Rmat";
    case Generator::kAffiliation:
      return "Affiliation";
    case Generator::kWattsStrogatz:
      return "WattsStrogatz";
    case Generator::kConfiguration:
      return "Configuration";
    case Generator::kSbm:
      return "Sbm";
  }
  return "Unknown";
}

Graph Make(Generator generator) {
  switch (generator) {
    case Generator::kErdosRenyi:
      return GenerateErdosRenyi(800, 0.02, 8001);
    case Generator::kPreferentialAttachment:
      return GeneratePreferentialAttachment(800, 6, 8003);
    case Generator::kChungLu:
      return GenerateChungLu(PowerLawWeights(800, 2.5, 12.0), 8005);
    case Generator::kRmat: {
      RmatParams params;
      params.scale = 10;
      params.edge_factor = 6.0;
      return GenerateRmat(params, 8007);
    }
    case Generator::kAffiliation: {
      AffiliationParams params;
      return AffiliationNetwork::Generate(params, 8009).Fold();
    }
    case Generator::kWattsStrogatz:
      return GenerateWattsStrogatz(800, 6, 0.2, 8011);
    case Generator::kConfiguration: {
      std::vector<NodeId> degrees(800, 5);
      return GenerateConfigurationModel(degrees, 8013);
    }
    case Generator::kSbm: {
      SbmParams params;
      params.block_sizes = {300, 300, 200};
      params.p_in = 0.05;
      params.p_out = 0.002;
      return GenerateSbm(params, 8015);
    }
  }
  return Graph();
}

class CsrInvariantsTest : public testing::TestWithParam<Generator> {};

TEST_P(CsrInvariantsTest, AdjacencyIsSortedAndLoopFree) {
  Graph g = Make(GetParam());
  ASSERT_GT(g.num_edges(), 0u);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.Neighbors(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i], u) << "self loop at " << u;
      if (i > 0) {
        EXPECT_LT(nbrs[i - 1], nbrs[i]) << "unsorted/duplicate";
      }
    }
  }
}

TEST_P(CsrInvariantsTest, EdgesAreSymmetric) {
  Graph g = Make(GetParam());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      EXPECT_TRUE(g.HasEdge(v, u)) << u << "-" << v;
    }
  }
}

TEST_P(CsrInvariantsTest, DegreeViewIsPermutationSortedByDegree) {
  Graph g = Make(GetParam());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto by_id = g.Neighbors(u);
    auto by_degree = g.NeighborsByDegree(u);
    ASSERT_EQ(by_id.size(), by_degree.size());
    // Non-increasing degree; ties broken by ascending id.
    for (size_t i = 1; i < by_degree.size(); ++i) {
      const NodeId prev = by_degree[i - 1];
      const NodeId cur = by_degree[i];
      EXPECT_TRUE(g.degree(prev) > g.degree(cur) ||
                  (g.degree(prev) == g.degree(cur) && prev < cur))
          << "at " << u << "[" << i << "]";
    }
    // Same multiset of neighbours.
    std::vector<NodeId> sorted(by_degree.begin(), by_degree.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::equal(sorted.begin(), sorted.end(), by_id.begin()));
  }
}

TEST_P(CsrInvariantsTest, DegreeAccountingConsistent) {
  Graph g = Make(GetParam());
  size_t degree_sum = 0;
  NodeId max_degree = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.degree(u), g.Neighbors(u).size());
    degree_sum += g.degree(u);
    max_degree = std::max(max_degree, g.degree(u));
  }
  EXPECT_EQ(degree_sum, g.degree_sum());
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
  EXPECT_EQ(max_degree, g.max_degree());
}

TEST_P(CsrInvariantsTest, CommonNeighborCountSymmetricAndExact) {
  Graph g = Make(GetParam());
  // Spot-check a grid of pairs against a brute-force intersection.
  const NodeId step = std::max<NodeId>(1, g.num_nodes() / 17);
  for (NodeId u = 0; u < g.num_nodes(); u += step) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 2 * step) {
      size_t brute = 0;
      for (NodeId w : g.Neighbors(u)) {
        if (g.HasEdge(v, w)) ++brute;
      }
      EXPECT_EQ(g.CommonNeighborCount(u, v), brute) << u << "," << v;
      EXPECT_EQ(g.CommonNeighborCount(v, u), brute);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, CsrInvariantsTest,
                         testing::Values(Generator::kErdosRenyi,
                                         Generator::kPreferentialAttachment,
                                         Generator::kChungLu, Generator::kRmat,
                                         Generator::kAffiliation,
                                         Generator::kWattsStrogatz,
                                         Generator::kConfiguration,
                                         Generator::kSbm),
                         GeneratorName);

}  // namespace
}  // namespace reconcile
