// Statistical validations of the paper's theory section (§4) on sampled
// graphs with fixed seeds and comfortable margins.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "reconcile/core/witness.h"
#include "reconcile/gen/erdos_renyi.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"
#include "reconcile/util/rng.h"

namespace reconcile {
namespace {

// Theorem 1's engine: in G(n,p), the expected first-phase witness count of
// a true pair is (n-1)·p·s²·l while a false pair gets (n-2)·p²·s²·l — a
// factor-p gap. We verify the measured means realize that gap (the w.h.p.
// min/max separation only kicks in at asymptotic sizes the test cannot run).
TEST(TheoryTest, Theorem1WitnessGapOnErdosRenyi) {
  const NodeId n = 2000;
  const double p = 0.05;
  const double s = 0.5, l = 0.2;
  Graph g = GenerateErdosRenyi(n, p, 201);
  IndependentSampleOptions sample;
  sample.s1 = sample.s2 = s;
  RealizationPair pair = SampleIndependent(g, sample, 202);
  SeedOptions seeds_options;
  seeds_options.fraction = l;
  auto seeds = GenerateSeeds(pair, seeds_options, 203);

  // Build the first-phase link map (seeds only).
  std::vector<NodeId> links(pair.g1.num_nodes(), kInvalidNode);
  std::vector<char> seeded(pair.g1.num_nodes(), 0);
  for (const auto& [u, v] : seeds) {
    links[u] = v;
    seeded[u] = 1;
  }

  Rng rng(204);
  double true_sum = 0, false_sum = 0;
  int true_n = 0, false_n = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    if (seeded[u]) continue;
    NodeId truth = pair.map_1to2[u];
    true_sum += CountSimilarityWitnesses(pair.g1, pair.g2, links, u, truth);
    ++true_n;
    NodeId other = static_cast<NodeId>(rng.UniformInt(n));
    if (other == truth) continue;
    false_sum += CountSimilarityWitnesses(pair.g1, pair.g2, links, u, other);
    ++false_n;
  }
  double true_mean = true_sum / true_n;
  double false_mean = false_sum / std::max(1, false_n);
  // Theory: true ≈ n·p·s²·l = 5, false ≈ n·p²·s²·l = 0.25 (ratio 1/p = 20).
  EXPECT_NEAR(true_mean, n * p * s * s * l, 0.15 * n * p * s * s * l);
  EXPECT_GT(true_mean, 8 * false_mean);
}

// Lemma 10 analogue: in PA graphs, two distinct low-degree nodes share very
// few neighbours (the paper proves <= 8 w.h.p. for degree < log^3 n).
TEST(TheoryTest, Lemma10LowDegreePairsShareFewNeighbors) {
  Graph g = GeneratePreferentialAttachment(20000, 10, 205);
  const double log3 = std::pow(std::log(static_cast<double>(g.num_nodes())), 3);
  Rng rng(206);
  size_t violations = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    if (u == v) continue;
    if (g.degree(u) >= log3 || g.degree(v) >= log3) continue;
    if (g.CommonNeighborCount(u, v) > 8) ++violations;
  }
  EXPECT_EQ(violations, 0u);
}

// Lemma 5/7 (early birds / first movers): nodes arriving before ~n^0.3 end
// with degree far above the median.
TEST(TheoryTest, FirstMoverAdvantage) {
  const NodeId n = 30000;
  Graph g = GeneratePreferentialAttachment(n, 10, 207);
  NodeId early_cutoff = static_cast<NodeId>(std::pow(n, 0.3));
  std::vector<NodeId> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.degree(v);
  std::nth_element(degrees.begin(), degrees.begin() + n / 2, degrees.end());
  NodeId median = degrees[n / 2];
  for (NodeId v = 0; v < early_cutoff; ++v) {
    EXPECT_GT(g.degree(v), 3 * median) << "early node " << v;
  }
}

// Lemma 6 (rich get richer): high-degree nodes keep acquiring neighbours;
// at least 1/3 of a top node's neighbours arrive in the last (1-eps) of the
// process. Arrival time == node id in our generator.
TEST(TheoryTest, RichGetRicherLateNeighbors) {
  const NodeId n = 30000;
  Graph g = GeneratePreferentialAttachment(n, 10, 208);
  const NodeId eps_time = n / 10;
  // Top-degree node:
  NodeId hub = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  size_t late = 0;
  for (NodeId w : g.Neighbors(hub)) {
    if (w >= eps_time) ++late;
  }
  EXPECT_GT(static_cast<double>(late),
            static_cast<double>(g.degree(hub)) / 3.0);
}

// §4.1 (Theorem 4 flavour): in the ER regime the first phase already
// identifies nearly all nodes when run to completion; checked through the
// full matcher in integration tests — here we verify the witness
// expectation scaling that drives it: true-pair witness counts concentrate
// around (n-1) p s^2 l.
TEST(TheoryTest, WitnessCountConcentration) {
  const NodeId n = 3000;
  const double p = 0.04, s = 0.5, l = 0.3;
  Graph g = GenerateErdosRenyi(n, p, 209);
  IndependentSampleOptions sample;
  sample.s1 = sample.s2 = s;
  RealizationPair pair = SampleIndependent(g, sample, 210);
  SeedOptions seed_options;
  seed_options.fraction = l;
  auto seeds = GenerateSeeds(pair, seed_options, 211);
  std::vector<NodeId> links(pair.g1.num_nodes(), kInvalidNode);
  for (const auto& [u, v] : seeds) links[u] = v;

  double expected = (n - 1) * p * s * s * l;
  Rng rng(212);
  double sum = 0;
  int samples = 0;
  for (int trial = 0; trial < 500; ++trial) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    if (links[u] != kInvalidNode) continue;
    sum += CountSimilarityWitnesses(pair.g1, pair.g2, links, u,
                                    pair.map_1to2[u]);
    ++samples;
  }
  ASSERT_GT(samples, 100);
  double mean = sum / samples;
  EXPECT_NEAR(mean, expected, 0.15 * expected);
}

}  // namespace
}  // namespace reconcile
