#include "reconcile/eval/sweep.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"

namespace reconcile {
namespace {

RealizationPair MakePair() {
  Graph g = GeneratePreferentialAttachment(1200, 8, 7001);
  IndependentSampleOptions options;
  options.s1 = 0.6;
  options.s2 = 0.6;
  return SampleIndependent(g, options, 7003);
}

TEST(SweepTest, GridHasOnePointPerCell) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.seed_fractions = {0.05, 0.10};
  spec.thresholds = {2, 3};
  auto points = RunSweep(pair, spec);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].seed_fraction, 0.05);
  EXPECT_EQ(points[0].threshold, 2u);
  EXPECT_EQ(points[3].seed_fraction, 0.10);
  EXPECT_EQ(points[3].threshold, 3u);
}

TEST(SweepTest, SameSeedsAcrossThresholdColumns) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.seed_fractions = {0.10};
  spec.thresholds = {2, 3, 5};
  auto points = RunSweep(pair, spec);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].num_seeds, points[1].num_seeds);
  EXPECT_EQ(points[1].num_seeds, points[2].num_seeds);
}

TEST(SweepTest, HigherThresholdNeverFindsMoreLinks) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.seed_fractions = {0.10};
  spec.thresholds = {2, 3, 4, 5};
  auto points = RunSweep(pair, spec);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].quality.new_good + points[i].quality.new_bad,
              points[i - 1].quality.new_good + points[i - 1].quality.new_bad)
        << "T=" << points[i].threshold;
  }
}

TEST(SweepTest, DeterministicForSpecSeed) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.seed_fractions = {0.05};
  spec.thresholds = {3};
  auto a = RunSweep(pair, spec);
  auto b = RunSweep(pair, spec);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].quality.new_good, b[0].quality.new_good);
  EXPECT_EQ(a[0].quality.new_bad, b[0].quality.new_bad);
}

TEST(SweepTest, GoodBadTableLayout) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.seed_fractions = {0.05, 0.10};
  spec.thresholds = {2, 4};
  auto points = RunSweep(pair, spec);
  Table table = SweepToGoodBadTable(points);
  EXPECT_EQ(table.num_rows(), 2u);
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("T=2 good"), std::string::npos);
  EXPECT_NE(out.str().find("T=4 good"), std::string::npos);
  EXPECT_NE(out.str().find("5%"), std::string::npos);
}

TEST(SweepTest, RecallTableLayout) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.seed_fractions = {0.10};
  spec.thresholds = {2, 3};
  auto points = RunSweep(pair, spec);
  Table table = SweepToRecallTable(points);
  EXPECT_EQ(table.num_rows(), 1u);
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find('%'), std::string::npos);
}

TEST(SweepTest, CsvHasHeaderAndOneLinePerPoint) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.seed_fractions = {0.05};
  spec.thresholds = {2, 3};
  auto points = RunSweep(pair, spec);
  const std::string csv = SweepToCsv(points);
  size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1u + points.size());
  EXPECT_EQ(csv.rfind("algorithm,seed_fraction,threshold", 0), 0u);
}

TEST(SweepTest, AlgorithmDimension) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.algorithms = {ReconcilerSpec("core"),
                     ReconcilerSpec("simple").Set("iterations", "1")};
  spec.seed_fractions = {0.10};
  spec.thresholds = {2, 3};
  auto points = RunSweep(pair, spec);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].algorithm, "core");
  EXPECT_EQ(points[1].algorithm, "core");
  EXPECT_EQ(points[2].algorithm, "simple:iterations=1");
  EXPECT_EQ(points[3].algorithm, "simple:iterations=1");
  EXPECT_EQ(points[0].threshold, 2u);
  EXPECT_EQ(points[1].threshold, 3u);
  // Same seed draw for every algorithm at a fraction.
  for (const SweepPoint& point : points) {
    EXPECT_EQ(point.num_seeds, points[0].num_seeds);
  }
  Table table = SweepToGoodBadTable(points);
  EXPECT_EQ(table.num_rows(), 2u);
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("core"), std::string::npos);
  EXPECT_NE(out.str().find("simple:iterations=1"), std::string::npos);
}

TEST(SweepTest, ThresholdFreeAlgorithmRunsOncePerFraction) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.algorithms = {ReconcilerSpec("core"), ReconcilerSpec("features")};
  spec.seed_fractions = {0.10};
  spec.thresholds = {2, 3};
  auto points = RunSweep(pair, spec);
  // core contributes one point per threshold, features a single one.
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[2].algorithm, "features");
  EXPECT_EQ(points[2].threshold, 0u);
  // Tables render the partial column with a placeholder, not a crash.
  std::ostringstream out;
  SweepToGoodBadTable(points).Print(out);
  EXPECT_NE(out.str().find('-'), std::string::npos);
}

TEST(SweepTest, CsvQuotesAlgorithmLabelsContainingCommas) {
  SweepPoint point;
  point.algorithm = "core:backend=hash,iterations=1";
  point.seed_fraction = 0.1;
  point.threshold = 2;
  const std::string csv = SweepToCsv({point});
  EXPECT_NE(csv.find("\"core:backend=hash,iterations=1\""),
            std::string::npos);
  // 15 header commas + 15 data separators + the 1 comma inside the quotes.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), ','), 31);
}

// Tentpole acceptance: every sweep point carries a well-formed PAC
// interval, the tables render it, and the CSV exports the bounds.
TEST(SweepTest, EveryPointCarriesWellFormedIntervals) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.seed_fractions = {0.05, 0.10};
  spec.thresholds = {2, 3};
  auto points = RunSweep(pair, spec);
  for (const SweepPoint& point : points) {
    EXPECT_LE(point.validation.precision.lo, point.validation.precision.point);
    EXPECT_GE(point.validation.precision.hi, point.validation.precision.point);
    EXPECT_LE(point.validation.recall.lo, point.validation.recall.point);
    EXPECT_GE(point.validation.recall.hi, point.validation.recall.point);
    // Default budget verifies everything: intervals are exact and match
    // the census metrics.
    EXPECT_TRUE(point.validation.exhaustive);
    EXPECT_DOUBLE_EQ(point.validation.precision.point,
                     point.quality.precision);
    EXPECT_DOUBLE_EQ(point.validation.recall.point, point.quality.recall_new);
  }
  std::ostringstream out;
  SweepToGoodBadTable(points).Print(out);
  EXPECT_NE(out.str().find("prec CI"), std::string::npos);
  EXPECT_NE(out.str().find('['), std::string::npos);
  const std::string csv = SweepToCsv(points);
  EXPECT_NE(csv.find("precision_lo"), std::string::npos);
  EXPECT_NE(csv.find("recall_hi"), std::string::npos);
  EXPECT_NE(csv.find("validation_delta"), std::string::npos);
}

TEST(SweepTest, BudgetedSweepWidensButStillBrackets) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.seed_fractions = {0.10};
  spec.thresholds = {2};
  spec.validation.budget = 25;
  spec.validation.delta = 0.05;
  auto points = RunSweep(pair, spec);
  ASSERT_EQ(points.size(), 1u);
  const ValidationReport& v = points[0].validation;
  if (v.num_matches > 25) {
    EXPECT_FALSE(v.exhaustive);
    EXPECT_EQ(v.verified, 25u);
    EXPECT_LT(v.precision.lo, v.precision.hi);  // sampled: nonzero width
  }
  EXPECT_LE(v.precision.lo, v.precision.point);
  EXPECT_GE(v.precision.hi, v.precision.point);
}

TEST(SweepTest, UnknownAlgorithmDies) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.algorithms = {ReconcilerSpec("nope")};
  EXPECT_DEATH(RunSweep(pair, spec), "nope");
}

TEST(SweepTest, EmptySpecDies) {
  RealizationPair pair = MakePair();
  SweepSpec spec;
  spec.seed_fractions = {};
  EXPECT_DEATH(RunSweep(pair, spec), "");
}

}  // namespace
}  // namespace reconcile
