// De-anonymization scenario (the Narayanan–Shmatikov setting the paper
// builds on): a provider releases an "anonymized" copy of its social graph;
// an attacker holds a second, public graph over the same population plus a
// handful of identified accounts, and wants to re-identify the release.
//
// This example runs both the paper's User-Matching algorithm and the
// NS09-style propagation baseline on the same instance and compares
// re-identification rate, error rate, and wall-clock cost — reproducing the
// paper's argument that simple witness counting with degree bucketing is
// both faster and more precise.
//
// Build & run:  ./build/examples/deanonymization

#include <cstdio>

#include "reconcile/api/registry.h"
#include "reconcile/api/spec.h"
#include "reconcile/eval/datasets.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"
#include "reconcile/util/timer.h"

int main() {
  using namespace reconcile;

  // The "provider's" social graph: an Enron-like sparse communication net.
  Graph population = MakeEnronStandin(/*scale=*/0.5, /*seed=*/1811);
  std::printf("population graph: %u nodes, %zu edges\n",
              population.num_nodes(), population.num_edges());

  // The anonymized release keeps 80%% of edges; the attacker's auxiliary
  // public graph holds a different random 70%%.
  IndependentSampleOptions sampling;
  sampling.s1 = 0.8;  // anonymized release
  sampling.s2 = 0.7;  // attacker's auxiliary graph
  RealizationPair pair = SampleIndependent(population, sampling, 23);

  // The attacker has identified 200 high-profile accounts by hand (the
  // NS09 experiments seed from high-degree nodes).
  SeedOptions seeding;
  seeding.bias = SeedBias::kTopDegree;
  seeding.fixed_count = 200;
  auto seeds = GenerateSeeds(pair, seeding, 31);
  std::printf("hand-identified seed accounts: %zu\n\n", seeds.size());

  // Both the paper's algorithm and the NS09 baseline go through the same
  // registry surface — comparing attacks is a matter of listing specs.
  for (const char* spec_text : {"core:threshold=2", "ns09:theta=1"}) {
    ReconcilerSpec spec;
    std::string error;
    if (!ReconcilerSpec::Parse(spec_text, &spec, &error)) {
      std::fprintf(stderr, "bad spec %s: %s\n", spec_text, error.c_str());
      return 1;
    }
    auto attack = Registry::Global().CreateOrDie(spec);
    Timer timer;
    MatchResult result = attack->Run(pair.g1, pair.g2, seeds);
    MatchQuality q = Evaluate(pair, result);
    std::printf("%-50s %6zu re-identified, %5zu wrong (error %.2f%%) "
                "in %.2fs\n",
                attack->Describe().c_str(), q.new_good, q.new_bad,
                100.0 * q.error_rate, timer.Seconds());
  }

  std::printf("\nTakeaway: a released graph with even modest overlap against "
              "a public one offers little anonymity — and the defender must "
              "assume the cheap, scalable attack, not the expensive one.\n");
  return 0;
}
