// Quickstart: the full reconciliation pipeline in ~40 lines.
//
//  1. Generate an underlying "true" social network (preferential attachment).
//  2. Derive two partial copies of it (independent edge deletion) — think
//     "the Facebook view" and "the Twitter view" of the same population.
//  3. Link a small fraction of users across the copies (the seeds).
//  4. Run User-Matching and evaluate against the hidden ground truth.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "reconcile/api/registry.h"
#include "reconcile/api/spec.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

int main() {
  using namespace reconcile;

  // 1. The hidden true network: 20k users, 20 edges per arriving user.
  Graph truth = GeneratePreferentialAttachment(/*n=*/20000, /*m=*/20,
                                               /*seed=*/2014);
  std::printf("underlying network: %u nodes, %zu edges\n", truth.num_nodes(),
              truth.num_edges());

  // 2. Two partial copies: each relationship survives in each copy with
  //    probability 0.5, independently. The second copy's labels are a
  //    hidden random permutation.
  IndependentSampleOptions sampling;
  sampling.s1 = sampling.s2 = 0.5;
  RealizationPair pair = SampleIndependent(truth, sampling, /*seed=*/99);
  std::printf("copy 1: %zu edges; copy 2: %zu edges; identifiable users: %zu\n",
              pair.g1.num_edges(), pair.g2.num_edges(), pair.NumIdentifiable());

  // 3. Seed links: 5% of users have linked their accounts explicitly.
  SeedOptions seeding;
  seeding.fraction = 0.05;
  auto seeds = GenerateSeeds(pair, seeding, /*seed=*/7);
  std::printf("seed links: %zu\n", seeds.size());

  // 4. Reconcile and score. Algorithms are addressed by registry key —
  //    swap "core" for "percolation", "ns09", ... to try a baseline.
  auto matcher = Registry::Global().CreateOrDie(
      ReconcilerSpec("core").Set("threshold", "2").Set("iterations", "2"));
  MatchResult result = matcher->Run(pair.g1, pair.g2, seeds);
  MatchQuality quality = Evaluate(pair, result);

  std::printf("\n%s finished in %.2fs over %zu rounds\n",
              matcher->Describe().c_str(), result.total_seconds,
              result.phases.size());
  std::printf("new links discovered: %zu good, %zu bad\n", quality.new_good,
              quality.new_bad);
  std::printf("precision: %.2f%%   recall over identifiable users: %.2f%%\n",
              100.0 * quality.precision, 100.0 * quality.recall_all);
  return 0;
}
