// Graph-isomorphism recovery — the paper's framing made concrete.
//
// §1 and §3 of the paper observe that with s1 = s2 = 1 (no edge deletion)
// the reconciliation problem *is* graph isomorphism: G2 is G1 with its
// labels scrambled by a hidden permutation, and the task is to recover the
// bijection. Graph isomorphism has no known polynomial algorithm in
// general — but the paper's point is that social networks are nothing like
// the hard instances, and a handful of trusted links collapses the search.
//
// This example scrambles a preferential-attachment graph, hands the matcher
// a tiny number of seed links (far below the fractions used anywhere in the
// evaluation), and recovers the full isomorphism with zero errors. It then
// repeats the exercise on a *regular* graph (a cycle), where every node
// looks identical: the matcher correctly refuses to guess rather than
// producing wrong links — precision over recall, the design theme of the
// whole algorithm.
//
// Build & run:  ./build/examples/isomorphism_recovery

#include <cstdio>
#include <utility>
#include <vector>

#include "reconcile/core/matcher.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/gen/preferential_attachment.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

int main() {
  using namespace reconcile;

  // --- Part 1: a social-like graph is easy. -------------------------------
  const NodeId n = 20000;
  Graph g = GeneratePreferentialAttachment(n, 8, 424242);
  std::printf("underlying graph: %u nodes, %zu edges (PA, m=8)\n", n,
              g.num_edges());

  IndependentSampleOptions no_deletion;
  no_deletion.s1 = 1.0;
  no_deletion.s2 = 1.0;  // identical copies: pure isomorphism
  RealizationPair pair = SampleIndependent(g, no_deletion, 424243);

  // 30 seed links out of 20,000 nodes — 0.15%.
  SeedOptions seeding;
  seeding.bias = SeedBias::kTopDegree;
  seeding.fixed_count = 30;
  auto seeds = GenerateSeeds(pair, seeding, 424244);
  std::printf("seeds: %zu links (%.2f%% of nodes, top-degree)\n\n",
              seeds.size(), 100.0 * seeds.size() / n);

  MatcherConfig config;
  config.min_score = 2;
  config.num_iterations = 3;
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  MatchQuality quality = Evaluate(pair, result);

  std::printf("recovered %zu of %zu node correspondences\n",
              quality.new_good + seeds.size(), pair.NumIdentifiable());
  std::printf("errors: %zu (precision %.2f%%), recall %.2f%%\n\n",
              quality.new_bad, 100.0 * quality.precision,
              100.0 * quality.recall_all);

  // --- Part 2: the degenerate counterexample. -----------------------------
  // A cycle is vertex-transitive: every non-seed node is structurally
  // indistinguishable from every other, so *any* matcher that guesses must
  // err. Ours refuses: candidate scores tie and the unique-best rule rejects
  // them.
  EdgeList cycle_edges(1000);
  for (NodeId v = 0; v < 1000; ++v) cycle_edges.Add(v, (v + 1) % 1000);
  Graph cycle = Graph::FromEdgeList(std::move(cycle_edges));
  RealizationPair cycle_pair = SampleIndependent(cycle, no_deletion, 424245);
  SeedOptions cycle_seeding;
  cycle_seeding.fraction = 0.05;
  auto cycle_seeds = GenerateSeeds(cycle_pair, cycle_seeding, 424246);
  MatcherConfig cycle_config;
  cycle_config.min_score = 2;
  MatchResult cycle_result =
      UserMatching(cycle_pair.g1, cycle_pair.g2, cycle_seeds, cycle_config);
  MatchQuality cycle_quality = Evaluate(cycle_pair, cycle_result);

  std::printf("cycle graph (1000 nodes, vertex-transitive): %zu new links, "
              "%zu wrong\n",
              cycle_quality.new_good + cycle_quality.new_bad,
              cycle_quality.new_bad);
  std::printf("=> on a symmetric instance the matcher abstains instead of "
              "guessing;\n   skewed degrees + distinct neighbourhoods are "
              "what make social graphs easy.\n");
  return 0;
}
