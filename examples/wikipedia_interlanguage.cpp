// Inter-language article alignment — the paper's most adversarial "real
// world" scenario (§5, Table 5 bottom): two networks that were never copies
// of a common source, French and German Wikipedia, connected only by a
// sparse set of human-curated inter-language links.
//
// The two link graphs have different sizes (4.36M vs 2.85M articles in the
// paper), only partial conceptual overlap, and independent editing noise.
// Starting from 10% of the inter-language links, the paper nearly triples
// the number of links at a 17.5% new-link error rate — and notes that many
// "errors" are near-misses (e.g. the French article on Lee Harvey Oswald
// mapped to the German article on the Kennedy assassination).
//
// This example reproduces the pipeline on the Wikipedia-like stand-in
// (asymmetric node deletion + per-copy edge noise; DESIGN.md §3), then
// demonstrates the application: growing an inter-language link table, with
// a confidence split the curators could review.
//
// Build & run:  ./build/examples/wikipedia_interlanguage

#include <cstdio>
#include <vector>

#include "reconcile/core/matcher.h"
#include "reconcile/core/witness.h"
#include "reconcile/eval/datasets.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/seed/seeding.h"

int main() {
  using namespace reconcile;

  // Two language editions with partial overlap (FR keeps ~80% of the
  // underlying concept graph, DE ~55%) and independent noise edges.
  RealizationPair pair = MakeWikipediaPair(/*scale=*/0.15, 2026);
  std::printf("French-like edition: %u articles, %zu links\n",
              pair.g1.num_nodes(), pair.g1.num_edges());
  std::printf("German-like edition: %u articles, %zu links\n",
              pair.g2.num_nodes(), pair.g2.num_edges());
  std::printf("articles existing in both editions: %zu\n\n",
              pair.NumIdentifiable());

  // The curated inter-language table covers ~10% of articles (the paper
  // reports 12.19% of French articles carry a link).
  SeedOptions seeding;
  seeding.fraction = 0.10;
  auto seeds = GenerateSeeds(pair, seeding, 2027);
  std::printf("starting from %zu curated inter-language links\n",
              seeds.size());

  MatcherConfig config;
  config.min_score = 3;  // the paper's Table 5 reports T=3 and T=5
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  MatchQuality quality = Evaluate(pair, result);

  std::printf("after matching: %zu links (%.1fx the curated table)\n",
              result.NumLinks(),
              static_cast<double>(result.NumLinks()) /
                  static_cast<double>(seeds.size()));
  std::printf("new links: %zu good, %zu wrong (error rate %.1f%%)\n\n",
              quality.new_good, quality.new_bad,
              100.0 * quality.error_rate);

  // Application: split the discovered links into auto-accept and
  // needs-review by their final witness support, the signal a curation
  // pipeline would use.
  std::vector<NodeId> links(pair.g1.num_nodes(), kInvalidNode);
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u)
    links[u] = result.map_1to2[u];

  size_t strong = 0, weak = 0, strong_correct = 0, weak_correct = 0;
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    const NodeId v = result.map_1to2[u];
    if (v == kInvalidNode || result.IsSeed1(u)) continue;
    const uint32_t support =
        CountSimilarityWitnesses(pair.g1, pair.g2, links, u, v);
    const bool correct = pair.map_1to2[u] == v;
    if (support >= 8) {
      ++strong;
      if (correct) ++strong_correct;
    } else {
      ++weak;
      if (correct) ++weak_correct;
    }
  }
  std::printf("curation split by final witness support:\n");
  std::printf("  auto-accept (support >= 8): %6zu links, %.1f%% correct\n",
              strong, strong ? 100.0 * strong_correct / strong : 0.0);
  std::printf("  needs review (support < 8): %6zu links, %.1f%% correct\n",
              weak, weak ? 100.0 * weak_correct / weak : 0.0);
  std::printf("\nthe high-support tier is near-perfect — the error mass "
              "concentrates in the\nlow-support tier a human curator would "
              "review anyway.\n");
  return 0;
}
