// Attack resilience demo: why structural witnesses beat profile features.
//
// An attacker creates one sybil clone per user in both networks and wires
// it to each victim's friends with probability 0.5 (the paper's §5 attack —
// the clone's *profile* is a perfect copy, so any feature-based matcher is
// fooled by construction). We show that User-Matching barely notices:
// impostor pairs are outcompeted by the genuine pair, which keeps acting as
// a blocker even after it is matched.
//
// We also run the simple common-neighbours variant to reproduce the paper's
// finding that it loses about half its recall under the same attack.
//
// Build & run:  ./build/examples/attack_resilience

#include <cstdio>

#include "reconcile/baseline/common_neighbors.h"
#include "reconcile/core/matcher.h"
#include "reconcile/eval/datasets.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/sampling/attack.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/seed/seeding.h"

int main() {
  using namespace reconcile;

  Graph fb = MakeFacebookStandin(/*scale=*/0.25, /*seed=*/1234);
  IndependentSampleOptions sampling;
  sampling.s1 = sampling.s2 = 0.75;
  RealizationPair clean = SampleIndependent(fb, sampling, 1235);

  AttackOptions attack;          // one clone per node, attach prob 0.5,
  attack.attack_both_copies = true;  // injected into both networks
  RealizationPair attacked = ApplyAttack(clean, attack, 1236);
  std::printf("network size before attack: %u nodes; after: %u nodes "
              "(half of all accounts are sybils)\n\n",
              clean.g1.num_nodes(), attacked.g1.num_nodes());

  SeedOptions seeding;
  seeding.fraction = 0.10;
  auto clean_seeds = GenerateSeeds(clean, seeding, 1237);
  auto attacked_seeds = GenerateSeeds(attacked, seeding, 1237);

  MatcherConfig config;
  config.min_score = 2;

  {
    MatchResult r = UserMatching(clean.g1, clean.g2, clean_seeds, config);
    MatchQuality q = Evaluate(clean, r);
    std::printf("User-Matching, no attack:   %6zu good %4zu bad  "
                "(precision %.2f%%)\n",
                q.new_good, q.new_bad, 100.0 * q.precision);
  }
  MatchQuality under_attack;
  {
    MatchResult r =
        UserMatching(attacked.g1, attacked.g2, attacked_seeds, config);
    under_attack = Evaluate(attacked, r);
    std::printf("User-Matching, under attack:%6zu good %4zu bad  "
                "(precision %.2f%%)\n",
                under_attack.new_good, under_attack.new_bad,
                100.0 * under_attack.precision);
  }
  {
    SimpleMatcherConfig simple;
    simple.min_score = 1;
    MatchResult r = SimpleCommonNeighborsMatch(attacked.g1, attacked.g2,
                                               attacked_seeds, simple);
    MatchQuality q = Evaluate(attacked, r);
    std::printf("simple matcher, under attack:%5zu good %4zu bad  "
                "(precision %.2f%%)\n",
                q.new_good, q.new_bad, 100.0 * q.precision);
  }

  std::printf("\nA sybil clone can copy a profile but cannot copy history: "
              "it never beats the genuine account's witness score, so the "
              "genuine pair blocks it.%s\n",
              under_attack.precision > 0.97 ? "" : " (unexpected: check config)");
  return 0;
}
