// Cross-network account linking with different network scopes — the
// motivating application from the paper's introduction: a user's personal
// friends are on one network, work colleagues on another, and the service
// wants to reconcile accounts to power "people you may know".
//
// The underlying population is an Affiliation Network (users belong to
// communities); each online network observes a user's communities only
// partially, and whole communities are missing per network (correlated
// deletion): the paper's hardest synthetic scenario.
//
// After reconciling, we demonstrate the payoff: friend suggestions computed
// from the union of both networks for users that were matched.
//
// Build & run:  ./build/examples/cross_network_linking

#include <algorithm>
#include <cstdio>
#include <vector>

#include "reconcile/core/matcher.h"
#include "reconcile/eval/datasets.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/sampling/community.h"
#include "reconcile/seed/seeding.h"

namespace {

using namespace reconcile;

// Friend suggestions for g1 user `u`: neighbours of the matched account on
// the other network, pulled back through the mapping, that are not already
// friends on network 1. Ranked by common-friend count on network 1.
std::vector<NodeId> SuggestFriends(const RealizationPair& pair,
                                   const MatchResult& result, NodeId u,
                                   size_t limit) {
  std::vector<NodeId> suggestions;
  NodeId u2 = result.map_1to2[u];
  if (u2 == kInvalidNode) return suggestions;
  for (NodeId w2 : pair.g2.Neighbors(u2)) {
    NodeId w1 = result.map_2to1[w2];
    if (w1 == kInvalidNode || w1 == u) continue;
    if (pair.g1.HasEdge(u, w1)) continue;  // already friends on network 1
    suggestions.push_back(w1);
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [&pair, u](NodeId a, NodeId b) {
              size_t ca = pair.g1.CommonNeighborCount(u, a);
              size_t cb = pair.g1.CommonNeighborCount(u, b);
              if (ca != cb) return ca > cb;
              return a < b;
            });
  if (suggestions.size() > limit) suggestions.resize(limit);
  return suggestions;
}

}  // namespace

int main() {
  using namespace reconcile;

  AffiliationNetwork population = MakeAffiliationStandin(/*scale=*/0.15, 77);
  std::printf("population: %u users in %zu communities\n",
              population.num_users(), population.num_interests());

  // Each network sees a copy of the social graph where whole communities
  // are missing (work friends on one side, family on the other).
  RealizationPair pair = SampleCommunity(population, /*interest_delete_prob=*/0.25,
                                         /*seed=*/78);
  std::printf("network A: %zu edges; network B: %zu edges\n",
              pair.g1.num_edges(), pair.g2.num_edges());

  SeedOptions seeding;
  seeding.fraction = 0.10;
  auto seeds = GenerateSeeds(pair, seeding, 79);

  MatcherConfig config;
  config.min_score = 3;
  MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
  MatchQuality quality = Evaluate(pair, result);
  std::printf("reconciled %zu accounts (+%zu seeds), error rate %.2f%%\n\n",
              quality.new_good + quality.new_bad, seeds.size(),
              100.0 * quality.error_rate);

  // Show friend suggestions for a few reconciled users.
  int shown = 0;
  size_t total_suggestions = 0, users_with_suggestions = 0;
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    if (result.map_1to2[u] == kInvalidNode) continue;
    std::vector<NodeId> suggestions = SuggestFriends(pair, result, u, 5);
    if (!suggestions.empty()) {
      ++users_with_suggestions;
      total_suggestions += suggestions.size();
      if (shown < 5) {
        std::printf("user %-6u -> suggest:", u);
        for (NodeId s : suggestions) std::printf(" %u", s);
        std::printf("\n");
        ++shown;
      }
    }
  }
  std::printf("\n%zu users would receive cross-network friend suggestions "
              "(%zu suggestions total) — relationships invisible to either "
              "network alone.\n",
              users_with_suggestions, total_suggestions);
  return 0;
}
