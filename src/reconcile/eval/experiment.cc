#include "reconcile/eval/experiment.h"

#include <sstream>

#include "reconcile/api/adapters.h"
#include "reconcile/util/timer.h"

namespace reconcile {

ExperimentResult RunExperiment(const RealizationPair& pair,
                               const SeedOptions& seed_options,
                               const Reconciler& reconciler, uint64_t seed) {
  ExperimentResult result;
  Timer seed_timer;
  std::vector<std::pair<NodeId, NodeId>> seeds =
      GenerateSeeds(pair, seed_options, seed);
  result.seed_seconds = seed_timer.Seconds();

  Timer match_timer;
  result.match = reconciler.Run(pair.g1, pair.g2, seeds);
  result.match_seconds = match_timer.Seconds();

  result.quality = Evaluate(pair, result.match);
  return result;
}

ExperimentResult RunExperiment(const RealizationPair& pair,
                               const SeedOptions& seed_options,
                               const MatcherConfig& matcher_config,
                               uint64_t seed) {
  return RunExperiment(pair, seed_options, CoreReconciler(matcher_config),
                       seed);
}

std::string FormatGoodBad(const MatchQuality& q) {
  std::ostringstream out;
  out << q.new_good << " good / " << q.new_bad << " bad";
  return out.str();
}

}  // namespace reconcile
