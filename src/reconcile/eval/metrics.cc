#include "reconcile/eval/metrics.h"

#include <algorithm>

#include "reconcile/util/logging.h"

namespace reconcile {

namespace {

// True if g1 node `u` is an endpoint of a seed link.
std::vector<char> SeedFlags(const MatchResult& result, size_t n1) {
  std::vector<char> is_seed(n1, 0);
  for (const auto& [u, v] : result.seeds) {
    (void)v;
    if (u < n1) is_seed[u] = 1;
  }
  return is_seed;
}

bool Identifiable(const RealizationPair& pair, NodeId u) {
  NodeId v = pair.map_1to2[u];
  if (v == kInvalidNode) return false;
  return pair.g1.degree(u) >= 1 && pair.g2.degree(v) >= 1;
}

}  // namespace

MatchQuality Evaluate(const RealizationPair& pair, const MatchResult& result) {
  RECONCILE_CHECK_EQ(result.map_1to2.size(), pair.g1.num_nodes());
  MatchQuality q;
  q.num_seeds = result.seeds.size();

  std::vector<char> is_seed = SeedFlags(result, pair.g1.num_nodes());

  size_t identifiable_not_seeded = 0;
  size_t good_links_total = 0;
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    bool identifiable = u < pair.map_1to2.size() && Identifiable(pair, u);
    if (identifiable) {
      ++q.identifiable;
      if (!is_seed[u]) ++identifiable_not_seeded;
    }
    NodeId matched = result.map_1to2[u];
    if (matched == kInvalidNode) continue;
    NodeId truth = u < pair.map_1to2.size() ? pair.map_1to2[u] : kInvalidNode;
    bool correct = matched == truth && truth != kInvalidNode;
    if (correct) ++good_links_total;
    if (is_seed[u]) continue;
    if (correct) {
      ++q.new_good;
    } else {
      ++q.new_bad;
    }
  }

  // Zero-denominator ratios are vacuously perfect (see MatchQuality docs):
  // no discoveries means no errors, nothing to find means nothing missed.
  size_t new_total = q.new_good + q.new_bad;
  q.precision = new_total == 0
                    ? 1.0
                    : static_cast<double>(q.new_good) /
                          static_cast<double>(new_total);
  q.error_rate = 1.0 - q.precision;
  q.recall_all = q.identifiable == 0
                     ? 1.0
                     : static_cast<double>(good_links_total) /
                           static_cast<double>(q.identifiable);
  q.recall_new = identifiable_not_seeded == 0
                     ? 1.0
                     : static_cast<double>(q.new_good) /
                           static_cast<double>(identifiable_not_seeded);
  return q;
}

std::vector<DegreeBandQuality> EvaluateByDegree(
    const RealizationPair& pair, const MatchResult& result,
    const std::vector<NodeId>& upper_bounds) {
  RECONCILE_CHECK(!upper_bounds.empty());
  RECONCILE_CHECK(std::is_sorted(upper_bounds.begin(), upper_bounds.end()));

  std::vector<DegreeBandQuality> bands;
  NodeId lo = 1;
  for (NodeId hi : upper_bounds) {
    DegreeBandQuality band;
    band.min_degree = lo;
    band.max_degree = hi;
    bands.push_back(band);
    lo = hi + 1;
  }
  DegreeBandQuality top;
  top.min_degree = lo;
  top.max_degree = kInvalidNode;
  bands.push_back(top);

  auto band_of = [&bands](NodeId degree) -> DegreeBandQuality* {
    for (DegreeBandQuality& band : bands) {
      if (degree >= band.min_degree && degree <= band.max_degree) return &band;
    }
    return nullptr;
  };

  std::vector<char> is_seed = SeedFlags(result, pair.g1.num_nodes());
  std::vector<size_t> not_seeded(bands.size(), 0);

  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    NodeId degree = pair.g1.degree(u);
    DegreeBandQuality* band = band_of(degree);
    if (band == nullptr) continue;  // degree-0 nodes fall outside all bands
    size_t band_index = static_cast<size_t>(band - bands.data());

    bool identifiable = u < pair.map_1to2.size() && Identifiable(pair, u);
    if (identifiable) {
      ++band->identifiable;
      if (!is_seed[u]) ++not_seeded[band_index];
    }
    if (is_seed[u]) continue;
    NodeId matched = result.map_1to2[u];
    if (matched == kInvalidNode) continue;
    NodeId truth = u < pair.map_1to2.size() ? pair.map_1to2[u] : kInvalidNode;
    if (matched == truth && truth != kInvalidNode) {
      ++band->new_good;
    } else {
      ++band->new_bad;
    }
  }

  for (size_t i = 0; i < bands.size(); ++i) {
    DegreeBandQuality& band = bands[i];
    size_t total = band.new_good + band.new_bad;
    band.precision = total == 0 ? 1.0
                                : static_cast<double>(band.new_good) /
                                      static_cast<double>(total);
    band.recall = not_seeded[i] == 0
                      ? 1.0  // vacuous: the band had nothing to find
                      : static_cast<double>(band.new_good) /
                            static_cast<double>(not_seeded[i]);
  }
  return bands;
}

}  // namespace reconcile
