#ifndef RECONCILE_EVAL_SWEEP_H_
#define RECONCILE_EVAL_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "reconcile/api/spec.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/eval/table.h"
#include "reconcile/eval/validation.h"
#include "reconcile/sampling/realization.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {

/// One cell of a (algorithm × seed fraction × threshold) sweep grid.
struct SweepPoint {
  /// Spec string of the algorithm that produced the point (without the
  /// per-cell threshold override), e.g. "core" or "simple:iterations=1".
  std::string algorithm;
  double seed_fraction = 0.0;
  /// The grid threshold, or 0 for algorithms without a threshold dimension
  /// (they contribute one point per seed fraction).
  uint32_t threshold = 0;
  size_t num_seeds = 0;
  MatchQuality quality;
  /// PAC precision/recall intervals for this cell (validation.h), under the
  /// sweep's `SweepSpec::validation` budget. With the default unlimited
  /// budget the intervals are exact and zero-width.
  ValidationReport validation;
  double seconds = 0.0;
};

/// Declarative grid for the experiment shape every figure/table in §5
/// shares: fix a realization pair, vary the seed link probability `l` and
/// matching threshold `T`, and report Good/Bad per cell — for any set of
/// registered algorithms, so baselines drop into the same tables as the
/// core matcher. Seeds are redrawn per seed fraction (same draw across
/// algorithms and thresholds, as in the paper's figures, so columns are
/// directly comparable).
///
/// The threshold dimension maps onto each algorithm's registered
/// `threshold_param` ("threshold" for the witness-count algorithms, "theta"
/// for ns09); algorithms without one (features) run once per fraction.
struct SweepSpec {
  /// Algorithms to sweep; resolved through `Registry::Global()`. Base
  /// parameters (iterations, backend, ...) ride in each spec's param bag.
  std::vector<ReconcilerSpec> algorithms = {ReconcilerSpec("core")};
  std::vector<double> seed_fractions = {0.05, 0.10, 0.20};
  std::vector<uint32_t> thresholds = {2, 3, 4, 5};
  SeedBias bias = SeedBias::kUniform;
  uint64_t rng_seed = 1;
  /// Verification protocol for the per-point PAC intervals. The default
  /// (unlimited budget) verifies every discovered link — exact intervals;
  /// set a finite `validation.budget` to simulate a paid-verification
  /// operator. Each grid cell draws its verification sample from a
  /// deterministic per-cell fork of `validation.rng_seed`.
  ValidationConfig validation;
};

/// Runs the grid; points are ordered fraction-major, then algorithm, then
/// threshold. Fatal on an empty grid or an unresolvable algorithm spec.
std::vector<SweepPoint> RunSweep(const RealizationPair& pair,
                                 const SweepSpec& spec);

/// Renders the paper's table layout: one row per (algorithm, seed
/// fraction), one "Good Bad" column pair per threshold. The algorithm
/// label is omitted when the sweep covered a single algorithm; cells an
/// algorithm did not produce (no threshold dimension) print "-".
Table SweepToGoodBadTable(const std::vector<SweepPoint>& points);

/// Renders a recall curve (one row per (algorithm, fraction), recall per
/// threshold) — the shape of Figures 2 and 3.
Table SweepToRecallTable(const std::vector<SweepPoint>& points);

/// Serializes the sweep as CSV (header + one line per point) for plotting.
std::string SweepToCsv(const std::vector<SweepPoint>& points);

}  // namespace reconcile

#endif  // RECONCILE_EVAL_SWEEP_H_
