#ifndef RECONCILE_EVAL_SWEEP_H_
#define RECONCILE_EVAL_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "reconcile/core/matcher.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/eval/table.h"
#include "reconcile/sampling/realization.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {

/// One cell of a (seed fraction × threshold) sweep grid.
struct SweepPoint {
  double seed_fraction = 0.0;
  uint32_t threshold = 0;
  size_t num_seeds = 0;
  MatchQuality quality;
  double seconds = 0.0;
};

/// Declarative grid for the experiment shape every figure/table in §5
/// shares: fix a realization pair, vary the seed link probability `l` and
/// matching threshold `T`, and report Good/Bad per cell. Seeds are redrawn
/// per seed fraction (same draw across thresholds, as in the paper's
/// figures, so threshold columns are directly comparable).
struct SweepSpec {
  std::vector<double> seed_fractions = {0.05, 0.10, 0.20};
  std::vector<uint32_t> thresholds = {2, 3, 4, 5};
  SeedBias bias = SeedBias::kUniform;
  /// Matcher settings; `min_score` is overridden per grid cell.
  MatcherConfig matcher;
  uint64_t rng_seed = 1;
};

/// Runs the grid; points are ordered fraction-major, threshold-minor.
std::vector<SweepPoint> RunSweep(const RealizationPair& pair,
                                 const SweepSpec& spec);

/// Renders the paper's table layout: one row per seed fraction, one
/// "Good Bad" column pair per threshold.
Table SweepToGoodBadTable(const std::vector<SweepPoint>& points);

/// Renders a recall curve (one row per fraction, recall per threshold) —
/// the shape of Figures 2 and 3.
Table SweepToRecallTable(const std::vector<SweepPoint>& points);

/// Serializes the sweep as CSV (header + one line per point) for plotting.
std::string SweepToCsv(const std::vector<SweepPoint>& points);

}  // namespace reconcile

#endif  // RECONCILE_EVAL_SWEEP_H_
