#include "reconcile/eval/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "reconcile/util/logging.h"

namespace reconcile {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  RECONCILE_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const std::vector<std::string>& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) out << "  ";
    }
    out << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << "\n";
  for (const std::vector<std::string>& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits) + "%";
}

}  // namespace reconcile
