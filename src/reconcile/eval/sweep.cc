#include "reconcile/eval/sweep.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "reconcile/util/logging.h"
#include "reconcile/util/timer.h"

namespace reconcile {

namespace {

// Distinct thresholds in grid order, and the sorted distinct fractions.
std::vector<uint32_t> DistinctThresholds(
    const std::vector<SweepPoint>& points) {
  std::vector<uint32_t> thresholds;
  for (const SweepPoint& point : points) {
    if (std::find(thresholds.begin(), thresholds.end(), point.threshold) ==
        thresholds.end()) {
      thresholds.push_back(point.threshold);
    }
  }
  return thresholds;
}

std::vector<double> DistinctFractions(const std::vector<SweepPoint>& points) {
  std::vector<double> fractions;
  for (const SweepPoint& point : points) {
    if (std::find(fractions.begin(), fractions.end(), point.seed_fraction) ==
        fractions.end()) {
      fractions.push_back(point.seed_fraction);
    }
  }
  return fractions;
}

const SweepPoint* FindPoint(const std::vector<SweepPoint>& points,
                            double fraction, uint32_t threshold) {
  for (const SweepPoint& point : points) {
    if (point.seed_fraction == fraction && point.threshold == threshold) {
      return &point;
    }
  }
  return nullptr;
}

}  // namespace

std::vector<SweepPoint> RunSweep(const RealizationPair& pair,
                                 const SweepSpec& spec) {
  RECONCILE_CHECK(!spec.seed_fractions.empty());
  RECONCILE_CHECK(!spec.thresholds.empty());
  std::vector<SweepPoint> points;
  points.reserve(spec.seed_fractions.size() * spec.thresholds.size());
  uint64_t draw = spec.rng_seed;
  for (double fraction : spec.seed_fractions) {
    SeedOptions seed_options;
    seed_options.fraction = fraction;
    seed_options.bias = spec.bias;
    auto seeds = GenerateSeeds(pair, seed_options, ++draw);
    for (uint32_t threshold : spec.thresholds) {
      MatcherConfig config = spec.matcher;
      config.min_score = threshold;
      Timer timer;
      MatchResult result = UserMatching(pair.g1, pair.g2, seeds, config);
      SweepPoint point;
      point.seed_fraction = fraction;
      point.threshold = threshold;
      point.num_seeds = seeds.size();
      point.quality = Evaluate(pair, result);
      point.seconds = timer.Seconds();
      points.push_back(point);
    }
  }
  return points;
}

Table SweepToGoodBadTable(const std::vector<SweepPoint>& points) {
  const std::vector<uint32_t> thresholds = DistinctThresholds(points);
  std::vector<std::string> headers = {"seed prob"};
  for (uint32_t threshold : thresholds) {
    headers.push_back("T=" + std::to_string(threshold) + " good");
    headers.push_back("bad");
  }
  Table table(std::move(headers));
  for (double fraction : DistinctFractions(points)) {
    std::vector<std::string> row = {FormatPercent(fraction, 0)};
    for (uint32_t threshold : thresholds) {
      const SweepPoint* point = FindPoint(points, fraction, threshold);
      RECONCILE_CHECK(point != nullptr) << "ragged sweep grid";
      row.push_back(std::to_string(point->quality.new_good));
      row.push_back(std::to_string(point->quality.new_bad));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

Table SweepToRecallTable(const std::vector<SweepPoint>& points) {
  const std::vector<uint32_t> thresholds = DistinctThresholds(points);
  std::vector<std::string> headers = {"seed prob"};
  for (uint32_t threshold : thresholds) {
    headers.push_back("T=" + std::to_string(threshold));
  }
  Table table(std::move(headers));
  for (double fraction : DistinctFractions(points)) {
    std::vector<std::string> row = {FormatPercent(fraction, 0)};
    for (uint32_t threshold : thresholds) {
      const SweepPoint* point = FindPoint(points, fraction, threshold);
      RECONCILE_CHECK(point != nullptr) << "ragged sweep grid";
      row.push_back(FormatPercent(point->quality.recall_all, 1));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

std::string SweepToCsv(const std::vector<SweepPoint>& points) {
  std::ostringstream out;
  out << "seed_fraction,threshold,num_seeds,new_good,new_bad,precision,"
         "recall_all,recall_new,seconds\n";
  for (const SweepPoint& point : points) {
    out << point.seed_fraction << ',' << point.threshold << ','
        << point.num_seeds << ',' << point.quality.new_good << ','
        << point.quality.new_bad << ',' << point.quality.precision << ','
        << point.quality.recall_all << ',' << point.quality.recall_new << ','
        << point.seconds << '\n';
  }
  return out.str();
}

}  // namespace reconcile
