#include "reconcile/eval/sweep.h"

#include <algorithm>
#include <sstream>

#include "reconcile/api/registry.h"
#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"
#include "reconcile/util/timer.h"

namespace reconcile {

namespace {

// Distinct values in first-appearance (grid) order.
std::vector<std::string> DistinctAlgorithms(
    const std::vector<SweepPoint>& points) {
  std::vector<std::string> algorithms;
  for (const SweepPoint& point : points) {
    if (std::find(algorithms.begin(), algorithms.end(), point.algorithm) ==
        algorithms.end()) {
      algorithms.push_back(point.algorithm);
    }
  }
  return algorithms;
}

std::vector<uint32_t> DistinctThresholds(
    const std::vector<SweepPoint>& points) {
  std::vector<uint32_t> thresholds;
  for (const SweepPoint& point : points) {
    if (std::find(thresholds.begin(), thresholds.end(), point.threshold) ==
        thresholds.end()) {
      thresholds.push_back(point.threshold);
    }
  }
  std::sort(thresholds.begin(), thresholds.end());
  return thresholds;
}

std::vector<double> DistinctFractions(const std::vector<SweepPoint>& points) {
  std::vector<double> fractions;
  for (const SweepPoint& point : points) {
    if (std::find(fractions.begin(), fractions.end(), point.seed_fraction) ==
        fractions.end()) {
      fractions.push_back(point.seed_fraction);
    }
  }
  return fractions;
}

const SweepPoint* FindPoint(const std::vector<SweepPoint>& points,
                            const std::string& algorithm, double fraction,
                            uint32_t threshold) {
  for (const SweepPoint& point : points) {
    if (point.algorithm == algorithm && point.seed_fraction == fraction &&
        point.threshold == threshold) {
      return &point;
    }
  }
  return nullptr;
}

std::string RowLabel(const std::string& algorithm, double fraction,
                     bool single_algorithm) {
  std::string label = FormatPercent(fraction, 0);
  if (!single_algorithm) label = algorithm + " " + label;
  return label;
}

// Shared row loop for the two table renderers: one row per
// (algorithm, fraction), `cell` fills the per-threshold columns.
template <typename CellFn>
Table RenderGrid(const std::vector<SweepPoint>& points,
                 std::vector<std::string> headers, const CellFn& cell) {
  const std::vector<std::string> algorithms = DistinctAlgorithms(points);
  const std::vector<uint32_t> thresholds = DistinctThresholds(points);
  Table table(std::move(headers));
  for (const std::string& algorithm : algorithms) {
    for (double fraction : DistinctFractions(points)) {
      std::vector<std::string> row = {
          RowLabel(algorithm, fraction, algorithms.size() == 1)};
      for (uint32_t threshold : thresholds) {
        cell(FindPoint(points, algorithm, fraction, threshold), &row);
      }
      table.AddRow(std::move(row));
    }
  }
  return table;
}

// Column label for a grid threshold; 0 marks the threshold-free column.
std::string ThresholdLabel(uint32_t threshold) {
  return threshold == 0 ? "T=-" : "T=" + std::to_string(threshold);
}

// "[0.94,1.00]" — a compact PAC interval cell.
std::string IntervalCell(const PacInterval& interval) {
  return "[" + FormatDouble(interval.lo, 2) + "," +
         FormatDouble(interval.hi, 2) + "]";
}

}  // namespace

std::vector<SweepPoint> RunSweep(const RealizationPair& pair,
                                 const SweepSpec& spec) {
  RECONCILE_CHECK(!spec.algorithms.empty());
  RECONCILE_CHECK(!spec.seed_fractions.empty());
  RECONCILE_CHECK(!spec.thresholds.empty());
  const Registry& registry = Registry::Global();
  std::vector<SweepPoint> points;
  uint64_t draw = spec.rng_seed;
  for (double fraction : spec.seed_fractions) {
    SeedOptions seed_options;
    seed_options.fraction = fraction;
    seed_options.bias = spec.bias;
    auto seeds = GenerateSeeds(pair, seed_options, ++draw);
    for (const ReconcilerSpec& algorithm : spec.algorithms) {
      const Registry::Entry* entry = registry.Find(algorithm.algorithm);
      RECONCILE_CHECK(entry != nullptr)
          << "unknown sweep algorithm '" << algorithm.algorithm << "'";
      // Threshold-free algorithms contribute one point per fraction.
      std::vector<uint32_t> thresholds =
          entry->threshold_param.empty() ? std::vector<uint32_t>{0}
                                         : spec.thresholds;
      for (uint32_t threshold : thresholds) {
        ReconcilerSpec cell = algorithm;
        if (!entry->threshold_param.empty()) {
          cell.Set(entry->threshold_param, std::to_string(threshold));
        }
        auto reconciler = registry.CreateOrDie(cell);
        Timer timer;
        MatchResult result = reconciler->Run(pair.g1, pair.g2, seeds);
        SweepPoint point;
        point.algorithm = algorithm.ToString();
        point.seed_fraction = fraction;
        point.threshold = threshold;
        point.num_seeds = seeds.size();
        point.quality = Evaluate(pair, result);
        // Each cell verifies with its own deterministic sample so budgeted
        // sweeps don't reuse one draw across the whole grid.
        ValidationConfig validation = spec.validation;
        validation.rng_seed =
            HashMix64(spec.validation.rng_seed + points.size());
        point.validation = ValidateMatching(pair, result, validation);
        point.seconds = timer.Seconds();
        points.push_back(std::move(point));
      }
    }
  }
  return points;
}

Table SweepToGoodBadTable(const std::vector<SweepPoint>& points) {
  std::vector<std::string> headers = {"seed prob"};
  for (uint32_t threshold : DistinctThresholds(points)) {
    headers.push_back(ThresholdLabel(threshold) + " good");
    headers.push_back("bad");
    headers.push_back("prec CI");
  }
  return RenderGrid(points, std::move(headers),
                    [](const SweepPoint* point, std::vector<std::string>* row) {
                      row->push_back(
                          point ? std::to_string(point->quality.new_good)
                                : "-");
                      row->push_back(
                          point ? std::to_string(point->quality.new_bad)
                                : "-");
                      row->push_back(
                          point ? IntervalCell(point->validation.precision)
                                : "-");
                    });
}

Table SweepToRecallTable(const std::vector<SweepPoint>& points) {
  std::vector<std::string> headers = {"seed prob"};
  for (uint32_t threshold : DistinctThresholds(points)) {
    headers.push_back(ThresholdLabel(threshold));
  }
  return RenderGrid(points, std::move(headers),
                    [](const SweepPoint* point, std::vector<std::string>* row) {
                      row->push_back(
                          point ? FormatPercent(point->quality.recall_all, 1) +
                                      " " + IntervalCell(point->validation.recall)
                                : "-");
                    });
}

std::string SweepToCsv(const std::vector<SweepPoint>& points) {
  // Multi-parameter spec labels contain commas ("core:backend=hash,..."),
  // so the algorithm field is quoted whenever it needs to be.
  const auto csv_field = [](const std::string& value) {
    if (value.find_first_of(",\"\n") == std::string::npos) return value;
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  out << "algorithm,seed_fraction,threshold,num_seeds,new_good,new_bad,"
         "precision,precision_lo,precision_hi,recall_all,recall_new,"
         "recall_lo,recall_hi,validated,validation_delta,seconds\n";
  for (const SweepPoint& point : points) {
    out << csv_field(point.algorithm) << ',' << point.seed_fraction << ','
        << point.threshold << ',' << point.num_seeds << ','
        << point.quality.new_good << ',' << point.quality.new_bad << ','
        << point.quality.precision << ','
        << point.validation.precision.lo << ','
        << point.validation.precision.hi << ','
        << point.quality.recall_all << ',' << point.quality.recall_new << ','
        << point.validation.recall.lo << ',' << point.validation.recall.hi
        << ',' << point.validation.verified << ',' << point.validation.delta
        << ',' << point.seconds << '\n';
  }
  return out.str();
}

}  // namespace reconcile
