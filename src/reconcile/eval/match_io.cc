#include "reconcile/eval/match_io.h"

#include <fstream>
#include <sstream>

namespace reconcile {

bool WriteMatchingText(const MatchResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# links=" << result.NumLinks() << " seeds=" << result.seeds.size()
      << "\n";
  for (NodeId u = 0; u < result.map_1to2.size(); ++u) {
    const NodeId v = result.map_1to2[u];
    if (v == kInvalidNode) continue;
    out << u << " " << v;
    if (result.IsSeed1(u)) out << " seed";
    out << "\n";
  }
  return static_cast<bool>(out);
}

bool ReadMatchingText(const std::string& path,
                      std::vector<std::pair<NodeId, NodeId>>* links,
                      std::vector<std::pair<NodeId, NodeId>>* seeds) {
  std::ifstream in(path);
  if (!in) return false;
  std::vector<std::pair<NodeId, NodeId>> parsed_links;
  std::vector<std::pair<NodeId, NodeId>> parsed_seeds;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    uint64_t u = 0, v = 0;
    if (!(fields >> u >> v)) return false;
    if (u >= kInvalidNode || v >= kInvalidNode) return false;
    std::string tag;
    const bool is_seed = static_cast<bool>(fields >> tag) && tag == "seed";
    parsed_links.emplace_back(static_cast<NodeId>(u),
                              static_cast<NodeId>(v));
    if (is_seed) parsed_seeds.emplace_back(parsed_links.back());
  }
  if (links != nullptr) *links = std::move(parsed_links);
  if (seeds != nullptr) *seeds = std::move(parsed_seeds);
  return true;
}

bool WriteSeedsText(const std::vector<std::pair<NodeId, NodeId>>& seeds,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# seeds=" << seeds.size() << "\n";
  for (const auto& [u, v] : seeds) out << u << " " << v << " seed\n";
  return static_cast<bool>(out);
}

}  // namespace reconcile
