#ifndef RECONCILE_EVAL_DISAGREEMENT_H_
#define RECONCILE_EVAL_DISAGREEMENT_H_

#include <cstddef>
#include <string>

#include "reconcile/core/result.h"
#include "reconcile/sampling/realization.h"

namespace reconcile {

/// Cross-algorithm disagreement: run two reconcilers on the *same* scenario
/// and measure where they differ — which correct pairs each recovers that
/// the other misses, and where their raw matchings conflict. This is the
/// harness behind "how much does a BP challenger add over the core
/// matcher?" (ROADMAP open item 4): a challenger whose only-B set is empty
/// adds nothing; a large only-B set is the upper bound on what ensembling
/// could recover.
struct DisagreementReport {
  /// Identifiable, not-seeded ground-truth pairs (nodes seeded in either
  /// input are excluded — the scenario's givens, not anyone's discovery).
  size_t num_targets = 0;
  /// Partition of the targets by who recovered them correctly. Always:
  /// `both_good + only_a_good + only_b_good + neither_good == num_targets`.
  size_t both_good = 0;
  size_t only_a_good = 0;
  size_t only_b_good = 0;
  size_t neither_good = 0;
  /// Raw matching overlap over discovered (non-seed) links, right or
  /// wrong: links proposed identically by both, by only one side, and g1
  /// nodes both matched but to *different* g2 nodes.
  size_t a_matched = 0;      ///< Discovered links in A.
  size_t b_matched = 0;      ///< Discovered links in B.
  size_t agree_links = 0;    ///< Same (u, v) proposed by both.
  size_t conflict_links = 0; ///< Same u, different v.
  size_t a_only_links = 0;   ///< u matched by A alone.
  size_t b_only_links = 0;   ///< u matched by B alone.
};

/// Compares two matchings of the same realization pair against its ground
/// truth. Purely a function of the inputs — deterministic, and therefore
/// reproducible across thread counts whenever the matchings themselves are.
DisagreementReport CompareMatchings(const RealizationPair& pair,
                                    const MatchResult& a,
                                    const MatchResult& b);

/// Two-line rendering with the given side labels, e.g.
///   "targets 950: both 800 | core-only 63 | bp-only 12 | neither 75
///    links: agree 850, conflict 9, core-only 70, bp-only 15".
std::string FormatDisagreementReport(const DisagreementReport& report,
                                     const std::string& a_name,
                                     const std::string& b_name);

}  // namespace reconcile

#endif  // RECONCILE_EVAL_DISAGREEMENT_H_
