#ifndef RECONCILE_EVAL_METRICS_H_
#define RECONCILE_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "reconcile/core/result.h"
#include "reconcile/sampling/realization.h"

namespace reconcile {

/// Quality of a matching relative to the hidden ground truth. "New" links
/// are the ones beyond the input seeds — the paper's tables report exactly
/// these as Good / Bad counts.
///
/// Degenerate conventions: every zero-denominator ratio is *vacuously
/// perfect*, never silently zero. A matcher that discovers nothing has made
/// no errors (`precision = 1`), and a scenario with nothing identifiable to
/// find (`identifiable == 0`, or every identifiable pair already seeded for
/// `recall_new`) has no recall obligation (`recall = 1`). This keeps
/// "perfect run" and "nothing-to-do run" distinguishable from failures in
/// sweep tables and matches the PAC validation module's conventions
/// (validation.h). Covered by eval_metrics_test.cc.
struct MatchQuality {
  size_t num_seeds = 0;
  size_t new_good = 0;       ///< Non-seed links that match the ground truth.
  size_t new_bad = 0;        ///< Non-seed links that contradict it.
  size_t identifiable = 0;   ///< Ground-truth pairs with degree >= 1 in both copies.
  double precision = 1.0;    ///< new_good / (new_good + new_bad); 1 when no new links.
  double error_rate = 0.0;   ///< 1 - precision.
  double recall_all = 0.0;   ///< (seed-or-new good links) / identifiable; 1 when identifiable == 0.
  double recall_new = 0.0;   ///< new_good / (identifiable not seeded); 1 when that count is 0.
};

/// Scores `result` against the ground truth in `pair`. Seed links are
/// excluded from the good/bad counts (they were given, not discovered).
MatchQuality Evaluate(const RealizationPair& pair, const MatchResult& result);

/// Quality within one degree band (degrees measured in g1).
struct DegreeBandQuality {
  NodeId min_degree = 0;      ///< Band covers degrees [min_degree, max_degree].
  NodeId max_degree = 0;
  size_t identifiable = 0;
  size_t new_good = 0;
  size_t new_bad = 0;
  double precision = 1.0;     ///< Vacuously 1 when the band discovered nothing.
  double recall = 0.0;        ///< new_good / identifiable-not-seeded in band;
                              ///< vacuously 1 when that denominator is 0.
};

/// Degree-stratified evaluation (paper Figure 4): bands are
/// [bounds[i]+1, bounds[i+1]] with an implicit final band to infinity.
/// Default bounds mirror the figure's buckets.
std::vector<DegreeBandQuality> EvaluateByDegree(
    const RealizationPair& pair, const MatchResult& result,
    const std::vector<NodeId>& upper_bounds = {5, 10, 20, 50, 100});

}  // namespace reconcile

#endif  // RECONCILE_EVAL_METRICS_H_
