#include "reconcile/eval/disagreement.h"

#include <sstream>
#include <vector>

#include "reconcile/util/logging.h"

namespace reconcile {

DisagreementReport CompareMatchings(const RealizationPair& pair,
                                    const MatchResult& a,
                                    const MatchResult& b) {
  const NodeId n = pair.g1.num_nodes();
  RECONCILE_CHECK_EQ(a.map_1to2.size(), n);
  RECONCILE_CHECK_EQ(b.map_1to2.size(), n);

  std::vector<char> is_seed(n, 0);
  for (const auto& [u, v] : a.seeds) {
    (void)v;
    if (u < n) is_seed[u] = 1;
  }
  for (const auto& [u, v] : b.seeds) {
    (void)v;
    if (u < n) is_seed[u] = 1;
  }

  DisagreementReport report;
  for (NodeId u = 0; u < n; ++u) {
    if (is_seed[u]) continue;
    const NodeId va = a.map_1to2[u];
    const NodeId vb = b.map_1to2[u];
    if (va != kInvalidNode) ++report.a_matched;
    if (vb != kInvalidNode) ++report.b_matched;
    if (va != kInvalidNode && vb != kInvalidNode) {
      if (va == vb) {
        ++report.agree_links;
      } else {
        ++report.conflict_links;
      }
    } else if (va != kInvalidNode) {
      ++report.a_only_links;
    } else if (vb != kInvalidNode) {
      ++report.b_only_links;
    }

    const NodeId truth =
        u < pair.map_1to2.size() ? pair.map_1to2[u] : kInvalidNode;
    const bool identifiable = truth != kInvalidNode &&
                              pair.g1.degree(u) >= 1 &&
                              pair.g2.degree(truth) >= 1;
    if (!identifiable) continue;
    ++report.num_targets;
    const bool a_good = va == truth;
    const bool b_good = vb == truth;
    if (a_good && b_good) {
      ++report.both_good;
    } else if (a_good) {
      ++report.only_a_good;
    } else if (b_good) {
      ++report.only_b_good;
    } else {
      ++report.neither_good;
    }
  }
  return report;
}

std::string FormatDisagreementReport(const DisagreementReport& report,
                                     const std::string& a_name,
                                     const std::string& b_name) {
  std::ostringstream out;
  out << "targets " << report.num_targets << ": both " << report.both_good
      << " | " << a_name << "-only " << report.only_a_good << " | " << b_name
      << "-only " << report.only_b_good << " | neither "
      << report.neither_good << "\nlinks: agree " << report.agree_links
      << ", conflict " << report.conflict_links << ", " << a_name << "-only "
      << report.a_only_links << ", " << b_name << "-only "
      << report.b_only_links << " (" << a_name << " " << report.a_matched
      << " matched, " << b_name << " " << report.b_matched << " matched)";
  return out.str();
}

}  // namespace reconcile
