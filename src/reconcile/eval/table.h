#ifndef RECONCILE_EVAL_TABLE_H_
#define RECONCILE_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace reconcile {

/// Minimal fixed-width table printer for the bench harnesses; keeps the
/// reproduced tables visually close to the paper's.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with aligned columns, a header underline and 2-space gutters.
  void Print(std::ostream& out) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);

/// Formats a ratio as a percentage string like "99.37%".
std::string FormatPercent(double fraction, int digits = 2);

}  // namespace reconcile

#endif  // RECONCILE_EVAL_TABLE_H_
