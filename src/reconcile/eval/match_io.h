#ifndef RECONCILE_EVAL_MATCH_IO_H_
#define RECONCILE_EVAL_MATCH_IO_H_

#include <string>
#include <utility>
#include <vector>

#include "reconcile/core/result.h"
#include "reconcile/graph/types.h"

namespace reconcile {

/// Writes the links of `result` (seeds and discovered) as text: a header
/// comment, then one `u v [seed]` line per link, sorted by `u`. Returns
/// false on I/O failure.
bool WriteMatchingText(const MatchResult& result, const std::string& path);

/// Reads a link file written by `WriteMatchingText` (or any `u v` lines;
/// a third column `seed` marks seed links, `#` lines are comments).
/// Returns false on I/O or parse failure; outputs are untouched on failure.
/// `seeds` receives only the marked links; `links` receives all of them.
bool ReadMatchingText(const std::string& path,
                      std::vector<std::pair<NodeId, NodeId>>* links,
                      std::vector<std::pair<NodeId, NodeId>>* seeds);

/// Writes seed pairs as `u v` lines (all marked as seeds).
bool WriteSeedsText(const std::vector<std::pair<NodeId, NodeId>>& seeds,
                    const std::string& path);

}  // namespace reconcile

#endif  // RECONCILE_EVAL_MATCH_IO_H_
