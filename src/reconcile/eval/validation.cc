#include "reconcile/eval/validation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"

namespace reconcile {

namespace {

// log C(n, k) via lgamma — exact enough for tail sums at any budget size.
double LogChoose(size_t n, size_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

// P(X >= k) for X ~ Binomial(n, p), summed in log space from the largest
// term down so the accumulation never underflows away the mass.
double BinomialTailGe(size_t k, size_t n, double p) {
  if (k == 0) return 1.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  // Peak of the summand over [k, n].
  double peak = -std::numeric_limits<double>::infinity();
  std::vector<double> terms;
  terms.reserve(n - k + 1);
  for (size_t i = k; i <= n; ++i) {
    const double t = LogChoose(n, i) + static_cast<double>(i) * log_p +
                     static_cast<double>(n - i) * log_q;
    terms.push_back(t);
    peak = std::max(peak, t);
  }
  double sum = 0.0;
  for (double t : terms) sum += std::exp(t - peak);
  const double result = std::exp(peak) * sum;
  return std::min(1.0, result);
}

// P(X <= k) = 1 - P(X >= k+1), computed directly for accuracy near 0.
double BinomialTailLe(size_t k, size_t n, double p) {
  if (k >= n) return 1.0;
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return 0.0;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double peak = -std::numeric_limits<double>::infinity();
  std::vector<double> terms;
  terms.reserve(k + 1);
  for (size_t i = 0; i <= k; ++i) {
    const double t = LogChoose(n, i) + static_cast<double>(i) * log_p +
                     static_cast<double>(n - i) * log_q;
    terms.push_back(t);
    peak = std::max(peak, t);
  }
  double sum = 0.0;
  for (double t : terms) sum += std::exp(t - peak);
  return std::min(1.0, std::exp(peak) * sum);
}

constexpr int kBisectionSteps = 80;  // halves [0,1] to ~1e-24

}  // namespace

double BinomialLowerBound(size_t successes, size_t trials, double tail) {
  RECONCILE_CHECK_GT(trials, 0u);
  RECONCILE_CHECK_LE(successes, trials);
  RECONCILE_CHECK(tail > 0.0 && tail < 1.0);
  if (successes == 0) return 0.0;
  // The p where P(X >= successes | trials, p) == tail; the tail is
  // increasing in p, so bisect.
  double lo = 0.0, hi = 1.0;
  for (int step = 0; step < kBisectionSteps; ++step) {
    const double mid = 0.5 * (lo + hi);
    if (BinomialTailGe(successes, trials, mid) < tail) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double BinomialUpperBound(size_t successes, size_t trials, double tail) {
  RECONCILE_CHECK_GT(trials, 0u);
  RECONCILE_CHECK_LE(successes, trials);
  RECONCILE_CHECK(tail > 0.0 && tail < 1.0);
  if (successes == trials) return 1.0;
  // The p where P(X <= successes | trials, p) == tail; decreasing in p.
  double lo = 0.0, hi = 1.0;
  for (int step = 0; step < kBisectionSteps; ++step) {
    const double mid = 0.5 * (lo + hi);
    if (BinomialTailLe(successes, trials, mid) > tail) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

ValidationReport ValidateMatching(const RealizationPair& pair,
                                  const MatchResult& result,
                                  const ValidationConfig& config) {
  RECONCILE_CHECK(config.delta > 0.0 && config.delta < 1.0)
      << "validation delta must be in (0, 1): " << config.delta;
  RECONCILE_CHECK_EQ(result.map_1to2.size(), pair.g1.num_nodes());

  ValidationReport report;
  report.delta = config.delta;

  std::vector<char> is_seed(pair.g1.num_nodes(), 0);
  for (const auto& [u, v] : result.seeds) {
    (void)v;
    if (u < pair.g1.num_nodes()) is_seed[u] = 1;
  }

  // Discovered links (ascending u => a fixed population order) and the
  // recall denominator, in one pass.
  std::vector<NodeId> discovered;
  for (NodeId u = 0; u < pair.g1.num_nodes(); ++u) {
    const NodeId truth =
        u < pair.map_1to2.size() ? pair.map_1to2[u] : kInvalidNode;
    const bool identifiable = truth != kInvalidNode &&
                              pair.g1.degree(u) >= 1 &&
                              pair.g2.degree(truth) >= 1;
    if (identifiable && !is_seed[u]) ++report.num_targets;
    if (!is_seed[u] && result.map_1to2[u] != kInvalidNode) {
      discovered.push_back(u);
    }
  }
  report.num_matches = discovered.size();
  const size_t matches = discovered.size();
  const size_t targets = report.num_targets;

  const auto scale_to_recall = [&](double p) {
    return std::min(
        1.0, p * static_cast<double>(matches) / static_cast<double>(targets));
  };

  if (matches == 0) {
    // Nothing discovered: precision is vacuous, recall is exactly 0 (or
    // vacuous too, when there was nothing to find).
    report.exhaustive = true;
    report.precision = {1.0, 1.0, 1.0};
    report.recall = targets == 0 ? PacInterval{1.0, 1.0, 1.0}
                                 : PacInterval{0.0, 0.0, 0.0};
    return report;
  }

  const size_t budget = std::min(config.budget, matches);
  report.verified = budget;
  if (budget == 0) {
    // No verifications: the vacuous interval, point pinned at "no observed
    // errors" so lo <= point <= hi holds by construction.
    report.precision = {1.0, 0.0, 1.0};
    report.recall = targets == 0 ? PacInterval{1.0, 1.0, 1.0}
                                 : PacInterval{1.0, 0.0, 1.0};
    return report;
  }

  // Draw the verification sample: a budget-sized uniform subset of the
  // discovered links (partial Fisher–Yates; exhaustive budgets skip the
  // shuffle so the census is order-independent anyway).
  if (budget < matches) {
    Rng rng(config.rng_seed);
    for (size_t i = 0; i < budget; ++i) {
      const size_t j = i + static_cast<size_t>(rng.UniformInt(
                               static_cast<uint64_t>(matches - i)));
      std::swap(discovered[i], discovered[j]);
    }
  }
  for (size_t i = 0; i < budget; ++i) {
    const NodeId u = discovered[i];
    const NodeId truth =
        u < pair.map_1to2.size() ? pair.map_1to2[u] : kInvalidNode;
    if (truth != kInvalidNode && result.map_1to2[u] == truth) {
      ++report.verified_good;
    }
  }

  const double sample_precision = static_cast<double>(report.verified_good) /
                                  static_cast<double>(budget);
  report.precision.point = sample_precision;
  if (budget == matches) {
    // Census: no sampling error, the interval is the exact value.
    report.exhaustive = true;
    report.precision.lo = sample_precision;
    report.precision.hi = sample_precision;
  } else {
    const double tail = config.delta / 2.0;
    report.precision.lo =
        BinomialLowerBound(report.verified_good, budget, tail);
    report.precision.hi =
        BinomialUpperBound(report.verified_good, budget, tail);
  }

  if (targets == 0) {
    report.recall = {1.0, 1.0, 1.0};  // vacuous: nothing to find
  } else {
    report.recall.point = scale_to_recall(report.precision.point);
    report.recall.lo = scale_to_recall(report.precision.lo);
    report.recall.hi = scale_to_recall(report.precision.hi);
  }
  return report;
}

std::string FormatValidationReport(const ValidationReport& report) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "precision %.3f in [%.3f, %.3f] | recall %.3f in "
                "[%.3f, %.3f] | verified %zu/%zu (delta=%.3g%s)",
                report.precision.point, report.precision.lo,
                report.precision.hi, report.recall.point, report.recall.lo,
                report.recall.hi, report.verified, report.num_matches,
                report.delta, report.exhaustive ? ", exact" : "");
  return buffer;
}

}  // namespace reconcile
