#ifndef RECONCILE_EVAL_DATASETS_H_
#define RECONCILE_EVAL_DATASETS_H_

#include <cstdint>
#include <string>

#include "reconcile/gen/affiliation.h"
#include "reconcile/graph/graph.h"
#include "reconcile/sampling/realization.h"

namespace reconcile {

/// Synthetic stand-ins for the paper's datasets (Table 1). The originals are
/// proprietary or unavailable offline; each stand-in is generated to match
/// the original's node count (scaled where noted), average degree and skewed
/// degree profile, so the matcher exercises the same code paths and regimes.
/// See DESIGN.md §3 for the substitution rationale per dataset.
///
/// `scale` in (0, 1] shrinks the node count (edges shrink proportionally);
/// tests use small scales, benches use the default.

/// Facebook New Orleans snapshot (Viswanath et al., WOSN 2009):
/// 63,731 nodes, 1.5M edges, avg degree ~48.5. Chung–Lu, exponent 2.5.
Graph MakeFacebookStandin(double scale, uint64_t seed);

/// Enron email network: 36,692 nodes, 368k edges, avg degree ~20 — very
/// sparse with a large fraction of degree-<=5 nodes. Chung–Lu, exponent 2.2.
Graph MakeEnronStandin(double scale, uint64_t seed);

/// DBLP co-authorship-like graph. The original snapshot has 4.39M nodes; we
/// default to 120k nodes at avg degree ~6 (sparse, most nodes low degree,
/// matching the paper's "over 310K of 380K intersection nodes have degree
/// < 5" regime when time-sliced).
Graph MakeDblpStandin(double scale, uint64_t seed);

/// Gowalla-like location-based social network: 40k nodes at avg degree ~9.7
/// (scaled from 196,591 nodes / 950k edges).
Graph MakeGowallaStandin(double scale, uint64_t seed);

/// Affiliation Network comparable to the paper's AN dataset (60,026 users,
/// 8.07M folded edges): users share interests, fold gives the social graph.
AffiliationNetwork MakeAffiliationStandin(double scale, uint64_t seed);

/// French/German Wikipedia-like pair: two networks of *different sizes* with
/// only partial overlap and no common generation randomness beyond the
/// underlying graph. Built from one Chung–Lu graph via asymmetric node
/// deletion (FR keeps ~80%, DE ~55%), per-copy edge sampling and noise
/// edges. The returned pair is ready for seeding/matching.
RealizationPair MakeWikipediaPair(double scale, uint64_t seed);

}  // namespace reconcile

#endif  // RECONCILE_EVAL_DATASETS_H_
