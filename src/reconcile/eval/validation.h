#ifndef RECONCILE_EVAL_VALIDATION_H_
#define RECONCILE_EVAL_VALIDATION_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "reconcile/core/result.h"
#include "reconcile/sampling/realization.h"

namespace reconcile {

/// PAC validation of a matching (Le et al., "Validation of Matching"):
/// probably-approximately-correct bounds on precision and recall computed
/// from a small budget of *verified* matches, instead of trusting point
/// estimates that a production operator cannot afford to re-derive from
/// full ground truth.
///
/// Protocol: draw `budget` discovered (non-seed) links uniformly without
/// replacement, verify each against ground truth, and invert the binomial
/// tails of the observed good count into a Clopper–Pearson confidence
/// interval on the matching's true precision. Sampling without replacement
/// from the finite set of matches is *more* concentrated than the binomial
/// (Hoeffding), so the binomial inversion stays valid — and conservative.
/// The recall interval is derived from the precision interval: every
/// correct discovered link is one recovered target, so
/// `recall = precision * matches / targets` maps `[p_lo, p_hi]` onto
/// `[p_lo*M/T, p_hi*M/T]` with no additional failure probability. Both
/// intervals therefore hold *simultaneously* with probability >= 1-delta.
///
/// Degenerate conventions (mirroring `MatchQuality`, see metrics.h):
///  * no discovered links: precision is vacuously [1, 1]; recall is the
///    exact [0, 0] when targets remain, vacuously [1, 1] when none do;
///  * zero budget: nothing was verified, so the intervals are the vacuous
///    [0, 1] with point estimate 1 (no observed errors);
///  * budget >= discovered links: the sample is a census — no sampling
///    error, so the interval collapses to the exact value.
struct ValidationConfig {
  /// Number of discovered (non-seed) links to verify. `kVerifyAllMatches`
  /// (the default) verifies every one — exact, zero-width intervals.
  /// 0 verifies none — the vacuous [0, 1] interval.
  size_t budget = std::numeric_limits<size_t>::max();
  /// Total failure probability `delta`: the reported intervals cover the
  /// true precision and recall with probability >= `1 - delta`. Must be in
  /// (0, 1). Split evenly between the two precision tails.
  double delta = 0.05;
  /// Seed for the verification sample draw. Fixed seed => fixed sample =>
  /// bit-identical report, for any thread count.
  uint64_t rng_seed = 1;
};

/// `ValidationConfig::budget` value meaning "verify every discovered link".
inline constexpr size_t kVerifyAllMatches =
    std::numeric_limits<size_t>::max();

/// One PAC interval: `lo <= point <= hi` always holds; the true value lies
/// inside with probability >= 1-delta (exactly, when `exhaustive`).
struct PacInterval {
  double point = 1.0;  ///< Sample estimate (the census value if exhaustive).
  double lo = 0.0;
  double hi = 1.0;
};

/// The validation verdict for one matching.
struct ValidationReport {
  size_t num_matches = 0;    ///< Discovered (non-seed) links in the matching.
  size_t num_targets = 0;    ///< Identifiable, not-seeded ground-truth pairs.
  size_t verified = 0;       ///< Links actually verified (<= budget).
  size_t verified_good = 0;  ///< Verified links that matched ground truth.
  double delta = 0.05;       ///< Confidence parameter the bounds used.
  /// True when every discovered link was verified (budget >= matches, or
  /// there were none): the intervals are exact, not probabilistic.
  bool exhaustive = false;
  PacInterval precision;
  /// Interval on recall over `num_targets` (the `recall_new` convention of
  /// metrics.h: discovered good links / identifiable-not-seeded pairs).
  PacInterval recall;
};

/// Runs the verification protocol above for `result` against the ground
/// truth in `pair`. Deterministic for a fixed config.
ValidationReport ValidateMatching(const RealizationPair& pair,
                                  const MatchResult& result,
                                  const ValidationConfig& config);

/// One-line rendering, e.g.
/// "precision 0.980 in [0.943, 0.996] | recall 0.612 in [0.578, 0.639] | verified 50/1234 (delta=0.05)".
std::string FormatValidationReport(const ValidationReport& report);

/// Clopper–Pearson binomial bounds, exposed for the coverage tests: the
/// largest `p` with `P(X <= successes | trials, p) >= tail` (lower) and the
/// smallest `p` with `P(X >= successes | trials, p) >= tail` (upper).
/// `BinomialLowerBound(0, n, t) == 0` and `BinomialUpperBound(n, n, t) == 1`.
double BinomialLowerBound(size_t successes, size_t trials, double tail);
double BinomialUpperBound(size_t successes, size_t trials, double tail);

}  // namespace reconcile

#endif  // RECONCILE_EVAL_VALIDATION_H_
