#ifndef RECONCILE_EVAL_EXPERIMENT_H_
#define RECONCILE_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "reconcile/api/reconciler.h"
#include "reconcile/core/matcher.h"
#include "reconcile/eval/metrics.h"
#include "reconcile/sampling/realization.h"
#include "reconcile/seed/seeding.h"

namespace reconcile {

/// One end-to-end run: seeds drawn from the pair's ground truth, algorithm
/// executed, result scored. The glue used by every table/figure bench.
struct ExperimentResult {
  MatchQuality quality;
  MatchResult match;
  double seed_seconds = 0.0;
  double match_seconds = 0.0;
};

/// Draws seeds with `seed_options` (randomness from `seed`), runs
/// `reconciler` and evaluates against ground truth. Works for any
/// registered algorithm — construct the reconciler directly (api/adapters.h)
/// or through `Registry::Create`.
ExperimentResult RunExperiment(const RealizationPair& pair,
                               const SeedOptions& seed_options,
                               const Reconciler& reconciler, uint64_t seed);

/// Convenience overload for the common case: runs the core User-Matching
/// algorithm with `matcher_config`.
ExperimentResult RunExperiment(const RealizationPair& pair,
                               const SeedOptions& seed_options,
                               const MatcherConfig& matcher_config,
                               uint64_t seed);

/// Renders "12345 / 99.9%"-style convenience strings used by the benches.
std::string FormatGoodBad(const MatchQuality& q);

}  // namespace reconcile

#endif  // RECONCILE_EVAL_EXPERIMENT_H_
