#include "reconcile/eval/datasets.h"

#include <algorithm>

#include "reconcile/gen/chung_lu.h"
#include "reconcile/sampling/independent.h"
#include "reconcile/util/logging.h"

namespace reconcile {

namespace {

NodeId Scaled(NodeId full, double scale) {
  RECONCILE_CHECK_GT(scale, 0.0);
  RECONCILE_CHECK_LE(scale, 1.0);
  return std::max<NodeId>(64, static_cast<NodeId>(full * scale));
}

Graph ChungLuStandin(NodeId nodes, double avg_degree, double exponent,
                     uint64_t seed) {
  std::vector<double> weights = PowerLawWeights(nodes, exponent, avg_degree);
  return GenerateChungLu(weights, seed);
}

}  // namespace

Graph MakeFacebookStandin(double scale, uint64_t seed) {
  return ChungLuStandin(Scaled(63731, scale), 48.5, 2.5, seed);
}

Graph MakeEnronStandin(double scale, uint64_t seed) {
  return ChungLuStandin(Scaled(36692, scale), 20.0, 2.2, seed);
}

Graph MakeDblpStandin(double scale, uint64_t seed) {
  return ChungLuStandin(Scaled(120000, scale), 6.0, 2.8, seed);
}

Graph MakeGowallaStandin(double scale, uint64_t seed) {
  return ChungLuStandin(Scaled(40000, scale), 9.7, 2.4, seed);
}

AffiliationNetwork MakeAffiliationStandin(double scale, uint64_t seed) {
  AffiliationParams params;
  params.num_users = Scaled(60026, scale);
  params.copy_prob = 0.3;
  params.new_interest_prob = 1.0;
  params.uniform_joins = 2;
  params.preferential_joins = 1;
  return AffiliationNetwork::Generate(params, seed);
}

RealizationPair MakeWikipediaPair(double scale, uint64_t seed) {
  Graph underlying = ChungLuStandin(Scaled(80000, scale), 30.0, 2.3, seed);
  IndependentSampleOptions options;
  options.s1 = 0.85;       // "French": larger, denser realization
  options.s2 = 0.85;       // "German": smaller via node deletion below
  options.node_keep1 = 0.80;
  options.node_keep2 = 0.55;
  options.noise1 = 0.05;   // links with no counterpart in the other language
  options.noise2 = 0.05;
  return SampleIndependent(underlying, options, seed ^ 0x77696b69ULL);
}

}  // namespace reconcile
