#include "reconcile/util/shutdown.h"

#include <csignal>

#include <atomic>

namespace reconcile {

namespace {

std::atomic<bool> g_stop_requested{false};

void HandleStopSignal(int /*signum*/) {
  g_stop_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

void InstallGracefulShutdownHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a blocked read in a driver loop should see EINTR and
  // reach its own stop check.
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

void RequestGracefulStop() {
  g_stop_requested.store(true, std::memory_order_relaxed);
}

bool GracefulStopRequested() {
  return g_stop_requested.load(std::memory_order_relaxed);
}

void ClearGracefulStop() {
  g_stop_requested.store(false, std::memory_order_relaxed);
}

}  // namespace reconcile
