#include "reconcile/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace reconcile {

namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

// Serializes writes so multi-threaded log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  // Keep only the basename to make logs compact.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityName(severity) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace reconcile
