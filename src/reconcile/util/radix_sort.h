#ifndef RECONCILE_UTIL_RADIX_SORT_H_
#define RECONCILE_UTIL_RADIX_SORT_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "reconcile/util/logging.h"

namespace reconcile {

/// Sort-based counting substrate for the matcher's radix scoring backend.
///
/// The witness-scoring phase is a high-cardinality count aggregation over
/// packed 64-bit `(u, v)` keys. The hash backend pays a random-access probe
/// per emission; the structures here replace that with append + sort +
/// run-length-encode, keeping every pass over the data sequential:
///  * `RadixSortU64` — LSD radix sort with 8-bit digits that skips byte
///    positions whose digit is constant across the input (packed pair keys
///    on realistic graphs occupy well under 64 bits, so most passes drop),
///  * `SortedCountRun` — the aggregated result: a flat, strictly-increasing
///    `(key, count)` array that scans linearly,
///  * `MergeCountRuns` — linear two-way merge folding a sorted delta into a
///    persistent run (the incremental engine's replacement for rehash-heavy
///    hash-map merges).

/// Below this size introsort beats setting up histogram passes.
inline constexpr size_t kRadixSortCutoff = 256;

/// Sorts `keys` ascending. `scratch` is the ping-pong buffer; it is resized
/// as needed and its contents are unspecified afterwards. Reusing one
/// scratch vector across calls avoids repeated allocation in hot loops.
inline void RadixSortU64(std::vector<uint64_t>& keys,
                         std::vector<uint64_t>& scratch) {
  const size_t n = keys.size();
  if (n < kRadixSortCutoff) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  scratch.resize(n);

  // One histogram pass covering all 8 digit positions at once.
  std::array<std::array<size_t, 256>, 8> hist{};
  for (uint64_t key : keys) {
    for (int d = 0; d < 8; ++d) {
      ++hist[static_cast<size_t>(d)][(key >> (8 * d)) & 0xff];
    }
  }

  uint64_t* src = keys.data();
  uint64_t* dst = scratch.data();
  bool in_keys = true;
  for (int d = 0; d < 8; ++d) {
    const std::array<size_t, 256>& counts = hist[static_cast<size_t>(d)];
    // A pass whose digit is constant over the input is the identity.
    bool trivial = false;
    for (size_t bucket = 0; bucket < 256; ++bucket) {
      if (counts[bucket] == n) trivial = true;
    }
    if (trivial) continue;

    std::array<size_t, 256> offsets;
    size_t sum = 0;
    for (size_t bucket = 0; bucket < 256; ++bucket) {
      offsets[bucket] = sum;
      sum += counts[bucket];
    }
    const int shift = 8 * d;
    for (size_t i = 0; i < n; ++i) {
      dst[offsets[(src[i] >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
    in_keys = !in_keys;
  }
  if (!in_keys) keys.swap(scratch);
}

/// Flat, sorted `(key, count)` aggregate: the radix backend's counterpart of
/// `FlatCountMap`. Keys are strictly increasing; `counts[i]` is the
/// multiplicity of `keys[i]`. Scans are pure linear array walks.
struct SortedCountRun {
  std::vector<uint64_t> keys;
  std::vector<uint32_t> counts;

  size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }

  void Clear() {
    keys.clear();
    counts.clear();
  }

  /// Invokes `fn(key, count)` for every entry, in ascending key order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys.size(); ++i) fn(keys[i], counts[i]);
  }

  /// Returns the count for `key`, or 0 if absent. O(log size).
  uint32_t Count(uint64_t key) const {
    auto it = std::lower_bound(keys.begin(), keys.end(), key);
    if (it == keys.end() || *it != key) return 0;
    return counts[static_cast<size_t>(it - keys.begin())];
  }

  /// Keeps only entries with `pred(key, count)`, preserving order. Linear,
  /// in place — this is the radix backend's `CompactScores` sweep.
  template <typename Pred>
  void Filter(Pred&& pred) {
    size_t out = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (pred(keys[i], counts[i])) {
        keys[out] = keys[i];
        counts[out] = counts[i];
        ++out;
      }
    }
    keys.resize(out);
    counts.resize(out);
  }
};

/// Sorts `raw` (consumed) and run-length-encodes it into a `SortedCountRun`.
/// Equal keys collapse into one entry whose count is their multiplicity —
/// the same aggregate `CountByKey` produces, in sorted order.
inline SortedCountRun SortAndCount(std::vector<uint64_t>&& raw,
                                   std::vector<uint64_t>& scratch) {
  SortedCountRun run;
  if (raw.empty()) return run;
  RadixSortU64(raw, scratch);
  run.keys.reserve(raw.size());
  run.counts.reserve(raw.size());
  uint64_t current = raw[0];
  uint32_t count = 0;
  for (uint64_t key : raw) {
    if (key != current) {
      run.keys.push_back(current);
      run.counts.push_back(count);
      current = key;
      count = 0;
    }
    ++count;
  }
  run.keys.push_back(current);
  run.counts.push_back(count);
  return run;
}

namespace internal {

// Two-way merge core shared by the MergeCountRuns overloads; both inputs
// are known non-empty here.
inline void MergeCountRunsImpl(SortedCountRun& target,
                               const SortedCountRun& delta) {
  SortedCountRun merged;
  merged.keys.reserve(target.size() + delta.size());
  merged.counts.reserve(target.size() + delta.size());
  size_t i = 0, j = 0;
  while (i < target.size() && j < delta.size()) {
    const uint64_t a = target.keys[i];
    const uint64_t b = delta.keys[j];
    if (a < b) {
      merged.keys.push_back(a);
      merged.counts.push_back(target.counts[i++]);
    } else if (b < a) {
      merged.keys.push_back(b);
      merged.counts.push_back(delta.counts[j++]);
    } else {
      merged.keys.push_back(a);
      merged.counts.push_back(target.counts[i++] + delta.counts[j++]);
    }
  }
  merged.keys.insert(merged.keys.end(), target.keys.begin() + static_cast<ptrdiff_t>(i),
                     target.keys.end());
  merged.counts.insert(merged.counts.end(),
                       target.counts.begin() + static_cast<ptrdiff_t>(i),
                       target.counts.end());
  merged.keys.insert(merged.keys.end(), delta.keys.begin() + static_cast<ptrdiff_t>(j),
                     delta.keys.end());
  merged.counts.insert(merged.counts.end(),
                       delta.counts.begin() + static_cast<ptrdiff_t>(j),
                       delta.counts.end());
  target = std::move(merged);
}

}  // namespace internal

/// Folds `delta` into `target`: a linear two-way merge summing the counts of
/// keys present in both. Both inputs must be valid runs; the result is one.
inline void MergeCountRuns(SortedCountRun& target,
                           const SortedCountRun& delta) {
  if (delta.empty()) return;
  if (target.empty()) {
    target = delta;
    return;
  }
  internal::MergeCountRunsImpl(target, delta);
}

/// Consuming overload: an empty target adopts `delta`'s buffers outright —
/// the common case on the first emission round, when every persistent run
/// is still empty and the delta is the largest of the whole match.
inline void MergeCountRuns(SortedCountRun& target, SortedCountRun&& delta) {
  if (delta.empty()) return;
  if (target.empty()) {
    target = std::move(delta);
    return;
  }
  internal::MergeCountRunsImpl(target, delta);
}

}  // namespace reconcile

#endif  // RECONCILE_UTIL_RADIX_SORT_H_
