#ifndef RECONCILE_UTIL_SHUTDOWN_H_
#define RECONCILE_UTIL_SHUTDOWN_H_

namespace reconcile {

/// Cooperative graceful-shutdown flag.
///
/// Long computations (the matcher's round loop) poll `GracefulStopRequested`
/// at safe boundaries and wind down cleanly — finish the current round,
/// write a final checkpoint, return a partial result. The flag is set
/// either by the SIGINT/SIGTERM handlers installed via
/// `InstallGracefulShutdownHandlers` (the CLI does this when checkpointing
/// is on) or programmatically (`RequestGracefulStop` — also what the
/// deterministic `stop:` fault kind in `util/fault.h` calls).

/// Installs SIGINT and SIGTERM handlers that set the stop flag. Idempotent.
/// The handlers only flip an atomic flag, so any signal-safety concerns
/// stay out of library code.
void InstallGracefulShutdownHandlers();

/// Sets the stop flag (async-signal-safe).
void RequestGracefulStop();

/// True once a stop has been requested.
bool GracefulStopRequested();

/// Clears the flag (tests; a CLI run consumes the request on exit).
void ClearGracefulStop();

}  // namespace reconcile

#endif  // RECONCILE_UTIL_SHUTDOWN_H_
