#ifndef RECONCILE_UTIL_THREAD_POOL_H_
#define RECONCILE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace reconcile {

/// Fixed-size worker pool executing `std::function<void()>` tasks.
///
/// This is the execution substrate for the handwritten MapReduce layer
/// (`reconcile/mr`). Tasks may be submitted from any thread; `Wait()` blocks
/// until the queue is drained and all in-flight tasks finished. The pool is
/// intentionally minimal: no futures, no task priorities — the MapReduce
/// layer builds its own barriers on top of `Wait()`.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling thread within its owning pool (`[0, num_threads)`),
  /// or -1 when the caller is not a pool worker. Worker indices are stable
  /// for the thread's lifetime, so loops can key per-worker state (domain
  /// homes, accumulation buffers) off the executing thread rather than the
  /// task submission order.
  static int CurrentWorkerIndex();

  /// Best-effort OS affinity: restricts worker `worker` to the given CPUs
  /// (the shard-placement layer pins workers to their home domain's CPUs).
  /// Returns false — leaving affinity unchanged — on non-Linux builds, bad
  /// arguments, or a failed syscall. Never affects results, only locality.
  bool PinWorkerToCpus(int worker, const std::vector<int>& cpus);

  /// Default parallelism: hardware concurrency, at least 1.
  static int DefaultThreads();

  /// Process-wide shared pool with `DefaultThreads()` workers, created on
  /// first use and alive for the rest of the process. For call sites that
  /// have no pool of their own (auto-parallel graph builds, edge-list
  /// normalization) — large one-shot operations no longer construct and
  /// join a transient pool per call. `Wait()` barriers are pool-global, so
  /// do not run concurrent barrier-style work on the shared pool from
  /// multiple threads, and never from inside one of its own tasks;
  /// subsystems with long-lived parallel phases (the matcher) keep their
  /// own pools.
  static ThreadPool& Shared();

  /// Suggested chunk size for splitting `n` items into parallel tasks:
  /// targets `tasks_per_thread` tasks per worker (slack for load balancing
  /// without drowning the queue in tiny tasks), never below `min_grain`
  /// items per task.
  static size_t GrainSize(size_t n, int num_threads, size_t min_grain = 1,
                          int tasks_per_thread = 4);

  /// `GrainSize` for this pool's worker count.
  size_t GrainFor(size_t n, size_t min_grain = 1) const {
    return GrainSize(n, num_threads(), min_grain);
  }

 private:
  void WorkerLoop(int worker_index);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `fn(begin, end)` over a partition of `[0, n)` into contiguous chunks
/// of roughly `grain` items, executed on `pool`. Blocks until all chunks
/// complete. `fn` must be safe to invoke concurrently on disjoint ranges.
void ParallelForChunks(ThreadPool* pool, size_t n, size_t grain,
                       const std::function<void(size_t, size_t)>& fn);

}  // namespace reconcile

#endif  // RECONCILE_UTIL_THREAD_POOL_H_
