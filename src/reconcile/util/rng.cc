#include "reconcile/util/rng.h"

// Rng is header-only; this translation unit exists so the build exposes a
// stable object for the module and to host future out-of-line additions.
