#ifndef RECONCILE_UTIL_PLACEMENT_H_
#define RECONCILE_UTIL_PLACEMENT_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "reconcile/util/parallel_for.h"
#include "reconcile/util/thread_pool.h"
#include "reconcile/util/topology.h"

namespace reconcile {

/// How the persistent per-(level, shard) score state is homed onto the
/// machine's memory domains. Every policy produces bit-identical matchings
/// (placement only decides *where* work runs and memory lives, never *what*
/// is computed); they differ in cross-domain traffic on multi-socket hosts.
enum class PlacementPolicy {
  /// Resolve at construction: the `RECONCILE_PLACEMENT` environment
  /// variable ("none" | "interleave" | "domain") when set; otherwise
  /// `kDomain` on multi-domain topologies and `kNone` on single-domain
  /// hosts (where all policies are equivalent anyway).
  kAuto,
  /// No placement: no worker pinning, no steal-order bias, no first-touch
  /// pass — byte-for-byte the pre-placement behavior.
  kNone,
  /// Round-robin shard homing: shard `s` lives on domain `s % D`. Spreads
  /// every level's shards across all domains, so per-domain load is even
  /// but adjacent shards never share a domain.
  kInterleave,
  /// Contiguous-block homing: shard `s` lives on domain `s * D / S`. Each
  /// domain owns a contiguous key range (the radix backend's shards are a
  /// range partition on the g1 node id), so a domain's workers sweep
  /// contiguous score state.
  kDomain,
};

/// Maps `kAuto` onto the process default for `topo` (environment override
/// or kDomain/kNone by domain count); explicit values pass through.
PlacementPolicy ResolvePlacement(PlacementPolicy policy,
                                 const MachineTopology& topo);

/// "auto" | "none" | "interleave" | "domain".
const char* PlacementName(PlacementPolicy policy);

/// Parses "auto" | "none" | "interleave" | "domain".
bool ParsePlacement(const std::string& text, PlacementPolicy* out);

/// Locality telemetry from one placed loop: how many tasks ran on a worker
/// of their home domain vs were stolen cross-domain once the thief's own
/// domain ran dry. Zero remote steals with balanced domains is the ideal;
/// the counters make placement observable even where wall-clock cannot
/// show it (single-core CI with synthetic domains).
struct PlacedLoopStats {
  size_t local_tasks = 0;
  size_t remote_steals = 0;
};

/// The shard-placement policy object: assigns each score shard a home
/// domain, maps pool workers onto domains, pins them there (real
/// topologies only), and runs domain-biased loops over shard-indexed work.
///
/// `active()` is false when the resolved policy is `kNone` *or* the
/// topology has one domain; every method then degenerates to the exact
/// pre-placement behavior, so single-socket hosts see zero change.
class ShardPlacement {
 public:
  /// `num_workers` is the pool size the worker→domain map covers;
  /// `num_shards` the score-state shard count homes are computed for.
  ShardPlacement(const MachineTopology& topo, PlacementPolicy policy,
                 int num_shards, int num_workers);

  /// Resolved policy (`kAuto` already mapped to a concrete one).
  PlacementPolicy policy() const { return policy_; }
  bool active() const { return active_; }
  int num_domains() const { return topo_.num_domains(); }
  int num_shards() const { return num_shards_; }

  /// Home domain of score shard `shard` (identically 0 when inactive).
  int HomeOfShard(int shard) const {
    return active_ ? shard_domain_[static_cast<size_t>(shard)] : 0;
  }

  /// Home domain of pool worker `worker`: contiguous worker blocks per
  /// domain, sized proportionally to the domains' CPU counts (evenly for
  /// synthetic domains), so every domain with capacity gets workers.
  int DomainOfWorker(int worker) const {
    if (!active_ || worker < 0 ||
        worker >= static_cast<int>(worker_domain_.size())) {
      return 0;
    }
    return worker_domain_[static_cast<size_t>(worker)];
  }

  /// Pins each of `pool`'s workers to its home domain's CPUs. Best effort:
  /// skipped entirely for synthetic domains (no CPU lists) and inactive
  /// placements; per-worker failures are ignored (affinity is a locality
  /// hint, never a correctness requirement).
  void PinWorkers(ThreadPool* pool) const;

  /// Domain-biased parallel-for over `[0, n)`: `domain_of(i)` gives item
  /// i's home domain; each worker drains its own domain's items first and
  /// steals from the fullest remote domain only when its own is dry.
  /// `fn(i)` runs exactly once per item, on an unspecified worker — bodies
  /// must be the same partition-independent shape `ParallelForSched`
  /// requires, so results are bit-identical to any other schedule.
  ///
  /// When inactive (or `pool` is small), delegates to `ParallelForSched`
  /// with grain 1 — the exact loop shape the call sites used before
  /// placement existed. `stats`, if non-null, accumulates the local/remote
  /// split (all-local when inactive).
  void ParallelForPlaced(ThreadPool* pool, Scheduler scheduler, size_t n,
                         const std::function<int(size_t)>& domain_of,
                         const std::function<void(size_t)>& fn,
                         PlacedLoopStats* stats = nullptr) const;

 private:
  MachineTopology topo_;
  PlacementPolicy policy_;
  int num_shards_;
  bool active_;
  std::vector<int> shard_domain_;   // [shard] -> home domain
  std::vector<int> worker_domain_;  // [worker] -> home domain
};

}  // namespace reconcile

#endif  // RECONCILE_UTIL_PLACEMENT_H_
