#include "reconcile/util/flags.h"

#include <cstdlib>

#include "reconcile/util/logging.h"

namespace reconcile {

bool Flags::Parse(int argc, const char* const argv[], std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      if (error != nullptr) *error = "empty flag name: " + arg;
      return false;
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string key = body.substr(0, eq);
      if (key.empty()) {
        if (error != nullptr) *error = "empty flag name: " + arg;
        return false;
      }
      values_[key] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
  return true;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  read_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  read_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  RECONCILE_CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "flag --" << key << " is not an integer: " << it->second;
  return value;
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  read_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  RECONCILE_CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "flag --" << key << " is not a number: " << it->second;
  return value;
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  read_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  RECONCILE_LOG(Fatal) << "flag --" << key << " is not a boolean: " << v;
  return default_value;
}

std::vector<std::string> Flags::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!read_.count(key)) unused.push_back(key);
  }
  return unused;
}

}  // namespace reconcile
