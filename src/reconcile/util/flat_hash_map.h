#ifndef RECONCILE_UTIL_FLAT_HASH_MAP_H_
#define RECONCILE_UTIL_FLAT_HASH_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"

namespace reconcile {

/// Compact open-addressing hash map from `uint64_t` keys to `uint32_t`
/// counters, specialized for the witness-scoring inner loop of the matcher.
///
/// Design notes (this is the hottest structure in the library):
///  * linear probing over a power-of-two table; 12-byte slots laid out as
///    parallel key/value arrays for cache-friendly probing,
///  * one reserved key (`kEmptyKey` = 2^64-1) marks empty slots — candidate
///    pair keys pack two 32-bit node ids, and node id 0xFFFFFFFF is reserved
///    as the invalid node, so real keys never collide with the sentinel,
///  * no deletion (scoring maps are built, scanned once, then dropped),
///  * `AddCount` fuses find-or-insert with the counter increment.
class FlatCountMap {
 public:
  static constexpr uint64_t kEmptyKey = ~0ULL;

  FlatCountMap() { Rehash(kInitialCapacity); }

  /// Creates a map pre-sized so that `expected` entries fit without rehash.
  explicit FlatCountMap(size_t expected) { Rehash(CapacityFor(expected)); }

  FlatCountMap(const FlatCountMap&) = delete;
  FlatCountMap& operator=(const FlatCountMap&) = delete;
  FlatCountMap(FlatCountMap&&) = default;
  FlatCountMap& operator=(FlatCountMap&&) = default;

  /// Adds `delta` to the counter for `key`, inserting it at zero first if
  /// absent. Returns the new counter value.
  uint32_t AddCount(uint64_t key, uint32_t delta) {
    RECONCILE_CHECK_NE(key, kEmptyKey);
    if ((size_ + 1) * kMaxLoadDen > capacity() * kMaxLoadNum) {
      Rehash(capacity() * 2);
    }
    size_t slot = FindSlot(key);
    if (keys_[slot] == kEmptyKey) {
      keys_[slot] = key;
      values_[slot] = 0;
      ++size_;
    }
    values_[slot] += delta;
    return values_[slot];
  }

  /// Returns the counter for `key`, or 0 if absent.
  uint32_t Count(uint64_t key) const {
    size_t slot = FindSlot(key);
    return keys_[slot] == kEmptyKey ? 0 : values_[slot];
  }

  bool Contains(uint64_t key) const {
    return keys_[FindSlot(key)] != kEmptyKey;
  }

  /// Grows the table so `expected` total entries fit without rehashing.
  /// Existing entries are preserved; never shrinks. Call before bulk merges
  /// whose result size is known (or bounded) up front.
  void Reserve(size_t expected) {
    size_t cap = CapacityFor(expected);
    if (cap > capacity()) Rehash(cap);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return keys_.size(); }

  /// Invokes `fn(key, count)` for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], values_[i]);
    }
  }

  void Clear() {
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    size_ = 0;
  }

 private:
  static constexpr size_t kInitialCapacity = 64;
  // Max load factor 7/8.
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 8;

  /// Smallest power-of-two capacity holding `expected` entries within the
  /// max load factor.
  static size_t CapacityFor(size_t expected) {
    size_t cap = kInitialCapacity;
    while (cap * kMaxLoadNum < expected * kMaxLoadDen) cap <<= 1;
    return cap;
  }

  size_t FindSlot(uint64_t key) const {
    size_t mask = keys_.size() - 1;
    size_t slot = HashMix64(key) & mask;
    while (keys_[slot] != kEmptyKey && keys_[slot] != key) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_values = std::move(values_);
    keys_.assign(new_capacity, kEmptyKey);
    values_.assign(new_capacity, 0);
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      size_t slot = FindSlot(old_keys[i]);
      keys_[slot] = old_keys[i];
      values_[slot] = old_values[i];
      ++size_;
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> values_;
  size_t size_ = 0;
};

}  // namespace reconcile

#endif  // RECONCILE_UTIL_FLAT_HASH_MAP_H_
