#ifndef RECONCILE_UTIL_TIERED_STORE_H_
#define RECONCILE_UTIL_TIERED_STORE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "reconcile/util/radix_sort.h"

namespace reconcile {

/// When `TieredCountRuns::Append` folds tiers together (size-tiered
/// compaction, LSM-style). Both knobs only move merge work around in time;
/// the aggregate the store represents — and therefore every matching
/// computed from it — is identical for all settings.
struct TierPolicy {
  /// Hard cap on resident tiers (values < 1 behave as 1). `1` merges every
  /// delta straight into the single persistent run — the pre-LSM behavior;
  /// `2` (one big run + one delta batch) keeps scans on the two-way merge
  /// fast path.
  int max_tiers = 2;
  /// A freshly appended tier is folded into its predecessor while the
  /// predecessor is at most this factor larger (then the merged result is
  /// re-checked against *its* predecessor, cascading). Tier sizes therefore
  /// stay geometrically separated, so total merge traffic is O(N log N)
  /// instead of the O(N · rounds) of merging every round delta into one big
  /// run. Values <= 0 disable the ratio trigger — only `max_tiers` forces
  /// merges.
  double size_ratio = 4.0;
};

/// LSM-style tiered aggregate of `(key, count)` pairs: a short stack of
/// `SortedCountRun` tiers (oldest and largest first) that together represent
/// one logical count multiset. Round deltas land as small new tiers; the big
/// persistent run is only rewritten when the size-ratio policy trips, so
/// late low-yield rounds stop paying a full-run merge each round.
///
/// A key may appear in several tiers; `ForEach`/`Count` fold the tiers back
/// together on the fly (k-way merge summing duplicate keys), so consumers
/// see exactly the single-run aggregate. `k` is bounded by
/// `TierPolicy::max_tiers`, keeping scans linear with a small constant.
class TieredCountRuns {
 public:
  /// Appends a round delta as a new tier, then applies `policy`'s merge
  /// cascade. Empty deltas are dropped.
  void Append(SortedCountRun&& delta, const TierPolicy& policy) {
    if (delta.empty()) return;
    tiers_.push_back(std::move(delta));
    const size_t cap = static_cast<size_t>(std::max(1, policy.max_tiers));
    const double ratio = policy.size_ratio;
    while (tiers_.size() > 1 &&
           (tiers_.size() > cap ||
            (ratio > 0.0 &&
             static_cast<double>(tiers_[tiers_.size() - 2].size()) <=
                 ratio * static_cast<double>(tiers_.back().size())))) {
      SortedCountRun top = std::move(tiers_.back());
      tiers_.pop_back();
      MergeCountRuns(tiers_.back(), std::move(top));
    }
  }

  /// Folds everything into a single tier (a full compaction).
  void Compact() {
    while (tiers_.size() > 1) {
      SortedCountRun top = std::move(tiers_.back());
      tiers_.pop_back();
      MergeCountRuns(tiers_.back(), std::move(top));
    }
  }

  /// Invokes `fn(key, total_count)` once per distinct key, in ascending key
  /// order, with counts summed across tiers — identical to the `ForEach` of
  /// the fully merged run.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (tiers_.empty()) return;
    if (tiers_.size() == 1) {
      tiers_[0].ForEach(fn);
      return;
    }
    if (tiers_.size() == 2) {
      // Two tiers (one big run + one delta batch) is the steady state under
      // small caps; a branch-lean two-way merge keeps the selection scan
      // close to single-run cost.
      const SortedCountRun& a = tiers_[0];
      const SortedCountRun& b = tiers_[1];
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        const uint64_t ka = a.keys[i];
        const uint64_t kb = b.keys[j];
        if (ka < kb) {
          fn(ka, a.counts[i++]);
        } else if (kb < ka) {
          fn(kb, b.counts[j++]);
        } else {
          fn(ka, a.counts[i++] + b.counts[j++]);
        }
      }
      for (; i < a.size(); ++i) fn(a.keys[i], a.counts[i]);
      for (; j < b.size(); ++j) fn(b.keys[j], b.counts[j]);
      return;
    }
    const size_t k = tiers_.size();
    std::vector<size_t> pos(k, 0);
    for (;;) {
      uint64_t min_key = std::numeric_limits<uint64_t>::max();
      bool any = false;
      for (size_t t = 0; t < k; ++t) {
        if (pos[t] >= tiers_[t].size()) continue;
        any = true;
        min_key = std::min(min_key, tiers_[t].keys[pos[t]]);
      }
      if (!any) break;
      uint32_t total = 0;
      for (size_t t = 0; t < k; ++t) {
        if (pos[t] < tiers_[t].size() && tiers_[t].keys[pos[t]] == min_key) {
          total += tiers_[t].counts[pos[t]];
          ++pos[t];
        }
      }
      fn(min_key, total);
    }
  }

  /// Total count for `key` across tiers (0 if absent).
  uint32_t Count(uint64_t key) const {
    uint32_t total = 0;
    for (const SortedCountRun& tier : tiers_) total += tier.Count(key);
    return total;
  }

  /// Keeps only entries with `pred(key, tier_count)`. The predicate sees the
  /// per-tier count, so it must decide on the key alone (the matcher's
  /// liveness sweep does); tiers emptied by the sweep are dropped.
  template <typename Pred>
  void Filter(Pred&& pred) {
    for (SortedCountRun& tier : tiers_) tier.Filter(pred);
    tiers_.erase(std::remove_if(tiers_.begin(), tiers_.end(),
                                [](const SortedCountRun& tier) {
                                  return tier.empty();
                                }),
                 tiers_.end());
  }

  /// Pre-sizes the tier stack (not the runs — those are appended whole).
  /// The shard-placement first-touch pass calls this from a home-domain
  /// worker so the stack's backing pages are allocated there.
  void ReserveTiers(size_t n) { tiers_.reserve(n); }

  bool empty() const { return tiers_.empty(); }
  size_t num_tiers() const { return tiers_.size(); }

  /// Total resident entries across tiers (an upper bound on distinct keys —
  /// a key split across tiers is counted once per tier).
  size_t total_entries() const {
    size_t total = 0;
    for (const SortedCountRun& tier : tiers_) total += tier.size();
    return total;
  }

  const std::vector<SortedCountRun>& tiers() const { return tiers_; }

 private:
  std::vector<SortedCountRun> tiers_;
};

}  // namespace reconcile

#endif  // RECONCILE_UTIL_TIERED_STORE_H_
