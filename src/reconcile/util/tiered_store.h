#ifndef RECONCILE_UTIL_TIERED_STORE_H_
#define RECONCILE_UTIL_TIERED_STORE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "reconcile/util/radix_sort.h"
#include "reconcile/util/spill_store.h"

namespace reconcile {

/// When `TieredCountRuns::Append` folds tiers together (size-tiered
/// compaction, LSM-style). Both knobs only move merge work around in time;
/// the aggregate the store represents — and therefore every matching
/// computed from it — is identical for all settings.
struct TierPolicy {
  /// Hard cap on resident tiers (values < 1 behave as 1). `1` merges every
  /// delta straight into the single persistent run — the pre-LSM behavior;
  /// `2` (one big run + one delta batch) keeps scans on the two-way merge
  /// fast path.
  int max_tiers = 2;
  /// A freshly appended tier is folded into its predecessor while the
  /// predecessor is at most this factor larger (then the merged result is
  /// re-checked against *its* predecessor, cascading). Tier sizes therefore
  /// stay geometrically separated, so total merge traffic is O(N log N)
  /// instead of the O(N · rounds) of merging every round delta into one big
  /// run. Values <= 0 disable the ratio trigger — only `max_tiers` forces
  /// merges.
  double size_ratio = 4.0;
};

/// Borrowed view of one sorted `(key, count)` run — the common shape of a
/// resident `SortedCountRun` and an mmap'd `SpilledRun`. Every consumer of
/// tier contents (selection merge, snapshot writer, compaction) reads
/// through this, which is what makes spilling unobservable: the bytes are
/// the same either way.
struct RunView {
  const uint64_t* keys = nullptr;
  const uint32_t* counts = nullptr;
  size_t size = 0;

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < size; ++i) fn(keys[i], counts[i]);
  }

  uint32_t Count(uint64_t key) const {
    const uint64_t* end = keys + size;
    const uint64_t* it = std::lower_bound(keys, end, key);
    if (it == end || *it != key) return 0;
    return counts[it - keys];
  }
};

/// LSM-style tiered aggregate of `(key, count)` pairs: a short stack of
/// sorted-run tiers (oldest and largest first) that together represent one
/// logical count multiset. Round deltas land as small new tiers; the big
/// persistent run is only rewritten when the size-ratio policy trips, so
/// late low-yield rounds stop paying a full-run merge each round.
///
/// A key may appear in several tiers; `ForEach`/`Count` fold the tiers back
/// together on the fly (k-way merge summing duplicate keys), so consumers
/// see exactly the single-run aggregate. `k` is bounded by
/// `TierPolicy::max_tiers`, keeping scans linear with a small constant.
///
/// Each tier lives either resident (a `SortedCountRun`) or spilled (an
/// mmap'd `SpilledRun`, see `util/spill_store.h`); the memory-budget
/// enforcement layer moves cold big tiers to disk via `SpillTier` and the
/// store transparently materializes a spilled tier back whenever an
/// operation must mutate it (compaction merge, `Filter`). Reads never
/// distinguish the two forms.
class TieredCountRuns {
 public:
  /// Resident footprint of a run of `entries` entries (flat key + count
  /// payload; the store's accounting unit — vector headers and malloc slop
  /// are noise at spill-worthy sizes).
  static size_t BytesForEntries(size_t entries) {
    return entries * (sizeof(uint64_t) + sizeof(uint32_t));
  }

  /// Appends a round delta as a new tier, then applies `policy`'s merge
  /// cascade. Empty deltas are dropped. A cascade step whose merge target
  /// is spilled materializes it first (mutating a mapping is impossible);
  /// the budget layer may re-spill the merged result afterwards.
  void Append(SortedCountRun&& delta, const TierPolicy& policy) {
    if (delta.empty()) return;
    tiers_.emplace_back();
    tiers_.back().resident = std::move(delta);
    const size_t cap = static_cast<size_t>(std::max(1, policy.max_tiers));
    const double ratio = policy.size_ratio;
    while (tiers_.size() > 1 &&
           (tiers_.size() > cap ||
            (ratio > 0.0 &&
             static_cast<double>(tiers_[tiers_.size() - 2].size()) <=
                 ratio * static_cast<double>(tiers_.back().size())))) {
      MergeTopIntoPredecessor();
    }
  }

  /// Folds everything into a single tier (a full compaction).
  void Compact() {
    while (tiers_.size() > 1) MergeTopIntoPredecessor();
  }

  /// Invokes `fn(key, total_count)` once per distinct key, in ascending key
  /// order, with counts summed across tiers — identical to the `ForEach` of
  /// the fully merged run, whether tiers are resident or spilled.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (tiers_.empty()) return;
    if (tiers_.size() == 1) {
      tiers_[0].View().ForEach(fn);
      return;
    }
    if (tiers_.size() == 2) {
      // Two tiers (one big run + one delta batch) is the steady state under
      // small caps; a branch-lean two-way merge keeps the selection scan
      // close to single-run cost. Spilled tiers stream through the same
      // loop — mmap makes the pointer walk identical.
      const RunView a = tiers_[0].View();
      const RunView b = tiers_[1].View();
      size_t i = 0, j = 0;
      while (i < a.size && j < b.size) {
        const uint64_t ka = a.keys[i];
        const uint64_t kb = b.keys[j];
        if (ka < kb) {
          fn(ka, a.counts[i++]);
        } else if (kb < ka) {
          fn(kb, b.counts[j++]);
        } else {
          fn(ka, a.counts[i++] + b.counts[j++]);
        }
      }
      for (; i < a.size; ++i) fn(a.keys[i], a.counts[i]);
      for (; j < b.size; ++j) fn(b.keys[j], b.counts[j]);
      return;
    }
    const size_t k = tiers_.size();
    std::vector<RunView> views(k);
    for (size_t t = 0; t < k; ++t) views[t] = tiers_[t].View();
    std::vector<size_t> pos(k, 0);
    for (;;) {
      uint64_t min_key = std::numeric_limits<uint64_t>::max();
      bool any = false;
      for (size_t t = 0; t < k; ++t) {
        if (pos[t] >= views[t].size) continue;
        any = true;
        min_key = std::min(min_key, views[t].keys[pos[t]]);
      }
      if (!any) break;
      uint32_t total = 0;
      for (size_t t = 0; t < k; ++t) {
        if (pos[t] < views[t].size && views[t].keys[pos[t]] == min_key) {
          total += views[t].counts[pos[t]];
          ++pos[t];
        }
      }
      fn(min_key, total);
    }
  }

  /// Total count for `key` across tiers (0 if absent).
  uint32_t Count(uint64_t key) const {
    uint32_t total = 0;
    for (const Tier& tier : tiers_) total += tier.View().Count(key);
    return total;
  }

  /// Keeps only entries with `pred(key, tier_count)`. The predicate sees the
  /// per-tier count, so it must decide on the key alone (the matcher's
  /// liveness sweep does); tiers emptied by the sweep are dropped. Spilled
  /// tiers are materialized back to resident first — a filter rewrites the
  /// run, and the budget layer re-decides placement on its next pass.
  template <typename Pred>
  void Filter(Pred&& pred) {
    for (Tier& tier : tiers_) {
      tier.Materialize();
      tier.resident.Filter(pred);
    }
    tiers_.erase(std::remove_if(
                     tiers_.begin(), tiers_.end(),
                     [](const Tier& tier) { return tier.size() == 0; }),
                 tiers_.end());
  }

  /// Moves tier `index` to disk via `store`. Returns true on success; on
  /// failure (including an injected fault) the tier stays resident and
  /// `*error` describes why. Spilling an already-spilled or empty tier is a
  /// successful no-op.
  bool SpillTier(size_t index, SpillStore& store, std::string* error) {
    Tier& tier = tiers_[index];
    if (tier.spilled != nullptr || tier.size() == 0) return true;
    std::unique_ptr<SpilledRun> spilled = store.Spill(tier.resident, error);
    if (spilled == nullptr) return false;
    tier.spilled = std::move(spilled);
    tier.resident = SortedCountRun{};
    return true;
  }

  /// Invokes `fn(RunView)` once per tier, oldest first — the snapshot
  /// writer's serialization hook (spilled tiers stream from their mapping,
  /// so a partially-spilled store checkpoints byte-identically to an
  /// all-resident one).
  template <typename Fn>
  void ForEachTier(Fn&& fn) const {
    for (const Tier& tier : tiers_) fn(tier.View());
  }

  /// Pre-sizes the tier stack (not the runs — those are appended whole).
  /// The shard-placement first-touch pass calls this from a home-domain
  /// worker so the stack's backing pages are allocated there.
  void ReserveTiers(size_t n) { tiers_.reserve(n); }

  bool empty() const { return tiers_.empty(); }
  size_t num_tiers() const { return tiers_.size(); }
  size_t tier_size(size_t index) const { return tiers_[index].size(); }
  bool tier_spilled(size_t index) const {
    return tiers_[index].spilled != nullptr;
  }

  /// Total resident entries across tiers (an upper bound on distinct keys —
  /// a key split across tiers is counted once per tier).
  size_t total_entries() const {
    size_t total = 0;
    for (const Tier& tier : tiers_) total += tier.size();
    return total;
  }

  /// Bytes of tier payload currently held in RAM (spilled tiers cost 0 —
  /// their pages are file-backed and evictable).
  size_t resident_bytes() const {
    size_t total = 0;
    for (const Tier& tier : tiers_) {
      if (tier.spilled == nullptr) total += BytesForEntries(tier.size());
    }
    return total;
  }

  size_t num_spilled_tiers() const {
    size_t total = 0;
    for (const Tier& tier : tiers_) {
      if (tier.spilled != nullptr) ++total;
    }
    return total;
  }

 private:
  struct Tier {
    SortedCountRun resident;              // authoritative when not spilled
    std::unique_ptr<SpilledRun> spilled;  // non-null => resident is empty

    size_t size() const {
      return spilled != nullptr ? spilled->size() : resident.size();
    }

    RunView View() const {
      if (spilled != nullptr) {
        return RunView{spilled->keys(), spilled->counts(), spilled->size()};
      }
      return RunView{resident.keys.data(), resident.counts.data(),
                     resident.size()};
    }

    // Copies a spilled tier back into resident vectors and drops the file.
    void Materialize() {
      if (spilled == nullptr) return;
      resident.keys.assign(spilled->keys(), spilled->keys() + spilled->size());
      resident.counts.assign(spilled->counts(),
                             spilled->counts() + spilled->size());
      spilled.reset();
    }
  };

  // Pops the newest tier and folds it into its predecessor (which is
  // materialized first if spilled — merges rewrite the target).
  void MergeTopIntoPredecessor() {
    Tier top = std::move(tiers_.back());
    tiers_.pop_back();
    top.Materialize();
    tiers_.back().Materialize();
    MergeCountRuns(tiers_.back().resident, std::move(top.resident));
  }

  std::vector<Tier> tiers_;
};

}  // namespace reconcile

#endif  // RECONCILE_UTIL_TIERED_STORE_H_
