#include "reconcile/util/fault.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "reconcile/util/shutdown.h"

namespace reconcile {

namespace {

enum class FaultKind { kCrash, kStop, kIo, kWorkerCrash };

struct FaultEntry {
  FaultKind kind;
  std::string point;
  // crash/stop: the value the point must report to fire.
  // io: the 1-based hit index on which the point fires.
  int64_t value = 1;
  int64_t hits = 0;  // io points only
};

const char* KindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStop:
      return "stop";
    case FaultKind::kIo:
      return "io";
    case FaultKind::kWorkerCrash:
      return "worker_crash";
  }
  return "?";
}

// One process-global armed set behind a mutex. Fault points sit on cold
// paths (round boundaries, checkpoint commits), so a mutex is fine.
struct Injector {
  std::mutex mu;
  std::vector<FaultEntry> entries;
  bool env_read = false;

  static Injector& Get() {
    static Injector injector;
    return injector;
  }

  // Reads RECONCILE_FAULT once; a malformed env spec is a loud warning,
  // not an abort (the env var is a test/ops hook, not an API).
  void MaybeArmFromEnvLocked() {
    if (env_read) return;
    env_read = true;
    const char* env = std::getenv("RECONCILE_FAULT");
    if (env == nullptr || env[0] == '\0') return;
    std::string error;
    std::vector<FaultEntry> parsed;
    if (!ParseSpec(env, &parsed, &error)) {
      std::fprintf(stderr, "warning: ignoring RECONCILE_FAULT: %s\n",
                   error.c_str());
      return;
    }
    entries = std::move(parsed);
  }

  static bool ParseSpec(const std::string& spec,
                        std::vector<FaultEntry>* out, std::string* error) {
    std::vector<FaultEntry> parsed;
    size_t begin = 0;
    while (begin <= spec.size()) {
      size_t end = spec.find_first_of(";,", begin);
      if (end == std::string::npos) end = spec.size();
      const std::string item = spec.substr(begin, end - begin);
      begin = end + 1;
      if (item.empty()) {
        if (end == spec.size()) break;
        continue;
      }
      const size_t colon = item.find(':');
      if (colon == std::string::npos) {
        *error = "fault entry '" + item + "' lacks a kind: prefix "
                 "(crash:, stop: or io:)";
        return false;
      }
      FaultEntry entry;
      const std::string kind = item.substr(0, colon);
      if (kind == "crash") {
        entry.kind = FaultKind::kCrash;
      } else if (kind == "stop") {
        entry.kind = FaultKind::kStop;
      } else if (kind == "io") {
        entry.kind = FaultKind::kIo;
      } else if (kind == "worker_crash") {
        entry.kind = FaultKind::kWorkerCrash;
      } else {
        *error = "fault entry '" + item + "' has unknown kind '" + kind +
                 "' (want crash, stop, io or worker_crash)";
        return false;
      }
      std::string rest = item.substr(colon + 1);
      const size_t eq = rest.find('=');
      if (eq != std::string::npos) {
        const std::string value = rest.substr(eq + 1);
        entry.point = rest.substr(0, eq);
        char* parse_end = nullptr;
        entry.value = std::strtoll(value.c_str(), &parse_end, 10);
        if (value.empty() || parse_end == nullptr || *parse_end != '\0') {
          *error = "fault entry '" + item + "' has a non-integer value '" +
                   value + "'";
          return false;
        }
        // Threshold points (`FaultPointExhausted`, e.g. enospc_after)
        // accept 0 ("fail every hit"); ordinary hit-index points fire on
        // exactly hit N, so 0 there would silently never fire — reject it.
        const bool threshold_point =
            entry.point.size() >= 6 &&
            entry.point.compare(entry.point.size() - 6, 6, "_after") == 0;
        const int64_t min_value = threshold_point ? 0 : 1;
        if (entry.kind == FaultKind::kIo && entry.value < min_value) {
          *error = "fault entry '" + item + "': io " +
                   (threshold_point ? "threshold must be >= 0"
                                    : "hit index must be >= 1");
          return false;
        }
      } else {
        entry.point = std::move(rest);
      }
      if (entry.point.empty()) {
        *error = "fault entry '" + item + "' names no fault point";
        return false;
      }
      parsed.push_back(std::move(entry));
      if (end == spec.size()) break;
    }
    *out = std::move(parsed);
    return true;
  }
};

}  // namespace

bool ArmFaults(const std::string& spec, std::string* error) {
  std::vector<FaultEntry> parsed;
  std::string local_error;
  if (!Injector::ParseSpec(spec, &parsed, &local_error)) {
    if (error != nullptr) *error = local_error;
    return false;
  }
  Injector& injector = Injector::Get();
  std::lock_guard<std::mutex> lock(injector.mu);
  injector.env_read = true;  // an explicit arm overrides the env var
  injector.entries = std::move(parsed);
  return true;
}

bool ValidateFaultSpec(const std::string& spec, std::string* error) {
  std::vector<FaultEntry> parsed;
  std::string local_error;
  if (!Injector::ParseSpec(spec, &parsed, &local_error)) {
    if (error != nullptr) *error = local_error;
    return false;
  }
  return true;
}

void DisarmFaults() {
  Injector& injector = Injector::Get();
  std::lock_guard<std::mutex> lock(injector.mu);
  injector.env_read = true;
  injector.entries.clear();
}

std::string ArmedFaultSpec() {
  Injector& injector = Injector::Get();
  std::lock_guard<std::mutex> lock(injector.mu);
  injector.MaybeArmFromEnvLocked();
  std::string spec;
  for (const FaultEntry& entry : injector.entries) {
    if (!spec.empty()) spec += ';';
    spec += KindName(entry.kind);
    spec += ':';
    spec += entry.point;
    spec += '=';
    spec += std::to_string(entry.value);
  }
  return spec;
}

bool FaultPointHit(std::string_view point) {
  Injector& injector = Injector::Get();
  std::lock_guard<std::mutex> lock(injector.mu);
  injector.MaybeArmFromEnvLocked();
  bool fired = false;
  for (FaultEntry& entry : injector.entries) {
    if (entry.kind != FaultKind::kIo || entry.point != point) continue;
    ++entry.hits;
    if (entry.hits == entry.value) fired = true;
  }
  return fired;
}

bool FaultPointExhausted(std::string_view point) {
  Injector& injector = Injector::Get();
  std::lock_guard<std::mutex> lock(injector.mu);
  injector.MaybeArmFromEnvLocked();
  bool fired = false;
  for (FaultEntry& entry : injector.entries) {
    if (entry.kind != FaultKind::kIo || entry.point != point) continue;
    ++entry.hits;
    if (entry.hits > entry.value) fired = true;
  }
  return fired;
}

void FaultValuePoint(std::string_view point, int64_t value) {
  Injector& injector = Injector::Get();
  bool crash = false;
  bool stop = false;
  {
    std::lock_guard<std::mutex> lock(injector.mu);
    injector.MaybeArmFromEnvLocked();
    for (const FaultEntry& entry : injector.entries) {
      if (entry.point != point || entry.value != value) continue;
      if (entry.kind == FaultKind::kCrash) crash = true;
      if (entry.kind == FaultKind::kStop) stop = true;
    }
  }
  if (stop) {
    std::fprintf(stderr, "fault injection: graceful stop at %.*s=%lld\n",
                 static_cast<int>(point.size()), point.data(),
                 static_cast<long long>(value));
    RequestGracefulStop();
  }
  if (crash) {
    std::fprintf(stderr, "fault injection: crashing at %.*s=%lld\n",
                 static_cast<int>(point.size()), point.data(),
                 static_cast<long long>(value));
    std::fflush(nullptr);
    // _exit, not abort: no atexit hooks, no core dump noise — models a
    // SIGKILLed worker as closely as a self-inflicted death can.
    _exit(kFaultCrashExitCode);
  }
}

void WorkerFaultPoint(std::string_view point, int64_t value) {
  Injector& injector = Injector::Get();
  bool crash = false;
  {
    std::lock_guard<std::mutex> lock(injector.mu);
    injector.MaybeArmFromEnvLocked();
    for (const FaultEntry& entry : injector.entries) {
      if (entry.kind != FaultKind::kWorkerCrash) continue;
      if (entry.point != point || entry.value != value) continue;
      crash = true;
    }
  }
  if (crash) {
    std::fprintf(stderr,
                 "fault injection: worker crashing at %.*s=%lld (pid %d)\n",
                 static_cast<int>(point.size()), point.data(),
                 static_cast<long long>(value), static_cast<int>(getpid()));
    std::fflush(nullptr);
    _exit(kFaultCrashExitCode);
  }
}

std::string StripWorkerFaults(const std::string& spec) {
  std::vector<FaultEntry> parsed;
  std::string error;
  if (!Injector::ParseSpec(spec, &parsed, &error)) return spec;
  std::string kept;
  for (const FaultEntry& entry : parsed) {
    if (entry.kind == FaultKind::kWorkerCrash) continue;
    if (entry.kind == FaultKind::kIo &&
        (entry.point == "msg_corrupt" || entry.point == "msg_stall")) {
      continue;
    }
    if (!kept.empty()) kept += ';';
    kept += KindName(entry.kind);
    kept += ':';
    kept += entry.point;
    kept += '=';
    kept += std::to_string(entry.value);
  }
  return kept;
}

}  // namespace reconcile
