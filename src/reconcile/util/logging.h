#ifndef RECONCILE_UTIL_LOGGING_H_
#define RECONCILE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace reconcile {

/// Severity levels for the lightweight logger. The library never throws;
/// `kFatal` messages abort the process after printing.
enum class LogSeverity { kInfo, kWarning, kError, kFatal };

namespace internal_logging {

/// Stream-style log message collector. Instances are created by the
/// RECONCILE_LOG / RECONCILE_CHECK macros; the destructor emits the message
/// (and aborts for kFatal).
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the minimum severity that is actually printed (default kInfo).
/// kFatal is always printed and always aborts.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

}  // namespace reconcile

#define RECONCILE_LOG(severity)                                         \
  ::reconcile::internal_logging::LogMessage(                            \
      ::reconcile::LogSeverity::k##severity, __FILE__, __LINE__)

/// CHECK-style invariant assertion: active in all build modes. On failure
/// prints the condition and any streamed context, then aborts.
#define RECONCILE_CHECK(condition)                        \
  if (!(condition))                                       \
  RECONCILE_LOG(Fatal) << "Check failed: " #condition " "

#define RECONCILE_CHECK_EQ(a, b) \
  RECONCILE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define RECONCILE_CHECK_NE(a, b) \
  RECONCILE_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define RECONCILE_CHECK_LT(a, b) \
  RECONCILE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define RECONCILE_CHECK_LE(a, b) \
  RECONCILE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define RECONCILE_CHECK_GT(a, b) \
  RECONCILE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define RECONCILE_CHECK_GE(a, b) \
  RECONCILE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // RECONCILE_UTIL_LOGGING_H_
