#ifndef RECONCILE_UTIL_STAMPED_RUNS_H_
#define RECONCILE_UTIL_STAMPED_RUNS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "reconcile/util/logging.h"
#include "reconcile/util/radix_sort.h"

namespace reconcile {

/// One sorted, signed contribution run tagged with a round stamp. Keys are
/// strictly increasing; counts are signed so a run can *retract* earlier
/// contributions (negative counts) as well as add them.
struct StampedRun {
  uint32_t stamp = 0;
  std::vector<uint64_t> keys;
  std::vector<int32_t> counts;

  size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }
};

/// One cell's fold over a contiguous stamp window, materialized as a single
/// sorted run and maintained incrementally by `StampedRuns::AccumulateInto`
/// as replay's round stamp advances. Counts are the per-key window nets
/// (always > 0 — see AccumulateInto). Replay keeps two per cell — a large
/// *cold* fold and a small *hot* fold over the stamps since the last
/// promotion (`MergeFrom`) — so selection scans a 2-way merge of sorted
/// positive runs instead of k-way-merging every stamp on every round.
struct FoldedRun {
  std::vector<uint64_t> keys;
  std::vector<int64_t> counts;

  bool empty() const { return keys.empty(); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys.size(); ++i) {
      if (counts[i] > 0) fn(keys[i], static_cast<uint32_t>(counts[i]));
    }
  }

  /// Absorbs `other` (a fold of a disjoint stamp window of the same cell),
  /// summing counts on shared keys and dropping keys whose merged net is
  /// <= 0. This is the hot-into-cold promotion of replay's two-level fold:
  /// both operands are per-window nets (>= 0 per key, since retraction is
  /// stamp-local), so the merge of two disjoint windows is exactly the fold
  /// of their union. `other` is consumed and left empty.
  void MergeFrom(FoldedRun&& other) {
    if (other.empty()) return;
    if (keys.empty()) {
      keys = std::move(other.keys);
      counts = std::move(other.counts);
    } else {
      std::vector<uint64_t> merged_keys;
      std::vector<int64_t> merged_counts;
      merged_keys.reserve(keys.size() + other.keys.size());
      merged_counts.reserve(keys.size() + other.keys.size());
      size_t i = 0, j = 0;
      while (i < keys.size() && j < other.keys.size()) {
        const uint64_t ka = keys[i], kb = other.keys[j];
        if (ka < kb) {
          merged_keys.push_back(ka);
          merged_counts.push_back(counts[i++]);
        } else if (kb < ka) {
          merged_keys.push_back(kb);
          merged_counts.push_back(other.counts[j++]);
        } else {
          const int64_t total = counts[i++] + other.counts[j++];
          if (total > 0) {
            merged_keys.push_back(ka);
            merged_counts.push_back(total);
          }
        }
      }
      for (; i < keys.size(); ++i) {
        merged_keys.push_back(keys[i]);
        merged_counts.push_back(counts[i]);
      }
      for (; j < other.keys.size(); ++j) {
        merged_keys.push_back(other.keys[j]);
        merged_counts.push_back(other.counts[j]);
      }
      keys = std::move(merged_keys);
      counts = std::move(merged_counts);
    }
    other.keys.clear();
    other.counts.clear();
  }
};

/// The serve-mode score cell: a stack of stamped, signed sorted runs per
/// (level, shard), replacing `TieredCountRuns` where contributions must be
/// both *retractable* and *foldable as of a given round*.
///
/// The stamp scheme makes the incremental matcher's replay exact: a run
/// stamped `s` is visible to rounds >= s (seed emissions carry stamp 0; the
/// links committed by replay round k emit at stamp k+1), so the score
/// multiset round r selected against is recovered — bit-identically — by
/// k-way-merging every run with stamp <= r and summing signed counts.
/// Retraction appends a negative mirror of a stale emission *at the same
/// stamp*, so the net contribution of a dirty link vanishes for every round
/// that could ever have seen it. Keys whose net is <= 0 are skipped by the
/// fold: a from-scratch run never scored them, and even a zero-score
/// observation would perturb the epoch-stamped best tables.
///
/// Unlike `TieredCountRuns` there is no cross-stamp compaction — merging
/// across stamp boundaries would destroy the "as of round r" cut. Runs
/// *within* one stamp merge freely (`CompactStamps`), because every fold
/// either sees all of them or none.
class StampedRuns {
 public:
  StampedRuns() = default;
  StampedRuns(const StampedRuns&) = delete;
  StampedRuns& operator=(const StampedRuns&) = delete;
  StampedRuns(StampedRuns&&) = default;
  StampedRuns& operator=(StampedRuns&&) = default;

  /// Appends `run`'s entries at `stamp` with every count multiplied by
  /// `sign` (+1 to contribute, -1 to retract). Empty runs are dropped.
  void Append(uint32_t stamp, SortedCountRun&& run, int32_t sign) {
    if (run.empty()) return;
    StampedRun stamped;
    stamped.stamp = stamp;
    stamped.keys = std::move(run.keys);
    stamped.counts.reserve(run.counts.size());
    for (uint32_t c : run.counts) {
      stamped.counts.push_back(sign * static_cast<int32_t>(c));
    }
    runs_.push_back(std::move(stamped));
  }

  /// Appends an already-signed run verbatim (snapshot load path). The keys
  /// must be strictly increasing and sized like the counts.
  void AppendRaw(StampedRun&& run) {
    if (run.empty()) return;
    RECONCILE_CHECK_EQ(run.keys.size(), run.counts.size());
    runs_.push_back(std::move(run));
  }

  /// Drops every run with stamp >= `stamp` — the divergence cut: once a
  /// replay round's accepted links differ from the old schedule's, every
  /// later round's contributions are stale in bulk.
  void TruncateFrom(uint32_t stamp) {
    size_t out = 0;
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (runs_[i].stamp < stamp) {
        if (out != i) runs_[out] = std::move(runs_[i]);
        ++out;
      }
    }
    runs_.resize(out);
  }

  /// Merges all runs sharing a stamp into one and drops keys whose merged
  /// count is <= 0. Safe only because retraction is stamp-local: a dirty
  /// link's old contribution and its negative mirror carry the same stamp,
  /// so the per-key net over *all* runs of a stamp is the value every fold
  /// would compute anyway (and is >= 0 — a retraction never exceeds the
  /// original emission).
  void CompactStamps() {
    if (runs_.empty()) return;
    // Group run indices by stamp, preserving first-seen stamp order.
    std::vector<StampedRun> compacted;
    std::vector<char> used(runs_.size(), 0);
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (used[i]) continue;
      std::vector<const StampedRun*> group;
      for (size_t j = i; j < runs_.size(); ++j) {
        if (!used[j] && runs_[j].stamp == runs_[i].stamp) {
          used[j] = 1;
          group.push_back(&runs_[j]);
        }
      }
      StampedRun merged = MergeGroup(runs_[i].stamp, group);
      if (!merged.empty()) compacted.push_back(std::move(merged));
    }
    runs_ = std::move(compacted);
  }

  /// K-way min-scan over every run with stamp <= `max_stamp`, invoking
  /// `fn(key, count)` in strictly increasing key order for each key whose
  /// summed signed count is positive. This is the "score state as of round
  /// max_stamp" fold selection consumes.
  template <typename Fn>
  void ForEachUpTo(uint32_t max_stamp, Fn&& fn) const {
    std::vector<const StampedRun*> live;
    live.reserve(runs_.size());
    for (const StampedRun& run : runs_) {
      if (run.stamp <= max_stamp && !run.empty()) live.push_back(&run);
    }
    if (live.empty()) return;
    if (live.size() == 1) {
      const StampedRun& run = *live[0];
      for (size_t i = 0; i < run.keys.size(); ++i) {
        if (run.counts[i] > 0) {
          fn(run.keys[i], static_cast<uint32_t>(run.counts[i]));
        }
      }
      return;
    }
    std::vector<size_t> cursor(live.size(), 0);
    for (;;) {
      uint64_t min_key = ~0ULL;
      bool any = false;
      for (size_t r = 0; r < live.size(); ++r) {
        if (cursor[r] < live[r]->keys.size()) {
          const uint64_t key = live[r]->keys[cursor[r]];
          if (!any || key < min_key) min_key = key;
          any = true;
        }
      }
      if (!any) break;
      int64_t total = 0;
      for (size_t r = 0; r < live.size(); ++r) {
        if (cursor[r] < live[r]->keys.size() &&
            live[r]->keys[cursor[r]] == min_key) {
          total += live[r]->counts[cursor[r]];
          ++cursor[r];
        }
      }
      if (total > 0) fn(min_key, static_cast<uint32_t>(total));
    }
  }

  /// Advances an accumulated fold: merges every run with stamp in
  /// [`from_stamp`, `up_to`] into `acc`, summing signed counts and dropping
  /// keys whose merged net is <= 0. Calling this with contiguous stamp
  /// windows (each stamp covered exactly once) leaves `acc` holding exactly
  /// the fold of the covered window — `ForEachUpTo(up_to)` when the windows
  /// started at stamp 0. The drop is sound over *any* stamp window, not
  /// just prefixes: retraction is stamp-local (a dirty link's negative
  /// mirror carries the stamp of the emission it cancels), so every single
  /// stamp's per-key net is >= 0 — the CompactStamps argument — and hence
  /// so is any sum of whole stamps; a key dropped at net 0 re-enters
  /// correctly when a later stamp contributes it again. Replay uses this to
  /// pay each stamp's merge once per batch instead of re-folding every
  /// stamp on every live round.
  void AccumulateInto(uint32_t from_stamp, uint32_t up_to,
                      FoldedRun* acc) const {
    std::vector<const StampedRun*> fresh;
    for (const StampedRun& run : runs_) {
      if (run.stamp >= from_stamp && run.stamp <= up_to && !run.empty()) {
        fresh.push_back(&run);
      }
    }
    if (fresh.empty()) return;
    std::vector<uint64_t> keys;
    std::vector<int64_t> counts;
    size_t cap = acc->keys.size();
    for (const StampedRun* run : fresh) cap += run->size();
    keys.reserve(cap);
    counts.reserve(cap);
    std::vector<size_t> cursor(fresh.size(), 0);
    size_t acc_cursor = 0;
    for (;;) {
      // Smallest key still pending in the fresh runs. The accumulator side
      // advances in bulk below, so this O(runs) loop executes once per
      // *fresh* key, not once per accumulator key — the merge costs
      // O(|acc| + |window| * runs), which is what lets replay rebuild over
      // a large accumulator without an O(|acc| * runs) cursor sweep.
      uint64_t next_fresh = ~0ULL;
      bool fresh_any = false;
      for (size_t r = 0; r < fresh.size(); ++r) {
        if (cursor[r] < fresh[r]->keys.size()) {
          next_fresh = std::min(next_fresh, fresh[r]->keys[cursor[r]]);
          fresh_any = true;
        }
      }
      // Bulk-copy accumulator entries strictly below the next fresh key.
      while (acc_cursor < acc->keys.size() &&
             (!fresh_any || acc->keys[acc_cursor] < next_fresh)) {
        keys.push_back(acc->keys[acc_cursor]);
        counts.push_back(acc->counts[acc_cursor]);
        ++acc_cursor;
      }
      if (!fresh_any) break;
      int64_t total = 0;
      if (acc_cursor < acc->keys.size() &&
          acc->keys[acc_cursor] == next_fresh) {
        total += acc->counts[acc_cursor];
        ++acc_cursor;
      }
      for (size_t r = 0; r < fresh.size(); ++r) {
        if (cursor[r] < fresh[r]->keys.size() &&
            fresh[r]->keys[cursor[r]] == next_fresh) {
          total += fresh[r]->counts[cursor[r]];
          ++cursor[r];
        }
      }
      if (total > 0) {
        keys.push_back(next_fresh);
        counts.push_back(total);
      }
    }
    acc->keys = std::move(keys);
    acc->counts = std::move(counts);
  }

  /// True when no run carries a stamp <= `max_stamp` (the fold would emit
  /// nothing; it may still emit nothing on false if every net is <= 0).
  bool EmptyUpTo(uint32_t max_stamp) const {
    for (const StampedRun& run : runs_) {
      if (run.stamp <= max_stamp) return false;
    }
    return true;
  }

  bool empty() const { return runs_.empty(); }
  size_t num_runs() const { return runs_.size(); }
  const std::vector<StampedRun>& runs() const { return runs_; }

  size_t total_entries() const {
    size_t total = 0;
    for (const StampedRun& run : runs_) total += run.size();
    return total;
  }

 private:
  static StampedRun MergeGroup(uint32_t stamp,
                               const std::vector<const StampedRun*>& group) {
    StampedRun merged;
    merged.stamp = stamp;
    if (group.size() == 1) {
      // Still re-filter: a single run may hold net-zero pairs only when it
      // was produced by AppendRaw from a pre-compaction snapshot; cheap to
      // keep the invariant uniform.
      for (size_t i = 0; i < group[0]->keys.size(); ++i) {
        if (group[0]->counts[i] != 0) {
          merged.keys.push_back(group[0]->keys[i]);
          merged.counts.push_back(group[0]->counts[i]);
        }
      }
      return merged;
    }
    std::vector<size_t> cursor(group.size(), 0);
    for (;;) {
      uint64_t min_key = ~0ULL;
      bool any = false;
      for (size_t r = 0; r < group.size(); ++r) {
        if (cursor[r] < group[r]->keys.size()) {
          const uint64_t key = group[r]->keys[cursor[r]];
          if (!any || key < min_key) min_key = key;
          any = true;
        }
      }
      if (!any) break;
      int64_t total = 0;
      for (size_t r = 0; r < group.size(); ++r) {
        if (cursor[r] < group[r]->keys.size() &&
            group[r]->keys[cursor[r]] == min_key) {
          total += group[r]->counts[cursor[r]];
          ++cursor[r];
        }
      }
      if (total != 0) {
        merged.keys.push_back(min_key);
        merged.counts.push_back(static_cast<int32_t>(total));
      }
    }
    return merged;
  }

  std::vector<StampedRun> runs_;
};

}  // namespace reconcile

#endif  // RECONCILE_UTIL_STAMPED_RUNS_H_
