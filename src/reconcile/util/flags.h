#ifndef RECONCILE_UTIL_FLAGS_H_
#define RECONCILE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace reconcile {

/// Minimal `--key=value` command-line parser for the CLI tools. Flags may
/// also be written `--key value`; bare `--key` sets the value "true".
/// Unknown positional arguments are collected separately.
class Flags {
 public:
  /// Parses argv[1..argc). Returns false (and fills *error) on malformed
  /// input such as an empty flag name.
  bool Parse(int argc, const char* const argv[], std::string* error);

  bool Has(const std::string& key) const;

  /// Typed getters with defaults. Fatal (RECONCILE_CHECK) if the value is
  /// present but not parseable as the requested type.
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were provided but never read by any getter; used to warn
  /// about typos.
  std::vector<std::string> UnusedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace reconcile

#endif  // RECONCILE_UTIL_FLAGS_H_
