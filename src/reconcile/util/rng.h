#ifndef RECONCILE_UTIL_RNG_H_
#define RECONCILE_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "reconcile/util/logging.h"

namespace reconcile {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implementation: xoshiro256** (Blackman & Vigna), seeded through SplitMix64
/// so that any 64-bit seed (including 0) yields a well-mixed state. The
/// generator is small, fast and has no global state; every stochastic
/// component of the library takes an explicit `Rng` or seed so experiments
/// are reproducible run-to-run and across thread counts.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed) { Reseed(seed); }

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Re-initializes the state from `seed`.
  void Reseed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) state_[i] = SplitMix64(&x);
  }

  /// Returns the next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless method (small modulo bias only beyond 2^64 scales,
  /// eliminated by rejection).
  uint64_t UniformInt(uint64_t bound) {
    RECONCILE_CHECK_GT(bound, 0u);
    // Rejection sampling on the top of the range to remove bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformIntInRange(uint64_t lo, uint64_t hi) {
    RECONCILE_CHECK_LE(lo, hi);
    return lo + UniformInt(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double UniformReal() {
    // 53 random mantissa bits.
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformReal() < p;
  }

  /// Number of failures before the first success of a Bernoulli(p) sequence;
  /// used for skip-sampling sparse random graphs. `p` must be in (0, 1].
  uint64_t Geometric(double p) {
    RECONCILE_CHECK_GT(p, 0.0);
    if (p >= 1.0) return 0;
    double u = UniformReal();
    // Avoid log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return static_cast<uint64_t>(std::log(u) / std::log1p(-p));
  }

  /// Splits off an independent child generator; the child stream is a
  /// deterministic function of (current state, `salt`). Useful for giving
  /// each parallel shard its own stream.
  Rng Fork(uint64_t salt) {
    return Rng(Next() ^ (salt * 0x9e3779b97f4a7c15ULL));
  }

  /// SplitMix64 step; exposed for lightweight hashing needs.
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// Mixes a 64-bit value into a well-distributed hash (SplitMix64 finalizer).
inline uint64_t HashMix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace reconcile

#endif  // RECONCILE_UTIL_RNG_H_
