#include "reconcile/util/topology.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>

namespace reconcile {

namespace {

constexpr const char* kSysfsNodeRoot = "/sys/devices/system/node";

bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  int value = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    const int digit = c - '0';
    if (value > (std::numeric_limits<int>::max() - digit) / 10) {
      return false;  // would overflow — reject like any malformed input
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

bool ParseCpuList(const std::string& text, std::vector<int>* out) {
  out->clear();
  std::string trimmed;
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) trimmed.push_back(c);
  }
  if (trimmed.empty()) return true;  // memory-only node: no CPUs
  std::stringstream stream(trimmed);
  std::string token;
  while (std::getline(stream, token, ',')) {
    const size_t dash = token.find('-');
    if (dash == std::string::npos) {
      int cpu = 0;
      if (!ParseInt(token, &cpu)) return false;
      out->push_back(cpu);
    } else {
      int lo = 0, hi = 0;
      if (!ParseInt(token.substr(0, dash), &lo) ||
          !ParseInt(token.substr(dash + 1), &hi) || lo > hi) {
        return false;
      }
      for (int cpu = lo; cpu <= hi; ++cpu) out->push_back(cpu);
    }
  }
  return true;
}

bool ParseSysfsNodeTree(const std::string& root, MachineTopology* out) {
  namespace fs = std::filesystem;
  out->domains.clear();
  out->synthetic = false;
  std::error_code ec;
  if (!fs::is_directory(root, ec) || ec) return false;

  std::vector<std::pair<int, fs::path>> nodes;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0) continue;
    int id = 0;
    if (!ParseInt(name.substr(4), &id)) continue;
    nodes.emplace_back(id, entry.path());
  }
  if (ec || nodes.empty()) return false;
  std::sort(nodes.begin(), nodes.end());

  for (const auto& [id, path] : nodes) {
    std::ifstream file(path / "cpulist");
    if (!file.is_open()) return false;
    std::string line;
    std::getline(file, line);
    TopologyDomain domain;
    domain.id = id;
    if (!ParseCpuList(line, &domain.cpus)) return false;
    out->domains.push_back(std::move(domain));
  }
  return !out->domains.empty();
}

MachineTopology SingleDomainTopology() {
  MachineTopology topo;
  TopologyDomain domain;
  domain.id = 0;
  const unsigned hw = std::thread::hardware_concurrency();
  const int cpus = hw == 0 ? 1 : static_cast<int>(hw);
  domain.cpus.reserve(static_cast<size_t>(cpus));
  for (int c = 0; c < cpus; ++c) domain.cpus.push_back(c);
  topo.domains.push_back(std::move(domain));
  return topo;
}

MachineTopology SyntheticTopology(int num_domains) {
  MachineTopology topo;
  topo.synthetic = true;
  const int n = std::clamp(num_domains, 1, kMaxSyntheticDomains);
  topo.domains.resize(static_cast<size_t>(n));
  for (int d = 0; d < n; ++d) topo.domains[static_cast<size_t>(d)].id = d;
  return topo;
}

const MachineTopology& DetectTopology() {
  static const MachineTopology cached = [] {
    // Env override first: lets single-socket hosts (CI, laptops) exercise
    // the multi-domain paths, and multi-socket operators flatten them.
    const char* env = std::getenv("RECONCILE_PLACEMENT_DOMAINS");
    if (env != nullptr) {
      int forced = 0;
      if (ParseInt(env, &forced) && forced >= 1) {
        return forced == 1 ? SingleDomainTopology() : SyntheticTopology(forced);
      }
    }
    MachineTopology detected;
    if (ParseSysfsNodeTree(kSysfsNodeRoot, &detected) &&
        detected.multi_domain()) {
      // Drop memory-only nodes (no CPUs): no worker can ever be local to
      // them, so shards homed there would always be remote.
      detected.domains.erase(
          std::remove_if(detected.domains.begin(), detected.domains.end(),
                         [](const TopologyDomain& d) { return d.cpus.empty(); }),
          detected.domains.end());
      if (detected.multi_domain()) return detected;
    }
    return SingleDomainTopology();
  }();
  return cached;
}

}  // namespace reconcile
