#include "reconcile/util/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace reconcile {

namespace {

// One worker's unclaimed range. The owner pops `grain`-sized chunks from the
// front; thieves take the back half. Compound updates happen under the
// per-slot spinlock; `begin`/`end` are atomics only so the victim-selection
// scan may read them without synchronization (every decision taken from a
// racy read is re-validated under the lock).
struct alignas(64) StealSlot {
  std::atomic_flag lock = ATOMIC_FLAG_INIT;
  std::atomic<size_t> begin{0};
  std::atomic<size_t> end{0};

  size_t RemainingApprox() const {
    const size_t b = begin.load(std::memory_order_relaxed);
    const size_t e = end.load(std::memory_order_relaxed);
    return e > b ? e - b : 0;
  }
};

class SpinGuard {
 public:
  explicit SpinGuard(StealSlot& slot) : slot_(slot) {
    // Bounded spin, then yield: the critical sections are a few loads and
    // stores, so contention normally resolves within the spin budget — but
    // when workers outnumber cores the holder may be descheduled mid-hold,
    // and burning the rest of a timeslice on test_and_set only delays it.
    int spins = 0;
    while (slot_.lock.test_and_set(std::memory_order_acquire)) {
      if (++spins >= 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  ~SpinGuard() { slot_.lock.clear(std::memory_order_release); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  StealSlot& slot_;
};

Scheduler DefaultScheduler() {
  static const Scheduler cached = [] {
    const char* env = std::getenv("RECONCILE_SCHEDULER");
    Scheduler s;
    if (env != nullptr && ParseScheduler(env, &s) && s != Scheduler::kAuto) {
      return s;
    }
    return Scheduler::kWorkStealing;
  }();
  return cached;
}

void RunWorkStealing(ThreadPool* pool, size_t n, size_t grain,
                     const std::function<void(int, size_t, size_t)>& fn) {
  const size_t step = std::max<size_t>(1, grain);
  if (pool == nullptr || pool->num_threads() < 2 || n <= step) {
    if (n > 0) fn(0, 0, n);
    return;
  }
  // Every slot starts with a non-empty contiguous range; surplus slots would
  // only add steal traffic.
  const int slots =
      static_cast<int>(std::min<size_t>(n, static_cast<size_t>(pool->num_threads())));
  std::vector<StealSlot> ranges(static_cast<size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    const size_t u = static_cast<size_t>(i);
    ranges[u].begin.store(n * u / static_cast<size_t>(slots),
                          std::memory_order_relaxed);
    ranges[u].end.store(n * (u + 1) / static_cast<size_t>(slots),
                        std::memory_order_relaxed);
  }

  // Items not yet claimed by any fn call, decremented at chunk-claim time.
  // Steals move items between slots without touching it, so a worker whose
  // victim scan comes up empty can tell "everything is claimed and being
  // executed — retire" (zero) from "a stolen range is mid-transfer,
  // removed from the victim's slot but not yet published to the thief's —
  // wait for it" (non-zero). Retiring during that window would serialize a
  // stolen (possibly huge) tail on one thread.
  std::atomic<size_t> unclaimed{n};

  auto worker = [&ranges, slots, step, &unclaimed, &fn](int self) {
    StealSlot& mine = ranges[static_cast<size_t>(self)];
    for (;;) {
      // Pop one chunk from the front of the own range.
      size_t chunk_begin = 0, chunk_end = 0;
      {
        SpinGuard guard(mine);
        const size_t b = mine.begin.load(std::memory_order_relaxed);
        const size_t e = mine.end.load(std::memory_order_relaxed);
        if (b < e) {
          chunk_begin = b;
          chunk_end = std::min(e, b + step);
          mine.begin.store(chunk_end, std::memory_order_relaxed);
          unclaimed.fetch_sub(chunk_end - chunk_begin,
                              std::memory_order_relaxed);
        }
      }
      if (chunk_begin < chunk_end) {
        fn(self, chunk_begin, chunk_end);
        continue;
      }

      // Own range drained: steal the back half of the fullest victim. The
      // scan is racy; the claim is re-validated under the victim's lock. A
      // failed claim rescans; the loop terminates because total unclaimed
      // work only ever shrinks.
      bool stole = false;
      for (;;) {
        int victim = -1;
        size_t best = 0;
        for (int v = 0; v < slots; ++v) {
          if (v == self) continue;
          const size_t remaining =
              ranges[static_cast<size_t>(v)].RemainingApprox();
          if (remaining > best) {
            best = remaining;
            victim = v;
          }
        }
        if (victim < 0) {
          if (unclaimed.load(std::memory_order_relaxed) == 0) break;
          // A steal is mid-flight; its range will surface in a slot
          // momentarily — wait for it instead of retiring.
          std::this_thread::yield();
          continue;
        }
        StealSlot& theirs = ranges[static_cast<size_t>(victim)];
        size_t stolen_begin = 0, stolen_end = 0;
        {
          // Claim under the victim's lock only; the own-slot publish below
          // takes the own lock separately. Holding both at once could
          // deadlock when concurrent thieves pick each other as victims.
          SpinGuard guard(theirs);
          const size_t b = theirs.begin.load(std::memory_order_relaxed);
          const size_t e = theirs.end.load(std::memory_order_relaxed);
          if (b >= e) continue;  // raced with the owner; rescan
          const size_t take = (e - b + 1) / 2;
          theirs.end.store(e - take, std::memory_order_relaxed);
          stolen_begin = e - take;
          stolen_end = e;
        }
        {
          SpinGuard guard(mine);
          mine.begin.store(stolen_begin, std::memory_order_relaxed);
          mine.end.store(stolen_end, std::memory_order_relaxed);
        }
        stole = true;
        break;
      }
      if (!stole) return;
    }
  };

  for (int i = 0; i < slots; ++i) {
    pool->Submit([&worker, i] { worker(i); });
  }
  pool->Wait();
}

}  // namespace

Scheduler ResolveScheduler(Scheduler scheduler) {
  return scheduler == Scheduler::kAuto ? DefaultScheduler() : scheduler;
}

const char* SchedulerName(Scheduler scheduler) {
  switch (scheduler) {
    case Scheduler::kAuto:
      return "auto";
    case Scheduler::kStatic:
      return "static";
    case Scheduler::kWorkStealing:
      return "stealing";
  }
  return "auto";
}

bool ParseScheduler(const std::string& text, Scheduler* out) {
  if (text == "auto") {
    *out = Scheduler::kAuto;
  } else if (text == "static") {
    *out = Scheduler::kStatic;
  } else if (text == "stealing" || text == "work-stealing") {
    *out = Scheduler::kWorkStealing;
  } else {
    return false;
  }
  return true;
}

int ParallelSlots(const ThreadPool* pool) {
  return pool == nullptr ? 1 : std::max(1, pool->num_threads());
}

void ParallelForWorkStealing(ThreadPool* pool, size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  RunWorkStealing(pool, n, grain,
                  [&fn](int, size_t begin, size_t end) { fn(begin, end); });
}

void ParallelForWorkStealingSlots(
    ThreadPool* pool, size_t n, size_t grain,
    const std::function<void(int, size_t, size_t)>& fn) {
  RunWorkStealing(pool, n, grain, fn);
}

void ParallelForSched(ThreadPool* pool, Scheduler scheduler, size_t n,
                      size_t grain,
                      const std::function<void(size_t, size_t)>& fn) {
  if (ResolveScheduler(scheduler) == Scheduler::kWorkStealing) {
    ParallelForWorkStealing(pool, n, grain, fn);
  } else {
    ParallelForChunks(pool, n, grain, fn);
  }
}

}  // namespace reconcile
