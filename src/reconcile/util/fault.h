#ifndef RECONCILE_UTIL_FAULT_H_
#define RECONCILE_UTIL_FAULT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace reconcile {

/// Deterministic fault injection for crash-safety testing.
///
/// Code under test declares *named fault points*; a process-global injector
/// is armed with a spec naming which points misbehave and when. Nothing
/// fires unless armed, and every firing is deterministic (keyed on an
/// explicit value or a per-point hit counter), so a killed-and-resumed run
/// can be replayed bit for bit.
///
/// Spec grammar — entries separated by `;` or `,`, each `kind:point[=value]`:
///
///   crash:after_round=3        kill the process (`_exit(kFaultCrashExitCode)`)
///                              when value point "after_round" is reached
///                              with value 3
///   stop:after_round=2         request a graceful stop (see
///                              `util/shutdown.h`) at that point — a
///                              deterministic stand-in for SIGTERM
///   io:checkpoint_write_fail   fail the 1st hit of that io point
///   io:checkpoint_truncate=2   fire on the 2nd hit (1-based) instead
///   io:enospc_after=4          threshold io point (`FaultPointExhausted`):
///                              fires on every hit *after* the 4th — the
///                              shape of a disk filling up, where every
///                              write past the cliff fails, not just one
///   worker_crash:after_shard=5 like crash:, but fires only at
///                              `WorkerFaultPoint` sites — i.e. only inside
///                              a dist worker process, never in the
///                              coordinator that armed the same spec before
///                              forking
///
/// Arming sources, in precedence order: `MatcherConfig::fault_spec` (armed
/// by `UserMatching` when non-empty) overrides the `RECONCILE_FAULT`
/// environment variable (read once, at first injector use).
///
/// Known points (grep for the literals to find the hooks):
///   after_round            value point; value = completed round count
///   checkpoint_write_fail  io point in `SnapshotWriter::Commit` — the
///                          commit reports failure without writing
///   checkpoint_truncate    io point in `SnapshotWriter::Commit` — the
///                          commit writes only half the file but reports
///                          success (simulates a torn write on a
///                          non-atomic filesystem)
///   spill_write_fail       io point in `SpillStore::Spill` — writing a
///                          tier's backing file fails outright
///   spill_truncate         io point in `SpillStore::Spill` — the backing
///                          file is written half-length but the write
///                          reports success (torn spill; caught by the
///                          post-write size validation)
///   mmap_fail              io point in `SpillStore::Spill` — the write
///                          succeeds but mapping the file back fails
///   enospc_after           threshold io point in `SpillStore::Spill` —
///                          after N successful spill writes every later
///                          one fails as if the disk ran out of space
///   spill_commit           value point fired after each successful spill
///                          (value = spills completed so far this
///                          process) — `crash:spill_commit=k` kills the
///                          process in the middle of a budget-enforcement
///                          pass
///   serve_apply            value point in `IncrementalMatcher::ApplyBatch`
///                          (value = 1-based batch number, the initial
///                          match counting as batch 1), fired after the
///                          overlays absorbed the deltas but before the
///                          dirty links were re-emitted — the worst crash
///                          instant: retraction visible, repair pending
///   after_batch            value point in `reconcile_serve` between
///                          repairing the matching and writing the batch's
///                          checkpoint — a crash here loses exactly one
///                          batch, which the resume re-applies from the
///                          delta stream
///   worker_start           worker value point (`WorkerFaultPoint`) fired
///                          when a dist worker enters its request loop
///                          (value = worker slot, 1-based) — a
///                          `worker_crash:worker_start=k` kills worker k
///                          before it serves anything (pre-handshake death)
///   after_shard            worker value point fired after a dist worker
///                          finishes computing each shard of a round
///                          (value = global shard id) — mid-round and
///                          after-final-shard deaths
///   msg_corrupt            io point on a dist worker's RESULT send: the
///                          Nth RESULT frame has one payload byte flipped
///                          after its CRC was computed (the coordinator
///                          must detect and treat as worker loss)
///   msg_stall              io point on a dist worker's RESULT send: the
///                          worker goes silent (no result, no heartbeats)
///                          long enough for the coordinator's deadline to
///                          fire

/// Exit code of a `crash:` fault (distinguishable from aborts and clean
/// exits in kill/resume harnesses).
inline constexpr int kFaultCrashExitCode = 42;

/// Replaces the armed fault set with `spec` (empty spec = disarm all).
/// Returns false and fills `*error` on a malformed spec, leaving the
/// previously armed set untouched.
bool ArmFaults(const std::string& spec, std::string* error);

/// Parses `spec` without arming anything — for config validation layers
/// that want to reject a malformed spec early with a good diagnostic.
bool ValidateFaultSpec(const std::string& spec, std::string* error);

/// Disarms every fault and resets all hit counters.
void DisarmFaults();

/// The currently armed spec in canonical form ("" when disarmed).
std::string ArmedFaultSpec();

/// IO fault point: increments the point's hit counter and returns true when
/// an armed `io:` entry for `point` fires on this hit. Call sites treat
/// `true` as the injected failure.
bool FaultPointHit(std::string_view point);

/// Threshold io fault point: increments the point's hit counter and returns
/// true when an armed `io:` entry for `point` has a value *smaller* than
/// this hit's 1-based index — i.e. `io:point=N` lets the first N hits
/// through and fails every one after (N = 0 fails every hit). Models
/// resource exhaustion (ENOSPC), which does not clear after one failure.
bool FaultPointExhausted(std::string_view point);

/// Value fault point: fires armed `crash:` entries (terminating the process
/// via `_exit(kFaultCrashExitCode)` after flushing a diagnostic) and
/// `stop:` entries (calling `RequestGracefulStop()`) whose armed value
/// equals `value`.
void FaultValuePoint(std::string_view point, int64_t value);

/// Worker value fault point: like `FaultValuePoint` but fires only armed
/// `worker_crash:` entries. Called exclusively from dist worker processes,
/// so a spec armed in the coordinator (and inherited across fork) kills the
/// intended worker and nothing else.
void WorkerFaultPoint(std::string_view point, int64_t value);

/// `spec` minus the one-shot worker-failure entries (`worker_crash:*` and
/// the `io:msg_corrupt` / `io:msg_stall` transport faults). Respawned
/// workers re-arm with this so an injected failure fires once and the
/// retry actually recovers; retry-exhaustion tests set `worker_retry=0`
/// instead.
std::string StripWorkerFaults(const std::string& spec);

}  // namespace reconcile

#endif  // RECONCILE_UTIL_FAULT_H_
