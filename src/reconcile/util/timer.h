#ifndef RECONCILE_UTIL_TIMER_H_
#define RECONCILE_UTIL_TIMER_H_

#include <chrono>

namespace reconcile {

/// Wall-clock stopwatch used by the experiment harness and benchmarks.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace reconcile

#endif  // RECONCILE_UTIL_TIMER_H_
