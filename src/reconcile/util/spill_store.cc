#include "reconcile/util/spill_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "reconcile/util/fault.h"
#include "reconcile/util/radix_sort.h"

namespace reconcile {

namespace {

constexpr uint64_t kSpillMagic = 0x52434e53'50494c31ull;  // "RCNSPIL1"
constexpr size_t kHeaderBytes = 2 * sizeof(uint64_t);

size_t SpillFileBytes(size_t entries) {
  return kHeaderBytes + entries * (sizeof(uint64_t) + sizeof(uint32_t));
}

// write(2) with short-write and EINTR handling. Returns false on any error.
bool WriteAll(int fd, const void* data, size_t length) {
  const char* p = static_cast<const char*>(data);
  while (length > 0) {
    const ssize_t n = ::write(fd, p, length);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    length -= static_cast<size_t>(n);
  }
  return true;
}

std::string ErrnoString() {
  return std::strerror(errno);
}

}  // namespace

SpilledRun::~SpilledRun() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

SpillStore::SpillStore(std::string dir) : dir_(std::move(dir)) {}

SpillStore::~SpillStore() {
  // Individual SpilledRuns unlink their own files; nothing else to clean.
  // The directory itself is user-provided and is left in place.
}

std::unique_ptr<SpilledRun> SpillStore::Spill(const SortedCountRun& run,
                                              std::string* error) {
  if (disabled_) {
    if (error != nullptr) *error = "spilling disabled for this store";
    return nullptr;
  }
  if (!dir_ready_) {
    if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
      ++stats_.spill_failures;
      if (error != nullptr) {
        *error = "mkdir " + dir_ + ": " + ErrnoString();
      }
      return nullptr;
    }
    dir_ready_ = true;
  }

  char name[64];
  std::snprintf(name, sizeof(name), "spill-%ld-%llu.spill",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(next_id_++));
  std::string path = dir_ + "/" + name;

  const size_t n = run.keys.size();
  const size_t expect_bytes = SpillFileBytes(n);

  // A lambda so every failure exit shares the unlink-and-count epilogue.
  auto fail = [&](int fd, const std::string& what) -> std::unique_ptr<SpilledRun> {
    if (fd >= 0) ::close(fd);
    ::unlink(path.c_str());
    ++stats_.spill_failures;
    if (error != nullptr) *error = what;
    return nullptr;
  };

  const bool inject_write_fail = FaultPointHit("spill_write_fail");
  const bool inject_truncate = FaultPointHit("spill_truncate");
  const bool inject_mmap_fail = FaultPointHit("mmap_fail");
  const bool inject_enospc = FaultPointExhausted("enospc_after");

  if (inject_write_fail) {
    return fail(-1, "injected fault: spill_write_fail");
  }
  if (inject_enospc) {
    errno = ENOSPC;
    return fail(-1, "injected fault: enospc_after (" + ErrnoString() + ")");
  }

  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0644);
  if (fd < 0) {
    return fail(-1, "open " + path + ": " + ErrnoString());
  }

  const uint64_t header[2] = {kSpillMagic, static_cast<uint64_t>(n)};
  bool ok = WriteAll(fd, header, sizeof(header));
  if (ok && inject_truncate) {
    // Torn spill: write only half of the key payload, then pretend the
    // write completed. The size validation below must catch this.
    ok = WriteAll(fd, run.keys.data(), n * sizeof(uint64_t) / 2);
  } else if (ok) {
    ok = WriteAll(fd, run.keys.data(), n * sizeof(uint64_t)) &&
         WriteAll(fd, run.counts.data(), n * sizeof(uint32_t));
  }
  if (!ok && !inject_truncate) {
    return fail(fd, "write " + path + ": " + ErrnoString());
  }
  if (::fsync(fd) != 0) {
    return fail(fd, "fsync " + path + ": " + ErrnoString());
  }

  // Validate the on-disk length before trusting the file as a view: a torn
  // write (injected or a quietly-lying filesystem) must never become a
  // short mapping that reads as a valid-but-wrong run.
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return fail(fd, "fstat " + path + ": " + ErrnoString());
  }
  if (static_cast<size_t>(st.st_size) != expect_bytes) {
    return fail(fd, "short spill file " + path + " (" +
                        std::to_string(st.st_size) + " of " +
                        std::to_string(expect_bytes) + " bytes)");
  }

  void* base = nullptr;
  if (inject_mmap_fail) {
    errno = ENOMEM;
  } else if (expect_bytes > 0) {
    base = ::mmap(nullptr, expect_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) base = nullptr;
  }
  if (base == nullptr && (inject_mmap_fail || expect_bytes > 0)) {
    return fail(fd, "mmap " + path + ": " + ErrnoString());
  }
  ::close(fd);

  auto spilled = std::unique_ptr<SpilledRun>(new SpilledRun());
  spilled->map_base_ = base;
  spilled->map_length_ = expect_bytes;
  spilled->size_ = n;
  spilled->file_bytes_ = expect_bytes;
  spilled->path_ = std::move(path);
  if (base != nullptr) {
    const char* bytes = static_cast<const char*>(base);
    const uint64_t* hdr = reinterpret_cast<const uint64_t*>(bytes);
    if (hdr[0] != kSpillMagic || hdr[1] != n) {
      // Can only happen if the filesystem lied end to end; treat as torn.
      ++stats_.spill_failures;
      if (error != nullptr) *error = "corrupt spill header in " + spilled->path();
      return nullptr;  // SpilledRun dtor unmaps + unlinks
    }
    spilled->keys_ = reinterpret_cast<const uint64_t*>(bytes + kHeaderBytes);
    spilled->counts_ = reinterpret_cast<const uint32_t*>(
        bytes + kHeaderBytes + n * sizeof(uint64_t));
  }

  ++stats_.tiers_spilled;
  stats_.bytes_spilled += expect_bytes;
  // Value point for crash-mid-enforcement tests: crash:spill_commit=k kills
  // the process right after the k-th successful spill of this process.
  FaultValuePoint("spill_commit",
                  static_cast<int64_t>(stats_.tiers_spilled));
  return spilled;
}

}  // namespace reconcile
