#ifndef RECONCILE_UTIL_PARALLEL_FOR_H_
#define RECONCILE_UTIL_PARALLEL_FOR_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "reconcile/util/thread_pool.h"

namespace reconcile {

/// How a parallel loop distributes its iterations across pool workers.
///
/// Both schedulers execute every index of `[0, n)` exactly once on disjoint
/// subranges, so any loop body whose aggregation is partition-independent
/// (commutative sums, per-index writes, CAS-max folds — everything in this
/// codebase's hot paths) produces bit-identical results under either one.
/// They differ only in how work moves to idle threads, which is what decides
/// wall-clock on skewed inputs (hub nodes make per-item cost heavy-tailed).
enum class Scheduler {
  /// Resolve at the call site: the `RECONCILE_SCHEDULER` environment
  /// variable ("static" | "stealing") when set, otherwise work-stealing.
  kAuto,
  /// Fixed contiguous chunks of `grain` items submitted to the pool queue up
  /// front (`ParallelForChunks`). Reference scheduler: no rebalancing, so a
  /// chunk that lands on a hub serializes its whole tail.
  kStatic,
  /// Work-stealing: `[0, n)` is pre-split into one contiguous range per
  /// worker slot; each worker consumes its own range from the front in
  /// `grain`-sized chunks, and an idle worker steals the back half of the
  /// fullest remaining range. Imbalance is repaired while the loop runs
  /// instead of being fixed by up-front chunk sizing.
  kWorkStealing,
};

/// Maps `kAuto` onto the process-wide default (environment override or
/// work-stealing); explicit values pass through unchanged.
Scheduler ResolveScheduler(Scheduler scheduler);

/// "auto" | "static" | "stealing".
const char* SchedulerName(Scheduler scheduler);

/// Parses "static" | "stealing" (also "work-stealing") | "auto".
bool ParseScheduler(const std::string& text, Scheduler* out);

/// Number of worker slots a work-stealing loop on `pool` uses: one per pool
/// thread (1 when `pool` is null). Callers keeping per-slot accumulation
/// buffers size them with this.
int ParallelSlots(const ThreadPool* pool);

/// Work-stealing parallel-for over `[0, n)`: invokes `fn(begin, end)` on
/// disjoint chunks of at most `grain` items until the range is exhausted,
/// blocking until all chunks complete. Which indices land in which call (and
/// on which thread) depends on the steal schedule, so `fn` must be
/// partition-agnostic as well as race-free on disjoint ranges. Runs serially
/// when `pool` is null, has fewer than two threads, or `n <= grain`.
void ParallelForWorkStealing(ThreadPool* pool, size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn);

/// Slot-aware variant: `fn(slot, begin, end)` where `slot` identifies the
/// executing worker (stable for the duration of the loop, in
/// `[0, ParallelSlots(pool))`). This is the hook for per-worker accumulation
/// buffers — each slot's buffer is touched by exactly one thread, with no
/// relation between slot and index range beyond disjointness.
void ParallelForWorkStealingSlots(
    ThreadPool* pool, size_t n, size_t grain,
    const std::function<void(int, size_t, size_t)>& fn);

/// Dispatches to `ParallelForChunks` (static) or `ParallelForWorkStealing`
/// per the resolved scheduler. `kAuto` follows the process default.
void ParallelForSched(ThreadPool* pool, Scheduler scheduler, size_t n,
                      size_t grain,
                      const std::function<void(size_t, size_t)>& fn);

/// Producer-loop helper shared by the delta-accumulating map phases (witness
/// emission, the mr map phases): runs `fn(delta, begin, end)` over disjoint
/// chunks of `[0, n)` and returns the producer-local accumulators for a
/// subsequent merge. Static scheduling keeps one producer per fixed chunk
/// (`num_static_producers` chunks — the historical per-chunk delta layout);
/// work-stealing keeps one per worker slot (fewer, larger deltas), claiming
/// `stealing_grain` items per lock acquisition. A delta is only ever touched
/// by one thread at a time, but which items land in which delta depends on
/// the schedule — `fn` must aggregate commutatively so the partition stays
/// unobservable after the merge. Producers that receive no items are left
/// default-constructed.
template <typename Delta, typename Fn>
std::vector<Delta> ParallelProduce(ThreadPool* pool, Scheduler scheduler,
                                   size_t n, size_t num_static_producers,
                                   size_t stealing_grain, Fn&& fn) {
  std::vector<Delta> deltas;
  if (ResolveScheduler(scheduler) == Scheduler::kWorkStealing) {
    deltas.resize(static_cast<size_t>(ParallelSlots(pool)));
    ParallelForWorkStealingSlots(
        pool, n, stealing_grain,
        [&deltas, &fn](int slot, size_t begin, size_t end) {
          fn(deltas[static_cast<size_t>(slot)], begin, end);
        });
    return deltas;
  }
  const size_t producers =
      std::max<size_t>(1, std::min(n, num_static_producers));
  const size_t grain = (n + producers - 1) / producers;
  deltas.resize(producers);
  if (pool == nullptr) {
    if (n > 0) fn(deltas[0], 0, n);
    return deltas;
  }
  size_t index = 0;
  for (size_t lo = 0; lo < n; lo += grain, ++index) {
    const size_t hi = std::min(n, lo + grain);
    Delta& delta = deltas[index];
    pool->Submit([&fn, &delta, lo, hi] { fn(delta, lo, hi); });
  }
  pool->Wait();
  return deltas;
}

}  // namespace reconcile

#endif  // RECONCILE_UTIL_PARALLEL_FOR_H_
