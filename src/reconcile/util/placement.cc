#include "reconcile/util/placement.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace reconcile {

namespace {

PlacementPolicy DefaultPolicy(const MachineTopology& topo) {
  const char* env = std::getenv("RECONCILE_PLACEMENT");
  PlacementPolicy parsed;
  if (env != nullptr && ParsePlacement(env, &parsed) &&
      parsed != PlacementPolicy::kAuto) {
    return parsed;
  }
  // Domain homing is the right default wherever it can matter; on
  // single-domain hosts every policy is equivalent, so report the cheaper
  // truth.
  return topo.multi_domain() ? PlacementPolicy::kDomain
                             : PlacementPolicy::kNone;
}

// Per-domain claim cursor, cache-line padded: every claim is one
// fetch_add, so false sharing between domains' cursors would serialize
// exactly the traffic placement exists to keep apart.
struct alignas(64) DomainCursor {
  std::atomic<size_t> next{0};
};

}  // namespace

PlacementPolicy ResolvePlacement(PlacementPolicy policy,
                                 const MachineTopology& topo) {
  return policy == PlacementPolicy::kAuto ? DefaultPolicy(topo) : policy;
}

const char* PlacementName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kAuto:
      return "auto";
    case PlacementPolicy::kNone:
      return "none";
    case PlacementPolicy::kInterleave:
      return "interleave";
    case PlacementPolicy::kDomain:
      return "domain";
  }
  return "auto";
}

bool ParsePlacement(const std::string& text, PlacementPolicy* out) {
  if (text == "auto") {
    *out = PlacementPolicy::kAuto;
  } else if (text == "none") {
    *out = PlacementPolicy::kNone;
  } else if (text == "interleave") {
    *out = PlacementPolicy::kInterleave;
  } else if (text == "domain") {
    *out = PlacementPolicy::kDomain;
  } else {
    return false;
  }
  return true;
}

ShardPlacement::ShardPlacement(const MachineTopology& topo,
                               PlacementPolicy policy, int num_shards,
                               int num_workers)
    : topo_(topo),
      policy_(ResolvePlacement(policy, topo)),
      num_shards_(std::max(1, num_shards)) {
  active_ = policy_ != PlacementPolicy::kNone && topo_.multi_domain();
  if (!active_) return;

  const int domains = topo_.num_domains();
  shard_domain_.resize(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    shard_domain_[static_cast<size_t>(s)] =
        policy_ == PlacementPolicy::kInterleave
            ? s % domains
            : static_cast<int>(static_cast<size_t>(s) *
                               static_cast<size_t>(domains) /
                               static_cast<size_t>(num_shards_));
  }

  // Contiguous worker blocks per domain, proportional to CPU counts so a
  // lopsided machine (or a memory-only-node survivor) still gets its share
  // of workers. Synthetic domains have no CPU lists and weigh equally.
  const int workers = std::max(1, num_workers);
  std::vector<size_t> weight(static_cast<size_t>(domains), 1);
  size_t total = 0;
  for (int d = 0; d < domains; ++d) {
    const size_t cpus = topo_.domains[static_cast<size_t>(d)].cpus.size();
    if (cpus > 0) weight[static_cast<size_t>(d)] = cpus;
    total += weight[static_cast<size_t>(d)];
  }
  worker_domain_.resize(static_cast<size_t>(workers));
  size_t cumulative = 0;
  int domain = 0;
  for (int w = 0; w < workers; ++w) {
    // Worker w sits at fraction w/W of the pool; advance the domain until
    // its cumulative weight window covers that point.
    const size_t point = static_cast<size_t>(w) * total;
    while (domain + 1 < domains &&
           point >= (cumulative + weight[static_cast<size_t>(domain)]) *
                        static_cast<size_t>(workers)) {
      cumulative += weight[static_cast<size_t>(domain)];
      ++domain;
    }
    worker_domain_[static_cast<size_t>(w)] = domain;
  }
}

void ShardPlacement::PinWorkers(ThreadPool* pool) const {
  if (!active_ || topo_.synthetic || pool == nullptr) return;
  for (int w = 0; w < pool->num_threads(); ++w) {
    const int d = DomainOfWorker(w);
    pool->PinWorkerToCpus(w, topo_.domains[static_cast<size_t>(d)].cpus);
  }
}

void ShardPlacement::ParallelForPlaced(
    ThreadPool* pool, Scheduler scheduler, size_t n,
    const std::function<int(size_t)>& domain_of,
    const std::function<void(size_t)>& fn, PlacedLoopStats* stats) const {
  if (!active_ || pool == nullptr || pool->num_threads() < 2 || n < 2) {
    // Pre-placement loop shape: per-item tasks under the configured
    // scheduler (all call sites used grain 1 for their cell loops).
    ParallelForSched(pool, scheduler, n, 1, [&fn](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
    if (stats != nullptr) stats->local_tasks += n;
    return;
  }

  // Bucket items by home domain (deterministic: input order within each
  // bucket). Which worker executes an item is schedule-dependent, so `fn`
  // must stay partition-independent — same contract as ParallelForSched.
  const int domains = topo_.num_domains();
  std::vector<std::vector<uint32_t>> buckets(static_cast<size_t>(domains));
  for (size_t i = 0; i < n; ++i) {
    const int d =
        std::clamp(domain_of(i), 0, domains - 1);
    buckets[static_cast<size_t>(d)].push_back(static_cast<uint32_t>(i));
  }

  std::vector<DomainCursor> cursors(static_cast<size_t>(domains));
  std::atomic<size_t> local_total{0};
  std::atomic<size_t> remote_total{0};

  const int tasks = static_cast<int>(
      std::min<size_t>(n, static_cast<size_t>(pool->num_threads())));
  for (int t = 0; t < tasks; ++t) {
    pool->Submit([this, t, domains, &buckets, &cursors, &fn, &local_total,
                  &remote_total] {
      // Locality follows the executing thread (which PinWorkers bound to a
      // domain), not the submission slot — any worker may pick this task.
      int worker = ThreadPool::CurrentWorkerIndex();
      if (worker < 0) worker = t;
      const int home = DomainOfWorker(worker);
      auto& home_bucket = buckets[static_cast<size_t>(home)];
      auto& home_cursor = cursors[static_cast<size_t>(home)].next;
      size_t local = 0, remote = 0;
      bool home_dry = false;
      for (;;) {
        uint32_t item = 0;
        bool is_local = false;
        if (!home_dry) {
          const size_t idx = home_cursor.fetch_add(1, std::memory_order_relaxed);
          if (idx < home_bucket.size()) {
            item = home_bucket[idx];
            is_local = true;
          } else {
            home_dry = true;
          }
        }
        if (!is_local) {
          // Home domain dry: steal from the remote domain with the most
          // unclaimed items (racy estimate; the fetch_add claim is the
          // authority, a lost race just rescans).
          int victim = -1;
          size_t best = 0;
          for (int v = 0; v < domains; ++v) {
            if (v == home) continue;
            const size_t size = buckets[static_cast<size_t>(v)].size();
            const size_t cur =
                cursors[static_cast<size_t>(v)].next.load(
                    std::memory_order_relaxed);
            const size_t remaining = cur < size ? size - cur : 0;
            if (remaining > best) {
              best = remaining;
              victim = v;
            }
          }
          if (victim < 0) break;  // every domain drained — retire
          const size_t idx = cursors[static_cast<size_t>(victim)].next
                                 .fetch_add(1, std::memory_order_relaxed);
          if (idx >= buckets[static_cast<size_t>(victim)].size()) continue;
          item = buckets[static_cast<size_t>(victim)][idx];
        }
        fn(item);
        if (is_local) {
          ++local;
        } else {
          ++remote;
        }
      }
      local_total.fetch_add(local, std::memory_order_relaxed);
      remote_total.fetch_add(remote, std::memory_order_relaxed);
    });
  }
  pool->Wait();

  if (stats != nullptr) {
    stats->local_tasks += local_total.load();
    stats->remote_steals += remote_total.load();
  }
}

}  // namespace reconcile
