#ifndef RECONCILE_UTIL_SPILL_STORE_H_
#define RECONCILE_UTIL_SPILL_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace reconcile {

struct SortedCountRun;

/// Out-of-core backing store for the LSM-tiered score state.
///
/// At the paper's target scale the persistent per-(level, shard) sorted runs
/// dominate RAM. `SpillStore` moves cold tiers to disk: a tier is written as
/// one flat file under a score directory and mapped back read-only, so the
/// matcher keeps only a pointer-sized view resident while every consumer
/// (the selection `ForEach` k-way merge, snapshot serialization, tier
/// compaction) streams the same bytes it would have read from the resident
/// vectors. Scans over spilled tiers are purely sequential — exactly the
/// access pattern mmap streaming rewards and the radix backend's design
/// premise — so matchings are bit-identical to the all-resident run by
/// construction.
///
/// File format (host-endian, same-architecture scratch — spill files are
/// transient per-process state, not durable interchange):
///
///   [magic u64][entry count u64][keys u64 × n][counts u32 × n]
///
/// The writer fsyncs and validates the on-disk length before mapping; a torn
/// or short file is a clean spill failure, never a wrong view. Every failure
/// mode — create/write failure, ENOSPC, a torn write, a failed mmap — makes
/// `Spill` return null with a diagnostic and leaves no file behind; the
/// caller keeps the resident copy (graceful degradation: losing the spill
/// only costs memory headroom, never correctness). Injectable faults (see
/// `util/fault.h`): `io:spill_write_fail`, `io:spill_truncate`,
/// `io:mmap_fail`, `io:enospc_after=N`, and the `spill_commit` value point
/// for `crash:` kills mid-enforcement.
///
/// Files are named `spill-<pid>-<seq>.spill`; the store unlinks every file
/// it created on destruction (and each file as its tier is unspilled), so a
/// clean exit — including a graceful SIGINT/SIGTERM stop — leaves the score
/// directory empty. Only a hard crash leaves scratch behind, and a resumed
/// process never reads stale spill files: checkpoints inline the tier
/// payloads, so spill files are never part of durable state.

/// A read-only, file-backed sorted `(key, count)` run: the spilled form of
/// one LSM tier. Owns the mapping and the backing file (unlinked on
/// destruction). Move-only.
class SpilledRun {
 public:
  ~SpilledRun();
  SpilledRun(const SpilledRun&) = delete;
  SpilledRun& operator=(const SpilledRun&) = delete;

  const uint64_t* keys() const { return keys_; }
  const uint32_t* counts() const { return counts_; }
  size_t size() const { return size_; }
  /// Bytes of the backing file (what the spill freed, modulo page cache).
  size_t file_bytes() const { return file_bytes_; }
  const std::string& path() const { return path_; }

 private:
  friend class SpillStore;
  SpilledRun() = default;

  const uint64_t* keys_ = nullptr;
  const uint32_t* counts_ = nullptr;
  size_t size_ = 0;
  size_t file_bytes_ = 0;
  void* map_base_ = nullptr;
  size_t map_length_ = 0;
  std::string path_;
};

/// Running totals of a store's spill activity (monotonic per store).
struct SpillStats {
  size_t tiers_spilled = 0;   ///< Successful spills.
  size_t bytes_spilled = 0;   ///< Sum of backing-file bytes written.
  size_t spill_failures = 0;  ///< Spills that fell back to resident.
};

/// Creates, tracks and cleans up the spill files of one matcher run.
/// Not thread-safe: the budget-enforcement pass that calls `Spill` runs on
/// one thread (readers of the returned `SpilledRun` views are lock-free and
/// may be many).
class SpillStore {
 public:
  /// Does not touch the filesystem; the directory is created lazily on the
  /// first spill (a run that never exceeds its budget never does I/O).
  explicit SpillStore(std::string dir);
  ~SpillStore();

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  /// Writes `run` to a fresh backing file and maps it read-only. Returns
  /// null with `*error` set on any failure (injected or real); no file is
  /// left behind on failure. After `Disable()` (or once `disabled()` trips
  /// internally), returns null immediately without touching the disk.
  std::unique_ptr<SpilledRun> Spill(const SortedCountRun& run,
                                    std::string* error);

  /// Permanently stops spilling for this store (graceful degradation after
  /// repeated failures — the run continues all-resident).
  void Disable() { disabled_ = true; }
  bool disabled() const { return disabled_; }

  const SpillStats& stats() const { return stats_; }

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  bool dir_ready_ = false;
  bool disabled_ = false;
  uint64_t next_id_ = 0;
  SpillStats stats_;
};

}  // namespace reconcile

#endif  // RECONCILE_UTIL_SPILL_STORE_H_
