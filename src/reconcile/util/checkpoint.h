#ifndef RECONCILE_UTIL_CHECKPOINT_H_
#define RECONCILE_UTIL_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace reconcile {

/// Binary snapshot substrate for crash-safe checkpoint/resume.
///
/// A snapshot is a single file of typed *sections*, each independently
/// CRC32-checksummed, behind a magic + format-version header:
///
///   [magic u64][format version u32][section count u32]
///   per section: [id u32][payload length u64][payload crc32 u32][payload]
///
/// (host-endian; v1 targets same-architecture resume). The reader verifies
/// the header, walks the section table bounds-checked, and recomputes every
/// CRC before handing out a single byte — a truncated, bit-flipped or
/// version-skewed file is a clean `Open` failure with a diagnostic, never a
/// crash or a silent partial load. Payload cursors are bounds-checked too,
/// and vector reads cap their allocation by the bytes actually present, so
/// a corrupt length field cannot trigger an absurd allocation.
///
/// `SnapshotWriter::Commit` is atomic: payload goes to `<path>.tmp`, is
/// fsync'd, then renamed over `path` (and the directory fsync'd), so a
/// crash mid-write never leaves a half-written snapshot under the final
/// name. Commit honors the `checkpoint_write_fail` / `checkpoint_truncate`
/// fault points (see `util/fault.h`) so recovery paths are testable.

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320). `crc` chains calls.
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

inline constexpr uint64_t kSnapshotMagic = 0x31504b4345525350ULL;  // "PSRECKP1"
inline constexpr uint32_t kSnapshotFormatVersion = 1;

class SnapshotWriter {
 public:
  /// Opens a new section. Sections may not nest.
  void BeginSection(uint32_t id);
  void EndSection();

  void AppendBytes(const void* data, size_t size);
  void AppendU8(uint8_t value) { AppendBytes(&value, sizeof(value)); }
  void AppendU32(uint32_t value) { AppendBytes(&value, sizeof(value)); }
  void AppendU64(uint64_t value) { AppendBytes(&value, sizeof(value)); }
  void AppendI32(int32_t value) { AppendBytes(&value, sizeof(value)); }
  void AppendI64(int64_t value) { AppendBytes(&value, sizeof(value)); }

  /// Element count (u64) followed by the raw element bytes. `T` must be
  /// trivially copyable.
  template <typename T>
  void AppendVector(const std::vector<T>& values) {
    AppendU64(values.size());
    AppendBytes(values.data(), values.size() * sizeof(T));
  }

  /// Assembles the snapshot and writes it atomically. Returns false with a
  /// diagnostic in `*error` on any I/O failure (the final path is left
  /// untouched — at worst a stale `<path>.tmp` remains).
  bool Commit(const std::string& path, std::string* error) const;

 private:
  struct Section {
    uint32_t id;
    std::vector<uint8_t> payload;
  };
  std::vector<Section> sections_;
  bool in_section_ = false;
};

class SnapshotReader {
 public:
  /// Read-only cursor over one section's payload. All reads are
  /// bounds-checked: a read past the end returns false and poisons the
  /// cursor (`ok()` turns false) without touching the output.
  class Section {
   public:
    bool ReadBytes(void* out, size_t size);
    bool ReadU8(uint8_t* out) { return ReadBytes(out, sizeof(*out)); }
    bool ReadU32(uint32_t* out) { return ReadBytes(out, sizeof(*out)); }
    bool ReadU64(uint64_t* out) { return ReadBytes(out, sizeof(*out)); }
    bool ReadI32(int32_t* out) { return ReadBytes(out, sizeof(*out)); }
    bool ReadI64(int64_t* out) { return ReadBytes(out, sizeof(*out)); }

    /// Counterpart of `SnapshotWriter::AppendVector`. Fails (without
    /// allocating) if the declared element count does not fit in the
    /// remaining payload bytes.
    template <typename T>
    bool ReadVector(std::vector<T>* out) {
      uint64_t count = 0;
      if (!ReadU64(&count)) return false;
      if (count > Remaining() / sizeof(T)) {
        ok_ = false;
        return false;
      }
      out->resize(static_cast<size_t>(count));
      return ReadBytes(out->data(), static_cast<size_t>(count) * sizeof(T));
    }

    size_t Remaining() const { return payload_.size() - cursor_; }
    bool AtEnd() const { return cursor_ == payload_.size(); }
    bool ok() const { return ok_; }
    uint32_t id() const { return id_; }

   private:
    friend class SnapshotReader;
    uint32_t id_ = 0;
    std::vector<uint8_t> payload_;
    size_t cursor_ = 0;
    bool ok_ = true;
  };

  /// Loads and fully validates `path` (magic, version, section bounds, every
  /// CRC). Returns false with a diagnostic on any defect.
  bool Open(const std::string& path, std::string* error);

  /// Cursor for the first section with `id`, or nullptr if absent. The
  /// cursor is owned by the reader and reset on each call.
  Section* Find(uint32_t id);

  size_t num_sections() const { return sections_.size(); }

 private:
  std::vector<Section> sections_;
};

/// `dir`/state-round-NNNNNN.ckpt — the canonical checkpoint name for the
/// state after `round` completed rounds.
std::string CheckpointPath(const std::string& dir, int round);

struct CheckpointFile {
  int round = 0;
  std::string path;
};

/// Checkpoint files in `dir`, ascending by round. Unparseable names are
/// skipped; a missing/unreadable dir yields an empty list.
std::vector<CheckpointFile> ListCheckpoints(const std::string& dir);

/// Retention: deletes all but the newest `keep` checkpoints in `dir`
/// (`keep` <= 0 is a no-op — keep everything). Returns the number of files
/// removed; an unlink failure skips that file and fills `*error` with the
/// first diagnostic (callers treat prune failures as non-fatal — the extra
/// snapshot costs disk, not correctness).
size_t PruneCheckpoints(const std::string& dir, int keep, std::string* error);

/// Prefix-parameterized variants of the three helpers above, for
/// subsystems that keep their own checkpoint families in a directory
/// (`reconcile_serve` uses prefix "serve-batch-"; the batch matcher's
/// "state-round-" functions delegate here). The `.ckpt` suffix and the
/// six-digit zero-padded counter are shared.
std::string CheckpointPathWithPrefix(const std::string& dir,
                                     const std::string& prefix, int round);
std::vector<CheckpointFile> ListCheckpointsWithPrefix(
    const std::string& dir, const std::string& prefix);
size_t PruneCheckpointsWithPrefix(const std::string& dir,
                                  const std::string& prefix, int keep,
                                  std::string* error);

/// mkdir -p. Returns false with a diagnostic if a component cannot be
/// created.
bool EnsureDir(const std::string& dir, std::string* error);

}  // namespace reconcile

#endif  // RECONCILE_UTIL_CHECKPOINT_H_
