#include "reconcile/util/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "reconcile/util/fault.h"
#include "reconcile/util/logging.h"

namespace reconcile {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

std::string ErrnoString() { return std::strerror(errno); }

// Full write with EINTR handling; returns false on any short/failed write.
bool WriteAll(int fd, const void* data, size_t size) {
  const char* cursor = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t written = ::write(fd, cursor, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += written;
    remaining -= static_cast<size_t>(written);
  }
  return true;
}

bool FsyncDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, std::max<size_t>(1, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

constexpr char kCheckpointPrefix[] = "state-round-";
constexpr char kCheckpointSuffix[] = ".ckpt";

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t crc) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  crc = ~crc;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xffu];
  }
  return ~crc;
}

void SnapshotWriter::BeginSection(uint32_t id) {
  RECONCILE_CHECK(!in_section_) << "BeginSection inside an open section";
  sections_.push_back(Section{id, {}});
  in_section_ = true;
}

void SnapshotWriter::EndSection() {
  RECONCILE_CHECK(in_section_) << "EndSection without BeginSection";
  in_section_ = false;
}

void SnapshotWriter::AppendBytes(const void* data, size_t size) {
  RECONCILE_CHECK(in_section_) << "Append outside a section";
  if (size == 0) return;
  std::vector<uint8_t>& payload = sections_.back().payload;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  payload.insert(payload.end(), bytes, bytes + size);
}

bool SnapshotWriter::Commit(const std::string& path,
                            std::string* error) const {
  RECONCILE_CHECK(!in_section_) << "Commit with an open section";
  if (FaultPointHit("checkpoint_write_fail")) {
    *error = "injected fault: checkpoint_write_fail";
    return false;
  }

  // Assemble the whole snapshot in memory (checkpoints are a small fraction
  // of the score state they serialize — one buffer keeps the write path to
  // a single syscall sequence).
  std::vector<uint8_t> blob;
  auto append = [&blob](const void* data, size_t size) {
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    blob.insert(blob.end(), bytes, bytes + size);
  };
  const uint64_t magic = kSnapshotMagic;
  const uint32_t version = kSnapshotFormatVersion;
  const uint32_t count = static_cast<uint32_t>(sections_.size());
  append(&magic, sizeof(magic));
  append(&version, sizeof(version));
  append(&count, sizeof(count));
  for (const Section& section : sections_) {
    const uint64_t length = section.payload.size();
    const uint32_t crc = Crc32(section.payload.data(), section.payload.size());
    append(&section.id, sizeof(section.id));
    append(&length, sizeof(length));
    append(&crc, sizeof(crc));
    append(section.payload.data(), section.payload.size());
  }

  // Torn-write fault: persist only the first half under the final name via
  // the normal rename path, then report success — what a crash on a
  // non-atomic filesystem would leave behind.
  size_t write_size = blob.size();
  bool truncate_fault = false;
  if (FaultPointHit("checkpoint_truncate")) {
    write_size = blob.size() / 2;
    truncate_fault = true;
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *error = "cannot create " + tmp + ": " + ErrnoString();
    return false;
  }
  if (!WriteAll(fd, blob.data(), write_size)) {
    *error = "write to " + tmp + " failed: " + ErrnoString();
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0) {
    *error = "fsync of " + tmp + " failed: " + ErrnoString();
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    *error = "close of " + tmp + " failed: " + ErrnoString();
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename " + tmp + " -> " + path + " failed: " + ErrnoString();
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable. Failure here is not fatal to the
  // caller: the file is visible and valid, only its durability is weaker.
  if (!FsyncDirOf(path)) {
    RECONCILE_LOG(Warning) << "directory fsync after committing " << path
                           << " failed: " << ErrnoString();
  }
  (void)truncate_fault;
  return true;
}

bool SnapshotReader::Section::ReadBytes(void* out, size_t size) {
  if (!ok_) return false;
  if (size > payload_.size() - cursor_) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, payload_.data() + cursor_, size);
  cursor_ += size;
  return true;
}

bool SnapshotReader::Open(const std::string& path, std::string* error) {
  sections_.clear();
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    *error = "cannot open " + path + ": " + ErrnoString();
    return false;
  }
  std::fseek(file, 0, SEEK_END);
  const long file_size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (file_size < 0) {
    *error = "cannot stat " + path + ": " + ErrnoString();
    std::fclose(file);
    return false;
  }
  std::vector<uint8_t> blob(static_cast<size_t>(file_size));
  const size_t read =
      blob.empty() ? 0 : std::fread(blob.data(), 1, blob.size(), file);
  std::fclose(file);
  if (read != blob.size()) {
    *error = "short read of " + path;
    return false;
  }

  size_t cursor = 0;
  auto take = [&blob, &cursor](void* out, size_t size) {
    if (size > blob.size() - cursor) return false;
    std::memcpy(out, blob.data() + cursor, size);
    cursor += size;
    return true;
  };
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!take(&magic, sizeof(magic)) || magic != kSnapshotMagic) {
    *error = path + ": not a snapshot (bad magic)";
    return false;
  }
  if (!take(&version, sizeof(version)) || version != kSnapshotFormatVersion) {
    *error = path + ": unsupported snapshot format version " +
             std::to_string(version) + " (want " +
             std::to_string(kSnapshotFormatVersion) + ")";
    return false;
  }
  if (!take(&count, sizeof(count))) {
    *error = path + ": truncated header";
    return false;
  }
  std::vector<Section> sections;
  for (uint32_t i = 0; i < count; ++i) {
    Section section;
    uint64_t length = 0;
    uint32_t crc = 0;
    if (!take(&section.id_, sizeof(section.id_)) ||
        !take(&length, sizeof(length)) || !take(&crc, sizeof(crc))) {
      *error = path + ": truncated section header (section " +
               std::to_string(i) + " of " + std::to_string(count) + ")";
      return false;
    }
    if (length > blob.size() - cursor) {
      *error = path + ": truncated section payload (section " +
               std::to_string(i) + " declares " + std::to_string(length) +
               " bytes, " + std::to_string(blob.size() - cursor) +
               " remain)";
      return false;
    }
    section.payload_.assign(blob.begin() + static_cast<ptrdiff_t>(cursor),
                            blob.begin() +
                                static_cast<ptrdiff_t>(cursor + length));
    cursor += static_cast<size_t>(length);
    const uint32_t actual =
        Crc32(section.payload_.data(), section.payload_.size());
    if (actual != crc) {
      *error = path + ": checksum mismatch in section id " +
               std::to_string(section.id_);
      return false;
    }
    sections.push_back(std::move(section));
  }
  if (cursor != blob.size()) {
    *error = path + ": trailing garbage after the last section";
    return false;
  }
  sections_ = std::move(sections);
  return true;
}

SnapshotReader::Section* SnapshotReader::Find(uint32_t id) {
  for (Section& section : sections_) {
    if (section.id_ == id) {
      section.cursor_ = 0;
      section.ok_ = true;
      return &section;
    }
  }
  return nullptr;
}

std::string CheckpointPathWithPrefix(const std::string& dir,
                                     const std::string& prefix, int round) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%06d", round);
  return dir + "/" + prefix + digits + kCheckpointSuffix;
}

std::string CheckpointPath(const std::string& dir, int round) {
  return CheckpointPathWithPrefix(dir, kCheckpointPrefix, round);
}

std::vector<CheckpointFile> ListCheckpointsWithPrefix(
    const std::string& dir, const std::string& prefix) {
  std::vector<CheckpointFile> found;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return found;
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    const size_t prefix_len = prefix.size();
    const size_t suffix_len = sizeof(kCheckpointSuffix) - 1;
    if (name.size() <= prefix_len + suffix_len ||
        name.compare(0, prefix_len, prefix) != 0 ||
        name.compare(name.size() - suffix_len, suffix_len,
                     kCheckpointSuffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    CheckpointFile file;
    file.round = std::atoi(digits.c_str());
    file.path = dir + "/" + name;
    found.push_back(std::move(file));
  }
  ::closedir(handle);
  std::sort(found.begin(), found.end(),
            [](const CheckpointFile& a, const CheckpointFile& b) {
              return a.round < b.round;
            });
  return found;
}

std::vector<CheckpointFile> ListCheckpoints(const std::string& dir) {
  return ListCheckpointsWithPrefix(dir, kCheckpointPrefix);
}

size_t PruneCheckpointsWithPrefix(const std::string& dir,
                                  const std::string& prefix, int keep,
                                  std::string* error) {
  if (keep <= 0) return 0;
  std::vector<CheckpointFile> checkpoints =
      ListCheckpointsWithPrefix(dir, prefix);
  if (checkpoints.size() <= static_cast<size_t>(keep)) return 0;
  size_t removed = 0;
  const size_t excess = checkpoints.size() - static_cast<size_t>(keep);
  for (size_t i = 0; i < excess; ++i) {  // ascending => oldest first
    if (::unlink(checkpoints[i].path.c_str()) == 0) {
      ++removed;
    } else if (error != nullptr && error->empty()) {
      *error = "unlink " + checkpoints[i].path + ": " + ErrnoString();
    }
  }
  return removed;
}

size_t PruneCheckpoints(const std::string& dir, int keep, std::string* error) {
  return PruneCheckpointsWithPrefix(dir, kCheckpointPrefix, keep, error);
}

bool EnsureDir(const std::string& dir, std::string* error) {
  if (dir.empty()) {
    *error = "empty directory path";
    return false;
  }
  std::string partial;
  size_t begin = 0;
  while (begin <= dir.size()) {
    size_t end = dir.find('/', begin);
    if (end == std::string::npos) end = dir.size();
    partial = dir.substr(0, end == 0 ? 1 : end);
    begin = end + 1;
    if (partial.empty() || partial == "/" || partial == ".") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      *error = "cannot create directory " + partial + ": " + ErrnoString();
      return false;
    }
  }
  return true;
}

}  // namespace reconcile
