#include "reconcile/util/thread_pool.h"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace reconcile {

namespace {

// Worker identity of the calling thread. -1 outside pool workers. A thread
// belongs to exactly one pool for its whole lifetime, so a plain index
// (rather than a (pool, index) pair) is unambiguous for the pool's own
// loops, which are the only consumers.
thread_local int t_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

int ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

bool ThreadPool::PinWorkerToCpus(int worker, const std::vector<int>& cpus) {
  if (worker < 0 || worker >= num_threads() || cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : cpus) {
    if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
    CPU_SET(cpu, &set);
  }
  return pthread_setaffinity_np(
             workers_[static_cast<size_t>(worker)].native_handle(),
             sizeof(set), &set) == 0;
#else
  return false;
#endif
}

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(DefaultThreads());
  return pool;
}

size_t ThreadPool::GrainSize(size_t n, int num_threads, size_t min_grain,
                             int tasks_per_thread) {
  const size_t tasks = static_cast<size_t>(std::max(1, num_threads)) *
                       static_cast<size_t>(std::max(1, tasks_per_thread));
  return std::max(std::max<size_t>(1, min_grain), (n + tasks - 1) / tasks);
}

void ParallelForChunks(ThreadPool* pool, size_t n, size_t grain,
                       const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t step = std::max<size_t>(1, grain);
  if (pool == nullptr || step >= n) {
    fn(0, n);
    return;
  }
  for (size_t begin = 0; begin < n; begin += step) {
    size_t end = std::min(n, begin + step);
    pool->Submit([begin, end, &fn] { fn(begin, end); });
  }
  pool->Wait();
}

void ThreadPool::WorkerLoop(int worker_index) {
  t_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace reconcile
