#ifndef RECONCILE_UTIL_TOPOLOGY_H_
#define RECONCILE_UTIL_TOPOLOGY_H_

#include <string>
#include <vector>

namespace reconcile {

/// One memory domain of the machine (a NUMA node / socket): an id and the
/// CPUs whose accesses to that domain's memory are local. `cpus` is empty
/// for synthetic domains (test topologies have no hardware behind them).
struct TopologyDomain {
  int id = 0;
  std::vector<int> cpus;
};

/// The machine's memory topology as the placement layer sees it: a flat
/// list of domains. Exactly one domain means placement degenerates to
/// today's behavior everywhere (the single-domain fallback all non-Linux
/// and single-socket hosts take).
struct MachineTopology {
  std::vector<TopologyDomain> domains;
  /// True when the domains were forced (env/config override) rather than
  /// discovered — synthetic domains carry no CPU lists, so worker pinning
  /// is skipped and only the shard-homing / steal-ordering logic runs.
  bool synthetic = false;

  int num_domains() const { return static_cast<int>(domains.size()); }
  bool multi_domain() const { return domains.size() > 1; }
};

/// Parses a sysfs-style CPU list ("0-3,8,10-11") into explicit CPU ids.
/// Returns false (leaving `*out` unspecified) on malformed input, including
/// inverted ranges. An empty/whitespace string parses to an empty list (a
/// memory-only NUMA node exposes exactly that).
bool ParseCpuList(const std::string& text, std::vector<int>* out);

/// Parses a `/sys/devices/system/node`-shaped tree rooted at `root`:
/// every `node<k>/cpulist` file becomes one domain (k need not be dense —
/// sparse node numbering survives, sorted by k). Returns false when the
/// tree yields no domains (missing directory, no node entries) or any
/// cpulist is malformed; callers fall back to `SingleDomainTopology()`.
bool ParseSysfsNodeTree(const std::string& root, MachineTopology* out);

/// The fallback topology: one domain containing every CPU
/// (`0 .. hardware_concurrency-1`). Placement under it is a no-op.
MachineTopology SingleDomainTopology();

/// Largest accepted synthetic domain count — far above any real machine
/// (the biggest NUMA systems expose a few hundred nodes), small enough
/// that per-domain bookkeeping can never be an accidental memory bomb.
/// Config/env values beyond it are rejected or clamped.
inline constexpr int kMaxSyntheticDomains = 1024;

/// A forced topology of `num_domains` synthetic domains (clamped to
/// `[1, kMaxSyntheticDomains]`). Used by tests and the
/// `RECONCILE_PLACEMENT_DOMAINS` override so the multi-domain code paths
/// are exercisable on single-socket hosts.
MachineTopology SyntheticTopology(int num_domains);

/// The process-wide topology, detected once and cached:
/// `RECONCILE_PLACEMENT_DOMAINS=<k>` (k > 1) forces `SyntheticTopology(k)`;
/// otherwise the Linux sysfs node tree is parsed; otherwise (non-Linux,
/// unreadable sysfs, or a single node) the single-domain fallback.
const MachineTopology& DetectTopology();

}  // namespace reconcile

#endif  // RECONCILE_UTIL_TOPOLOGY_H_
