#ifndef RECONCILE_API_REGISTRY_H_
#define RECONCILE_API_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "reconcile/api/reconciler.h"
#include "reconcile/api/spec.h"

namespace reconcile {

/// String-keyed factory registry mapping algorithm keys to `Reconciler`
/// builders. `Registry::Global()` comes pre-populated with the library's
/// five algorithms (adapters.h): "core", "simple", "ns09", "features",
/// "percolation".
///
/// Extension recipe — a new algorithm gets every harness surface (CLI
/// `--algorithm`, sweeps, `RunExperiment`, metrics) for free:
///
///   1. implement `Reconciler` (wrap your config struct + entry point);
///   2. register a factory once at startup:
///        Registry::Global().Register({.key = "mine",
///                                     .summary = "one-line description",
///                                     .params = "threshold, iterations",
///                                     .threshold_param = "threshold",
///                                     .factory = MakeMineFromSpec});
///   3. done: `reconcile_cli --algorithm=mine --param k=v` and
///      `SweepSpec::algorithms` now accept it.
class Registry {
 public:
  /// Builds a configured instance from `spec`'s parameter bag. Returns
  /// nullptr and fills *error (malformed values, unknown keys, out-of-range
  /// settings) instead of aborting — the CLI turns these into exit codes.
  using Factory = std::function<std::unique_ptr<Reconciler>(
      const ReconcilerSpec& spec, std::string* error)>;

  struct Entry {
    std::string key;
    /// One-line summary shown by `DescribeAll` (CLI --help).
    std::string summary;
    /// Comma-separated names of the parameters the factory accepts, also
    /// shown by `DescribeAll` — keep it next to the factory so the help
    /// text cannot rot out of sync.
    std::string params;
    /// Name of the parameter a sweep's threshold grid dimension maps onto
    /// ("threshold" for the witness-count algorithms, "theta" for ns09).
    /// Empty if the algorithm has no comparable acceptance knob; such
    /// algorithms run once per seed fraction in threshold sweeps.
    std::string threshold_param;
    Factory factory;
  };

  /// The process-wide registry, with the built-in algorithms registered on
  /// first use. Registration is not synchronized: register extensions from
  /// one thread during startup, before concurrent `Create` calls.
  static Registry& Global();

  /// Registers an algorithm. Fatal on a duplicate or empty key or a null
  /// factory (registration bugs, not user input).
  void Register(Entry entry);

  bool Has(const std::string& key) const;

  /// Registered keys, sorted.
  std::vector<std::string> Keys() const;

  /// Entry for `key`, or nullptr if unknown.
  const Entry* Find(const std::string& key) const;

  /// Builds a configured reconciler from `spec`. Unknown algorithm keys and
  /// factory failures return nullptr with *error filled (if non-null).
  std::unique_ptr<Reconciler> Create(const ReconcilerSpec& spec,
                                     std::string* error) const;

  /// `Create` that treats failure as fatal — for tests and benches where a
  /// bad spec is a programming error.
  std::unique_ptr<Reconciler> CreateOrDie(const ReconcilerSpec& spec) const;

  /// Multi-line "key — summary" listing of every registered algorithm, for
  /// --help output.
  std::string DescribeAll() const;

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace reconcile

#endif  // RECONCILE_API_REGISTRY_H_
