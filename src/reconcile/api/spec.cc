#include "reconcile/api/spec.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace reconcile {

namespace {

// Splits "key=value[,key=value...]" into `out`. Returns false and fills
// *error on an entry with no '=' or an empty key.
bool ParseParamList(std::string_view text,
                    std::map<std::string, std::string>* out,
                    std::string* error) {
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    std::string_view item = text.substr(
        start, comma == std::string_view::npos ? comma : comma - start);
    if (item.empty()) {
      if (error != nullptr) *error = "empty parameter in list";
      return false;
    }
    size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      if (error != nullptr) {
        *error = "parameter '" + std::string(item) + "' is not key=value";
      }
      return false;
    }
    (*out)[std::string(item.substr(0, eq))] = std::string(item.substr(eq + 1));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return true;
}

}  // namespace

ReconcilerSpec& ReconcilerSpec::Set(const std::string& key,
                                    const std::string& value) {
  params[key] = value;
  return *this;
}

bool ReconcilerSpec::Parse(std::string_view text, ReconcilerSpec* out,
                           std::string* error) {
  ReconcilerSpec spec;
  size_t colon = text.find(':');
  std::string_view key =
      colon == std::string_view::npos ? text : text.substr(0, colon);
  if (key.empty()) {
    if (error != nullptr) *error = "empty algorithm key";
    return false;
  }
  spec.algorithm = std::string(key);
  if (colon != std::string_view::npos) {
    if (!ParseParamList(text.substr(colon + 1), &spec.params, error)) {
      return false;
    }
  }
  *out = std::move(spec);
  return true;
}

bool ReconcilerSpec::MergeParams(std::string_view text, std::string* error) {
  std::map<std::string, std::string> merged;
  if (!ParseParamList(text, &merged, error)) return false;
  for (auto& [key, value] : merged) {
    params[key] = std::move(value);
  }
  return true;
}

std::string ReconcilerSpec::ToString() const {
  std::string out = algorithm;
  char sep = ':';
  for (const auto& [key, value] : params) {
    out += sep;
    out += key;
    out += '=';
    out += value;
    sep = ',';
  }
  return out;
}

ParamReader::ParamReader(const ReconcilerSpec& spec) : spec_(spec) {}

std::string ParamReader::GetString(const std::string& key,
                                   const std::string& default_value) {
  read_[key] = true;
  auto it = spec_.params.find(key);
  return it == spec_.params.end() ? default_value : it->second;
}

int64_t ParamReader::GetInt(const std::string& key, int64_t default_value) {
  read_[key] = true;
  auto it = spec_.params.find(key);
  if (it == spec_.params.end()) return default_value;
  char* end = nullptr;
  errno = 0;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (it->second.empty() || end == nullptr || *end != '\0' ||
      errno == ERANGE) {
    AddError("parameter '" + key + "' is not an integer: " + it->second);
    return default_value;
  }
  return value;
}

uint32_t ParamReader::GetUint32(const std::string& key,
                                uint32_t default_value) {
  int64_t value = GetInt(key, default_value);
  if (value < 0 || value > static_cast<int64_t>(UINT32_MAX)) {
    AddError("parameter '" + key + "' is out of range: " +
             std::to_string(value));
    return default_value;
  }
  return static_cast<uint32_t>(value);
}

double ParamReader::GetDouble(const std::string& key, double default_value) {
  read_[key] = true;
  auto it = spec_.params.find(key);
  if (it == spec_.params.end()) return default_value;
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(it->second.c_str(), &end);
  if (it->second.empty() || end == nullptr || *end != '\0' ||
      errno == ERANGE) {
    AddError("parameter '" + key + "' is not a number: " + it->second);
    return default_value;
  }
  return value;
}

bool ParamReader::GetBool(const std::string& key, bool default_value) {
  read_[key] = true;
  auto it = spec_.params.find(key);
  if (it == spec_.params.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  AddError("parameter '" + key + "' is not a boolean: " + v);
  return default_value;
}

void ParamReader::AddError(const std::string& message) {
  errors_.push_back(message);
}

bool ParamReader::Finish(std::string* error) {
  for (const auto& [key, value] : spec_.params) {
    (void)value;
    if (!read_.count(key)) {
      errors_.push_back("unknown parameter '" + key + "' for algorithm '" +
                        spec_.algorithm + "'");
    }
  }
  if (errors_.empty()) return true;
  if (error != nullptr) {
    std::ostringstream joined;
    for (size_t i = 0; i < errors_.size(); ++i) {
      if (i > 0) joined << "; ";
      joined << errors_[i];
    }
    *error = joined.str();
  }
  return false;
}

}  // namespace reconcile
