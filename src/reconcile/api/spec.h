#ifndef RECONCILE_API_SPEC_H_
#define RECONCILE_API_SPEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace reconcile {

/// Value type naming one algorithm instance: a registry key plus a string
/// parameter bag. This is the lingua franca between user-facing surfaces
/// (CLI flags, sweep grids, config files) and `Registry::Create`: every
/// algorithm, whatever its native config struct, is constructible from a
/// `ReconcilerSpec`, so "add a `--param`" and "add a sweep dimension" need
/// no per-algorithm code.
///
/// Textual form (`Parse` / `ToString`):
///
///   algorithm[:key=value[,key=value...]]
///
/// e.g. "core", "core:threshold=3,iterations=1", "ns09:theta=1". Parameters
/// are stored sorted by key, so `ToString` is canonical and specs
/// round-trip: `Parse(s).ToString()` normalizes parameter order only.
/// Typing (int / double / bool) is applied by the consuming factory via
/// `ParamReader`, which also rejects unknown keys with a clear error.
struct ReconcilerSpec {
  std::string algorithm;
  std::map<std::string, std::string> params;

  ReconcilerSpec() = default;
  explicit ReconcilerSpec(std::string algorithm_key)
      : algorithm(std::move(algorithm_key)) {}

  /// Sets (or overwrites) one parameter; returns *this for chaining.
  ReconcilerSpec& Set(const std::string& key, const std::string& value);

  /// Parses the textual form above. On failure returns false, leaves *out
  /// untouched and fills *error (if non-null) with the reason.
  static bool Parse(std::string_view text, ReconcilerSpec* out,
                    std::string* error);

  /// Merges a bare "key=value[,key=value...]" list (no algorithm prefix)
  /// into `params`, later entries overriding earlier ones. Same error
  /// contract as `Parse`.
  bool MergeParams(std::string_view text, std::string* error);

  /// Canonical textual form; `Parse` accepts everything `ToString` emits.
  std::string ToString() const;

  friend bool operator==(const ReconcilerSpec&,
                         const ReconcilerSpec&) = default;
};

/// Typed, error-accumulating reader over a `ReconcilerSpec`'s parameter bag.
/// Factories call the typed getters for every parameter they understand,
/// then `Finish()`, which fails if any parameter was left unread (catching
/// typos and wrong-algorithm parameters). Errors never abort the process —
/// they accumulate so `Registry::Create` can report them to the caller.
///
///   ParamReader reader(spec);
///   config.min_score = reader.GetUint32("threshold", config.min_score);
///   ...
///   if (!reader.Finish(error)) return nullptr;
class ParamReader {
 public:
  explicit ParamReader(const ReconcilerSpec& spec);

  /// Typed getters: return the parsed value, or `default_value` when the
  /// key is absent or its value malformed (recording an error for the
  /// latter).
  std::string GetString(const std::string& key,
                        const std::string& default_value);
  int64_t GetInt(const std::string& key, int64_t default_value);
  uint32_t GetUint32(const std::string& key, uint32_t default_value);
  double GetDouble(const std::string& key, double default_value);
  bool GetBool(const std::string& key, bool default_value);

  /// Records a custom validation error (e.g. a value out of range).
  void AddError(const std::string& message);

  /// True while no error has been recorded.
  bool ok() const { return errors_.empty(); }

  /// Final check: fails if any error was recorded or any parameter was
  /// never consumed by a getter. On failure fills *error (if non-null)
  /// with all accumulated messages, semicolon-joined.
  bool Finish(std::string* error);

 private:
  const ReconcilerSpec& spec_;
  std::map<std::string, bool> read_;
  std::vector<std::string> errors_;
};

}  // namespace reconcile

#endif  // RECONCILE_API_SPEC_H_
