#include "reconcile/api/adapters.h"

#include <limits>
#include <memory>
#include <sstream>

#include "reconcile/api/registry.h"
#include "reconcile/api/spec.h"
#include "reconcile/util/fault.h"

namespace reconcile {

namespace {

const char* BackendName(ScoringBackend backend) {
  return backend == ScoringBackend::kHashMap ? "hash" : "radix";
}

const char* OnOff(bool value) { return value ? "on" : "off"; }

// Bounds-checked narrowing for int-typed config fields: an out-of-range
// value is a reportable spec error, never a silent wrap.
int GetIntParam(ParamReader& reader, const std::string& key,
                int default_value) {
  const int64_t value = reader.GetInt(key, default_value);
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    reader.AddError("parameter '" + key + "' is out of range: " +
                    std::to_string(value));
    return default_value;
  }
  return static_cast<int>(value);
}

std::unique_ptr<Reconciler> MakeCore(const ReconcilerSpec& spec,
                                     std::string* error) {
  MatcherConfig config;
  ParamReader reader(spec);
  config.min_score = reader.GetUint32("threshold", config.min_score);
  config.num_iterations =
      GetIntParam(reader, "iterations", config.num_iterations);
  config.use_degree_bucketing =
      reader.GetBool("bucketing", config.use_degree_bucketing);
  config.min_bucket_exponent =
      GetIntParam(reader, "min-bucket-exponent", config.min_bucket_exponent);
  config.num_threads = GetIntParam(reader, "threads", config.num_threads);
  config.num_shards = GetIntParam(reader, "shards", config.num_shards);
  config.stop_when_stable =
      reader.GetBool("stop-when-stable", config.stop_when_stable);
  config.use_incremental_scoring =
      reader.GetBool("incremental", config.use_incremental_scoring);
  config.use_parallel_selection =
      reader.GetBool("parallel-selection", config.use_parallel_selection);
  std::string backend = reader.GetString("backend", "radix");
  if (backend == "hash") {
    config.scoring_backend = ScoringBackend::kHashMap;
  } else if (backend == "radix") {
    config.scoring_backend = ScoringBackend::kRadixSort;
  } else {
    reader.AddError("parameter 'backend' must be hash or radix: " + backend);
  }
  std::string scheduler =
      reader.GetString("scheduler", SchedulerName(config.scheduler));
  if (!ParseScheduler(scheduler, &config.scheduler)) {
    reader.AddError("parameter 'scheduler' must be auto, static or stealing: " +
                    scheduler);
  }
  const int64_t grain = reader.GetInt("grain", 0);
  if (grain < 0) {
    reader.AddError("parameter 'grain' must be >= 0");
  } else {
    config.scheduler_grain = static_cast<size_t>(grain);
  }
  config.lsm_max_tiers =
      GetIntParam(reader, "max-tiers", config.lsm_max_tiers);
  if (config.lsm_max_tiers < 1) {
    reader.AddError("parameter 'max-tiers' must be >= 1");
  }
  config.lsm_size_ratio = reader.GetDouble("tier-ratio", config.lsm_size_ratio);
  if (config.lsm_size_ratio < 0.0) {
    reader.AddError("parameter 'tier-ratio' must be >= 0 (0 disables the "
                    "ratio trigger)");
  }
  std::string placement =
      reader.GetString("placement", PlacementName(config.placement));
  if (!ParsePlacement(placement, &config.placement)) {
    reader.AddError(
        "parameter 'placement' must be auto, none, interleave or domain: " +
        placement);
  }
  config.placement_domains =
      GetIntParam(reader, "placement-domains", config.placement_domains);
  if (config.placement_domains < 0 ||
      config.placement_domains > kMaxSyntheticDomains) {
    reader.AddError("parameter 'placement-domains' must be in [0, " +
                    std::to_string(kMaxSyntheticDomains) +
                    "] (0 detects the machine topology)");
  }
  config.checkpoint_dir =
      reader.GetString("checkpoint-dir", config.checkpoint_dir);
  config.checkpoint_every_rounds = GetIntParam(
      reader, "checkpoint-every", config.checkpoint_every_rounds);
  if (config.checkpoint_every_rounds < 1) {
    reader.AddError("parameter 'checkpoint-every' must be >= 1");
  }
  config.resume = reader.GetBool("resume", config.resume);
  if (config.resume && config.checkpoint_dir.empty()) {
    reader.AddError("parameter 'resume' requires 'checkpoint-dir'");
  }
  config.checkpoint_keep =
      GetIntParam(reader, "checkpoint-keep", config.checkpoint_keep);
  if (config.checkpoint_keep < 0) {
    reader.AddError("parameter 'checkpoint-keep' must be >= 0 (0 keeps all)");
  }
  const int64_t budget = reader.GetInt(
      "memory-budget", static_cast<int64_t>(config.memory_budget_bytes));
  if (budget < 0) {
    reader.AddError("parameter 'memory-budget' must be >= 0 (0 = unbudgeted)");
  } else {
    config.memory_budget_bytes = static_cast<uint64_t>(budget);
  }
  config.score_dir = reader.GetString("score-dir", config.score_dir);
  if (config.memory_budget_bytes > 0 && config.score_dir.empty()) {
    reader.AddError("parameter 'memory-budget' requires 'score-dir'");
  }
  config.workers = GetIntParam(reader, "workers", config.workers);
  if (config.workers < 1) {
    reader.AddError("parameter 'workers' must be >= 1 (1 = in-process)");
  }
  config.worker_retry =
      GetIntParam(reader, "worker-retry", config.worker_retry);
  if (config.worker_retry < 0) {
    reader.AddError("parameter 'worker-retry' must be >= 0");
  }
  config.worker_timeout_ms =
      GetIntParam(reader, "worker-timeout-ms", config.worker_timeout_ms);
  if (config.worker_timeout_ms < 1) {
    reader.AddError("parameter 'worker-timeout-ms' must be >= 1");
  }
  config.fault_spec = reader.GetString("fault", config.fault_spec);
  if (!config.fault_spec.empty()) {
    std::string fault_error;
    if (!ValidateFaultSpec(config.fault_spec, &fault_error)) {
      reader.AddError("parameter 'fault' is malformed: " + fault_error);
    }
  }
  if (config.num_iterations < 1) {
    reader.AddError("parameter 'iterations' must be >= 1");
  }
  if (!reader.Finish(error)) return nullptr;
  return std::make_unique<CoreReconciler>(config);
}

std::unique_ptr<Reconciler> MakeSimple(const ReconcilerSpec& spec,
                                       std::string* error) {
  SimpleMatcherConfig config;
  ParamReader reader(spec);
  config.min_score = reader.GetUint32("threshold", config.min_score);
  config.num_iterations =
      GetIntParam(reader, "iterations", config.num_iterations);
  config.num_threads = GetIntParam(reader, "threads", config.num_threads);
  if (config.num_iterations < 1) {
    reader.AddError("parameter 'iterations' must be >= 1");
  }
  if (!reader.Finish(error)) return nullptr;
  return std::make_unique<SimpleCommonNeighborsReconciler>(config);
}

std::unique_ptr<Reconciler> MakePropagation(const ReconcilerSpec& spec,
                                            std::string* error) {
  PropagationConfig config;
  ParamReader reader(spec);
  config.theta = reader.GetDouble("theta", config.theta);
  config.max_sweeps = GetIntParam(reader, "max-sweeps", config.max_sweeps);
  config.reverse_check =
      reader.GetBool("reverse-check", config.reverse_check);
  if (config.max_sweeps < 1) {
    reader.AddError("parameter 'max-sweeps' must be >= 1");
  }
  if (!reader.Finish(error)) return nullptr;
  return std::make_unique<PropagationReconciler>(config);
}

std::unique_ptr<Reconciler> MakeFeatures(const ReconcilerSpec& spec,
                                         std::string* error) {
  FeatureMatcherConfig config;
  ParamReader reader(spec);
  config.recursion_depth =
      GetIntParam(reader, "depth", config.recursion_depth);
  config.degree_band = reader.GetDouble("degree-band", config.degree_band);
  const int64_t max_candidates = reader.GetInt(
      "max-candidates", static_cast<int64_t>(config.max_candidates));
  if (max_candidates < 1) {
    reader.AddError("parameter 'max-candidates' must be >= 1");
  } else {
    config.max_candidates = static_cast<size_t>(max_candidates);
  }
  config.min_similarity =
      reader.GetDouble("min-similarity", config.min_similarity);
  config.min_degree = reader.GetUint32("min-degree", config.min_degree);
  // Pre-validate what StructuralFeatureMatch enforces fatally, so a bad
  // spec is a reportable error rather than a crash.
  if (config.recursion_depth < 0 || config.recursion_depth > 4) {
    reader.AddError("parameter 'depth' must be in [0, 4]");
  }
  if (config.degree_band < 1.0) {
    reader.AddError("parameter 'degree-band' must be >= 1");
  }
  if (!reader.Finish(error)) return nullptr;
  return std::make_unique<StructuralFeatureReconciler>(config);
}

std::unique_ptr<Reconciler> MakeBp(const ReconcilerSpec& spec,
                                   std::string* error) {
  BpConfig config;
  ParamReader reader(spec);
  config.iterations = GetIntParam(reader, "iterations", config.iterations);
  config.damping = reader.GetDouble("damping", config.damping);
  config.prior = reader.GetDouble("prior", config.prior);
  config.min_belief = reader.GetDouble("min-belief", config.min_belief);
  config.max_sweeps = GetIntParam(reader, "max-sweeps", config.max_sweeps);
  const int64_t max_candidates = reader.GetInt(
      "max-candidates", static_cast<int64_t>(config.max_candidates));
  if (max_candidates < 1) {
    reader.AddError("parameter 'max-candidates' must be >= 1");
  } else {
    config.max_candidates = static_cast<size_t>(max_candidates);
  }
  config.num_threads = GetIntParam(reader, "threads", config.num_threads);
  std::string scheduler =
      reader.GetString("scheduler", SchedulerName(config.scheduler));
  if (!ParseScheduler(scheduler, &config.scheduler)) {
    reader.AddError("parameter 'scheduler' must be auto, static or stealing: " +
                    scheduler);
  }
  const int64_t grain = reader.GetInt("grain", 0);
  if (grain < 0) {
    reader.AddError("parameter 'grain' must be >= 0");
  } else {
    config.scheduler_grain = static_cast<size_t>(grain);
  }
  // Pre-validate what BpMatch enforces fatally.
  if (config.iterations < 1) {
    reader.AddError("parameter 'iterations' must be >= 1");
  }
  if (config.damping < 0.0 || config.damping >= 1.0) {
    reader.AddError("parameter 'damping' must be in [0, 1)");
  }
  if (config.max_sweeps < 1) {
    reader.AddError("parameter 'max-sweeps' must be >= 1");
  }
  if (!reader.Finish(error)) return nullptr;
  return std::make_unique<BpReconciler>(config);
}

std::unique_ptr<Reconciler> MakePercolation(const ReconcilerSpec& spec,
                                            std::string* error) {
  PercolationConfig config;
  ParamReader reader(spec);
  config.threshold = reader.GetUint32("threshold", config.threshold);
  config.min_degree = reader.GetUint32("min-degree", config.min_degree);
  // r <= 1 percolates the entire candidate space; PercolationMatch rejects
  // it fatally, so turn it into a spec error here.
  if (config.threshold < 2) {
    reader.AddError("parameter 'threshold' (marks r) must be >= 2");
  }
  if (!reader.Finish(error)) return nullptr;
  return std::make_unique<PercolationReconciler>(config);
}

}  // namespace

std::string CoreReconciler::Describe() const {
  std::ostringstream out;
  out << "core(threshold=" << config_.min_score
      << ", iterations=" << config_.num_iterations
      << ", bucketing=" << OnOff(config_.use_degree_bucketing)
      << ", backend=" << BackendName(config_.scoring_backend)
      << ", selection="
      << (config_.use_parallel_selection ? "parallel" : "serial")
      << ", scoring="
      << (config_.use_incremental_scoring ? "incremental" : "recompute")
      << ", scheduler=" << SchedulerName(config_.scheduler)
      << ", tiers=" << config_.lsm_max_tiers
      << ", placement=" << PlacementName(config_.placement);
  if (config_.workers > 1) {
    out << ", workers=" << config_.workers;
  }
  out << ")";
  return out.str();
}

std::string SimpleCommonNeighborsReconciler::Describe() const {
  std::ostringstream out;
  out << "simple(threshold=" << config_.min_score
      << ", iterations=" << config_.num_iterations << ")";
  return out.str();
}

std::string PropagationReconciler::Describe() const {
  std::ostringstream out;
  out << "ns09(theta=" << config_.theta
      << ", max-sweeps=" << config_.max_sweeps
      << ", reverse-check=" << OnOff(config_.reverse_check) << ")";
  return out.str();
}

std::string StructuralFeatureReconciler::Describe() const {
  std::ostringstream out;
  out << "features(depth=" << config_.recursion_depth
      << ", degree-band=" << config_.degree_band
      << ", max-candidates=" << config_.max_candidates
      << ", min-similarity=" << config_.min_similarity
      << ", min-degree=" << config_.min_degree << ")";
  return out.str();
}

std::string BpReconciler::Describe() const {
  std::ostringstream out;
  out << "bp(iterations=" << config_.iterations
      << ", damping=" << config_.damping << ", prior=" << config_.prior
      << ", min-belief=" << config_.min_belief
      << ", max-sweeps=" << config_.max_sweeps
      << ", max-candidates=" << config_.max_candidates
      << ", scheduler=" << SchedulerName(config_.scheduler) << ")";
  return out.str();
}

std::string PercolationReconciler::Describe() const {
  std::ostringstream out;
  out << "percolation(threshold=" << config_.threshold
      << ", min-degree=" << config_.min_degree << ")";
  return out.str();
}

namespace internal {

void RegisterBuiltinReconcilers(Registry& registry) {
  registry.Register(
      {.key = "core",
       .summary = "User-Matching (paper §3.2): degree-bucketed witness "
                  "scoring, mutual-best selection",
       .params = "threshold, iterations, bucketing, min-bucket-exponent, "
                 "threads, shards, stop-when-stable, incremental, "
                 "parallel-selection, backend=hash|radix, "
                 "scheduler=auto|static|stealing, grain, max-tiers, "
                 "tier-ratio, placement=auto|none|interleave|domain, "
                 "placement-domains, checkpoint-dir, checkpoint-every, "
                 "checkpoint-keep, resume, memory-budget, score-dir, "
                 "workers, worker-retry, worker-timeout-ms, fault",
       .threshold_param = "threshold",
       .factory = MakeCore});
  registry.Register(
      {.key = "simple",
       .summary = "common-neighbours ablation: no degree schedule "
                  "(paper §5 Q8)",
       .params = "threshold, iterations, threads",
       .threshold_param = "threshold",
       .factory = MakeSimple});
  registry.Register(
      {.key = "ns09",
       .summary = "Narayanan-Shmatikov propagation: eccentricity-gated "
                  "cosine scores (S&P 2009)",
       .params = "theta, max-sweeps, reverse-check",
       .threshold_param = "theta",
       .factory = MakePropagation});
  registry.Register(
      {.key = "features",
       .summary = "seed-free recursive structural features "
                  "(Henderson et al., KDD 2011)",
       .params = "depth, degree-band, max-candidates, min-similarity, "
                 "min-degree",
       .threshold_param = "",
       .factory = MakeFeatures});
  registry.Register(
      {.key = "bp",
       .summary = "belief-propagation matching: min-sum message passing "
                  "over witness candidates (Halimi-Ayday)",
       .params = "iterations, damping, prior, min-belief, max-sweeps, "
                 "max-candidates, threads, scheduler=auto|static|stealing, "
                 "grain",
       .threshold_param = "",
       .factory = MakeBp});
  registry.Register(
      {.key = "percolation",
       .summary = "bootstrap percolation matching "
                  "(Yartseva-Grossglauser, COSN 2013)",
       .params = "threshold, min-degree",
       .threshold_param = "threshold",
       .factory = MakePercolation});
}

}  // namespace internal

}  // namespace reconcile
