#ifndef RECONCILE_API_RECONCILER_H_
#define RECONCILE_API_RECONCILER_H_

#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "reconcile/core/result.h"
#include "reconcile/graph/graph.h"
#include "reconcile/graph/types.h"

namespace reconcile {

/// Uniform interface over every reconciliation algorithm in the library:
/// the core User-Matching matcher and all comparison baselines. One
/// `Reconciler` is an *immutable, fully configured* algorithm instance —
/// construction (directly or via `Registry::Create`) fixes every tuning
/// knob, and `Run` may be called any number of times, from any thread,
/// on any graph pair.
///
/// This is the seam the paper's comparative claims hang on: the evaluation
/// harness (`RunExperiment`, `RunSweep`), the CLI and the benches all take a
/// `Reconciler` rather than a concrete config struct, so every scenario,
/// metric and table works for every algorithm — including ones registered
/// by downstream code (see `registry.h` for the extension recipe).
class Reconciler {
 public:
  virtual ~Reconciler() = default;

  /// Expands the seed links into a one-to-one partial mapping between the
  /// nodes of `g1` and `g2`. Seeds must be in-range and one-to-one.
  /// Implementations must be deterministic for fixed inputs and must not
  /// mutate the reconciler (`Run` is const and thread-compatible).
  virtual MatchResult Run(
      const Graph& g1, const Graph& g2,
      std::span<const std::pair<NodeId, NodeId>> seeds) const = 0;

  /// Stable registry key ("core", "ns09", ...). Algorithm identity, not
  /// configuration: two differently tuned instances share a name.
  virtual std::string_view name() const = 0;

  /// Human-readable one-line description of this instance including its
  /// effective parameters, e.g. "core(threshold=2, iterations=2, ...)".
  virtual std::string Describe() const = 0;

  /// True if `Run` fills `MatchResult::phases` with meaningful per-round
  /// telemetry (emit/scan/select split). Baselines without a round
  /// structure return false and leave `phases` empty.
  virtual bool ExposesPhaseStats() const { return false; }
};

}  // namespace reconcile

#endif  // RECONCILE_API_RECONCILER_H_
