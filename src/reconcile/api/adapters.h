#ifndef RECONCILE_API_ADAPTERS_H_
#define RECONCILE_API_ADAPTERS_H_

#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "reconcile/api/reconciler.h"
#include "reconcile/baseline/bp_matcher.h"
#include "reconcile/baseline/common_neighbors.h"
#include "reconcile/baseline/feature_matching.h"
#include "reconcile/baseline/percolation.h"
#include "reconcile/baseline/propagation.h"
#include "reconcile/core/matcher.h"

namespace reconcile {

/// Adapter classes wrapping each algorithm's existing config struct and
/// free-function entry point behind the `Reconciler` interface. Each
/// adapter's `Run` forwards verbatim — outputs are bit-identical to calling
/// the free function directly (enforced by api_adapter_differential_test).
///
/// All six register themselves in `Registry::Global()`; the classes are
/// also directly constructible for callers that already hold a typed
/// config. Registry keys and sweep-threshold parameters:
///
///   key           wraps                       threshold dimension
///   core          UserMatching                "threshold" (min_score T)
///   simple        SimpleCommonNeighborsMatch  "threshold" (min_score)
///   ns09          PropagationMatch            "theta" (eccentricity bar)
///   features      StructuralFeatureMatch      none (seed-free)
///   percolation   PercolationMatch            "threshold" (marks r)
///   bp            BpMatch                     none (belief floor is a knob)

/// "core" — the paper's User-Matching algorithm (§3.2).
class CoreReconciler : public Reconciler {
 public:
  explicit CoreReconciler(MatcherConfig config = {}) : config_(config) {}

  MatchResult Run(
      const Graph& g1, const Graph& g2,
      std::span<const std::pair<NodeId, NodeId>> seeds) const override {
    return UserMatching(g1, g2, seeds, config_);
  }
  std::string_view name() const override { return "core"; }
  std::string Describe() const override;
  bool ExposesPhaseStats() const override { return true; }

  const MatcherConfig& config() const { return config_; }

 private:
  MatcherConfig config_;
};

/// "simple" — the common-neighbours ablation (§5 Q8).
class SimpleCommonNeighborsReconciler : public Reconciler {
 public:
  explicit SimpleCommonNeighborsReconciler(SimpleMatcherConfig config = {})
      : config_(config) {}

  MatchResult Run(
      const Graph& g1, const Graph& g2,
      std::span<const std::pair<NodeId, NodeId>> seeds) const override {
    return SimpleCommonNeighborsMatch(g1, g2, seeds, config_);
  }
  std::string_view name() const override { return "simple"; }
  std::string Describe() const override;
  // Delegates to UserMatching (bucketing disabled), so the full per-round
  // emit/scan/select split is populated.
  bool ExposesPhaseStats() const override { return true; }

  const SimpleMatcherConfig& config() const { return config_; }

 private:
  SimpleMatcherConfig config_;
};

/// "ns09" — Narayanan–Shmatikov-style propagation (S&P 2009).
class PropagationReconciler : public Reconciler {
 public:
  explicit PropagationReconciler(PropagationConfig config = {})
      : config_(config) {}

  MatchResult Run(
      const Graph& g1, const Graph& g2,
      std::span<const std::pair<NodeId, NodeId>> seeds) const override {
    return PropagationMatch(g1, g2, seeds, config_);
  }
  std::string_view name() const override { return "ns09"; }
  std::string Describe() const override;

  const PropagationConfig& config() const { return config_; }

 private:
  PropagationConfig config_;
};

/// "features" — seed-free recursive structural features (Henderson et al.).
class StructuralFeatureReconciler : public Reconciler {
 public:
  explicit StructuralFeatureReconciler(FeatureMatcherConfig config = {})
      : config_(config) {}

  MatchResult Run(
      const Graph& g1, const Graph& g2,
      std::span<const std::pair<NodeId, NodeId>> seeds) const override {
    return StructuralFeatureMatch(g1, g2, seeds, config_);
  }
  std::string_view name() const override { return "features"; }
  std::string Describe() const override;

  const FeatureMatcherConfig& config() const { return config_; }

 private:
  FeatureMatcherConfig config_;
};

/// "bp" — belief-propagation profile matching (Halimi & Ayday style).
class BpReconciler : public Reconciler {
 public:
  explicit BpReconciler(BpConfig config = {}) : config_(config) {}

  MatchResult Run(
      const Graph& g1, const Graph& g2,
      std::span<const std::pair<NodeId, NodeId>> seeds) const override {
    return BpMatch(g1, g2, seeds, config_);
  }
  std::string_view name() const override { return "bp"; }
  std::string Describe() const override;

  const BpConfig& config() const { return config_; }

 private:
  BpConfig config_;
};

/// "percolation" — bootstrap percolation matching (Yartseva & Grossglauser).
class PercolationReconciler : public Reconciler {
 public:
  explicit PercolationReconciler(PercolationConfig config = {})
      : config_(config) {}

  MatchResult Run(
      const Graph& g1, const Graph& g2,
      std::span<const std::pair<NodeId, NodeId>> seeds) const override {
    return PercolationMatch(g1, g2, seeds, config_);
  }
  std::string_view name() const override { return "percolation"; }
  std::string Describe() const override;

  const PercolationConfig& config() const { return config_; }

 private:
  PercolationConfig config_;
};

}  // namespace reconcile

#endif  // RECONCILE_API_ADAPTERS_H_
