#include "reconcile/api/registry.h"

#include <sstream>
#include <utility>

#include "reconcile/util/logging.h"

namespace reconcile {

namespace internal {
// Defined in adapters.cc. Called once from Global(): an explicit hook
// rather than static-initializer self-registration, so the adapters cannot
// be dropped by the linker when the library is consumed as a static
// archive.
void RegisterBuiltinReconcilers(Registry& registry);
}  // namespace internal

Registry& Registry::Global() {
  static Registry* registry = [] {
    auto* r = new Registry();
    internal::RegisterBuiltinReconcilers(*r);
    return r;
  }();
  return *registry;
}

void Registry::Register(Entry entry) {
  RECONCILE_CHECK(!entry.key.empty()) << "empty reconciler key";
  RECONCILE_CHECK(entry.factory != nullptr)
      << "null factory for reconciler '" << entry.key << "'";
  RECONCILE_CHECK(entries_.find(entry.key) == entries_.end())
      << "duplicate reconciler key '" << entry.key << "'";
  std::string key = entry.key;
  entries_.emplace(std::move(key), std::move(entry));
}

bool Registry::Has(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::vector<std::string> Registry::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    (void)entry;
    keys.push_back(key);
  }
  return keys;
}

const Registry::Entry* Registry::Find(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

std::unique_ptr<Reconciler> Registry::Create(const ReconcilerSpec& spec,
                                             std::string* error) const {
  const Entry* entry = Find(spec.algorithm);
  if (entry == nullptr) {
    if (error != nullptr) {
      std::ostringstream out;
      out << "unknown algorithm '" << spec.algorithm << "' (registered:";
      for (const std::string& key : Keys()) out << ' ' << key;
      out << ')';
      *error = out.str();
    }
    return nullptr;
  }
  return entry->factory(spec, error);
}

std::unique_ptr<Reconciler> Registry::CreateOrDie(
    const ReconcilerSpec& spec) const {
  std::string error;
  std::unique_ptr<Reconciler> reconciler = Create(spec, &error);
  RECONCILE_CHECK(reconciler != nullptr)
      << "bad reconciler spec '" << spec.ToString() << "': " << error;
  return reconciler;
}

std::string Registry::DescribeAll() const {
  std::ostringstream out;
  for (const auto& [key, entry] : entries_) {
    out << "  " << key;
    for (size_t pad = key.size(); pad < 14; ++pad) out << ' ';
    out << entry.summary << '\n';
    if (!entry.params.empty()) {
      out << "                params: " << entry.params << '\n';
    }
  }
  return out.str();
}

}  // namespace reconcile
