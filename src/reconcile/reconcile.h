#ifndef RECONCILE_RECONCILE_H_
#define RECONCILE_RECONCILE_H_

/// Umbrella header: the full public API of the reconcile library.
///
/// Downstream users can include this one header; the library is small
/// enough that the compile-time cost is negligible. Individual headers
/// remain includable on their own (each is self-contained), which the
/// test suite relies on.
///
/// Layering (see DESIGN.md §2 for the subsystem inventory):
///   util -> graph -> {gen, sampling, seed, mr, theory}
///        -> core -> baseline -> api -> eval

#include "reconcile/util/flags.h"          // IWYU pragma: export
#include "reconcile/util/logging.h"        // IWYU pragma: export
#include "reconcile/util/rng.h"            // IWYU pragma: export
#include "reconcile/util/thread_pool.h"    // IWYU pragma: export
#include "reconcile/util/timer.h"          // IWYU pragma: export

#include "reconcile/graph/algorithms.h"    // IWYU pragma: export
#include "reconcile/graph/edge_list.h"     // IWYU pragma: export
#include "reconcile/graph/graph.h"         // IWYU pragma: export
#include "reconcile/graph/io.h"            // IWYU pragma: export
#include "reconcile/graph/permutation.h"   // IWYU pragma: export
#include "reconcile/graph/statistics.h"    // IWYU pragma: export
#include "reconcile/graph/types.h"         // IWYU pragma: export

#include "reconcile/gen/affiliation.h"     // IWYU pragma: export
#include "reconcile/gen/chung_lu.h"        // IWYU pragma: export
#include "reconcile/gen/configuration.h"   // IWYU pragma: export
#include "reconcile/gen/erdos_renyi.h"     // IWYU pragma: export
#include "reconcile/gen/preferential_attachment.h"  // IWYU pragma: export
#include "reconcile/gen/rmat.h"            // IWYU pragma: export
#include "reconcile/gen/sbm.h"             // IWYU pragma: export
#include "reconcile/gen/watts_strogatz.h"  // IWYU pragma: export

#include "reconcile/sampling/attack.h"       // IWYU pragma: export
#include "reconcile/sampling/cascade.h"      // IWYU pragma: export
#include "reconcile/sampling/community.h"    // IWYU pragma: export
#include "reconcile/sampling/independent.h"  // IWYU pragma: export
#include "reconcile/sampling/realization.h"  // IWYU pragma: export
#include "reconcile/sampling/tie_strength.h" // IWYU pragma: export
#include "reconcile/sampling/timeslice.h"    // IWYU pragma: export

#include "reconcile/seed/seeding.h"          // IWYU pragma: export

#include "reconcile/mr/mapreduce.h"          // IWYU pragma: export

#include "reconcile/theory/empirics.h"       // IWYU pragma: export
#include "reconcile/theory/predictions.h"    // IWYU pragma: export

#include "reconcile/core/best_table.h"       // IWYU pragma: export
#include "reconcile/core/confidence.h"       // IWYU pragma: export
#include "reconcile/core/matcher.h"          // IWYU pragma: export
#include "reconcile/core/result.h"           // IWYU pragma: export
#include "reconcile/core/witness.h"          // IWYU pragma: export

#include "reconcile/baseline/bp_matcher.h"        // IWYU pragma: export
#include "reconcile/baseline/common_neighbors.h"  // IWYU pragma: export
#include "reconcile/baseline/feature_matching.h"  // IWYU pragma: export
#include "reconcile/baseline/percolation.h"       // IWYU pragma: export
#include "reconcile/baseline/propagation.h"       // IWYU pragma: export

#include "reconcile/api/adapters.h"      // IWYU pragma: export
#include "reconcile/api/reconciler.h"    // IWYU pragma: export
#include "reconcile/api/registry.h"      // IWYU pragma: export
#include "reconcile/api/spec.h"          // IWYU pragma: export

#include "reconcile/eval/datasets.h"     // IWYU pragma: export
#include "reconcile/eval/disagreement.h" // IWYU pragma: export
#include "reconcile/eval/experiment.h"   // IWYU pragma: export
#include "reconcile/eval/match_io.h"     // IWYU pragma: export
#include "reconcile/eval/metrics.h"      // IWYU pragma: export
#include "reconcile/eval/sweep.h"        // IWYU pragma: export
#include "reconcile/eval/table.h"        // IWYU pragma: export
#include "reconcile/eval/validation.h"   // IWYU pragma: export

#endif  // RECONCILE_RECONCILE_H_
