#include "reconcile/serve/incremental_matcher.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "reconcile/util/checkpoint.h"
#include "reconcile/util/fault.h"
#include "reconcile/util/logging.h"
#include "reconcile/util/parallel_for.h"
#include "reconcile/util/radix_sort.h"
#include "reconcile/util/timer.h"

namespace reconcile {

namespace {

// Mirrors core/matcher_state.cc: degree levels partition candidate pairs
// by the first bucket in which they become eligible.
constexpr int kNumLevels = 33;

int FloorLog2(NodeId x) {
  int log = 0;
  while (x > 1) {
    x >>= 1;
    ++log;
  }
  return log;
}

uint8_t LevelOf(NodeId degree) {
  return static_cast<uint8_t>(FloorLog2(std::max<NodeId>(1, degree)));
}

MachineTopology ServePlacementTopology(const MatcherConfig& config) {
  if (config.placement_domains > 0) {
    return config.placement_domains == 1
               ? SingleDomainTopology()
               : SyntheticTopology(config.placement_domains);
  }
  return DetectTopology();
}

// Fold visible to no round: retraction never touched a stamp.
constexpr uint32_t kNoDirtyStamp = ~0u;

// Serve snapshot section ids and state version (independent of the batch
// matcher's — the two checkpoint families never cross-load).
constexpr uint32_t kServeStateVersion = 1;
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionGraph1 = 2;
constexpr uint32_t kSectionGraph2 = 3;
constexpr uint32_t kSectionLinks = 4;
constexpr uint32_t kSectionRounds = 5;
constexpr uint32_t kSectionScores = 6;

}  // namespace

IncrementalMatcher::IncrementalMatcher(
    Graph g1, Graph g2, std::span<const std::pair<NodeId, NodeId>> seeds,
    const ServeConfig& config)
    : config_(config),
      pool_(config.matcher.num_threads > 0 ? config.matcher.num_threads
                                           : ThreadPool::DefaultThreads()),
      scheduler_(ResolveScheduler(config.matcher.scheduler)),
      num_shards_(config.matcher.num_shards > 0
                      ? config.matcher.num_shards
                      : std::max(4, pool_.num_threads())),
      topology_(ServePlacementTopology(config.matcher)),
      placement_(topology_, config.matcher.placement, num_shards_,
                 pool_.num_threads()),
      o1_(std::move(g1)),
      o2_(std::move(g2)),
      selection_(o1_.num_nodes(), o2_.num_nodes(),
                 config.matcher.use_parallel_selection) {
  RECONCILE_CHECK_GE(config_.matcher.num_iterations, 1);
  RECONCILE_CHECK_GE(config_.matcher.min_bucket_exponent, 0);
  n1_pinned_ = o1_.num_nodes();
  cells_.resize(static_cast<size_t>(kNumLevels) *
                static_cast<size_t>(num_shards_));
  touched_cells_.assign(cells_.size(), 0);
  SyncDerivedState();
  num_seeds_ = seeds.size();
  seeds_.assign(seeds.begin(), seeds.end());
  links_.reserve(seeds.size());
  for (const auto& [u, v] : seeds) {
    RECONCILE_CHECK_LT(u, o1_.num_nodes());
    RECONCILE_CHECK_LT(v, o2_.num_nodes());
    RECONCILE_CHECK_EQ(map_1to2_[u], kInvalidNode)
        << "duplicate seed for g1 node " << u;
    RECONCILE_CHECK_EQ(map_2to1_[v], kInvalidNode)
        << "duplicate seed for g2 node " << v;
    map_1to2_[u] = v;
    map_2to1_[v] = u;
    links_.emplace_back(u, v);
  }
  if (placement_.active()) placement_.PinWorkers(&pool_);
}

IncrementalMatcher::~IncrementalMatcher() = default;

std::function<int(size_t)> IncrementalMatcher::CellDomainFn() const {
  return [this](size_t cell) {
    return placement_.HomeOfShard(
        static_cast<int>(cell % static_cast<size_t>(num_shards_)));
  };
}

void IncrementalMatcher::SyncDerivedState() {
  const NodeId n1 = o1_.num_nodes();
  const NodeId n2 = o2_.num_nodes();
  // Levels are recomputed wholesale: any node's degree may have moved.
  level1_.resize(n1);
  for (NodeId u = 0; u < n1; ++u) level1_[u] = LevelOf(o1_.degree(u));
  level2_.resize(n2);
  for (NodeId v = 0; v < n2; ++v) level2_[v] = LevelOf(o2_.degree(v));
  map_1to2_.resize(n1, kInvalidNode);
  map_2to1_.resize(n2, kInvalidNode);
  // The shard of an existing node never changes (the stored score runs
  // keyed under it must stay in their cells); new nodes extend the pinned
  // range partition, clamped into [0, S).
  const size_t old_n1 = shard1_.size();
  shard1_.resize(n1);
  const uint64_t denom = std::max<uint64_t>(1, n1_pinned_);
  for (NodeId u = static_cast<NodeId>(old_n1); u < n1; ++u) {
    shard1_[u] = static_cast<uint32_t>(
        std::min<uint64_t>(static_cast<uint64_t>(num_shards_) - 1,
                           static_cast<uint64_t>(u) *
                               static_cast<uint64_t>(num_shards_) / denom));
  }
  selection_.EnsureNodeCapacity(n1, n2);
}

size_t IncrementalMatcher::EmitLinks(
    std::span<const std::pair<NodeId, NodeId>> links, uint32_t stamp,
    int32_t sign, PhaseStats* stats, bool mark_dirty,
    const std::vector<uint8_t>* changed1, const std::vector<uint8_t>* changed2) {
  if (links.empty()) return 0;
  const NodeId dmin = static_cast<NodeId>(1u)
                      << config_.matcher.min_bucket_exponent;
  struct RadixDelta {
    std::vector<std::vector<std::vector<uint64_t>>> keys;  // [level][shard]
    uint64_t emissions = 0;
  };
  const size_t num_items = links.size();

  Timer emit_timer;
  // Same shape as the batch matcher's radix emission, over the overlay's
  // merged adjacency. The overlay iterates ascending by id (no
  // degree-descending order without a CSR), so the dmin cut is a filter
  // rather than a prefix break; SortAndCount absorbs any key order.
  //
  // With `changed1`/`changed2` set (the batch-apply retraction/re-emission
  // passes), the product is restricted to pairs with a changed-edge
  // endpoint on either side. That is exactly the set of pairs whose
  // contribution from this link can differ between the old and new graph
  // state: a pair's count depends on the link endpoints' adjacency (only
  // changed-endpoint members appear or vanish) and on each member's
  // degree — its level cell and dmin cut — which only moves for
  // changed-edge endpoints. Retracting and re-emitting just this slice
  // nets to the same per-(key, stamp) fold as the full product while
  // keeping the emission O(deg) per dirty link instead of O(deg^2) — and,
  // since the slice's pair levels are capped by the changed node's level,
  // low-degree churn stays out of high-level cells, which is what lets
  // high-bucket replay rounds keep fast-forwarding.
  auto emit_range = [this, links, dmin, changed1, changed2](
                        RadixDelta& delta, size_t lo, size_t hi) {
    if (delta.keys.empty()) delta.keys.resize(kNumLevels);
    auto& keys = delta.keys;
    auto in = [](const std::vector<uint8_t>* set, NodeId node) {
      return static_cast<size_t>(node) < set->size() &&
             (*set)[node] != 0;
    };
    std::vector<NodeId> changed_v;  // N(a2) ∩ changed2, per link
    for (size_t item = lo; item < hi; ++item) {
      const auto [a1, a2] = links[item];
      const bool restricted = changed1 != nullptr;
      if (restricted) {
        changed_v.clear();
        o2_.ForEachNeighbor(a2, [&](NodeId v) {
          if (o2_.degree(v) >= dmin && in(changed2, v)) {
            changed_v.push_back(v);
          }
        });
      }
      o1_.ForEachNeighbor(a1, [&](NodeId u) {
        if (o1_.degree(u) < dmin) return;
        const uint8_t lu = level1_[u];
        const uint32_t shard = shard1_[u];
        auto emit_pair = [&](NodeId v) {
          const uint8_t level = std::min(lu, level2_[v]);
          if (keys[level].empty()) {
            keys[level].resize(static_cast<size_t>(num_shards_));
          }
          keys[level][shard].push_back(PackPair(u, v));
          ++delta.emissions;
        };
        if (restricted && !in(changed1, u)) {
          // Unchanged g1 member: only pairs against changed g2 members.
          for (NodeId v : changed_v) emit_pair(v);
          return;
        }
        o2_.ForEachNeighbor(a2, [&](NodeId v) {
          if (o2_.degree(v) < dmin) return;
          emit_pair(v);
        });
      });
    }
  };
  const size_t grain =
      config_.matcher.scheduler_grain > 0
          ? static_cast<size_t>(config_.matcher.scheduler_grain)
          : ThreadPool::GrainSize(num_items, pool_.num_threads(), 1, 64);
  std::vector<RadixDelta> deltas = ParallelProduce<RadixDelta>(
      &pool_, scheduler_, num_items, static_cast<size_t>(num_shards_) * 4,
      grain, emit_range);
  if (stats != nullptr) stats->emit_seconds += emit_timer.Seconds();

  Timer merge_timer;
  PlacedLoopStats merge_placed;
  std::vector<uint8_t> call_touched;
  if (mark_dirty) call_touched.assign(cells_.size(), 0);
  uint8_t* const call_touched_ptr =
      call_touched.empty() ? nullptr : call_touched.data();
  placement_.ParallelForPlaced(
      &pool_, scheduler_, cells_.size(), CellDomainFn(),
      [this, &deltas, stamp, sign, call_touched_ptr](size_t cell) {
        const size_t level = cell / static_cast<size_t>(num_shards_);
        const size_t shard = cell % static_cast<size_t>(num_shards_);
        size_t total = 0;
        for (const RadixDelta& delta : deltas) {
          if (delta.keys.empty()) continue;
          const auto& level_keys = delta.keys[level];
          if (level_keys.empty()) continue;
          total += level_keys[shard].size();
        }
        if (total == 0) return;
        std::vector<uint64_t> raw;
        raw.reserve(total);
        for (const RadixDelta& delta : deltas) {
          if (delta.keys.empty()) continue;
          const auto& level_keys = delta.keys[level];
          if (level_keys.empty()) continue;
          const auto& chunk = level_keys[shard];
          raw.insert(raw.end(), chunk.begin(), chunk.end());
        }
        std::vector<uint64_t> scratch;
        SortedCountRun run = SortAndCount(std::move(raw), scratch);
        cells_[cell].Append(stamp, std::move(run), sign);
        touched_cells_[cell] = 1;
        if (call_touched_ptr != nullptr) call_touched_ptr[cell] = 1;
      },
      &merge_placed);
  if (mark_dirty) {
    for (size_t cell = 0; cell < call_touched.size(); ++cell) {
      if (call_touched[cell] == 0) continue;
      const size_t level = cell / static_cast<size_t>(num_shards_);
      level_dirty_stamp_[level] = std::min(level_dirty_stamp_[level], stamp);
    }
  }
  if (stats != nullptr) {
    stats->merge_seconds += merge_timer.Seconds();
    stats->local_unit_tasks += merge_placed.local_tasks;
    stats->remote_unit_steals += merge_placed.remote_steals;
  }

  size_t emissions = 0;
  for (const RadixDelta& delta : deltas) {
    emissions += static_cast<size_t>(delta.emissions);
  }
  if (stats != nullptr) stats->emissions += emissions;
  return emissions;
}

ServeBatchStats IncrementalMatcher::ApplyBatch(
    const std::vector<EdgeDelta>& deltas) {
  Timer timer;
  ServeBatchStats stats;
  stats.batch = batches_applied_ + 1;
  stats.deltas_in = deltas.size();
  std::fill(touched_cells_.begin(), touched_cells_.end(), 0);
  level_dirty_stamp_.assign(static_cast<size_t>(kNumLevels), kNoDirtyStamp);

  const NodeId old_n1 = o1_.num_nodes();
  const NodeId old_n2 = o2_.num_nodes();

  // (1) Net out the batch: per canonical edge key, the presence before the
  // batch and after it. Only edges whose presence *changed* end-to-end act
  // on the session — an insert/delete pair inside one batch, a re-insert
  // of a present edge, or a delete of an absent one are all no-ops.
  std::unordered_map<uint64_t, bool> initial[2], current[2];
  for (const EdgeDelta& d : deltas) {
    if (d.u == d.v) continue;  // self-loops never enter the graphs
    const int g = d.graph == 1 ? 0 : 1;
    const OverlayGraph& o = g == 0 ? o1_ : o2_;
    const uint64_t key = PackPair(std::min(d.u, d.v), std::max(d.u, d.v));
    auto [it, inserted] = current[g].try_emplace(key, false);
    if (inserted) {
      const bool present = o.HasEdge(d.u, d.v);
      initial[g].emplace(key, present);
      it->second = present;
    }
    it->second = d.insert;
  }
  std::vector<uint64_t> changed1, changed2;
  for (const auto& [key, now] : current[0]) {
    if (now != initial[0][key]) changed1.push_back(key);
  }
  for (const auto& [key, now] : current[1]) {
    if (now != initial[1][key]) changed2.push_back(key);
  }
  // Hash order is not deterministic; the rest of the batch is.
  std::sort(changed1.begin(), changed1.end());
  std::sort(changed2.begin(), changed2.end());
  stats.deltas_applied = changed1.size() + changed2.size();

  // (2) Dirty node sets over the *old* node range: the endpoints of
  // changed edges plus their old neighbours. A link's emission depends on
  // its endpoint's adjacency and on each neighbour's degree (level, dmin
  // cut); both kinds of change are covered — an adjacency change dirties
  // the endpoint itself, a neighbour's degree change dirties every node
  // adjacent to it.
  std::vector<uint8_t> dirty1(old_n1, 0), dirty2(old_n2, 0);
  auto mark_dirty = [](const OverlayGraph& o, NodeId node, NodeId old_n,
                       std::vector<uint8_t>& dirty) {
    if (node >= old_n) return;  // new node: no old links can touch it
    dirty[node] = 1;
    o.ForEachNeighbor(node, [&dirty](NodeId w) { dirty[w] = 1; });
  };
  for (uint64_t key : changed1) {
    mark_dirty(o1_, PairFirst(key), old_n1, dirty1);
    mark_dirty(o1_, PairSecond(key), old_n1, dirty1);
  }
  for (uint64_t key : changed2) {
    mark_dirty(o2_, PairFirst(key), old_n2, dirty2);
    mark_dirty(o2_, PairSecond(key), old_n2, dirty2);
  }
  stats.dirty_nodes =
      static_cast<size_t>(std::count(dirty1.begin(), dirty1.end(), 1)) +
      static_cast<size_t>(std::count(dirty2.begin(), dirty2.end(), 1));

  // Changed-edge endpoint flags (id-stable across the mutation), the
  // EmitLinks restriction sets: a dirty link's contribution differs
  // between old and new state only at pairs involving one of these nodes.
  std::vector<uint8_t> changed_nodes1, changed_nodes2;
  auto flag_endpoints = [](const std::vector<uint64_t>& changed,
                           std::vector<uint8_t>& flags) {
    for (uint64_t key : changed) {
      const NodeId hi = std::max(PairFirst(key), PairSecond(key));
      if (flags.size() <= static_cast<size_t>(hi)) {
        flags.resize(static_cast<size_t>(hi) + 1, 0);
      }
      flags[PairFirst(key)] = 1;
      flags[PairSecond(key)] = 1;
    }
  };
  flag_endpoints(changed1, changed_nodes1);
  flag_endpoints(changed2, changed_nodes2);

  // (3) Dirty links, grouped by the stamp they emitted at (seeds: 0; the
  // links of round k: k+1). On a fresh session nothing has emitted yet, so
  // there is nothing to retract — the replay emits everything.
  const size_t num_stamps = rounds_.size() + 1;
  std::vector<std::vector<std::pair<NodeId, NodeId>>> dirty_by_stamp(
      num_stamps);
  if (seeds_emitted_) {
    size_t round = 0;
    for (size_t i = 0; i < links_.size(); ++i) {
      uint32_t stamp = 0;
      if (i >= num_seeds_) {
        while (round < rounds_.size() &&
               i >= rounds_[round].first_link + rounds_[round].num_links) {
          ++round;
        }
        RECONCILE_CHECK_LT(round, rounds_.size());
        stamp = static_cast<uint32_t>(round) + 1;
      }
      const auto [a1, a2] = links_[i];
      if (dirty1[a1] || dirty2[a2]) {
        dirty_by_stamp[stamp].push_back(links_[i]);
        ++stats.dirty_links;
      }
    }
  }

  // (4) Retraction: negative mirrors of the changed slice of every dirty
  // link's contributions — pairs with a changed-edge endpoint, the only
  // ones whose count or cell can differ — at the original stamps, against
  // the *old* graph state.
  for (size_t s = 0; s < num_stamps; ++s) {
    if (!dirty_by_stamp[s].empty()) {
      EmitLinks(dirty_by_stamp[s], static_cast<uint32_t>(s), -1, nullptr,
                /*mark_dirty=*/true, &changed_nodes1, &changed_nodes2);
    }
  }

  // (5) Apply the net deltas to the overlays (deterministic key order).
  for (uint64_t key : changed1) {
    const NodeId u = PairFirst(key), v = PairSecond(key);
    RECONCILE_CHECK(current[0][key] ? o1_.InsertEdge(u, v)
                                    : o1_.DeleteEdge(u, v));
  }
  for (uint64_t key : changed2) {
    const NodeId u = PairFirst(key), v = PairSecond(key);
    RECONCILE_CHECK(current[1][key] ? o2_.InsertEdge(u, v)
                                    : o2_.DeleteEdge(u, v));
  }

  // (6) Degrees moved: refresh levels, grow maps/shards/selection tables.
  SyncDerivedState();

  // Mid-batch fault hook: retraction is on disk-visible state (score runs)
  // but re-emission and replay have not happened. A `crash:serve_apply=k`
  // kill here is the worst case the checkpoint/resume contract must cover.
  FaultValuePoint("serve_apply", stats.batch);

  // (7) Re-emit the same changed slice of the dirty links at their
  // original stamps against the *new* state — every round's fold now sees
  // them as if they had always been emitted on the new graphs.
  for (size_t s = 0; s < num_stamps; ++s) {
    if (!dirty_by_stamp[s].empty()) {
      EmitLinks(dirty_by_stamp[s], static_cast<uint32_t>(s), +1, nullptr,
                /*mark_dirty=*/true, &changed_nodes1, &changed_nodes2);
    }
  }

  // (8) Fold each cell's runs within their stamps (retract + re-emit pairs
  // collapse; zero-net keys drop). Never across stamps — that would
  // destroy the "as of round r" cut.
  placement_.ParallelForPlaced(
      &pool_, scheduler_, cells_.size(), CellDomainFn(),
      [this](size_t cell) { cells_[cell].CompactStamps(); });

  // (9) Re-run the round schedule against the repaired score state.
  Replay(&stats);

  // (10) Bookkeeping.
  ++batches_applied_;
  stats.rescored_units = static_cast<size_t>(
      std::count(touched_cells_.begin(), touched_cells_.end(), 1));
  stats.num_links = links_.size();

  // (11) Overlay compaction cadence (scan speed only; results identical).
  if (config_.compact_overlay_every > 0 &&
      batches_applied_ % config_.compact_overlay_every == 0) {
    o1_.Compact(&pool_);
    o2_.Compact(&pool_);
  }
  stats.seconds = timer.Seconds();
  return stats;
}

void IncrementalMatcher::Replay(ServeBatchStats* stats) {
  const std::vector<std::pair<NodeId, NodeId>> old_links = std::move(links_);
  const std::vector<ServeRound> old_rounds = std::move(rounds_);
  links_.assign(old_links.begin(),
                old_links.begin() + static_cast<ptrdiff_t>(num_seeds_));
  rounds_.clear();
  std::fill(map_1to2_.begin(), map_1to2_.end(), kInvalidNode);
  std::fill(map_2to1_.begin(), map_2to1_.end(), kInvalidNode);
  for (const auto& [u, v] : links_) {
    map_1to2_[u] = v;
    map_2to1_[v] = u;
  }
  if (!seeds_emitted_) {
    EmitLinks(std::span(links_).first(num_seeds_), 0, +1, nullptr);
    seeds_emitted_ = true;
  }

  auto truncate_from = [this](uint32_t stamp) {
    placement_.ParallelForPlaced(
        &pool_, scheduler_, cells_.size(), CellDomainFn(),
        [this, stamp](size_t cell) { cells_[cell].TruncateFrom(stamp); });
  };

  // Two-level accumulated fold, the serve analogue of an LSM memtable/L1
  // split: each cell keeps a large *cold* fold plus a small *hot* fold, the
  // two covering disjoint stamp windows up to the cell's watermark. Every
  // live round folds the newly visible stamps into the hot side
  // (`AccumulateInto` — O(hot + window), both small), and selection scans
  // cold + hot as a plain 2-way merge of sorted positive runs
  // (`ScoreUnit`), so the per-pair scan cost matches the batch engine's
  // tier scan instead of re-folding every stamp on every round. When the
  // hot side rivals the cold one it is *promoted* (`MergeFrom`) — an
  // O(cold) copy paid geometrically rarely; in a typical replay that
  // happens exactly once, at the first live round, where the window is the
  // whole pre-divergence history and cold is still empty (a free move).
  // Splitting an arbitrary stamp window off the prefix fold is sound
  // because retraction is stamp-local, so per-stamp — hence per-window —
  // nets are >= 0 (see AccumulateInto). The watermark advances even over
  // empty windows, keeping every stamp covered exactly once; the scanned
  // fold is identical whatever the promotion cadence, so matchings are
  // unaffected by it. A divergence truncation only drops stamps above
  // every watermark (the folds never run ahead of the round cursor), so
  // they never hold retracted state. Fast-forwarded rounds skip all of
  // this; the first live round's window covers the gap.
  std::vector<FoldedRun> fold_cold(cells_.size());
  std::vector<FoldedRun> fold_hot(cells_.size());
  std::vector<int> fold_watermark(cells_.size(), -1);
  auto advance_fold = [this, &fold_cold, &fold_hot, &fold_watermark](int k) {
    placement_.ParallelForPlaced(
        &pool_, scheduler_, cells_.size(), CellDomainFn(),
        [this, &fold_cold, &fold_hot, &fold_watermark, k](size_t cell) {
          const int watermark = fold_watermark[cell];
          if (k <= watermark) return;
          const uint32_t from = static_cast<uint32_t>(watermark + 1);
          cells_[cell].AccumulateInto(from, static_cast<uint32_t>(k),
                                      &fold_hot[cell]);
          fold_watermark[cell] = k;
          FoldedRun& hot = fold_hot[cell];
          FoldedRun& cold = fold_cold[cell];
          if (hot.keys.size() < std::max<size_t>(cold.keys.size() / 2, 1)) {
            return;  // hot still small; scans 2-way-merge it with cold
          }
          // Promotion. First, dead-key prune the cold fold with
          // `CompactScores`' predicate: a pair with both endpoints matched
          // influences only best-table slots that blocked queries never
          // read, so dropping it cannot change any accepted link — and
          // matched stays matched for the rest of the replay. The batch
          // engine prunes its tiers the same way; serve must leave `cells_`
          // intact for retraction, so the prune lives here, on the
          // transient fold. (A pruned key re-entering from a later window
          // carries a partial net; the selection scan's blocker check
          // rejects it regardless.)
          size_t out = 0;
          for (size_t i = 0; i < cold.keys.size(); ++i) {
            const uint64_t key = cold.keys[i];
            if (map_1to2_[PairFirst(key)] == kInvalidNode ||
                map_2to1_[PairSecond(key)] == kInvalidNode) {
              cold.keys[out] = key;
              cold.counts[out] = cold.counts[i];
              ++out;
            }
          }
          cold.keys.resize(out);
          cold.counts.resize(out);
          cold.MergeFrom(std::move(hot));
        });
  };

  // Per-bucket fast-forward threshold: round k at bucket b scans levels
  // [b, kNumLevels) only, so it reproduces the logged links as long as no
  // dirty stamp <= k landed in those levels (and the incoming maps match —
  // `aligned`). `clean_above[b]` is the suffix-min of level_dirty_stamp_,
  // i.e. the first round index at which some scanned level becomes dirty.
  // Dirty scores below the round's bucket — the common case for churn on
  // low-degree nodes — no longer force high-bucket rounds live.
  std::vector<uint32_t> clean_above(static_cast<size_t>(kNumLevels) + 1,
                                    kNoDirtyStamp);
  for (int level = kNumLevels - 1; level >= 0; --level) {
    clean_above[static_cast<size_t>(level)] =
        std::min(clean_above[static_cast<size_t>(level) + 1],
                 level_dirty_stamp_[static_cast<size_t>(level)]);
  }

  // The cursor mirrors MatcherState exactly: buckets top..bottom per outer
  // iteration (single min-bucket round without bucketing), stop at the
  // iteration cap or on a stable iteration.
  const MatcherConfig& mc = config_.matcher;
  const NodeId max_degree = std::max(o1_.MaxDegree(), o2_.MaxDegree());
  const int top =
      mc.use_degree_bucketing && max_degree > 0 ? FloorLog2(max_degree) : 0;
  const int bottom = std::min(mc.min_bucket_exponent, top);
  int iteration = 1;
  int bucket = mc.use_degree_bucketing ? top : mc.min_bucket_exponent;
  size_t new_links_this_iteration = 0;
  // `aligned` holds while every round so far re-committed exactly the old
  // round's links at the old schedule position — the invariant that makes
  // both the fast-forward and the no-re-emission cases sound.
  bool aligned = true;
  int k = 0;
  bool done = false;
  while (!done) {
    const bool have_old = k < static_cast<int>(old_rounds.size());
    const bool coords_match = have_old &&
                              old_rounds[k].iteration == iteration &&
                              old_rounds[k].bucket == bucket;
    size_t accepted = 0;
    const size_t ff_bucket = static_cast<size_t>(
        std::clamp(bucket, 0, kNumLevels));
    if (aligned && coords_match &&
        static_cast<uint32_t>(k) < clean_above[ff_bucket]) {
      // Fast-forward: every score this round folds (stamps <= k, levels >=
      // bucket) is untouched by the batch and the incoming maps are
      // identical, so selection would reproduce the logged links verbatim.
      // Apply them from the log without selecting.
      const ServeRound& r = old_rounds[k];
      const size_t first = links_.size();
      RECONCILE_CHECK_EQ(first, static_cast<size_t>(r.first_link));
      for (uint64_t i = r.first_link; i < r.first_link + r.num_links; ++i) {
        const auto [u, v] = old_links[i];
        RECONCILE_CHECK_EQ(map_1to2_[u], kInvalidNode);
        RECONCILE_CHECK_EQ(map_2to1_[v], kInvalidNode);
        map_1to2_[u] = v;
        map_2to1_[v] = u;
        links_.push_back(old_links[i]);
      }
      rounds_.push_back(ServeRound{iteration, bucket,
                                   static_cast<uint64_t>(first),
                                   r.num_links});
      accepted = static_cast<size_t>(r.num_links);
      ++stats->skipped_rounds;
    } else {
      // Live round: full selection over the fold as of stamp k.
      Timer round_timer;
      PhaseStats phase;
      phase.iteration = iteration;
      phase.bucket_exponent = bucket;
      phase.links_in = links_.size();
      phase.num_threads = pool_.num_threads();
      phase.placement_domains =
          placement_.active() ? placement_.num_domains() : 1;
      advance_fold(k);
      std::vector<ScoreUnit> units;
      units.reserve(static_cast<size_t>(kNumLevels - bucket) *
                    static_cast<size_t>(num_shards_));
      for (int level = bucket; level < kNumLevels; ++level) {
        for (int shard = 0; shard < num_shards_; ++shard) {
          const size_t cell =
              static_cast<size_t>(level) * static_cast<size_t>(num_shards_) +
              static_cast<size_t>(shard);
          units.push_back(ScoreUnit(&fold_cold[cell], &fold_hot[cell]));
        }
      }
      SelectionContext ctx;
      ctx.pool = &pool_;
      ctx.scheduler = scheduler_;
      ctx.placement = &placement_;
      ctx.domain_of = CellDomainFn();
      ctx.min_score = mc.min_score;
      ctx.map_1to2 = &map_1to2_;
      ctx.map_2to1 = &map_2to1_;
      ctx.links = &links_;
      const size_t first = links_.size();
      accepted = selection_.SelectAndCommit(units, ctx, &phase);
      // Canonical round order: sort by g1 endpoint (unique within a round),
      // so the comparison against the old log is plain range equality and
      // the log layout is identical however selection was scheduled.
      std::sort(links_.begin() + static_cast<ptrdiff_t>(first), links_.end());
      rounds_.push_back(ServeRound{iteration, bucket,
                                   static_cast<uint64_t>(first),
                                   static_cast<uint64_t>(accepted)});
      ++stats->replayed_rounds;

      bool emit_fresh = true;
      if (aligned && coords_match) {
        const ServeRound& r = old_rounds[k];
        const bool equal =
            accepted == static_cast<size_t>(r.num_links) &&
            std::equal(links_.begin() + static_cast<ptrdiff_t>(first),
                       links_.end(),
                       old_links.begin() +
                           static_cast<ptrdiff_t>(r.first_link));
        if (equal) {
          // Same links as last time: their stamp-(k+1) contributions are
          // already in the cells (re-emitted if dirty) — emitting again
          // would double-count.
          emit_fresh = false;
        } else {
          aligned = false;
          stats->diverged_at = k;
          // Every later stamp reflects the old chain of rounds; drop them
          // all — the live continuation re-emits as it goes.
          truncate_from(static_cast<uint32_t>(k) + 1);
        }
      } else if (aligned) {
        aligned = false;
        if (have_old) {
          // Schedule shape changed at k (degree growth moved the top
          // bucket): the old log is stale from here on.
          stats->diverged_at = k;
          truncate_from(static_cast<uint32_t>(k) + 1);
        }
        // Past the old log's end: nothing stale to drop.
      }
      if (emit_fresh) {
        EmitLinks(std::span<const std::pair<NodeId, NodeId>>(links_)
                      .subspan(first),
                  static_cast<uint32_t>(k) + 1, +1, &phase);
      }
      phase.new_links = accepted;
      phase.seconds = round_timer.Seconds();
      stats->rounds.push_back(phase);
    }
    new_links_this_iteration += accepted;
    ++k;
    if (mc.use_degree_bucketing && bucket > bottom) {
      --bucket;
    } else if ((mc.stop_when_stable && new_links_this_iteration == 0) ||
               iteration >= mc.num_iterations) {
      done = true;
    } else {
      ++iteration;
      new_links_this_iteration = 0;
      bucket = mc.use_degree_bucketing ? top : mc.min_bucket_exponent;
    }
  }
  stats->total_rounds = k;
  // The new schedule ended while still aligned but the old one ran longer
  // (shrunk top bucket / earlier stability): the old tail's stamps are
  // stale.
  if (aligned && static_cast<int>(old_rounds.size()) > k) {
    truncate_from(static_cast<uint32_t>(k) + 1);
  }

  std::unordered_set<uint64_t> old_set;
  old_set.reserve(old_links.size());
  for (const auto& [u, v] : old_links) old_set.insert(PackPair(u, v));
  for (const auto& [u, v] : links_) {
    if (old_set.erase(PackPair(u, v)) == 0) ++stats->links_added;
  }
  stats->links_removed = old_set.size();
}

MatchResult IncrementalMatcher::Result() const {
  MatchResult result;
  result.seeds.assign(links_.begin(),
                      links_.begin() + static_cast<ptrdiff_t>(num_seeds_));
  result.map_1to2 = map_1to2_;
  result.map_2to1 = map_2to1_;
  return result;
}

// --- Snapshots -----------------------------------------------------------

bool IncrementalMatcher::SaveSnapshot(const std::string& path,
                                      std::string* error) const {
  SnapshotWriter writer;

  writer.BeginSection(kSectionMeta);
  writer.AppendU32(kServeStateVersion);
  writer.AppendU32(config_.matcher.min_score);
  writer.AppendI32(config_.matcher.num_iterations);
  writer.AppendU8(config_.matcher.use_degree_bucketing ? 1 : 0);
  writer.AppendI32(config_.matcher.min_bucket_exponent);
  writer.AppendU8(config_.matcher.stop_when_stable ? 1 : 0);
  writer.AppendI32(num_shards_);
  writer.AppendU64(n1_pinned_);
  writer.AppendI32(batches_applied_);
  writer.AppendU64(deltas_consumed_);
  writer.AppendU64(num_seeds_);
  writer.AppendU8(seeds_emitted_ ? 1 : 0);
  writer.AppendU64(links_.size());
  writer.AppendU64(rounds_.size());
  writer.EndSection();

  // Self-contained: the snapshot carries both graphs (canonical edge
  // lists), so a resume needs no replay of the delta stream to rebuild
  // them.
  writer.BeginSection(kSectionGraph1);
  writer.AppendU64(o1_.num_nodes());
  writer.AppendVector(o1_.Materialize().edges());
  writer.EndSection();
  writer.BeginSection(kSectionGraph2);
  writer.AppendU64(o2_.num_nodes());
  writer.AppendVector(o2_.Materialize().edges());
  writer.EndSection();

  writer.BeginSection(kSectionLinks);
  writer.AppendVector(links_);
  writer.EndSection();

  writer.BeginSection(kSectionRounds);
  for (const ServeRound& r : rounds_) {
    writer.AppendI32(r.iteration);
    writer.AppendI32(r.bucket);
    writer.AppendU64(r.first_link);
    writer.AppendU64(r.num_links);
  }
  writer.EndSection();

  writer.BeginSection(kSectionScores);
  for (const StampedRuns& cell : cells_) {
    writer.AppendU32(static_cast<uint32_t>(cell.num_runs()));
    for (const StampedRun& run : cell.runs()) {
      writer.AppendU32(run.stamp);
      writer.AppendVector(run.keys);
      writer.AppendVector(run.counts);
    }
  }
  writer.EndSection();

  return writer.Commit(path, error);
}

bool IncrementalMatcher::LoadSnapshot(const std::string& path,
                                      std::string* error) {
  SnapshotReader reader;
  if (!reader.Open(path, error)) return false;

  SnapshotReader::Section* meta = reader.Find(kSectionMeta);
  if (meta == nullptr) {
    *error = "snapshot has no META section";
    return false;
  }
  uint32_t version = 0, min_score = 0;
  int32_t num_iterations = 0, min_bucket_exponent = 0, num_shards = 0;
  int32_t batches_applied = 0;
  uint8_t bucketing = 0, stop_when_stable = 0, seeds_emitted = 0;
  uint64_t n1_pinned = 0, deltas_consumed = 0, num_seeds = 0, num_links = 0,
           num_rounds = 0;
  meta->ReadU32(&version);
  meta->ReadU32(&min_score);
  meta->ReadI32(&num_iterations);
  meta->ReadU8(&bucketing);
  meta->ReadI32(&min_bucket_exponent);
  meta->ReadU8(&stop_when_stable);
  meta->ReadI32(&num_shards);
  meta->ReadU64(&n1_pinned);
  meta->ReadI32(&batches_applied);
  meta->ReadU64(&deltas_consumed);
  meta->ReadU64(&num_seeds);
  meta->ReadU8(&seeds_emitted);
  meta->ReadU64(&num_links);
  meta->ReadU64(&num_rounds);
  if (!meta->ok() || !meta->AtEnd()) {
    *error = "META section malformed";
    return false;
  }
  if (version != kServeStateVersion) {
    *error = "serve state version mismatch";
    return false;
  }
  const MatcherConfig& mc = config_.matcher;
  if (min_score != mc.min_score || num_iterations != mc.num_iterations ||
      (bucketing != 0) != mc.use_degree_bucketing ||
      min_bucket_exponent != mc.min_bucket_exponent ||
      (stop_when_stable != 0) != mc.stop_when_stable) {
    *error = "snapshot was taken under different matching semantics";
    return false;
  }
  if (num_shards != num_shards_) {
    *error = "snapshot shard count " + std::to_string(num_shards) +
             " != configured " + std::to_string(num_shards_) +
             " (pass --shards explicitly to resume)";
    return false;
  }
  if (num_seeds != seeds_.size()) {
    *error = "snapshot seed count mismatch";
    return false;
  }
  if (num_seeds > num_links) {
    *error = "snapshot link log shorter than its seed prefix";
    return false;
  }

  auto load_graph = [&reader, error](uint32_t id, const char* name,
                                     Graph* out) -> bool {
    SnapshotReader::Section* section = reader.Find(id);
    if (section == nullptr) {
      *error = std::string("snapshot has no ") + name + " section";
      return false;
    }
    uint64_t num_nodes = 0;
    std::vector<Edge> edges;
    if (!section->ReadU64(&num_nodes) || !section->ReadVector(&edges) ||
        !section->AtEnd()) {
      *error = std::string(name) + " section malformed";
      return false;
    }
    EdgeList list(static_cast<NodeId>(num_nodes));
    list.Reserve(edges.size());
    for (const auto& [u, v] : edges) {
      if (u >= num_nodes || v >= num_nodes || u == v) {
        *error = std::string(name) + " section has an out-of-range edge";
        return false;
      }
      list.Add(u, v);
    }
    *out = Graph::FromEdgeList(std::move(list), nullptr);
    if (out->num_nodes() != num_nodes || out->num_edges() != edges.size()) {
      *error = std::string(name) + " section has duplicate edges";
      return false;
    }
    return true;
  };
  Graph g1, g2;
  if (!load_graph(kSectionGraph1, "GRAPH1", &g1)) return false;
  if (!load_graph(kSectionGraph2, "GRAPH2", &g2)) return false;

  SnapshotReader::Section* links_section = reader.Find(kSectionLinks);
  if (links_section == nullptr) {
    *error = "snapshot has no LINKS section";
    return false;
  }
  std::vector<std::pair<NodeId, NodeId>> links;
  if (!links_section->ReadVector(&links) || !links_section->AtEnd() ||
      links.size() != num_links) {
    *error = "LINKS section malformed";
    return false;
  }
  for (size_t i = 0; i < seeds_.size(); ++i) {
    if (links[i] != seeds_[i]) {
      *error = "snapshot seed prefix does not match the provided seeds";
      return false;
    }
  }
  std::vector<NodeId> map_1to2(g1.num_nodes(), kInvalidNode);
  std::vector<NodeId> map_2to1(g2.num_nodes(), kInvalidNode);
  for (const auto& [u, v] : links) {
    if (u >= g1.num_nodes() || v >= g2.num_nodes() ||
        map_1to2[u] != kInvalidNode || map_2to1[v] != kInvalidNode) {
      *error = "LINKS section is not a one-to-one in-range matching";
      return false;
    }
    map_1to2[u] = v;
    map_2to1[v] = u;
  }

  SnapshotReader::Section* rounds_section = reader.Find(kSectionRounds);
  if (rounds_section == nullptr) {
    *error = "snapshot has no ROUNDS section";
    return false;
  }
  std::vector<ServeRound> rounds;
  rounds.reserve(static_cast<size_t>(num_rounds));
  uint64_t cursor = num_seeds;
  for (uint64_t i = 0; i < num_rounds; ++i) {
    ServeRound r;
    rounds_section->ReadI32(&r.iteration);
    rounds_section->ReadI32(&r.bucket);
    rounds_section->ReadU64(&r.first_link);
    rounds_section->ReadU64(&r.num_links);
    if (!rounds_section->ok() || r.first_link != cursor ||
        r.num_links > num_links - cursor) {
      *error = "ROUNDS section does not tile the link log";
      return false;
    }
    cursor += r.num_links;
    rounds.push_back(r);
  }
  if (!rounds_section->AtEnd() || cursor != num_links) {
    *error = "ROUNDS section does not tile the link log";
    return false;
  }

  SnapshotReader::Section* scores = reader.Find(kSectionScores);
  if (scores == nullptr) {
    *error = "snapshot has no SCORES section";
    return false;
  }
  std::vector<StampedRuns> cells(cells_.size());
  bool scores_valid = true;
  for (StampedRuns& cell : cells) {
    uint32_t runs = 0;
    if (!scores->ReadU32(&runs)) {
      scores_valid = false;
      break;
    }
    for (uint32_t i = 0; i < runs && scores_valid; ++i) {
      StampedRun run;
      scores->ReadU32(&run.stamp);
      scores->ReadVector(&run.keys);
      scores->ReadVector(&run.counts);
      if (!scores->ok() || run.keys.size() != run.counts.size() ||
          run.stamp > num_rounds) {
        scores_valid = false;
        break;
      }
      cell.AppendRaw(std::move(run));
    }
    if (!scores_valid) break;
  }
  if (!scores_valid || !scores->ok() || !scores->AtEnd()) {
    *error = "SCORES section malformed";
    return false;
  }

  // Everything validated — commit.
  o1_ = OverlayGraph(std::move(g1));
  o2_ = OverlayGraph(std::move(g2));
  n1_pinned_ = n1_pinned;
  shard1_.clear();
  map_1to2_ = std::move(map_1to2);
  map_2to1_ = std::move(map_2to1);
  links_ = std::move(links);
  rounds_ = std::move(rounds);
  cells_ = std::move(cells);
  touched_cells_.assign(cells_.size(), 0);
  seeds_emitted_ = seeds_emitted != 0;
  batches_applied_ = batches_applied;
  deltas_consumed_ = deltas_consumed;
  SyncDerivedState();
  return true;
}

}  // namespace reconcile
