#include "reconcile/serve/delta_log.h"

#include <iostream>
#include <sstream>

namespace reconcile {

namespace {

enum class LineKind { kBlank, kCommit, kRecord };

// Parses one line of the delta-log format. Returns false with a diagnostic
// on malformed input; `*kind` distinguishes blanks/comments, commits and
// data records.
bool ParseLine(const std::string& line, uint64_t line_number, LineKind* kind,
               EdgeDelta* out, std::string* error) {
  std::istringstream in(line);
  std::string op;
  if (!(in >> op) || op[0] == '#') {
    *kind = LineKind::kBlank;
    return true;
  }
  if (op == "commit") {
    *kind = LineKind::kCommit;
    return true;
  }
  if (op != "add" && op != "del") {
    *error = "line " + std::to_string(line_number) + ": unknown op '" + op +
             "' (expected add/del/commit)";
    return false;
  }
  int graph = 0;
  long long u = -1, v = -1;
  if (!(in >> graph >> u >> v) || (graph != 1 && graph != 2) || u < 0 ||
      v < 0 || u > static_cast<long long>(kInvalidNode) ||
      v > static_cast<long long>(kInvalidNode)) {
    *error = "line " + std::to_string(line_number) + ": expected '" + op +
             " <graph 1|2> <u> <v>', got '" + line + "'";
    return false;
  }
  std::string extra;
  if (in >> extra) {
    *error = "line " + std::to_string(line_number) +
             ": trailing tokens after '" + op + "'";
    return false;
  }
  *kind = LineKind::kRecord;
  out->graph = graph;
  out->insert = (op == "add");
  out->u = static_cast<NodeId>(u);
  out->v = static_cast<NodeId>(v);
  return true;
}

}  // namespace

bool DeltaReader::Open(const std::string& path, std::string* error) {
  line_number_ = 0;
  records_consumed_ = 0;
  if (path == "-") {
    in_ = &std::cin;
    return true;
  }
  file_.open(path);
  if (!file_.is_open()) {
    *error = "cannot open delta log '" + path + "'";
    return false;
  }
  in_ = &file_;
  return true;
}

bool DeltaReader::NextRecord(bool pending, EdgeDelta* out, bool* batch_closed,
                             std::string* error) {
  *batch_closed = false;
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_number_;
    LineKind kind;
    if (!ParseLine(line, line_number_, &kind, out, error)) return false;
    switch (kind) {
      case LineKind::kBlank:
        continue;
      case LineKind::kCommit:
        // A commit only closes a non-empty batch; leading commits (e.g.
        // re-read after a resume skipped past them) are dropped so the
        // remaining stream re-batches the same way every time.
        if (pending) {
          *batch_closed = true;
          return false;
        }
        continue;
      case LineKind::kRecord:
        ++records_consumed_;
        return true;
    }
  }
  return false;  // clean end of stream, *error untouched
}

bool DeltaReader::NextBatch(size_t max_records, std::vector<EdgeDelta>* out,
                            bool* end_of_stream, std::string* error) {
  out->clear();
  *end_of_stream = false;
  error->clear();
  EdgeDelta delta;
  bool batch_closed = false;
  while (max_records == 0 || out->size() < max_records) {
    if (!NextRecord(!out->empty(), &delta, &batch_closed, error)) {
      if (!error->empty()) return false;
      if (!batch_closed) *end_of_stream = true;
      return true;
    }
    out->push_back(delta);
  }
  return true;
}

bool DeltaReader::SkipRecords(uint64_t n, std::string* error) {
  error->clear();
  EdgeDelta delta;
  bool batch_closed = false;
  for (uint64_t i = 0; i < n; ++i) {
    // pending=false: commits between skipped records are consumed silently.
    if (!NextRecord(false, &delta, &batch_closed, error)) {
      if (error->empty()) {
        *error = "delta log ended after " + std::to_string(i) +
                 " records while fast-forwarding to " + std::to_string(n);
      }
      return false;
    }
  }
  return true;
}

}  // namespace reconcile
