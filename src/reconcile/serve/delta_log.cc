#include "reconcile/serve/delta_log.h"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "reconcile/util/checkpoint.h"

namespace reconcile {

namespace {

enum class LineKind { kBlank, kCommit, kRecord };

// The canonical record text the per-record CRC32 covers: single spaces,
// decimal fields, no crc token. Writer and verifier must agree on this
// byte-for-byte.
std::string CanonicalRecord(const EdgeDelta& delta) {
  return std::string(delta.insert ? "add" : "del") + " " +
         std::to_string(delta.graph) + " " + std::to_string(delta.u) + " " +
         std::to_string(delta.v);
}

// Parses an 8-hex-digit `crc=` token value. Returns false on any
// non-hex digit or wrong length.
bool ParseCrcToken(const std::string& token, uint32_t* out) {
  if (token.size() != 8) return false;
  uint32_t value = 0;
  for (char c : token) {
    uint32_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint32_t>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') digit = static_cast<uint32_t>(c - 'A') + 10;
    else return false;
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

// Parses one line of the delta-log format. Returns false with a diagnostic
// on malformed input; `*kind` distinguishes blanks/comments, commits and
// data records.
bool ParseLine(const std::string& line, uint64_t line_number, LineKind* kind,
               EdgeDelta* out, std::string* error) {
  std::istringstream in(line);
  std::string op;
  if (!(in >> op) || op[0] == '#') {
    *kind = LineKind::kBlank;
    return true;
  }
  if (op == "commit") {
    *kind = LineKind::kCommit;
    return true;
  }
  if (op != "add" && op != "del") {
    *error = "line " + std::to_string(line_number) + ": unknown op '" + op +
             "' (expected add/del/commit)";
    return false;
  }
  int graph = 0;
  long long u = -1, v = -1;
  if (!(in >> graph >> u >> v) || (graph != 1 && graph != 2) || u < 0 ||
      v < 0 || u > static_cast<long long>(kInvalidNode) ||
      v > static_cast<long long>(kInvalidNode)) {
    *error = "line " + std::to_string(line_number) + ": expected '" + op +
             " <graph 1|2> <u> <v>', got '" + line + "'";
    return false;
  }
  out->graph = graph;
  out->insert = (op == "add");
  out->u = static_cast<NodeId>(u);
  out->v = static_cast<NodeId>(v);
  std::string extra;
  if (in >> extra) {
    uint32_t want = 0;
    if (extra.rfind("crc=", 0) != 0 ||
        !ParseCrcToken(extra.substr(4), &want)) {
      *error = "line " + std::to_string(line_number) +
               ": trailing tokens after '" + op +
               "' (expected nothing or crc=XXXXXXXX)";
      return false;
    }
    const std::string canon = CanonicalRecord(*out);
    const uint32_t got = Crc32(canon.data(), canon.size());
    if (got != want) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%08x, expected %08x", want, got);
      *error = "line " + std::to_string(line_number) +
               ": record checksum mismatch (crc=" + buf + ")";
      return false;
    }
    if (in >> extra) {
      *error = "line " + std::to_string(line_number) +
               ": trailing tokens after crc";
      return false;
    }
  }
  *kind = LineKind::kRecord;
  return true;
}

}  // namespace

bool DeltaReader::Open(const std::string& path, std::string* error) {
  line_number_ = 0;
  records_consumed_ = 0;
  truncated_ = false;
  if (path == "-") {
    in_ = &std::cin;
    return true;
  }
  file_.open(path);
  if (!file_.is_open()) {
    *error = "cannot open delta log '" + path + "'";
    return false;
  }
  in_ = &file_;
  return true;
}

bool DeltaReader::NextRecord(bool pending, EdgeDelta* out, bool* batch_closed,
                             std::string* error) {
  *batch_closed = false;
  if (truncated_) return false;  // tolerant mode: stream already cut
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_number_;
    LineKind kind;
    if (!ParseLine(line, line_number_, &kind, out, error)) {
      if (!tolerant_) return false;
      // Torn-tail recovery: the first corrupt/malformed line ends the
      // stream. Everything intact before it has already been returned.
      std::fprintf(stderr,
                   "warning: delta log truncated at corrupt record (%s); "
                   "treating as end of stream\n",
                   error->c_str());
      error->clear();
      truncated_ = true;
      return false;
    }
    switch (kind) {
      case LineKind::kBlank:
        continue;
      case LineKind::kCommit:
        // A commit only closes a non-empty batch; leading commits (e.g.
        // re-read after a resume skipped past them) are dropped so the
        // remaining stream re-batches the same way every time.
        if (pending) {
          *batch_closed = true;
          return false;
        }
        continue;
      case LineKind::kRecord:
        ++records_consumed_;
        return true;
    }
  }
  return false;  // clean end of stream, *error untouched
}

bool DeltaReader::NextBatch(size_t max_records, std::vector<EdgeDelta>* out,
                            bool* end_of_stream, std::string* error) {
  out->clear();
  *end_of_stream = false;
  error->clear();
  EdgeDelta delta;
  bool batch_closed = false;
  while (max_records == 0 || out->size() < max_records) {
    if (!NextRecord(!out->empty(), &delta, &batch_closed, error)) {
      if (!error->empty()) return false;
      if (!batch_closed) *end_of_stream = true;
      return true;
    }
    out->push_back(delta);
  }
  return true;
}

bool DeltaReader::SkipRecords(uint64_t n, std::string* error) {
  error->clear();
  EdgeDelta delta;
  bool batch_closed = false;
  for (uint64_t i = 0; i < n; ++i) {
    // pending=false: commits between skipped records are consumed silently.
    if (!NextRecord(false, &delta, &batch_closed, error)) {
      if (error->empty()) {
        *error = "delta log ended after " + std::to_string(i) +
                 " records while fast-forwarding to " + std::to_string(n);
      }
      return false;
    }
  }
  return true;
}

std::string FormatDeltaRecord(const EdgeDelta& delta) {
  const std::string canon = CanonicalRecord(delta);
  char token[16];
  std::snprintf(token, sizeof(token), " crc=%08x",
                Crc32(canon.data(), canon.size()));
  return canon + token;
}

}  // namespace reconcile
