#include "reconcile/serve/overlay_graph.h"

#include <algorithm>
#include <utility>

#include "reconcile/util/logging.h"
#include "reconcile/util/thread_pool.h"

namespace reconcile {

namespace {

// Sorted-vector set helpers. Diff vectors stay tiny between compactions,
// so O(size) insert/erase beats hash sets on both memory and scan speed.
bool SortedContains(const std::vector<NodeId>& v, NodeId x) {
  return std::binary_search(v.begin(), v.end(), x);
}

// Returns true when `x` was absent and has been inserted.
bool SortedInsert(std::vector<NodeId>* v, NodeId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it != v->end() && *it == x) return false;
  v->insert(it, x);
  return true;
}

// Returns true when `x` was present and has been erased.
bool SortedErase(std::vector<NodeId>* v, NodeId x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) return false;
  v->erase(it);
  return true;
}

}  // namespace

OverlayGraph::OverlayGraph(Graph base)
    : base_(std::move(base)), num_nodes_(base_.num_nodes()),
      num_edges_(base_.num_edges()) {
  added_.resize(num_nodes_);
  removed_.resize(num_nodes_);
  degree_.resize(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) degree_[u] = base_.degree(u);
}

NodeId OverlayGraph::MaxDegree() const {
  NodeId max_degree = 0;
  for (NodeId d : degree_) max_degree = std::max(max_degree, d);
  return max_degree;
}

bool OverlayGraph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_ || u == v) return false;
  if (SortedContains(added_[u], v)) return true;
  if (u < base_.num_nodes() && v < base_.num_nodes() && base_.HasEdge(u, v)) {
    return !SortedContains(removed_[u], v);
  }
  return false;
}

void OverlayGraph::EnsureNode(NodeId u) {
  if (u < num_nodes_) return;
  num_nodes_ = u + 1;
  added_.resize(num_nodes_);
  removed_.resize(num_nodes_);
  degree_.resize(num_nodes_, 0);
}

bool OverlayGraph::InsertEdge(NodeId u, NodeId v) {
  if (u == v) return false;
  EnsureNode(std::max(u, v));
  if (HasEdge(u, v)) return false;
  const bool in_base = u < base_.num_nodes() && v < base_.num_nodes() &&
                       base_.HasEdge(u, v);
  if (in_base) {
    // Re-inserting a deleted base edge cancels the removal diff.
    RECONCILE_CHECK(SortedErase(&removed_[u], v));
    RECONCILE_CHECK(SortedErase(&removed_[v], u));
    num_uncompacted_ -= 2;
  } else {
    RECONCILE_CHECK(SortedInsert(&added_[u], v));
    RECONCILE_CHECK(SortedInsert(&added_[v], u));
    num_uncompacted_ += 2;
  }
  ++degree_[u];
  ++degree_[v];
  ++num_edges_;
  return true;
}

bool OverlayGraph::DeleteEdge(NodeId u, NodeId v) {
  if (!HasEdge(u, v)) return false;
  if (SortedErase(&added_[u], v)) {
    // Deleting a not-yet-compacted insert cancels the addition diff.
    RECONCILE_CHECK(SortedErase(&added_[v], u));
    num_uncompacted_ -= 2;
  } else {
    RECONCILE_CHECK(SortedInsert(&removed_[u], v));
    RECONCILE_CHECK(SortedInsert(&removed_[v], u));
    num_uncompacted_ += 2;
  }
  RECONCILE_CHECK_GT(degree_[u], 0u);
  RECONCILE_CHECK_GT(degree_[v], 0u);
  --degree_[u];
  --degree_[v];
  --num_edges_;
  return true;
}

std::vector<NodeId> OverlayGraph::Neighbors(NodeId u) const {
  std::vector<NodeId> out;
  out.reserve(degree_[u]);
  ForEachNeighbor(u, [&](NodeId v) { out.push_back(v); });
  return out;
}

EdgeList OverlayGraph::Materialize() const {
  EdgeList edges(num_nodes_);
  edges.Reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    ForEachNeighbor(u, [&](NodeId v) {
      if (u < v) edges.Add(u, v);
    });
  }
  RECONCILE_CHECK_EQ(edges.size(), num_edges_);
  return edges;
}

void OverlayGraph::Compact(ThreadPool* pool) {
  if (num_uncompacted_ == 0 && base_.num_nodes() == num_nodes_) return;
  EdgeList edges = Materialize();
  base_ = Graph::FromEdgeList(std::move(edges), pool);
  RECONCILE_CHECK_EQ(base_.num_nodes(), num_nodes_);
  RECONCILE_CHECK_EQ(base_.num_edges(), num_edges_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    added_[u].clear();
    added_[u].shrink_to_fit();
    removed_[u].clear();
    removed_[u].shrink_to_fit();
  }
  num_uncompacted_ = 0;
}

}  // namespace reconcile
