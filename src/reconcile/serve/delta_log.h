#ifndef RECONCILE_SERVE_DELTA_LOG_H_
#define RECONCILE_SERVE_DELTA_LOG_H_

#include <cstdint>
#include <fstream>
#include <istream>
#include <string>
#include <vector>

#include "reconcile/graph/types.h"

namespace reconcile {

/// One edge mutation against one side of the reconciliation input.
struct EdgeDelta {
  int graph = 1;        // 1 or 2
  bool insert = true;   // false = delete
  NodeId u = 0;
  NodeId v = 0;
};

/// Streaming reader for the text delta-log format consumed by
/// `reconcile_serve`:
///
///   add <graph> <u> <v> [crc=XXXXXXXX]   insert edge {u, v} into graph 1|2
///   del <graph> <u> <v> [crc=XXXXXXXX]   delete edge {u, v} from graph 1|2
///   commit                 close the current batch
///   # ...                  comment (ignored)
///                          blank lines are ignored
///
/// The optional trailing `crc=XXXXXXXX` token (8 lowercase/uppercase hex
/// digits) is the CRC32 of the record's canonical form `"op graph u v"`
/// (single spaces, decimal, no crc token) — `FormatDeltaRecord` emits it.
/// A record whose checksum does not match its fields is corrupt; by
/// default that is a hard parse error. `set_tolerant(true)` switches to
/// torn-tail recovery: the first corrupt or malformed line is reported
/// once on stderr and treated as end of stream, so a log whose tail was
/// cut mid-write (the common crash artifact) yields every intact record
/// before it instead of failing the whole session.
///
/// Batch boundaries: `NextBatch` returns on a `commit` line (only when at
/// least one record is pending — leading/duplicate commits are skipped so a
/// resumed session re-batches the remaining records deterministically), when
/// `max_records` records have accumulated, or at end of stream.
///
/// `records_consumed()` counts *data* records only (add/del), never commits
/// or comments; it is the durable stream cursor persisted in serve
/// checkpoints, and `SkipRecords` fast-forwards a reopened stream to it.
class DeltaReader {
 public:
  /// Opens `path`; "-" reads stdin. Returns false with a diagnostic when
  /// the file cannot be opened.
  bool Open(const std::string& path, std::string* error);

  /// Reads the next batch into `*out` (cleared first). Returns false with a
  /// diagnostic on a malformed line; otherwise true, with `*end_of_stream`
  /// set when the stream is exhausted (the final batch may be non-empty and
  /// end-of-stream at once). `max_records` == 0 means unbounded.
  bool NextBatch(size_t max_records, std::vector<EdgeDelta>* out,
                 bool* end_of_stream, std::string* error);

  /// Discards the next `n` data records (commits/comments between them are
  /// consumed silently). Fails if the stream ends or a line is malformed
  /// before `n` records were skipped.
  bool SkipRecords(uint64_t n, std::string* error);

  /// Torn-tail recovery: when true, the first corrupt or malformed line
  /// downgrades from a parse error to a one-time stderr warning plus end
  /// of stream. Records already parsed are kept. Default false (strict).
  void set_tolerant(bool tolerant) { tolerant_ = tolerant; }

  uint64_t records_consumed() const { return records_consumed_; }

 private:
  // Reads one data record. Returns false at end of stream or on error
  // (`*error` empty = clean EOF). Commit lines seen while `*pending` is
  // false are skipped; a commit with pending records sets `*batch_closed`
  // and returns false without consuming a record.
  bool NextRecord(bool pending, EdgeDelta* out, bool* batch_closed,
                  std::string* error);

  std::ifstream file_;
  std::istream* in_ = nullptr;
  uint64_t line_number_ = 0;
  uint64_t records_consumed_ = 0;
  bool tolerant_ = false;
  bool truncated_ = false;  // tolerant mode hit its first bad line
};

/// Renders `delta` as one checksummed log line (no trailing newline):
/// `"add 1 10 20 crc=9a4e1c02"`. The CRC32 covers the canonical record
/// text before the token, so `DeltaReader` verifies it field-for-field.
std::string FormatDeltaRecord(const EdgeDelta& delta);

}  // namespace reconcile

#endif  // RECONCILE_SERVE_DELTA_LOG_H_
