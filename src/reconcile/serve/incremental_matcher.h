#ifndef RECONCILE_SERVE_INCREMENTAL_MATCHER_H_
#define RECONCILE_SERVE_INCREMENTAL_MATCHER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "reconcile/core/matcher.h"
#include "reconcile/core/result.h"
#include "reconcile/core/selection.h"
#include "reconcile/graph/graph.h"
#include "reconcile/graph/types.h"
#include "reconcile/serve/delta_log.h"
#include "reconcile/serve/overlay_graph.h"
#include "reconcile/util/placement.h"
#include "reconcile/util/stamped_runs.h"
#include "reconcile/util/thread_pool.h"
#include "reconcile/util/topology.h"

namespace reconcile {

/// Checkpoint filename prefix for serve sessions ("serve-batch-NNNNNN.ckpt",
/// via the prefix-parameterized helpers in util/checkpoint.h).
inline constexpr char kServeCheckpointPrefix[] = "serve-batch-";

struct ServeConfig {
  /// Matching semantics and execution knobs. The score store is *always*
  /// the stamped signed-run store (retraction needs it), so
  /// `matcher.scoring_backend`, the LSM tier policy and the memory-budget
  /// knobs are ignored in serve mode; threshold, iterations, bucketing,
  /// stability, threads, shards, scheduler, grain, placement and
  /// `use_parallel_selection` all apply.
  MatcherConfig matcher;

  /// Fold the overlay diffs into a fresh CSR every N batches (<= 0: never).
  /// Purely a scan-speed knob — results are identical on any cadence.
  int compact_overlay_every = 8;
};

/// Telemetry for one `ApplyBatch` call.
struct ServeBatchStats {
  int batch = 0;              // 1-based batch number
  size_t deltas_in = 0;       // records handed to ApplyBatch
  size_t deltas_applied = 0;  // edges whose presence changed end-to-end
  size_t dirty_nodes = 0;     // |DN1| + |DN2| (changed nodes + neighbours)
  size_t dirty_links = 0;     // links retracted and re-emitted
  size_t rescored_units = 0;  // (level, shard) cells that saw new runs
  int replayed_rounds = 0;    // rounds re-selected live
  int skipped_rounds = 0;     // rounds fast-forwarded from the round log
  int diverged_at = -1;       // first round whose links changed (-1: none)
  int total_rounds = 0;       // rounds in the final schedule
  size_t links_added = 0;     // links in the new matching but not the old
  size_t links_removed = 0;   // links in the old matching but not the new
  size_t num_links = 0;       // links after the batch (seeds included)
  double seconds = 0;
  std::vector<PhaseStats> rounds;  // per-phase stats of the live rounds
};

/// The continuous-reconciliation engine: holds a live matching over a pair
/// of delta-overlay graphs and repairs it incrementally per delta batch,
/// with a correctness contract of *bit-identical equivalence to a
/// from-scratch batch run on the final graphs* (enforced by
/// `serve_incremental_differential_test` across scheduler × backend ×
/// placement × threads, and across kill/resume by
/// `integration_serve_kill_resume_test`).
///
/// How the repair stays exact (DESIGN.md §2.6):
///  * Scores live in stamped signed runs (`util/stamped_runs.h`): seed
///    emissions carry stamp 0, the links committed by round k carry stamp
///    k+1, so the multiset round r selected against is recovered by folding
///    stamps <= r.
///  * A batch first computes the *effective* delta set (net presence
///    changes) and the dirty node sets DN = D ∪ N_old(D); a link is dirty
///    iff either endpoint is dirty — exactly the links whose emission
///    could differ under the new graphs.
///  * Dirty links are retracted (negative runs at their original stamps,
///    old graph state), the overlays absorb the deltas, and the links are
///    re-emitted (positive runs, same stamps, new state) — so every round's
///    fold is as if the link had always been emitted against the new
///    graphs.
///  * Replay then re-runs the round schedule. While the rounds match the
///    previous log and sit below the first retouched stamp they are
///    fast-forwarded from the log (no selection); the first round whose
///    accepted set changes truncates every later stamp and continues live.
///
/// Between any two `ApplyBatch` calls the session serializes to a
/// self-contained snapshot (graphs included) and a fresh process resumes it
/// exactly; `ApplyBatch({})` is a full initial match on a fresh session and
/// a no-op on a resumed one.
class IncrementalMatcher {
 public:
  /// Takes ownership of the initial graphs; `seeds` must be in-range and
  /// one-to-one (checked).
  IncrementalMatcher(Graph g1, Graph g2,
                     std::span<const std::pair<NodeId, NodeId>> seeds,
                     const ServeConfig& config);
  ~IncrementalMatcher();

  IncrementalMatcher(const IncrementalMatcher&) = delete;
  IncrementalMatcher& operator=(const IncrementalMatcher&) = delete;

  /// Applies one delta batch and repairs the matching. Out-of-range ops,
  /// self-loops and net no-ops (insert of a present edge, a delete/insert
  /// pair inside the batch) are absorbed; node ids beyond the current range
  /// grow the graphs.
  ServeBatchStats ApplyBatch(const std::vector<EdgeDelta>& deltas);

  const std::vector<NodeId>& map_1to2() const { return map_1to2_; }
  const std::vector<NodeId>& map_2to1() const { return map_2to1_; }
  const OverlayGraph& g1() const { return o1_; }
  const OverlayGraph& g2() const { return o2_; }
  size_t num_links() const { return links_.size(); }
  size_t num_seeds() const { return num_seeds_; }
  int batches_applied() const { return batches_applied_; }

  /// Durable delta-stream cursor: data records consumed from the log as of
  /// the last checkpointed state. Owned by the driver (the matcher only
  /// stores and persists it).
  uint64_t deltas_consumed() const { return deltas_consumed_; }
  void set_deltas_consumed(uint64_t n) { deltas_consumed_ = n; }

  /// Copies the current matching into a `MatchResult` (maps + seeds; the
  /// phase log of the last batch is not included — see ServeBatchStats).
  MatchResult Result() const;

  /// Serializes the full session — config fingerprint, both graphs, link
  /// log, round log, stamped score runs, stream cursor — atomically.
  bool SaveSnapshot(const std::string& path, std::string* error) const;

  /// Restores a `SaveSnapshot` image. Validates end to end (format,
  /// version, config/shard-count match, seed prefix against the ctor
  /// seeds, link-log and round-log consistency) before committing; on
  /// failure the state is untouched and `*error` says why.
  bool LoadSnapshot(const std::string& path, std::string* error);

 private:
  struct ServeRound {
    int32_t iteration = 0;
    int32_t bucket = 0;
    uint64_t first_link = 0;  // index into links_
    uint64_t num_links = 0;
  };

  StampedRuns& Cell(size_t level, size_t shard) {
    return cells_[level * static_cast<size_t>(num_shards_) + shard];
  }
  std::function<int(size_t)> CellDomainFn() const;
  uint32_t ShardOf(NodeId u) const { return shard1_[u]; }

  // Re-emits `links` against the *current* overlays/levels as one signed
  // run per touched (level, shard) cell at `stamp`. Returns the emission
  // count; marks touched cells in touched_cells_. With `mark_dirty` set
  // (the batch-apply retraction/re-emission passes), also records `stamp`
  // into level_dirty_stamp_ for every level whose cells changed — the
  // per-level fast-forward input for the next Replay. With
  // `changed1`/`changed2` set (per-node flags for changed-edge endpoints,
  // both or neither), the emitted product is restricted to pairs with a
  // changed endpoint on either side — the only pairs whose contribution
  // can differ across the batch (see the definition in EmitLinks).
  size_t EmitLinks(std::span<const std::pair<NodeId, NodeId>> links,
                   uint32_t stamp, int32_t sign, PhaseStats* stats,
                   bool mark_dirty = false,
                   const std::vector<uint8_t>* changed1 = nullptr,
                   const std::vector<uint8_t>* changed2 = nullptr);

  // Recomputes level1_/level2_ from current overlay degrees and grows
  // maps/shard map/selection tables to the current node counts.
  void SyncDerivedState();

  // Re-runs the round schedule against the repaired score state (see class
  // comment), fast-forwarding rounds whose scanned levels carry no dirty
  // stamp <= the round index (per level_dirty_stamp_).
  void Replay(ServeBatchStats* stats);

  ServeConfig config_;
  ThreadPool pool_;
  Scheduler scheduler_;
  int num_shards_;
  MachineTopology topology_;
  ShardPlacement placement_;

  OverlayGraph o1_;
  OverlayGraph o2_;
  std::vector<uint8_t> level1_;
  std::vector<uint8_t> level2_;
  // Range-partition reduce shard per g1 node. Pinned to the *session-start*
  // g1 node count (persisted) so keys keep their cells as nodes grow —
  // shard(u) = min(S-1, u * S / max(1, n1_pinned_)).
  std::vector<uint32_t> shard1_;
  uint64_t n1_pinned_ = 0;

  std::vector<NodeId> map_1to2_;
  std::vector<NodeId> map_2to1_;
  std::vector<std::pair<NodeId, NodeId>> links_;  // seeds are the prefix
  std::vector<std::pair<NodeId, NodeId>> seeds_;  // ctor copy (validation)
  std::vector<ServeRound> rounds_;                // round log, in order
  size_t num_seeds_ = 0;
  bool seeds_emitted_ = false;  // stamp-0 seed runs exist (persisted)

  // Stamped score cells, level-major: cells_[level * num_shards_ + shard].
  std::vector<StampedRuns> cells_;
  std::vector<uint8_t> touched_cells_;  // per-batch scratch
  // Per level: smallest stamp this batch's retraction/re-emission landed in
  // any of the level's cells (UINT32_MAX when clean). A replay round scans
  // levels [bucket, kNumLevels), so it may fast-forward as long as every
  // scanned level is clean at stamps <= the round index — dirty scores in
  // levels below the round's bucket cannot reach its selection.
  std::vector<uint32_t> level_dirty_stamp_;  // per-batch scratch
  SelectionEngine selection_;

  int batches_applied_ = 0;
  uint64_t deltas_consumed_ = 0;
};

}  // namespace reconcile

#endif  // RECONCILE_SERVE_INCREMENTAL_MATCHER_H_
