#ifndef RECONCILE_SERVE_OVERLAY_GRAPH_H_
#define RECONCILE_SERVE_OVERLAY_GRAPH_H_

#include <cstddef>
#include <vector>

#include "reconcile/graph/edge_list.h"
#include "reconcile/graph/graph.h"
#include "reconcile/graph/types.h"

namespace reconcile {

class ThreadPool;

/// A mutable graph view for the serve path: an immutable CSR base plus
/// per-node sorted diff vectors of inserted (`added_`) and deleted
/// (`removed_`) edges, mirroring the LSM shape proven in `TieredCountRuns`
/// — cheap point updates accumulate in the small structure, and `Compact`
/// periodically folds them into a fresh CSR so scans stay near
/// base-structure speed. Every query (`degree`, `HasEdge`,
/// `ForEachNeighbor`) already reflects the uncompacted diffs, so
/// compaction is semantics-neutral and can run on any cadence.
///
/// Self-loops are rejected; inserting a present edge or deleting an absent
/// one is a no-op (returns false). Node ids beyond the base graph grow the
/// overlay (`num_nodes` raises to max endpoint + 1); base accesses are
/// guarded for such nodes.
class OverlayGraph {
 public:
  explicit OverlayGraph(Graph base);

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return num_edges_; }
  NodeId degree(NodeId u) const { return degree_[u]; }

  /// Largest current degree — an O(num_nodes) scan, so callers cache it
  /// per batch (unlike `Graph::max_degree()` it cannot be precomputed:
  /// deletes can lower it).
  NodeId MaxDegree() const;

  /// True iff the edge {u, v} is currently present. Safe for any ids
  /// (out-of-range nodes have no edges).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Inserts {u, v}. Returns true when the edge state actually changed
  /// (false: self-loop or already present). Grows the node range.
  bool InsertEdge(NodeId u, NodeId v);

  /// Deletes {u, v}. Returns true when the edge was present.
  bool DeleteEdge(NodeId u, NodeId v);

  /// Invokes `fn(v)` for every current neighbour of `u`, ascending by id:
  /// a sorted merge of (base minus removed) with added.
  template <typename Fn>
  void ForEachNeighbor(NodeId u, Fn&& fn) const {
    const bool in_base = u < base_.num_nodes();
    const std::span<const NodeId> base =
        in_base ? base_.Neighbors(u) : std::span<const NodeId>();
    const std::vector<NodeId>& removed = removed_[u];
    const std::vector<NodeId>& added = added_[u];
    size_t bi = 0, ri = 0, ai = 0;
    while (bi < base.size() || ai < added.size()) {
      // Skip base neighbours struck out by the removed diff.
      while (bi < base.size() && ri < removed.size()) {
        if (removed[ri] < base[bi]) {
          ++ri;
        } else if (removed[ri] == base[bi]) {
          ++ri;
          ++bi;
        } else {
          break;
        }
      }
      const bool has_base = bi < base.size();
      const bool has_added = ai < added.size();
      if (!has_base && !has_added) break;
      if (has_base && (!has_added || base[bi] < added[ai])) {
        fn(base[bi]);
        ++bi;
      } else {
        fn(added[ai]);
        ++ai;
      }
    }
  }

  /// Current neighbours of `u`, ascending, materialized.
  std::vector<NodeId> Neighbors(NodeId u) const;

  /// The current edge set as a canonical (u < v) edge list whose node
  /// range is `num_nodes()`. Edges come out sorted by (u, v).
  EdgeList Materialize() const;

  /// Folds the diffs into a fresh CSR base (built on `pool`; nullptr =
  /// serial). Queries are unchanged; `num_uncompacted()` drops to zero.
  void Compact(ThreadPool* pool);

  /// Diff entries not yet folded into the base (each changed edge counts
  /// once per endpoint).
  size_t num_uncompacted() const { return num_uncompacted_; }

  const Graph& base() const { return base_; }

 private:
  void EnsureNode(NodeId u);

  Graph base_;
  std::vector<std::vector<NodeId>> added_;    // [u] -> sorted inserted nbrs
  std::vector<std::vector<NodeId>> removed_;  // [u] -> sorted deleted nbrs
  std::vector<NodeId> degree_;
  NodeId num_nodes_ = 0;
  size_t num_edges_ = 0;
  size_t num_uncompacted_ = 0;
};

}  // namespace reconcile

#endif  // RECONCILE_SERVE_OVERLAY_GRAPH_H_
