#include "reconcile/core/selection.h"

#include <atomic>

#include "reconcile/util/logging.h"
#include "reconcile/util/timer.h"

namespace reconcile {

SelectionEngine::SelectionEngine(size_t n1, size_t n2, bool parallel)
    : parallel_(parallel),
      n1_(n1),
      n2_(n2),
      best1_(parallel ? 0 : n1),
      best2_(parallel ? 0 : n2),
      atomic_best1_(parallel ? n1 : 0),
      atomic_best2_(parallel ? n2 : 0) {}

void SelectionEngine::EnsureNodeCapacity(size_t n1, size_t n2) {
  if (n1 <= n1_ && n2 <= n2_) return;
  n1_ = std::max(n1_, n1);
  n2_ = std::max(n2_, n2);
  if (parallel_) {
    atomic_best1_ = AtomicBestTable(n1_);
    atomic_best2_ = AtomicBestTable(n2_);
  } else {
    best1_ = BestTable(n1_);
    best2_ = BestTable(n2_);
  }
}

size_t SelectionEngine::SelectAndCommit(const std::vector<ScoreUnit>& units,
                                        const SelectionContext& ctx,
                                        PhaseStats* stats) {
  return parallel_ ? SelectParallel(units, ctx, stats)
                   : SelectSerial(units, ctx, stats);
}

size_t SelectionEngine::SelectSerial(const std::vector<ScoreUnit>& units,
                                     const SelectionContext& ctx,
                                     PhaseStats* stats) {
  Timer timer;
  best1_.NextEpoch();
  best2_.NextEpoch();
  size_t candidate_pairs = 0;
  for (const ScoreUnit& unit : units) {
    unit.ForEach([this, &candidate_pairs](uint64_t key, uint32_t score) {
      best1_.Observe(PairFirst(key), score);
      best2_.Observe(PairSecond(key), score);
      ++candidate_pairs;
    });
  }
  stats->candidate_pairs = candidate_pairs;
  stats->scan_seconds = timer.Seconds();

  timer.Reset();
  std::vector<NodeId>& map_1to2 = *ctx.map_1to2;
  std::vector<NodeId>& map_2to1 = *ctx.map_2to1;
  std::vector<std::pair<NodeId, NodeId>> accepted;
  for (const ScoreUnit& unit : units) {
    unit.ForEach([this, &ctx, &map_1to2, &map_2to1,
                  &accepted](uint64_t key, uint32_t score) {
      if (score < ctx.min_score) return;
      NodeId u = PairFirst(key);
      NodeId v = PairSecond(key);
      // Already-matched nodes stay in the scored pool as *blockers* (their
      // pairs keep outcompeting impostors — this is what defeats the sybil
      // attack) but are never re-matched.
      if (map_1to2[u] != kInvalidNode || map_2to1[v] != kInvalidNode) {
        return;
      }
      if (best1_.IsUniqueBest(u, score) && best2_.IsUniqueBest(v, score)) {
        accepted.emplace_back(u, v);
      }
    });
  }
  for (const auto& [u, v] : accepted) {
    RECONCILE_CHECK_EQ(map_1to2[u], kInvalidNode);
    RECONCILE_CHECK_EQ(map_2to1[v], kInvalidNode);
    map_1to2[u] = v;
    map_2to1[v] = u;
    ctx.links->emplace_back(u, v);
  }
  stats->select_seconds = timer.Seconds();
  return accepted.size();
}

size_t SelectionEngine::SelectParallel(const std::vector<ScoreUnit>& units,
                                       const SelectionContext& ctx,
                                       PhaseStats* stats) {
  Timer timer;
  atomic_best1_.NextEpoch();
  atomic_best2_.NextEpoch();
  // Both passes run one unit at a time under the configured scheduler
  // (static: one queued task per unit; stealing: units are claimed
  // dynamically, so a handful of huge hub-level units no longer pins the
  // round on whichever worker drew them; an active placement claims
  // domain-local units first and steals remote only when dry). The
  // observe fold is a CAS-max — commutative — and the accept pass writes
  // only per-unit lists, so the schedule is unobservable in the result.
  std::atomic<size_t> candidate_pairs{0};
  PlacedLoopStats scan_placed;
  ctx.placement->ParallelForPlaced(
      ctx.pool, ctx.scheduler, units.size(), ctx.domain_of,
      [this, &units, &candidate_pairs](size_t i) {
        size_t local_pairs = 0;
        units[i].ForEach([this, &local_pairs](uint64_t key, uint32_t score) {
          atomic_best1_.Observe(PairFirst(key), score);
          atomic_best2_.Observe(PairSecond(key), score);
          ++local_pairs;
        });
        candidate_pairs.fetch_add(local_pairs, std::memory_order_relaxed);
      },
      &scan_placed);
  stats->candidate_pairs = candidate_pairs.load();
  stats->scan_seconds = timer.Seconds();
  stats->local_unit_tasks += scan_placed.local_tasks;
  stats->remote_unit_steals += scan_placed.remote_steals;

  timer.Reset();
  // Accept pass: reads the maps and the sealed best tables, writes only
  // its own unit's accept list.
  std::vector<NodeId>& map_1to2 = *ctx.map_1to2;
  std::vector<NodeId>& map_2to1 = *ctx.map_2to1;
  std::vector<std::vector<std::pair<NodeId, NodeId>>> accepted_per_unit(
      units.size());
  PlacedLoopStats accept_placed;
  ctx.placement->ParallelForPlaced(
      ctx.pool, ctx.scheduler, units.size(), ctx.domain_of,
      [this, &ctx, &units, &map_1to2, &map_2to1,
       &accepted_per_unit](size_t i) {
        auto& list = accepted_per_unit[i];
        units[i].ForEach([this, &ctx, &map_1to2, &map_2to1,
                          &list](uint64_t key, uint32_t score) {
          if (score < ctx.min_score) return;
          NodeId u = PairFirst(key);
          NodeId v = PairSecond(key);
          if (map_1to2[u] != kInvalidNode || map_2to1[v] != kInvalidNode) {
            return;
          }
          if (atomic_best1_.IsUniqueBest(u, score) &&
              atomic_best2_.IsUniqueBest(v, score)) {
            list.emplace_back(u, v);
          }
        });
      },
      &accept_placed);
  stats->local_unit_tasks += accept_placed.local_tasks;
  stats->remote_unit_steals += accept_placed.remote_steals;

  // Commit pass, in parallel: an exclusive prefix sum assigns unit i the
  // link-log slots the serial loop would have given it; unique best on
  // both sides means no two units accept the same g1 or g2 node, so the
  // map writes are per-slot exclusive and the scatter is race-free. Layout
  // is byte-identical to committing the lists serially in unit order.
  std::vector<size_t> offsets(units.size() + 1, 0);
  for (size_t i = 0; i < units.size(); ++i) {
    offsets[i + 1] = offsets[i] + accepted_per_unit[i].size();
  }
  const size_t accepted = offsets.back();
  std::vector<std::pair<NodeId, NodeId>>& links = *ctx.links;
  const size_t base = links.size();
  links.resize(base + accepted);
  PlacedLoopStats commit_placed;
  ctx.placement->ParallelForPlaced(
      ctx.pool, ctx.scheduler, units.size(), ctx.domain_of,
      [&accepted_per_unit, &offsets, &links, &map_1to2, &map_2to1,
       base](size_t i) {
        size_t slot = base + offsets[i];
        for (const auto& [u, v] : accepted_per_unit[i]) {
          RECONCILE_CHECK_EQ(map_1to2[u], kInvalidNode);
          RECONCILE_CHECK_EQ(map_2to1[v], kInvalidNode);
          map_1to2[u] = v;
          map_2to1[v] = u;
          links[slot++] = {u, v};
        }
      },
      &commit_placed);
  stats->local_unit_tasks += commit_placed.local_tasks;
  stats->remote_unit_steals += commit_placed.remote_steals;
  stats->select_seconds = timer.Seconds();
  return accepted;
}

}  // namespace reconcile
