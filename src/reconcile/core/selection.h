#ifndef RECONCILE_CORE_SELECTION_H_
#define RECONCILE_CORE_SELECTION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "reconcile/core/best_table.h"
#include "reconcile/core/result.h"
#include "reconcile/core/score_unit.h"
#include "reconcile/graph/types.h"
#include "reconcile/util/parallel_for.h"
#include "reconcile/util/placement.h"
#include "reconcile/util/thread_pool.h"

namespace reconcile {

/// Everything one selection round needs from its caller: the execution
/// substrate (pool, scheduler, placement and the unit→domain map), the
/// acceptance threshold, and the matching state the accepted links commit
/// into. Both `MatcherState` and the serve-mode `IncrementalMatcher` build
/// one of these per round, which is what lets them share the engine.
struct SelectionContext {
  ThreadPool* pool = nullptr;
  Scheduler scheduler = Scheduler::kAuto;
  const ShardPlacement* placement = nullptr;
  std::function<int(size_t)> domain_of;
  uint32_t min_score = 0;
  std::vector<NodeId>* map_1to2 = nullptr;
  std::vector<NodeId>* map_2to1 = nullptr;
  std::vector<std::pair<NodeId, NodeId>>* links = nullptr;
};

/// The mutual-unique-best selection engine, extracted from `MatcherState`
/// so every caller that owns score units (batch matcher, serve-mode
/// incremental matcher) folds them through the same code path.
///
/// Two interchangeable engines fill the same stats:
///  * serial — one thread folds every unit into epoch-stamped tables;
///  * parallel — one task per unit feeds CAS-max atomic tables (observe
///    pass), then one task per unit applies the acceptance predicate
///    (accept pass), then the accepted lists scatter into the link log in
///    parallel (commit pass — see below). A candidate pair lives in
///    exactly one unit, and the fold is order-independent, so both engines
///    produce bit-identical matchings for any thread/shard counts.
///
/// The parallel commit (formerly the last serial piece of a round): unique
/// best on both sides means the accepted set is a matching — no two units
/// accept the same g1 or g2 node — so after an exclusive prefix sum sizes
/// each unit's slot range in the link log, every unit can write its links
/// and map entries concurrently, race-free, at exactly the offsets the old
/// serial loop would have used. The log layout is byte-identical to the
/// serial order.
class SelectionEngine {
 public:
  /// Only the configured engine allocates its tables (the best tables are
  /// O(nodes); the other pair stays empty).
  SelectionEngine(size_t n1, size_t n2, bool parallel);

  /// Grows the tables to cover `n1`/`n2` nodes (serve mode: delta batches
  /// can introduce new node ids). The tables are reconstructed — call only
  /// between rounds; epochs restart, which is harmless because every round
  /// opens with `NextEpoch`.
  void EnsureNodeCapacity(size_t n1, size_t n2);

  /// Applies the mutual-unique-best rule over `units` (disjoint score
  /// units whose union is the live, bucket-eligible scored-pair multiset),
  /// commits accepted links into `ctx`'s maps and link log, and returns
  /// the number accepted. Fills `stats`' candidate/scan/select fields.
  size_t SelectAndCommit(const std::vector<ScoreUnit>& units,
                         const SelectionContext& ctx, PhaseStats* stats);

 private:
  size_t SelectSerial(const std::vector<ScoreUnit>& units,
                      const SelectionContext& ctx, PhaseStats* stats);
  size_t SelectParallel(const std::vector<ScoreUnit>& units,
                        const SelectionContext& ctx, PhaseStats* stats);

  bool parallel_;
  size_t n1_;
  size_t n2_;
  BestTable best1_;
  BestTable best2_;
  AtomicBestTable atomic_best1_;
  AtomicBestTable atomic_best2_;
};

}  // namespace reconcile

#endif  // RECONCILE_CORE_SELECTION_H_
