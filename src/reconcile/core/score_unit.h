#ifndef RECONCILE_CORE_SCORE_UNIT_H_
#define RECONCILE_CORE_SCORE_UNIT_H_

#include <cstddef>
#include <cstdint>

#include "reconcile/util/flat_hash_map.h"
#include "reconcile/util/radix_sort.h"
#include "reconcile/util/stamped_runs.h"
#include "reconcile/util/tiered_store.h"

namespace reconcile {

// One disjoint slice of the scored-pair multiset handed to selection: a
// hash-map shard (hash backend), a sorted run (radix recompute engine), an
// LSM tier stack (radix incremental engine — its `ForEach` k-way-merges the
// tiers, so a key split across tiers still surfaces exactly once with its
// total count), or a stamped signed-run cell folded up to a round stamp and
// materialized as a cold/hot `FoldedRun` pair (the serve-mode incremental
// matcher). A candidate pair lives in exactly one unit in every
// representation, and the selection fold is representation-agnostic — it
// only needs `ForEach(key, score)` — so all backends flow through the same
// selection engines and stay bit-identical by construction.
class ScoreUnit {
 public:
  explicit ScoreUnit(const FlatCountMap* map) : map_(map) {}
  explicit ScoreUnit(const SortedCountRun* run) : run_(run) {}
  explicit ScoreUnit(const TieredCountRuns* store) : store_(store) {}
  /// Two-level accumulated fold (serve replay): `cold` and `hot` are folds
  /// of disjoint stamp windows of one cell, together covering every stamp
  /// the round may see; the scan is their 2-way merge.
  ScoreUnit(const FoldedRun* cold, const FoldedRun* hot)
      : cold_(cold), hot_(hot) {}

  bool empty() const {
    if (map_ != nullptr) return map_->empty();
    if (run_ != nullptr) return run_->empty();
    if (store_ != nullptr) return store_->empty();
    return cold_->empty() && hot_->empty();
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (map_ != nullptr) {
      map_->ForEach(fn);
    } else if (run_ != nullptr) {
      run_->ForEach(fn);
    } else if (store_ != nullptr) {
      store_->ForEach(fn);
    } else {
      // 2-way merge of two sorted positive-count runs over disjoint stamp
      // windows; shared keys sum. Degenerates to a plain linear scan when
      // either side is empty.
      const FoldedRun& a = *cold_;
      const FoldedRun& b = *hot_;
      size_t i = 0, j = 0;
      while (i < a.keys.size() && j < b.keys.size()) {
        const uint64_t ka = a.keys[i], kb = b.keys[j];
        if (ka < kb) {
          if (a.counts[i] > 0) fn(ka, static_cast<uint32_t>(a.counts[i]));
          ++i;
        } else if (kb < ka) {
          if (b.counts[j] > 0) fn(kb, static_cast<uint32_t>(b.counts[j]));
          ++j;
        } else {
          const int64_t total = a.counts[i] + b.counts[j];
          if (total > 0) fn(ka, static_cast<uint32_t>(total));
          ++i;
          ++j;
        }
      }
      for (; i < a.keys.size(); ++i) {
        if (a.counts[i] > 0) fn(a.keys[i], static_cast<uint32_t>(a.counts[i]));
      }
      for (; j < b.keys.size(); ++j) {
        if (b.counts[j] > 0) fn(b.keys[j], static_cast<uint32_t>(b.counts[j]));
      }
    }
  }

 private:
  const FlatCountMap* map_ = nullptr;
  const SortedCountRun* run_ = nullptr;
  const TieredCountRuns* store_ = nullptr;
  const FoldedRun* cold_ = nullptr;
  const FoldedRun* hot_ = nullptr;
};

}  // namespace reconcile

#endif  // RECONCILE_CORE_SCORE_UNIT_H_
