#ifndef RECONCILE_CORE_BEST_TABLE_H_
#define RECONCILE_CORE_BEST_TABLE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "reconcile/graph/types.h"

namespace reconcile {

/// Per-node best-score bookkeeping for the matcher's mutual-unique-best
/// selection rule, packed into one 64-bit word per node:
///
///   [ epoch : 30 ][ score : 32 ][ ties : 2 ]
///
///  * `score` is the maximum candidate score observed for the node in the
///    current round;
///  * `ties` counts how many candidate pairs achieve it, saturating at 3 —
///    the selection rule only distinguishes "exactly one" from "more than
///    one", so two bits suffice;
///  * `epoch` stamps the round the entry was last written in. Entries from
///    older rounds read as (score 0, ties 0), which turns the per-round
///    O(num_nodes) `Clear()` into an O(1) epoch bump.
///
/// The packing is shared by the serial table and the atomic (CAS-max) table
/// so both selection engines agree bit-for-bit on the rule.
namespace best_internal {

inline constexpr int kTieBits = 2;
inline constexpr int kScoreBits = 32;
inline constexpr int kEpochShift = kScoreBits + kTieBits;
inline constexpr uint64_t kTieSaturation = (1ULL << kTieBits) - 1;
inline constexpr uint64_t kMaxEpoch = (1ULL << (64 - kEpochShift)) - 1;

inline constexpr uint64_t Pack(uint64_t epoch, uint32_t score, uint64_t ties) {
  return (epoch << kEpochShift) | (static_cast<uint64_t>(score) << kTieBits) |
         ties;
}
inline constexpr uint64_t EpochOf(uint64_t word) { return word >> kEpochShift; }
inline constexpr uint32_t ScoreOf(uint64_t word) {
  return static_cast<uint32_t>(word >> kTieBits);
}
inline constexpr uint64_t TiesOf(uint64_t word) {
  return word & kTieSaturation;
}

/// Folds one observation into a word, given the current epoch. Returns the
/// unchanged word when the observation cannot improve it. The result is
/// independent of observation order (max + saturating equal-count), which is
/// what makes the concurrent table deterministic.
inline constexpr uint64_t Fold(uint64_t word, uint64_t epoch, uint32_t score) {
  if (EpochOf(word) != epoch) return Pack(epoch, score, 1);
  const uint32_t best = ScoreOf(word);
  if (score > best) return Pack(epoch, score, 1);
  if (score == best && TiesOf(word) < kTieSaturation) return word + 1;
  return word;
}

}  // namespace best_internal

/// Serial epoch-stamped best table (the reference selection engine).
class BestTable {
 public:
  explicit BestTable(size_t num_nodes) : words_(num_nodes, 0) {}

  /// Starts a new round; previous entries become stale in O(1).
  void NextEpoch() {
    if (epoch_ == best_internal::kMaxEpoch) {
      std::fill(words_.begin(), words_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
  }

  void Observe(NodeId node, uint32_t score) {
    words_[node] = best_internal::Fold(words_[node], epoch_, score);
  }

  bool IsUniqueBest(NodeId node, uint32_t score) const {
    return words_[node] == best_internal::Pack(epoch_, score, 1);
  }

  uint32_t BestScore(NodeId node) const {
    const uint64_t word = words_[node];
    return best_internal::EpochOf(word) == epoch_
               ? best_internal::ScoreOf(word)
               : 0;
  }

  uint64_t epoch() const { return epoch_; }

 private:
  std::vector<uint64_t> words_;
  uint64_t epoch_ = 0;  // 0 is the never-written sentinel; NextEpoch() first.
};

/// Concurrent best table: `Observe` is a lock-free CAS-max. Because the
/// epoch only grows and, within an epoch, `Fold` only increases the packed
/// word (higher score, or more ties at the same score), every successful
/// update strictly increases the word — so the CAS loop terminates and the
/// final state equals the serial fold of the same observation multiset in
/// any order. `NextEpoch` must not race with `Observe`/`IsUniqueBest`; the
/// matcher bumps it between rounds, outside the parallel region.
class AtomicBestTable {
 public:
  explicit AtomicBestTable(size_t num_nodes) : words_(num_nodes) {}

  void NextEpoch() {
    if (epoch_ == best_internal::kMaxEpoch) {
      for (auto& word : words_) word.store(0, std::memory_order_relaxed);
      epoch_ = 0;
    }
    ++epoch_;
  }

  void Observe(NodeId node, uint32_t score) {
    std::atomic<uint64_t>& word = words_[node];
    uint64_t current = word.load(std::memory_order_relaxed);
    for (;;) {
      const uint64_t desired = best_internal::Fold(current, epoch_, score);
      if (desired == current) return;
      // On failure `current` is refreshed with the competing writer's value.
      if (word.compare_exchange_weak(current, desired,
                                     std::memory_order_relaxed)) {
        return;
      }
    }
  }

  bool IsUniqueBest(NodeId node, uint32_t score) const {
    return words_[node].load(std::memory_order_relaxed) ==
           best_internal::Pack(epoch_, score, 1);
  }

  uint32_t BestScore(NodeId node) const {
    const uint64_t word = words_[node].load(std::memory_order_relaxed);
    return best_internal::EpochOf(word) == epoch_
               ? best_internal::ScoreOf(word)
               : 0;
  }

  uint64_t epoch() const { return epoch_; }

 private:
  std::vector<std::atomic<uint64_t>> words_;
  uint64_t epoch_ = 0;
};

}  // namespace reconcile

#endif  // RECONCILE_CORE_BEST_TABLE_H_
