#include "reconcile/core/matcher_state.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>

#include "reconcile/mr/mapreduce.h"
#include "reconcile/util/checkpoint.h"
#include "reconcile/util/logging.h"
#include "reconcile/util/timer.h"

namespace reconcile {

namespace {

// Local alias for the exported layout constant (matcher_state.h).
constexpr int kNumLevels = kScoreLevels;

int FloorLog2(NodeId x) {
  int log = 0;
  while (x > 1) {
    x >>= 1;
    ++log;
  }
  return log;
}

// The topology the placement layer homes shards onto: a per-run synthetic
// override (tests, experiments) or the cached machine detection (which the
// RECONCILE_PLACEMENT_DOMAINS env var can also force).
MachineTopology PlacementTopology(const MatcherConfig& config) {
  if (config.placement_domains > 0) {
    return config.placement_domains == 1
               ? SingleDomainTopology()
               : SyntheticTopology(config.placement_domains);
  }
  return DetectTopology();
}

// How many entries a hash score shard is pre-sized for by the first-touch
// pass (enough that the initial growth happens on home-domain pages; later
// growth re-touches from the merge loop, which is also domain-homed).
constexpr size_t kFirstTouchEntries = 1024;

// Nodes/edges/degree-sequence mix binding a snapshot to its graph pair. A
// sanity check against resuming into the wrong run, not a collision-proof
// content hash.
uint64_t GraphFingerprint(const Graph& g) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(g.num_nodes());
  mix(g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) mix(g.degree(v));
  return h;
}

// Snapshot section ids (see SaveSnapshot for the layout).
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionLinks = 2;
constexpr uint32_t kSectionScoresHash = 3;
constexpr uint32_t kSectionScoresRadix = 4;

// Bumped whenever the META/LINKS/SCORES payloads change shape.
constexpr uint32_t kMatcherStateVersion = 1;

}  // namespace

std::vector<uint8_t> DegreeLevels(const Graph& g) {
  std::vector<uint8_t> levels(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    levels[v] =
        static_cast<uint8_t>(FloorLog2(std::max<NodeId>(1, g.degree(v))));
  }
  return levels;
}

std::vector<uint32_t> RadixShardTable(NodeId n1, int num_shards) {
  // Range partition on the high key bits (the g1 node id): shard(u, v) =
  // u * S / n1, precomputed per node so the emission loop pays one array
  // load instead of a hash mix or a 64-bit divide. Each shard owns a
  // contiguous key interval, so per-shard runs stay disjoint and their
  // concatenation is globally sorted.
  const uint64_t n = std::max<uint64_t>(1, n1);
  std::vector<uint32_t> table(n1);
  for (NodeId u = 0; u < n1; ++u) {
    table[u] = static_cast<uint32_t>(static_cast<uint64_t>(u) *
                                     static_cast<uint64_t>(num_shards) / n);
  }
  return table;
}

int ResolveShardCount(const MatcherConfig& config, int num_threads) {
  return config.num_shards > 0 ? config.num_shards : std::max(4, num_threads);
}

int TopBucketExponent(const Graph& g1, const Graph& g2,
                      const MatcherConfig& config) {
  const NodeId max_degree = std::max(g1.max_degree(), g2.max_degree());
  return config.use_degree_bucketing && max_degree > 0 ? FloorLog2(max_degree)
                                                       : 0;
}

MatcherState::MatcherState(const Graph& g1, const Graph& g2,
                           const MatcherConfig& config)
    : g1_(g1),
      g2_(g2),
      config_(config),
      pool_(config.num_threads > 0 ? config.num_threads
                                   : ThreadPool::DefaultThreads()),
      scheduler_(ResolveScheduler(config.scheduler)),
      tier_policy_{config.lsm_max_tiers, config.lsm_size_ratio},
      num_shards_(ResolveShardCount(config, pool_.num_threads())),
      topology_(PlacementTopology(config)),
      placement_(topology_, config.placement, num_shards_,
                 pool_.num_threads()),
      map_1to2_(g1.num_nodes(), kInvalidNode),
      map_2to1_(g2.num_nodes(), kInvalidNode),
      selection_(g1.num_nodes(), g2.num_nodes(),
                 config.use_parallel_selection) {
  level1_ = DegreeLevels(g1);
  level2_ = DegreeLevels(g2);
  if (config.use_incremental_scoring) {
    if (config.scoring_backend == ScoringBackend::kRadixSort) {
      runs_.resize(kNumLevels);
      for (auto& level : runs_) {
        level.resize(static_cast<size_t>(num_shards_));
      }
    } else {
      scores_.resize(kNumLevels);
      for (auto& level : scores_) {
        level = std::vector<FlatCountMap>(static_cast<size_t>(num_shards_));
      }
    }
  }
  if (config.scoring_backend == ScoringBackend::kRadixSort) {
    radix_shard1_ = RadixShardTable(g1.num_nodes(), num_shards_);
  }
  if (config.memory_budget_bytes > 0) {
    // The budget is enforced by spilling radix tier stacks; the hash
    // backend's open-addressed shards have no flat spillable form, and the
    // recompute engine keeps no cross-round score state to spill. Both
    // cases run unbudgeted with a one-line note rather than failing — the
    // budget is a resource knob, not a semantic one.
    if (!config.use_incremental_scoring ||
        config.scoring_backend != ScoringBackend::kRadixSort) {
      std::fprintf(stderr,
                   "warning: --memory-budget requires the incremental radix "
                   "backend; running unbudgeted\n");
    } else if (config.score_dir.empty()) {
      std::fprintf(stderr,
                   "warning: --memory-budget without --score-dir; running "
                   "unbudgeted\n");
    } else {
      spill_store_ = std::make_unique<SpillStore>(config.score_dir);
    }
  }
  if (placement_.active()) {
    // Bind workers to their home domain's CPUs (real topologies only),
    // then first-touch the persistent score shards from a home-domain
    // worker so their pages land on the right node before the first
    // merge. Both are locality-only: results are bit-identical whether
    // or not either succeeds.
    placement_.PinWorkers(&pool_);
    FirstTouchScoreState();
  }

  graph_fp1_ = GraphFingerprint(g1);
  graph_fp2_ = GraphFingerprint(g2);

  top_exponent_ = TopBucketExponent(g1, g2, config);
  bottom_exponent_ = std::min(config.min_bucket_exponent, top_exponent_);
  current_bucket_ = config.use_degree_bucketing ? top_exponent_
                                                : config.min_bucket_exponent;
}

MatcherState::~MatcherState() = default;

void MatcherState::SeedLinks(
    std::span<const std::pair<NodeId, NodeId>> seeds) {
  RECONCILE_CHECK(!seeded_) << "SeedLinks called twice";
  RECONCILE_CHECK_EQ(links_.size(), 0u);
  seeded_ = true;
  num_seeds_ = seeds.size();
  for (const auto& [u, v] : seeds) {
    RECONCILE_CHECK_LT(u, g1_.num_nodes());
    RECONCILE_CHECK_LT(v, g2_.num_nodes());
    RECONCILE_CHECK_EQ(map_1to2_[u], kInvalidNode)
        << "duplicate seed for g1 node " << u;
    RECONCILE_CHECK_EQ(map_2to1_[v], kInvalidNode)
        << "duplicate seed for g2 node " << v;
    map_1to2_[u] = v;
    map_2to1_[v] = u;
    links_.emplace_back(u, v);
  }
}

// Home domain of a (level, shard) cell / score unit: levels share one
// shard layout, so homing depends on the shard alone and a shard's hash
// map, tier stack and selection unit all land on the same domain.
std::function<int(size_t)> MatcherState::CellDomainFn() const {
  return [this](size_t cell) {
    return placement_.HomeOfShard(
        static_cast<int>(cell % static_cast<size_t>(num_shards_)));
  };
}

// First-touch pass: with an active placement, pre-size each persistent
// (level, shard) buffer from a worker on the cell's home domain so the
// backing pages are allocated there (first writer owns the page under
// first-touch NUMA policy). Recompute engines build fresh state per round
// inside the (already domain-homed) reduce, so only the incremental
// engine keeps state long enough to pre-touch.
void MatcherState::FirstTouchScoreState() {
  if (!config_.use_incremental_scoring) return;
  const size_t cells =
      static_cast<size_t>(kNumLevels) * static_cast<size_t>(num_shards_);
  placement_.ParallelForPlaced(
      &pool_, scheduler_, cells, CellDomainFn(), [this](size_t cell) {
        const size_t level = cell / static_cast<size_t>(num_shards_);
        const size_t shard = cell % static_cast<size_t>(num_shards_);
        if (config_.scoring_backend == ScoringBackend::kRadixSort) {
          runs_[level][shard].ReserveTiers(
              static_cast<size_t>(std::max(1, config_.lsm_max_tiers)) + 1);
        } else {
          scores_[level][shard].Reserve(kFirstTouchEntries);
        }
      });
}

size_t MatcherState::RunRound() {
  RECONCILE_CHECK(seeded_) << "RunRound before SeedLinks";
  RECONCILE_CHECK(!done_) << "RunRound on a finished state";
  const size_t accepted = Round(iteration_, current_bucket_);
  ++completed_rounds_;
  new_links_this_iteration_ += accepted;
  AdvanceCursor();
  return accepted;
}

// Advances the flattened (iteration, bucket) cursor past the round that
// just ran — the exact schedule the old driver loop produced: buckets
// top..bottom per iteration (one round per iteration without bucketing),
// stop at the iteration cap or on a stable iteration, compact the score
// state between iterations.
void MatcherState::AdvanceCursor() {
  if (config_.use_degree_bucketing && current_bucket_ > bottom_exponent_) {
    --current_bucket_;
    return;
  }
  // The round that just ran closed iteration `iteration_`.
  if ((config_.stop_when_stable && new_links_this_iteration_ == 0) ||
      iteration_ >= config_.num_iterations) {
    done_ = true;
    return;
  }
  CompactScores();
  ++iteration_;
  new_links_this_iteration_ = 0;
  current_bucket_ = config_.use_degree_bucketing ? top_exponent_
                                                 : config_.min_bucket_exponent;
}

// One scoring round at bucket exponent `bucket_exponent` (candidates must
// have degree >= 2^bucket_exponent on both sides). Returns links accepted.
size_t MatcherState::Round(int iteration, int bucket_exponent) {
  return config_.use_incremental_scoring
             ? RoundIncremental(iteration, bucket_exponent)
             : RoundRecompute(iteration, bucket_exponent);
}

// Drops dead entries (pairs with a matched endpoint) from the persistent
// score maps; called between outer iterations to keep scans and memory
// proportional to the live frontier.
void MatcherState::CompactScores() {
  if (!config_.use_incremental_scoring) return;
  const size_t cells =
      static_cast<size_t>(kNumLevels) * static_cast<size_t>(num_shards_);
  // Locality of the compact tasks is credited to the next round's
  // telemetry (`compact_placed_stats_`): compaction runs between rounds,
  // where no PhaseStats exists yet.
  if (config_.scoring_backend == ScoringBackend::kRadixSort) {
    // Tier stacks compact with an in-place filtering sweep per tier — no
    // rebuild, no rehash, order preserved. The liveness predicate depends
    // on the key alone, so filtering tiers independently preserves every
    // key's cross-tier total.
    placement_.ParallelForPlaced(
        &pool_, scheduler_, cells, CellDomainFn(),
        [this](size_t cell) {
          TieredCountRuns& store =
              runs_[cell / static_cast<size_t>(num_shards_)]
                   [cell % static_cast<size_t>(num_shards_)];
          if (store.empty()) return;
          store.Filter([this](uint64_t key, uint32_t) {
            return map_1to2_[PairFirst(key)] == kInvalidNode ||
                   map_2to1_[PairSecond(key)] == kInvalidNode;
          });
        },
        &compact_placed_stats_);
    return;
  }
  placement_.ParallelForPlaced(
      &pool_, scheduler_, cells, CellDomainFn(),
      [this](size_t cell) {
        FlatCountMap& shard =
            scores_[cell / static_cast<size_t>(num_shards_)]
                   [cell % static_cast<size_t>(num_shards_)];
        if (shard.empty()) return;
        FlatCountMap compacted(shard.size());
        shard.ForEach([this, &compacted](uint64_t key, uint32_t count) {
          if (map_1to2_[PairFirst(key)] == kInvalidNode ||
              map_2to1_[PairSecond(key)] == kInvalidNode) {
            compacted.AddCount(key, count);
          }
        });
        shard = std::move(compacted);
      },
      &compact_placed_stats_);
}

MatchResult MatcherState::TakeResult(double total_seconds) {
  MatchResult result;
  result.seeds.assign(links_.begin(),
                      links_.begin() + static_cast<ptrdiff_t>(num_seeds_));
  result.map_1to2 = std::move(map_1to2_);
  result.map_2to1 = std::move(map_2to1_);
  result.phases = std::move(phases_);
  result.total_seconds = total_seconds;
  return result;
}

// Applies the mutual-unique-best rule over the scored pairs held in
// `units` through the shared `SelectionEngine` (`core/selection.h`), which
// commits accepted links directly into the maps and the link log.
size_t MatcherState::SelectAndCommit(const std::vector<ScoreUnit>& units,
                                     PhaseStats* stats) {
  SelectionContext ctx;
  ctx.pool = &pool_;
  ctx.scheduler = scheduler_;
  ctx.placement = &placement_;
  ctx.domain_of = CellDomainFn();
  ctx.min_score = config_.min_score;
  ctx.map_1to2 = &map_1to2_;
  ctx.map_2to1 = &map_2to1_;
  ctx.links = &links_;
  return selection_.SelectAndCommit(units, ctx, stats);
}

// --- Incremental engine --------------------------------------------------
// Witness scores are additive over links, so each link's neighbour-pair
// contributions are emitted exactly once — when the link enters L — into
// persistent per-level score maps. A bucket-j round scans levels >= j.
// This is result-identical to the recompute path (verified by tests) and
// removes the per-bucket rescoring factor from the running time.

// Folds links_[emitted_links_ ..) into the persistent score state of the
// configured backend, filling `stats`' emission count plus the time split:
// `emit_seconds` covers witness enumeration (the map phase), and
// `merge_seconds` covers folding the deltas into the persistent state
// (hash merges / radix sort + tier compaction) — the part that used to
// hide inside emit.
void MatcherState::EmitPendingLinks(PhaseStats* stats) {
  if (config_.scoring_backend == ScoringBackend::kRadixSort) {
    EmitPendingLinksRadix(stats);
  } else {
    EmitPendingLinksHash(stats);
  }
}

// Chunk size the work-stealing emission loop claims per lock acquisition.
// Per-item cost is heavy-tailed on skewed graphs (a hub link emits
// deg(hub)^2-ish pairs), so the auto grain aims well below the static
// chunk size; claims are a spinlock pop, so the extra traffic is cheap.
size_t MatcherState::EmitGrain(size_t num_items) const {
  if (config_.scheduler_grain > 0) return config_.scheduler_grain;
  return ThreadPool::GrainSize(num_items, pool_.num_threads(), 1, 64);
}

// Hash backend: every emission probes a per-(level, shard) FlatCountMap.
void MatcherState::EmitPendingLinksHash(PhaseStats* stats) {
  const size_t begin = emitted_links_;
  const size_t end = links_.size();
  if (begin == end) return;
  emitted_links_ = end;

  const NodeId dmin = static_cast<NodeId>(1u) << config_.min_bucket_exponent;
  struct Delta {
    std::vector<std::vector<FlatCountMap>> maps;  // [level][shard]
    uint64_t emissions = 0;
  };
  const size_t num_items = end - begin;

  // One delta set per producer (`ParallelProduce`): per fixed chunk under
  // the static scheduler, per worker slot under work-stealing. The merge
  // sums counts commutatively, so which items land in which delta is
  // unobservable.
  Timer emit_timer;
  auto emit_range = [this, begin, dmin](Delta& delta, size_t lo, size_t hi) {
    if (delta.maps.empty()) delta.maps.resize(kNumLevels);
    auto& maps = delta.maps;
    for (size_t item = lo; item < hi; ++item) {
      const auto [a1, a2] = links_[begin + item];
      for (NodeId u : g1_.NeighborsByDegree(a1)) {
        if (g1_.degree(u) < dmin) break;  // prefix is degree-sorted
        const uint8_t lu = level1_[u];
        for (NodeId v : g2_.NeighborsByDegree(a2)) {
          if (g2_.degree(v) < dmin) break;
          const uint8_t level = std::min(lu, level2_[v]);
          const uint64_t key = PackPair(u, v);
          if (maps[level].empty()) {
            maps[level] =
                std::vector<FlatCountMap>(static_cast<size_t>(num_shards_));
          }
          maps[level][static_cast<size_t>(mr::ShardOfKey(key, num_shards_))]
              .AddCount(key, 1);
          ++delta.emissions;
        }
      }
    }
  };
  std::vector<Delta> deltas = ParallelProduce<Delta>(
      &pool_, scheduler_, num_items, static_cast<size_t>(num_shards_) * 4,
      EmitGrain(num_items), emit_range);
  stats->emit_seconds += emit_timer.Seconds();

  // Merge deltas into the persistent maps: one (level, shard) cell at a
  // time, pre-sized from the delta sizes so the merge never rehashes
  // mid-loop. Cells run domain-homed under an active placement (the
  // merge is the pass that touches every persistent page, so it is where
  // shard homing pays).
  Timer merge_timer;
  PlacedLoopStats merge_placed;
  placement_.ParallelForPlaced(
      &pool_, scheduler_,
      static_cast<size_t>(kNumLevels) * static_cast<size_t>(num_shards_),
      CellDomainFn(),
      [this, &deltas](size_t cell) {
        const size_t level = cell / static_cast<size_t>(num_shards_);
        const size_t shard = cell % static_cast<size_t>(num_shards_);
        FlatCountMap& target = scores_[level][shard];
        size_t expected = target.size();
        for (const Delta& delta : deltas) {
          if (delta.maps.empty()) continue;
          const auto& level_maps = delta.maps[level];
          if (level_maps.empty()) continue;
          expected += level_maps[shard].size();
        }
        if (expected == target.size()) return;
        target.Reserve(expected);
        for (const Delta& delta : deltas) {
          if (delta.maps.empty()) continue;
          const auto& level_maps = delta.maps[level];
          if (level_maps.empty()) continue;
          level_maps[shard].ForEach([&target](uint64_t key, uint32_t count) {
            target.AddCount(key, count);
          });
        }
      },
      &merge_placed);
  stats->merge_seconds += merge_timer.Seconds();
  stats->local_unit_tasks += merge_placed.local_tasks;
  stats->remote_unit_steals += merge_placed.remote_steals;

  for (const Delta& delta : deltas) {
    stats->emissions += static_cast<size_t>(delta.emissions);
  }
}

// Radix backend: emissions append packed keys into per-(level, shard) flat
// buffers (one array store each — the shard is a precomputed per-node
// lookup, no hashing); each touched (level, shard) cell then sorts its
// delta, run-length-encodes it and appends it to the cell's LSM tier
// stack, which folds tiers into the big persistent run only when the
// size-ratio policy trips.
void MatcherState::EmitPendingLinksRadix(PhaseStats* stats) {
  const size_t begin = emitted_links_;
  const size_t end = links_.size();
  if (begin == end) return;
  emitted_links_ = end;

  const NodeId dmin = static_cast<NodeId>(1u) << config_.min_bucket_exponent;
  struct RadixDelta {
    std::vector<std::vector<std::vector<uint64_t>>> keys;  // [level][shard]
    uint64_t emissions = 0;
  };
  const size_t num_items = end - begin;

  Timer emit_timer;
  auto emit_range = [this, begin, dmin](RadixDelta& delta, size_t lo,
                                        size_t hi) {
    if (delta.keys.empty()) delta.keys.resize(kNumLevels);
    auto& keys = delta.keys;
    for (size_t item = lo; item < hi; ++item) {
      const auto [a1, a2] = links_[begin + item];
      for (NodeId u : g1_.NeighborsByDegree(a1)) {
        if (g1_.degree(u) < dmin) break;  // prefix is degree-sorted
        const uint8_t lu = level1_[u];
        const uint32_t shard = radix_shard1_[u];
        for (NodeId v : g2_.NeighborsByDegree(a2)) {
          if (g2_.degree(v) < dmin) break;
          const uint8_t level = std::min(lu, level2_[v]);
          if (keys[level].empty()) {
            keys[level].resize(static_cast<size_t>(num_shards_));
          }
          keys[level][shard].push_back(PackPair(u, v));
          ++delta.emissions;
        }
      }
    }
  };
  std::vector<RadixDelta> deltas = ParallelProduce<RadixDelta>(
      &pool_, scheduler_, num_items, static_cast<size_t>(num_shards_) * 4,
      EmitGrain(num_items), emit_range);
  stats->emit_seconds += emit_timer.Seconds();

  // Sort-and-append: one touched (level, shard) cell at a time.
  // Concatenate the producer chunks, radix-sort, run-length-encode, then
  // append the round delta as a new LSM tier (compaction per the
  // size-ratio policy — late low-yield rounds usually stop here without
  // touching the big run). Cells run domain-homed under an active
  // placement, so a tier's pages are written by the domain that will
  // scan and compact them.
  Timer merge_timer;
  PlacedLoopStats merge_placed;
  placement_.ParallelForPlaced(
      &pool_, scheduler_,
      static_cast<size_t>(kNumLevels) * static_cast<size_t>(num_shards_),
      CellDomainFn(),
      [this, &deltas](size_t cell) {
        const size_t level = cell / static_cast<size_t>(num_shards_);
        const size_t shard = cell % static_cast<size_t>(num_shards_);
        size_t total = 0;
        for (const RadixDelta& delta : deltas) {
          if (delta.keys.empty()) continue;
          const auto& level_keys = delta.keys[level];
          if (level_keys.empty()) continue;
          total += level_keys[shard].size();
        }
        if (total == 0) return;
        std::vector<uint64_t> raw;
        raw.reserve(total);
        for (const RadixDelta& delta : deltas) {
          if (delta.keys.empty()) continue;
          const auto& level_keys = delta.keys[level];
          if (level_keys.empty()) continue;
          const auto& chunk = level_keys[shard];
          raw.insert(raw.end(), chunk.begin(), chunk.end());
        }
        std::vector<uint64_t> scratch;
        SortedCountRun delta_run = SortAndCount(std::move(raw), scratch);
        runs_[level][shard].Append(std::move(delta_run), tier_policy_);
      },
      &merge_placed);
  stats->merge_seconds += merge_timer.Seconds();
  stats->local_unit_tasks += merge_placed.local_tasks;
  stats->remote_unit_steals += merge_placed.remote_steals;

  for (const RadixDelta& delta : deltas) {
    stats->emissions += static_cast<size_t>(delta.emissions);
  }
}

// --- Memory-budget enforcement -------------------------------------------
// Runs after a round's emission, before selection: while the resident tier
// payload exceeds the budget, spill the largest resident tiers to the
// score directory (largest-first frees the most RAM per file; ties break
// on (level, shard, tier index) so the spill schedule — and thus the fault
// points any injected failure lands on — is deterministic). Selection then
// streams spilled tiers through the same `ForEach` fold, so the matching
// is unchanged by construction; only the resident footprint moves.
//
// Failure policy (the robustness contract): a failed spill leaves its tier
// resident and is worth one stderr line; after `kMaxSpillFailures` the
// store disables itself and the run continues all-resident. Running over
// budget is a degraded mode, never an error — the alternative (aborting a
// long matching because /tmp filled up) loses work for nothing.
void MatcherState::EnforceMemoryBudget(PhaseStats* stats) {
  if (spill_store_ == nullptr) return;
  constexpr size_t kMaxSpillFailures = 8;

  size_t resident = 0;
  size_t spilled_bytes = 0;
  struct Candidate {
    size_t bytes;
    size_t level;
    size_t shard;
    size_t tier;
  };
  std::vector<Candidate> candidates;
  for (size_t level = 0; level < runs_.size(); ++level) {
    for (size_t shard = 0; shard < runs_[level].size(); ++shard) {
      const TieredCountRuns& store = runs_[level][shard];
      resident += store.resident_bytes();
      for (size_t t = 0; t < store.num_tiers(); ++t) {
        const size_t bytes =
            TieredCountRuns::BytesForEntries(store.tier_size(t));
        if (store.tier_spilled(t)) {
          spilled_bytes += bytes;
        } else if (bytes > 0) {
          candidates.push_back(Candidate{bytes, level, shard, t});
        }
      }
    }
  }

  const uint64_t budget = config_.memory_budget_bytes;
  if (resident > budget && !spill_store_->disabled()) {
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.bytes != b.bytes) return a.bytes > b.bytes;
                if (a.level != b.level) return a.level < b.level;
                if (a.shard != b.shard) return a.shard < b.shard;
                return a.tier < b.tier;
              });
    for (const Candidate& c : candidates) {
      if (resident <= budget) break;
      std::string spill_error;
      if (runs_[c.level][c.shard].SpillTier(c.tier, *spill_store_,
                                            &spill_error)) {
        resident -= c.bytes;
        spilled_bytes += c.bytes;
        ++stats->tiers_spilled;
      } else {
        std::fprintf(stderr,
                     "warning: spill of score tier (level %zu, shard %zu) "
                     "failed, keeping it resident: %s\n",
                     c.level, c.shard, spill_error.c_str());
        if (spill_store_->stats().spill_failures >= kMaxSpillFailures) {
          std::fprintf(stderr,
                       "warning: %zu spill failures; disabling the score "
                       "spill layer, continuing over budget\n",
                       spill_store_->stats().spill_failures);
          spill_store_->Disable();
          break;
        }
      }
    }
  }
  stats->resident_score_bytes = resident;
  stats->spilled_score_bytes = spilled_bytes;
}

size_t MatcherState::RoundIncremental(int iteration, int bucket_exponent) {
  Timer timer;
  PhaseStats stats;
  stats.iteration = iteration;
  stats.bucket_exponent = bucket_exponent;
  stats.links_in = links_.size();
  stats.num_threads = pool_.num_threads();
  stats.placement_domains =
      placement_.active() ? placement_.num_domains() : 1;
  // Credit any between-round compaction since the last round here.
  stats.local_unit_tasks += compact_placed_stats_.local_tasks;
  stats.remote_unit_steals += compact_placed_stats_.remote_steals;
  compact_placed_stats_ = PlacedLoopStats{};

  EmitPendingLinks(&stats);
  EnforceMemoryBudget(&stats);

  std::vector<ScoreUnit> units;
  units.reserve(static_cast<size_t>(kNumLevels - bucket_exponent) *
                static_cast<size_t>(num_shards_));
  if (config_.scoring_backend == ScoringBackend::kRadixSort) {
    for (int level = bucket_exponent; level < kNumLevels; ++level) {
      for (const TieredCountRuns& store : runs_[static_cast<size_t>(level)]) {
        units.push_back(ScoreUnit(&store));
      }
    }
  } else {
    for (int level = bucket_exponent; level < kNumLevels; ++level) {
      for (const FlatCountMap& shard : scores_[static_cast<size_t>(level)]) {
        units.push_back(ScoreUnit(&shard));
      }
    }
  }
  size_t accepted = SelectAndCommit(units, &stats);

  stats.new_links = accepted;
  stats.seconds = timer.Seconds();
  phases_.push_back(stats);
  return accepted;
}

// --- Reference scoring engine ----------------------------------------
// Literal transcription of the paper's inner loop: rebuild the witness
// counts for the current bucket from *all* current links via one
// MapReduce round. Kept as the semantics reference; the incremental
// engine must produce identical results.
size_t MatcherState::RoundRecompute(int iteration, int bucket_exponent) {
  Timer timer;
  const NodeId dmin = static_cast<NodeId>(1u) << bucket_exponent;
  PhaseStats stats;
  stats.iteration = iteration;
  stats.bucket_exponent = bucket_exponent;
  stats.links_in = links_.size();
  stats.num_threads = pool_.num_threads();
  stats.placement_domains =
      placement_.active() ? placement_.num_domains() : 1;

  Timer emit_timer;
  std::atomic<uint64_t> emissions{0};
  const int num_map_shards = num_shards_ * 4;
  auto map_fn = [this, dmin, &emissions](size_t item, auto emit) {
    const auto [a1, a2] = links_[item];
    uint64_t local_emissions = 0;
    for (NodeId u : g1_.NeighborsByDegree(a1)) {
      if (g1_.degree(u) < dmin) break;  // prefix is degree-sorted
      for (NodeId v : g2_.NeighborsByDegree(a2)) {
        if (g2_.degree(v) < dmin) break;
        emit(PackPair(u, v));
        ++local_emissions;
      }
    }
    emissions.fetch_add(local_emissions, std::memory_order_relaxed);
  };

  std::vector<FlatCountMap> scores;
  std::vector<SortedCountRun> runs;
  std::vector<ScoreUnit> units;
  PlacedLoopStats reduce_placed;
  if (config_.scoring_backend == ScoringBackend::kRadixSort) {
    runs = mr::SortCountByKey(
        &pool_, links_.size(), num_map_shards, num_shards_, map_fn,
        [this](uint64_t key) { return radix_shard1_[PairFirst(key)]; },
        scheduler_, &stats.merge_seconds, &placement_, &reduce_placed);
    units.reserve(runs.size());
    for (const SortedCountRun& run : runs) units.push_back(ScoreUnit(&run));
  } else {
    scores = mr::CountByKey(&pool_, links_.size(), num_map_shards,
                            num_shards_, map_fn, scheduler_,
                            &stats.merge_seconds, &placement_,
                            &reduce_placed);
    units.reserve(scores.size());
    for (const FlatCountMap& shard : scores) {
      units.push_back(ScoreUnit(&shard));
    }
  }
  stats.local_unit_tasks += reduce_placed.local_tasks;
  stats.remote_unit_steals += reduce_placed.remote_steals;
  stats.emissions = emissions.load();
  // The mr round's reduce time is reported as merge; the map phase is the
  // emit proper.
  stats.emit_seconds =
      std::max(0.0, emit_timer.Seconds() - stats.merge_seconds);

  size_t accepted = SelectAndCommit(units, &stats);

  stats.new_links = accepted;
  stats.seconds = timer.Seconds();
  phases_.push_back(stats);
  return accepted;
}

// --- Snapshot serialization ----------------------------------------------

bool MatcherState::SaveSnapshot(const std::string& path,
                                std::string* error) const {
  SnapshotWriter writer;

  writer.BeginSection(kSectionMeta);
  writer.AppendU32(kMatcherStateVersion);
  // Graph fingerprint: a snapshot only resumes against the pair it was
  // taken from.
  writer.AppendU64(g1_.num_nodes());
  writer.AppendU64(g1_.num_edges());
  writer.AppendU64(graph_fp1_);
  writer.AppendU64(g2_.num_nodes());
  writer.AppendU64(g2_.num_edges());
  writer.AppendU64(graph_fp2_);
  // Config fingerprint: the knobs that change what the matcher computes or
  // how the score state is laid out. Execution-only knobs (threads,
  // scheduler, grain, placement, LSM tier policy) are matching-invariant
  // and intentionally absent — see the class comment.
  writer.AppendU32(config_.min_score);
  writer.AppendI32(config_.num_iterations);
  writer.AppendU8(config_.use_degree_bucketing ? 1 : 0);
  writer.AppendI32(config_.min_bucket_exponent);
  writer.AppendU8(config_.stop_when_stable ? 1 : 0);
  writer.AppendU8(config_.use_incremental_scoring ? 1 : 0);
  writer.AppendU8(
      config_.scoring_backend == ScoringBackend::kRadixSort ? 1 : 0);
  writer.AppendI32(num_shards_);
  // Round cursor.
  writer.AppendI32(iteration_);
  writer.AppendI32(current_bucket_);
  writer.AppendI32(top_exponent_);
  writer.AppendI32(bottom_exponent_);
  writer.AppendU64(new_links_this_iteration_);
  writer.AppendI32(completed_rounds_);
  writer.AppendU8(done_ ? 1 : 0);
  writer.AppendU64(num_seeds_);
  writer.AppendU64(emitted_links_);
  writer.AppendU64(links_.size());
  writer.EndSection();

  writer.BeginSection(kSectionLinks);
  writer.AppendVector(links_);
  writer.EndSection();

  if (config_.use_incremental_scoring) {
    if (config_.scoring_backend == ScoringBackend::kRadixSort) {
      writer.BeginSection(kSectionScoresRadix);
      for (const auto& level : runs_) {
        for (const TieredCountRuns& store : level) {
          writer.AppendU32(static_cast<uint32_t>(store.num_tiers()));
          // Tier contents are serialized through views, so a spilled tier
          // streams its bytes straight from the mmap and the snapshot is
          // byte-identical whether the store is resident, spilled or
          // mixed. Snapshots stay self-contained: spill files are scratch,
          // never referenced by durable state.
          store.ForEachTier([&writer](RunView tier) {
            writer.AppendU64(tier.size);
            writer.AppendBytes(tier.keys, tier.size * sizeof(uint64_t));
            writer.AppendU64(tier.size);
            writer.AppendBytes(tier.counts, tier.size * sizeof(uint32_t));
          });
        }
      }
      writer.EndSection();
    } else {
      writer.BeginSection(kSectionScoresHash);
      for (const auto& level : scores_) {
        for (const FlatCountMap& shard : level) {
          writer.AppendU64(shard.size());
          shard.ForEach([&writer](uint64_t key, uint32_t count) {
            writer.AppendU64(key);
            writer.AppendU32(count);
          });
        }
      }
      writer.EndSection();
    }
  }

  return writer.Commit(path, error);
}

bool MatcherState::RebuildMaps(
    const std::vector<std::pair<NodeId, NodeId>>& links,
    std::vector<NodeId>* map_1to2, std::vector<NodeId>* map_2to1,
    std::string* error) const {
  map_1to2->assign(g1_.num_nodes(), kInvalidNode);
  map_2to1->assign(g2_.num_nodes(), kInvalidNode);
  for (const auto& [u, v] : links) {
    if (u >= g1_.num_nodes() || v >= g2_.num_nodes()) {
      *error = "link (" + std::to_string(u) + ", " + std::to_string(v) +
               ") out of range";
      return false;
    }
    if ((*map_1to2)[u] != kInvalidNode || (*map_2to1)[v] != kInvalidNode) {
      *error = "link (" + std::to_string(u) + ", " + std::to_string(v) +
               ") conflicts with an earlier link";
      return false;
    }
    (*map_1to2)[u] = v;
    (*map_2to1)[v] = u;
  }
  return true;
}

bool MatcherState::LoadSnapshot(const std::string& path, std::string* error) {
  RECONCILE_CHECK(seeded_) << "LoadSnapshot before SeedLinks";

  SnapshotReader reader;
  if (!reader.Open(path, error)) return false;

  SnapshotReader::Section* meta = reader.Find(kSectionMeta);
  if (meta == nullptr) {
    *error = path + ": missing META section";
    return false;
  }

  // META: parse and validate everything before touching any member.
  uint32_t state_version = 0;
  if (!meta->ReadU32(&state_version)) {
    *error = path + ": truncated META";
    return false;
  }
  if (state_version != kMatcherStateVersion) {
    *error = path + ": matcher state version " +
             std::to_string(state_version) + " (want " +
             std::to_string(kMatcherStateVersion) + ")";
    return false;
  }
  uint64_t n1 = 0, e1 = 0, fp1 = 0, n2 = 0, e2 = 0, fp2 = 0;
  meta->ReadU64(&n1);
  meta->ReadU64(&e1);
  meta->ReadU64(&fp1);
  meta->ReadU64(&n2);
  meta->ReadU64(&e2);
  meta->ReadU64(&fp2);
  uint32_t min_score = 0;
  int32_t num_iterations = 0, min_bucket_exponent = 0, snap_shards = 0;
  uint8_t bucketing = 0, stop_when_stable = 0, incremental = 0, radix = 0;
  meta->ReadU32(&min_score);
  meta->ReadI32(&num_iterations);
  meta->ReadU8(&bucketing);
  meta->ReadI32(&min_bucket_exponent);
  meta->ReadU8(&stop_when_stable);
  meta->ReadU8(&incremental);
  meta->ReadU8(&radix);
  meta->ReadI32(&snap_shards);
  int32_t iteration = 0, current_bucket = 0, top_exponent = 0,
          bottom_exponent = 0, completed_rounds = 0;
  uint64_t new_links_this_iteration = 0, num_seeds = 0, emitted_links = 0,
           num_links = 0;
  uint8_t done = 0;
  meta->ReadI32(&iteration);
  meta->ReadI32(&current_bucket);
  meta->ReadI32(&top_exponent);
  meta->ReadI32(&bottom_exponent);
  meta->ReadU64(&new_links_this_iteration);
  meta->ReadI32(&completed_rounds);
  meta->ReadU8(&done);
  meta->ReadU64(&num_seeds);
  meta->ReadU64(&emitted_links);
  if (!meta->ReadU64(&num_links) || !meta->ok()) {
    *error = path + ": truncated META";
    return false;
  }

  if (n1 != g1_.num_nodes() || e1 != g1_.num_edges() || fp1 != graph_fp1_ ||
      n2 != g2_.num_nodes() || e2 != g2_.num_edges() || fp2 != graph_fp2_) {
    *error = path + ": snapshot was taken against a different graph pair";
    return false;
  }
  const bool config_matches =
      min_score == config_.min_score &&
      num_iterations == config_.num_iterations &&
      (bucketing != 0) == config_.use_degree_bucketing &&
      min_bucket_exponent == config_.min_bucket_exponent &&
      (stop_when_stable != 0) == config_.stop_when_stable &&
      (incremental != 0) == config_.use_incremental_scoring &&
      (radix != 0) ==
          (config_.scoring_backend == ScoringBackend::kRadixSort) &&
      snap_shards == num_shards_;
  if (!config_matches) {
    *error = path +
             ": snapshot config mismatch (threshold/iterations/bucketing/"
             "backend/shards differ from this run — resume with the "
             "configuration the checkpoint was written under, including an "
             "explicit shard count if thread counts differ)";
    return false;
  }
  const bool cursor_sane =
      top_exponent == top_exponent_ && bottom_exponent == bottom_exponent_ &&
      iteration >= 1 && iteration <= num_iterations &&
      (bucketing != 0
           ? current_bucket >= bottom_exponent && current_bucket <= top_exponent
           : current_bucket == min_bucket_exponent) &&
      completed_rounds >= 0 && num_seeds <= num_links &&
      emitted_links <= num_links;
  if (!cursor_sane) {
    *error = path + ": snapshot round cursor is inconsistent";
    return false;
  }
  if (num_seeds != num_seeds_) {
    *error = path + ": snapshot has " + std::to_string(num_seeds) +
             " seeds, this run has " + std::to_string(num_seeds_);
    return false;
  }

  // LINKS: the committed link log; its seed prefix must equal this run's
  // seeds, and the log must rebuild into a consistent one-to-one mapping.
  SnapshotReader::Section* links_section = reader.Find(kSectionLinks);
  if (links_section == nullptr) {
    *error = path + ": missing LINKS section";
    return false;
  }
  std::vector<std::pair<NodeId, NodeId>> links;
  if (!links_section->ReadVector(&links) || links.size() != num_links) {
    *error = path + ": LINKS section does not match its declared size";
    return false;
  }
  for (size_t i = 0; i < num_seeds_; ++i) {
    if (links[i] != links_[i]) {
      *error = path + ": snapshot seed links differ from this run's seeds";
      return false;
    }
  }
  std::vector<NodeId> map_1to2, map_2to1;
  if (!RebuildMaps(links, &map_1to2, &map_2to1, error)) {
    *error = path + ": " + *error;
    return false;
  }

  // SCORES: staged fully before commit.
  std::vector<std::vector<TieredCountRuns>> runs;
  std::vector<std::vector<FlatCountMap>> scores;
  if (config_.use_incremental_scoring) {
    if (config_.scoring_backend == ScoringBackend::kRadixSort) {
      SnapshotReader::Section* section = reader.Find(kSectionScoresRadix);
      if (section == nullptr) {
        *error = path + ": missing radix SCORES section";
        return false;
      }
      runs.resize(kNumLevels);
      for (auto& level : runs) {
        level.resize(static_cast<size_t>(num_shards_));
        for (TieredCountRuns& store : level) {
          uint32_t num_tiers = 0;
          if (!section->ReadU32(&num_tiers)) {
            *error = path + ": truncated radix SCORES section";
            return false;
          }
          // Rebuild the exact tier stack (no policy folding): tier
          // boundaries affect when future compactions run, and the resumed
          // process must replay them identically.
          TierPolicy keep_all{std::numeric_limits<int>::max(), 0.0};
          for (uint32_t t = 0; t < num_tiers; ++t) {
            SortedCountRun tier;
            if (!section->ReadVector(&tier.keys) ||
                !section->ReadVector(&tier.counts) ||
                tier.keys.size() != tier.counts.size() || tier.empty()) {
              *error = path + ": malformed radix SCORES tier";
              return false;
            }
            store.Append(std::move(tier), keep_all);
          }
        }
      }
      if (!section->AtEnd()) {
        *error = path + ": trailing bytes in radix SCORES section";
        return false;
      }
    } else {
      SnapshotReader::Section* section = reader.Find(kSectionScoresHash);
      if (section == nullptr) {
        *error = path + ": missing hash SCORES section";
        return false;
      }
      scores.resize(kNumLevels);
      for (auto& level : scores) {
        level = std::vector<FlatCountMap>(static_cast<size_t>(num_shards_));
        for (FlatCountMap& shard : level) {
          uint64_t entries = 0;
          if (!section->ReadU64(&entries) ||
              entries > section->Remaining() / 12) {
            *error = path + ": truncated hash SCORES section";
            return false;
          }
          shard.Reserve(static_cast<size_t>(entries));
          for (uint64_t i = 0; i < entries; ++i) {
            uint64_t key = 0;
            uint32_t count = 0;
            section->ReadU64(&key);
            if (!section->ReadU32(&count)) {
              *error = path + ": truncated hash SCORES section";
              return false;
            }
            if (key == FlatCountMap::kEmptyKey) {
              *error = path + ": reserved key in hash SCORES section";
              return false;
            }
            shard.AddCount(key, count);
          }
        }
      }
      if (!section->AtEnd()) {
        *error = path + ": trailing bytes in hash SCORES section";
        return false;
      }
    }
  }

  // Everything validated — commit.
  links_ = std::move(links);
  map_1to2_ = std::move(map_1to2);
  map_2to1_ = std::move(map_2to1);
  runs_ = std::move(runs);
  scores_ = std::move(scores);
  emitted_links_ = static_cast<size_t>(emitted_links);
  iteration_ = iteration;
  current_bucket_ = current_bucket;
  new_links_this_iteration_ = static_cast<size_t>(new_links_this_iteration);
  completed_rounds_ = completed_rounds;
  done_ = done != 0;
  phases_.clear();
  compact_placed_stats_ = PlacedLoopStats{};
  return true;
}

}  // namespace reconcile
