#include "reconcile/core/result.h"

#include <algorithm>

namespace reconcile {

MatchResult::PhaseTimeTotals MatchResult::SumPhaseSeconds() const {
  PhaseTimeTotals totals;
  for (const PhaseStats& phase : phases) {
    totals.emit_seconds += phase.emit_seconds;
    totals.merge_seconds += phase.merge_seconds;
    totals.scan_seconds += phase.scan_seconds;
    totals.select_seconds += phase.select_seconds;
  }
  return totals;
}

MatchResult::PlacementTotals MatchResult::SumPlacementCounters() const {
  PlacementTotals totals;
  for (const PhaseStats& phase : phases) {
    totals.local_unit_tasks += phase.local_unit_tasks;
    totals.remote_unit_steals += phase.remote_unit_steals;
    totals.domains = std::max(totals.domains, phase.placement_domains);
  }
  return totals;
}

size_t MatchResult::NumLinks() const {
  size_t count = 0;
  for (NodeId v : map_1to2) {
    if (v != kInvalidNode) ++count;
  }
  return count;
}

size_t MatchResult::NumNewLinks() const { return NumLinks() - seeds.size(); }

bool MatchResult::IsSeed1(NodeId u) const {
  return std::any_of(seeds.begin(), seeds.end(),
                     [u](const std::pair<NodeId, NodeId>& s) {
                       return s.first == u;
                     });
}

}  // namespace reconcile
