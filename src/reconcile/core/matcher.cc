#include "reconcile/core/matcher.h"

#include <algorithm>
#include <iterator>

#include "reconcile/core/matcher_state.h"
#include "reconcile/dist/coordinator.h"
#include "reconcile/util/checkpoint.h"
#include "reconcile/util/fault.h"
#include "reconcile/util/logging.h"
#include "reconcile/util/shutdown.h"
#include "reconcile/util/timer.h"

namespace reconcile {

namespace {

// Resume: walk the checkpoint directory newest-first and restore the first
// snapshot that validates end to end. Corrupt or mismatched files are
// warnings, not errors — recovery falls back to the previous checkpoint,
// and to a fresh start if none survives.
//
// With retention enabled, a successful resume also prunes: a killed run
// can leave more snapshots than `keep` (the prune only ran after
// successful writes), and without this pass the excess would persist
// forever across resume cycles. The keep count is raised so the
// just-resumed file always survives, even when newer — corrupt or
// mismatched — files occupy the newest retention slots.
void TryResume(MatcherState* state, const std::string& dir, int keep) {
  std::vector<CheckpointFile> checkpoints = ListCheckpoints(dir);
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    std::string error;
    if (state->LoadSnapshot(it->path, &error)) {
      RECONCILE_LOG(Info) << "resumed from " << it->path << " ("
                          << state->completed_rounds()
                          << " rounds completed, " << state->num_links()
                          << " links)";
      if (keep > 0) {
        const int newer =
            static_cast<int>(std::distance(checkpoints.rbegin(), it));
        std::string prune_error;
        PruneCheckpoints(dir, std::max(keep, newer + 1), &prune_error);
        if (!prune_error.empty()) {
          RECONCILE_LOG(Warning)
              << "checkpoint prune on resume failed (non-fatal): "
              << prune_error;
        }
      }
      return;
    }
    RECONCILE_LOG(Warning) << "skipping checkpoint " << it->path << ": "
                           << error;
  }
  RECONCILE_LOG(Warning) << "no usable checkpoint in " << dir
                         << "; starting from the seeds";
}

// Writes the post-round snapshot for the current state. Failure is a
// warning: the matcher keeps running, it just loses this recovery point
// (an injected `io:checkpoint_write_fail` exercises exactly this path).
// After a *successful* write, retention prunes all but the newest `keep`
// snapshots — never after a failed one, so a bad write cannot shrink the
// set of usable recovery points.
void WriteCheckpoint(const MatcherState& state, const std::string& dir,
                     int keep) {
  const std::string path = CheckpointPath(dir, state.completed_rounds());
  std::string error;
  if (!state.SaveSnapshot(path, &error)) {
    RECONCILE_LOG(Warning) << "checkpoint write failed: " << error;
    return;
  }
  std::string prune_error;
  PruneCheckpoints(dir, keep, &prune_error);
  if (!prune_error.empty()) {
    RECONCILE_LOG(Warning) << "checkpoint prune failed (non-fatal): "
                           << prune_error;
  }
}

}  // namespace

MatchResult UserMatching(const Graph& g1, const Graph& g2,
                         std::span<const std::pair<NodeId, NodeId>> seeds,
                         const MatcherConfig& config) {
  RECONCILE_CHECK_GE(config.num_iterations, 1);
  RECONCILE_CHECK_GE(config.min_bucket_exponent, 0);
  if (!config.fault_spec.empty()) {
    std::string error;
    RECONCILE_CHECK(ArmFaults(config.fault_spec, &error))
        << "bad fault spec: " << error;
  }

  // Multi-process execution (DESIGN.md §2.7). `workers == 1` never enters
  // the dist layer — the in-process path below is byte-for-byte the
  // pre-dist code. A false return (unsupported configuration, or every
  // worker lost with the retry budget spent) falls through to the
  // in-process run, which produces the identical matching.
  if (config.workers > 1) {
    MatchResult dist_result;
    if (dist::DistUserMatching(g1, g2, seeds, config, &dist_result)) {
      return dist_result;
    }
  }

  Timer timer;
  MatcherState state(g1, g2, config);
  state.SeedLinks(seeds);

  const bool checkpointing = !config.checkpoint_dir.empty();
  const int every = std::max(1, config.checkpoint_every_rounds);
  if (checkpointing) {
    std::string error;
    RECONCILE_CHECK(EnsureDir(config.checkpoint_dir, &error))
        << "cannot create checkpoint directory: " << error;
    if (config.resume) {
      TryResume(&state, config.checkpoint_dir, config.checkpoint_keep);
    }
  }

  bool stopped_early = false;
  while (!state.Done()) {
    state.RunRound();
    // Fault hook between completing a round and persisting it: a
    // `crash:after_round=k` kill lands before the round-k checkpoint, so a
    // resume re-runs from an earlier snapshot (exercising replay, not just
    // reload).
    FaultValuePoint("after_round", state.completed_rounds());
    if (checkpointing &&
        (state.Done() || state.completed_rounds() % every == 0)) {
      WriteCheckpoint(state, config.checkpoint_dir, config.checkpoint_keep);
    }
    if (GracefulStopRequested() && !state.Done()) {
      stopped_early = true;
      break;
    }
  }
  // A graceful stop (SIGTERM/SIGINT, or the `stop:` fault kind) finishes
  // the in-flight round, persists it, and returns the partial matching.
  if (stopped_early && checkpointing &&
      state.completed_rounds() % every != 0) {
    WriteCheckpoint(state, config.checkpoint_dir, config.checkpoint_keep);
  }
  return state.TakeResult(timer.Seconds());
}

}  // namespace reconcile
