#include "reconcile/core/confidence.h"

#include <algorithm>

#include "reconcile/core/witness.h"
#include "reconcile/util/logging.h"

namespace reconcile {

std::vector<LinkSupport> ComputeLinkSupport(const Graph& g1, const Graph& g2,
                                            const MatchResult& result) {
  RECONCILE_CHECK_EQ(result.map_1to2.size(), g1.num_nodes());
  RECONCILE_CHECK_EQ(result.map_2to1.size(), g2.num_nodes());
  std::vector<LinkSupport> supports;
  supports.reserve(result.NumLinks());
  for (NodeId u = 0; u < g1.num_nodes(); ++u) {
    const NodeId v = result.map_1to2[u];
    if (v == kInvalidNode) continue;
    LinkSupport link;
    link.u = u;
    link.v = v;
    link.support = CountSimilarityWitnesses(g1, g2, result.map_1to2, u, v);
    link.is_seed = result.IsSeed1(u);
    supports.push_back(link);
  }
  return supports;
}

std::vector<size_t> SupportHistogram(const std::vector<LinkSupport>& links,
                                     uint32_t max_support) {
  std::vector<size_t> histogram(max_support + 1, 0);
  for (const LinkSupport& link : links) {
    if (link.is_seed) continue;
    ++histogram[std::min(link.support, max_support)];
  }
  return histogram;
}

double FractionWithSupportAtLeast(const std::vector<LinkSupport>& links,
                                  uint32_t threshold) {
  size_t total = 0, above = 0;
  for (const LinkSupport& link : links) {
    if (link.is_seed) continue;
    ++total;
    if (link.support >= threshold) ++above;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(above) / static_cast<double>(total);
}

}  // namespace reconcile
