#ifndef RECONCILE_CORE_MATCHER_H_
#define RECONCILE_CORE_MATCHER_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "reconcile/core/result.h"
#include "reconcile/graph/graph.h"
#include "reconcile/graph/types.h"
#include "reconcile/util/parallel_for.h"
#include "reconcile/util/placement.h"

namespace reconcile {

/// How a scoring round aggregates witness emissions into per-pair scores.
enum class ScoringBackend {
  /// Hash aggregation: every emission probes a `FlatCountMap` shard
  /// (random access), and selection iterates hash buckets.
  kHashMap,
  /// Sort-based aggregation: emissions append packed keys into flat
  /// per-shard buffers (no per-emission hashing); each shard is then
  /// radix-sorted and run-length-encoded into a `SortedCountRun` that
  /// selection scans linearly. The incremental engine keeps persistent
  /// sorted runs per (level, shard) and folds each round's sorted delta in
  /// with a linear two-way merge. Matchings are bit-identical to the hash
  /// backend for every engine/thread/shard combination.
  kRadixSort,
};

/// Tuning knobs for the User-Matching algorithm (paper §3.2).
struct MatcherConfig {
  /// Number of outer iterations `k`. The paper notes k = 1 or 2 suffices.
  int num_iterations = 2;
  /// Minimum matching score `T`: a candidate pair needs at least this many
  /// similarity witnesses. The theory uses 3 (Erdős–Rényi) and 9
  /// (preferential attachment); the experiments mostly use 2–5.
  uint32_t min_score = 2;
  /// Degree bucketing (the `j = log D … 1` sweep). Disabling reproduces the
  /// paper's ablation: one scoring round per iteration over all nodes.
  bool use_degree_bucketing = true;
  /// Lowest bucket exponent `j` in the sweep; nodes with degree below
  /// `2^min_bucket_exponent` are never match candidates. The paper sweeps to
  /// j = 1; the default 0 also allows degree-1 nodes into the last round.
  int min_bucket_exponent = 0;
  /// Worker threads (0 = hardware concurrency).
  int num_threads = 0;
  /// Reduce shards for the scoring MapReduce (0 = max(4, threads)). Results
  /// are shard-count invariant; this only affects parallel granularity.
  int num_shards = 0;
  /// Stop outer iterations early once a full sweep finds no new link.
  bool stop_when_stable = true;
  /// Scoring engine. `true` (default): incremental — each link's witness
  /// contributions are folded into persistent per-degree-level score maps
  /// exactly once, and a bucket-j round scans levels >= j. `false`:
  /// reference engine that rebuilds the counts from all current links every
  /// round, exactly as written in the paper. Both engines produce identical
  /// matchings; the incremental one is asymptotically cheaper by the
  /// O(log max-degree) bucket-sweep factor.
  bool use_incremental_scoring = true;
  /// Selection engine. `true` (default): the per-round mutual-unique-best
  /// selection runs one task per score shard against atomic CAS-max best
  /// tables, removing the serial tail that dominates once scoring is
  /// parallel. `false`: reference single-threaded double scan. Both engines
  /// produce bit-identical matchings for any thread/shard counts.
  bool use_parallel_selection = true;
  /// Witness-aggregation backend (see `ScoringBackend`). Both backends
  /// produce bit-identical matchings; they differ only in memory-access
  /// pattern and therefore speed. Sort-based aggregation is the default —
  /// sequential emission and linear scans beat per-emission hash probes on
  /// every measured workload; the hash map remains the reference engine.
  ScoringBackend scoring_backend = ScoringBackend::kRadixSort;
  /// How the hot-path loops (witness emission, the selection scan/accept
  /// passes) distribute work across threads (see `Scheduler`). `kAuto`
  /// follows the process default: work-stealing, unless the
  /// `RECONCILE_SCHEDULER` environment variable overrides it. Static
  /// chunking is the reference engine. Matchings are bit-identical for every
  /// scheduler/grain/steal schedule: the loops aggregate commutatively, so
  /// the partition of items into chunks is unobservable in the result.
  Scheduler scheduler = Scheduler::kAuto;
  /// Chunk size the work-stealing scheduler claims per lock acquisition in
  /// the emission loop (0 = auto). Smaller grains rebalance skewed (hub-
  /// heavy) rounds at finer resolution for a little more claim traffic.
  /// Results are grain-invariant.
  size_t scheduler_grain = 0;
  /// LSM-style tiered score store (radix backend, incremental engine only):
  /// cap on resident sorted-run tiers per (level, shard). Round deltas
  /// accumulate as small tiers and fold into the big persistent run only
  /// when `lsm_size_ratio` or this cap trips, so late low-yield rounds stop
  /// rewriting the full run every round. `1` restores the pre-LSM
  /// merge-every-round behavior. The default 2 (big run + one delta batch)
  /// halves merge traffic while the selection scan stays on the two-way
  /// fast path; higher caps defer merges further but pay a k-way scan
  /// fold. Matchings are identical for all settings.
  int lsm_max_tiers = 2;
  /// Size-ratio compaction trigger (see `TierPolicy::size_ratio`).
  double lsm_size_ratio = 4.0;
  /// Topology-aware homing of the persistent per-(level, shard) score state
  /// (see `PlacementPolicy`): each shard gets a home memory domain, pool
  /// workers are pinned to domains, the score-unit loops (merge, compact,
  /// selection scan/accept) run domain-local work first and steal remote
  /// only when dry, and shard buffers are first-touched from their home
  /// domain. `kAuto` follows the process default (`RECONCILE_PLACEMENT`
  /// override, else domain homing on multi-domain hosts, none otherwise).
  /// All policies produce bit-identical matchings; `kNone` preserves the
  /// pre-placement behavior byte for byte, and single-domain hosts take
  /// that path under every policy.
  PlacementPolicy placement = PlacementPolicy::kAuto;
  /// Synthetic domain-count override for the placement topology (0 = detect
  /// the machine; >= 1 forces that many CPU-less domains, clamped to
  /// `kMaxSyntheticDomains`). Lets tests and single-socket hosts exercise
  /// the multi-domain paths; the process-wide `RECONCILE_PLACEMENT_DOMAINS`
  /// env var does the same for a whole run.
  int placement_domains = 0;
  /// Crash safety: when non-empty, the matcher snapshots its full
  /// cross-round state (`MatcherState`) into this directory after every
  /// `checkpoint_every_rounds`-th completed round (and always after the
  /// final one), atomically — temp file + fsync + rename, so a kill at any
  /// instant leaves either the previous or the new snapshot, never a torn
  /// one. Files are named `state-round-NNNNNN.ckpt`.
  std::string checkpoint_dir;
  /// Checkpoint cadence in completed rounds (values < 1 behave as 1).
  int checkpoint_every_rounds = 1;
  /// Checkpoint retention: after each successful snapshot write, prune all
  /// but the newest K snapshots in `checkpoint_dir` (<= 0 keeps everything,
  /// the pre-retention behavior). A prune failure is non-fatal — a one-line
  /// stderr note and the run continues; the just-written snapshot is never
  /// pruned.
  int checkpoint_keep = 0;
  /// Memory budget for the persistent score state in bytes (0 = unbudgeted,
  /// the all-resident behavior). When the radix backend's resident tier
  /// payload exceeds this after a round's emission, the enforcement pass
  /// spills the biggest cold tiers to mmap'd files under `score_dir` until
  /// resident payload fits (largest-first, deterministic tie-breaks);
  /// selection streams spilled tiers through the same fold, so matchings
  /// are bit-identical to the unbudgeted run. Requires `score_dir`; with
  /// the hash backend the budget is ignored with a one-line warning
  /// (FlatCountMap shards have no spillable flat form). Spill failures —
  /// ENOSPC, torn writes, failed mmaps — degrade gracefully: the tier stays
  /// resident (stderr note) and after repeated failures spilling is
  /// disabled for the run; never a crash, never a wrong matching.
  uint64_t memory_budget_bytes = 0;
  /// Directory for spill scratch files (`spill-<pid>-<seq>.spill`). Created
  /// on first spill; files are removed as tiers unspill and on clean exit
  /// (including graceful SIGINT/SIGTERM stops). Only meaningful with
  /// `memory_budget_bytes` > 0.
  std::string score_dir;
  /// Resume from the newest valid snapshot in `checkpoint_dir` before
  /// running any round. Corrupt, truncated or mismatched snapshots are
  /// skipped with a warning (falling back to the next-older file; a fresh
  /// start if none survives) — never a crash. The resumed run commits the
  /// same links as an uninterrupted one: matchings are bit-identical.
  bool resume = false;
  /// Deterministic fault injection for crash-safety tests (see
  /// `util/fault.h` for the spec grammar, e.g. `crash:after_round=3` or
  /// `io:checkpoint_write_fail`). Empty = no faults armed here (the
  /// `RECONCILE_FAULT` env var still applies process-wide).
  std::string fault_spec;
  /// Multi-process execution (DESIGN.md §2.7): fork this many worker
  /// processes, each owning a contiguous slice of the score-shard range
  /// partition, and run the round loop as a coordinator that exchanges only
  /// per-shard best-candidate tables and committed links over CRC-framed
  /// Unix sockets — edge data and score state never cross the wire.
  /// Matchings are bit-identical to the in-process run for any worker
  /// count, including under injected worker failures. `1` (default) is the
  /// plain in-process path with zero overhead. Requires the incremental
  /// radix backend (the shard partition must be a function of the g1 node
  /// alone); other configurations, and checkpoint/resume runs, fall back
  /// in-process with a one-line warning. Clamped to the shard count.
  int workers = 1;
  /// Worker-loss retry budget: how many times the coordinator may respawn a
  /// dead/hung/corrupting worker (exponential backoff between attempts)
  /// before reassigning the lost shard slice to survivors permanently. When
  /// every worker is gone and the budget is spent, the run degrades to the
  /// in-process path — with an identical matching.
  int worker_retry = 2;
  /// Failure-detector deadline: a worker that produces no frame (results
  /// and heartbeats both count) for this long while a request is
  /// outstanding is declared lost. Workers heartbeat at a quarter of this
  /// interval.
  int worker_timeout_ms = 5000;
};

/// Runs User-Matching: expands the seed links into a one-to-one partial
/// mapping between the nodes of `g1` and `g2`.
///
/// Per round (degree bucket `2^j`, outer iteration `i`):
///  1. every current link (a1, a2) acts as a similarity witness for each
///     candidate pair (u, v) ∈ N1(a1) × N2(a2) whose degrees clear `2^j` and
///     whose endpoints are still unmatched — counted via a MapReduce round;
///  2. a candidate pair is accepted iff its score is at least
///     `config.min_score` and is the unique maximum among all scored pairs
///     containing `u` and among all containing `v` (mutual best; ties are
///     rejected to protect precision).
///
/// Seeds must be in-range and one-to-one; duplicates are rejected via
/// RECONCILE_CHECK. The output is deterministic: independent of thread and
/// shard counts.
MatchResult UserMatching(const Graph& g1, const Graph& g2,
                         std::span<const std::pair<NodeId, NodeId>> seeds,
                         const MatcherConfig& config);

}  // namespace reconcile

#endif  // RECONCILE_CORE_MATCHER_H_
