#ifndef RECONCILE_CORE_RESULT_H_
#define RECONCILE_CORE_RESULT_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "reconcile/graph/types.h"

namespace reconcile {

/// Statistics for one scoring round (one degree bucket within one outer
/// iteration) of a matcher.
struct PhaseStats {
  int iteration = 0;        ///< Outer iteration (1-based).
  int bucket_exponent = 0;  ///< Round matched nodes with degree >= 2^this.
  size_t links_in = 0;      ///< Links available as witnesses this round.
  size_t emissions = 0;     ///< Candidate-pair witness emissions.
  size_t candidate_pairs = 0;  ///< Distinct candidate pairs scored.
  size_t new_links = 0;     ///< Links accepted this round.
  double seconds = 0.0;     ///< Whole-round wall clock.
  // Per-round time split (seconds): witness emission (enumerating candidate
  // pairs — the map side), merge/compaction (folding emission deltas into
  // the persistent score state: hash-map merges, radix sort + LSM tier
  // compaction, mr reduce), the best-table observe scan, and the
  // accept-and-commit pass. The four do not sum exactly to `seconds` (unit
  // bookkeeping sits between them).
  double emit_seconds = 0.0;
  double merge_seconds = 0.0;
  double scan_seconds = 0.0;
  double select_seconds = 0.0;
  int num_threads = 0;      ///< Worker threads the round ran with.
  // Shard-placement locality split over this round's score-unit tasks
  // (merge cells + the selection scan/accept unit passes): tasks executed
  // by a worker of the unit's home domain vs stolen cross-domain after the
  // thief's own domain ran dry. With placement off (or one domain) every
  // task counts as local. These are the observable signal for placement on
  // hosts where wall-clock cannot show it.
  size_t local_unit_tasks = 0;
  size_t remote_unit_steals = 0;
  int placement_domains = 1;  ///< Memory domains the round placed over.
  // Out-of-core score store (radix backend under a memory budget): tiers
  // moved to disk by this round's budget-enforcement pass, and the
  // resident/spilled byte split after it ran. Zero everywhere when
  // unbudgeted.
  size_t tiers_spilled = 0;
  size_t resident_score_bytes = 0;
  size_t spilled_score_bytes = 0;
  // Multi-process execution (the dist coordinator, DESIGN.md §2.7): worker
  // processes that contributed to this round, coordinator-side message and
  // byte traffic, and the robustness counters — respawns attempted and
  // shards reassigned to survivors while repairing this round. All zero on
  // the in-process path.
  int dist_workers = 0;
  size_t dist_messages_sent = 0;
  size_t dist_messages_received = 0;
  size_t dist_bytes_sent = 0;
  size_t dist_bytes_received = 0;
  size_t dist_worker_retries = 0;
  size_t dist_shards_reassigned = 0;
};

/// Output of a matcher run: a (partial) one-to-one correspondence between
/// the two node sets, including the input seed links.
struct MatchResult {
  /// For each g1 node, the matched g2 node or kInvalidNode.
  std::vector<NodeId> map_1to2;
  /// For each g2 node, the matched g1 node or kInvalidNode.
  std::vector<NodeId> map_2to1;
  /// The seed links the run started from (subset of the maps).
  std::vector<std::pair<NodeId, NodeId>> seeds;
  /// Per-round telemetry, in execution order.
  std::vector<PhaseStats> phases;
  double total_seconds = 0.0;

  /// Whole-run totals of the per-round time split (seconds).
  struct PhaseTimeTotals {
    double emit_seconds = 0.0;
    double merge_seconds = 0.0;
    double scan_seconds = 0.0;
    double select_seconds = 0.0;
  };
  PhaseTimeTotals SumPhaseSeconds() const;

  /// Whole-run totals of the shard-placement locality counters.
  struct PlacementTotals {
    size_t local_unit_tasks = 0;
    size_t remote_unit_steals = 0;
    int domains = 1;  ///< Max over rounds (constant within a run).
  };
  PlacementTotals SumPlacementCounters() const;

  /// Total number of links in the mapping (seeds + discovered).
  size_t NumLinks() const;
  /// Links discovered beyond the seeds.
  size_t NumNewLinks() const;
  /// True if g1 node `u` was a seed endpoint.
  bool IsSeed1(NodeId u) const;
};

}  // namespace reconcile

#endif  // RECONCILE_CORE_RESULT_H_
