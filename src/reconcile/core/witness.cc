#include "reconcile/core/witness.h"

#include <algorithm>

#include "reconcile/util/logging.h"

namespace reconcile {

uint32_t CountSimilarityWitnesses(const Graph& g1, const Graph& g2,
                                  const std::vector<NodeId>& link_1to2,
                                  NodeId u, NodeId v) {
  RECONCILE_CHECK_LT(u, g1.num_nodes());
  RECONCILE_CHECK_LT(v, g2.num_nodes());
  RECONCILE_CHECK_GE(link_1to2.size(), g1.num_nodes());
  std::span<const NodeId> nbrs2 = g2.Neighbors(v);
  uint32_t witnesses = 0;
  for (NodeId w : g1.Neighbors(u)) {
    NodeId image = link_1to2[w];
    if (image == kInvalidNode) continue;
    if (std::binary_search(nbrs2.begin(), nbrs2.end(), image)) ++witnesses;
  }
  return witnesses;
}

}  // namespace reconcile
