#ifndef RECONCILE_CORE_WITNESS_H_
#define RECONCILE_CORE_WITNESS_H_

#include <cstdint>
#include <vector>

#include "reconcile/graph/graph.h"
#include "reconcile/graph/types.h"

namespace reconcile {

/// Counts similarity witnesses for the candidate pair (u, v) under the
/// current link map (paper, Definition 1): the number of pairs (w, w') with
/// `w ∈ N1(u)`, `w' ∈ N2(v)` and `link_1to2[w] == w'`.
///
/// This direct form is used by tests and the propagation baseline; the
/// matcher computes the same quantity for all candidate pairs at once via
/// the MapReduce scoring round.
uint32_t CountSimilarityWitnesses(const Graph& g1, const Graph& g2,
                                  const std::vector<NodeId>& link_1to2,
                                  NodeId u, NodeId v);

}  // namespace reconcile

#endif  // RECONCILE_CORE_WITNESS_H_
