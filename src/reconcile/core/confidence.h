#ifndef RECONCILE_CORE_CONFIDENCE_H_
#define RECONCILE_CORE_CONFIDENCE_H_

#include <cstdint>
#include <vector>

#include "reconcile/core/result.h"
#include "reconcile/graph/graph.h"

namespace reconcile {

/// Post-hoc confidence audit of a matching: for every link (u, v) in
/// `result`, its *final support* — the number of similarity witnesses under
/// the complete final mapping (Definition 1 evaluated at convergence).
///
/// Final support is the natural confidence signal for downstream consumers
/// (the paper's user-facing framing: "suggesting an account with a 28%
/// chance of error is unlikely to be acceptable"): links accepted early at
/// score T typically accumulate far more support once their neighbourhoods
/// are matched, while wrong links stay near the acceptance floor. The
/// Wikipedia example uses this to split auto-accept vs needs-review tiers.
struct LinkSupport {
  NodeId u = 0;           ///< g1 endpoint.
  NodeId v = 0;           ///< g2 endpoint.
  uint32_t support = 0;   ///< Witnesses under the final mapping.
  bool is_seed = false;
};

/// Computes final support for every link in `result`. Ordered by `u`.
std::vector<LinkSupport> ComputeLinkSupport(const Graph& g1, const Graph& g2,
                                            const MatchResult& result);

/// Histogram of final support over non-seed links: `result[s]` = number of
/// discovered links with support exactly `s` (the last bucket aggregates
/// `>= max_support`).
std::vector<size_t> SupportHistogram(const std::vector<LinkSupport>& links,
                                     uint32_t max_support);

/// Fraction of non-seed links with support >= `threshold`; 0 if there are
/// no non-seed links.
double FractionWithSupportAtLeast(const std::vector<LinkSupport>& links,
                                  uint32_t threshold);

}  // namespace reconcile

#endif  // RECONCILE_CORE_CONFIDENCE_H_
