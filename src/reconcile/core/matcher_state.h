#ifndef RECONCILE_CORE_MATCHER_STATE_H_
#define RECONCILE_CORE_MATCHER_STATE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "reconcile/core/matcher.h"
#include "reconcile/core/result.h"
#include "reconcile/core/selection.h"
#include "reconcile/graph/graph.h"
#include "reconcile/graph/types.h"
#include "reconcile/util/flat_hash_map.h"
#include "reconcile/util/parallel_for.h"
#include "reconcile/util/placement.h"
#include "reconcile/util/radix_sort.h"
#include "reconcile/util/thread_pool.h"
#include "reconcile/util/tiered_store.h"
#include "reconcile/util/topology.h"

namespace reconcile {

/// The `(level, shard)` score layout, exported so other execution layers —
/// the multi-process runtime in `src/reconcile/dist/` foremost — partition
/// the scored-pair multiset exactly like the in-process engine and their
/// shard slices merge back bit-identically.
///
/// Degree levels partition candidate pairs by the first bucket in which
/// they become eligible: level(u, v) = min(log2 d1(u), log2 d2(v)), so the
/// pairs eligible at bucket threshold 2^j are exactly those stored at
/// levels >= j. Shards are a range partition on the g1 node id alone
/// (shard(u, v) = u * S / n1), which is what makes a shard slice
/// self-contained: every pair (u, ·), at every level, lives in shard(u).
inline constexpr int kScoreLevels = 33;

/// floor(log2(max(1, degree))) per node — the per-node half of the level
/// function above.
std::vector<uint8_t> DegreeLevels(const Graph& g);

/// The per-g1-node radix shard table: shard(u) = u * num_shards / n1.
std::vector<uint32_t> RadixShardTable(NodeId n1, int num_shards);

/// The shard count a run resolves from its config: `config.num_shards`
/// when positive, else max(4, worker threads). Every layer that partitions
/// must agree on this number (it is fingerprinted into checkpoints).
int ResolveShardCount(const MatcherConfig& config, int num_threads);

/// The top degree-bucket exponent of the round schedule (0 when bucketing
/// is off or both graphs are empty).
int TopBucketExponent(const Graph& g1, const Graph& g2,
                      const MatcherConfig& config);

/// The matcher's complete cross-round state as a first-class, *resumable*
/// object — everything `UserMatching` carries from one scoring round to the
/// next: the committed links and the partial node maps they imply, the
/// persistent per-(level, shard) score state of the configured backend
/// (`TieredCountRuns` LSM tier stacks for radix, `FlatCountMap` shards for
/// hash), and the flattened round cursor (outer iteration, current degree
/// bucket, stability accounting).
///
/// The driver advances it one round at a time:
///
///   MatcherState state(g1, g2, config);
///   state.SeedLinks(seeds);
///   while (!state.Done()) state.RunRound();
///   MatchResult result = state.TakeResult(seconds);
///
/// which is exactly the seam crash safety needs: between any two `RunRound`
/// calls the object can be serialized (`SaveSnapshot`) and a fresh process
/// can rebuild it (`LoadSnapshot`) and continue — the resumed run commits
/// the same links and produces a matching bit-identical to an uninterrupted
/// run (enforced by `core_checkpoint_test` in-process and by the
/// `integration_kill_resume_test` subprocess harness across
/// backend × scheduler × placement).
///
/// Snapshot format: a `SnapshotWriter` file (versioned header, per-section
/// CRC32 — see `util/checkpoint.h`) with META (state version, graph and
/// config fingerprints, round cursor), LINKS (the committed link log; seeds
/// are its prefix, and the node maps are rebuilt from it on load) and one
/// backend-specific SCORES section. Execution knobs that cannot affect the
/// matching (threads, scheduler, grain, placement, LSM tier policy) are
/// deliberately *not* fingerprinted — a snapshot taken under one may resume
/// under another; semantic knobs (threshold, iterations, bucketing,
/// backend, the resolved shard count) are, and a mismatch is a clean
/// rejection. DESIGN.md §2.4 documents the layout and the resume invariant.
class MatcherState {
 public:
  MatcherState(const Graph& g1, const Graph& g2, const MatcherConfig& config);
  ~MatcherState();

  MatcherState(const MatcherState&) = delete;
  MatcherState& operator=(const MatcherState&) = delete;

  /// Installs the trusted seed links. Must be called exactly once, before
  /// the first `RunRound` (and before `LoadSnapshot`, which validates the
  /// snapshot against these seeds). Seeds must be in-range and one-to-one.
  void SeedLinks(std::span<const std::pair<NodeId, NodeId>> seeds);

  /// True once the round schedule is exhausted (iteration cap reached, or a
  /// full iteration discovered no new link under `stop_when_stable`).
  bool Done() const { return done_; }

  /// Runs the next scoring round (one degree bucket of one outer iteration)
  /// and advances the cursor — including the between-iteration score
  /// compaction when the round closed an iteration. Returns the number of
  /// links accepted. Must not be called once `Done()`.
  size_t RunRound();

  /// Rounds completed so far (resumes continue this count).
  int completed_rounds() const { return completed_rounds_; }
  /// Current outer iteration (1-based) and degree-bucket exponent.
  int iteration() const { return iteration_; }
  int current_bucket() const { return current_bucket_; }
  size_t num_links() const { return links_.size(); }
  size_t num_seeds() const { return num_seeds_; }

  /// Serializes the full cross-round state to `path` atomically (temp file
  /// + fsync + rename). Returns false with a diagnostic on failure; the
  /// previous file at `path`, if any, is left intact.
  bool SaveSnapshot(const std::string& path, std::string* error) const;

  /// Restores the state saved by `SaveSnapshot`. Validates the snapshot
  /// end to end first — format version, per-section checksums, state
  /// version, graph/config fingerprints, seed prefix, link-log consistency
  /// — and only then commits; on any failure the state is untouched and
  /// `*error` says why. Never crashes on truncated or corrupt input.
  bool LoadSnapshot(const std::string& path, std::string* error);

  /// Finalizes into a `MatchResult` (moves the maps out; the state is spent).
  MatchResult TakeResult(double total_seconds);

 private:
  // --- Round engines (see matcher_state.cc) ------------------------------
  size_t Round(int iteration, int bucket_exponent);
  size_t RoundIncremental(int iteration, int bucket_exponent);
  size_t RoundRecompute(int iteration, int bucket_exponent);
  void AdvanceCursor();
  void CompactScores();
  void FirstTouchScoreState();
  std::function<int(size_t)> CellDomainFn() const;
  size_t SelectAndCommit(const std::vector<ScoreUnit>& units,
                         PhaseStats* stats);
  void EmitPendingLinks(PhaseStats* stats);
  void EmitPendingLinksHash(PhaseStats* stats);
  void EmitPendingLinksRadix(PhaseStats* stats);
  size_t EmitGrain(size_t num_items) const;
  // Memory-budget enforcement (radix backend only): after a round's
  // emission, spill the biggest cold tiers until resident payload fits
  // `config_.memory_budget_bytes`. Fills the round's spill telemetry.
  void EnforceMemoryBudget(PhaseStats* stats);

  // Rebuilds map_1to2_/map_2to1_ from a link log; false (with diagnostic)
  // on out-of-range or duplicate endpoints.
  bool RebuildMaps(const std::vector<std::pair<NodeId, NodeId>>& links,
                   std::vector<NodeId>* map_1to2,
                   std::vector<NodeId>* map_2to1, std::string* error) const;

  const Graph& g1_;
  const Graph& g2_;
  MatcherConfig config_;
  ThreadPool pool_;
  // Resolved once (kAuto -> env/default) so every loop in the run uses the
  // same engine.
  Scheduler scheduler_;
  TierPolicy tier_policy_;
  int num_shards_;
  // Shard-placement layer: the topology (detected, or forced synthetic for
  // tests) and the policy object homing each score shard on a memory
  // domain. Inactive (single domain / placement=none) placements delegate
  // every loop to the pre-placement path.
  MachineTopology topology_;
  ShardPlacement placement_;
  // Locality split of the between-round CompactScores tasks, credited to
  // the next round's PhaseStats.
  PlacedLoopStats compact_placed_stats_;
  std::vector<NodeId> map_1to2_;
  std::vector<NodeId> map_2to1_;
  std::vector<std::pair<NodeId, NodeId>> links_;
  std::vector<PhaseStats> phases_;
  // The shared mutual-unique-best engine (`core/selection.h`); which of its
  // two interchangeable engines runs follows `use_parallel_selection`.
  SelectionEngine selection_;
  std::vector<uint8_t> level1_;
  std::vector<uint8_t> level2_;
  // Incremental engine state: exactly one of the two representations is
  // populated, per `config_.scoring_backend`. The radix representation is an
  // LSM tier stack per (level, shard); `tier_policy_` decides when round
  // deltas fold into the big run.
  std::vector<std::vector<FlatCountMap>> scores_;   // [level][shard], hash
  std::vector<std::vector<TieredCountRuns>> runs_;  // [level][shard], radix
  // Radix backend: reduce shard per g1 node (range partition, see ctor).
  std::vector<uint32_t> radix_shard1_;
  // Out-of-core backing store for the tier stacks (null when unbudgeted or
  // on the hash backend). Owns every spill file; destroying the state —
  // clean exit or graceful stop — removes the scratch.
  std::unique_ptr<SpillStore> spill_store_;
  size_t emitted_links_ = 0;

  // Cheap structural fingerprints (nodes, edges, degree sequence) binding a
  // snapshot to the graph pair it was taken against.
  uint64_t graph_fp1_ = 0;
  uint64_t graph_fp2_ = 0;

  // --- Flattened round cursor --------------------------------------------
  // The schedule `UserMatching` used to hold in loop variables: per outer
  // iteration, buckets top_exponent_ .. bottom_exponent_ (or the single
  // min-bucket round when bucketing is off).
  int top_exponent_ = 0;
  int bottom_exponent_ = 0;
  int iteration_ = 1;
  int current_bucket_ = 0;
  size_t new_links_this_iteration_ = 0;
  int completed_rounds_ = 0;
  bool done_ = false;
  size_t num_seeds_ = 0;
  bool seeded_ = false;
};

}  // namespace reconcile

#endif  // RECONCILE_CORE_MATCHER_STATE_H_
