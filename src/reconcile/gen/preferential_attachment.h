#ifndef RECONCILE_GEN_PREFERENTIAL_ATTACHMENT_H_
#define RECONCILE_GEN_PREFERENTIAL_ATTACHMENT_H_

#include <cstdint>

#include "reconcile/graph/graph.h"

namespace reconcile {

/// Samples a preferential attachment graph G^m_n in the Bollobás–Riordan
/// formulation used by the paper (Definition 2): nodes arrive one at a time;
/// node `t` attaches `m` edges whose endpoints are chosen proportionally to
/// current degree (the arriving node's own partial degree participates, so
/// self-loops are possible in the multigraph).
///
/// The returned `Graph` is the simple graph underlying the multigraph
/// (self-loops and parallel edges removed), which is what the experiments
/// operate on. Node ids equal arrival order: low ids are the "early birds"
/// that Lemma 7 proves become high-degree.
Graph GeneratePreferentialAttachment(NodeId n, int m, uint64_t seed);

}  // namespace reconcile

#endif  // RECONCILE_GEN_PREFERENTIAL_ATTACHMENT_H_
