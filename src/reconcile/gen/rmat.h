#ifndef RECONCILE_GEN_RMAT_H_
#define RECONCILE_GEN_RMAT_H_

#include <cstdint>

#include "reconcile/graph/graph.h"

namespace reconcile {

/// Parameters for the recursive matrix (R-MAT) generator of Chakrabarti,
/// Zhan & Faloutsos (SDM 2004). `a + b + c + d` must be 1; the defaults are
/// the widely used skewed setting.
struct RmatParams {
  int scale = 16;             ///< 2^scale nodes.
  double edge_factor = 8.0;   ///< edges = edge_factor * 2^scale.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  bool noise = true;          ///< Perturb quadrant probs per level (smoothing).
};

/// Samples an R-MAT graph. Duplicate edges and self-loops are dropped during
/// canonicalization, so the realized edge count is slightly below
/// `edge_factor * 2^scale`. Isolated node ids may exist (as in the original
/// generator); `num_nodes` is fixed at 2^scale.
Graph GenerateRmat(const RmatParams& params, uint64_t seed);

}  // namespace reconcile

#endif  // RECONCILE_GEN_RMAT_H_
