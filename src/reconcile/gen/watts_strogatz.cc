#include "reconcile/gen/watts_strogatz.h"

#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"

namespace reconcile {

Graph GenerateWattsStrogatz(NodeId n, int k, double beta, uint64_t seed) {
  RECONCILE_CHECK_GE(k, 1);
  RECONCILE_CHECK_LT(static_cast<NodeId>(2 * k), n);
  RECONCILE_CHECK_GE(beta, 0.0);
  RECONCILE_CHECK_LE(beta, 1.0);
  Rng rng(seed);
  EdgeList edges(n);
  edges.Reserve(static_cast<size_t>(n) * static_cast<size_t>(k));
  for (NodeId u = 0; u < n; ++u) {
    for (int d = 1; d <= k; ++d) {
      NodeId v = static_cast<NodeId>((u + static_cast<NodeId>(d)) % n);
      if (rng.Bernoulli(beta)) {
        // Rewire: pick a uniform endpoint different from u.
        NodeId w;
        do {
          w = static_cast<NodeId>(rng.UniformInt(n));
        } while (w == u);
        edges.Add(u, w);
      } else {
        edges.Add(u, v);
      }
    }
  }
  edges.EnsureNumNodes(n);
  return Graph::FromEdgeList(std::move(edges));
}

}  // namespace reconcile
