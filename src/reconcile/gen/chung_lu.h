#ifndef RECONCILE_GEN_CHUNG_LU_H_
#define RECONCILE_GEN_CHUNG_LU_H_

#include <cstdint>
#include <vector>

#include "reconcile/graph/graph.h"

namespace reconcile {

/// Power-law expected-degree sequence for the Chung–Lu model:
/// `w_i ∝ (i + offset)^(-1/(exponent-1))`, rescaled so the mean equals
/// `avg_degree` and capped at `sqrt(sum w)` so edge probabilities stay valid.
/// `exponent` is the degree-distribution exponent (2 < exponent <= 4 typical;
/// social networks sit near 2.5).
std::vector<double> PowerLawWeights(NodeId n, double exponent,
                                    double avg_degree);

/// Samples a Chung–Lu random graph: edge {i, j} appears independently with
/// probability `min(1, w_i * w_j / sum(w))`. Implementation follows the
/// Miller–Hagberg (2011) O(n + m) skip-sampling algorithm over the
/// weight-sorted node order.
///
/// Used to build degree-faithful stand-ins for the paper's real datasets
/// (Facebook, Enron, DBLP, Gowalla); see eval/datasets.h.
Graph GenerateChungLu(const std::vector<double>& weights, uint64_t seed);

}  // namespace reconcile

#endif  // RECONCILE_GEN_CHUNG_LU_H_
