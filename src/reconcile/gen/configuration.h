#ifndef RECONCILE_GEN_CONFIGURATION_H_
#define RECONCILE_GEN_CONFIGURATION_H_

#include <cstdint>
#include <vector>

#include "reconcile/graph/graph.h"

namespace reconcile {

/// Samples an *erased* configuration-model graph: each node `v` contributes
/// `degrees[v]` stubs, stubs are paired uniformly at random, and the
/// self-loops / parallel edges produced by the pairing are erased. Realized
/// degrees are therefore <= the requested ones, with equality for almost all
/// nodes in sparse sequences.
///
/// The degree sum must be even (pad the sequence or decrement one entry if
/// it is not; RECONCILE_CHECK enforces this).
///
/// Use case in this repository: null models that preserve an observed degree
/// sequence exactly while destroying all other structure — the natural
/// robustness check for "the matcher only needs degrees + neighbourhood
/// overlap" claims, and a degree-faithful rewiring of any dataset stand-in.
Graph GenerateConfigurationModel(const std::vector<NodeId>& degrees,
                                 uint64_t seed);

/// The degree sequence of `g` (indexed by node id), ready to feed back into
/// `GenerateConfigurationModel` to produce a degree-preserving rewiring.
std::vector<NodeId> DegreeSequenceOf(const Graph& g);

}  // namespace reconcile

#endif  // RECONCILE_GEN_CONFIGURATION_H_
