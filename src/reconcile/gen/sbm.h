#ifndef RECONCILE_GEN_SBM_H_
#define RECONCILE_GEN_SBM_H_

#include <cstdint>
#include <vector>

#include "reconcile/graph/graph.h"

namespace reconcile {

/// Planted-partition stochastic block model: nodes are split into
/// consecutive blocks of the given sizes; an edge appears independently
/// with probability `p_in` inside a block and `p_out` across blocks.
///
/// The paper's correlated-community-deletion experiment (Table 4) uses
/// Affiliation Networks for its community structure; the SBM is the textbook
/// alternative with planted, non-overlapping communities, and serves as an
/// extension experiment: reconciliation under community structure without
/// the AN model's heavy-tailed interest sizes.
struct SbmParams {
  std::vector<NodeId> block_sizes;
  double p_in = 0.1;
  double p_out = 0.001;
};

/// Samples an SBM graph. Node ids are assigned block by block: block `b`
/// covers `[offset_b, offset_b + block_sizes[b])`. Cost is O(n + m) via
/// geometric skip sampling over each block pair.
Graph GenerateSbm(const SbmParams& params, uint64_t seed);

/// Block label per node for the block layout `GenerateSbm` uses.
std::vector<uint32_t> SbmBlockLabels(const SbmParams& params);

}  // namespace reconcile

#endif  // RECONCILE_GEN_SBM_H_
