#ifndef RECONCILE_GEN_WATTS_STROGATZ_H_
#define RECONCILE_GEN_WATTS_STROGATZ_H_

#include <cstdint>

#include "reconcile/graph/graph.h"

namespace reconcile {

/// Samples a Watts–Strogatz small-world graph: a ring lattice on `n` nodes
/// where each node connects to its `k` nearest neighbours on each side, then
/// every edge is rewired to a uniform random endpoint with probability
/// `beta`. Not used in the paper's evaluation; provided as an extra
/// underlying-network model for robustness experiments.
Graph GenerateWattsStrogatz(NodeId n, int k, double beta, uint64_t seed);

}  // namespace reconcile

#endif  // RECONCILE_GEN_WATTS_STROGATZ_H_
