#include "reconcile/gen/affiliation.h"

#include <algorithm>

#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"

namespace reconcile {

AffiliationNetwork AffiliationNetwork::Generate(
    const AffiliationParams& params, uint64_t seed) {
  RECONCILE_CHECK_GE(params.num_users, 2u);
  Rng rng(seed);

  AffiliationNetwork net;
  net.user_interests_.resize(params.num_users);

  auto join = [&net](NodeId user, uint32_t interest) {
    std::vector<uint32_t>& mine = net.user_interests_[user];
    if (std::find(mine.begin(), mine.end(), interest) != mine.end()) return;
    mine.push_back(interest);
    net.interest_users_[interest].push_back(user);
  };

  auto found_interest = [&net, &join](NodeId user) {
    uint32_t id = static_cast<uint32_t>(net.interest_users_.size());
    net.interest_users_.emplace_back();
    join(user, id);
  };

  // Draws an interest by the copying mechanism: uniform earlier user, then
  // a uniform interest of hers. Size-biased but damped (see header).
  auto copy_interest = [&net, &rng](NodeId user) {
    NodeId other = static_cast<NodeId>(rng.UniformInt(user));
    const std::vector<uint32_t>& theirs = net.user_interests_[other];
    return theirs[rng.UniformInt(theirs.size())];
  };

  // Bootstrap: user 0 founds the first interest.
  found_interest(0);

  for (NodeId user = 1; user < params.num_users; ++user) {
    // Prototype copying: inherit each interest of a uniformly random earlier
    // user independently with copy_prob.
    NodeId prototype = static_cast<NodeId>(rng.UniformInt(user));
    for (uint32_t interest : net.user_interests_[prototype]) {
      if (rng.Bernoulli(params.copy_prob)) join(user, interest);
    }
    // Copying-based joins.
    for (int j = 0; j < params.preferential_joins; ++j) {
      join(user, copy_interest(user));
    }
    // Uniform joins.
    for (int j = 0; j < params.uniform_joins; ++j) {
      join(user, static_cast<uint32_t>(
                     rng.UniformInt(net.interest_users_.size())));
    }
    // Found a brand-new interest.
    if (rng.Bernoulli(params.new_interest_prob)) {
      found_interest(user);
    }
    // Guarantee membership in at least one interest.
    if (net.user_interests_[user].empty()) {
      join(user, copy_interest(user));
    }
  }
  return net;
}

Graph AffiliationNetwork::Fold() const {
  std::vector<bool> all(num_interests(), true);
  return FoldSubset(all);
}

Graph AffiliationNetwork::FoldSubset(
    const std::vector<bool>& interest_alive) const {
  RECONCILE_CHECK_EQ(interest_alive.size(), num_interests());
  EdgeList edges(num_users());
  for (size_t i = 0; i < interest_users_.size(); ++i) {
    if (!interest_alive[i]) continue;
    const std::vector<NodeId>& members = interest_users_[i];
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        edges.Add(members[a], members[b]);
      }
    }
  }
  edges.EnsureNumNodes(num_users());
  return Graph::FromEdgeList(std::move(edges));
}

}  // namespace reconcile
