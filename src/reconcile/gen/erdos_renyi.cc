#include "reconcile/gen/erdos_renyi.h"

#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"

namespace reconcile {

Graph GenerateErdosRenyi(NodeId n, double p, uint64_t seed) {
  RECONCILE_CHECK_GE(p, 0.0);
  RECONCILE_CHECK_LE(p, 1.0);
  Rng rng(seed);
  EdgeList edges(n);
  if (n >= 2 && p > 0.0) {
    edges.Reserve(static_cast<size_t>(ErdosRenyiExpectedEdges(n, p) * 1.1));
    // Enumerate the n(n-1)/2 pairs in row-major order and jump between
    // successes with geometric skips.
    const uint64_t total = static_cast<uint64_t>(n) * (n - 1) / 2;
    uint64_t index = rng.Geometric(p);
    // Row lookup: pair index k corresponds to (u, v) where u is the largest
    // node with u*(u-1)/2 <= k when enumerating pairs (v, u) with v < u.
    NodeId u = 1;
    uint64_t row_start = 0;  // index of pair (0, u)
    while (index < total) {
      while (row_start + u <= index) {
        row_start += u;
        ++u;
      }
      NodeId v = static_cast<NodeId>(index - row_start);
      edges.Add(v, u);
      index += 1 + rng.Geometric(p);
    }
  }
  return Graph::FromEdgeList(std::move(edges));
}

double ErdosRenyiExpectedEdges(NodeId n, double p) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1) * p;
}

}  // namespace reconcile
