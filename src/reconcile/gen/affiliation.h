#ifndef RECONCILE_GEN_AFFILIATION_H_
#define RECONCILE_GEN_AFFILIATION_H_

#include <cstdint>
#include <vector>

#include "reconcile/graph/graph.h"
#include "reconcile/graph/types.h"

namespace reconcile {

/// Parameters for the Affiliation Network model (Lattanzi & Sivakumar,
/// STOC 2009). Users arrive one at a time; each copies the interests of a
/// random prototype user (each interest independently with `copy_prob`),
/// joins additional interests chosen preferentially by interest size, and
/// with `new_interest_prob` founds a fresh interest. The user–user social
/// graph is the *fold*: two users are adjacent iff they share an interest.
struct AffiliationParams {
  NodeId num_users = 1000;
  double copy_prob = 0.3;         ///< Per-interest prototype copy probability.
  double new_interest_prob = 1.0; ///< Probability a new user founds an interest.
  /// Extra memberships in uniformly random existing interests. Uniform joins
  /// raise per-user membership richness (which drives matchability) without
  /// feeding the size-biased growth of the largest communities.
  int uniform_joins = 2;
  /// Extra memberships acquired by the copying mechanism: pick a uniformly
  /// random earlier user, join one of her interests chosen uniformly. This
  /// is size-biased (popular interests have more members to be copied from)
  /// but damped by the member's own membership count. Together with
  /// `copy_prob` this sets the community-size tail: per-community growth
  /// exponent is roughly copy_prob + preferential_joins / mean-memberships,
  /// and values near 1 produce a giant near-clique community.
  int preferential_joins = 1;
};

/// Bipartite user–interest structure kept as a first-class object so the
/// correlated-deletion experiment (Table 4) can drop whole interests per
/// copy before folding.
class AffiliationNetwork {
 public:
  static AffiliationNetwork Generate(const AffiliationParams& params,
                                     uint64_t seed);

  NodeId num_users() const { return static_cast<NodeId>(user_interests_.size()); }
  size_t num_interests() const { return interest_users_.size(); }

  const std::vector<uint32_t>& InterestsOf(NodeId user) const {
    return user_interests_[user];
  }
  const std::vector<NodeId>& MembersOf(uint32_t interest) const {
    return interest_users_[interest];
  }

  /// Folds the bipartite structure into the user–user graph using every
  /// interest.
  Graph Fold() const;

  /// Folds using only interests with `interest_alive[i] == true`; an edge
  /// survives iff the two users share at least one surviving interest. This
  /// realizes the paper's highly correlated edge-deletion process.
  Graph FoldSubset(const std::vector<bool>& interest_alive) const;

 private:
  std::vector<std::vector<uint32_t>> user_interests_;
  std::vector<std::vector<NodeId>> interest_users_;
};

}  // namespace reconcile

#endif  // RECONCILE_GEN_AFFILIATION_H_
