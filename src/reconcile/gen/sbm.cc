#include "reconcile/gen/sbm.h"

#include <utility>

#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"

namespace reconcile {

namespace {

// Adds edges of the diagonal (within-block) region [lo, lo+size)^2, i < j,
// sampling each pair with probability p via geometric skips.
void SampleWithinBlock(NodeId lo, NodeId size, double p, Rng* rng,
                       EdgeList* edges) {
  if (size < 2 || p <= 0.0) return;
  const uint64_t total = static_cast<uint64_t>(size) * (size - 1) / 2;
  uint64_t index = rng->Geometric(p);
  NodeId u = 1;            // pairs are (v, u) with v < u, enumerated by row
  uint64_t row_start = 0;  // pair index of (0, u)
  while (index < total) {
    while (row_start + u <= index) {
      row_start += u;
      ++u;
    }
    const NodeId v = static_cast<NodeId>(index - row_start);
    edges->Add(lo + v, lo + u);
    index += 1 + rng->Geometric(p);
  }
}

// Adds edges of the rectangular region [lo1, lo1+s1) x [lo2, lo2+s2).
void SampleAcrossBlocks(NodeId lo1, NodeId s1, NodeId lo2, NodeId s2,
                        double p, Rng* rng, EdgeList* edges) {
  if (s1 == 0 || s2 == 0 || p <= 0.0) return;
  const uint64_t total = static_cast<uint64_t>(s1) * s2;
  uint64_t index = rng->Geometric(p);
  while (index < total) {
    const NodeId u = static_cast<NodeId>(index / s2);
    const NodeId v = static_cast<NodeId>(index % s2);
    edges->Add(lo1 + u, lo2 + v);
    index += 1 + rng->Geometric(p);
  }
}

}  // namespace

Graph GenerateSbm(const SbmParams& params, uint64_t seed) {
  RECONCILE_CHECK_GE(params.p_in, 0.0);
  RECONCILE_CHECK_LE(params.p_in, 1.0);
  RECONCILE_CHECK_GE(params.p_out, 0.0);
  RECONCILE_CHECK_LE(params.p_out, 1.0);

  const size_t num_blocks = params.block_sizes.size();
  std::vector<NodeId> offsets(num_blocks + 1, 0);
  for (size_t b = 0; b < num_blocks; ++b)
    offsets[b + 1] = offsets[b] + params.block_sizes[b];

  Rng rng(seed);
  EdgeList edges(offsets[num_blocks]);
  for (size_t b1 = 0; b1 < num_blocks; ++b1) {
    SampleWithinBlock(offsets[b1], params.block_sizes[b1], params.p_in, &rng,
                      &edges);
    for (size_t b2 = b1 + 1; b2 < num_blocks; ++b2) {
      SampleAcrossBlocks(offsets[b1], params.block_sizes[b1], offsets[b2],
                         params.block_sizes[b2], params.p_out, &rng, &edges);
    }
  }
  return Graph::FromEdgeList(std::move(edges));
}

std::vector<uint32_t> SbmBlockLabels(const SbmParams& params) {
  std::vector<uint32_t> labels;
  for (size_t b = 0; b < params.block_sizes.size(); ++b)
    labels.insert(labels.end(), params.block_sizes[b],
                  static_cast<uint32_t>(b));
  return labels;
}

}  // namespace reconcile
