#ifndef RECONCILE_GEN_ERDOS_RENYI_H_
#define RECONCILE_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "reconcile/graph/graph.h"

namespace reconcile {

/// Samples an Erdős–Rényi graph G(n, p): each of the n(n-1)/2 possible
/// undirected edges is present independently with probability `p`.
///
/// Uses geometric skip sampling, so the cost is O(#edges) rather than O(n^2);
/// the paper's regime (`p` on the order of log n / n) is very sparse.
Graph GenerateErdosRenyi(NodeId n, double p, uint64_t seed);

/// Expected edge count of G(n, p); exposed for tests.
double ErdosRenyiExpectedEdges(NodeId n, double p);

}  // namespace reconcile

#endif  // RECONCILE_GEN_ERDOS_RENYI_H_
