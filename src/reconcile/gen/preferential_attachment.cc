#include "reconcile/gen/preferential_attachment.h"

#include <vector>

#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"

namespace reconcile {

Graph GeneratePreferentialAttachment(NodeId n, int m, uint64_t seed) {
  RECONCILE_CHECK_GE(m, 1);
  Rng rng(seed);

  // Classic O(n m) implementation: `endpoints` lists every edge endpoint of
  // the evolving multigraph, so a uniform draw from it is a degree-
  // proportional draw. Each new edge (t, x) appends both t and x; drawing
  // from the array *including the already-appended stubs of node t* realizes
  // the "+1 for the arriving node" rule of Definition 2.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * static_cast<size_t>(n) * static_cast<size_t>(m));
  EdgeList edges(n);
  edges.Reserve(static_cast<size_t>(n) * static_cast<size_t>(m));

  for (NodeId t = 0; t < n; ++t) {
    for (int e = 0; e < m; ++e) {
      // Append the arriving endpoint first so the draw below can select it
      // (self-loop), matching the model where node t participates with
      // weight deg(t)+1.
      endpoints.push_back(t);
      NodeId target =
          endpoints[rng.UniformInt(endpoints.size())];
      endpoints.push_back(target);
      if (target != t) edges.Add(t, target);
    }
  }
  return Graph::FromEdgeList(std::move(edges));
}

}  // namespace reconcile
