#include "reconcile/gen/configuration.h"

#include <numeric>
#include <utility>

#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"

namespace reconcile {

Graph GenerateConfigurationModel(const std::vector<NodeId>& degrees,
                                 uint64_t seed) {
  size_t stub_count = 0;
  for (NodeId d : degrees) stub_count += d;
  RECONCILE_CHECK_EQ(stub_count % 2, 0u)
      << "configuration model needs an even degree sum";

  std::vector<NodeId> stubs;
  stubs.reserve(stub_count);
  for (NodeId v = 0; v < degrees.size(); ++v)
    for (NodeId k = 0; k < degrees[v]; ++k) stubs.push_back(v);

  // Fisher–Yates; pairing consecutive entries of a uniform shuffle is a
  // uniform stub matching.
  Rng rng(seed);
  for (size_t i = stubs.size(); i > 1; --i) {
    const size_t j = rng.UniformInt(i);
    std::swap(stubs[i - 1], stubs[j]);
  }

  EdgeList edges(static_cast<NodeId>(degrees.size()));
  edges.Reserve(stub_count / 2);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2)
    edges.Add(stubs[i], stubs[i + 1]);  // loops/duplicates erased by builder
  return Graph::FromEdgeList(std::move(edges));
}

std::vector<NodeId> DegreeSequenceOf(const Graph& g) {
  std::vector<NodeId> degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) degrees[v] = g.degree(v);
  return degrees;
}

}  // namespace reconcile
