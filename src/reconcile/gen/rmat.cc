#include "reconcile/gen/rmat.h"

#include <cmath>

#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"

namespace reconcile {

Graph GenerateRmat(const RmatParams& params, uint64_t seed) {
  RECONCILE_CHECK_GE(params.scale, 1);
  RECONCILE_CHECK_LE(params.scale, 30);
  const double sum = params.a + params.b + params.c + params.d;
  RECONCILE_CHECK_LT(std::abs(sum - 1.0), 1e-9);

  Rng rng(seed);
  const NodeId n = static_cast<NodeId>(1u << params.scale);
  const size_t target_edges =
      static_cast<size_t>(params.edge_factor * static_cast<double>(n));

  EdgeList edges(n);
  edges.Reserve(target_edges);
  for (size_t e = 0; e < target_edges; ++e) {
    NodeId u = 0, v = 0;
    double a = params.a, b = params.b, c = params.c;
    for (int level = 0; level < params.scale; ++level) {
      double r = rng.UniformReal();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
      if (params.noise) {
        // Multiplicative noise keeps the quadrant probabilities from
        // producing exact replicas at every level (standard smoothing).
        double na = a * (0.95 + 0.1 * rng.UniformReal());
        double nb = b * (0.95 + 0.1 * rng.UniformReal());
        double nc = c * (0.95 + 0.1 * rng.UniformReal());
        double nd = (1.0 - a - b - c) * (0.95 + 0.1 * rng.UniformReal());
        double norm = na + nb + nc + nd;
        a = na / norm;
        b = nb / norm;
        c = nc / norm;
      }
    }
    edges.Add(u, v);
  }
  edges.EnsureNumNodes(n);
  return Graph::FromEdgeList(std::move(edges));
}

}  // namespace reconcile
