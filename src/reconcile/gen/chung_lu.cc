#include "reconcile/gen/chung_lu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "reconcile/util/logging.h"
#include "reconcile/util/rng.h"

namespace reconcile {

std::vector<double> PowerLawWeights(NodeId n, double exponent,
                                    double avg_degree) {
  RECONCILE_CHECK_GT(exponent, 2.0);
  RECONCILE_CHECK_GT(avg_degree, 0.0);
  std::vector<double> weights(n);
  const double power = -1.0 / (exponent - 1.0);
  for (NodeId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + 1.0, power);
  }
  double mean =
      std::accumulate(weights.begin(), weights.end(), 0.0) / weights.size();
  for (double& w : weights) w *= avg_degree / mean;
  // Cap so that w_i * w_j / W <= 1 for all pairs. Capping lowers the total
  // (and hence the admissible cap), so iterate to a fixpoint; the reduction
  // is geometric and a handful of rounds suffice.
  for (int round = 0; round < 32; ++round) {
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    double cap = std::sqrt(total);
    bool changed = false;
    for (double& w : weights) {
      if (w > cap) {
        w = cap;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return weights;
}

Graph GenerateChungLu(const std::vector<double>& weights, uint64_t seed) {
  const NodeId n = static_cast<NodeId>(weights.size());
  Rng rng(seed);

  // Sort nodes by descending weight; work in sorted space, then map ids back.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&weights](NodeId a, NodeId b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  std::vector<double> w(n);
  for (NodeId i = 0; i < n; ++i) w[i] = weights[order[i]];

  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  EdgeList edges(n);
  if (total > 0.0) {
    // Miller–Hagberg: for each i, scan j > i with skip sampling under the
    // envelope q = min(1, w_i * w_{i+1} / W) (weights are non-increasing, so
    // q bounds every later pair probability); accept with p/q.
    for (NodeId i = 0; i + 1 < n; ++i) {
      if (w[i] <= 0.0) break;
      double factor = w[i] / total;
      NodeId j = i + 1;
      double q = std::min(1.0, w[j] * factor);
      while (j < n && q > 0.0) {
        if (q < 1.0) {
          j += static_cast<NodeId>(
              std::min<uint64_t>(rng.Geometric(q), n));  // skip failures
        }
        if (j >= n) break;
        double p = std::min(1.0, w[j] * factor);
        if (rng.Bernoulli(p / q)) {
          edges.Add(order[i], order[j]);
        }
        q = p;  // tighten the envelope to the current position
        ++j;
      }
    }
  }
  edges.EnsureNumNodes(n);
  return Graph::FromEdgeList(std::move(edges));
}

}  // namespace reconcile
