#ifndef RECONCILE_GRAPH_GRAPH_H_
#define RECONCILE_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "reconcile/graph/edge_list.h"
#include "reconcile/graph/types.h"

namespace reconcile {

class ThreadPool;

/// Immutable undirected simple graph in compressed sparse row (CSR) form.
///
/// Two adjacency orderings are materialized per node:
///  * by ascending neighbour id (`Neighbors`) — enables `HasEdge` via binary
///    search and deterministic iteration;
///  * by descending neighbour degree (`NeighborsByDegree`) — the matcher's
///    degree-bucketed rounds scan only the prefix of each neighbourhood whose
///    degree clears the current bucket threshold `2^j`, which is what makes
///    bucketing cheap.
///
/// Construction goes through `FromEdgeList`, which canonicalizes the input
/// (self-loops and duplicate edges removed).
class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Builds a graph from `edges`. The edge list is normalized (copy taken);
  /// the node count is max(edges.num_nodes(), largest endpoint + 1).
  /// Large inputs are normalized and built in parallel on the process-wide
  /// shared pool (`ThreadPool::Shared()`); the result is independent of the
  /// thread count.
  static Graph FromEdgeList(EdgeList edges);

  /// Same, but runs the parallel passes (edge-list normalization, degree
  /// count, CSR scatter, per-node sorts for both adjacency orderings) on
  /// `pool`. `pool == nullptr` forces the serial build.
  static Graph FromEdgeList(EdgeList edges, ThreadPool* pool);

  NodeId num_nodes() const { return num_nodes_; }

  /// Number of undirected edges.
  size_t num_edges() const { return adjacency_.size() / 2; }

  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Largest degree in the graph (0 for an empty graph). Precomputed.
  NodeId max_degree() const { return max_degree_; }

  /// Neighbours of `v`, ascending by node id.
  std::span<const NodeId> Neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Neighbours of `v`, descending by neighbour degree (ties by id).
  std::span<const NodeId> NeighborsByDegree(NodeId v) const {
    return {by_degree_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// True iff the edge {u, v} is present. O(log degree(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Number of common neighbours of `u` and `v` (sorted-merge intersection).
  size_t CommonNeighborCount(NodeId u, NodeId v) const;

  /// Sum of degrees == 2 * num_edges().
  size_t degree_sum() const { return adjacency_.size(); }

 private:
  static Graph FromNormalized(EdgeList edges, ThreadPool* pool);

  NodeId num_nodes_ = 0;
  NodeId max_degree_ = 0;
  // offsets_ has num_nodes_ + 1 entries; adjacency slices live in
  // [offsets_[v], offsets_[v+1]).
  std::vector<size_t> offsets_{0};
  std::vector<NodeId> adjacency_;  // ascending by id
  std::vector<NodeId> by_degree_;  // descending by degree
};

}  // namespace reconcile

#endif  // RECONCILE_GRAPH_GRAPH_H_
