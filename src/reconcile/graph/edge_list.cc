#include "reconcile/graph/edge_list.h"

#include <algorithm>

#include "reconcile/util/parallel_for.h"
#include "reconcile/util/thread_pool.h"

namespace reconcile {

namespace {

// Below this size the serial normalize wins over task setup.
constexpr size_t kParallelNormalizeThreshold = 1u << 15;

}  // namespace

void EdgeList::Normalize() {
  ThreadPool* pool = edges_.size() >= kParallelNormalizeThreshold &&
                             ThreadPool::DefaultThreads() > 1
                         ? &ThreadPool::Shared()
                         : nullptr;
  Normalize(pool);
}

void EdgeList::Normalize(ThreadPool* pool) {
  const size_t n = edges_.size();
  if (pool == nullptr || pool->num_threads() < 2 || n < 2) {
    for (Edge& e : edges_) {
      if (e.first > e.second) std::swap(e.first, e.second);
    }
    std::sort(edges_.begin(), edges_.end());
  } else {
    // Parallel path. Chunk boundaries are fixed up front; sorting each
    // chunk and merging pairwise yields the same fully sorted array as the
    // serial sort, so the normalized list is thread-count independent.
    const size_t grain = pool->GrainFor(n, 4096);
    std::vector<size_t> bounds;
    for (size_t b = 0; b < n; b += grain) bounds.push_back(b);
    bounds.push_back(n);
    const size_t num_chunks = bounds.size() - 1;

    // Canonicalize endpoints and sort each chunk. Chunk boundaries are
    // fixed; the process-default scheduler only decides which worker runs
    // which chunk (stealing evens out chunks that sort slower).
    ParallelForSched(pool, Scheduler::kAuto, num_chunks, 1,
                     [this, &bounds](size_t lo, size_t hi) {
                       for (size_t c = lo; c < hi; ++c) {
                         auto begin = edges_.begin() +
                                      static_cast<ptrdiff_t>(bounds[c]);
                         auto end = edges_.begin() +
                                    static_cast<ptrdiff_t>(bounds[c + 1]);
                         for (auto it = begin; it != end; ++it) {
                           if (it->first > it->second) {
                             std::swap(it->first, it->second);
                           }
                         }
                         std::sort(begin, end);
                       }
                     });

    // Merge ladder: each pass merges adjacent sorted range pairs in
    // parallel.
    for (size_t width = 1; width < num_chunks; width *= 2) {
      for (size_t lo = 0; lo + width < num_chunks; lo += 2 * width) {
        const size_t mid = lo + width;
        const size_t hi = std::min(num_chunks, lo + 2 * width);
        pool->Submit([this, &bounds, lo, mid, hi] {
          std::inplace_merge(
              edges_.begin() + static_cast<ptrdiff_t>(bounds[lo]),
              edges_.begin() + static_cast<ptrdiff_t>(bounds[mid]),
              edges_.begin() + static_cast<ptrdiff_t>(bounds[hi]));
        });
      }
      pool->Wait();
    }
  }

  // Single linear sweep fusing dedup and self-loop removal, shared by both
  // paths (duplicates are adjacent after the sort, so this equals
  // sort + unique + remove loops).
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const Edge& e = edges_[i];
    if (e.first == e.second) continue;
    if (out > 0 && edges_[out - 1] == e) continue;
    edges_[out++] = e;
  }
  edges_.resize(out);
}

}  // namespace reconcile
