#include "reconcile/graph/edge_list.h"

#include <algorithm>

#include "reconcile/util/parallel_for.h"
#include "reconcile/util/thread_pool.h"

namespace reconcile {

namespace {

// Below this size the serial normalize wins over task setup.
constexpr size_t kParallelNormalizeThreshold = 1u << 15;

}  // namespace

void EdgeList::Normalize() {
  ThreadPool* pool = edges_.size() >= kParallelNormalizeThreshold &&
                             ThreadPool::DefaultThreads() > 1
                         ? &ThreadPool::Shared()
                         : nullptr;
  Normalize(pool);
}

void EdgeList::Normalize(ThreadPool* pool) {
  const size_t n = edges_.size();
  if (pool == nullptr || pool->num_threads() < 2 || n < 2) {
    for (Edge& e : edges_) {
      if (e.first > e.second) std::swap(e.first, e.second);
    }
    std::sort(edges_.begin(), edges_.end());
  } else {
    // Parallel path. Chunk boundaries are fixed up front; sorting each
    // chunk and merging pairwise yields the same fully sorted array as the
    // serial sort, so the normalized list is thread-count independent.
    const size_t grain = pool->GrainFor(n, 4096);
    std::vector<size_t> bounds;
    for (size_t b = 0; b < n; b += grain) bounds.push_back(b);
    bounds.push_back(n);
    const size_t num_chunks = bounds.size() - 1;

    // Canonicalize endpoints and sort each chunk. Chunk boundaries are
    // fixed; the process-default scheduler only decides which worker runs
    // which chunk (stealing evens out chunks that sort slower).
    ParallelForSched(pool, Scheduler::kAuto, num_chunks, 1,
                     [this, &bounds](size_t lo, size_t hi) {
                       for (size_t c = lo; c < hi; ++c) {
                         auto begin = edges_.begin() +
                                      static_cast<ptrdiff_t>(bounds[c]);
                         auto end = edges_.begin() +
                                    static_cast<ptrdiff_t>(bounds[c + 1]);
                         for (auto it = begin; it != end; ++it) {
                           if (it->first > it->second) {
                             std::swap(it->first, it->second);
                           }
                         }
                         std::sort(begin, end);
                       }
                     });

    // Merge ladder: each pass merges adjacent sorted range pairs in
    // parallel.
    for (size_t width = 1; width < num_chunks; width *= 2) {
      for (size_t lo = 0; lo + width < num_chunks; lo += 2 * width) {
        const size_t mid = lo + width;
        const size_t hi = std::min(num_chunks, lo + 2 * width);
        pool->Submit([this, &bounds, lo, mid, hi] {
          std::inplace_merge(
              edges_.begin() + static_cast<ptrdiff_t>(bounds[lo]),
              edges_.begin() + static_cast<ptrdiff_t>(bounds[mid]),
              edges_.begin() + static_cast<ptrdiff_t>(bounds[hi]));
        });
      }
      pool->Wait();
    }
  }

  DedupSweep(pool);
}

// Dedup + self-loop removal over the sorted edge array. An edge is kept iff
// it is not a self-loop and differs from its predecessor *input* element —
// equivalent to the classic "differs from the last kept edge" rule because
// the array is sorted: if e equals its predecessor, that predecessor was
// either kept (so e is a duplicate of the last kept edge) or was a
// self-loop (then e is the same self-loop). The predicate is therefore a
// pure function of (edges_[i-1], edges_[i]), which is what makes the
// blocked parallel sweep possible.
void EdgeList::DedupSweep(ThreadPool* pool) {
  const size_t n = edges_.size();
  auto keep = [this](size_t i) {
    const Edge& e = edges_[i];
    if (e.first == e.second) return false;
    return i == 0 || !(edges_[i - 1] == e);
  };

  if (pool == nullptr || pool->num_threads() < 2 || n < 2) {
    // Serial reference sweep (also the historical in-place code path).
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!keep(i)) continue;
      edges_[out++] = edges_[i];
    }
    edges_.resize(out);
    return;
  }

  // Blocked scan: per-block kept counts -> serial prefix over the block
  // totals -> parallel compaction into a fresh array (in-place parallel
  // compaction would let block b overwrite input another block has not
  // consumed yet). Output order equals the serial sweep regardless of the
  // block partition or thread count, because the keep predicate is local
  // and blocks write disjoint pre-computed output ranges in input order.
  const size_t grain = pool->GrainFor(n, 4096);
  std::vector<size_t> bounds;
  for (size_t b = 0; b < n; b += grain) bounds.push_back(b);
  bounds.push_back(n);
  const size_t num_blocks = bounds.size() - 1;

  std::vector<size_t> offsets(num_blocks + 1, 0);
  ParallelForSched(pool, Scheduler::kAuto, num_blocks, 1,
                   [&bounds, &offsets, &keep](size_t lo, size_t hi) {
                     for (size_t b = lo; b < hi; ++b) {
                       size_t count = 0;
                       for (size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
                         if (keep(i)) ++count;
                       }
                       offsets[b + 1] = count;
                     }
                   });
  for (size_t b = 0; b < num_blocks; ++b) offsets[b + 1] += offsets[b];

  std::vector<Edge> compacted(offsets[num_blocks]);
  ParallelForSched(pool, Scheduler::kAuto, num_blocks, 1,
                   [this, &bounds, &offsets, &compacted, &keep](size_t lo,
                                                               size_t hi) {
                     for (size_t b = lo; b < hi; ++b) {
                       size_t out = offsets[b];
                       for (size_t i = bounds[b]; i < bounds[b + 1]; ++i) {
                         if (keep(i)) compacted[out++] = edges_[i];
                       }
                     }
                   });
  edges_ = std::move(compacted);
}

}  // namespace reconcile
