#include "reconcile/graph/edge_list.h"

#include <algorithm>

namespace reconcile {

void EdgeList::Normalize() {
  for (Edge& e : edges_) {
    if (e.first > e.second) std::swap(e.first, e.second);
  }
  std::sort(edges_.begin(), edges_.end());
  auto last = std::unique(edges_.begin(), edges_.end());
  edges_.erase(last, edges_.end());
  // Drop self-loops (canonical form has first == second for loops).
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.first == e.second; }),
               edges_.end());
}

}  // namespace reconcile
