#ifndef RECONCILE_GRAPH_TYPES_H_
#define RECONCILE_GRAPH_TYPES_H_

#include <cstdint>
#include <utility>

namespace reconcile {

/// Node identifier. 32-bit unsigned is used deliberately: the matcher packs
/// candidate pairs as `u << 32 | v` into 64-bit hash keys, and adjacency
/// arrays of hundreds of millions of entries stay compact.
using NodeId = uint32_t;

/// Sentinel for "no node" / "unmatched". Never a valid node id (graphs are
/// capped at 2^32 - 1 nodes).
inline constexpr NodeId kInvalidNode = ~static_cast<NodeId>(0);

/// An undirected edge as an (unordered) pair of endpoints.
using Edge = std::pair<NodeId, NodeId>;

/// Packs a candidate pair (`u` from G1, `v` from G2) into a 64-bit map key.
inline constexpr uint64_t PackPair(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}

/// First component (G1 node) of a packed pair.
inline constexpr NodeId PairFirst(uint64_t key) {
  return static_cast<NodeId>(key >> 32);
}

/// Second component (G2 node) of a packed pair.
inline constexpr NodeId PairSecond(uint64_t key) {
  return static_cast<NodeId>(key & 0xffffffffULL);
}

}  // namespace reconcile

#endif  // RECONCILE_GRAPH_TYPES_H_
