#ifndef RECONCILE_GRAPH_EDGE_LIST_H_
#define RECONCILE_GRAPH_EDGE_LIST_H_

#include <cstddef>
#include <vector>

#include "reconcile/graph/types.h"

namespace reconcile {

class ThreadPool;

/// Mutable collection of undirected edges used while constructing graphs.
///
/// Generators append edges freely (duplicates and self-loops allowed); the
/// `Graph` builder canonicalizes. Endpoints are stored as given; undirected
/// semantics are applied at normalization time.
class EdgeList {
 public:
  EdgeList() = default;

  /// Creates an edge list that will index nodes `[0, num_nodes)`.
  explicit EdgeList(NodeId num_nodes) : num_nodes_(num_nodes) {}

  EdgeList(const EdgeList&) = default;
  EdgeList& operator=(const EdgeList&) = default;
  EdgeList(EdgeList&&) = default;
  EdgeList& operator=(EdgeList&&) = default;

  /// Appends the undirected edge {u, v}; grows the node range if needed.
  void Add(NodeId u, NodeId v) {
    edges_.emplace_back(u, v);
    if (u >= num_nodes_) num_nodes_ = u + 1;
    if (v >= num_nodes_) num_nodes_ = v + 1;
  }

  void Reserve(size_t n) { edges_.reserve(n); }

  /// Raises the node range to at least `num_nodes` (never shrinks).
  void EnsureNumNodes(NodeId num_nodes) {
    if (num_nodes > num_nodes_) num_nodes_ = num_nodes;
  }

  /// Sorts endpoint pairs canonically (min, max), drops self-loops and
  /// duplicate edges. Idempotent. Large lists run the canonicalize, sort
  /// and dedup passes on the process-wide shared pool; the result is
  /// independent of the thread count.
  void Normalize();

  /// Same, but runs the parallel passes on `pool` (chunked canonicalize,
  /// chunk sorts, a log2(chunks) ladder of pairwise in-place merges, then a
  /// blocked dedup/self-loop sweep: per-block keep counts, a serial prefix
  /// over block totals, parallel compaction). `pool == nullptr` forces the
  /// serial path.
  void Normalize(ThreadPool* pool);

  size_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }
  NodeId num_nodes() const { return num_nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

 private:
  /// Fused dedup + self-loop removal over the sorted array; parallel
  /// (blocked scan) when `pool` has >= 2 threads, serial reference sweep
  /// otherwise. Output is identical either way for any thread count.
  void DedupSweep(ThreadPool* pool);

  std::vector<Edge> edges_;
  NodeId num_nodes_ = 0;
};

}  // namespace reconcile

#endif  // RECONCILE_GRAPH_EDGE_LIST_H_
