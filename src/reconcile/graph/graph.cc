#include "reconcile/graph/graph.h"

#include <algorithm>

#include "reconcile/util/logging.h"

namespace reconcile {

Graph Graph::FromEdgeList(EdgeList edges) {
  edges.Normalize();

  Graph g;
  g.num_nodes_ = edges.num_nodes();
  g.offsets_.assign(static_cast<size_t>(g.num_nodes_) + 1, 0);

  // Counting pass: each undirected edge contributes to both endpoints.
  for (const Edge& e : edges.edges()) {
    ++g.offsets_[e.first + 1];
    ++g.offsets_[e.second + 1];
  }
  for (size_t v = 1; v < g.offsets_.size(); ++v) {
    g.offsets_[v] += g.offsets_[v - 1];
  }

  g.adjacency_.resize(g.offsets_.back());
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges.edges()) {
    g.adjacency_[cursor[e.first]++] = e.second;
    g.adjacency_[cursor[e.second]++] = e.first;
  }

  // Normalized edge lists are sorted by (min, max), so each adjacency slice
  // receives its entries partially ordered; sort each slice to guarantee the
  // ascending-id invariant.
  for (NodeId v = 0; v < g.num_nodes_; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]));
  }

  for (NodeId v = 0; v < g.num_nodes_; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }

  // Degree-descending view: stable secondary order by ascending id keeps the
  // layout deterministic.
  g.by_degree_ = g.adjacency_;
  for (NodeId v = 0; v < g.num_nodes_; ++v) {
    auto begin = g.by_degree_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]);
    auto end = g.by_degree_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end, [&g](NodeId a, NodeId b) {
      NodeId da = g.degree(a), db = g.degree(b);
      if (da != db) return da > db;
      return a < b;
    });
  }

  return g;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  std::span<const NodeId> nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

size_t Graph::CommonNeighborCount(NodeId u, NodeId v) const {
  RECONCILE_CHECK_LT(u, num_nodes_);
  RECONCILE_CHECK_LT(v, num_nodes_);
  std::span<const NodeId> a = Neighbors(u);
  std::span<const NodeId> b = Neighbors(v);
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace reconcile
