#include "reconcile/graph/graph.h"

#include <algorithm>
#include <atomic>

#include "reconcile/util/logging.h"
#include "reconcile/util/parallel_for.h"
#include "reconcile/util/thread_pool.h"

namespace reconcile {

namespace {

// Below this many (normalized) edges a serial build beats spinning up / using
// worker threads.
constexpr size_t kParallelBuildThreshold = 1u << 15;

void SortAdjacencySerial(Graph* g, std::vector<NodeId>* adjacency,
                         const std::vector<size_t>& offsets, NodeId num_nodes,
                         bool by_degree) {
  for (NodeId v = 0; v < num_nodes; ++v) {
    auto begin = adjacency->begin() + static_cast<ptrdiff_t>(offsets[v]);
    auto end = adjacency->begin() + static_cast<ptrdiff_t>(offsets[v + 1]);
    if (by_degree) {
      std::sort(begin, end, [g](NodeId a, NodeId b) {
        NodeId da = g->degree(a), db = g->degree(b);
        if (da != db) return da > db;
        return a < b;
      });
    } else {
      std::sort(begin, end);
    }
  }
}

}  // namespace

Graph Graph::FromEdgeList(EdgeList edges) {
  // Large builds run on the process-wide shared pool instead of
  // constructing and joining a transient pool per call. Normalization gets
  // the pool based on the raw size; the build decision is re-checked after
  // dedup may have shrunk the list below the threshold.
  ThreadPool* pool = edges.size() >= kParallelBuildThreshold &&
                             ThreadPool::DefaultThreads() > 1
                         ? &ThreadPool::Shared()
                         : nullptr;
  edges.Normalize(pool);
  if (pool != nullptr && edges.size() < kParallelBuildThreshold) {
    pool = nullptr;
  }
  return FromNormalized(std::move(edges), pool);
}

Graph Graph::FromEdgeList(EdgeList edges, ThreadPool* pool) {
  edges.Normalize(pool);
  return FromNormalized(std::move(edges), pool);
}

Graph Graph::FromNormalized(EdgeList edges, ThreadPool* pool) {
  Graph g;
  g.num_nodes_ = edges.num_nodes();
  const size_t n = g.num_nodes_;
  const std::vector<Edge>& es = edges.edges();
  const size_t m = es.size();
  g.offsets_.assign(n + 1, 0);

  const bool parallel = pool != nullptr && pool->num_threads() > 1 && m > 0;
  if (!parallel) {
    // Counting pass: each undirected edge contributes to both endpoints.
    for (const Edge& e : es) {
      ++g.offsets_[e.first + 1];
      ++g.offsets_[e.second + 1];
    }
    for (size_t v = 1; v < g.offsets_.size(); ++v) {
      g.offsets_[v] += g.offsets_[v - 1];
    }

    g.adjacency_.resize(g.offsets_.back());
    std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (const Edge& e : es) {
      g.adjacency_[cursor[e.first]++] = e.second;
      g.adjacency_[cursor[e.second]++] = e.first;
    }

    // Normalized edge lists are sorted by (min, max), so each adjacency slice
    // receives its entries partially ordered; sort each slice to guarantee
    // the ascending-id invariant.
    SortAdjacencySerial(&g, &g.adjacency_, g.offsets_, g.num_nodes_, false);

    for (NodeId v = 0; v < g.num_nodes_; ++v) {
      g.max_degree_ = std::max(g.max_degree_, g.degree(v));
    }

    // Degree-descending view: stable secondary order by ascending id keeps
    // the layout deterministic.
    g.by_degree_ = g.adjacency_;
    SortAdjacencySerial(&g, &g.by_degree_, g.offsets_, g.num_nodes_, true);
    return g;
  }

  // Parallel build, scheduled per the process-wide scheduler default
  // (work-stealing unless RECONCILE_SCHEDULER overrides): power-law degree
  // sequences make the per-node sort passes heavily skewed, and stealing
  // repairs that imbalance at runtime. Scatter order into each adjacency
  // slice depends on task interleaving under either scheduler, but the
  // per-node sorts impose the canonical order, so the resulting graph is
  // bit-identical to the serial build.
  const size_t edge_grain = pool->GrainFor(m, 1024);
  const size_t node_grain = pool->GrainFor(n, 256);

  // Degree count via relaxed atomics (increments commute).
  std::vector<std::atomic<NodeId>> count(n);
  ParallelForSched(pool, Scheduler::kAuto, m, edge_grain, [&es, &count](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      count[es[i].first].fetch_add(1, std::memory_order_relaxed);
      count[es[i].second].fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Blocked parallel scan over the degree counts: per-block totals in
  // parallel, a serial exclusive scan of the block totals, then a parallel
  // add-back that also resets the counters for reuse as scatter cursors.
  // Fixed blocking and plain integer addition, so the offsets are
  // bit-identical to a serial scan for any thread count.
  {
    const size_t block = ThreadPool::GrainSize(n, pool->num_threads(), 4096);
    const size_t num_blocks = (n + block - 1) / block;
    std::vector<size_t> block_base(num_blocks, 0);
    ParallelForSched(pool, Scheduler::kAuto, num_blocks, 1, [&](size_t blo, size_t bhi) {
      for (size_t b = blo; b < bhi; ++b) {
        const size_t lo = b * block, hi = std::min(n, lo + block);
        size_t sum = 0;
        for (size_t v = lo; v < hi; ++v) {
          sum += count[v].load(std::memory_order_relaxed);
        }
        block_base[b] = sum;
      }
    });
    size_t running = 0;
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t total = block_base[b];
      block_base[b] = running;
      running += total;
    }
    ParallelForSched(pool, Scheduler::kAuto, num_blocks, 1, [&](size_t blo, size_t bhi) {
      for (size_t b = blo; b < bhi; ++b) {
        const size_t lo = b * block, hi = std::min(n, lo + block);
        size_t prefix = block_base[b];
        for (size_t v = lo; v < hi; ++v) {
          prefix += count[v].load(std::memory_order_relaxed);
          g.offsets_[v + 1] = prefix;
          count[v].store(0, std::memory_order_relaxed);  // scatter cursor
        }
      }
    });
  }

  g.adjacency_.resize(g.offsets_.back());
  ParallelForSched(pool, Scheduler::kAuto, m, edge_grain, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const auto [a, b] = es[i];
      g.adjacency_[g.offsets_[a] +
                   count[a].fetch_add(1, std::memory_order_relaxed)] = b;
      g.adjacency_[g.offsets_[b] +
                   count[b].fetch_add(1, std::memory_order_relaxed)] = a;
    }
  });

  ParallelForSched(pool, Scheduler::kAuto, n, node_grain, [&g](size_t lo, size_t hi) {
    for (size_t v = lo; v < hi; ++v) {
      std::sort(
          g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]),
          g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]));
    }
  });

  for (NodeId v = 0; v < g.num_nodes_; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }

  g.by_degree_.resize(g.adjacency_.size());
  ParallelForSched(pool, Scheduler::kAuto, n, node_grain, [&g](size_t lo, size_t hi) {
    for (size_t v = lo; v < hi; ++v) {
      auto begin = g.by_degree_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]);
      std::copy(g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]),
                g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]),
                begin);
      std::sort(begin,
                g.by_degree_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]),
                [&g](NodeId a, NodeId b) {
                  NodeId da = g.degree(a), db = g.degree(b);
                  if (da != db) return da > db;
                  return a < b;
                });
    }
  });

  return g;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  std::span<const NodeId> nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

size_t Graph::CommonNeighborCount(NodeId u, NodeId v) const {
  RECONCILE_CHECK_LT(u, num_nodes_);
  RECONCILE_CHECK_LT(v, num_nodes_);
  std::span<const NodeId> a = Neighbors(u);
  std::span<const NodeId> b = Neighbors(v);
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace reconcile
