#include "reconcile/graph/permutation.h"

#include <numeric>

#include "reconcile/util/logging.h"

namespace reconcile {

std::vector<NodeId> RandomPermutation(NodeId n, Rng* rng) {
  RECONCILE_CHECK(rng != nullptr);
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (NodeId i = n; i > 1; --i) {
    NodeId j = static_cast<NodeId>(rng->UniformInt(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<NodeId> InvertPermutation(const std::vector<NodeId>& perm) {
  std::vector<NodeId> inverse(perm.size(), kInvalidNode);
  for (NodeId i = 0; i < perm.size(); ++i) {
    RECONCILE_CHECK_LT(perm[i], perm.size());
    RECONCILE_CHECK_EQ(inverse[perm[i]], kInvalidNode);
    inverse[perm[i]] = i;
  }
  return inverse;
}

EdgeList RelabelEdges(const EdgeList& edges, const std::vector<NodeId>& perm) {
  RECONCILE_CHECK_GE(perm.size(), edges.num_nodes());
  EdgeList result(edges.num_nodes());
  result.Reserve(edges.size());
  for (const Edge& e : edges.edges()) {
    result.Add(perm[e.first], perm[e.second]);
  }
  result.EnsureNumNodes(edges.num_nodes());
  return result;
}

}  // namespace reconcile
