#include "reconcile/graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "reconcile/util/logging.h"

namespace reconcile {

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source) {
  RECONCILE_CHECK_LT(source, g.num_nodes());
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    for (NodeId w : g.Neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<NodeId> ConnectedComponents(const Graph& g) {
  std::vector<NodeId> label(g.num_nodes(), kInvalidNode);
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (label[start] != kInvalidNode) continue;
    label[start] = start;
    queue.push_back(start);
    while (!queue.empty()) {
      NodeId v = queue.front();
      queue.pop_front();
      for (NodeId w : g.Neighbors(v)) {
        if (label[w] == kInvalidNode) {
          label[w] = start;
          queue.push_back(w);
        }
      }
    }
  }
  return label;
}

size_t CountComponents(const Graph& g) {
  std::vector<NodeId> label = ConnectedComponents(g);
  size_t count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (label[v] == v) ++count;
  }
  return count;
}

size_t LargestComponentSize(const Graph& g) {
  if (g.num_nodes() == 0) return 0;
  std::vector<NodeId> label = ConnectedComponents(g);
  std::vector<size_t> sizes(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++sizes[label[v]];
  return *std::max_element(sizes.begin(), sizes.end());
}

std::vector<size_t> DegreeHistogram(const Graph& g) {
  std::vector<size_t> hist(static_cast<size_t>(g.max_degree()) + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++hist[g.degree(v)];
  return hist;
}

size_t CountNodesWithDegreeAtLeast(const Graph& g, NodeId min_degree) {
  size_t count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= min_degree) ++count;
  }
  return count;
}

double EstimateClusteringCoefficient(const Graph& g, size_t samples,
                                     Rng* rng) {
  RECONCILE_CHECK(rng != nullptr);
  std::vector<NodeId> eligible;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) >= 2) eligible.push_back(v);
  }
  if (eligible.empty()) return 0.0;

  auto local_cc = [&g](NodeId v) {
    std::span<const NodeId> nbrs = g.Neighbors(v);
    size_t closed = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.HasEdge(nbrs[i], nbrs[j])) ++closed;
      }
    }
    size_t wedges = nbrs.size() * (nbrs.size() - 1) / 2;
    return static_cast<double>(closed) / static_cast<double>(wedges);
  };

  double sum = 0.0;
  size_t n = 0;
  if (eligible.size() <= samples) {
    for (NodeId v : eligible) sum += local_cc(v);
    n = eligible.size();
  } else {
    for (size_t i = 0; i < samples; ++i) {
      sum += local_cc(eligible[rng->UniformInt(eligible.size())]);
    }
    n = samples;
  }
  return sum / static_cast<double>(n);
}

size_t CountTriangles(const Graph& g) {
  // For each edge (u, v) with u < v, count common neighbours w > v; every
  // triangle is counted exactly once at its smallest-id vertex pair.
  size_t triangles = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v <= u) continue;
      std::span<const NodeId> a = g.Neighbors(u);
      std::span<const NodeId> b = g.Neighbors(v);
      size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          if (a[i] > v) ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

}  // namespace reconcile
