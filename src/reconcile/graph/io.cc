#include "reconcile/graph/io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace reconcile {

namespace {
constexpr uint64_t kBinaryMagic = 0x5245434f4e474601ULL;  // "RECONGF" v1
}  // namespace

bool WriteEdgeListText(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# nodes=" << g.num_nodes() << " edges=" << g.num_edges() << "\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v > u) out << u << " " << v << "\n";
    }
  }
  return static_cast<bool>(out);
}

bool ReadEdgeListText(const std::string& path, EdgeList* out) {
  std::ifstream in(path);
  if (!in) return false;
  EdgeList edges;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    uint64_t u = 0, v = 0;
    if (!(fields >> u >> v)) return false;
    if (u > kInvalidNode - 1 || v > kInvalidNode - 1) return false;
    edges.Add(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  *out = std::move(edges);
  return true;
}

bool WriteEdgeListBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  uint64_t nodes = g.num_nodes();
  uint64_t edges = g.num_edges();
  out.write(reinterpret_cast<const char*>(&kBinaryMagic), sizeof(kBinaryMagic));
  out.write(reinterpret_cast<const char*>(&nodes), sizeof(nodes));
  out.write(reinterpret_cast<const char*>(&edges), sizeof(edges));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v > u) {
        uint32_t pair[2] = {u, v};
        out.write(reinterpret_cast<const char*>(pair), sizeof(pair));
      }
    }
  }
  return static_cast<bool>(out);
}

bool ReadEdgeListBinary(const std::string& path, EdgeList* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint64_t magic = 0, nodes = 0, edges = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&nodes), sizeof(nodes));
  in.read(reinterpret_cast<char*>(&edges), sizeof(edges));
  if (!in || magic != kBinaryMagic || nodes > kInvalidNode) return false;
  EdgeList result(static_cast<NodeId>(nodes));
  result.Reserve(edges);
  for (uint64_t i = 0; i < edges; ++i) {
    uint32_t pair[2];
    in.read(reinterpret_cast<char*>(pair), sizeof(pair));
    if (!in) return false;
    result.Add(pair[0], pair[1]);
  }
  *out = std::move(result);
  return true;
}

}  // namespace reconcile
